(* The batched-hypercall-ring study: before/after tables for the ring
   refactor over Figure 13's static-file server. (a) per-request host
   interactions — the classic handler pays seven KVM exits per request,
   the ringed handler two (one read, one ring_enter doorbell draining
   stat/open/read/write/close/exit); (b) closed-loop throughput over the
   same loopback-connection model as fig13; (c) the pipelined pool
   refill — with the shell pool disabled, a cold provision pays the full
   kvm_create_vm/memory_region/create_vcpu sequence in the request path,
   while a pre-built shell costs only the handoff.

   Gated: bench/baselines/BENCH_rings.json (benchdiff, ±15%). All
   figures are deterministic simulated cycles at fixed seeds. *)

type arm = { name : string; serve : unit -> Vhttp.Fileserver.served }

let make_arm ~ring name seed =
  let w = Wasp.Runtime.create ~seed () in
  let path = Vhttp.Fileserver.add_default_files (Wasp.Runtime.env w) in
  let compiled =
    if ring then Vhttp.Fileserver.compile_ring ~snapshot:false
    else Vhttp.Fileserver.compile ~snapshot:false
  in
  (* warm the pool so per-request figures measure the steady state *)
  ignore (Vhttp.Fileserver.serve_virtine w compiled ~path);
  { name; serve = (fun () -> Vhttp.Fileserver.serve_virtine w compiled ~path) }

(* same loopback TCP model as exp_fig13 *)
let connection_cycles = 650_000

let throughput arm =
  let conn_rng = Cycles.Rng.create ~seed:0xC160 in
  let service ~now:_ =
    Int64.add
      (Int64.of_int (Cycles.Costs.jitter conn_rng ~pct:0.10 connection_cycles))
      (arm.serve ()).Vhttp.Fileserver.cycles
  in
  let buckets =
    Serverless.Loadgen.run ~workers:1 ~think_time_s:0.0 ~service
      ~profile:[ { Serverless.Loadgen.duration_s = 2.0; clients = 4 } ]
      ()
  in
  let rates =
    Array.of_list
      (List.filter_map
         (fun b ->
           if b.Serverless.Loadgen.rps > 0.0 then Some b.Serverless.Loadgen.rps
           else None)
         buckets)
  in
  Stats.Descriptive.harmonic_mean rates

(* (c) cold provision vs prewarmed handoff, pool disabled so every
   request provisions a shell. The prewarmed arm refills its queue
   between requests (standing in for the scheduler's idle windows —
   see Loadgen.run_cores) and advances the clock by the cycles spent,
   as the idle-hook contract requires. *)
let prewarm_arm ~prewarm seed =
  let w = Wasp.Runtime.create ~seed ~pool:false () in
  let path = Vhttp.Fileserver.add_default_files (Wasp.Runtime.env w) in
  let compiled = Vhttp.Fileserver.compile_ring ~snapshot:false in
  let vi =
    match Vcc.Compile.find_virtine compiled "handle" with
    | Some vi -> vi
    | None -> failwith "exp_rings: no virtine handler"
  in
  let image = vi.Vcc.Compile.image in
  if prewarm then
    Wasp.Runtime.set_prewarm w
      (Some
         {
           Wasp.Pool.pw_mem_size = image.Wasp.Image.mem_size;
           pw_mode = image.Wasp.Image.mode;
           pw_target = 2;
         });
  fun () ->
    if prewarm then begin
      let spent = Wasp.Runtime.prewarm_step w ~core:0 ~budget:10_000_000 in
      Cycles.Clock.advance_int (Wasp.Runtime.clock w) spent
    end;
    Vhttp.Fileserver.serve_virtine w compiled ~path

let run () =
  Bench_util.header "Hypercall ring: exits per request and throughput"
    "the batched-ring refactor over Figure 13's file server (Section 5.2)";
  let classic = make_arm ~ring:false "classic (7 exits)" 0xA160 in
  let ringed = make_arm ~ring:true "ringed (2 exits)" 0xB160 in
  let arms = [ classic; ringed ] in
  (* (a) per-request host interactions: deterministic counts *)
  let shape = List.map (fun a -> (a, a.serve ())) arms in
  List.iter
    (fun ((_ : arm), s) -> assert (s.Vhttp.Fileserver.status = 200))
    shape;
  let base_cycles =
    match shape with (_, s) :: _ -> Int64.to_float s.Vhttp.Fileserver.cycles | [] -> 1.0
  in
  Bench_util.table ~fig:"rings" ~title:"per-request host interactions (warm pool)"
    ~header:
      [ "configuration"; "KVM exits/req"; "hypercalls/req"; "latency (us)"; "vs classic" ]
    (List.map
       (fun (a, s) ->
         [
           a.name;
           string_of_int s.Vhttp.Fileserver.exits;
           string_of_int s.Vhttp.Fileserver.hypercalls;
           Printf.sprintf "%.1f" (Bench_util.us_of_cycles s.Vhttp.Fileserver.cycles);
           Printf.sprintf "%.2fx" (Int64.to_float s.Vhttp.Fileserver.cycles /. base_cycles);
         ])
       shape);
  (* (b) closed-loop throughput, fig13's connection model *)
  let tputs = List.map (fun a -> (a.name, throughput a)) arms in
  let base_tput = match tputs with (_, t) :: _ -> t | [] -> 1.0 in
  Bench_util.table ~fig:"rings" ~title:"closed-loop throughput (4 clients, 2 s)"
    ~header:[ "configuration"; "throughput (req/s)"; "tput delta" ]
    (List.map
       (fun (name, t) ->
         [
           name;
           Printf.sprintf "%.0f" t;
           Printf.sprintf "%+.0f%%" ((t -. base_tput) /. base_tput *. 100.0);
         ])
       tputs);
  (* (c) cold provision vs pipelined prewarm handoff *)
  let cold = prewarm_arm ~prewarm:false 0xD160 in
  let warm = prewarm_arm ~prewarm:true 0xE160 in
  let mean serve =
    let lat = Bench_util.trials 40 (fun () -> (serve ()).Vhttp.Fileserver.cycles) in
    (Stats.Descriptive.summarize lat).Stats.Descriptive.mean
  in
  let cold_mean = mean cold in
  let warm_mean = mean warm in
  Bench_util.table ~fig:"rings" ~title:"provisioning without a pool (ringed handler)"
    ~header:[ "configuration"; "mean latency (us)"; "vs cold" ]
    [
      [ "cold shell per request"; Printf.sprintf "%.1f" (cold_mean /. Bench_util.freq_ghz /. 1e3); "1.00x" ];
      [
        "prewarmed handoff";
        Printf.sprintf "%.1f" (warm_mean /. Bench_util.freq_ghz /. 1e3);
        Printf.sprintf "%.2fx" (warm_mean /. cold_mean);
      ];
    ];
  let exits_of a = (List.assq a shape).Vhttp.Fileserver.exits in
  Printf.printf "  RINGS-SMOKE: classic_exits=%d ringed_exits=%d\n"
    (exits_of classic) (exits_of ringed);
  Bench_util.note
    "ringed request = read + one ring_enter doorbell (stat/open/read/write/close/exit";
  Bench_util.note
    "drain inside a single exit); kvm_exits_total{reason} splits the residue by cause"
