(* Figure 8: creation latencies for execution contexts, including Wasp
   virtines with pooling (Wasp+C) and asynchronous cleaning (Wasp+CA),
   plus SGX enclave creation and ECALL re-entry. Log-scale axis. *)

let hlt_image () = Wasp.Image.of_asm_string ~name:"hlt" ~mode:Vm.Modes.Real "hlt"

let wasp_arm ~pool ~clean n =
  let w = Wasp.Runtime.create ~seed:0xF168 ~pool ~clean () in
  let img = hlt_image () in
  if pool then ignore (Wasp.Runtime.run w img ());
  Stats.Descriptive.tukey_filter
    (Bench_util.trials n (fun () -> (Wasp.Runtime.run w img ()).Wasp.Runtime.cycles))

let run () =
  Bench_util.header "Figure 8: creation latencies incl. Wasp virtines" "Figure 8, Section 5.2 (E4/C4)";
  let sys = Kvmsim.Kvm.open_dev ~seed:0xF168 () in
  let n = 1000 in
  let floor = Baselines.Contexts.Vmrun_floor.prepare sys in
  let tukey f = Stats.Descriptive.tukey_filter (Bench_util.trials n f) in
  let amd =
    [
      ("function", tukey (fun () -> Baselines.Contexts.function_call sys));
      ("vmrun", tukey (fun () -> Baselines.Contexts.Vmrun_floor.measure floor));
      ("Wasp+CA", wasp_arm ~pool:true ~clean:`Async n);
      ("Wasp+C", wasp_arm ~pool:true ~clean:`Sync n);
      ("Linux pthread", tukey (fun () -> Baselines.Contexts.pthread_create_join sys));
      ("Wasp (cold)", wasp_arm ~pool:false ~clean:`Sync 200);
      ("KVM", tukey (fun () -> Baselines.Contexts.kvm_cold sys));
      ("Linux process", tukey (fun () -> Baselines.Contexts.process_spawn sys));
    ]
  in
  let intel =
    [
      ("SGX ECALL", tukey (fun () -> Baselines.Contexts.Sgx.ecall sys));
      ( "SGX Create",
        Stats.Descriptive.tukey_filter
          (Bench_util.trials 100 (fun () -> Baselines.Contexts.Sgx.create sys ~enclave_kb:4096)) );
    ]
  in
  let row (name, xs) =
    let s = Stats.Descriptive.summarize ~tukey:false xs in
    [
      name;
      Printf.sprintf "%.0f" s.Stats.Descriptive.mean;
      Printf.sprintf "%.0f" s.Stats.Descriptive.stddev;
      Printf.sprintf "%.2f" (s.Stats.Descriptive.mean /. Bench_util.freq_ghz /. 1e3);
    ]
  in
  Bench_util.table ~fig:"fig8" ~title:"AMD (tinker)"
    ~header:[ "context"; "mean (cycles)"; "sd"; "mean (us)" ]
    (List.map row amd);
  print_newline ();
  Bench_util.table ~fig:"fig8" ~title:"Intel (SGX testbed)"
    ~header:[ "context"; "mean (cycles)"; "sd"; "mean (us)" ]
    (List.map row intel);
  print_newline ();
  print_string
    (Stats.Report.bar_chart ~title:"creation latency, cycles (log scale)" ~log:true
       (List.map
          (fun (name, xs) -> (name, Stats.Descriptive.mean xs))
          (amd @ intel)));
  let mean name lst = Stats.Descriptive.mean (List.assoc name lst) in
  let vmrun = mean "vmrun" amd and ca = mean "Wasp+CA" amd in
  Bench_util.note "Wasp+CA is within %.0f%% of bare vmrun (paper: 4%%)"
    ((ca -. vmrun) /. vmrun *. 100.0);
  Bench_util.note "Wasp+C and Wasp+CA beat pthread creation; cold Wasp tracks KVM (C4)"
