(* Figure 11: latency of virtines as computational intensity increases.
   fib(n) for n in {0,5,10,15,20,25,30}: native vs virtine vs
   virtine+snapshot, with slowdown relative to native. Trial counts are
   scaled down for the largest n (the simulated work is identical across
   trials; wall-clock is the only constraint). *)

let fib_src = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"

let points = [ (0, 400); (5, 400); (10, 300); (15, 150); (20, 40); (25, 8); (30, 2) ]

let fuel = 1_000_000_000

let run () =
  Bench_util.header "Figure 11: virtine latency vs computational intensity"
    "Figure 11, Section 6.1 (E5/C5)";
  let native_clock = Cycles.Clock.create () in
  let compiled_plain = Vcc.Compile.compile ~snapshot:false ~name:"fib11" fib_src in
  let compiled_snap = Vcc.Compile.compile ~snapshot:true ~name:"fib11s" fib_src in
  let w_plain = Wasp.Runtime.create ~seed:0xF1611 ~clean:`Async () in
  let w_snap = Wasp.Runtime.create ~seed:0xF1612 ~clean:`Async () in
  let hub = Bench_util.attach_telemetry w_snap in
  let rows = ref [] in
  let amortized = ref None in
  List.iter
    (fun (n, trials) ->
      let arg = Int64.of_int n in
      let native =
        Stats.Descriptive.mean
          (Bench_util.trials trials (fun () ->
               let t0 = Cycles.Clock.now native_clock in
               ignore (Vcc.Compile.invoke_native ~clock:native_clock compiled_plain "fib" [ arg ] ~fuel ());
               Cycles.Clock.elapsed_since native_clock t0))
      in
      let virtine =
        Stats.Descriptive.mean
          (Bench_util.trials trials (fun () ->
               (Vcc.Compile.invoke w_plain compiled_plain "fib" [ arg ] ~fuel ()).Wasp.Runtime.cycles))
      in
      (* snapshot arm: includes the first (snapshot-taking) run in the
         distribution, like the paper ("we are not measuring the steady
         state") *)
      Wasp.Runtime.drop_snapshot w_snap ~key:"fib11s:fib";
      let snap =
        Stats.Descriptive.mean
          (Bench_util.trials (max 2 trials) (fun () ->
               (Vcc.Compile.invoke w_snap compiled_snap "fib" [ arg ] ~fuel ()).Wasp.Runtime.cycles))
      in
      let slowdown = snap /. native in
      if !amortized = None && slowdown < 1.15 then amortized := Some (n, native);
      rows :=
        [
          string_of_int n;
          Printf.sprintf "%.1f" (native /. Bench_util.freq_ghz /. 1e3);
          Printf.sprintf "%.1f" (virtine /. Bench_util.freq_ghz /. 1e3);
          Printf.sprintf "%.1f" (snap /. Bench_util.freq_ghz /. 1e3);
          Printf.sprintf "%.2fx" (virtine /. native);
          Printf.sprintf "%.2fx" slowdown;
          Printf.sprintf "%.2fx" (virtine /. snap);
        ]
        :: !rows)
    points;
  Bench_util.table ~fig:"fig11"
    ~header:
      [
        "fib(n)";
        "native (us)";
        "virtine (us)";
        "virt+snapshot (us)";
        "virtine slowdown";
        "snapshot slowdown";
        "snapshot speedup";
      ]
    (List.rev !rows);
  (match !amortized with
  | Some (n, native) ->
      Bench_util.note
        "overheads amortized (snapshot slowdown < 1.1x) by n=%d, ~%.0f us of work (paper: ~100 us; C5)"
        n
        (native /. Bench_util.freq_ghz /. 1e3)
  | None -> Bench_util.note "overheads not amortized within the sweep");
  Bench_util.note "snapshot vs no-snapshot speedup at fib(0) reproduces the paper's ~2.5x";
  Bench_util.report_telemetry ~label:"fig11 snapshot arm" hub
