(* Figure 2: lower bounds on execution-context creation, in cycles.
   "KVM" = construct a VM and run hlt; "vmrun" = bare KVM_RUN on an
   existing VM; plus pthread create/join and a null function call. *)

let run () =
  Bench_util.header "Figure 2: context-creation lower bounds" "Figure 2, Section 4.2";
  let sys = Kvmsim.Kvm.open_dev ~seed:0xF162 () in
  let n = 1000 in
  let floor = Baselines.Contexts.Vmrun_floor.prepare sys in
  let measure name f =
    let xs = Stats.Descriptive.tukey_filter (Bench_util.trials n f) in
    (name, Stats.Descriptive.summarize ~tukey:false xs)
  in
  let results =
    [
      measure "function" (fun () -> Baselines.Contexts.function_call sys);
      measure "vmrun" (fun () -> Baselines.Contexts.Vmrun_floor.measure floor);
      measure "Linux pthread" (fun () -> Baselines.Contexts.pthread_create_join sys);
      measure "KVM" (fun () -> Baselines.Contexts.kvm_cold sys);
    ]
  in
  let rows =
    List.map
      (fun (name, (s : Stats.Descriptive.summary)) ->
        [
          name;
          Printf.sprintf "%.0f" s.mean;
          Printf.sprintf "%.0f" s.stddev;
          Printf.sprintf "%.0f" s.min;
          Printf.sprintf "%.2f" (s.mean /. Bench_util.freq_ghz /. 1e3);
        ])
      results
  in
  Bench_util.table ~fig:"fig2" ~header:[ "context"; "mean (cycles)"; "sd"; "min"; "mean (us)" ] rows;
  print_newline ();
  print_string
    (Stats.Report.bar_chart ~title:"cycles (log scale)" ~log:true
       (List.map (fun (n, (s : Stats.Descriptive.summary)) -> (n, s.mean)) results));
  Bench_util.note
    "shape check: function << vmrun < pthread << KVM cold creation (paper Figure 2)"
