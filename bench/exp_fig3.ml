(* Figure 3: latency to run fib(20) in the three classic x86 operating
   modes. The same mini-C fib is compiled for real, protected and long
   mode; each trial measures entry -> bring-up -> fib(20) -> exit on a
   pooled shell (the paper's measurement starts at KVM_RUN). *)

let fib_src = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"

let run () =
  Bench_util.header "Figure 3: fib(20) latency per processor mode" "Figure 3, Section 4.2 (E2/C2)";
  let trials = 200 in
  let measure mode =
    let compiled = Vcc.Compile.compile ~snapshot:false ~mode ~name:"fib3" fib_src in
    let w = Wasp.Runtime.create ~seed:0xF163 ~clean:`Async () in
    (* warm the pool so provisioning is not part of the measurement *)
    ignore (Vcc.Compile.invoke w compiled "fib" [ 20L ] ());
    let xs =
      Bench_util.trials trials (fun () ->
          let r = Vcc.Compile.invoke w compiled "fib" [ 20L ] () in
          assert (r.Wasp.Runtime.return_value = 6765L);
          r.Wasp.Runtime.cycles)
    in
    Stats.Descriptive.summarize xs
  in
  let results = List.map (fun m -> (m, measure m)) Vm.Modes.all in
  let rows =
    List.map
      (fun (m, (s : Stats.Descriptive.summary)) ->
        [
          Vm.Modes.to_string m ^ Printf.sprintf " (%d-bit)" (Vm.Modes.width_bits m);
          Printf.sprintf "%.0f" s.mean;
          Printf.sprintf "%.0f" s.stddev;
          Printf.sprintf "%.2f" (s.mean /. Bench_util.freq_ghz /. 1e3);
        ])
      results
  in
  Bench_util.table ~fig:"fig3" ~header:[ "mode"; "mean (cycles)"; "sd"; "mean (us)" ] rows;
  let get m = (List.assoc m results).Stats.Descriptive.mean in
  let saved = get Vm.Modes.Long -. get Vm.Modes.Real in
  Bench_util.note "real-mode saving vs long mode: %.0f cycles (paper: ~10K may be saved)" saved;
  Bench_util.note "computation (fib) dominates; differences are the Table 1 bring-up costs"
