(* Core-scaling sweep shared by fig12 and fig13 (`--cores N`): a bursty
   closed-loop client population drives the multi-core scheduler for
   1..N simulated cores, with synchronous vs deferred (async) shell
   cleaning.

   The burst population scales with the core count and is sized to sit
   just under the *synchronous* per-core capacity (service + memset):
   throughput then scales with N, and the latency gap isolates the
   cleaning policy — sync pays the memset inside every request, async
   hides it in the think-time gaps and dips, stalling an acquire only
   when a burst outruns the cleaner. Cleaning is real work on the same
   cores, so async cannot exceed sync capacity — it can only get the
   memset off the request path. *)

let profile n =
  [
    { Serverless.Loadgen.duration_s = 0.02; clients = 2 * n };  (* ramp-up *)
    { Serverless.Loadgen.duration_s = 0.06; clients = 3 * n };  (* burst 1 *)
    { Serverless.Loadgen.duration_s = 0.02; clients = 1 };      (* dip *)
    { Serverless.Loadgen.duration_s = 0.06; clients = 3 * n };  (* burst 2 *)
    { Serverless.Loadgen.duration_s = 0.02; clients = 1 };      (* ramp-down *)
  ]

let think_time_s = 0.00075

let duration_s =
  List.fold_left (fun a p -> a +. p.Serverless.Loadgen.duration_s) 0.0 (profile 1)

(* Worst bucket tail; with this sub-second profile there is a single
   bucket, so this is the overall p99. *)
let tail_p99 buckets =
  List.fold_left
    (fun acc b ->
      match b.Serverless.Loadgen.p99_ms with
      | None -> acc
      | Some v -> ( match acc with None -> Some v | Some a -> Some (max a v)))
    None buckets

(* [mk_request w] builds (and warms) the per-runtime request closure;
   each call must perform one invocation on the current core. *)
let sweep ?(fig = "core_scaling") ~seed ~mk_request () =
  let ns = List.filter (fun n -> n <= !Bench_util.cores) [ 1; 2; 4; 8 ] in
  let ns = if List.mem !Bench_util.cores ns then ns else ns @ [ !Bench_util.cores ] in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (arm, clean) ->
            let w = Wasp.Runtime.create ~seed ~clean ~cores:n () in
            let _hub = Bench_util.attach_telemetry w in
            let request = mk_request w in
            request ();
            let buckets, sched =
              Serverless.Loadgen.run_cores ~think_time_s ~runtime:w ~request
                ~profile:(profile n) ()
            in
            let completed =
              List.fold_left (fun a b -> a + b.Serverless.Loadgen.completed) 0 buckets
            in
            let p99 = tail_p99 buckets in
            let util =
              let sum = ref 0.0 in
              for c = 0 to n - 1 do
                sum := !sum +. Dessim.Cores.utilization sched ~core:c
              done;
              !sum /. float_of_int n
            in
            let ps = Wasp.Runtime.pool_stats w in
            [
              string_of_int n;
              arm;
              string_of_int completed;
              Printf.sprintf "%.0f" (float_of_int completed /. duration_s);
              (match p99 with None -> "-" | Some v -> Printf.sprintf "%.3f" v);
              Printf.sprintf "%.2f" util;
              string_of_int (Dessim.Cores.steals sched);
              string_of_int ps.Wasp.Pool.clean_stalls;
            ])
          [ ("sync", `Sync); ("async", `Async) ])
      ns
  in
  Bench_util.table ~fig
    ~header:[ "cores"; "clean"; "completed"; "req/s"; "p99 (ms)"; "util"; "steals"; "stalls" ]
    rows;
  Bench_util.note
    "burst population scales with N, so completed/s scales with the core count";
  Bench_util.note
    "sync pays the memset in every request; async defers it to idle-cycle reclaim,";
  Bench_util.note
    "stalling an acquire only when a burst outruns the cleaner (the `stalls` column)"
