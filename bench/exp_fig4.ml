(* Figure 4: echo-server startup milestones in protected mode (no
   paging): cycles from entry to (1) the C main entry point, (2) the
   return from recv(), (3) the completed send(). *)

let run () =
  Bench_util.header "Figure 4: echo server startup milestones" "Figure 4, Section 4.2 (E3/C3)";
  let w = Wasp.Runtime.create ~seed:0xF164 ~clean:`Async () in
  let compiled = Vhttp.Echo.compile () in
  let payload = "GET / HTTP/1.0\r\nHost: tinker\r\n\r\n" in
  (* warm the shell pool: milestones are measured from a provisioned
     context, like the paper's KVM_RUN-relative numbers *)
  ignore (Vhttp.Echo.run_once w compiled ~payload);
  let trials = 500 in
  let entry = Array.make trials 0.0
  and recv = Array.make trials 0.0
  and send = Array.make trials 0.0 in
  for i = 0 to trials - 1 do
    let ms, _ = Vhttp.Echo.run_once w compiled ~payload in
    entry.(i) <- Int64.to_float ms.Vhttp.Echo.entry;
    recv.(i) <- Int64.to_float ms.Vhttp.Echo.recv_done;
    send.(i) <- Int64.to_float ms.Vhttp.Echo.send_done
  done;
  let rows =
    List.map
      (fun (name, xs) ->
        let s = Stats.Descriptive.summarize xs in
        [
          name;
          Printf.sprintf "%.0f" s.Stats.Descriptive.mean;
          Printf.sprintf "%.0f" s.Stats.Descriptive.stddev;
          Printf.sprintf "%.1f" (s.Stats.Descriptive.mean /. Bench_util.freq_ghz /. 1e3);
        ])
      [ ("C entry (main)", entry); ("recv() returned", recv); ("send() complete", send) ]
  in
  Bench_util.table ~fig:"fig4" ~header:[ "milestone"; "mean (cycles)"; "sd"; "mean (us)" ] rows;
  let last = Stats.Descriptive.mean send in
  Bench_util.note "full response in %.0f us -- paper claims <300 us / C3: <1 ms (100K-500K cycles)"
    (last /. Bench_util.freq_ghz /. 1e3);
  Bench_util.note
    "recv/send variance comes from the host network-stack hypercalls, as the paper observes"
