(* Shared helpers for the experiment harness. *)

let freq_ghz = 2.69

let us_of_cycles c = Int64.to_float c /. freq_ghz /. 1e3
let ms_of_cycles c = us_of_cycles c /. 1e3

let trials n f = Array.init n (fun _ -> Int64.to_float (f ()))

let summarize ?(tukey = true) xs = Stats.Descriptive.summarize ~tukey xs

let fmt_cycles c = Printf.sprintf "%.0f" c
let fmt_us_of_c c = Printf.sprintf "%.2f" (c /. freq_ghz /. 1e3)

let print_blank () = print_newline ()

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

let header name paper_ref =
  print_string (Stats.Report.section name);
  Printf.printf "(reproduces %s)\n\n%!" paper_ref

(* Machine-readable results: `--json-out DIR` mirrors every table an
   experiment prints into DIR/BENCH_<fig>.json, one file per figure,
   each table as {title?, header, rows}. *)

let json_out : string option ref = ref None

(* (fig, title option, header, rows), in print order *)
let json_tables : (string * string option * string list * string list list) list ref =
  ref []

let table ~fig ?title ~header rows =
  print_string (Stats.Report.table ?title ~header rows);
  if !json_out <> None then json_tables := (fig, title, header, rows) :: !json_tables

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string_list l =
  "[" ^ String.concat "," (List.map (fun s -> "\"" ^ json_escape s ^ "\"") l) ^ "]"

let dump_json () =
  match !json_out with
  | None -> ()
  | Some dir ->
      let tables = List.rev !json_tables in
      let figs = List.sort_uniq compare (List.map (fun (f, _, _, _) -> f) tables) in
      List.iter
        (fun fig ->
          let mine = List.filter (fun (f, _, _, _) -> f = fig) tables in
          let buf = Buffer.create 1024 in
          Buffer.add_string buf
            (Printf.sprintf "{\"fig\":\"%s\",\"tables\":[" (json_escape fig));
          List.iteri
            (fun i (_, title, header, rows) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_char buf '{';
              (match title with
              | Some t -> Buffer.add_string buf (Printf.sprintf "\"title\":\"%s\"," (json_escape t))
              | None -> ());
              Buffer.add_string buf ("\"header\":" ^ json_string_list header);
              Buffer.add_string buf
                (",\"rows\":[" ^ String.concat "," (List.map json_string_list rows) ^ "]}"))
            mine;
          Buffer.add_string buf "]}\n";
          let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" fig) in
          let oc = open_out_bin path in
          Buffer.output_buffer oc buf;
          close_out oc;
          Printf.printf "wrote %s\n%!" path)
        figs

(* Telemetry: opt-in with `bench/main.exe -- --telemetry ...`. Spans are
   capacity-bounded, so attaching a hub to a many-thousand-trial
   experiment still yields a usable aggregate summary (dropped spans are
   reported; the metrics registry never drops). *)

let telemetry_enabled = ref false

(* Multi-core axis: `--cores N` enables the core-scaling sections of
   fig12/fig13 (sweeping 1..N simulated cores). *)
let cores = ref 1

(* `--trace-json FILE` dumps the last attached hub's spans as a Chrome
   trace after the run (consumed by `wasprun --check-trace` in CI). *)
let trace_json : string option ref = ref None

let last_hub : Telemetry.Hub.t option ref = ref None

let attach_telemetry w =
  if not !telemetry_enabled then None
  else begin
    let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
    Wasp.Runtime.set_telemetry w (Some hub);
    last_hub := Some hub;
    Some hub
  end

let dump_trace () =
  match !trace_json with
  | None -> ()
  | Some path -> (
      match !last_hub with
      | None ->
          Printf.eprintf "--trace-json: no telemetry hub was attached (pass --telemetry)\n"
      | Some hub ->
          let oc = open_out_bin path in
          output_string oc (Telemetry.Chrome.to_json hub);
          close_out oc;
          Printf.printf "wrote Chrome trace to %s\n%!" path)

let report_telemetry ?(label = "telemetry") hub =
  match hub with
  | None -> ()
  | Some h ->
      print_newline ();
      print_string (Telemetry.Summary.render ~title:(label ^ ": where did the cycles go") h);
      print_newline ();
      print_string (Telemetry.Prometheus.to_text (Telemetry.Hub.metrics h));
      print_newline ()
