(* Wall-clock microbenchmarks (Bechamel) of the kernels behind each
   experiment: these measure the *simulator's* real execution speed, one
   Test.make per table/figure kernel, complementing the virtual-cycle
   results the experiments report. *)

open Bechamel
open Toolkit

let fib_src = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"

let make_tests () =
  let boot_mem = Vm.Memory.create ~size:(64 * 1024) in
  let boot_rng = Cycles.Rng.create ~seed:1 in
  let t_table1 =
    Test.make ~name:"table1/long-mode-boot"
      (Staged.stage (fun () ->
           let clock = Cycles.Clock.create () in
           ignore (Vm.Boot.perform ~mem:boot_mem ~clock ~rng:boot_rng ~target:Vm.Modes.Long)))
  in
  let sys = Kvmsim.Kvm.open_dev () in
  let floor = Baselines.Contexts.Vmrun_floor.prepare sys in
  let t_fig2 =
    Test.make ~name:"fig2/vmrun-roundtrip"
      (Staged.stage (fun () -> ignore (Baselines.Contexts.Vmrun_floor.measure floor)))
  in
  let fib_w = Wasp.Runtime.create ~clean:`Async () in
  let fib_c = Vcc.Compile.compile ~name:"bfib" fib_src in
  ignore (Vcc.Compile.invoke fib_w fib_c "fib" [ 10L ] ());
  let t_fig11 =
    Test.make ~name:"fig11/virtine-fib10"
      (Staged.stage (fun () -> ignore (Vcc.Compile.invoke fib_w fib_c "fib" [ 10L ] ())))
  in
  let pad_w = Wasp.Runtime.create ~clean:`Async () in
  let pad_img =
    Wasp.Image.pad_to (Wasp.Image.of_asm_string ~name:"p" ~mode:Vm.Modes.Real "hlt") (256 * 1024)
  in
  ignore (Wasp.Runtime.run pad_w pad_img ());
  let t_fig12 =
    Test.make ~name:"fig12/256KB-image-load"
      (Staged.stage (fun () -> ignore (Wasp.Runtime.run pad_w pad_img ())))
  in
  let http_w = Wasp.Runtime.create ~clean:`Async () in
  let http_path = Vhttp.Fileserver.add_default_files (Wasp.Runtime.env http_w) in
  let http_c = Vhttp.Fileserver.compile ~snapshot:true in
  ignore (Vhttp.Fileserver.serve_virtine http_w http_c ~path:http_path);
  let t_fig13 =
    Test.make ~name:"fig13/http-request-virtine"
      (Staged.stage (fun () ->
           ignore (Vhttp.Fileserver.serve_virtine http_w http_c ~path:http_path)))
  in
  let js_input = Vjs.Workload.make_input ~size:256 in
  let js_clock = Cycles.Clock.create () in
  let t_fig14 =
    Test.make ~name:"fig14/js-base64-baseline"
      (Staged.stage (fun () ->
           ignore (Vjs.Workload.run_baseline ~clock:js_clock ~input:js_input)))
  in
  let ks = Vcrypto.Aes.expand_key "0123456789abcdef" in
  let block = Bytes.make 16 'a' in
  let t_aes =
    Test.make ~name:"sec6.4/aes-block-encrypt"
      (Staged.stage (fun () -> ignore (Vcrypto.Aes.encrypt_block ks block ~pos:0)))
  in
  (* vtrace overhead: the same virtine invocation with the probe engine
     detached (single [None] check per site) vs. attached on the hot
     sites.  Simulated cycles are identical by contract; this measures
     the real-time cost. *)
  let plain_w = Wasp.Runtime.create ~clean:`Async () in
  let plain_c = Vcc.Compile.compile ~name:"pfib" fib_src in
  ignore (Vcc.Compile.invoke plain_w plain_c "fib" [ 10L ] ());
  let t_probe_off =
    Test.make ~name:"vtrace/fib10-detached"
      (Staged.stage (fun () ->
           ignore (Vcc.Compile.invoke plain_w plain_c "fib" [ 10L ] ())))
  in
  let probed_w = Wasp.Runtime.create ~clean:`Async () in
  let probed_c = Vcc.Compile.compile ~name:"qfib" fib_src in
  let probes =
    match
      Vtrace.Engine.of_string
        "exit { count() by (reason) }; hypercall { hist(cycles) by (nr) }; \
         block { count() }"
    with
    | Ok e -> e
    | Error m -> failwith m
  in
  Wasp.Runtime.set_probes probed_w (Some probes);
  ignore (Vcc.Compile.invoke probed_w probed_c "fib" [ 10L ] ());
  let t_probe_on =
    Test.make ~name:"vtrace/fib10-probed"
      (Staged.stage (fun () ->
           ignore (Vcc.Compile.invoke probed_w probed_c "fib" [ 10L ] ())))
  in
  [ t_table1; t_fig2; t_fig11; t_fig12; t_fig13; t_fig14; t_aes;
    t_probe_off; t_probe_on ]

let run () =
  print_string (Stats.Report.section "Bechamel: simulator wall-clock microbenchmarks");
  Printf.printf "(real time per simulated kernel; virtual-cycle results are above)\n\n";
  let tests = make_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false () in
  List.iter
    (fun test ->
      List.iter
        (fun (name, raw) ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns_per_run ] -> Printf.printf "  %-32s %12.1f ns/run\n" name ns_per_run
          | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
        (Hashtbl.fold
           (fun k v acc -> (k, v) :: acc)
           (Benchmark.all cfg [ instance ] test)
           []))
    tests;
  print_newline ()
