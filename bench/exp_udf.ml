(* Section 7.1's UDF discussion, quantified: the cost of isolating
   database UDFs in virtines, per isolation placement, against the
   unisolated native baseline. *)

let make_table n =
  let t =
    Vdb.Table.create ~name:"bench" [ ("id", Vdb.Table.Tint); ("v", Vdb.Table.Tint) ]
  in
  for i = 1 to n do
    Vdb.Table.insert t [ Vdb.Table.Int (Int64.of_int i); Vdb.Table.Int (Int64.of_int (i * 7)) ];
  done;
  t

let pred_src = "function pred(row) { return (row.v % 3) === 0; }"

let run () =
  Bench_util.header "Section 7.1: database UDF isolation cost" "§7.1 (UDF discussion)";
  let rows = 64 in
  let t = make_table rows in
  let w = Wasp.Runtime.create ~seed:0x0DF ~clean:`Async () in
  let udfs = Vdb.Udf.create w in
  Vdb.Udf.register_js udfs ~name:"pred" ~source:pred_src ~entry:"pred";
  let clock = Wasp.Runtime.clock w in
  Vdb.Udf.register_native udfs ~name:"pred_native" (fun row ->
      (* a compiled native predicate costs a few tens of cycles per row *)
      Cycles.Clock.advance_int clock 45;
      match row with
      | Vjs.Jsvalue.Obj tbl -> (
          match Hashtbl.find_opt tbl "v" with
          | Some (Vjs.Jsvalue.Num v) ->
              Ok (Vjs.Jsvalue.Bool (Float.rem v 3.0 = 0.0))
          | _ -> Error "no v")
      | _ -> Error "bad row");
  Vdb.Udf.register_c udfs ~name:"pred_c"
    ~source:"virtine int pred(int id, int v) { return v % 3 == 0; }" ~fn:"pred";
  let expected =
    match Vdb.Query.select udfs t ~where_:"pred_native" () with
    | Ok rs -> List.length rs
    | Error e -> failwith e
  in
  let timed name f =
    (* warm once (snapshot boot), then measure *)
    ignore (f ());
    let t0 = Cycles.Clock.now clock in
    (match f () with
    | Ok rs -> assert (List.length rs = expected)
    | Error e -> failwith e);
    let cycles = Cycles.Clock.elapsed_since clock t0 in
    (name, cycles)
  in
  let results =
    [
      timed "native OCaml (no isolation)" (fun () ->
          Vdb.Query.select udfs t ~where_:"pred_native" ());
      timed "JS virtine, per-query boundary" (fun () ->
          Vdb.Query.select udfs t ~where_:"pred" ~isolation:Vdb.Query.Per_query ());
      timed "JS virtine, per-row boundary" (fun () ->
          Vdb.Query.select udfs t ~where_:"pred" ~isolation:Vdb.Query.Per_row ());
      timed "C virtine, per-row" (fun () -> Vdb.Query.select_c udfs t ~where_:"pred_c" ());
    ]
  in
  let base = match results with (_, c) :: _ -> Int64.to_float c | [] -> 1.0 in
  let rows_out =
    List.map
      (fun (name, cycles) ->
        [
          name;
          Printf.sprintf "%.1f" (Int64.to_float cycles /. Bench_util.freq_ghz /. 1e3);
          Printf.sprintf "%.1f"
            (Int64.to_float cycles /. float_of_int rows /. Bench_util.freq_ghz /. 1e3);
          Printf.sprintf "%.0fx" (Int64.to_float cycles /. base);
        ])
      results
  in
  Bench_util.table ~fig:"udf"
    ~header:[ "executor"; "query (us)"; "per row (us)"; "vs native" ]
    rows_out;
  Bench_util.note "table: %d rows; predicate keeps %d" rows expected;
  Bench_util.note
    "per-query isolation costs one virtine boundary; per-row isolates UDF calls from each other";
  Bench_util.note "(what per-process V8 cannot give, as §7.1 observes)"
