(* Figure 13: mean response latency and harmonic-mean throughput for the
   static-file HTTP server, with each request handled natively and in a
   virtine (with and without snapshotting). Each virtine request performs
   the paper's seven host interactions. Throughput comes from a
   closed-loop client population against the single-threaded server on
   the event simulator. *)

type arm = { name : string; service : now:int64 -> int64 }

let build_arms () =
  let native_env = Wasp.Hostenv.create () in
  let path = Vhttp.Fileserver.add_default_files native_env in
  let native_clock = Cycles.Clock.create () in
  let native_rng = Cycles.Rng.create ~seed:0xF1613 in
  let native =
    {
      name = "native";
      service =
        (fun ~now:_ ->
          (Vhttp.Fileserver.serve_native ~env:native_env ~clock:native_clock ~rng:native_rng
             ~path)
            .Vhttp.Fileserver.cycles);
    }
  in
  let virtine_arm ~snapshot name seed =
    let w = Wasp.Runtime.create ~seed ~clean:`Async () in
    let path = Vhttp.Fileserver.add_default_files (Wasp.Runtime.env w) in
    let compiled = Vhttp.Fileserver.compile ~snapshot in
    (* warm pool (and snapshot, when enabled) *)
    ignore (Vhttp.Fileserver.serve_virtine w compiled ~path);
    {
      name;
      service =
        (fun ~now:_ ->
          let served = Vhttp.Fileserver.serve_virtine w compiled ~path in
          assert (served.Vhttp.Fileserver.status = 200);
          served.Vhttp.Fileserver.cycles);
    }
  in
  [
    native;
    virtine_arm ~snapshot:false "virtine" 0xAA13;
    virtine_arm ~snapshot:true "virtine+snapshot" 0xBB13;
  ]

(* Client-measured latency includes the loopback TCP path (connect,
   kernel network stack, wakeups) on both sides: ~240 us per request on
   tinker-class hardware. It dominates the native baseline, which is why
   the paper's snapshotted virtines only lose ~12% throughput. *)
let connection_cycles = 650_000

let run () =
  Bench_util.header "Figure 13: HTTP server latency and throughput" "Figure 13, Section 6.3 (E7/C7)";
  let conn_rng = Cycles.Rng.create ~seed:0xC13 in
  let arms =
    List.map
      (fun arm ->
        {
          arm with
          service =
            (fun ~now ->
              Int64.add
                (Int64.of_int (Cycles.Costs.jitter conn_rng ~pct:0.10 connection_cycles))
                (arm.service ~now));
        })
      (build_arms ())
  in
  let results =
    List.map
      (fun arm ->
        (* (a) end-to-end latency distribution *)
        let lat = Bench_util.trials 150 (fun () -> arm.service ~now:0L) in
        let lat_summary = Stats.Descriptive.summarize lat in
        (* (b) closed-loop throughput on the event simulator: 8 clients,
           10 s, single-threaded server; per-second rates aggregated with
           the harmonic mean as in the paper *)
        let buckets =
          Serverless.Loadgen.run ~workers:1 ~think_time_s:0.0 ~service:arm.service
            ~profile:[ { Serverless.Loadgen.duration_s = 2.0; clients = 4 } ]
            ()
        in
        let rates =
          Array.of_list
            (List.filter_map
               (fun b ->
                 if b.Serverless.Loadgen.rps > 0.0 then Some b.Serverless.Loadgen.rps else None)
               buckets)
        in
        let tput = Stats.Descriptive.harmonic_mean rates in
        (arm.name, lat, lat_summary, tput))
      arms
  in
  let base_tput =
    match results with (_, _, _, t) :: _ -> t | [] -> 1.0
  in
  let base_lat =
    match results with (_, _, (s : Stats.Descriptive.summary), _) :: _ -> s.mean | [] -> 1.0
  in
  let rows =
    List.map
      (fun (name, _, (s : Stats.Descriptive.summary), tput) ->
        [
          name;
          Printf.sprintf "%.1f" (s.mean /. Bench_util.freq_ghz /. 1e3);
          Printf.sprintf "%.2fx" (s.mean /. base_lat);
          Printf.sprintf "%.0f" tput;
          Printf.sprintf "%+.0f%%" ((tput -. base_tput) /. base_tput *. 100.0);
        ])
      results
  in
  Bench_util.table ~fig:"fig13"
    ~header:
      [ "configuration"; "mean latency (us)"; "vs native"; "throughput (req/s)"; "tput delta" ]
    rows;
  (* tail latency per arm, from the same request samples as the means
     above; the SLO column judges each arm's p99 against a shared
     1 ms budget (generous for native, tight for plain virtines) *)
  print_string
    (Stats.Report.percentile_table ~title:"request latency percentiles" ~unit_label:"us"
       ~slo:(List.map (fun (name, _, _, _) -> (name, 1000.0)) results)
       (List.map
          (fun (name, lat, _, _) ->
            (name, Array.map (fun c -> c /. Bench_util.freq_ghz /. 1e3) lat))
          results));
  Bench_util.note "each virtine request = 7 hypercalls: read, stat, open, read, write, close, exit";
  Bench_util.note
    "paper: snapshotted virtines lose ~12%% throughput (C7: <20%%); plain virtines lose more";
  if !Bench_util.cores > 1 then begin
    Bench_util.print_blank ();
    Bench_util.note "core scaling (virtine HTTP requests under bursty closed-loop load):";
    let mk_request w =
      let path = Vhttp.Fileserver.add_default_files (Wasp.Runtime.env w) in
      let compiled = Vhttp.Fileserver.compile ~snapshot:false in
      fun () ->
        let served = Vhttp.Fileserver.serve_virtine w compiled ~path in
        assert (served.Vhttp.Fileserver.status = 200)
    in
    Core_scaling.sweep ~fig:"fig13" ~seed:0xF1613 ~mk_request ()
  end
