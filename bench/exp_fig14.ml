(* Figure 14: slowdown of JavaScript virtines relative to native for the
   base64 UDF, across the four optimization arms: plain virtine,
   +snapshot, no-teardown (NT), and +snapshot+NT. *)

let input_bytes = 512

let run () =
  Bench_util.header "Figure 14: JavaScript virtine slowdowns" "Figure 14, Section 6.5 (E8/C8)";
  let input = Vjs.Workload.make_input ~size:input_bytes in
  let expected = Vjs.Workload.reference_encode input in
  let trials = 40 in
  let baseline_clock = Cycles.Clock.create () in
  let baseline =
    Stats.Descriptive.mean
      (Bench_util.trials trials (fun () ->
           let o = Vjs.Workload.run_baseline ~clock:baseline_clock ~input in
           assert (o.Vjs.Workload.output = expected);
           o.Vjs.Workload.latency_cycles))
  in
  (* NT ("no teardown") arms retain contexts across invocations, which at
     the VM level means shell reuse (the pool); the non-NT arms create and
     destroy the context each time, like the paper's unoptimized runs. *)
  let arm name ~snapshot ~teardown seed =
    let w = Wasp.Runtime.create ~seed ~pool:(not teardown) ~clean:`Async () in
    let key = "fig14:" ^ name in
    (* include the first (boot + snapshot-taking) run in the distribution,
       as the paper does ("the bars include the overhead for taking the
       initial snapshot") *)
    let mean =
      Stats.Descriptive.mean
        (Bench_util.trials trials (fun () ->
             let o = Vjs.Workload.run_virtine w ~input ~snapshot ~teardown ~key in
             assert (o.Vjs.Workload.output = expected);
             o.Vjs.Workload.latency_cycles))
    in
    (name, mean)
  in
  let arms =
    [
      arm "Virtine" ~snapshot:false ~teardown:true 0x141;
      arm "Virtine+Snapshot" ~snapshot:true ~teardown:true 0x142;
      arm "Virtine NT" ~snapshot:false ~teardown:false 0x143;
      arm "Virtine+Snapshot+NT" ~snapshot:true ~teardown:false 0x144;
    ]
  in
  let rows =
    ([ "native (Duktape baseline)"; Printf.sprintf "%.0f" (baseline /. Bench_util.freq_ghz /. 1e3); "1.00x" ])
    :: List.map
         (fun (name, mean) ->
           [
             name;
             Printf.sprintf "%.0f" (mean /. Bench_util.freq_ghz /. 1e3);
             Printf.sprintf "%.2fx" (mean /. baseline);
           ])
         arms
  in
  Bench_util.table ~fig:"fig14" ~header:[ "configuration"; "latency (us)"; "slowdown" ] rows;
  print_newline ();
  print_string
    (Stats.Report.bar_chart ~title:"slowdown vs native"
       (("native", 1.0)
       :: List.map (fun (name, mean) -> (name, mean /. baseline)) arms));
  Bench_util.note "paper: baseline 419 us; plain virtine ~1.3x (C8 allows 1.5-2x);";
  Bench_util.note
    "snapshot roughly halves the overhead; snapshot+NT approaches pure parse+exec (137 us)"
