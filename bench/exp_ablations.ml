(* Ablations of the design choices DESIGN.md calls out, beyond the
   paper's own figures:
   - hypercall count per invocation (host-interaction cost, §6.3's root cause)
   - pooling and cleaning policy (what Figure 8's arms isolate)
   - marshalled argument size (the §7.2 copy-restore overhead) *)

let hypercall_sweep () =
  print_string (Stats.Report.section "Ablation: hypercalls per invocation");
  Printf.printf "(isolates the §6.3 host-interaction cost)\n\n";
  let w = Wasp.Runtime.create ~seed:0xAB1 ~clean:`Async () in
  let policy = Wasp.Policy.of_list [ Wasp.Hc.clock ] in
  let image k =
    (* k clock-hypercalls then exit *)
    let body =
      String.concat "\n"
        (List.concat
           (List.init k (fun _ -> [ "mov r0, 12"; "out 1, r0" ])))
    in
    Wasp.Image.of_asm_string ~name:(Printf.sprintf "hc%d" k) ~mode:Vm.Modes.Real
      (body ^ "\nmov r0, 0\nmov r1, 0\nout 1, r0\n")
  in
  let rows =
    List.map
      (fun k ->
        let img = image k in
        ignore (Wasp.Runtime.run w img ~policy ());
        let xs =
          Bench_util.trials 200 (fun () ->
              (Wasp.Runtime.run w img ~policy ()).Wasp.Runtime.cycles)
        in
        let mean = Stats.Descriptive.mean (Stats.Descriptive.tukey_filter xs) in
        [
          string_of_int k;
          Printf.sprintf "%.0f" mean;
          Printf.sprintf "%.2f" (mean /. Bench_util.freq_ghz /. 1e3);
        ])
      [ 0; 1; 2; 4; 8; 16 ]
  in
  Bench_util.table ~fig:"ablations" ~header:[ "hypercalls"; "latency (cycles)"; "latency (us)" ] rows;
  Bench_util.note "each exit is 'doubly expensive' (ring transitions); keep interactions few"

let pool_policy () =
  print_string (Stats.Report.section "Ablation: pooling and cleaning policy");
  Printf.printf "(what Figure 8's Wasp / Wasp+C / Wasp+CA arms isolate)\n\n";
  let img = Wasp.Image.of_asm_string ~name:"hlt" ~mode:Vm.Modes.Real "hlt" in
  let arm name ~pool ~clean =
    let w = Wasp.Runtime.create ~seed:0xAB2 ~pool ~clean () in
    if pool then ignore (Wasp.Runtime.run w img ());
    let xs =
      Bench_util.trials (if pool then 300 else 100) (fun () ->
          (Wasp.Runtime.run w img ()).Wasp.Runtime.cycles)
    in
    (name, Stats.Descriptive.mean (Stats.Descriptive.tukey_filter xs))
  in
  let arms =
    [
      arm "no pool (fresh VM each call)" ~pool:false ~clean:`Sync;
      arm "pool + synchronous clean" ~pool:true ~clean:`Sync;
      arm "pool + async clean" ~pool:true ~clean:`Async;
    ]
  in
  let base = snd (List.nth arms 0) in
  Bench_util.table ~fig:"ablations"
    ~header:[ "policy"; "latency (cycles)"; "vs no pool" ]
    (List.map
       (fun (n, m) -> [ n; Printf.sprintf "%.0f" m; Printf.sprintf "%.1fx" (m /. base) ])
       arms);
  Bench_util.note "recycling shells avoids the kernel's VM-state allocation entirely"

let marshalling_sweep () =
  print_string (Stats.Report.section "Ablation: marshalled input size");
  Printf.printf "(the §7.2 copy-restore argument-passing overhead)\n\n";
  let img =
    Wasp.Image.of_asm_string ~name:"marshal" ~mode:Vm.Modes.Real
      "mov r0, 0\nmov r1, 0\nout 1, r0\n"
  in
  let w = Wasp.Runtime.create ~seed:0xAB3 ~clean:`Async () in
  ignore (Wasp.Runtime.run w img ());
  let rows =
    List.map
      (fun size ->
        let input = Bytes.make size 'x' in
        let xs =
          Bench_util.trials 200 (fun () ->
              (Wasp.Runtime.run w img ~input ()).Wasp.Runtime.cycles)
        in
        let mean = Stats.Descriptive.mean (Stats.Descriptive.tukey_filter xs) in
        [ string_of_int size; Printf.sprintf "%.0f" mean ])
      [ 0; 8; 64; 256; 1024 ]
  in
  Bench_util.table ~fig:"ablations" ~header:[ "input bytes"; "latency (cycles)" ] rows;
  Bench_util.note "marshalling scales with argument bytes, 'as is typical with copy-restore RPC'"

let cow_reset_sweep () =
  print_string (Stats.Report.section "Ablation: memcpy vs copy-on-write reset");
  Printf.printf "(the SEUSS-style CoW reset the paper anticipates in §7.2)\n\n";
  (* a virtine with a parameterizable initialized footprint and a small
     per-run dirty set: CoW restore cost should stay flat while memcpy
     restore grows with the footprint *)
  let image_with_footprint kb =
    let pages = kb / 4 in
    Wasp.Image.of_asm_string ~name:(Printf.sprintf "cow%d" kb)
      (Printf.sprintf
         {|
  mov r10, 0x9000
  mov r11, 0
fill:
  st64 [r10+0], 0x41
  add r10, 4096
  add r11, 1
  cmp r11, %d
  jlt fill
  mov r0, 6
  out 1, r0
  mov r1, 0
  ld64 r1, [r1]
  mov r0, 0
  out 1, r0
|}
         pages)
      ~mem_size:(8 * 1024 * 1024)
  in
  let policy = Wasp.Policy.of_list [ Wasp.Hc.snapshot ] in
  let measure reset kb =
    let w = Wasp.Runtime.create ~seed:0xAB4 ~reset ~clean:`Async () in
    let img = image_with_footprint kb in
    let key = Printf.sprintf "cow:%d" kb in
    ignore (Wasp.Runtime.run w img ~policy ~snapshot_key:key ~args:[ 1L ] ());
    ignore (Wasp.Runtime.run w img ~policy ~snapshot_key:key ~args:[ 1L ] ());
    let xs =
      Bench_util.trials 30 (fun () ->
          (Wasp.Runtime.run w img ~policy ~snapshot_key:key ~args:[ 1L ] ()).Wasp.Runtime.cycles)
    in
    Stats.Descriptive.mean (Stats.Descriptive.tukey_filter xs)
  in
  let rows =
    List.map
      (fun kb ->
        let memcpy = measure `Memcpy kb and cow = measure `Cow kb in
        [
          Printf.sprintf "%d KB" kb;
          Printf.sprintf "%.1f" (memcpy /. Bench_util.freq_ghz /. 1e3);
          Printf.sprintf "%.1f" (cow /. Bench_util.freq_ghz /. 1e3);
          Printf.sprintf "%.1fx" (memcpy /. cow);
        ])
      [ 64; 256; 1024; 4096 ]
  in
  Bench_util.table ~fig:"ablations"
    ~header:[ "snapshot footprint"; "memcpy reset (us)"; "CoW reset (us)"; "CoW speedup" ]
    rows;
  Bench_util.note
    "§7.2: 'we expect this cost could be reduced drastically' with CoW -- confirmed:";
  Bench_util.note "memcpy reset scales with the footprint; CoW reset scales with dirty pages"

let run () =
  hypercall_sweep ();
  pool_policy ();
  marshalling_sweep ();
  cow_reset_sweep ()
