(* Table 1: boot-time breakdown for the minimal runtime environment.
   1000 trials of a long-mode bring-up; per-component minimum observed
   cycles (the paper reports minima) compared against the published
   numbers. *)

let paper_values =
  [
    ("paging ident. map", 28109);
    ("protected transition", 3217);
    ("long transition", 681);
    ("jump to 32-bit", 175);
    ("jump to 64-bit", 190);
    ("load 32-bit gdt", 4118);
    ("first instruction", 74);
  ]

let run () =
  Bench_util.header "Table 1: boot component breakdown" "Table 1, Section 4.2 (E1/C1)";
  let rng = Cycles.Rng.create ~seed:0x7AB1E1 in
  let acc = Hashtbl.create 8 in
  let trials = 1000 in
  for _ = 1 to trials do
    let mem = Vm.Memory.create ~size:(64 * 1024) in
    let clock = Cycles.Clock.create () in
    let comps = Vm.Boot.perform ~mem ~clock ~rng ~target:Vm.Modes.Long in
    List.iter
      (fun c ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt acc c.Vm.Boot.name) in
        Hashtbl.replace acc c.Vm.Boot.name (float_of_int c.Vm.Boot.cycles :: prev))
      comps
  done;
  let rows =
    List.map
      (fun (name, paper) ->
        let xs = Array.of_list (Hashtbl.find acc name) in
        let min_c = Stats.Descriptive.minimum xs in
        let mean_c = Stats.Descriptive.mean xs in
        [
          name;
          Printf.sprintf "%.0f" min_c;
          Printf.sprintf "%.0f" mean_c;
          string_of_int paper;
          Printf.sprintf "%+.0f%%" ((min_c -. float_of_int paper) /. float_of_int paper *. 100.0);
        ])
      paper_values
  in
  Bench_util.table ~fig:"table1"
    ~header:[ "component"; "min (cycles)"; "mean"; "paper (KVM)"; "delta" ]
    rows;
  let total =
    List.fold_left
      (fun a (name, _) ->
        a + int_of_float (Stats.Descriptive.minimum (Array.of_list (Hashtbl.find acc name))))
      0 paper_values
  in
  Bench_util.note "total minimal long-mode boot: %d cycles (paper: <30K + gdt; C1 claims 'tens of thousands')" total;
  Bench_util.note "%d trials; paging (identity map) dominates, as in the paper" trials
