(* Table 2: comparing costs of crossing isolation boundaries. Published
   numbers for prior systems plus our measured virtine crossing (a warm
   virtine invocation measured from user space around KVM_RUN, as the
   paper measures). *)

let published =
  [
    ("Wedge", "~60 us", "sthread call");
    ("LwC", "2.01 us", "lwSwitch");
    ("Enclosures", "0.9 us", "custom syscall interface");
    ("SeCage", "0.5 us", "VMRUN/VMFUNC");
    ("Hodor", "0.1 us", "VMRUN/VMFUNC");
  ]

let run () =
  Bench_util.header "Table 2: isolation boundary-crossing costs" "Table 2, Section 6.1";
  let w = Wasp.Runtime.create ~seed:0x7AB1E2 ~clean:`Async () in
  let img = Wasp.Image.of_asm_string ~name:"hlt" ~mode:Vm.Modes.Real "hlt" in
  ignore (Wasp.Runtime.run w img ());
  let xs =
    Stats.Descriptive.tukey_filter
      (Bench_util.trials 1000 (fun () -> (Wasp.Runtime.run w img ()).Wasp.Runtime.cycles))
  in
  let mean = Stats.Descriptive.mean xs in
  let ours =
    ( "Virtines (this repro)",
      Printf.sprintf "%.1f us" (mean /. Bench_util.freq_ghz /. 1e3),
      "syscall interface + VMRUN" )
  in
  let rows =
    List.map (fun (a, b, c) -> [ a; b; c ]) (published @ [ ours; ("Virtines (paper)", "5 us", "syscall interface + VMRUN") ])
  in
  Bench_util.table ~fig:"table2" ~header:[ "system"; "latency"; "boundary cross mechanism" ] rows;
  Bench_util.note
    "virtine crossings include the syscall + ring-switch overheads; VMFUNC-based systems do not"
