(* Figure 12: impact of image size on start-up latency. A minimal
   hlt-on-startup virtine image is zero-padded up to 16 MB; start-up cost
   becomes memory-bandwidth bound (the image copy), with a knee around
   1-2 MB. *)

let sizes =
  [ 16 * 1024; 64 * 1024; 256 * 1024; 1024 * 1024; 2 * 1024 * 1024; 4 * 1024 * 1024;
    8 * 1024 * 1024; 16 * 1024 * 1024 ]

let run () =
  Bench_util.header "Figure 12: image size vs start-up latency" "Figure 12, Section 6.2 (E6/C6)";
  let base = Wasp.Image.of_asm_string ~name:"hlt12" ~mode:Vm.Modes.Real "hlt" in
  let w = Wasp.Runtime.create ~seed:0xF1612 ~clean:`Async () in
  let hub = Bench_util.attach_telemetry w in
  let rows =
    List.map
      (fun size ->
        let img = Wasp.Image.pad_to base size in
        (* warm the pool for this memory size so only the load is cold *)
        ignore (Wasp.Runtime.run w img ());
        let trials = if size >= 4 * 1024 * 1024 then 10 else 50 in
        let xs =
          Bench_util.trials trials (fun () -> (Wasp.Runtime.run w img ()).Wasp.Runtime.cycles)
        in
        let mean = Stats.Descriptive.mean (Stats.Descriptive.tukey_filter xs) in
        let ms = mean /. Bench_util.freq_ghz /. 1e6 in
        let gbps = float_of_int size /. (ms /. 1e3) /. 1e9 in
        [
          (if size >= 1024 * 1024 then Printf.sprintf "%d MB" (size / 1024 / 1024)
           else Printf.sprintf "%d KB" (size / 1024));
          Printf.sprintf "%.0f" mean;
          Printf.sprintf "%.3f" ms;
          Printf.sprintf "%.1f" gbps;
        ])
      sizes
  in
  Bench_util.table ~fig:"fig12"
    ~header:[ "image size"; "start-up (cycles)"; "start-up (ms)"; "implied copy GB/s" ]
    rows;
  Bench_util.note "paper: 16 MB image -> 2.3 ms, ~6.8 GB/s (memcpy bandwidth of tinker)";
  Bench_util.note "the knee where copying dominates fixed costs falls at ~1-2 MB (C6)";
  Bench_util.report_telemetry ~label:"fig12" hub;
  if !Bench_util.cores > 1 then begin
    Bench_util.print_blank ();
    Bench_util.note "core scaling (1 MB image start-up under bursty closed-loop load):";
    let mk_request w =
      let img = Wasp.Image.pad_to base (1024 * 1024) in
      fun () -> ignore (Wasp.Runtime.run w img ())
    in
    Core_scaling.sweep ~fig:"fig12" ~seed:0xF1612 ~mk_request ()
  end
