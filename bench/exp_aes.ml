(* Section 6.4: OpenSSL-style library integration. The AES-128-CBC block
   cipher runs per-call in virtine context (with snapshotting); we sweep
   the chunk size like `openssl speed -evp aes-128-cbc` and report the
   slowdown vs native. The paper reports ~17x at a 16 KB block size and
   observes that virtine creation is memory-bound (the snapshot copy). *)

let chunk_sizes = [ 16; 64; 256; 1024; 2048; 4096; 16384 ]

let run () =
  Bench_util.header "Section 6.4: OpenSSL AES-128-CBC in virtine context"
    "Section 6.4 (library integration; paper reports ~17x at 16 KB)";
  let key = "0123456789abcdef" in
  let iv = Bytes.make 16 '\042' in
  let native = Vcrypto.Evp.create Vcrypto.Evp.Native ~key in
  let w = Wasp.Runtime.create ~seed:0xAE5 ~clean:`Async () in
  let virtine = Vcrypto.Evp.create (Vcrypto.Evp.Virtine w) ~key in
  let native_clock = Cycles.Clock.create () in
  let wasp_clock = Wasp.Runtime.clock w in
  (* warm: first call boots + snapshots the cipher image *)
  ignore (Vcrypto.Evp.encrypt virtine ~iv (Bytes.create 16));
  let rows =
    List.map
      (fun size ->
        let data = Bytes.init size (fun i -> Char.chr (i land 0xFF)) in
        let trials = 60 in
        let native_mean =
          Stats.Descriptive.mean
            (Bench_util.trials trials (fun () ->
                 let t0 = Cycles.Clock.now native_clock in
                 Cycles.Clock.advance_int native_clock
                   (Vcrypto.Evp.native_cycles ~len:(Bytes.length (Vcrypto.Aes.pkcs7_pad data)));
                 ignore (Vcrypto.Evp.encrypt native ~iv data);
                 Cycles.Clock.elapsed_since native_clock t0))
        in
        let virt_mean =
          Stats.Descriptive.mean
            (Bench_util.trials trials (fun () ->
                 let t0 = Cycles.Clock.now wasp_clock in
                 ignore (Vcrypto.Evp.encrypt virtine ~iv data);
                 Cycles.Clock.elapsed_since wasp_clock t0))
        in
        let tput size cycles = float_of_int size /. (cycles /. 2.69e9) /. 1e6 in
        [
          string_of_int size;
          Printf.sprintf "%.2f" (native_mean /. Bench_util.freq_ghz /. 1e3);
          Printf.sprintf "%.2f" (virt_mean /. Bench_util.freq_ghz /. 1e3);
          Printf.sprintf "%.1fx" (virt_mean /. native_mean);
          Printf.sprintf "%.0f" (tput size native_mean);
          Printf.sprintf "%.0f" (tput size virt_mean);
        ])
      chunk_sizes
  in
  Bench_util.table ~fig:"aes"
    ~header:
      [
        "chunk (B)";
        "native (us)";
        "virtine (us)";
        "slowdown";
        "native MB/s";
        "virtine MB/s";
      ]
    rows;
  Bench_util.note "virtine image ~%d KB; per-invocation cost is dominated by the snapshot copy"
    (Vcrypto.Evp.image_size / 1024);
  Bench_util.note "shape: slowdown falls as the chunk grows -- creation overhead is amortized";
  Bench_util.note
    "the paper's ~17x corresponds to ~1 us of native cipher work per call (our ~2 KB row);";
  Bench_util.note "at our AES-NI-class native speed the 16 KB row amortizes further"
