(* Paged CoW memory: snapshot-restore cost scaling. Three sweeps:

   (a) image size at a fixed dirty-page count — the warm CoW restore
       must be flat (O(dirty pages), not O(image)): the eager memcpy
       reset scales with the footprint, the paged reset does not;
   (b) dirty-page count at a fixed image size — the warm path must
       scale linearly in pages touched;
   (c) snapshot dedup — identical images captured under distinct keys
       share their pages through the content-addressed cache instead of
       doubling resident bytes.

   The guest snapshots immediately, then dirties K pages per run, so
   every warm invocation restores exactly those K pages (plus the
   argument page the marshal phase touches). *)

(* Dirty [k] pages at 4096-byte stride starting above the image origin,
   then exit. The snapshot is taken before the loop, so the loop's
   stores are the per-run dirty set. *)
let source k =
  Printf.sprintf
    {|
  mov r0, 6        ; snapshot hypercall: warm runs resume here
  out 1, r0
  mov r1, %d
  mov r2, 0x20000
dirty:
  st64 [r2+0], 0x5A
  add r2, 4096
  sub r1, 1
  cmp r1, 0
  jgt dirty
  mov r0, 0
  out 1, r0
|}
    k

let policy = Wasp.Policy.of_list [ Wasp.Hc.snapshot ]

(* Pad with a nonzero filler so the whole image is footprint (zero
   padding would dedup to the zero page and hide the scaling). *)
let image ~k ~size =
  let base =
    Wasp.Image.of_asm_string ~name:(Printf.sprintf "memshare-%d" k)
      ~mem_size:(size + (256 * 1024))
      (source k)
  in
  let code_len = Bytes.length base.Wasp.Image.code in
  let img = Wasp.Image.pad_to base size in
  Bytes.fill img.Wasp.Image.code code_len (size - code_len) '\x21';
  img

let warm_mean ?(trials = 20) w img ~key =
  (* first run is cold: boots, snapshots, retains the shell *)
  ignore (Wasp.Runtime.run w img ~policy ~snapshot_key:key ());
  ignore (Wasp.Runtime.run w img ~policy ~snapshot_key:key ());
  let xs =
    Bench_util.trials trials (fun () ->
        (Wasp.Runtime.run w img ~policy ~snapshot_key:key ()).Wasp.Runtime.cycles)
  in
  Stats.Descriptive.mean xs

let fmt_size size =
  if size >= 1024 * 1024 then Printf.sprintf "%d MB" (size / 1024 / 1024)
  else Printf.sprintf "%d KB" (size / 1024)

let size_sweep () =
  let k = 8 in
  let sizes = [ 256 * 1024; 1024 * 1024; 4 * 1024 * 1024; 16 * 1024 * 1024 ] in
  let measure reset size =
    let w = Wasp.Runtime.create ~seed:0x3A9E ~reset ~clean:`Async () in
    warm_mean w (image ~k ~size) ~key:(Printf.sprintf "ms-%d" size)
  in
  let rows =
    List.map
      (fun size ->
        let eager = measure `Memcpy size and paged = measure `Cow size in
        [
          fmt_size size;
          string_of_int k;
          Printf.sprintf "%.0f" eager;
          Printf.sprintf "%.0f" paged;
          Printf.sprintf "%.1fx" (eager /. paged);
        ])
      sizes
  in
  Bench_util.table ~fig:"memshare"
    ~title:"warm restore vs image size (fixed 8 dirty pages/run)"
    ~header:
      [ "image size"; "dirty pages"; "memcpy reset (cyc)"; "paged CoW reset (cyc)"; "speedup" ]
    rows;
  Bench_util.note
    "the memcpy reset scales with the footprint; the paged reset is flat (O(dirty pages))"

let dirty_sweep () =
  let size = 1024 * 1024 in
  let rows =
    List.map
      (fun k ->
        let w = Wasp.Runtime.create ~seed:0x3A9F ~reset:`Cow ~clean:`Async () in
        let mean = warm_mean w (image ~k ~size) ~key:(Printf.sprintf "dp-%d" k) in
        [ string_of_int k; Printf.sprintf "%.0f" mean; Printf.sprintf "%.0f" (mean /. float_of_int k) ])
      [ 1; 4; 16; 64 ]
  in
  Bench_util.table ~fig:"memshare"
    ~title:"warm restore vs dirty pages (fixed 1 MB image)"
    ~header:[ "dirty pages/run"; "warm cycles"; "cycles/page" ] rows;
  Bench_util.note "restore work grows with pages the run touched, not with the image"

let dedup_sweep () =
  Vm.Memory.Page_cache.reset ();
  let size = 1024 * 1024 in
  let w = Wasp.Runtime.create ~seed:0x3AA0 ~reset:`Cow ~clean:`Async () in
  let img = image ~k:4 ~size in
  let snap key = ignore (Wasp.Runtime.run w img ~policy ~snapshot_key:key ()) in
  let row label =
    let entries = Vm.Memory.Page_cache.entries () in
    let hits = Vm.Memory.Page_cache.hits () in
    let misses = Vm.Memory.Page_cache.misses () in
    let interned = hits + misses in
    [
      label;
      string_of_int entries;
      Printf.sprintf "%d KB" (Vm.Memory.Page_cache.bytes () / 1024);
      (if interned = 0 then "-"
       else Printf.sprintf "%.2f" (float_of_int hits /. float_of_int interned));
    ]
  in
  snap "fnA";
  let r1 = row "after snapshot fnA" in
  snap "fnB";
  let r2 = row "after snapshot fnB (same image)" in
  snap "fnC";
  let r3 = row "after snapshot fnC (same image)" in
  Bench_util.table ~fig:"memshare"
    ~title:"content-addressed dedup across snapshot keys (1 MB image)"
    ~header:[ ""; "cache pages"; "cache bytes"; "dedup ratio" ]
    [ r1; r2; r3 ];
  Bench_util.note
    "captures under new keys intern ~0 new pages: identical content is shared, not copied"

let run () =
  Bench_util.header "Memshare: paged CoW snapshot scaling"
    "Section 5.2 / Figure 12 extension (paged store)";
  size_sweep ();
  Bench_util.print_blank ();
  dirty_sweep ();
  Bench_util.print_blank ();
  dedup_sweep ();
  Bench_util.print_blank ()
