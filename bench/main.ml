(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation, plus the §6.4 study and design ablations.

   Usage:
     dune exec bench/main.exe              # run everything
     dune exec bench/main.exe -- fig11 fig14   # run a subset
     dune exec bench/main.exe -- --list    # list experiment names *)

let experiments =
  [
    ("table1", "boot component breakdown (Table 1)", Exp_table1.run);
    ("fig2", "context-creation lower bounds (Figure 2)", Exp_fig2.run);
    ("fig3", "fib(20) per processor mode (Figure 3)", Exp_fig3.run);
    ("fig4", "echo server milestones (Figure 4)", Exp_fig4.run);
    ("fig8", "creation latencies incl. Wasp and SGX (Figure 8)", Exp_fig8.run);
    ("table2", "isolation boundary-crossing costs (Table 2)", Exp_table2.run);
    ("fig11", "virtine latency vs fib(n) (Figure 11)", Exp_fig11.run);
    ("fig12", "image size vs start-up latency (Figure 12)", Exp_fig12.run);
    ("fig13", "HTTP server latency/throughput (Figure 13)", Exp_fig13.run);
    ("fig14", "JavaScript virtine slowdowns (Figure 14)", Exp_fig14.run);
    ("fig15", "serverless Vespid vs OpenWhisk (Figure 15)", Exp_fig15.run);
    ("aes", "OpenSSL AES-128-CBC integration (Section 6.4)", Exp_aes.run);
    ("udf", "database UDF isolation cost (Section 7.1)", Exp_udf.run);
    ("ablations", "design-choice ablations (hypercalls, pool, marshalling)", Exp_ablations.run);
    ("memshare", "paged CoW snapshot restore scaling (memory refactor)", Exp_memshare.run);
    ("rings", "batched hypercall ring: exits/request and throughput", Exp_rings.run);
    ("chaos", "fault injection: supervised vs unsupervised availability", Exp_chaos.run);
    ("chaos_slo", "SLO burn-rate alerting through a fault storm", Exp_chaos.run_slo);
    ("translate", "interpreter vs superblock translation cache", Exp_translate.run);
    ("bechamel", "wall-clock microbenchmarks of the simulator", Bechamel_suite.run);
  ]

let list_experiments () =
  print_endline "available experiments:";
  List.iter (fun (name, desc, _) -> Printf.printf "  %-10s %s\n" name desc) experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--telemetry" :: rest ->
        Bench_util.telemetry_enabled := true;
        parse acc rest
    | "--cores" :: n :: rest when int_of_string_opt n <> None ->
        let n = Option.get (int_of_string_opt n) in
        if n < 1 then begin
          Printf.eprintf "--cores must be >= 1\n";
          exit 1
        end;
        Bench_util.cores := n;
        parse acc rest
    | [ "--cores" ] | "--cores" :: _ ->
        Printf.eprintf "--cores needs an integer argument\n";
        exit 1
    | "--trace-json" :: path :: rest ->
        Bench_util.trace_json := Some path;
        parse acc rest
    | [ "--trace-json" ] ->
        Printf.eprintf "--trace-json needs a file argument\n";
        exit 1
    | "--json-out" :: dir :: rest ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
        else if not (Sys.is_directory dir) then begin
          Printf.eprintf "--json-out: %s exists and is not a directory\n" dir;
          exit 1
        end;
        Bench_util.json_out := Some dir;
        parse acc rest
    | [ "--json-out" ] ->
        Printf.eprintf "--json-out needs a directory argument\n";
        exit 1
    | a :: rest -> parse (a :: acc) rest
  in
  match parse [] args with
  | [ "--list" ] -> list_experiments ()
  | [] ->
      print_endline "Virtines reproduction: full evaluation";
      print_endline "(all cycle figures are simulated on the paper's tinker calibration,";
      print_endline " AMD EPYC 7281 @ 2.69 GHz; see DESIGN.md and EXPERIMENTS.md)";
      List.iter (fun (_, _, run) -> run ()) experiments;
      Bench_util.dump_trace ();
      Bench_util.dump_json ()
  | names ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) experiments with
          | Some (_, _, run) -> run ()
          | None ->
              Printf.eprintf "unknown experiment %S\n" name;
              list_experiments ();
              exit 1)
        names;
      Bench_util.dump_trace ();
      Bench_util.dump_json ()
