(* Figure 15: serverless virtine performance (Vespid) vs the
   container-based OpenWhisk baseline under the Locust-style bursty load
   profile: ramp-up, two bursts, ramp-down. Reports the per-second
   latency and achieved-throughput series for both platforms. *)

let input_bytes = 256

let run () =
  Bench_util.header "Figure 15: serverless virtines vs container platform"
    "Figure 15, Section 7.1";
  let input = Vjs.Workload.make_input ~size:input_bytes in
  let js = Vjs.Workload.base64_js_source in
  (* Vespid: virtine-backed, pooled + snapshotted *)
  let w = Wasp.Runtime.create ~seed:0xF1615 ~clean:`Async () in
  let vespid = Serverless.Vespid.create w in
  Serverless.Vespid.register vespid ~name:"b64" ~source:js ~entry:"encode";
  (* client-observed latency includes the platform front end (HTTP
     endpoint, routing): ~1.2 ms, charged to both platforms *)
  let frontend_rng = Cycles.Rng.create ~seed:0xFE15 in
  let frontend () =
    Int64.of_int (Cycles.Costs.jitter frontend_rng ~pct:0.15 3_200_000)
  in
  let vespid_service ~now:_ =
    match Serverless.Vespid.invoke_timed vespid ~name:"b64" ~input with
    | Ok _, cycles -> Int64.add (frontend ()) cycles
    | Error e, _ -> failwith e
  in
  let vespid_buckets =
    Serverless.Loadgen.run ~workers:8 ~service:vespid_service
      ~profile:Serverless.Loadgen.bursty_profile ()
  in
  (* OpenWhisk-style containers: keep-alive and in-flight decisions use
     the sim time the request starts service *)
  let ow_clock = Cycles.Clock.create () in
  let ow = Serverless.Openwhisk.create ~clock:ow_clock ~max_containers:16 () in
  Serverless.Openwhisk.register ow ~name:"b64" ~source:js ~entry:"encode";
  let ow_service ~now =
    match Serverless.Openwhisk.invoke ow ~now ~name:"b64" ~input with
    | Ok _, cycles -> Int64.add (frontend ()) cycles
    | Error e, _ -> failwith e
  in
  let ow_buckets =
    Serverless.Loadgen.run ~workers:8 ~service:ow_service
      ~profile:Serverless.Loadgen.bursty_profile ()
  in
  let ms = function None -> "-" | Some v -> Printf.sprintf "%.1f" v in
  let rows =
    List.map2
      (fun (v : Serverless.Loadgen.bucket) (o : Serverless.Loadgen.bucket) ->
        [
          Printf.sprintf "%.0f" v.Serverless.Loadgen.t_s;
          Printf.sprintf "%.0f" v.Serverless.Loadgen.rps;
          ms v.Serverless.Loadgen.mean_ms;
          Printf.sprintf "%.0f" o.Serverless.Loadgen.rps;
          ms o.Serverless.Loadgen.mean_ms;
        ])
      vespid_buckets ow_buckets
  in
  Bench_util.table ~fig:"fig15"
    ~header:[ "t (s)"; "Vespid req/s"; "Vespid ms"; "OpenWhisk req/s"; "OpenWhisk ms" ]
    rows;
  let total b = List.fold_left (fun a x -> a + x.Serverless.Loadgen.completed) 0 b in
  let mean_lat b =
    let vals = List.filter_map (fun x -> x.Serverless.Loadgen.mean_ms) b in
    if vals = [] then 0.0 else Stats.Descriptive.mean (Array.of_list vals)
  in
  Bench_util.note "Vespid: %d requests, mean %.1f ms; OpenWhisk: %d requests, mean %.1f ms"
    (total vespid_buckets) (mean_lat vespid_buckets) (total ow_buckets) (mean_lat ow_buckets);
  Bench_util.note "OpenWhisk cold starts: %d (warm hits %d); Vespid cold starts: 1 snapshot boot"
    (Serverless.Openwhisk.cold_starts ow)
    (Serverless.Openwhisk.warm_hits ow);
  Bench_util.note
    "shape: containers crater on bursts (cold-start latency spikes); virtines ride them out"
