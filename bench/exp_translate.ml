(* Binary-translation fast path: the decode-once superblock cache must
   run the same guest programs as the interpreter with bit-identical
   architectural outcomes (registers, retired count, simulated cycles)
   while spending far less host time per retired instruction.

   The gated table holds only deterministic simulated quantities —
   retired instructions, simulated cycles per engine, the divergence
   count, translated superblock counts. Wall-clock speedup depends on
   the host machine, so it is printed as an ungated note plus the
   TRANSLATE-SMOKE marker line that `make translate-smoke` greps. *)

let origin = 0x8000

(* decode-dominated: a tight countdown loop whose body carries 64-bit
   immediates — the interpreter re-fetches every immediate byte on every
   iteration, the superblock decodes them exactly once *)
let loop_src iters =
  Printf.sprintf
    {|
  mov r0, %d
top:
  mov r1, 0x123456789ABC
  mov r2, 0xFEDCBA987654
  add r1, r2
  xor r1, 0x5A5A5A5A5A5A
  sub r0, 1
  cmp r0, 0
  jgt top
  hlt
|}
    iters

(* control-flow-heavy: naive recursive fib exercises call/ret chains,
   the stack, and block re-entry from many return sites *)
let fib_src n =
  Printf.sprintf
    {|
  mov r0, %d
  call fib
  hlt
fib:
  cmp r0, 2
  jlt base
  push r0
  sub r0, 1
  call fib
  pop r1
  push r0
  mov r0, r1
  sub r0, 2
  call fib
  pop r1
  add r0, r1
  ret
base:
  ret
|}
    n

type outcome = {
  exit : string;
  regs : int64 array;
  retired : int64;
  cycles : int64;
  wall : float;
  superblocks : int;
}

let exec engine src =
  let p = Asm.assemble_string ~origin src in
  let mem = Vm.Memory.create ~size:(256 * 1024) in
  Vm.Memory.write_bytes mem ~off:p.Asm.origin p.Asm.code;
  let clock = Cycles.Clock.create () in
  let cpu = Vm.Cpu.create ~mem ~mode:Vm.Modes.Long ~clock in
  Vm.Cpu.set_pc cpu p.Asm.entry;
  Vm.Cpu.set_sp cpu 0x8000;
  let run, superblocks =
    match engine with
    | `Interp -> ((fun () -> Vm.Cpu.run cpu), fun () -> 0)
    | `Translate ->
        let tr = Vm.Translate.create cpu in
        ( (fun () -> Vm.Translate.run tr),
          fun () -> (Vm.Translate.stats tr).Vm.Translate.blocks_translated )
  in
  let t0 = Unix.gettimeofday () in
  let exit = run () in
  let wall = Unix.gettimeofday () -. t0 in
  {
    exit = Format.asprintf "%a" Vm.Cpu.pp_exit exit;
    regs = Array.init 16 (Vm.Cpu.get_reg cpu);
    retired = Vm.Cpu.instructions_retired cpu;
    cycles = Cycles.Clock.now clock;
    wall;
    superblocks = superblocks ();
  }

(* count of architectural fields that differ between the engines; the
   acceptance bar is exactly zero *)
let divergence a b =
  (if a.exit <> b.exit then 1 else 0)
  + (if a.regs <> b.regs then 1 else 0)
  + (if a.retired <> b.retired then 1 else 0)
  + if a.cycles <> b.cycles then 1 else 0

(* best-of-n wall clock to shave scheduler noise off the marker ratio *)
let best_wall n engine src =
  let rec go n best =
    if n = 0 then best
    else
      let o = exec engine src in
      go (n - 1) (if o.wall < best.wall then o else best)
  in
  go (n - 1) (exec engine src)

let run () =
  Bench_util.header "Translate: decode-once superblock cache"
    "simulator engine ablation (interpreter vs binary translation)";
  let workloads =
    [ ("loop 1M iters", loop_src 1_000_000); ("fib(24) recursive", fib_src 24) ]
  in
  let measured =
    List.map
      (fun (name, src) ->
        let i = best_wall 3 `Interp src in
        let t = best_wall 3 `Translate src in
        (name, i, t, divergence i t))
      workloads
  in
  let rows =
    List.map
      (fun (name, i, t, div) ->
        [
          name;
          Int64.to_string i.retired;
          Int64.to_string i.cycles;
          Int64.to_string t.cycles;
          string_of_int div;
          string_of_int t.superblocks;
        ])
      measured
  in
  Bench_util.table ~fig:"translate"
    ~title:"engine equivalence (simulated quantities, deterministic)"
    ~header:
      [
        "workload";
        "retired";
        "interp cycles";
        "translate cycles";
        "divergence";
        "superblocks";
      ]
    rows;
  List.iter
    (fun (name, i, t, _) ->
      Bench_util.note "%s: interp %.3fs, translated %.3fs (%.1fx wall-clock)" name
        i.wall t.wall (i.wall /. t.wall))
    measured;
  let total_div = List.fold_left (fun acc (_, _, _, d) -> acc + d) 0 measured in
  (* marker speedup: the decode-dominated loop, the workload the cache
     is built for; floor to an integer so the grep is unambiguous *)
  let _, li, lt, _ = List.hd measured in
  Printf.printf "  TRANSLATE-SMOKE: divergence=%d speedup=%dx\n" total_div
    (int_of_float (li.wall /. lt.wall));
  Bench_util.print_blank ()
