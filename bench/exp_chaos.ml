(* Chaos: availability under deterministic fault injection, supervised
   vs unsupervised. An injection-free runtime completes every invocation;
   under an armed Cycles.Fault_plan, guest hangs, provisioning failures
   and exit storms make the naive caller fail visibly, while the
   Supervisor's watchdog + bounded-retry loop holds availability at (or
   near) 100% for a bounded latency cost. Everything — the plan, the
   backoff schedule, the virtual clock — is deterministic: the same seed
   reproduces the same availability figures and the same final cycle
   count, which the last section checks by running an arm twice. *)

let rates = [ 0.0; 0.02; 0.05; 0.10 ]
let invocations = 400
let runtime_seed = 0xC4A05
let plan_seed = 0xFA17
let unsupervised_fuel = 1_000_000
let attempt_fuel = 50_000

(* Pure compute, no hypercalls: fib(12) = 144 in r0 at the halt. *)
let fib_source =
  {|
start:
  mov r1, 12
  call fib
  hlt

fib:
  cmp r1, 2
  jlt fib_base
  push r1
  sub r1, 1
  call fib
  pop r1
  push r0
  sub r1, 2
  call fib
  pop r2
  add r0, r2
  ret
fib_base:
  mov r0, r1
  ret
|}

let plan_for rate =
  Cycles.Fault_plan.create ~seed:plan_seed
    [
      (Kvmsim.Kvm.site_spurious_exit, Cycles.Fault_plan.Prob rate);
      (Kvmsim.Kvm.site_ept_storm, Cycles.Fault_plan.Prob (rate /. 2.0));
      (Kvmsim.Kvm.site_guest_hang, Cycles.Fault_plan.Prob (rate /. 2.0));
      (Kvmsim.Kvm.site_provision_fail, Cycles.Fault_plan.Prob (rate /. 4.0));
    ]

type arm = {
  available : float;    (* fraction of invocations that returned a result *)
  p99_us : float;
  retries : int;
  injected : int;
  final_cycle : int64;  (* clock position after the arm: determinism witness *)
}

let unsupervised_arm img plan =
  let w = Wasp.Runtime.create ~seed:runtime_seed () in
  Wasp.Runtime.set_fault_plan w (Some plan);
  let ok = ref 0 in
  let lat = Array.make invocations 0.0 in
  for i = 0 to invocations - 1 do
    let before = Cycles.Clock.now (Wasp.Runtime.clock w) in
    (match Wasp.Runtime.run w img ~fuel:unsupervised_fuel () with
    | { Wasp.Runtime.outcome = Wasp.Runtime.Exited _; _ } -> incr ok
    | _ -> ()
    | exception Kvmsim.Kvm.Injected_failure _ -> ());
    lat.(i) <-
      Int64.to_float (Cycles.Clock.elapsed_since (Wasp.Runtime.clock w) before)
  done;
  {
    available = float_of_int !ok /. float_of_int invocations;
    p99_us = Stats.Descriptive.percentile lat 99.0 /. Bench_util.freq_ghz /. 1e3;
    retries = 0;
    injected = Cycles.Fault_plan.total_injected plan;
    final_cycle = Cycles.Clock.now (Wasp.Runtime.clock w);
  }

let supervised_arm img plan =
  let w = Wasp.Runtime.create ~seed:runtime_seed () in
  Wasp.Runtime.set_fault_plan w (Some plan);
  let sup =
    Wasp.Supervisor.create
      ~config:
        {
          Wasp.Supervisor.default_config with
          Wasp.Supervisor.attempt_fuel = Some attempt_fuel;
          (* a long bench run should ride out unlucky streaks rather
             than quarantine its only image *)
          quarantine_threshold = 10;
        }
      w
  in
  let ok = ref 0 in
  let lat = Array.make invocations 0.0 in
  for i = 0 to invocations - 1 do
    let o = Wasp.Supervisor.run sup img () in
    (match o.Wasp.Supervisor.result with Ok _ -> incr ok | Error _ -> ());
    lat.(i) <- Int64.to_float o.Wasp.Supervisor.cycles
  done;
  {
    available = float_of_int !ok /. float_of_int invocations;
    p99_us = Stats.Descriptive.percentile lat 99.0 /. Bench_util.freq_ghz /. 1e3;
    retries = (Wasp.Supervisor.stats sup).Wasp.Supervisor.retries;
    injected = Cycles.Fault_plan.total_injected plan;
    final_cycle = Cycles.Clock.now (Wasp.Runtime.clock w);
  }

(* SLO arm: feed every supervised invocation into an availability
   objective and watch the multi-window burn-rate rules fire during a
   fault storm and clear once the quarantine cooldown elapses and clean
   traffic refills the short windows. Requests arrive on a fixed
   virtual-time cadence so the rolling windows are meaningful and the
   10M-cycle quarantine cooldown actually elapses during recovery. *)

let slo_target = 0.99
let slo_period = 4_000_000_000L
let inter_arrival = 500_000 (* cycles between request arrivals *)

(* Storm rates are deliberately brutal: with ~4 attempts per invocation
   a mild storm is absorbed by the retry loop and no budget burns. This
   one exhausts attempts, trips quarantine, and keeps the rejections
   coming — exactly the shape a burn-rate alert exists to catch. *)
let storm_plan () =
  Cycles.Fault_plan.create ~seed:plan_seed
    [
      (Kvmsim.Kvm.site_spurious_exit, Cycles.Fault_plan.Prob 0.6);
      (Kvmsim.Kvm.site_guest_hang, Cycles.Fault_plan.Prob 0.5);
      (Kvmsim.Kvm.site_provision_fail, Cycles.Fault_plan.Prob 0.4);
      (Kvmsim.Kvm.site_ept_storm, Cycles.Fault_plan.Prob 0.3);
    ]

type slo_phase_row = {
  phase : string;
  n : int;
  good : int;
  fired_cum : int;
  cleared_cum : int;
  alerting_end : bool;
  peak : float;
}

let slo_phase sup img slo ~phase ~n plan =
  let w = Wasp.Supervisor.runtime sup in
  Wasp.Runtime.set_fault_plan w plan;
  let good = ref 0 in
  for _ = 1 to n do
    Cycles.Clock.advance_int (Wasp.Runtime.clock w) inter_arrival;
    let o = Wasp.Supervisor.run sup img () in
    match o.Wasp.Supervisor.result with Ok _ -> incr good | Error _ -> ()
  done;
  {
    phase;
    n;
    good = !good;
    fired_cum = Telemetry.Slo.alerts_fired slo;
    cleared_cum = Telemetry.Slo.alerts_cleared slo;
    alerting_end = Telemetry.Slo.alerting slo;
    peak = Telemetry.Slo.peak_burn slo;
  }

let run_slo () =
  Bench_util.header "Chaos SLO: burn-rate alerting through a fault storm"
    "observability extension; SLO semantics of docs/observability.md";
  let img = Wasp.Image.of_asm_string ~name:"chaosfib" ~mode:Vm.Modes.Long fib_source in
  let w = Wasp.Runtime.create ~seed:runtime_seed () in
  let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
  Wasp.Runtime.set_telemetry w (Some hub);
  Telemetry.Hub.enable_tracing hub ~seed:runtime_seed;
  let sup =
    Wasp.Supervisor.create
      ~config:
        {
          Wasp.Supervisor.default_config with
          Wasp.Supervisor.attempt_fuel = Some attempt_fuel;
        }
      w
  in
  let slo =
    Telemetry.Slo.create ~hub ~name:"chaos_availability" ~target:slo_target
      ~period:slo_period ()
  in
  Wasp.Supervisor.set_slo sup (Some slo);
  (* sequence explicitly: list elements evaluate right-to-left *)
  let warm = slo_phase sup img slo ~phase:"warm" ~n:80 None in
  let storm = slo_phase sup img slo ~phase:"storm" ~n:80 (Some (storm_plan ())) in
  let recovery = slo_phase sup img slo ~phase:"recovery" ~n:160 None in
  let rows = [ warm; storm; recovery ] in
  Bench_util.table ~fig:"chaos_slo"
    ~header:
      [
        "phase"; "invocations"; "good"; "avail"; "alerts fired"; "alerts cleared";
        "alerting at end"; "peak burn";
      ]
    (List.map
       (fun r ->
         [
           r.phase;
           string_of_int r.n;
           string_of_int r.good;
           Printf.sprintf "%.2f%%" (100.0 *. float_of_int r.good /. float_of_int r.n);
           string_of_int r.fired_cum;
           string_of_int r.cleared_cum;
           (if r.alerting_end then "yes" else "no");
           Printf.sprintf "%.1f" r.peak;
         ])
       rows);
  let recovered = (not recovery.alerting_end) && recovery.good > storm.good in
  Bench_util.note
    "objective: %.0f%% availability over %.1fGcycles; rules: fast 5x burn, slow 2x burn"
    (slo_target *. 100.0)
    (Int64.to_float slo_period /. 1e9);
  Bench_util.note
    "SLO-SMOKE: alerts_fired=%d alerts_cleared=%d alerting_after_storm=%s recovered=%s"
    recovery.fired_cum recovery.cleared_cum
    (if storm.alerting_end then "yes" else "no")
    (if recovered then "yes" else "no");
  if recovery.fired_cum = 0 then
    Bench_util.note "WARNING: no SLO alert fired during the fault storm!";
  if not recovered then
    Bench_util.note "WARNING: SLO alert did not clear after quarantine/recovery!"

let run () =
  Bench_util.header "Chaos: supervised availability under fault injection"
    "robustness extension; fault taxonomy of docs/robustness.md";
  let img = Wasp.Image.of_asm_string ~name:"chaosfib" ~mode:Vm.Modes.Long fib_source in
  let rows =
    List.map
      (fun rate ->
        let unsup = unsupervised_arm img (plan_for rate) in
        let sup = supervised_arm img (plan_for rate) in
        [
          Printf.sprintf "%.0f%%" (rate *. 100.0);
          Printf.sprintf "%.2f%%" (unsup.available *. 100.0);
          Printf.sprintf "%.2f%%" (sup.available *. 100.0);
          Printf.sprintf "%.1f" unsup.p99_us;
          Printf.sprintf "%.1f" sup.p99_us;
          string_of_int sup.retries;
          string_of_int sup.injected;
        ])
      rates
  in
  Bench_util.table ~fig:"chaos"
    ~header:
      [
        "fault rate"; "unsup avail"; "sup avail"; "unsup p99 us"; "sup p99 us";
        "retries"; "injected";
      ]
    rows;
  Bench_util.note "unsup: plain Runtime.run, %d-instruction fuel, failures surface"
    unsupervised_fuel;
  Bench_util.note
    "sup: Supervisor watchdog (%d fuel/attempt) + <=3 retries with deterministic backoff"
    attempt_fuel;
  (* Determinism: the same plan seed and runtime seed must reproduce the
     whole supervised arm — availability, retry schedule, final clock. *)
  let a = supervised_arm img (plan_for 0.10) in
  let b = supervised_arm img (plan_for 0.10) in
  let same =
    a.available = b.available && a.retries = b.retries
    && Int64.equal a.final_cycle b.final_cycle
  in
  Bench_util.table ~fig:"chaos" ~title:"determinism (two same-seed supervised arms @ 10%)"
    ~header:[ "run"; "avail"; "retries"; "final cycle"; "identical" ]
    [
      [ "A"; Printf.sprintf "%.2f%%" (a.available *. 100.0); string_of_int a.retries;
        Int64.to_string a.final_cycle; "-" ];
      [ "B"; Printf.sprintf "%.2f%%" (b.available *. 100.0); string_of_int b.retries;
        Int64.to_string b.final_cycle; (if same then "yes" else "NO") ];
    ];
  if not same then Bench_util.note "WARNING: supervised chaos arm was not deterministic!"
