let policy_mask =
  Wasp.Policy.mask_of_list
    [ Wasp.Hc.read; Wasp.Hc.write; Wasp.Hc.open_; Wasp.Hc.close; Wasp.Hc.stat ]

let source =
  Printf.sprintf
    {|
virtine_config(%Ld) int handle() {
  char req[1024];
  int n = read(0, req, 1024);
  if (n <= 0) {
    return -1;
  }
  if (req[0] != 'G' || req[1] != 'E' || req[2] != 'T' || req[3] != ' ') {
    char *bad = "HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\n\r\n";
    write(0, bad, strlen(bad));
    return 400;
  }
  char path[128];
  int i = 4;
  int j = 0;
  while (i < n && req[i] != ' ' && j < 127) {
    path[j] = req[i];
    i = i + 1;
    j = j + 1;
  }
  path[j] = 0;
  int size = stat(path);
  if (size < 0) {
    char *nf = "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n";
    write(0, nf, strlen(nf));
    return 404;
  }
  int fd = open(path);
  char body[2048];
  int m = read(fd, body, 2048);
  char resp[4096];
  char *h = "HTTP/1.0 200 OK\r\nContent-Length: ";
  strcpy(resp, h);
  int len = strlen(h);
  char numbuf[16];
  int nd = itoa(m, numbuf);
  memcpy(resp + len, numbuf, nd);
  len = len + nd;
  resp[len] = 13;
  len = len + 1;
  resp[len] = 10;
  len = len + 1;
  resp[len] = 13;
  len = len + 1;
  resp[len] = 10;
  len = len + 1;
  memcpy(resp + len, body, m);
  len = len + m;
  write(0, resp, len);
  close(fd);
  return 200;
}
|}
    policy_mask

let compile ~snapshot = Vcc.Compile.compile ~name:"fileserver" ~snapshot source

(* The ringed handler: the same request, two exits instead of seven. One
   discrete read() pulls the request in (the host pushes the bytes, so it
   cannot ride the ring), then stat/open/read/write/close/exit are queued
   as one batch and kicked with a single ring_enter doorbell:
   - stat and open are HALT-flagged: a miss cancels the rest of the batch
     and the guest resumes to serve the 404 on the (rare) slow path;
   - read takes open's fd via a link; close takes it too;
   - the response is a vectored write — header segment plus a body
     segment whose length (-1) takes read's byte count — so the guest
     never assembles a response buffer: zero-copy straight from the file
     buffer, close-delimited (no Content-Length);
   - the final exit(200) op completes inside the drain, so the guest
     never re-enters just to leave.
   Hypercall numbers and flag values are inlined by the sprintf below
   (RING_HALT = 1, RING_VEC = 4; see docs/hypercalls.md). *)
let ring_source =
  Printf.sprintf
    {|
virtine_config(%Ld) int handle() {
  char req[1024];
  int n = read(0, req, 1024);
  if (n <= 0) {
    return -1;
  }
  if (req[0] != 'G' || req[1] != 'E' || req[2] != 'T' || req[3] != ' ') {
    char *bad = "HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\n\r\n";
    write(0, bad, strlen(bad));
    return 400;
  }
  char path[128];
  int i = 4;
  int j = 0;
  while (i < n && req[i] != ' ' && j < 127) {
    path[j] = req[i];
    i = i + 1;
    j = j + 1;
  }
  path[j] = 0;
  char body[2048];
  char *h = "HTTP/1.0 200 OK\r\n\r\n";
  int iov[4];
  iov[0] = h;
  iov[1] = strlen(h);
  iov[2] = body;
  iov[3] = -1;
  int s_stat = ring_push(%d, path, 0, 0);
  ring_flag(s_stat, 1);
  int s_open = ring_push(%d, path, 0, 0);
  ring_flag(s_open, 1);
  int s_read = ring_push(%d, 0, body, 2048);
  ring_link(s_read, s_open, 0);
  int s_write = ring_push(%d, 0, iov, 2);
  ring_flag(s_write, 4);
  ring_link(s_write, s_read, 0);
  int s_close = ring_push(%d, 0, 0, 0);
  ring_link(s_close, s_open, 0);
  ring_push(%d, 200, 0, 0);
  ring_enter();
  if (ring_result(s_stat) < 0 || ring_result(s_open) < 0) {
    char *nf = "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n";
    write(0, nf, strlen(nf));
    return 404;
  }
  return 500;
}
|}
    policy_mask Wasp.Hc.stat Wasp.Hc.open_ Wasp.Hc.read Wasp.Hc.write Wasp.Hc.close
    Wasp.Hc.exit_

let compile_ring ~snapshot =
  Vcc.Compile.compile ~name:"fileserver_ring" ~snapshot ring_source

let default_file_body =
  String.init 1024 (fun i -> Char.chr (65 + (i mod 26)))

let add_default_files env =
  Wasp.Hostenv.add_file env ~path:"/index.html" default_file_body;
  Wasp.Hostenv.add_file env ~path:"/small.txt" "hello";
  Wasp.Hostenv.add_file env ~path:"/page2.html" (String.make 2000 'x');
  "/index.html"

let request_for ~path =
  Http.request_to_string (Http.make_request "GET" path)

type served = {
  status : int;
  body : string;
  cycles : int64;
  hypercalls : int;
  exits : int;
}

let parse_served response_bytes ~cycles ~hypercalls ~exits =
  match Http.parse_response (Bytes.to_string response_bytes) with
  | Ok r -> { status = r.Http.status; body = r.Http.resp_body; cycles; hypercalls; exits }
  | Error e -> failwith ("fileserver: bad response: " ^ e)

let serve_virtine w compiled ~path =
  let vi =
    match Vcc.Compile.find_virtine compiled "handle" with
    | Some vi -> vi
    | None -> failwith "fileserver: no virtine handler"
  in
  let client_end, server_end = Wasp.Hostenv.socket_pair (Wasp.Runtime.env w) in
  ignore (Wasp.Hostenv.send client_end (Bytes.of_string (request_for ~path)));
  let snapshot_key =
    if vi.Vcc.Compile.snapshot then Some vi.Vcc.Compile.image.Wasp.Image.name else None
  in
  let runs_before = (Kvmsim.Kvm.stats (Wasp.Runtime.kvm w)).Kvmsim.Kvm.runs in
  let result =
    Wasp.Runtime.run w vi.Vcc.Compile.image ~policy:vi.Vcc.Compile.policy
      ~conn:server_end ?snapshot_key ()
  in
  let exits = (Kvmsim.Kvm.stats (Wasp.Runtime.kvm w)).Kvmsim.Kvm.runs - runs_before in
  let response = Wasp.Hostenv.recv client_end ~max:8192 in
  parse_served response ~cycles:result.Wasp.Runtime.cycles
    ~hypercalls:result.Wasp.Runtime.hypercalls ~exits

(* The native handler does the same work without any virtualization: a
   function call, the same five host syscalls, and the same response
   assembly (charged as compute proportional to bytes moved). *)
let serve_native ~env ~clock ~rng ~path =
  let start = Cycles.Clock.now clock in
  let charge c = Cycles.Clock.advance_int clock (Cycles.Costs.jitter rng ~pct:0.08 c) in
  charge Cycles.Costs.function_call;
  let request = request_for ~path in
  charge Cycles.Costs.host_read;
  let status, body =
    match Http.parse_request request with
    | Error _ -> (400, "")
    | Ok req -> (
        charge (String.length request / 4);
        charge Cycles.Costs.host_stat;
        match Wasp.Hostenv.file_size env ~path:req.Http.path with
        | None -> (404, "")
        | Some _ -> (
            charge Cycles.Costs.host_open;
            match Wasp.Hostenv.open_file env ~path:req.Http.path with
            | None -> (404, "")
            | Some fd ->
                charge Cycles.Costs.host_read;
                let contents =
                  match Wasp.Hostenv.read_fd env ~fd ~len:2048 with
                  | Some b -> Bytes.to_string b
                  | None -> ""
                in
                charge (Cycles.Costs.memcpy_cost (String.length contents));
                charge Cycles.Costs.host_write;
                charge Cycles.Costs.host_close;
                ignore (Wasp.Hostenv.close_fd env ~fd);
                (200, contents)))
  in
  { status; body; cycles = Cycles.Clock.elapsed_since clock start; hypercalls = 0; exits = 0 }
