(** The §6.3 static-file HTTP server (Figure 13).

    A single-threaded server whose connection-handling function is
    virtine-annotated. Each request costs exactly the paper's seven host
    interactions: (1) read() the request, (2) stat() the file, (3) open(),
    (4) read() the contents, (5) write() the response, (6) close(),
    (7) exit. The native baseline performs the same syscalls directly,
    without VM exits or snapshot copies. *)

val source : string
(** The connection handler in the virtine C dialect
    ([virtine_config] grants read/write/open/close/stat only). *)

val compile : snapshot:bool -> Vcc.Compile.compiled

val ring_source : string
(** The batched handler: one discrete [read] pulls the request, then
    stat/open/read/write/close/exit ride the hypercall ring as a single
    [ring_enter] doorbell — two VM exits per request instead of seven.
    The response is a vectored zero-copy write (header segment + a body
    segment whose length links to the file read's byte count); stat/open
    are halt-flagged so a miss cancels the batch and the guest serves
    the 404 on the slow path. See docs/hypercalls.md. *)

val compile_ring : snapshot:bool -> Vcc.Compile.compiled
(** {!ring_source} compiled as image ["fileserver_ring"] (the name the
    replay tooling keys on to rebuild the host environment). *)

val add_default_files : Wasp.Hostenv.t -> string
(** Populate the host filesystem with the static corpus; returns the
    path the request generator asks for. *)

val request_for : path:string -> string
(** Raw request bytes. *)

type served = {
  status : int;
  body : string;
  cycles : int64;         (** service time *)
  hypercalls : int;
  exits : int;            (** KVM_RUN exits the request cost (0 native) *)
}

val serve_virtine : Wasp.Runtime.t -> Vcc.Compile.compiled -> path:string -> served
(** Push one request through a virtine invocation of the handler and
    parse the response off the connection. *)

val serve_native :
  env:Wasp.Hostenv.t -> clock:Cycles.Clock.t -> rng:Cycles.Rng.t -> path:string -> served
(** The baseline: same request handled natively (host syscall costs
    only, plus the handler's compute). *)
