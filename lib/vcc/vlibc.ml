type builtin = Hypercall of int | Inline_rdtsc | Library

type signature = { params : Ast.ty list; ret : Ast.ty; kind : builtin }

let charp = Ast.Tptr Ast.Tchar
let int_ = Ast.Tint

let table : (string * signature) list =
  [
    (* hypercall-backed syscalls *)
    ("read", { params = [ int_; charp; int_ ]; ret = int_; kind = Hypercall Wasp.Hc.read });
    ("write", { params = [ int_; charp; int_ ]; ret = int_; kind = Hypercall Wasp.Hc.write });
    ("open", { params = [ charp ]; ret = int_; kind = Hypercall Wasp.Hc.open_ });
    ("close", { params = [ int_ ]; ret = int_; kind = Hypercall Wasp.Hc.close });
    ("stat", { params = [ charp ]; ret = int_; kind = Hypercall Wasp.Hc.stat });
    ("send", { params = [ int_; charp; int_ ]; ret = int_; kind = Hypercall Wasp.Hc.send });
    ("recv", { params = [ int_; charp; int_ ]; ret = int_; kind = Hypercall Wasp.Hc.recv });
    ("get_data", { params = [ charp; int_ ]; ret = int_; kind = Hypercall Wasp.Hc.get_data });
    ( "return_data",
      { params = [ charp; int_ ]; ret = int_; kind = Hypercall Wasp.Hc.return_data } );
    ("exit", { params = [ int_ ]; ret = Ast.Tvoid; kind = Hypercall Wasp.Hc.exit_ });
    ("snapshot", { params = []; ret = int_; kind = Hypercall Wasp.Hc.snapshot });
    ("brk", { params = [ int_ ]; ret = int_; kind = Hypercall Wasp.Hc.brk });
    ("hc_clock", { params = []; ret = int_; kind = Hypercall Wasp.Hc.clock });
    ("getrandom", { params = []; ret = int_; kind = Hypercall Wasp.Hc.getrandom });
    (* the hypercall ring (docs/hypercalls.md): queue with ring_push /
       ring_flag / ring_link, kick once with ring_enter, read CQE
       results with ring_result *)
    ("ring_enter", { params = []; ret = int_; kind = Hypercall Wasp.Hc.ring_enter });
    ("ring_push", { params = [ int_; int_; int_; int_ ]; ret = int_; kind = Library });
    ("ring_flag", { params = [ int_; int_ ]; ret = int_; kind = Library });
    ("ring_link", { params = [ int_; int_; int_ ]; ret = int_; kind = Library });
    ("ring_result", { params = [ int_ ]; ret = int_; kind = Library });
    (* inline *)
    ("rdtsc", { params = []; ret = int_; kind = Inline_rdtsc });
    (* library routines *)
    ("malloc", { params = [ int_ ]; ret = charp; kind = Library });
    ("memcpy", { params = [ charp; charp; int_ ]; ret = charp; kind = Library });
    ("memset", { params = [ charp; int_; int_ ]; ret = charp; kind = Library });
    ("strlen", { params = [ charp ]; ret = int_; kind = Library });
    ("strcmp", { params = [ charp; charp ]; ret = int_; kind = Library });
    ("strcpy", { params = [ charp; charp ]; ret = charp; kind = Library });
    ("puts", { params = [ charp ]; ret = int_; kind = Library });
    ("itoa", { params = [ int_; charp ]; ret = int_; kind = Library });
    ("atoi", { params = [ charp ]; ret = int_; kind = Library });
    ("memcmp", { params = [ charp; charp; int_ ]; ret = int_; kind = Library });
    ("strncmp", { params = [ charp; charp; int_ ]; ret = int_; kind = Library });
    ("abs", { params = [ int_ ]; ret = int_; kind = Library });
  ]

let lookup name = List.assoc_opt name table

let is_builtin name = lookup name <> None

let library_names =
  List.filter_map (fun (n, s) -> if s.kind = Library then Some n else None) table

let entry_label = "__entry"
let post_init_label = "__start_main"
let heap_ptr_label = "__heap_ptr"
let heap_start_label = "__heap_start"

(* The library is written directly against the symbolic assembler. The
   calling convention matches compiled code: arguments in r0..r5, result
   in r0, r11/r12 scratch. Each routine is its own item chunk so the
   image linker can include only what the call graph needs. *)
let malloc_items : Asm.item list =
  let open Asm in
  [
    (* char* malloc(int n): bump allocator over __heap_ptr *)
    Label "__vl_malloc";
    Insn (SBin (Instr.Add, 0, OImm 7L));
    Insn (SBin (Instr.And, 0, OImm (-8L)));
    Insn (SMov (11, OLbl heap_ptr_label));
    Insn (SLoad (Instr.W64, 12, 11, 0));
    Insn (SBin (Instr.Add, 0, OReg 12));
    Insn (SStore (Instr.W64, 11, 0, OReg 0));
    Insn (SMov (0, OReg 12));
    Insn SRet;
  ]

let memcpy_items : Asm.item list =
  let open Asm in
  [
    (* char* memcpy(char* dst, char* src, int n) *)
    Label "__vl_memcpy";
    Insn (SMov (11, OReg 0));
    Label "__vl_memcpy_loop";
    Insn (SCmp (2, OImm 0L));
    Insn (SJcc (Instr.Le, Lbl "__vl_memcpy_done"));
    Insn (SLoad (Instr.W8, 12, 1, 0));
    Insn (SStore (Instr.W8, 0, 0, OReg 12));
    Insn (SBin (Instr.Add, 0, OImm 1L));
    Insn (SBin (Instr.Add, 1, OImm 1L));
    Insn (SBin (Instr.Sub, 2, OImm 1L));
    Insn (SJmp (Lbl "__vl_memcpy_loop"));
    Label "__vl_memcpy_done";
    Insn (SMov (0, OReg 11));
    Insn SRet;
  ]

let memset_items : Asm.item list =
  let open Asm in
  [
    (* char* memset(char* dst, int c, int n) *)
    Label "__vl_memset";
    Insn (SMov (11, OReg 0));
    Label "__vl_memset_loop";
    Insn (SCmp (2, OImm 0L));
    Insn (SJcc (Instr.Le, Lbl "__vl_memset_done"));
    Insn (SStore (Instr.W8, 0, 0, OReg 1));
    Insn (SBin (Instr.Add, 0, OImm 1L));
    Insn (SBin (Instr.Sub, 2, OImm 1L));
    Insn (SJmp (Lbl "__vl_memset_loop"));
    Label "__vl_memset_done";
    Insn (SMov (0, OReg 11));
    Insn SRet;
  ]

let strlen_items : Asm.item list =
  let open Asm in
  [
    (* int strlen(char* s) *)
    Label "__vl_strlen";
    Insn (SMov (11, OImm 0L));
    Label "__vl_strlen_loop";
    Insn (SLoad (Instr.W8, 12, 0, 0));
    Insn (SCmp (12, OImm 0L));
    Insn (SJcc (Instr.Eq, Lbl "__vl_strlen_done"));
    Insn (SBin (Instr.Add, 0, OImm 1L));
    Insn (SBin (Instr.Add, 11, OImm 1L));
    Insn (SJmp (Lbl "__vl_strlen_loop"));
    Label "__vl_strlen_done";
    Insn (SMov (0, OReg 11));
    Insn SRet;
  ]

let strcmp_items : Asm.item list =
  let open Asm in
  [
    (* int strcmp(char* a, char* b) *)
    Label "__vl_strcmp";
    Label "__vl_strcmp_loop";
    Insn (SLoad (Instr.W8, 11, 0, 0));
    Insn (SLoad (Instr.W8, 12, 1, 0));
    Insn (SCmp (11, OReg 12));
    Insn (SJcc (Instr.Ne, Lbl "__vl_strcmp_diff"));
    Insn (SCmp (11, OImm 0L));
    Insn (SJcc (Instr.Eq, Lbl "__vl_strcmp_eq"));
    Insn (SBin (Instr.Add, 0, OImm 1L));
    Insn (SBin (Instr.Add, 1, OImm 1L));
    Insn (SJmp (Lbl "__vl_strcmp_loop"));
    Label "__vl_strcmp_diff";
    Insn (SMov (0, OReg 11));
    Insn (SBin (Instr.Sub, 0, OReg 12));
    Insn SRet;
    Label "__vl_strcmp_eq";
    Insn (SMov (0, OImm 0L));
    Insn SRet;
  ]

let strcpy_items : Asm.item list =
  let open Asm in
  [
    (* char* strcpy(char* dst, char* src) *)
    Label "__vl_strcpy";
    Insn (SMov (11, OReg 0));
    Label "__vl_strcpy_loop";
    Insn (SLoad (Instr.W8, 12, 1, 0));
    Insn (SStore (Instr.W8, 0, 0, OReg 12));
    Insn (SCmp (12, OImm 0L));
    Insn (SJcc (Instr.Eq, Lbl "__vl_strcpy_done"));
    Insn (SBin (Instr.Add, 0, OImm 1L));
    Insn (SBin (Instr.Add, 1, OImm 1L));
    Insn (SJmp (Lbl "__vl_strcpy_loop"));
    Label "__vl_strcpy_done";
    Insn (SMov (0, OReg 11));
    Insn SRet;
  ]

let puts_items : Asm.item list =
  let open Asm in
  [
    (* int puts(char* s): write(1, s, strlen(s)) *)
    Label "__vl_puts";
    Insn (SPush (OReg 0));
    Insn (SCall (Lbl "__vl_strlen"));
    Insn (SMov (3, OReg 0));
    Insn (SPop 2);
    Insn (SMov (1, OImm 1L));
    Insn (SMov (0, OImm (Int64.of_int Wasp.Hc.write)));
    Insn (SOut (Wasp.Hc.port, OReg 0));
    Insn SRet;
  ]

let itoa_items : Asm.item list =
  let open Asm in
  [
    (* int itoa(int n, char* buf): decimal, returns length; handles 0 and
       negatives. Digits are built in reverse then swapped in place. *)
    Label "__vl_itoa";
    Insn (SMov (11, OReg 1));     (* write cursor *)
    Insn (SCmp (0, OImm 0L));
    Insn (SJcc (Instr.Ge, Lbl "__vl_itoa_pos"));
    Insn (SStore (Instr.W8, 11, 0, OImm 45L)); (* '-' *)
    Insn (SBin (Instr.Add, 11, OImm 1L));
    Insn (SNeg 0);
    Label "__vl_itoa_pos";
    Insn (SMov (12, OReg 11));    (* first digit position *)
    Label "__vl_itoa_loop";
    Insn (SMov (2, OReg 0));
    Insn (SBin (Instr.Rem, 2, OImm 10L));
    Insn (SBin (Instr.Add, 2, OImm 48L));
    Insn (SStore (Instr.W8, 11, 0, OReg 2));
    Insn (SBin (Instr.Add, 11, OImm 1L));
    Insn (SBin (Instr.Div, 0, OImm 10L));
    Insn (SCmp (0, OImm 0L));
    Insn (SJcc (Instr.Gt, Lbl "__vl_itoa_loop"));
    (* reverse digits between r12 and r11-1 *)
    Insn (SMov (2, OReg 11));
    Insn (SBin (Instr.Sub, 2, OImm 1L));
    Label "__vl_itoa_rev";
    Insn (SCmp (12, OReg 2));
    Insn (SJcc (Instr.Ge, Lbl "__vl_itoa_done"));
    Insn (SLoad (Instr.W8, 3, 12, 0));
    Insn (SLoad (Instr.W8, 4, 2, 0));
    Insn (SStore (Instr.W8, 12, 0, OReg 4));
    Insn (SStore (Instr.W8, 2, 0, OReg 3));
    Insn (SBin (Instr.Add, 12, OImm 1L));
    Insn (SBin (Instr.Sub, 2, OImm 1L));
    Insn (SJmp (Lbl "__vl_itoa_rev"));
    Label "__vl_itoa_done";
    Insn (SStore (Instr.W8, 11, 0, OImm 0L)); (* NUL *)
    Insn (SMov (0, OReg 11));
    Insn (SBin (Instr.Sub, 0, OReg 1));
    Insn SRet;
  ]

let atoi_items : Asm.item list =
  let open Asm in
  [
    (* int atoi(char* s): optional leading '-', decimal digits *)
    Label "__vl_atoi";
    Insn (SMov (11, OImm 0L));            (* accumulator *)
    Insn (SMov (12, OImm 0L));            (* negative flag *)
    Insn (SLoad (Instr.W8, 2, 0, 0));
    Insn (SCmp (2, OImm 45L));            (* '-' *)
    Insn (SJcc (Instr.Ne, Lbl "__vl_atoi_loop"));
    Insn (SMov (12, OImm 1L));
    Insn (SBin (Instr.Add, 0, OImm 1L));
    Label "__vl_atoi_loop";
    Insn (SLoad (Instr.W8, 2, 0, 0));
    Insn (SCmp (2, OImm 48L));
    Insn (SJcc (Instr.Lt, Lbl "__vl_atoi_done"));
    Insn (SCmp (2, OImm 57L));
    Insn (SJcc (Instr.Gt, Lbl "__vl_atoi_done"));
    Insn (SBin (Instr.Mul, 11, OImm 10L));
    Insn (SBin (Instr.Sub, 2, OImm 48L));
    Insn (SBin (Instr.Add, 11, OReg 2));
    Insn (SBin (Instr.Add, 0, OImm 1L));
    Insn (SJmp (Lbl "__vl_atoi_loop"));
    Label "__vl_atoi_done";
    Insn (SCmp (12, OImm 0L));
    Insn (SJcc (Instr.Eq, Lbl "__vl_atoi_pos"));
    Insn (SNeg 11);
    Label "__vl_atoi_pos";
    Insn (SMov (0, OReg 11));
    Insn SRet;
  ]

let memcmp_items : Asm.item list =
  let open Asm in
  [
    (* int memcmp(char* a, char* b, int n) *)
    Label "__vl_memcmp";
    Label "__vl_memcmp_loop";
    Insn (SCmp (2, OImm 0L));
    Insn (SJcc (Instr.Le, Lbl "__vl_memcmp_eq"));
    Insn (SLoad (Instr.W8, 11, 0, 0));
    Insn (SLoad (Instr.W8, 12, 1, 0));
    Insn (SCmp (11, OReg 12));
    Insn (SJcc (Instr.Ne, Lbl "__vl_memcmp_diff"));
    Insn (SBin (Instr.Add, 0, OImm 1L));
    Insn (SBin (Instr.Add, 1, OImm 1L));
    Insn (SBin (Instr.Sub, 2, OImm 1L));
    Insn (SJmp (Lbl "__vl_memcmp_loop"));
    Label "__vl_memcmp_diff";
    Insn (SMov (0, OReg 11));
    Insn (SBin (Instr.Sub, 0, OReg 12));
    Insn SRet;
    Label "__vl_memcmp_eq";
    Insn (SMov (0, OImm 0L));
    Insn SRet;
  ]

let strncmp_items : Asm.item list =
  let open Asm in
  [
    (* int strncmp(char* a, char* b, int n) *)
    Label "__vl_strncmp";
    Label "__vl_strncmp_loop";
    Insn (SCmp (2, OImm 0L));
    Insn (SJcc (Instr.Le, Lbl "__vl_strncmp_eq"));
    Insn (SLoad (Instr.W8, 11, 0, 0));
    Insn (SLoad (Instr.W8, 12, 1, 0));
    Insn (SCmp (11, OReg 12));
    Insn (SJcc (Instr.Ne, Lbl "__vl_strncmp_diff"));
    Insn (SCmp (11, OImm 0L));
    Insn (SJcc (Instr.Eq, Lbl "__vl_strncmp_eq"));
    Insn (SBin (Instr.Add, 0, OImm 1L));
    Insn (SBin (Instr.Add, 1, OImm 1L));
    Insn (SBin (Instr.Sub, 2, OImm 1L));
    Insn (SJmp (Lbl "__vl_strncmp_loop"));
    Label "__vl_strncmp_diff";
    Insn (SMov (0, OReg 11));
    Insn (SBin (Instr.Sub, 0, OReg 12));
    Insn SRet;
    Label "__vl_strncmp_eq";
    Insn (SMov (0, OImm 0L));
    Insn SRet;
  ]

let abs_items : Asm.item list =
  let open Asm in
  [
    Label "__vl_abs";
    Insn (SCmp (0, OImm 0L));
    Insn (SJcc (Instr.Ge, Lbl "__vl_abs_done"));
    Insn (SNeg 0);
    Label "__vl_abs_done";
    Insn SRet;
  ]

(* Hypercall-ring shim. Slot addressing is open-coded against the fixed
   Wasp.Layout carve-out: addr = array_base + (index & (entries-1)) *
   entry_size. The cursors are monotonic u64 indices, so the masks only
   pick the storage slot. *)
let ring_mask = Int64.of_int (Wasp.Layout.ring_entries - 1)
let ring_sqes = Int64.of_int Wasp.Layout.ring_sqes
let ring_cqes = Int64.of_int Wasp.Layout.ring_cqes
let ring_sq_tail = Int64.of_int Wasp.Layout.ring_sq_tail

let ring_push_items : Asm.item list =
  let open Asm in
  [
    (* int ring_push(int nr, int a0, int a1, int a2): append one SQE at
       sq_tail (flags/args3..4/link zeroed), bump the tail, return the
       op's ring index for ring_flag/ring_link/ring_result. *)
    Label "__vl_ring_push";
    Insn (SMov (12, OImm ring_sq_tail));
    Insn (SLoad (Instr.W64, 11, 12, 0));     (* r11 = tail index *)
    Insn (SMov (12, OReg 11));
    Insn (SBin (Instr.And, 12, OImm ring_mask));
    Insn (SBin (Instr.Mul, 12, OImm (Int64.of_int Wasp.Layout.ring_sqe_size)));
    Insn (SBin (Instr.Add, 12, OImm ring_sqes));  (* r12 = SQE slot addr *)
    Insn (SStore (Instr.W64, 12, 0, OReg 0));     (* nr *)
    Insn (SStore (Instr.W64, 12, 8, OImm 0L));    (* flags *)
    Insn (SStore (Instr.W64, 12, 16, OReg 1));    (* arg0 *)
    Insn (SStore (Instr.W64, 12, 24, OReg 2));    (* arg1 *)
    Insn (SStore (Instr.W64, 12, 32, OReg 3));    (* arg2 *)
    Insn (SStore (Instr.W64, 12, 40, OImm 0L));   (* arg3 *)
    Insn (SStore (Instr.W64, 12, 48, OImm 0L));   (* arg4 *)
    Insn (SStore (Instr.W64, 12, 56, OImm 0L));   (* link *)
    Insn (SMov (2, OReg 11));
    Insn (SBin (Instr.Add, 2, OImm 1L));
    Insn (SMov (12, OImm ring_sq_tail));
    Insn (SStore (Instr.W64, 12, 0, OReg 2));     (* tail <- tail + 1 *)
    Insn (SMov (0, OReg 11));
    Insn SRet;
  ]

let ring_flag_items : Asm.item list =
  let open Asm in
  [
    (* int ring_flag(int idx, int flags): OR flags into SQE[idx].flags;
       returns idx (still in r0). *)
    Label "__vl_ring_flag";
    Insn (SMov (12, OReg 0));
    Insn (SBin (Instr.And, 12, OImm ring_mask));
    Insn (SBin (Instr.Mul, 12, OImm (Int64.of_int Wasp.Layout.ring_sqe_size)));
    Insn (SBin (Instr.Add, 12, OImm ring_sqes));
    Insn (SLoad (Instr.W64, 11, 12, 8));
    Insn (SBin (Instr.Or, 11, OReg 1));
    Insn (SStore (Instr.W64, 12, 8, OReg 11));
    Insn SRet;
  ]

let ring_link_items : Asm.item list =
  let open Asm in
  [
    (* int ring_link(int idx, int src, int pos): make SQE[idx] take
       SQE[src]'s result in argument slot pos — link = (pos << 8) |
       (idx - src), plus the link flag. Returns idx. *)
    Label "__vl_ring_link";
    Insn (SMov (11, OReg 0));
    Insn (SBin (Instr.Sub, 11, OReg 1));          (* r11 = delta *)
    Insn (SMov (12, OReg 2));
    Insn (SBin (Instr.Mul, 12, OImm 256L));
    Insn (SBin (Instr.Add, 12, OReg 11));         (* r12 = link value *)
    Insn (SMov (2, OReg 12));
    Insn (SMov (12, OReg 0));
    Insn (SBin (Instr.And, 12, OImm ring_mask));
    Insn (SBin (Instr.Mul, 12, OImm (Int64.of_int Wasp.Layout.ring_sqe_size)));
    Insn (SBin (Instr.Add, 12, OImm ring_sqes));
    Insn (SStore (Instr.W64, 12, 56, OReg 2));    (* link *)
    Insn (SLoad (Instr.W64, 11, 12, 8));
    Insn (SBin (Instr.Or, 11, OImm 2L));          (* flags |= RING_LINK *)
    Insn (SStore (Instr.W64, 12, 8, OReg 11));
    Insn SRet;
  ]

let ring_result_items : Asm.item list =
  let open Asm in
  [
    (* int ring_result(int idx): CQE[idx].result after ring_enter. *)
    Label "__vl_ring_result";
    Insn (SMov (12, OReg 0));
    Insn (SBin (Instr.And, 12, OImm ring_mask));
    Insn (SBin (Instr.Mul, 12, OImm (Int64.of_int Wasp.Layout.ring_cqe_size)));
    Insn (SBin (Instr.Add, 12, OImm ring_cqes));
    Insn (SLoad (Instr.W64, 0, 12, 0));
    Insn SRet;
  ]

(* the heap break cell: the crt0 always initializes it *)
let heap_items : Asm.item list = [ Asm.Label heap_ptr_label; Asm.Quad [ 0L ] ]

let routines =
  [
    ("malloc", malloc_items);
    ("memcpy", memcpy_items);
    ("memset", memset_items);
    ("strlen", strlen_items);
    ("strcmp", strcmp_items);
    ("strcpy", strcpy_items);
    ("puts", puts_items);
    ("itoa", itoa_items);
    ("atoi", atoi_items);
    ("memcmp", memcmp_items);
    ("strncmp", strncmp_items);
    ("abs", abs_items);
    ("ring_push", ring_push_items);
    ("ring_flag", ring_flag_items);
    ("ring_link", ring_link_items);
    ("ring_result", ring_result_items);
  ]

(* internal dependencies between routines *)
let routine_deps = function "puts" -> [ "strlen" ] | _ -> []

let items_for requested =
  let wanted = Hashtbl.create 8 in
  let rec add name =
    if List.mem_assoc name routines && not (Hashtbl.mem wanted name) then begin
      Hashtbl.replace wanted name ();
      List.iter add (routine_deps name)
    end
  in
  List.iter add requested;
  List.concat_map
    (fun (name, items) -> if Hashtbl.mem wanted name then items else [])
    routines
  @ heap_items

let library_items = items_for (List.map fst routines)

(* crt0: initialize the heap and walk the newlib init path (impure data,
   stdio tables); this is exactly the work a snapshot skips. *)
let init_items ~snapshot : Asm.item list =
  let open Asm in
  [
    Label entry_label;
    (* heap break <- __heap_start *)
    Insn (SMov (11, OLbl heap_ptr_label));
    Insn (SMov (12, OLbl heap_start_label));
    Insn (SStore (Instr.W64, 11, 0, OReg 12));
    (* newlib-style init: build the impure data area at the heap start
       (real stores, so the snapshot has something to capture). *)
    Insn (SMov (11, OImm 0L));
    Label "__libc_init_loop";
    Insn (SMov (2, OReg 12));
    Insn (SBin (Instr.Add, 2, OReg 11));
    Insn (SStore (Instr.W8, 2, 0, OImm 0L));
    Insn (SBin (Instr.Add, 11, OImm 1L));
    Insn (SCmp (11, OImm 1024L));
    Insn (SJcc (Instr.Lt, Lbl "__libc_init_loop"));
  ]
  @ (if snapshot then
       [
         Insn (SMov (0, OImm (Int64.of_int Wasp.Hc.snapshot)));
         Insn (SOut (Wasp.Hc.port, OReg 0));
       ]
     else [])
  @ [ Label post_init_label ]
