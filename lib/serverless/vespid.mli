(** Vespid: the prototype serverless platform of §7.1 (Figure 15).

    "Users register JavaScript functions ... requests are handled by a
    concurrent server which runs each serverless function in a distinct
    virtine (rather than a container) by leveraging the Wasp runtime
    API." Every invocation gets a fresh virtine; the shell pool,
    post-init snapshot and no-teardown reset keep cold starts at
    microsecond scale. *)

type t

exception Unknown_function of string

val create : Wasp.Runtime.t -> t

val runtime : t -> Wasp.Runtime.t
(** The Wasp runtime invocations execute on (also where the platform
    finds the telemetry hub: each invocation opens a per-request
    [invoke] span and bumps the [vespid_*] metrics when one is
    attached). *)

val register : t -> name:string -> source:string -> entry:string -> unit
(** Register a JS function. [entry] names the function the platform calls
    with the request payload (an array of byte values). *)

val registered : t -> string list

val invoke : t -> name:string -> input:bytes -> (string, string) result
(** Run one invocation in a distinct virtine; charges the Wasp clock.
    Returns the function's string result or a JS error.
    @raise Unknown_function *)

val invoke_timed : t -> name:string -> input:bytes -> (string, string) result * int64
(** Like {!invoke} but also returns the invocation latency in cycles.
    With a hub attached, the latency lands in [vespid_invoke_cycles]
    twice — the plain family and an [fn]-labeled series — both stamped
    with the active trace id as an exemplar when tracing is on. *)

val invoke_on : t -> core:int -> name:string -> input:bytes -> (string, string) result
(** {!invoke} pinned to a simulated core of the underlying runtime: the
    invocation charges that core's clock and uses its pool shard. *)

val invoke_timed_on :
  t -> core:int -> name:string -> input:bytes -> (string, string) result * int64
(** {!invoke_timed} pinned to a core — the latency is measured on that
    core's clock, so callers on another core (the gateway) get a
    consistent per-invocation figure. *)
