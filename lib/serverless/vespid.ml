type t = { wasp : Wasp.Runtime.t; functions : (string, Vjs.Isolate.t) Hashtbl.t }

exception Unknown_function of string

let create wasp = { wasp; functions = Hashtbl.create 8 }

let runtime t = t.wasp

let register t ~name ~source ~entry =
  Hashtbl.replace t.functions name
    (Vjs.Isolate.create t.wasp ~key:("vespid:" ^ name) ~source ~entry)

let registered t = Hashtbl.fold (fun k _ acc -> k :: acc) t.functions [] |> List.sort compare

let invoke_timed t ~name ~input =
  match Hashtbl.find_opt t.functions name with
  | Some isolate -> (
      let go () =
        let outcome, cycles = Vjs.Isolate.invoke isolate ~input in
        (match Wasp.Runtime.telemetry t.wasp with
        | Some hub ->
            Telemetry.Hub.incr hub "vespid_invocations_total";
            Telemetry.Hub.observe hub "vespid_invoke_cycles" cycles;
            (* the per-function series shares the family and carries the
               same exemplar, so a tail bucket names both the function
               and a trace that landed there *)
            let exemplar =
              match Telemetry.Hub.current_trace hub with
              | Some id -> Some (Telemetry.Tracectx.id_to_string id)
              | None -> None
            in
            Telemetry.Metrics.observe ?exemplar
              (Telemetry.Metrics.histogram
                 (Telemetry.Hub.metrics hub)
                 ~labels:[ ("fn", name) ] "vespid_invoke_cycles")
              cycles;
            (match outcome with
            | Error _ -> Telemetry.Hub.incr hub "vespid_errors_total"
            | Ok _ -> ())
        | None -> ());
        (outcome, cycles)
      in
      match Wasp.Runtime.telemetry t.wasp with
      | None -> go ()
      | Some hub -> Telemetry.Hub.with_span hub ~args:[ ("function", name) ] "invoke" go)
  | None -> raise (Unknown_function name)

let invoke t ~name ~input = fst (invoke_timed t ~name ~input)

let invoke_timed_on t ~core ~name ~input =
  Wasp.Runtime.on_core t.wasp core;
  invoke_timed t ~name ~input

let invoke_on t ~core ~name ~input = fst (invoke_timed_on t ~core ~name ~input)
