type breaker_state = Closed | Open | Half_open

type breaker_config = { failure_threshold : int; cooldown : int64 }

let default_breaker_config = { failure_threshold = 5; cooldown = 100_000_000L }

type shed_config = { burst : int; refill_per_s : float }

type breaker = {
  mutable state : breaker_state;
  mutable failures : int;  (* consecutive, while Closed *)
  mutable opened_at : int64;
}

type bucket = { mutable tokens : float; mutable last_refill : int64 }

type slo_config = {
  availability_target : float;
  latency_target : float;
  latency_threshold : int64;
  slo_period : int64;
}

let default_slo_config =
  {
    availability_target = 0.99;
    latency_target = 0.99;
    latency_threshold = 50_000_000L;
    slo_period = 10_000_000_000L;
  }

type t = {
  platform : Vespid.t;
  mutable next_core : int;
  breaker_config : breaker_config;
  breakers : (string, breaker) Hashtbl.t;
  shed : shed_config option;
  bucket : bucket;
  mutable shed_count : int;
  mutable breaker_rejections : int;
  mutable slos : (Telemetry.Slo.t * Telemetry.Slo.t) option;
      (* (availability, latency), when enabled *)
}

let create ?(breaker = default_breaker_config) ?shed platform =
  if breaker.failure_threshold < 1 then
    invalid_arg "Gateway.create: failure_threshold must be >= 1";
  (match shed with
  | Some s when s.burst < 1 || s.refill_per_s <= 0.0 ->
      invalid_arg "Gateway.create: shed config must have burst >= 1 and a positive rate"
  | Some _ | None -> ());
  {
    platform;
    next_core = 0;
    breaker_config = breaker;
    breakers = Hashtbl.create 8;
    shed;
    bucket =
      {
        tokens = (match shed with Some s -> float_of_int s.burst | None -> 0.0);
        last_refill = 0L;
      };
    shed_count = 0;
    breaker_rejections = 0;
    slos = None;
  }

let hub t = Wasp.Runtime.telemetry (Vespid.runtime t.platform)
let clock t = Wasp.Runtime.clock (Vespid.runtime t.platform)
let now t = Cycles.Clock.now (clock t)

let shed_count t = t.shed_count
let breaker_rejections t = t.breaker_rejections

let enable_slos t ?(config = default_slo_config) () =
  match hub t with
  | None -> invalid_arg "Gateway.enable_slos: platform runtime has no telemetry hub"
  | Some h ->
      let avail =
        Telemetry.Slo.create ~hub:h ~name:"gateway_availability"
          ~target:config.availability_target ~period:config.slo_period ()
      in
      let lat =
        Telemetry.Slo.create ~hub:h ~name:"gateway_latency"
          ~objective:(Telemetry.Slo.Latency_under config.latency_threshold)
          ~target:config.latency_target ~period:config.slo_period ()
      in
      t.slos <- Some (avail, lat)

let availability_slo t = Option.map fst t.slos
let latency_slo t = Option.map snd t.slos
let slos t = match t.slos with None -> [] | Some (a, l) -> [ a; l ]

(* Shed and breaker-rejected requests are bad availability — from the
   caller's side they failed, however deliberate the refusal. Latency
   is judged over completed invocations only (a 500 says nothing about
   speed; a refusal has no meaningful latency). *)
let slo_availability t ~good =
  match t.slos with
  | Some (avail, _) -> Telemetry.Slo.record avail ~good
  | None -> ()

let slo_latency t cycles =
  match t.slos with
  | Some (_, lat) -> Telemetry.Slo.record_latency lat cycles
  | None -> ()

let tincr t name =
  match hub t with Some h -> Telemetry.Hub.incr h name | None -> ()

(* vtrace "gateway" site: one fire per admission decision. *)
let fire t ~fn ~reason ~cycles =
  match Wasp.Runtime.probes (Vespid.runtime t.platform) with
  | None -> ()
  | Some e ->
      let trace =
        match hub t with
        | None -> None
        | Some h -> Telemetry.Hub.current_trace h
      in
      ignore
        (Vtrace.Engine.fire e
           (Vtrace.Ctx.make
              ~core:(Wasp.Runtime.current_core (Vespid.runtime t.platform))
              ?trace ~fn ~reason ~cycles "gateway"))

let breaker_for t name =
  match Hashtbl.find_opt t.breakers name with
  | Some b -> b
  | None ->
      let b = { state = Closed; failures = 0; opened_at = 0L } in
      Hashtbl.replace t.breakers name b;
      b

let breaker_state t ~name =
  let b = breaker_for t name in
  (* An Open breaker past its cooldown will admit the next invoke as a
     half-open probe; report it as such. *)
  match b.state with
  | Open
    when Int64.compare (Int64.sub (now t) b.opened_at) t.breaker_config.cooldown >= 0
    ->
      Half_open
  | s -> s

let note_breaker_gauge t name (b : breaker) =
  match hub t with
  | None -> ()
  | Some h ->
      let v =
        match b.state with Closed -> 0.0 | Half_open -> 0.5 | Open -> 1.0
      in
      Telemetry.Metrics.set
        (Telemetry.Metrics.gauge (Telemetry.Hub.metrics h)
           ~help:"per-function circuit breaker (0 closed, 0.5 half-open, 1 open)"
           ~labels:[ ("fn", name) ] "wasp_breaker_state")
        v

let note_success t name (b : breaker) =
  b.failures <- 0;
  if b.state <> Closed then b.state <- Closed;
  note_breaker_gauge t name b

let note_failure t name (b : breaker) =
  (match b.state with
  | Half_open ->
      (* the probe failed: straight back to Open, cooldown restarts *)
      b.state <- Open;
      b.opened_at <- now t
  | Closed ->
      b.failures <- b.failures + 1;
      if b.failures >= t.breaker_config.failure_threshold then begin
        b.state <- Open;
        b.opened_at <- now t
      end
  | Open -> ());
  note_breaker_gauge t name b

(* Token-bucket load shedding on the virtual clock: [burst] tokens,
   refilled at [refill_per_s] per virtual second. No tokens left means
   the platform is saturated; shed with a 429 rather than queue. *)
let try_take_token t =
  match t.shed with
  | None -> true
  | Some s ->
      let b = t.bucket in
      let n = now t in
      let elapsed_us =
        Cycles.Clock.to_us (clock t) (Int64.sub n b.last_refill)
      in
      b.last_refill <- n;
      b.tokens <-
        Float.min (float_of_int s.burst)
          (b.tokens +. (s.refill_per_s *. elapsed_us /. 1_000_000.0));
      if b.tokens >= 1.0 then begin
        b.tokens <- b.tokens -. 1.0;
        true
      end
      else false

let respond ?headers ~status body =
  Vhttp.Http.response_to_string (Vhttp.Http.make_response ?headers ~status body)

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

(* "name?entry=fn" -> (name, entry). Each pair splits on the first '='
   only, so an entry value may itself contain '=' (e.g. [entry=ns=main]). *)
let parse_register_target seg =
  match String.index_opt seg '?' with
  | None -> (seg, "main")
  | Some i ->
      let name = String.sub seg 0 i in
      let query = String.sub seg (i + 1) (String.length seg - i - 1) in
      let entry =
        List.find_map
          (fun kv ->
            match String.index_opt kv '=' with
            | Some j when String.sub kv 0 j = "entry" ->
                Some (String.sub kv (j + 1) (String.length kv - j - 1))
            | Some _ | None -> None)
          (String.split_on_char '&' query)
      in
      (name, Option.value ~default:"main" entry)

let invoke t name body =
  if not (try_take_token t) then begin
    t.shed_count <- t.shed_count + 1;
    tincr t "gateway_shed_total";
    fire t ~fn:name ~reason:"shed" ~cycles:0L;
    slo_availability t ~good:false;
    respond ~status:429 "overloaded, request shed\n"
  end
  else begin
    let b = breaker_for t name in
    (* Open -> Half_open once the cooldown has elapsed; the admitted
       request is the probe. *)
    (match b.state with
    | Open
      when Int64.compare (Int64.sub (now t) b.opened_at) t.breaker_config.cooldown
           >= 0 ->
        b.state <- Half_open;
        note_breaker_gauge t name b
    | Open | Half_open | Closed -> ());
    match b.state with
    | Open ->
        t.breaker_rejections <- t.breaker_rejections + 1;
        tincr t "gateway_breaker_rejections_total";
        fire t ~fn:name ~reason:"breaker" ~cycles:0L;
        slo_availability t ~good:false;
        respond ~status:503 (Printf.sprintf "circuit open for %s\n" name)
    | Closed | Half_open -> (
        (* spread requests round-robin over the simulated cores *)
        let core = t.next_core in
        t.next_core <- (core + 1) mod Wasp.Runtime.cores (Vespid.runtime t.platform);
        match
          Vespid.invoke_timed_on t.platform ~core ~name ~input:(Bytes.of_string body)
        with
        | Ok out, cycles ->
            note_success t name b;
            fire t ~fn:name ~reason:"ok" ~cycles;
            slo_availability t ~good:true;
            slo_latency t cycles;
            respond ~status:200 out
        | Error e, cycles ->
            note_failure t name b;
            fire t ~fn:name ~reason:"error" ~cycles;
            slo_availability t ~good:false;
            respond ~status:500 (Printf.sprintf "function error: %s\n" e)
        | exception Vespid.Unknown_function _ ->
            (* a bad name says nothing about the function's health *)
            fire t ~fn:name ~reason:"not_found" ~cycles:0L;
            respond ~status:404 (Printf.sprintf "no such function: %s\n" name))
  end

let route t (req : Vhttp.Http.request) =
  match (req.Vhttp.Http.meth, split_path req.Vhttp.Http.path) with
  | "GET", [ "functions" ] ->
      respond ~status:200 (String.concat "\n" (Vespid.registered t.platform) ^ "\n")
  | "POST", [ "register"; target ] ->
      let name, entry = parse_register_target target in
      if name = "" then respond ~status:400 "missing function name\n"
      else if req.Vhttp.Http.body = "" then respond ~status:400 "missing source body\n"
      else begin
        Vespid.register t.platform ~name ~source:req.Vhttp.Http.body ~entry;
        respond ~status:201 (Printf.sprintf "registered %s (entry %s)\n" name entry)
      end
  | "POST", [ "invoke"; name ] -> invoke t name req.Vhttp.Http.body
  | ("GET" | "POST"), _ -> respond ~status:404 "no such route\n"
  | _, _ -> respond ~status:405 "method not allowed\n"

let handle t raw =
  (match hub t with
  | Some h -> Telemetry.Hub.incr h "gateway_requests_total"
  | None -> ());
  match Vhttp.Http.parse_request raw with
  | Error e ->
      (match hub t with
      | Some h -> Telemetry.Hub.incr h "gateway_bad_requests_total"
      | None -> ());
      respond ~status:400 (Printf.sprintf "bad request: %s\n" e)
  | Ok req -> (
      match hub t with
      | None -> route t req
      | Some h ->
          Telemetry.Hub.with_span h
            ~args:[ ("method", req.Vhttp.Http.meth); ("path", req.Vhttp.Http.path) ]
            "route"
            (fun () -> route t req))
