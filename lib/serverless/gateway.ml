type t = { platform : Vespid.t; mutable next_core : int }

let create platform = { platform; next_core = 0 }

let hub t = Wasp.Runtime.telemetry (Vespid.runtime t.platform)

let respond ?headers ~status body =
  Vhttp.Http.response_to_string (Vhttp.Http.make_response ?headers ~status body)

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

(* "name?entry=fn" -> (name, entry). Each pair splits on the first '='
   only, so an entry value may itself contain '=' (e.g. [entry=ns=main]). *)
let parse_register_target seg =
  match String.index_opt seg '?' with
  | None -> (seg, "main")
  | Some i ->
      let name = String.sub seg 0 i in
      let query = String.sub seg (i + 1) (String.length seg - i - 1) in
      let entry =
        List.find_map
          (fun kv ->
            match String.index_opt kv '=' with
            | Some j when String.sub kv 0 j = "entry" ->
                Some (String.sub kv (j + 1) (String.length kv - j - 1))
            | Some _ | None -> None)
          (String.split_on_char '&' query)
      in
      (name, Option.value ~default:"main" entry)

let route t (req : Vhttp.Http.request) =
  match (req.Vhttp.Http.meth, split_path req.Vhttp.Http.path) with
  | "GET", [ "functions" ] ->
      respond ~status:200 (String.concat "\n" (Vespid.registered t.platform) ^ "\n")
  | "POST", [ "register"; target ] ->
      let name, entry = parse_register_target target in
      if name = "" then respond ~status:400 "missing function name\n"
      else if req.Vhttp.Http.body = "" then respond ~status:400 "missing source body\n"
      else begin
        Vespid.register t.platform ~name ~source:req.Vhttp.Http.body ~entry;
        respond ~status:201 (Printf.sprintf "registered %s (entry %s)\n" name entry)
      end
  | "POST", [ "invoke"; name ] -> (
      (* spread requests round-robin over the simulated cores *)
      let core = t.next_core in
      t.next_core <- (core + 1) mod Wasp.Runtime.cores (Vespid.runtime t.platform);
      match
        Vespid.invoke_on t.platform ~core ~name
          ~input:(Bytes.of_string req.Vhttp.Http.body)
      with
      | Ok out -> respond ~status:200 out
      | Error e -> respond ~status:500 (Printf.sprintf "function error: %s\n" e)
      | exception Vespid.Unknown_function _ ->
          respond ~status:404 (Printf.sprintf "no such function: %s\n" name))
  | ("GET" | "POST"), _ -> respond ~status:404 "no such route\n"
  | _, _ -> respond ~status:405 "method not allowed\n"

let handle t raw =
  (match hub t with
  | Some h -> Telemetry.Hub.incr h "gateway_requests_total"
  | None -> ());
  match Vhttp.Http.parse_request raw with
  | Error e ->
      (match hub t with
      | Some h -> Telemetry.Hub.incr h "gateway_bad_requests_total"
      | None -> ());
      respond ~status:400 (Printf.sprintf "bad request: %s\n" e)
  | Ok req -> (
      match hub t with
      | None -> route t req
      | Some h ->
          Telemetry.Hub.with_span h
            ~args:[ ("method", req.Vhttp.Http.meth); ("path", req.Vhttp.Http.path) ]
            "route"
            (fun () -> route t req))
