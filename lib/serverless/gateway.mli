(** Vespid's web front end (§7.1).

    "Users register JavaScript functions via a web application, which
    produces requests to our framework's main endpoint." This module is
    that endpoint: a request router over raw HTTP bytes, hardened with a
    per-function circuit breaker and token-bucket load shedding (see
    [docs/robustness.md]).

    Routes:
    - [POST /register/NAME?entry=FN] with the JS source as body -> 201
    - [POST /invoke/NAME] with the payload as body -> 200 + result
    - [GET /functions] -> 200 + newline-separated names
    Anything else -> 404/405; JS failures -> 500. Invokes may also be
    refused before reaching the platform: 429 when load is shed, 503
    while a function's breaker is open. *)

type t

type breaker_state =
  | Closed  (** healthy: requests flow *)
  | Open  (** failing: invokes are refused with 503 until the cooldown *)
  | Half_open  (** cooldown elapsed: one probe request is admitted *)

type breaker_config = {
  failure_threshold : int;
      (** consecutive 500s before the breaker opens (default 5) *)
  cooldown : int64;
      (** virtual cycles an open breaker refuses requests before
          admitting a probe (default 100_000_000) *)
}

val default_breaker_config : breaker_config

type shed_config = {
  burst : int;  (** token-bucket capacity *)
  refill_per_s : float;  (** sustained admitted requests per virtual second *)
}

val create : ?breaker:breaker_config -> ?shed:shed_config -> Vespid.t -> t
(** [shed] defaults to off (no load shedding); the circuit breaker is
    always armed. Timings (breaker cooldown, bucket refill) are measured
    on the platform runtime's virtual clock, so gateway behaviour is
    deterministic and replayable. *)

(** {1 Service-level objectives} *)

type slo_config = {
  availability_target : float;
      (** required good fraction of invoke requests (default 0.99) *)
  latency_target : float;
      (** required fraction of successful invokes under the threshold
          (default 0.99) *)
  latency_threshold : int64;
      (** latency budget per invoke, virtual cycles (default 50M,
          ~18.6ms at 2.69 GHz) *)
  slo_period : int64;
      (** rolling SLO period in virtual cycles; burn-rate windows are
          derived from it (default 10G, ~3.7 virtual seconds) *)
}

val default_slo_config : slo_config

val enable_slos : t -> ?config:slo_config -> unit -> unit
(** Declare the gateway's objectives on the platform hub: an
    availability SLO (shed and breaker-rejected requests count bad;
    404s for unknown names do not) and a latency SLO over successful
    invokes. Every invoke then feeds both and re-evaluates the
    burn-rate alerts. @raise Invalid_argument when the platform
    runtime has no telemetry hub. *)

val slos : t -> Telemetry.Slo.t list
(** The declared objectives, [[]] until {!enable_slos}. *)

val availability_slo : t -> Telemetry.Slo.t option
val latency_slo : t -> Telemetry.Slo.t option

val parse_register_target : string -> string * string
(** [parse_register_target "name?entry=fn"] is [("name", "fn")]; the
    entry defaults to ["main"]. Pairs split on the first ['='] only, so
    the entry value may itself contain ['=']. *)

val handle : t -> string -> string
(** [handle t raw_request] routes one HTTP request and returns the raw
    HTTP response. Never raises on malformed input (400). Counters on the
    runtime's hub: [gateway_requests_total], [gateway_shed_total],
    [gateway_breaker_rejections_total], and the [fn]-labeled
    [wasp_breaker_state] gauge (0 closed, 0.5 half-open, 1 open). *)

val breaker_state : t -> name:string -> breaker_state
(** [name]'s breaker as of the virtual clock (an [Open] breaker whose
    cooldown has elapsed reports [Half_open]). Functions never invoked
    report [Closed]. *)

val shed_count : t -> int
(** Requests refused with 429 by load shedding. *)

val breaker_rejections : t -> int
(** Invokes refused with 503 by an open breaker. *)
