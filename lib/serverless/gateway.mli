(** Vespid's web front end (§7.1).

    "Users register JavaScript functions via a web application, which
    produces requests to our framework's main endpoint." This module is
    that endpoint: a request router over raw HTTP bytes.

    Routes:
    - [POST /register/NAME?entry=FN] with the JS source as body -> 201
    - [POST /invoke/NAME] with the payload as body -> 200 + result
    - [GET /functions] -> 200 + newline-separated names
    Anything else -> 404/405; JS failures -> 500. *)

type t

val create : Vespid.t -> t

val parse_register_target : string -> string * string
(** [parse_register_target "name?entry=fn"] is [("name", "fn")]; the
    entry defaults to ["main"]. Pairs split on the first ['='] only, so
    the entry value may itself contain ['=']. *)

val handle : t -> string -> string
(** [handle t raw_request] routes one HTTP request and returns the raw
    HTTP response. Never raises on malformed input (400). *)
