type phase = { duration_s : float; clients : int }

let bursty_profile =
  [
    { duration_s = 5.0; clients = 2 };   (* ramp-up *)
    { duration_s = 10.0; clients = 16 }; (* burst 1 *)
    { duration_s = 5.0; clients = 4 };   (* dip *)
    { duration_s = 10.0; clients = 20 }; (* burst 2 *)
    { duration_s = 5.0; clients = 1 };   (* ramp-down *)
  ]

type bucket = {
  t_s : float;
  completed : int;
  rps : float;
  mean_ms : float option;
  p99_ms : float option;
}

type sample = { at : int64; latency : int64 }

(* Shared bucketing: fold completion samples into one-second buckets.
   Seconds with no completions report [None] latencies instead of a
   bogus 0.0 that would plot as "zero latency". *)
let bucketize ~cps ~total_end samples =
  let seconds = int_of_float (Float.ceil (Int64.to_float total_end /. cps)) in
  let buckets = Array.make (max 1 seconds) [] in
  List.iter
    (fun s ->
      let idx = min (Array.length buckets - 1) (int_of_float (Int64.to_float s.at /. cps)) in
      buckets.(idx) <- s :: buckets.(idx))
    samples;
  Array.to_list
    (Array.mapi
       (fun i bucket ->
         let completed = List.length bucket in
         if completed = 0 then
           { t_s = float_of_int (i + 1); completed = 0; rps = 0.0; mean_ms = None; p99_ms = None }
         else begin
           let lat_ms =
             Array.of_list
               (List.map (fun s -> Int64.to_float s.latency /. cps *. 1000.0) bucket)
           in
           {
             t_s = float_of_int (i + 1);
             completed;
             rps = float_of_int completed;
             mean_ms = Some (Stats.Descriptive.mean lat_ms);
             p99_ms = Some (Stats.Descriptive.percentile lat_ms 99.0);
           }
         end)
       buckets)

let run ?(freq_ghz = 2.69) ?(workers = 8) ?(think_time_s = 0.05) ~service ~profile () =
  let cps = freq_ghz *. 1e9 in
  let cycles_of_s s = Int64.of_float (s *. cps) in
  let sim = Dessim.Sim.create () in
  let server = Dessim.Sim.Server.create ~workers sim ~service in
  let samples = ref [] in
  let think = cycles_of_s think_time_s in
  (* phase boundaries *)
  let phase_windows =
    let t = ref 0.0 in
    List.map
      (fun p ->
        let start = !t in
        t := !t +. p.duration_s;
        (cycles_of_s start, cycles_of_s !t, p.clients))
      profile
  in
  let total_end =
    List.fold_left (fun acc (_, e, _) -> max acc e) 0L phase_windows
  in
  List.iter
    (fun (start, phase_end, clients) ->
      for _ = 1 to clients do
        let rec client_loop () =
          if Int64.compare (Dessim.Sim.now sim) phase_end < 0 then
            Dessim.Sim.Server.submit server ~on_done:(fun ~wait ~service ->
                samples :=
                  { at = Dessim.Sim.now sim; latency = Int64.add wait service } :: !samples;
                Dessim.Sim.schedule sim ~delay:think client_loop)
        in
        Dessim.Sim.at sim ~time:start client_loop
      done)
    phase_windows;
  Dessim.Sim.run sim;
  bucketize ~cps ~total_end !samples

let export_core_stats hub sched =
  let stats = Dessim.Cores.core_stats sched in
  Array.iteri
    (fun i (s : Dessim.Cores.core_stats) ->
      Telemetry.Hub.set_gauge hub
        (Printf.sprintf "sched_core%d_utilization" i)
        (Dessim.Cores.utilization sched ~core:i);
      Telemetry.Hub.set_gauge hub
        (Printf.sprintf "sched_core%d_busy_cycles" i)
        (Int64.to_float s.Dessim.Cores.busy_cycles);
      Telemetry.Hub.set_gauge hub
        (Printf.sprintf "sched_core%d_reclaim_cycles" i)
        (Int64.to_float s.Dessim.Cores.reclaim_cycles))
    stats;
  Telemetry.Hub.incr hub ~by:(Dessim.Cores.steals sched) "sched_steals_total";
  Telemetry.Hub.incr hub ~by:(Dessim.Cores.executed sched) "sched_tasks_total"

(* Multi-core closed loop: clients fire against the scheduler instead of
   a FIFO server, so requests run as real work on per-core clocks (with
   work stealing, and idle cycles feeding the pool's reclaim drain). *)
let run_cores ?(freq_ghz = 2.69) ?(think_time_s = 0.05) ?(steal = true) ?on_complete
    ~runtime ~request ~profile () =
  let cps = freq_ghz *. 1e9 in
  let cycles_of_s s = Int64.of_float (s *. cps) in
  let n = Wasp.Runtime.cores runtime in
  let clocks = Array.init n (Wasp.Runtime.core_clock runtime) in
  (* deferred cleaning becomes real under the scheduler: released shells
     queue per core and are cleaned during idle windows below *)
  Wasp.Runtime.set_reclaim_policy runtime Wasp.Pool.Scheduled;
  let sched =
    Dessim.Cores.create ~steal
      ~switch:(Wasp.Runtime.on_core runtime)
      ~idle:(fun ~core ~budget ->
        (* idle windows first retire deferred cleans, then pre-boot
           replacement shells with whatever budget is left (the
           pipelined refill behind the hypercall ring's fast path) *)
        let spent = Wasp.Runtime.drain_reclaim runtime ~core ~budget in
        let left = budget - spent in
        if left > 0 then spent + Wasp.Runtime.prewarm_step runtime ~core ~budget:left
        else spent)
      clocks
  in
  Dessim.Cores.set_probes sched (Wasp.Runtime.probes runtime);
  let samples = ref [] in
  let think = Int64.of_float (think_time_s *. cps) in
  let phase_windows =
    let t = ref 0.0 in
    List.map
      (fun p ->
        let start = !t in
        t := !t +. p.duration_s;
        (cycles_of_s start, cycles_of_s !t, p.clients))
      profile
  in
  let total_end =
    List.fold_left (fun acc (_, e, _) -> max acc e) 0L phase_windows
  in
  List.iter
    (fun (start, phase_end, clients) ->
      for _ = 1 to clients do
        let rec fire at =
          Dessim.Cores.submit sched ~at (fun ~core ->
              request ();
              let done_at = Cycles.Clock.now clocks.(core) in
              let latency = Int64.sub done_at at in
              samples := { at = done_at; latency } :: !samples;
              (* e.g. feed a latency SLO on the completing core's clock *)
              (match on_complete with Some f -> f ~latency | None -> ());
              let next = Int64.add done_at think in
              if Int64.compare next phase_end < 0 then fire next)
        in
        fire start
      done)
    phase_windows;
  Dessim.Cores.run sched;
  (match Wasp.Runtime.telemetry runtime with
  | Some hub -> export_core_stats hub sched
  | None -> ());
  let actual_end =
    List.fold_left (fun acc s -> max acc s.at) total_end !samples
  in
  (bucketize ~cps ~total_end:actual_end !samples, sched)
