(** Locust-style closed-loop load generator (Figure 15).

    "We produce a series of concurrent function requests (from multiple
    clients) against both platforms ... This invocation pattern involves
    an initial ramp-up period that leads to two bursts, which then ramp
    down." Clients are closed-loop: each waits for its response, thinks
    briefly, and fires again, so achieved throughput reflects platform
    latency. *)

type phase = { duration_s : float; clients : int }

val bursty_profile : phase list
(** Ramp-up, burst, dip, second burst, ramp-down. *)

type bucket = {
  t_s : float;          (** end of the 1-second bucket *)
  completed : int;
  rps : float;          (** achieved throughput in this bucket *)
  mean_ms : float option;  (** mean response latency; [None] when idle *)
  p99_ms : float option;
}

val run :
  ?freq_ghz:float ->
  ?workers:int ->
  ?think_time_s:float ->
  service:(now:int64 -> int64) ->
  profile:phase list ->
  unit ->
  bucket list
(** Simulate the profile against a [workers]-wide FIFO server whose
    per-request duration comes from [service ~now] (cycles; [now] is the
    sim time the request starts service, for keep-alive decisions).
    Returns one-second buckets covering the whole run. *)

val run_cores :
  ?freq_ghz:float ->
  ?think_time_s:float ->
  ?steal:bool ->
  ?on_complete:(latency:int64 -> unit) ->
  runtime:Wasp.Runtime.t ->
  request:(unit -> unit) ->
  profile:phase list ->
  unit ->
  bucket list * Dessim.Cores.t
(** Multi-core variant: closed-loop clients submit to a
    {!Dessim.Cores} scheduler over [runtime]'s per-core clocks. Each
    request is real work — [request ()] must perform one invocation on
    the current core, charging its clock. The pool's reclaim policy is
    switched to [Scheduled], so async cleaning consumes idle windows and
    contended acquires stall. Per-core utilization, steal and reclaim
    stats are exported to the runtime's telemetry hub (when attached) as
    [sched_*] metrics; the scheduler is returned for direct inspection.
    [on_complete] fires after every finished request with its queueing +
    service latency, on the completing core's clock — the hook for
    feeding a {!Telemetry.Slo} from a load run. *)

val export_core_stats : Telemetry.Hub.t -> Dessim.Cores.t -> unit
(** Publish a scheduler's per-core gauges ([sched_core<i>_utilization],
    [_busy_cycles], [_reclaim_cycles]) and the [sched_steals_total] /
    [sched_tasks_total] counters to [hub]. *)
