type task = { at : int64; seq : int; fn : core:int -> unit }

(* binary heap keyed by (at, seq), same discipline as Sim's event heap *)
module Heap = struct
  type t = { mutable arr : task array; mutable size : int }

  let dummy = { at = 0L; seq = 0; fn = (fun ~core:_ -> ()) }

  let create () = { arr = Array.make 16 dummy; size = 0 }

  let size h = h.size

  let earlier a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let swap h i j =
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if earlier h.arr.(i) h.arr.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && earlier h.arr.(l) h.arr.(!smallest) then smallest := l;
    if r < h.size && earlier h.arr.(r) h.arr.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h task =
    if h.size = Array.length h.arr then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.arr 0 bigger 0 h.size;
      h.arr <- bigger
    end;
    h.arr.(h.size) <- task;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let peek h = if h.size = 0 then None else Some h.arr.(0)

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.arr.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.arr.(0) <- h.arr.(h.size);
        sift_down h 0
      end;
      Some top
    end
end

type core_stats = {
  mutable executed : int;
  mutable stolen : int;
  mutable busy_cycles : int64;
  mutable idle_cycles : int64;
  mutable reclaim_cycles : int64;
}

type t = {
  clocks : Cycles.Clock.t array;
  queues : Heap.t array;
  per_core : core_stats array;
  steal : bool;
  switch : (int -> unit) option;
  idle : (core:int -> budget:int -> int) option;
  mutable next_seq : int;
  mutable rr : int;       (* round-robin cursor for unpinned submits *)
  mutable submitted : int;
  mutable probes : Vtrace.Engine.t option;
}

let create ?(steal = true) ?switch ?idle clocks =
  let n = Array.length clocks in
  if n < 1 then invalid_arg "Cores.create: need at least one clock";
  {
    clocks;
    queues = Array.init n (fun _ -> Heap.create ());
    per_core =
      Array.init n (fun _ ->
          {
            executed = 0;
            stolen = 0;
            busy_cycles = 0L;
            idle_cycles = 0L;
            reclaim_cycles = 0L;
          });
    steal;
    switch;
    idle;
    next_seq = 0;
    rr = 0;
    submitted = 0;
    probes = None;
  }

let set_probes t e = t.probes <- e

(* vtrace scheduler sites; fired outside the clocks' charged windows so
   they never perturb the schedule. *)
let fire t site ~core ~reason ~cycles ~nr =
  match t.probes with
  | None -> ()
  | Some e ->
      ignore
        (Vtrace.Engine.fire e
           (Vtrace.Ctx.make ~core ~reason ~cycles ~nr:(Int64.of_int nr) site))

let cores t = Array.length t.clocks
let core_stats t = t.per_core
let submitted t = t.submitted
let steals t = Array.fold_left (fun acc s -> acc + s.stolen) 0 t.per_core
let executed t = Array.fold_left (fun acc s -> acc + s.executed) 0 t.per_core
let pending t = Array.fold_left (fun acc q -> acc + Heap.size q) 0 t.queues

let utilization t ~core =
  let s = t.per_core.(core) in
  let busy = Int64.to_float s.busy_cycles and idle = Int64.to_float s.idle_cycles in
  if busy +. idle <= 0.0 then 0.0 else busy /. (busy +. idle)

let submit t ?affinity ?(at = 0L) fn =
  if Int64.compare at 0L < 0 then invalid_arg "Cores.submit: negative time";
  let core =
    match affinity with
    | Some c ->
        if c < 0 || c >= cores t then invalid_arg "Cores.submit: no such core";
        c
    | None ->
        let c = t.rr in
        t.rr <- (t.rr + 1) mod cores t;
        c
  in
  let task = { at; seq = t.next_seq; fn } in
  t.next_seq <- t.next_seq + 1;
  t.submitted <- t.submitted + 1;
  Heap.push t.queues.(core) task

(* The task core [c] would run next: its own queue head, or — only when
   the local queue is empty — the head of the longest other queue. *)
let candidate t c =
  match Heap.peek t.queues.(c) with
  | Some task -> Some (task, c)
  | None ->
      if not t.steal then None
      else begin
        let victim = ref (-1) and best = ref 0 in
        Array.iteri
          (fun d q ->
            if d <> c && Heap.size q > !best then begin
              best := Heap.size q;
              victim := d
            end)
          t.queues;
        if !victim < 0 then None
        else match Heap.peek t.queues.(!victim) with
          | Some task -> Some (task, !victim)
          | None -> None
      end

(* One scheduling decision: the core that can start work earliest (its
   clock, or the task release time if later; ties to the lower core id)
   claims its candidate task, spends any wait as accounted idle time —
   offered to the [idle] hook first — and runs the task on its clock.
   Returns [false] when no core has any work. *)
let step t =
  let best = ref None in
  for c = 0 to cores t - 1 do
    match candidate t c with
    | None -> ()
    | Some (task, src) ->
        let start =
          let nw = Cycles.Clock.now t.clocks.(c) in
          if Int64.compare task.at nw > 0 then task.at else nw
        in
        (match !best with
        | Some (_, _, _, s) when Int64.compare s start <= 0 -> ()
        | Some _ | None -> best := Some (c, task, src, start))
  done;
  match !best with
  | None -> false
  | Some (c, task, src, _start) ->
      (match Heap.pop t.queues.(src) with
      | Some popped -> assert (popped.seq = task.seq)
      | None -> assert false);
      if src <> c then begin
        t.per_core.(c).stolen <- t.per_core.(c).stolen + 1;
        fire t "steal" ~core:c ~reason:"steal" ~cycles:0L ~nr:src
      end;
      let clk = t.clocks.(c) in
      let nw = Cycles.Clock.now clk in
      if Int64.compare task.at nw > 0 then begin
        (* the wait until release is this core's idle window; let the
           idle hook (e.g. the pool's reclaim drain) consume it *)
        let window = Int64.sub task.at nw in
        let budget =
          if Int64.compare window (Int64.of_int max_int) > 0 then max_int
          else Int64.to_int window
        in
        let spent = match t.idle with None -> 0 | Some f -> f ~core:c ~budget in
        let s = t.per_core.(c) in
        s.idle_cycles <- Int64.add s.idle_cycles window;
        s.reclaim_cycles <- Int64.add s.reclaim_cycles (Int64.of_int spent);
        Cycles.Clock.advance clk window;
        fire t "idle" ~core:c ~reason:"wait" ~cycles:window ~nr:spent
      end;
      (match t.switch with Some f -> f c | None -> ());
      let before = Cycles.Clock.now clk in
      task.fn ~core:c;
      let s = t.per_core.(c) in
      let busy = Cycles.Clock.elapsed_since clk before in
      s.busy_cycles <- Int64.add s.busy_cycles busy;
      s.executed <- s.executed + 1;
      fire t "sched"
        ~core:c
        ~reason:(if src <> c then "stolen" else "local")
        ~cycles:busy ~nr:task.seq;
      true

let run t = while step t do () done
