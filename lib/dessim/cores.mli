(** Multi-core task scheduler over per-core virtual clocks.

    Simulates N cores executing real (cycle-charged) work: each core owns
    a run queue of release-timed tasks and a {!Cycles.Clock.t} that only
    moves when the core is busy (the task's own charges) or accountably
    idle (waiting for its next release). Scheduling is sequential and
    deterministic — at every step the core that can start work earliest
    runs its next task — so same-seed runs are byte-identical regardless
    of how work interleaves across cores.

    A core with an empty queue steals the head of the longest other
    queue (work stealing; disable with [~steal:false] to pin tasks).
    Tasks migrate; the resources they use (e.g. pooled virtine shells)
    need not — the [switch] hook tells the execution substrate which core
    is about to run so it can retarget charging.

    Idle windows are offered to the [idle] hook before the clock jumps,
    which is how the shell pool's deferred cleaning
    ({!Wasp.Pool.drain}) gets its background cycles. *)

type t

type core_stats = {
  mutable executed : int;        (** tasks run on this core *)
  mutable stolen : int;          (** tasks this core stole from others *)
  mutable busy_cycles : int64;   (** clock movement inside tasks *)
  mutable idle_cycles : int64;   (** clock movement waiting for work *)
  mutable reclaim_cycles : int64;  (** idle cycles consumed by the hook *)
}

val create :
  ?steal:bool ->
  ?switch:(int -> unit) ->
  ?idle:(core:int -> budget:int -> int) ->
  Cycles.Clock.t array ->
  t
(** One queue per clock. [steal] defaults to true. [switch core] is
    called just before a task runs on [core] (e.g.
    {!Wasp.Runtime.on_core}). [idle ~core ~budget] may spend up to
    [budget] cycles of an idle window on background work and returns the
    cycles actually used; the scheduler advances the clock over the whole
    window either way and accounts the used part as reclaim work. *)

val submit : t -> ?affinity:int -> ?at:int64 -> (core:int -> unit) -> unit
(** Enqueue a task released at absolute cycle [at] (default 0). With
    [affinity] it lands on that core's queue (stealing may still migrate
    it); otherwise queues are filled round-robin. Tasks may submit
    further tasks while running (closed-loop clients). *)

val run : t -> unit
(** Execute until every queue is empty. *)

val step : t -> bool
(** One scheduling decision; [false] when no work remains. *)

val cores : t -> int
val pending : t -> int
val submitted : t -> int
val executed : t -> int
val steals : t -> int

val core_stats : t -> core_stats array
val utilization : t -> core:int -> float
(** [busy / (busy + idle)]; 0 before the core has done anything. *)

val set_probes : t -> Vtrace.Engine.t option -> unit
(** Attach (or detach) a vtrace probe engine. Sites: ["sched"] after each
    task runs ([core] = executing core, [reason] = [local]/[stolen],
    [cycles] = the task's busy window, [nr] = its submission sequence),
    ["steal"] when a task migrates ([nr] = victim core) and ["idle"] for
    each accounted wait window ([cycles] = the window, [nr] = the cycles
    the idle hook consumed). Probes fire outside the charged windows and
    never perturb the schedule. *)
