let src = Logs.Src.create "wasp" ~doc:"Wasp micro-hypervisor runtime"

module Log = (val Logs.src_log src : Logs.LOG)

type clean_mode = [ `Sync | `Async ]

type reset_mode = [ `Memcpy | `Cow ]

type run_stats = {
  mutable invocations : int;
  mutable exited : int;
  mutable faulted : int;
  mutable fuel_exhausted : int;
  mutable hypercalls : int;
  mutable denied : int;
  mutable snapshot_restores : int;
}

type t = {
  sys : Kvmsim.Kvm.system;
  pool : Pool.t;
  pool_enabled : bool;
  snapshot_store : Snapshot_store.t;
  hostenv : Hostenv.t;
  boot_rng : Cycles.Rng.t;
  mutable tracer : Trace.t option;
  mutable telemetry : Telemetry.Hub.t option;
  mutable profiler : Profiler.Profile.t option;
  mutable recorder : Profiler.Replay.t option;
  mutable probes : Vtrace.Engine.t option;
  mutable last_flight : string option;
  reset : reset_mode;
  run_stats : run_stats;
  retained : (string, Pool.shell) Hashtbl.t;
      (* CoW mode: one shell per snapshot key, kept dirty between
         invocations; the next restore rewrites only the dirty pages *)
}

let create ?(seed = 0xACE) ?freq_ghz ?(pool = true) ?(clean = `Sync) ?(reset = `Memcpy)
    ?(cores = 1) ?pool_capacity ?snapshot_capacity ?(translate = true) ?flight_capacity
    () =
  let sys = Kvmsim.Kvm.open_dev ~seed ?freq_ghz ~cores ~translate () in
  (* The flight recorder charges no cycles, so it stays attached for the
     runtime's whole life: every VM exit is always in the black box. *)
  Kvmsim.Kvm.set_flight sys
    (Some (Profiler.Flight.create ?capacity:flight_capacity ()));
  (* Name the hypercall port so exit-level observers (vtrace) can tell
     hypercall exits from plain I/O. *)
  Kvmsim.Kvm.set_hc_port sys (Some Hc.port);
  let clean = match clean with `Sync -> Pool.Sync | `Async -> Pool.Async in
  {
    sys;
    pool = Pool.create ?capacity:pool_capacity sys ~clean;
    pool_enabled = pool;
    snapshot_store = Snapshot_store.create ?capacity:snapshot_capacity ();
    hostenv = Hostenv.create ();
    boot_rng = Cycles.Rng.split (Kvmsim.Kvm.rng sys);
    tracer = None;
    telemetry = None;
    profiler = None;
    recorder = None;
    probes = None;
    last_flight = None;
    reset;
    run_stats =
      {
        invocations = 0;
        exited = 0;
        faulted = 0;
        fuel_exhausted = 0;
        hypercalls = 0;
        denied = 0;
        snapshot_restores = 0;
      };
    retained = Hashtbl.create 8;
  }

let clock t = Kvmsim.Kvm.clock t.sys
let core_clock t core = Kvmsim.Kvm.core_clock t.sys core
let cores t = Kvmsim.Kvm.cores t.sys
let on_core t core = Kvmsim.Kvm.set_core t.sys core
let current_core t = Kvmsim.Kvm.current_core t.sys
let set_reclaim_policy t policy = Pool.set_reclaim_policy t.pool policy
let drain_reclaim t ~core ~budget = Pool.drain t.pool ~core ~budget
let reclaim_depth t ~core = Pool.reclaim_depth t.pool ~core
let set_prewarm t cfg = Pool.set_prewarm t.pool cfg
let prewarm_step t ~core ~budget = Pool.prewarm_step t.pool ~core ~budget
let prewarm_depth t ~core = Pool.prewarm_depth t.pool ~core
let rng t = Kvmsim.Kvm.rng t.sys
let env t = t.hostenv
let kvm t = t.sys
let pool_stats t = Pool.stats t.pool
let snapshots t = t.snapshot_store
let drop_snapshot t ~key = Snapshot_store.clear t.snapshot_store ~key

let stats t = t.run_stats

let set_telemetry t hub =
  t.telemetry <- hub;
  Pool.set_telemetry t.pool hub;
  Snapshot_store.set_telemetry t.snapshot_store hub;
  Kvmsim.Kvm.set_telemetry t.sys hub;
  match t.tracer with Some tr -> Trace.mirror tr hub | None -> ()

let telemetry t = t.telemetry

let set_profiler t p = t.profiler <- p
let profiler t = t.profiler

let set_recorder t r = t.recorder <- r
let recorder t = t.recorder

let set_probes t e =
  t.probes <- e;
  Kvmsim.Kvm.set_probes t.sys e;
  Pool.set_probes t.pool e

let probes t = t.probes

let flight t = Kvmsim.Kvm.flight t.sys
let flight_dump t = t.last_flight
let clear_flight_dump t = t.last_flight <- None

let set_fault_plan t plan = Kvmsim.Kvm.set_fault_plan t.sys plan
let fault_plan t = Kvmsim.Kvm.fault_plan t.sys

(* Telemetry shims: all no-ops when no hub is attached. *)
let tspan t ?args name f =
  match t.telemetry with None -> f () | Some h -> Telemetry.Hub.with_span h ?args name f

let tincr t ?by name =
  match t.telemetry with None -> () | Some h -> Telemetry.Hub.incr h ?by name

let tobserve t name v =
  match t.telemetry with None -> () | Some h -> Telemetry.Hub.observe h name v

let active_trace t =
  match t.telemetry with None -> None | Some h -> Telemetry.Hub.current_trace h

let record_result t (outcome_kind : [ `Exited | `Faulted | `Fuel ]) ~hypercalls ~denied
    ~from_snapshot =
  let s = t.run_stats in
  s.invocations <- s.invocations + 1;
  tincr t "wasp_invocations_total";
  (match outcome_kind with
  | `Exited ->
      s.exited <- s.exited + 1;
      tincr t "wasp_exited_total"
  | `Faulted ->
      s.faulted <- s.faulted + 1;
      tincr t "wasp_faulted_total"
  | `Fuel ->
      s.fuel_exhausted <- s.fuel_exhausted + 1;
      tincr t "wasp_fuel_exhausted_total");
  s.hypercalls <- s.hypercalls + hypercalls;
  s.denied <- s.denied + denied;
  tincr t ~by:hypercalls "wasp_hypercalls_total";
  tincr t ~by:denied "wasp_denied_hypercalls_total";
  if from_snapshot then begin
    s.snapshot_restores <- s.snapshot_restores + 1;
    tincr t "wasp_snapshot_restores_total"
  end

let set_trace t tr =
  (match tr with
  | Some tr ->
      Trace.attach_clock tr (clock t);
      Trace.mirror tr t.telemetry
  | None -> ());
  t.tracer <- tr

let trace t = t.tracer
let emit t e = match t.tracer with Some tr -> Trace.record tr e | None -> ()

type outcome = Exited of int64 | Faulted of Vm.Cpu.fault | Fuel_exhausted

type result = {
  outcome : outcome;
  return_value : int64;
  output : bytes option;
  console : string;
  cycles : int64;
  hypercalls : int;
  denied : int;
  pointer_violations : int;
  from_snapshot : bool;
  from_pool : bool;
}

let charge t cycles = Cycles.Clock.advance_int (clock t) cycles

(* Page-sharing gauges, refreshed at the end of every invocation (free:
   gauges charge no cycles). *)
let note_mem_gauges t mem =
  match t.telemetry with
  | None -> ()
  | Some h ->
      let st = Vm.Memory.page_stats mem in
      Telemetry.Hub.set_gauge h "wasp_mem_resident_pages" (float_of_int st.Vm.Memory.resident_pages);
      Telemetry.Hub.set_gauge h "wasp_mem_shared_pages" (float_of_int st.Vm.Memory.shared_pages);
      Telemetry.Hub.set_gauge h "wasp_mem_resident_bytes"
        (float_of_int (Vm.Memory.resident_bytes mem));
      Telemetry.Hub.set_gauge h "vm_page_cache_entries"
        (float_of_int (Vm.Memory.Page_cache.entries ()));
      Telemetry.Hub.set_gauge h "vm_page_cache_bytes"
        (float_of_int (Vm.Memory.Page_cache.bytes ()))

let acquire_shell t ~mem_size ~mode =
  if t.pool_enabled then Pool.acquire t.pool ~mem_size ~mode
  else begin
    (* Pool-less runtimes still benefit from pipelined pre-boot: a
       pre-built shell replaces the whole creation path with a handoff. *)
    match Pool.take_prewarmed t.pool ~mem_size ~mode with
    | Some shell -> (shell, false)
    | None ->
        let stats = Pool.stats t.pool in
        stats.created <- stats.created + 1;
        let vm = Kvmsim.Kvm.create_vm t.sys in
        let mem = Kvmsim.Kvm.set_user_memory_region vm ~size:mem_size in
        let vcpu = Kvmsim.Kvm.create_vcpu vm ~mode in
        ( ({ vm; vcpu; mem; mem_size; home = Kvmsim.Kvm.current_core t.sys } : Pool.shell),
          false )
  end

let release_shell t shell = if t.pool_enabled then Pool.release t.pool shell

(* Dispatch one hypercall: policy check, then client override or canned
   handler. Returns the value for r0 and whether execution should stop.
   Numbers outside [0, Hc.count) are rejected up front with [err_inval]
   (and a flight note) — they must never reach the policy bitmask or a
   handler table, where an attacker-controlled number could alias a
   permitted entry. *)
let dispatch t ~policy ~handlers ~(inv : Inv.t) ~take_snapshot nr args =
  if nr < 0 || nr >= Hc.count then begin
    inv.hypercalls <- inv.hypercalls + 1;
    Log.debug (fun m -> m "hypercall number %d out of range" nr);
    (match Kvmsim.Kvm.flight t.sys with
    | Some fr ->
        Profiler.Flight.append_note fr
          (Printf.sprintf "hypercall out of range: %d -> EINVAL" nr)
    | None -> ());
    Hc.err_inval
  end
  else
  let allowed = Policy.allows policy nr in
  tspan t ~args:[ ("nr", Hc.name nr); ("allowed", string_of_bool allowed) ] "hypercall"
    (fun () ->
      inv.hypercalls <- inv.hypercalls + 1;
      emit t (Trace.Hypercall { nr; allowed });
      (* vtrace "hypercall" / "hypercall_ret" bracket the dispatch: the
         return fire carries the handler's charged cycles and (in
         [reason]) whether policy let it through. *)
      let fire_hc site cycles =
        match t.probes with
        | None -> ()
        | Some e ->
            ignore
              (Vtrace.Engine.fire e
                 (Vtrace.Ctx.make ~core:(current_core t)
                    ?trace:(active_trace t) ~reason:(Hc.name nr) ~cycles
                    ~nr:(Int64.of_int nr) site))
      in
      fire_hc "hypercall" 0L;
      let hc_start = Cycles.Clock.now (clock t) in
      let r0 =
        if not allowed then begin
          inv.denied <- inv.denied + 1;
          Log.debug (fun m -> m "policy denied hypercall %s" (Hc.name nr));
          Hc.err_denied
        end
        else if nr = Hc.exit_ then begin
          inv.exit_code <- Some (if Array.length args > 0 then args.(0) else 0L);
          0L
        end
        else if nr = Hc.snapshot then begin
          if inv.snapshot_taken then Hc.err_inval
          else begin
            inv.snapshot_taken <- true;
            take_snapshot ()
          end
        end
        else begin
          match handlers nr with
          | Some h -> h inv args
          | None -> (
              match Handlers.canned nr with
              | Some h -> h inv args
              | None ->
                  Log.debug (fun m -> m "unhandled hypercall %s" (Hc.name nr));
                  Hc.err_inval)
        end
      in
      fire_hc "hypercall_ret" (Cycles.Clock.elapsed_since (clock t) hc_start);
      r0)

let no_overrides (_ : int) : Inv.handler option = None

(* ------------------------------------------------------------------ *)
(* Hypercall ring drain                                                *)
(* ------------------------------------------------------------------ *)

(* Simulated guest-side instruction cost of producing one SQE, retired
   against the fuel budget before the op dispatches. Charging fuel per
   op keeps the watchdog meaningful for ring traffic: a guest cannot
   smuggle unbounded work through one doorbell, and a drain that runs
   out of fuel stops mid-batch with its partial completions persisted
   (sq_head/cq_tail are written back per op), which replays
   deterministically. *)
let ring_op_fuel = 16

type drain_outcome = Drain_done of int64 | Drain_fault of Vm.Cpu.fault

(* Drain every pending SQE in one VM exit. The doorbell is pure
   transport — always permitted, like [exit_] — but every queued op
   goes through the ordinary [dispatch] (policy, handlers, spans), each
   charged the deterministic in-kernel [hypercall_dispatch] cost instead
   of a full exit/entry round trip: that difference is the entire point
   of the ring. See docs/hypercalls.md for the ABI. *)
let drain_ring t ~policy ~handlers ~(inv : Inv.t) ~take_snapshot ~cpu ~mem ~fuel_left =
  tincr t "wasp_ring_enters_total";
  inv.hypercalls <- inv.hypercalls + 1;
  let fire_ring site ~reason ~cycles ~nr =
    match t.probes with
    | None -> ()
    | Some e ->
        ignore
          (Vtrace.Engine.fire e
             (Vtrace.Ctx.make ~core:(current_core t) ?trace:(active_trace t)
                ~reason ~cycles ~nr site))
  in
  (* A corrupt ring header is indistinguishable from any other wild
     guest write: the whole doorbell completes as a contained guest
     fault (retryable under supervision), with a black-box dump. *)
  let corrupt reason =
    tincr t "wasp_ring_corrupt_total";
    (match Kvmsim.Kvm.flight t.sys with
    | Some fr -> t.last_flight <- Some (Profiler.Flight.dump fr ~reason)
    | None -> ());
    Drain_fault (Vm.Cpu.Memory_oob { addr = Layout.ring_base; size = Layout.ring_size })
  in
  if Vm.Memory.size mem < Layout.ring_end then
    corrupt "ring_enter with no ring: guest memory smaller than the ring carve-out"
  else
    let head0 = Ring.sq_head mem and tail = Ring.sq_tail mem in
    let pending = Int64.to_int (Int64.sub tail head0) in
    if Kvmsim.Kvm.plan_fires t.sys Kvmsim.Kvm.site_ring_corrupt then
      corrupt "injected ring corruption"
    else if pending < 0 || pending > Layout.ring_entries then
      corrupt (Printf.sprintf "ring corrupt: sq_head=%Ld sq_tail=%Ld" head0 tail)
    else begin
      fire_ring "ring_enter" ~reason:"enter" ~cycles:0L ~nr:(Int64.of_int pending);
      (* Replay transcript: the doorbell first (head/tail window, ret =
         pending), then one event per SQE in drain order. Replays re-run
         the drain for real, so the per-op events self-verify. *)
      (match t.recorder with
      | Some rec_ ->
          Profiler.Replay.add_event rec_
            ~at:(Cycles.Clock.now (clock t))
            ~nr:Hc.ring_enter
            ~args:[| head0; tail; 0L; 0L; 0L |]
            ~ret:(Int64.of_int pending)
      | None -> ());
      let completed = ref 0 in
      let halted = ref false in
      let i = ref head0 in
      let exception Fuel_stop in
      (try
         while Int64.compare !i tail < 0 do
           if fuel_left () < ring_op_fuel then raise Fuel_stop;
           Vm.Cpu.add_retired cpu ring_op_fuel;
           let at = Cycles.Clock.now (clock t) in
           let sqe = Ring.read_sqe mem ~index:!i in
           let dispatch_args = ref sqe.Ring.args in
           let result =
             if inv.exit_code <> None || !halted then Hc.err_canceled
             else begin
               (* Resolve the link: the source must be an earlier op of
                  this same batch (delta >= 1, src >= head0). *)
               let link =
                 if Ring.has sqe.Ring.flags Ring.flag_link then begin
                   let delta = Ring.link_delta sqe.Ring.link in
                   let srci = Int64.sub !i (Int64.of_int delta) in
                   if delta < 1 || Int64.compare srci head0 < 0 then `Bad
                   else
                     let v = Ring.cqe_result mem ~index:srci in
                     if Int64.compare v 0L < 0 then `Canceled else `Val v
                 end
                 else `None
               in
               match link with
               | `Bad -> Hc.err_inval
               | `Canceled -> Hc.err_canceled
               | (`None | `Val _) as link -> (
                   if sqe.Ring.nr = Hc.ring_enter then
                     (* no nested doorbells *)
                     Hc.err_inval
                   else
                     try
                       if Ring.has sqe.Ring.flags Ring.flag_vec then begin
                         (* Vectored write/send: args = (fd, iov_ptr,
                            iov_cnt); one dispatch per segment, results
                            summed, first failure wins. A segment length
                            of -1 takes the linked result — how a read's
                            byte count flows into the send that follows
                            it without a guest round trip. *)
                         if sqe.Ring.nr <> Hc.write && sqe.Ring.nr <> Hc.send then
                           Hc.err_inval
                         else
                           let fd = sqe.Ring.args.(0)
                           and iov_ptr = sqe.Ring.args.(1)
                           and iov_cnt = Int64.to_int sqe.Ring.args.(2) in
                           if iov_cnt < 0 || iov_cnt > Ring.max_iov then Hc.err_inval
                           else begin
                             let total = ref 0L in
                             let failed = ref None in
                             let exception Seg_stop in
                             (try
                                for s = 0 to iov_cnt - 1 do
                                  let iov = Ring.read_iov mem ~ptr:iov_ptr ~i:s in
                                  let len =
                                    if iov.Ring.iov_len = -1L then
                                      match link with
                                      | `Val v -> v
                                      | `None -> iov.Ring.iov_len
                                    else iov.Ring.iov_len
                                  in
                                  charge t Cycles.Costs.hypercall_dispatch;
                                  let r =
                                    dispatch t ~policy ~handlers ~inv ~take_snapshot
                                      sqe.Ring.nr
                                      [| fd; iov.Ring.iov_ptr; len; 0L; 0L |]
                                  in
                                  if Int64.compare r 0L < 0 then begin
                                    failed := Some r;
                                    raise Seg_stop
                                  end
                                  else total := Int64.add !total r
                                done
                              with Seg_stop -> ());
                             match !failed with Some r -> r | None -> !total
                           end
                       end
                       else begin
                         let args = Array.copy sqe.Ring.args in
                         let bad_pos = ref false in
                         (match link with
                         | `Val v ->
                             let pos = Ring.link_pos sqe.Ring.link in
                             if pos > 4 then bad_pos := true else args.(pos) <- v
                         | `None -> ());
                         if !bad_pos then Hc.err_inval
                         else begin
                           dispatch_args := args;
                           charge t Cycles.Costs.hypercall_dispatch;
                           dispatch t ~policy ~handlers ~inv ~take_snapshot sqe.Ring.nr
                             args
                         end
                       end
                     with Vm.Memory.Fault _ ->
                       (* A wild buffer descriptor (e.g. an iov table
                          outside guest memory) fails just its own op. *)
                       Hc.err_fault)
             end
           in
           Ring.write_cqe mem ~index:!i ~nr:sqe.Ring.nr ~result;
           (match t.recorder with
           | Some rec_ ->
               Profiler.Replay.add_event rec_ ~at ~nr:sqe.Ring.nr ~args:!dispatch_args
                 ~ret:result
           | None -> ());
           (match Kvmsim.Kvm.flight t.sys with
           | Some fr ->
               Profiler.Flight.append_note fr
                 (Printf.sprintf "ring[%Ld] %s -> %Ld" !i (Hc.name sqe.Ring.nr) result)
           | None -> ());
           fire_ring "ring_op" ~reason:(Hc.name sqe.Ring.nr)
             ~cycles:(Cycles.Clock.elapsed_since (clock t) at)
             ~nr:(Int64.of_int sqe.Ring.nr);
           if Ring.has sqe.Ring.flags Ring.flag_halt && Int64.compare result 0L < 0 then
             halted := true;
           incr completed;
           i := Int64.add !i 1L;
           (* Per-op cursor write-back: a drain cut short by fuel leaves
              its completions visible and resumes exactly here. *)
           Ring.set_sq_head mem !i;
           Ring.set_cq_tail mem !i
         done
       with Fuel_stop -> ());
      tincr t ~by:!completed "wasp_ring_ops_total";
      tobserve t "wasp_ring_batch_size" (Int64.of_int !completed);
      Drain_done (Int64.of_int !completed)
    end

(* The invocation body. Every charged cycle between [start] and the end
   of the [clean] phase falls inside exactly one phase span (provision,
   image_load/boot or snapshot_restore, marshal, execute, clean) and the
   virtual clock only moves when charged, so the depth-1 phase durations
   tile the invocation: they sum exactly to the reported [cycles]. *)
let run_inner t (image : Image.t) ~policy ~handlers ~input ~args ~conn ~snapshot_key ~fuel
    ~inspect =
  (* Probe contexts fired below Wasp (KVM exits, EPT breaks) do not know
     the image; give the engine the name so their [fn] field resolves. *)
  (match t.probes with Some e -> Vtrace.Engine.set_fn e image.name | None -> ());
  (* CoW mode retains one shell per snapshot key across invocations; a
     retained shell pins the invocation to its home core (its vCPU bills
     that core's clock), so switch before stamping [start] *)
  let retained_shell =
    match (t.reset, snapshot_key) with
    | `Cow, Some key -> Hashtbl.find_opt t.retained key
    | (`Cow | `Memcpy), _ -> None
  in
  (match retained_shell with
  | Some s when s.Pool.home <> Kvmsim.Kvm.current_core t.sys ->
      Kvmsim.Kvm.set_core t.sys s.Pool.home
  | Some _ | None -> ());
  let start = Cycles.Clock.now (clock t) in
  let shell, from_pool =
    tspan t "provision" (fun () ->
        match retained_shell with
        | Some s -> (s, true)
        | None -> acquire_shell t ~mem_size:image.mem_size ~mode:image.mode)
  in
  emit t (Trace.Provisioned { from_pool; mem_size = image.mem_size });
  let cpu = Kvmsim.Kvm.vcpu_cpu shell.vcpu in
  let mem = shell.mem in
  (* Load image or restore snapshot. *)
  let snapshot_entry =
    match snapshot_key with
    | Some key -> Snapshot_store.find t.snapshot_store ~key
    | None -> None
  in
  let from_snapshot = snapshot_entry <> None in
  (match snapshot_entry with
  | Some entry when retained_shell <> None ->
      tspan t
        ~args:[ ("key", Option.value ~default:"?" snapshot_key); ("kind", "cow") ]
        "snapshot_restore"
        (fun () ->
          (* SEUSS-style reset: only the dirty pages are rewritten *)
          let pages, bytes = Snapshot_store.restore_cow entry ~mem ~cpu in
          emit t
            (Trace.Snapshot_restored
               { key = Option.value ~default:"?" snapshot_key; bytes });
          (* reference swaps, one minor fault's worth of fixup per page —
             the copies were already paid for by the CoW breaks during the
             dirtying run *)
          charge t (pages * Cycles.Costs.cow_page_fault))
  | Some entry ->
      let kind = match t.reset with `Memcpy -> "memcpy" | `Cow -> "lazy" in
      tspan t
        ~args:[ ("key", Option.value ~default:"?" snapshot_key); ("kind", kind) ]
        "snapshot_restore"
        (fun () ->
          let footprint =
            Snapshot_store.restore ~eager:(t.reset = `Memcpy) entry ~mem ~cpu
          in
          emit t
            (Trace.Snapshot_restored
               { key = Option.value ~default:"?" snapshot_key; bytes = footprint });
          match t.reset with
          | `Memcpy ->
              (* the paper's eager restore: the cost is exactly the copy *)
              charge t (Cycles.Costs.memcpy_cost footprint)
          | `Cow ->
              (* repoint the vCPU at the snapshot's pre-built EPT root:
                 O(1), independent of image size — pages fault in lazily *)
              charge t Cycles.Costs.ept_root_swap)
  | None ->
      tspan t ~args:[ ("image", image.name) ] "image_load" (fun () ->
          Vm.Memory.write_bytes mem ~off:image.origin image.code;
          (* Recording: verify the image through the guest's logical page
             view, so the .vxr MD5 guards what the guest will actually
             read regardless of the page representation underneath. *)
          (match t.recorder with
          | Some rc ->
              let view =
                Vm.Memory.read_bytes mem ~off:image.origin ~len:(Bytes.length image.code)
              in
              if not (Profiler.Replay.image_matches rc view) then
                invalid_arg "Runtime.run: loaded image diverges from the recorded bytes"
          | None -> ());
          emit t (Trace.Image_loaded { name = image.name; bytes = Bytes.length image.code });
          charge t (Cycles.Costs.memcpy_cost (Bytes.length image.code)));
      tspan t ~args:[ ("mode", Vm.Modes.to_string image.mode) ] "boot" (fun () ->
          let boot_start = Cycles.Clock.now (clock t) in
          let _components =
            Vm.Boot.perform ~mem ~clock:(clock t) ~rng:t.boot_rng ~target:image.mode
          in
          tobserve t
            ("wasp_boot_cycles_" ^ Vm.Modes.to_string image.mode)
            (Cycles.Clock.elapsed_since (clock t) boot_start);
          emit t (Trace.Booted { mode = image.mode });
          Vm.Cpu.set_pc cpu image.entry;
          Vm.Cpu.set_sp cpu Layout.stack_top));
  (* Fault plan: a restore can hand back a corrupted snapshot. The page
     under the restored PC is stomped with an invalid-opcode pattern
     (0xFF never decodes), so the guest faults deterministically at its
     first fetch — same plan, same fault, cycle for cycle. *)
  (match snapshot_entry with
  | Some _ when Kvmsim.Kvm.plan_fires t.sys Kvmsim.Kvm.site_snapshot_corrupt ->
      let page_size = Vm.Memory.page_size in
      let off = Vm.Cpu.pc cpu / page_size * page_size in
      let len = min page_size (Vm.Memory.size mem - off) in
      if len > 0 then Vm.Memory.write_bytes mem ~off (Bytes.make len '\xff')
  | Some _ | None -> ());
  (* Marshal arguments at guest address 0 (§6.1: "the argument, n, is
     loaded into the virtine's address space at address 0x0"). *)
  let input_bytes =
    match (input, args) with
    | Some b, [] -> b
    | None, [] -> Bytes.empty
    | None, args ->
        let b = Bytes.create (8 * List.length args) in
        List.iteri (fun i v -> Bytes.set_int64_le b (8 * i) v) args;
        b
    | Some _, _ :: _ -> invalid_arg "Runtime.run: pass either ~input or ~args, not both"
  in
  let inv =
    tspan t "marshal" (fun () ->
        if Bytes.length input_bytes > 0 then begin
          if Bytes.length input_bytes > Layout.arg_area_size then
            invalid_arg "Runtime.run: input exceeds the argument area";
          Vm.Memory.write_bytes mem ~off:Layout.arg_area input_bytes;
          charge t (Cycles.Costs.memcpy_cost (Bytes.length input_bytes))
        end;
        Inv.create ~mem ~env:t.hostenv ~clock:(clock t) ~rng:(rng t) ?conn
          ~input:input_bytes ~heap_brk:(Image.footprint image) ())
  in
  let take_snapshot () =
    match snapshot_key with
    | None -> Hc.err_inval
    | Some key ->
        tspan t ~args:[ ("key", key) ] "snapshot_capture" (fun () ->
            let footprint =
              Snapshot_store.capture t.snapshot_store ~key ~mem ~cpu ~native_state:None
            in
            emit t (Trace.Snapshot_captured { key; bytes = footprint });
            (* write-protect the footprint and build the shared EPT:
               per-page PTE work, not a byte copy *)
            charge t
              (((footprint + Vm.Memory.page_size - 1) / Vm.Memory.page_size)
              * Cycles.Costs.ept_map_page);
            0L)
  in
  (* The VM loop: KVM_RUN until the virtine exits, servicing hypercalls. *)
  let retired_at_start = Vm.Cpu.instructions_retired cpu in
  let fuel_left () =
    fuel - Int64.to_int (Int64.sub (Vm.Cpu.instructions_retired cpu) retired_at_start)
  in
  let exits = ref 0 in
  let rec loop () =
    if fuel_left () <= 0 then Fuel_exhausted
    else begin
      incr exits;
      match Kvmsim.Kvm.run ~fuel:(fuel_left ()) shell.vcpu with
      | Kvmsim.Kvm.Hlt -> Exited (Vm.Cpu.get_reg cpu 0)
      | Kvmsim.Kvm.Io_out { port; value } when
          port = Hc.port && Int64.to_int value = Hc.ring_enter -> (
          (* The batching doorbell: one exit drains the whole ring. *)
          match drain_ring t ~policy ~handlers ~inv ~take_snapshot ~cpu ~mem ~fuel_left with
          | Drain_fault f -> Faulted f
          | Drain_done r0 -> (
              Vm.Cpu.set_reg cpu 0 r0;
              match inv.exit_code with Some code -> Exited code | None -> loop ()))
      | Kvmsim.Kvm.Io_out { port; value } ->
          if port = Hc.port then begin
            let nr = Int64.to_int value in
            let args = Array.init 5 (fun i -> Vm.Cpu.get_reg cpu (i + 1)) in
            let at = Cycles.Clock.now (clock t) in
            let denied_before = inv.denied in
            let r0 = dispatch t ~policy ~handlers ~inv ~take_snapshot nr args in
            Vm.Cpu.set_reg cpu 0 r0;
            (match t.recorder with
            | Some rec_ -> Profiler.Replay.add_event rec_ ~at ~nr ~args ~ret:r0
            | None -> ());
            (match Kvmsim.Kvm.flight t.sys with
            | Some fr ->
                (* Append so probe-engine stamps on this exit survive. *)
                Profiler.Flight.append_note fr
                  (Printf.sprintf "%s(%s) -> %Ld" (Hc.name nr)
                     (String.concat ", "
                        (List.map Int64.to_string (Array.to_list args)))
                     r0);
                if inv.denied > denied_before then
                  t.last_flight <-
                    Some
                      (Profiler.Flight.dump fr
                         ~reason:
                           (Printf.sprintf "policy violation: hypercall %s denied"
                              (Hc.name nr)))
            | None -> ());
            match inv.exit_code with Some code -> Exited code | None -> loop ()
          end
          else begin
            (* Unknown port: no externally observable behaviour; swallow. *)
            Vm.Cpu.set_reg cpu 0 Hc.err_denied;
            loop ()
          end
      | Kvmsim.Kvm.Io_in { port = _; reg } ->
          Vm.Cpu.set_reg cpu reg 0L;
          loop ()
      | Kvmsim.Kvm.Fault f -> Faulted f
      | Kvmsim.Kvm.Out_of_fuel -> Fuel_exhausted
    end
  in
  let exec_start = Cycles.Clock.now (clock t) in
  (* Instruction-level probes opt into interpretation: installing a step
     hook makes Translate.run fall back to Cpu.run (cycle-identical).
     Block-level probes do NOT go through here — they ride the
     translation cache's superblock-entry hook. *)
  let instr_probe =
    match t.probes with
    | Some e when Vtrace.Engine.wants e "instr" ->
        Some
          (fun ~pc ~instr ~cost ->
            ignore
              (Vtrace.Engine.fire e
                 (Vtrace.Ctx.make ~core:(current_core t)
                    ?trace:(active_trace t) ~fn:image.name ~pc
                    ~reason:(Profiler.Profile.opcode_key instr)
                    ~cycles:(Int64.of_int cost) "instr")))
    | _ -> None
  in
  (match t.profiler with
  | Some p -> Profiler.Profile.begin_invocation p ~symbols:image.symbols ~clock:(clock t)
  | None -> ());
  let step_hook =
    match (t.profiler, instr_probe) with
    | None, None -> None
    | Some p, None ->
        Some (fun ~pc ~instr ~cost -> Profiler.Profile.on_step p ~pc ~instr ~cost)
    | None, Some f -> Some f
    | Some p, Some f ->
        Some
          (fun ~pc ~instr ~cost ->
            Profiler.Profile.on_step p ~pc ~instr ~cost;
            f ~pc ~instr ~cost)
  in
  (match step_hook with Some h -> Vm.Cpu.set_step_hook cpu h | None -> ());
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        if Option.is_some step_hook then Vm.Cpu.clear_step_hook cpu)
      (fun () -> tspan t "execute" loop)
  in
  (match t.profiler with
  | Some p ->
      Profiler.Profile.end_invocation p
        ~execute_cycles:(Cycles.Clock.elapsed_since (clock t) exec_start)
  | None -> ());
  (match outcome with
  | Faulted _ -> (
      match Kvmsim.Kvm.flight t.sys with
      | Some fr ->
          t.last_flight <-
            Some
              (Profiler.Flight.dump fr
                 ~reason:(Printf.sprintf "guest fault at pc=0x%x" (Vm.Cpu.pc cpu)))
      | None -> ())
  | Exited _ | Fuel_exhausted -> ());
  (match inspect with Some f -> f mem cpu | None -> ());
  let return_value =
    match outcome with Exited v -> v | Faulted _ | Fuel_exhausted -> Vm.Cpu.get_reg cpu 0
  in
  tspan t "clean" (fun () ->
      note_mem_gauges t mem;
      match (t.reset, snapshot_key) with
      | `Cow, Some key when Snapshot_store.find t.snapshot_store ~key <> None ->
          (* keep the dirty shell for the next CoW reset; no cleaning *)
          Hashtbl.replace t.retained key shell
      | (`Cow | `Memcpy), _ -> release_shell t shell);
  let cycles = Cycles.Clock.elapsed_since (clock t) start in
  emit t
    (Trace.Finished
       { exited = (match outcome with Exited _ -> true | _ -> false); cycles });
  record_result t
    (match outcome with Exited _ -> `Exited | Faulted _ -> `Faulted | Fuel_exhausted -> `Fuel)
    ~hypercalls:inv.hypercalls ~denied:inv.denied ~from_snapshot;
  tobserve t "wasp_invocation_cycles" cycles;
  tobserve t "kvm_exits_per_invocation" (Int64.of_int !exits);
  {
    outcome;
    return_value;
    output = inv.output;
    console = Buffer.contents inv.console;
    cycles;
    hypercalls = inv.hypercalls;
    denied = inv.denied;
    pointer_violations = inv.pointer_violations;
    from_snapshot;
    from_pool;
  }

let run t (image : Image.t) ?(policy = Policy.deny_all) ?(handlers = no_overrides) ?input
    ?(args = []) ?conn ?snapshot_key ?(fuel = 50_000_000) ?inspect () =
  let go () = run_inner t image ~policy ~handlers ~input ~args ~conn ~snapshot_key ~fuel ~inspect in
  match t.telemetry with
  | None -> go ()
  | Some h -> Telemetry.Hub.with_span h ~args:[ ("image", image.name) ] "invocation" go

(* ------------------------------------------------------------------ *)
(* Native payloads                                                     *)
(* ------------------------------------------------------------------ *)

module Native_ctx = struct
  type ctx = {
    runtime : t;
    inv : Inv.t;
    policy : Policy.t;
    handlers : int -> Inv.handler option;
    snapshot_key : string option;
    shell : Pool.shell;
    mutable snapshot_factory : (unit -> Univ.t) option;
  }

  let mem c = c.inv.Inv.mem
  let rng c = c.inv.Inv.rng
  let charge c cycles = Cycles.Clock.advance_int c.inv.Inv.clock cycles

  let alloc c size =
    let inv = c.inv in
    let aligned = (size + 7) land lnot 7 in
    let addr = inv.Inv.heap_brk in
    if addr + aligned > Vm.Memory.size inv.Inv.mem then raise Out_of_memory;
    inv.Inv.heap_brk <- addr + aligned;
    addr

  let offer_snapshot_state c factory = c.snapshot_factory <- Some factory

  let take_snapshot_of c () =
    match c.snapshot_key with
    | None -> Hc.err_inval
    | Some key ->
        tspan c.runtime ~args:[ ("key", key) ] "snapshot_capture" (fun () ->
            let cpu = Kvmsim.Kvm.vcpu_cpu c.shell.vcpu in
            let footprint =
              Snapshot_store.capture c.runtime.snapshot_store ~key ~mem:c.inv.Inv.mem ~cpu
                ~native_state:c.snapshot_factory
            in
            charge c
              (((footprint + Vm.Memory.page_size - 1) / Vm.Memory.page_size)
              * Cycles.Costs.ept_map_page);
            0L)

  let dispatch_one c nr args =
    let full_args = Array.make 5 0L in
    Array.blit args 0 full_args 0 (min (Array.length args) 5);
    dispatch c.runtime ~policy:c.policy ~handlers:c.handlers ~inv:c.inv
      ~take_snapshot:(take_snapshot_of c) nr full_args

  let hypercall c nr args =
    (* Same crossing cost as an [out]-triggered exit. *)
    charge c Cycles.Costs.hypercall_guest_side;
    charge c Cycles.Costs.hypercall_round_trip;
    dispatch_one c nr args

  (* The native analogue of the guest ring: one crossing amortized over
     the batch. The first op pays the full exit/entry round trip (which
     already includes one in-kernel dispatch); each subsequent op only
     its [hypercall_dispatch]. Results come back in submission order. *)
  let hypercall_batch c ops =
    match ops with
    | [] -> []
    | first :: rest ->
        let r0 = (fun (nr, args) -> hypercall c nr args) first in
        r0
        :: List.map
             (fun (nr, args) ->
               charge c Cycles.Costs.hypercall_dispatch;
               dispatch_one c nr args)
             rest
end

let run_native_inner t ~name ~mem_size ~mode ~policy ~handlers ~input ~conn ~snapshot_key
    ~body =
  (match t.probes with Some e -> Vtrace.Engine.set_fn e name | None -> ());
  let retained_shell =
    match (t.reset, snapshot_key) with
    | `Cow, Some key -> Hashtbl.find_opt t.retained key
    | (`Cow | `Memcpy), _ -> None
  in
  (match retained_shell with
  | Some s when s.Pool.home <> Kvmsim.Kvm.current_core t.sys ->
      Kvmsim.Kvm.set_core t.sys s.Pool.home
  | Some _ | None -> ());
  let start = Cycles.Clock.now (clock t) in
  let shell, from_pool =
    tspan t "provision" (fun () ->
        match retained_shell with
        | Some s -> (s, true)
        | None -> acquire_shell t ~mem_size ~mode)
  in
  let cpu = Kvmsim.Kvm.vcpu_cpu shell.vcpu in
  let mem = shell.mem in
  let snapshot_entry =
    match snapshot_key with
    | Some key -> Snapshot_store.find t.snapshot_store ~key
    | None -> None
  in
  let from_snapshot = snapshot_entry <> None in
  let restored =
    match snapshot_entry with
    | Some entry ->
        tspan t
          ~args:[ ("key", Option.value ~default:"?" snapshot_key) ]
          "snapshot_restore"
          (fun () ->
            (match retained_shell with
            | Some _ ->
                let pages, _bytes = Snapshot_store.restore_cow entry ~mem ~cpu in
                charge t (pages * Cycles.Costs.cow_page_fault)
            | None -> (
                let eager = t.reset = `Memcpy in
                let footprint = Snapshot_store.restore ~eager entry ~mem ~cpu in
                match t.reset with
                | `Memcpy -> charge t (Cycles.Costs.memcpy_cost footprint)
                | `Cow -> charge t Cycles.Costs.ept_root_swap));
            match entry.Snapshot_store.native_state with
            | Some f -> Some (f ())
            | None -> None)
    | None ->
        tspan t ~args:[ ("mode", Vm.Modes.to_string mode) ] "boot" (fun () ->
            let boot_start = Cycles.Clock.now (clock t) in
            let _components =
              Vm.Boot.perform ~mem ~clock:(clock t) ~rng:t.boot_rng ~target:mode
            in
            tobserve t
              ("wasp_boot_cycles_" ^ Vm.Modes.to_string mode)
              (Cycles.Clock.elapsed_since (clock t) boot_start);
            None)
  in
  let inv =
    Inv.create ~mem ~env:t.hostenv ~clock:(clock t) ~rng:(rng t) ?conn ~input
      ~heap_brk:Layout.image_base ()
  in
  let ctx =
    {
      Native_ctx.runtime = t;
      inv;
      policy;
      handlers;
      snapshot_key;
      shell;
      snapshot_factory = None;
    }
  in
  (* Restore the heap break past the snapshot's footprint so fresh
     allocations do not clobber restored state. *)
  (match snapshot_entry with
  | Some entry -> inv.Inv.heap_brk <- max inv.Inv.heap_brk entry.Snapshot_store.footprint
  | None -> ());
  let outcome =
    tspan t "execute" (fun () ->
        match body ctx ~restored with
        | rv -> (
            match inv.Inv.exit_code with Some code -> Exited code | None -> Exited rv)
        | exception Vm.Memory.Fault { addr; size } ->
            Faulted (Vm.Cpu.Memory_oob { addr; size }))
  in
  tspan t "clean" (fun () ->
      note_mem_gauges t mem;
      match (t.reset, snapshot_key) with
      | `Cow, Some key when Snapshot_store.find t.snapshot_store ~key <> None ->
          Hashtbl.replace t.retained key shell
      | (`Cow | `Memcpy), _ -> release_shell t shell);
  let return_value = match outcome with Exited v -> v | _ -> 0L in
  record_result t
    (match outcome with Exited _ -> `Exited | Faulted _ -> `Faulted | Fuel_exhausted -> `Fuel)
    ~hypercalls:inv.Inv.hypercalls ~denied:inv.Inv.denied ~from_snapshot;
  let cycles = Cycles.Clock.elapsed_since (clock t) start in
  tobserve t "wasp_invocation_cycles" cycles;
  {
    outcome;
    return_value;
    output = inv.Inv.output;
    console = Buffer.contents inv.Inv.console;
    cycles;
    hypercalls = inv.Inv.hypercalls;
    denied = inv.Inv.denied;
    pointer_violations = inv.Inv.pointer_violations;
    from_snapshot;
    from_pool;
  }

let run_native t ~name ?(mem_size = Layout.default_mem_size) ?(mode = Vm.Modes.Long)
    ?(policy = Policy.deny_all) ?(handlers = no_overrides) ?(input = Bytes.empty) ?conn
    ?snapshot_key ~body () =
  let go () =
    run_native_inner t ~name ~mem_size ~mode ~policy ~handlers ~input ~conn ~snapshot_key
      ~body
  in
  match t.telemetry with
  | None -> go ()
  | Some h -> Telemetry.Hub.with_span h ~args:[ ("payload", name) ] "invocation" go
