(** Snapshot registry (§5.2, Figure 7).

    The first execution of a function boots its environment, initializes
    its runtime and then hypercalls [snapshot]; later executions restore
    the captured state and skip the boot path entirely. Over the paged
    store a capture is an O(pages) reference grab into the
    content-addressed page cache (identical pages are shared across
    snapshot keys and with the still-running shell), a full restore is a
    page-table swap, and a CoW restore rewrites only the dirty pages.

    Snapshot state is deliberately shared across future virtines of the
    same function — the paper warns that "care must be taken in describing
    what memory is saved" — so the registry is keyed explicitly. The
    registry is LRU-bounded like the shell pool: beyond [capacity] the
    least-recently captured/found key is evicted. *)

type entry = {
  image : Vm.Memory.image;       (** page references, trimmed to footprint *)
  footprint : int;
  regs : int64 array;
  pc : int;
  mode : Vm.Modes.t;
  native_state : (unit -> Univ.t) option;
      (** for native-payload virtines: rebuilds the embedded runtime state
          the memory image represents (see {!Runtime.run_native}). *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 64 entries. @raise Invalid_argument if < 1. *)

val set_telemetry : t -> Telemetry.Hub.t option -> unit
(** Attach a hub: the store maintains [wasp_snapshot_store_entries] /
    [wasp_snapshot_store_bytes] gauges and bumps
    [wasp_snapshot_store_evictions_total]. *)

val capture :
  t ->
  key:string ->
  mem:Vm.Memory.t ->
  cpu:Vm.Cpu.t ->
  native_state:(unit -> Univ.t) option ->
  int
(** Capture guest state under [key]: publish the memory's pages (deduped
    via the page cache) and trim to the footprint (index of the last
    nonzero byte). Returns the footprint in bytes so the caller can
    charge the page-table build. May evict the LRU entry. *)

val find : t -> key:string -> entry option
(** Refreshes [key]'s LRU stamp on a hit. *)

val restore : ?eager:bool -> entry -> mem:Vm.Memory.t -> cpu:Vm.Cpu.t -> int
(** Swap the image's page references in (zeroing beyond them) and
    reinstate registers/PC/mode; leaves the dirty set clear. By default
    O(pages) reference stores, no byte copies — the caller charges the
    O(1) simulated EPT root swap and stores CoW-fault lazily.
    [~eager:true] is the paper's memcpy restore: private copies up
    front, charged as the footprint copy by the caller. Returns the
    footprint. *)

val restore_cow : entry -> mem:Vm.Memory.t -> cpu:Vm.Cpu.t -> int * int
(** Copy-on-write reset: swap back only the page references dirtied since
    the last restore and reinstate registers. Returns
    [(pages, logical_bytes)] restored. Only valid when [mem] already held
    this snapshot's state before the dirtying run — i.e. on a retained
    shell. *)

val clear : t -> key:string -> unit
val reset : t -> unit
val count : t -> int

val evictions : t -> int
val total_bytes : t -> int
(** Sum of resident entries' footprints. *)
