(** The hypercall ABI.

    Hypercalls are Wasp's only escape hatch from a virtine (§5.1): they are
    "designed to provide high-level hypervisor services with as few exits
    as possible" — e.g. a [read] that mirrors the POSIX call rather than a
    virtio device. The guest places the hypercall number in r0 and up to
    five arguments in r1-r5, then executes [out 0x1, r0]; the result is
    deposited in r0 before the guest resumes.

    Newlib-style guest code lowers its syscalls onto these numbers
    (§5.3). *)

val port : int
(** The doorbell I/O port (0x1). *)

val exit_ : int        (** exit(code): always permitted — the one default capability. *)
val read : int         (** read(fd, buf, len) *)
val write : int        (** write(fd, buf, len) *)
val open_ : int        (** open(path) -> fd *)
val close : int        (** close(fd) *)
val stat : int         (** stat(path) -> size *)
val snapshot : int     (** snapshot(): capture post-init state (§5.2); once only. *)
val get_data : int     (** get_data(buf, max) -> len: pull invocation input; once only. *)
val return_data : int  (** return_data(buf, len): publish invocation output; once only. *)
val send : int         (** send(sock, buf, len) *)
val recv : int         (** recv(sock, buf, max) -> len *)
val brk : int          (** brk(delta) -> old break (guest heap) *)
val clock : int        (** clock() -> virtual cycle counter *)
val getrandom : int    (** getrandom() -> 64 random bits *)

val ring_enter : int
(** ring_enter(): the batching doorbell. The guest queues descriptors on
    the submission ring ({!Layout.ring_base}, see [Wasp.Ring]) and rings
    once; the host drains every pending entry in that single exit and
    returns the number completed in r0. The doorbell itself is transport
    (always permitted, like [exit_]); each queued operation is still
    policy-checked individually. See docs/hypercalls.md. *)

val count : int
(** Numbers are dense in [0, count). Dispatching a number outside that
    range completes with {!err_inval} — it never falls through to a
    handler. *)

val name : int -> string
(** Human-readable name, "hc<N>" if unknown. *)

val err_denied : int64   (** -1: policy refused the hypercall. *)
val err_fault : int64    (** -14: a guest pointer failed validation. *)
val err_badf : int64     (** -9: unknown descriptor. *)
val err_noent : int64    (** -2: no such file. *)
val err_inval : int64    (** -22: invalid argument (e.g. once-only violated,
                             out-of-range hypercall number, bad ring link). *)
val err_canceled : int64 (** -125: ring op cancelled (an earlier op in the
                             batch halted the chain or a linked dependency
                             failed); the op was never dispatched. *)
