(* Virtine supervision: bounded retries with deterministic backoff, fuel
   watchdogs, and quarantine of repeatedly-failing images. Every decision
   is a pure function of (config, attempt number, virtual clock), so a
   supervised chaos run replays to the identical retry schedule. *)

type error_class = Fault | Timeout | Policy | Overload

let error_class_to_string = function
  | Fault -> "fault"
  | Timeout -> "timeout"
  | Policy -> "policy"
  | Overload -> "overload"

type config = {
  max_retries : int;
  backoff_base : int;
  backoff_factor : int;
  attempt_fuel : int option;
  fail_on_denied : bool;
  quarantine_threshold : int;
  quarantine_cooldown : int64;
}

let default_config =
  {
    max_retries = 3;
    backoff_base = 10_000;
    backoff_factor = 2;
    attempt_fuel = None;
    fail_on_denied = false;
    quarantine_threshold = 3;
    quarantine_cooldown = 10_000_000L;
  }

type stats = {
  mutable supervised : int;
  mutable succeeded : int;
  mutable failed : int;
  mutable retries : int;
  mutable backoff_cycles : int64;
  mutable quarantine_rejections : int;
}

type outcome = {
  result : (Runtime.result, error_class * string) Stdlib.result;
  attempts : int;
  retries : int;
  backoff_cycles : int;
  cycles : int64;
}

type streak = { mutable failures : int; mutable until : int64 }

type t = {
  rt : Runtime.t;
  config : config;
  stats : stats;
  streaks : (string, streak) Hashtbl.t;
  mutable slo : Telemetry.Slo.t option;
}

let create ?(config = default_config) rt =
  if config.max_retries < 0 then invalid_arg "Supervisor.create: negative max_retries";
  if config.backoff_base < 0 then invalid_arg "Supervisor.create: negative backoff_base";
  if config.backoff_factor < 1 then
    invalid_arg "Supervisor.create: backoff_factor must be >= 1";
  if config.quarantine_threshold < 1 then
    invalid_arg "Supervisor.create: quarantine_threshold must be >= 1";
  {
    rt;
    config;
    stats =
      {
        supervised = 0;
        succeeded = 0;
        failed = 0;
        retries = 0;
        backoff_cycles = 0L;
        quarantine_rejections = 0;
      };
    streaks = Hashtbl.create 8;
    slo = None;
  }

let runtime t = t.rt
let config t = t.config
let stats t = t.stats

let set_slo t slo = t.slo <- slo
let slo t = t.slo

(* Quarantine rejections count as bad availability: from the caller's
   side a rejected request failed, however cheap the rejection was. *)
let slo_record t ~good =
  match t.slo with None -> () | Some s -> Telemetry.Slo.record s ~good

let now t = Cycles.Clock.now (Runtime.clock t.rt)

let tincr t ?by name =
  match Runtime.telemetry t.rt with
  | None -> ()
  | Some h -> Telemetry.Hub.incr h ?by name

let tincr_labeled t name ~help ~label =
  match Runtime.telemetry t.rt with
  | None -> ()
  | Some h ->
      let m = Telemetry.Hub.metrics h in
      Telemetry.Metrics.incr (Telemetry.Metrics.counter m ~help name);
      Telemetry.Metrics.incr (Telemetry.Metrics.counter m ~help ~labels:[ label ] name)

let tinstant t ?args name =
  match Runtime.telemetry t.rt with
  | None -> ()
  | Some h -> Telemetry.Hub.instant h ?args name

(* vtrace supervisor sites; [fn] carries the supervision key. *)
let fire t site ~fn ~reason ~cycles ~nr =
  match Runtime.probes t.rt with
  | None -> ()
  | Some e ->
      let trace =
        match Runtime.telemetry t.rt with
        | None -> None
        | Some h -> Telemetry.Hub.current_trace h
      in
      ignore
        (Vtrace.Engine.fire e
           (Vtrace.Ctx.make ~core:(Runtime.current_core t.rt) ?trace ~fn ~reason
              ~cycles ~nr:(Int64.of_int nr) site))

let streak_for t key =
  match Hashtbl.find_opt t.streaks key with
  | Some s -> s
  | None ->
      let s = { failures = 0; until = 0L } in
      Hashtbl.replace t.streaks key s;
      s

let quarantined_count t =
  let n = now t in
  Hashtbl.fold (fun _ s acc -> if Int64.compare s.until n > 0 then acc + 1 else acc)
    t.streaks 0

let note_quarantine_gauge t =
  match Runtime.telemetry t.rt with
  | None -> ()
  | Some h ->
      Telemetry.Hub.set_gauge h "wasp_quarantined_images"
        (float_of_int (quarantined_count t))

let quarantined t ~key =
  match Hashtbl.find_opt t.streaks key with
  | None -> false
  | Some s -> Int64.compare s.until (now t) > 0

let release_quarantine t ~key =
  (match Hashtbl.find_opt t.streaks key with
  | Some s ->
      s.failures <- 0;
      s.until <- 0L
  | None -> ());
  note_quarantine_gauge t

(* One invocation failed outright (attempts exhausted, or a terminal
   class). Grow the image's failure streak; past the threshold the image
   is quarantined until the cooldown elapses on the virtual clock. *)
let note_failure t key class_ =
  t.stats.failed <- t.stats.failed + 1;
  tincr_labeled t "wasp_supervised_failures_total" ~help:"supervised invocations failed"
    ~label:("class", error_class_to_string class_);
  let s = streak_for t key in
  s.failures <- s.failures + 1;
  if s.failures >= t.config.quarantine_threshold then begin
    s.until <- Int64.add (now t) t.config.quarantine_cooldown;
    tinstant t
      ~args:[ ("key", key); ("failures", string_of_int s.failures) ]
      "supervisor_quarantine";
    fire t "sup_quarantine" ~fn:key ~reason:"enter" ~cycles:0L ~nr:s.failures
  end;
  note_quarantine_gauge t

let note_success t key =
  t.stats.succeeded <- t.stats.succeeded + 1;
  let s = streak_for t key in
  s.failures <- 0;
  s.until <- 0L;
  note_quarantine_gauge t

(* What went wrong with one attempt, if anything. *)
type attempt_verdict =
  | Succeeded of Runtime.result
  | Retryable of error_class * string * Runtime.result option
  | Terminal of error_class * string * Runtime.result option

let classify t (r : Runtime.result) =
  match r.Runtime.outcome with
  | Runtime.Faulted f ->
      Retryable
        (Fault, Format.asprintf "%a" Vm.Cpu.pp_exit (Vm.Cpu.Fault f), Some r)
  | Runtime.Fuel_exhausted -> Retryable (Timeout, "fuel watchdog expired", Some r)
  | Runtime.Exited _ when t.config.fail_on_denied && r.Runtime.denied > 0 ->
      Terminal
        ( Policy,
          Printf.sprintf "%d hypercall(s) denied by policy" r.Runtime.denied,
          Some r )
  | Runtime.Exited _ -> Succeeded r

let backoff_for t ~retry =
  (* retry = 1 for the first retry: base, then base*factor, ... *)
  let rec go acc k = if k <= 1 then acc else go (acc * t.config.backoff_factor) (k - 1) in
  go t.config.backoff_base retry

let run t (image : Image.t) ?policy ?input ?args ?snapshot_key ?key () =
  let key = match key with Some k -> k | None -> image.Image.name in
  t.stats.supervised <- t.stats.supervised + 1;
  tincr t "wasp_supervised_total";
  let tspan ?(sargs = []) name f =
    match Runtime.telemetry t.rt with
    | None -> f ()
    | Some h -> Telemetry.Hub.with_span h ~args:sargs name f
  in
  (* The whole supervised invocation is one span; each attempt (backoff
     included, so attempts tile the parent exactly) is a sibling child
     span — a retried request reads as a fan of attempts in the trace. *)
  tspan ~sargs:[ ("key", key) ] "supervised" @@ fun () ->
  let start = now t in
  if quarantined t ~key then begin
    t.stats.quarantine_rejections <- t.stats.quarantine_rejections + 1;
    tincr t "wasp_quarantine_rejections_total";
    fire t "sup_quarantine" ~fn:key ~reason:"reject" ~cycles:0L ~nr:0;
    slo_record t ~good:false;
    {
      result = Error (Overload, Printf.sprintf "image %S is quarantined" key);
      attempts = 0;
      retries = 0;
      backoff_cycles = 0;
      cycles = 0L;
    }
  end
  else begin
    (* An expired quarantine admits a probe, half-open: the streak stays
       one short of the threshold, so the first failure re-quarantines
       while a success clears it. *)
    let s = streak_for t key in
    if Int64.compare s.until 0L > 0 then begin
      s.until <- 0L;
      s.failures <- max 0 (t.config.quarantine_threshold - 1);
      note_quarantine_gauge t
    end;
    let max_attempts = t.config.max_retries + 1 in
    let backoff_total = ref 0 in
    let rec attempt k =
      (* the attempt span closes before any recursion, so attempt k+1 is
         its sibling, not its child *)
      let attempt_start = now t in
      let verdict =
        tspan ~sargs:[ ("attempt", string_of_int k) ] "attempt" @@ fun () ->
        if k > 1 then begin
          let d = backoff_for t ~retry:(k - 1) in
          Cycles.Clock.advance_int (Runtime.clock t.rt) d;
          backoff_total := !backoff_total + d;
          t.stats.retries <- t.stats.retries + 1;
          t.stats.backoff_cycles <- Int64.add t.stats.backoff_cycles (Int64.of_int d);
          tincr t "wasp_retries_total";
          tinstant t
            ~args:[ ("attempt", string_of_int k); ("backoff", string_of_int d) ]
            "supervisor_retry";
          fire t "sup_backoff" ~fn:key ~reason:"retry" ~cycles:(Int64.of_int d)
            ~nr:k
        end;
        match
          Runtime.run t.rt image ?policy ?input ?args ?snapshot_key
            ?fuel:t.config.attempt_fuel ()
        with
        | r -> classify t r
        | exception Kvmsim.Kvm.Injected_failure site ->
            Retryable (Fault, Printf.sprintf "injected failure at %s" site, None)
      in
      fire t "sup_attempt" ~fn:key
        ~reason:
          (match verdict with
          | Succeeded _ -> "ok"
          | Retryable (c, _, _) | Terminal (c, _, _) -> error_class_to_string c)
        ~cycles:(Int64.sub (now t) attempt_start)
        ~nr:k;
      match verdict with
      | Succeeded r ->
          note_success t key;
          (Ok r, k)
      | Terminal (class_, detail, _) ->
          note_failure t key class_;
          (Error (class_, detail), k)
      | Retryable (class_, detail, _) ->
          if k < max_attempts then attempt (k + 1)
          else begin
            note_failure t key class_;
            ( Error
                ( class_,
                  Printf.sprintf "%s (after %d attempts)" detail max_attempts ),
              k )
          end
    in
    let result, attempts = attempt 1 in
    slo_record t ~good:(match result with Ok _ -> true | Error _ -> false);
    {
      result;
      attempts;
      retries = attempts - 1;
      backoff_cycles = !backoff_total;
      cycles = Cycles.Clock.elapsed_since (Runtime.clock t.rt) start;
    }
  end
