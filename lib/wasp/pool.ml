type shell = {
  vm : Kvmsim.Kvm.vm;
  vcpu : Kvmsim.Kvm.vcpu;
  mem : Vm.Memory.t;
  mem_size : int;
}

type clean_mode = Sync | Async

type stats = {
  mutable created : int;
  mutable reused : int;
  mutable cleans : int;
  mutable background_cycles : int64;
}

type t = {
  sys : Kvmsim.Kvm.system;
  shells : (int, shell Stack.t) Hashtbl.t;
  clean : clean_mode;
  stats : stats;
  mutable telemetry : Telemetry.Hub.t option;
}

let create sys ~clean =
  {
    sys;
    shells = Hashtbl.create 8;
    clean;
    stats = { created = 0; reused = 0; cleans = 0; background_cycles = 0L };
    telemetry = None;
  }

let stats t = t.stats

let set_telemetry t hub = t.telemetry <- hub

let size t = Hashtbl.fold (fun _ s acc -> acc + Stack.length s) t.shells 0

let note_size t =
  match t.telemetry with
  | None -> ()
  | Some h -> Telemetry.Hub.set_gauge h "wasp_pool_size" (float_of_int (size t))

let bucket t mem_size =
  match Hashtbl.find_opt t.shells mem_size with
  | Some s -> s
  | None ->
      let s = Stack.create () in
      Hashtbl.replace t.shells mem_size s;
      s

let acquire t ~mem_size ~mode =
  let stack = bucket t mem_size in
  let result =
    match Stack.pop_opt stack with
    | Some shell ->
        t.stats.reused <- t.stats.reused + 1;
        (match t.telemetry with
        | Some h ->
            Telemetry.Hub.incr h "wasp_pool_hits_total";
            Telemetry.Hub.instant h "pool_hit"
        | None -> ());
        Kvmsim.Kvm.reset_vcpu shell.vcpu ~mode;
        (shell, true)
    | None ->
        t.stats.created <- t.stats.created + 1;
        (match t.telemetry with
        | Some h ->
            Telemetry.Hub.incr h "wasp_pool_misses_total";
            Telemetry.Hub.instant h "pool_miss"
        | None -> ());
        let vm = Kvmsim.Kvm.create_vm t.sys in
        let mem = Kvmsim.Kvm.set_user_memory_region vm ~size:mem_size in
        let vcpu = Kvmsim.Kvm.create_vcpu vm ~mode in
        ({ vm; vcpu; mem; mem_size }, false)
  in
  note_size t;
  result

let release t shell =
  t.stats.cleans <- t.stats.cleans + 1;
  (match t.telemetry with
  | Some h -> Telemetry.Hub.incr h "wasp_pool_cleans_total"
  | None -> ());
  Vm.Memory.fill_zero shell.mem;
  let cost = Cycles.Costs.memset_cost shell.mem_size in
  (match t.clean with
  | Sync -> Cycles.Clock.advance_int (Kvmsim.Kvm.clock t.sys) cost
  | Async ->
      t.stats.background_cycles <- Int64.add t.stats.background_cycles (Int64.of_int cost);
      (match t.telemetry with
      | Some h ->
          Telemetry.Hub.instant h ~args:[ ("cycles", string_of_int cost) ] "async_clean";
          Telemetry.Hub.set_gauge h "wasp_pool_background_cycles"
            (Int64.to_float t.stats.background_cycles)
      | None -> ()));
  Stack.push shell (bucket t shell.mem_size);
  note_size t
