type shell = {
  vm : Kvmsim.Kvm.vm;
  vcpu : Kvmsim.Kvm.vcpu;
  mem : Vm.Memory.t;
  mem_size : int;
  home : int;
}

type clean_mode = Sync | Async

type reclaim_policy = Eager | Scheduled

type stats = {
  mutable created : int;
  mutable reused : int;
  mutable cleans : int;
  mutable background_cycles : int64;
  mutable evicted : int;
  mutable clean_stalls : int;
  mutable stall_cycles : int64;
  mutable prewarmed : int;
  mutable prewarm_hits : int;
}

type prewarm = { pw_mem_size : int; pw_mode : Vm.Modes.t; pw_target : int }

type cached = { c_shell : shell; last_used : int64 }

type pending = { p_shell : shell; mutable remaining : int }

type shard = {
  id : int;
  buckets : (int, cached list ref) Hashtbl.t;  (* mem_size -> MRU-first list *)
  reclaim : pending Queue.t;                   (* oldest release first *)
  prewarmed : shell Queue.t;                   (* pre-built, never-run shells *)
  mutable cached_count : int;
}

type t = {
  sys : Kvmsim.Kvm.system;
  shards : shard array;
  clean : clean_mode;
  capacity : int;
  mutable policy : reclaim_policy;
  mutable prewarm : prewarm option;
  stats : stats;
  mutable telemetry : Telemetry.Hub.t option;
  mutable probes : Vtrace.Engine.t option;
}

let create ?(capacity = 64) sys ~clean =
  if capacity < 1 then invalid_arg "Pool.create: capacity must be >= 1";
  {
    sys;
    shards =
      Array.init (Kvmsim.Kvm.cores sys) (fun id ->
          {
            id;
            buckets = Hashtbl.create 8;
            reclaim = Queue.create ();
            prewarmed = Queue.create ();
            cached_count = 0;
          });
    clean;
    capacity;
    policy = Eager;
    prewarm = None;
    stats =
      {
        created = 0;
        reused = 0;
        cleans = 0;
        background_cycles = 0L;
        evicted = 0;
        clean_stalls = 0;
        stall_cycles = 0L;
        prewarmed = 0;
        prewarm_hits = 0;
      };
    telemetry = None;
    probes = None;
  }

let stats t = t.stats

let set_telemetry t hub = t.telemetry <- hub
let set_probes t e = t.probes <- e

(* vtrace pool sites; zero simulated cycles, one [None] check detached. *)
let fire t site ~reason ~cycles ~nr =
  match t.probes with
  | None -> ()
  | Some e ->
      let trace =
        match t.telemetry with
        | None -> None
        | Some h -> Telemetry.Hub.current_trace h
      in
      ignore
        (Vtrace.Engine.fire e
           (Vtrace.Ctx.make
              ~core:(Kvmsim.Kvm.current_core t.sys)
              ?trace ~reason ~cycles ~nr:(Int64.of_int nr) site))

let set_reclaim_policy t policy = t.policy <- policy
let reclaim_policy t = t.policy

let shard_size s = s.cached_count
let size t = Array.fold_left (fun acc s -> acc + s.cached_count) 0 t.shards
let shard_sizes t = Array.map shard_size t.shards

let reclaim_depth t ~core = Queue.length t.shards.(core).reclaim
let reclaim_pending t =
  Array.fold_left (fun acc s -> acc + Queue.length s.reclaim) 0 t.shards

let tgauge t name v =
  match t.telemetry with None -> () | Some h -> Telemetry.Hub.set_gauge h name v

let tincr t name =
  match t.telemetry with None -> () | Some h -> Telemetry.Hub.incr h name

let note_size t =
  tgauge t "wasp_pool_size" (float_of_int (size t));
  if Array.length t.shards > 1 then
    Array.iter
      (fun s ->
        tgauge t (Printf.sprintf "wasp_pool_size_core%d" s.id) (float_of_int s.cached_count))
      t.shards

let note_reclaim t shard =
  tgauge t "wasp_pool_reclaim_depth" (float_of_int (reclaim_pending t));
  if Array.length t.shards > 1 then
    tgauge t
      (Printf.sprintf "wasp_pool_reclaim_depth_core%d" shard.id)
      (float_of_int (Queue.length shard.reclaim))

let current_shard t = t.shards.(Kvmsim.Kvm.current_core t.sys)

let bucket shard mem_size =
  match Hashtbl.find_opt shard.buckets mem_size with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace shard.buckets mem_size l;
      l

(* Evict the least-recently-used cached shell of [shard] (the tail of the
   bucket whose oldest entry has the smallest stamp). *)
let evict_lru t shard =
  let victim = ref None in
  Hashtbl.iter
    (fun mem_size l ->
      match List.rev !l with
      | [] -> ()
      | oldest :: _ -> (
          match !victim with
          | Some (_, stamp) when stamp <= oldest.last_used -> ()
          | _ -> victim := Some (mem_size, oldest.last_used)))
    shard.buckets;
  match !victim with
  | None -> ()
  | Some (mem_size, _) ->
      let l = bucket shard mem_size in
      (match List.rev !l with
      | [] -> ()
      | _oldest :: rest_rev ->
          l := List.rev rest_rev;
          shard.cached_count <- shard.cached_count - 1;
          t.stats.evicted <- t.stats.evicted + 1;
          tincr t "wasp_pool_evictions_total";
          fire t "pool_evict" ~reason:"lru" ~cycles:0L ~nr:mem_size)

(* Return a cleaned shell to its shard's cache, evicting the LRU entry
   when the shard is over capacity. *)
let cache t shell =
  let shard = t.shards.(shell.home) in
  let now = Cycles.Clock.now (Kvmsim.Kvm.core_clock t.sys shard.id) in
  let l = bucket shard shell.mem_size in
  l := { c_shell = shell; last_used = now } :: !l;
  shard.cached_count <- shard.cached_count + 1;
  if shard.cached_count > t.capacity then evict_lru t shard;
  note_size t

let pop_cached shard mem_size =
  match Hashtbl.find_opt shard.buckets mem_size with
  | None | Some { contents = [] } -> None
  | Some l ->
      let hd = List.hd !l in
      l := List.tl !l;
      shard.cached_count <- shard.cached_count - 1;
      Some hd.c_shell

(* Remove the oldest pending clean for [mem_size], preserving queue order
   of the rest. *)
let take_pending shard mem_size =
  let n = Queue.length shard.reclaim in
  let found = ref None in
  for _ = 1 to n do
    let p = Queue.pop shard.reclaim in
    if !found = None && p.p_shell.mem_size = mem_size then found := Some p
    else Queue.push p shard.reclaim
  done;
  !found

(* ------------------------------------------------------------------ *)
(* Pipelined pre-boot (async refill)                                   *)
(* ------------------------------------------------------------------ *)

(* Deterministic cost of building one shell from scratch — the same
   KVM_CREATE_VM + memslot + KVM_CREATE_VCPU path a miss charges, minus
   the jitter (background work must replay cycle-for-cycle). *)
let shell_cost =
  Cycles.Costs.kvm_create_vm + Cycles.Costs.kvm_memory_region
  + Cycles.Costs.kvm_create_vcpu

let set_prewarm t cfg =
  (match cfg with
  | Some { pw_target; pw_mem_size; _ } ->
      if pw_target < 1 then invalid_arg "Pool.set_prewarm: target must be >= 1";
      if pw_mem_size < 1 then invalid_arg "Pool.set_prewarm: mem_size must be >= 1"
  | None -> ());
  t.prewarm <- cfg

let prewarm t = t.prewarm

let prewarm_depth t ~core = Queue.length t.shards.(core).prewarmed

let note_prewarm t =
  tgauge t "wasp_pool_prewarm_depth"
    (float_of_int
       (Array.fold_left (fun acc s -> acc + Queue.length s.prewarmed) 0 t.shards));
  tgauge t "wasp_pool_background_cycles" (Int64.to_float t.stats.background_cycles)

(* Book one background shell build against [core]'s shard without
   touching any clock: Kvm.build_shell charges nothing, the construction
   cost lands in [background_cycles] and the caller's idle budget. *)
let build_prewarmed t ~core ~mem_size ~mode =
  let vcpu = Kvmsim.Kvm.build_shell t.sys ~core ~size:mem_size ~mode in
  let vm = Kvmsim.Kvm.vcpu_vm vcpu in
  let shell =
    { vm; vcpu; mem = Kvmsim.Kvm.vm_memory vm; mem_size; home = core }
  in
  Queue.push shell t.shards.(core).prewarmed;
  t.stats.prewarmed <- t.stats.prewarmed + 1;
  t.stats.background_cycles <-
    Int64.add t.stats.background_cycles (Int64.of_int shell_cost);
  tincr t "wasp_pool_prewarmed_total";
  fire t "pool_prewarm" ~reason:"build" ~cycles:(Int64.of_int shell_cost) ~nr:mem_size

let prewarm_step t ~core ~budget =
  match t.prewarm with
  | None -> 0
  | Some { pw_mem_size; pw_mode; pw_target } ->
      let shard = t.shards.(core) in
      let spent = ref 0 in
      while
        Queue.length shard.prewarmed < pw_target && !spent + shell_cost <= budget
      do
        build_prewarmed t ~core ~mem_size:pw_mem_size ~mode:pw_mode;
        spent := !spent + shell_cost
      done;
      if !spent > 0 then note_prewarm t;
      !spent

let take_prewarmed t ~mem_size ~mode =
  let shard = current_shard t in
  match Queue.peek_opt shard.prewarmed with
  | Some shell when shell.mem_size = mem_size ->
      ignore (Queue.pop shard.prewarmed);
      t.stats.prewarm_hits <- t.stats.prewarm_hits + 1;
      tincr t "wasp_pool_prewarm_hits_total";
      (* The handoff is one ioctl to adopt the prepared context, plus a
         vCPU reset into the requested mode — never the creation path. *)
      Cycles.Clock.advance_int (Kvmsim.Kvm.clock t.sys) Cycles.Costs.ioctl_syscall;
      Kvmsim.Kvm.reset_vcpu shell.vcpu ~mode;
      fire t "pool_prewarm" ~reason:"take" ~cycles:(Int64.of_int Cycles.Costs.ioctl_syscall)
        ~nr:mem_size;
      (* Standalone (Eager) mode assumes the background builder keeps
         up, mirroring Async+Eager cleaning: refill immediately as
         background work. Scheduled mode waits for idle-cycle
         prewarm_step calls. *)
      (match (t.policy, t.prewarm) with
      | Eager, Some { pw_mem_size; pw_mode; pw_target } ->
          if
            pw_mem_size = mem_size
            && Queue.length shard.prewarmed < pw_target
          then build_prewarmed t ~core:shard.id ~mem_size:pw_mem_size ~mode:pw_mode
      | (Eager | Scheduled), _ -> ());
      note_prewarm t;
      Some shell
  | Some _ | None -> None

let acquire t ~mem_size ~mode =
  let shard = current_shard t in
  (* A nested span (inside the provision phase) so a traced request can
     attribute its provision cycles to hit/stall/miss specifically. *)
  let tspan f =
    match t.telemetry with
    | None -> f ()
    | Some h ->
        Telemetry.Hub.with_span h
          ~args:[ ("mem_size", string_of_int mem_size) ]
          "pool_acquire" f
  in
  tspan @@ fun () ->
  let hit shell =
    t.stats.reused <- t.stats.reused + 1;
    (match t.telemetry with
    | Some h ->
        Telemetry.Hub.incr h "wasp_pool_hits_total";
        Telemetry.Hub.instant h "pool_hit"
    | None -> ());
    Kvmsim.Kvm.reset_vcpu shell.vcpu ~mode;
    (shell, true)
  in
  let result =
    match pop_cached shard mem_size with
    | Some shell ->
        fire t "pool_acquire" ~reason:"hit" ~cycles:0L ~nr:mem_size;
        hit shell
    | None -> (
        match take_pending shard mem_size with
        | Some p ->
            (* The only matching shells are still on the reclaim queue:
               the acquire blocks on the in-flight clean and pays the
               remaining cycles — this is where deferred cleaning becomes
               visible in tail latency. *)
            t.stats.clean_stalls <- t.stats.clean_stalls + 1;
            t.stats.stall_cycles <-
              Int64.add t.stats.stall_cycles (Int64.of_int p.remaining);
            t.stats.background_cycles <-
              Int64.add t.stats.background_cycles (Int64.of_int p.remaining);
            Cycles.Clock.advance_int (Kvmsim.Kvm.clock t.sys) p.remaining;
            (match t.telemetry with
            | Some h ->
                Telemetry.Hub.incr h "wasp_pool_clean_stalls_total";
                Telemetry.Hub.instant h
                  ~args:[ ("cycles", string_of_int p.remaining) ]
                  "clean_stall"
            | None -> ());
            note_reclaim t shard;
            fire t "pool_acquire" ~reason:"stall"
              ~cycles:(Int64.of_int p.remaining) ~nr:mem_size;
            hit p.p_shell
        | None -> (
            match take_prewarmed t ~mem_size ~mode with
            | Some shell ->
                (* Pipelined pre-boot hit: the shell was built on idle
                   cycles, so the acquire pays only the handoff. *)
                t.stats.reused <- t.stats.reused + 1;
                fire t "pool_acquire" ~reason:"prewarm" ~cycles:0L ~nr:mem_size;
                (match t.telemetry with
                | Some h ->
                    Telemetry.Hub.incr h "wasp_pool_hits_total";
                    Telemetry.Hub.instant h "pool_prewarm_hit"
                | None -> ());
                (shell, true)
            | None ->
                t.stats.created <- t.stats.created + 1;
                fire t "pool_acquire" ~reason:"miss" ~cycles:0L ~nr:mem_size;
                (match t.telemetry with
                | Some h ->
                    Telemetry.Hub.incr h "wasp_pool_misses_total";
                    Telemetry.Hub.instant h "pool_miss"
                | None -> ());
                let vm = Kvmsim.Kvm.create_vm t.sys in
                let mem = Kvmsim.Kvm.set_user_memory_region vm ~size:mem_size in
                let vcpu = Kvmsim.Kvm.create_vcpu vm ~mode in
                ({ vm; vcpu; mem; mem_size; home = Kvmsim.Kvm.current_core t.sys }, false)))
  in
  note_size t;
  result

let release t shell =
  t.stats.cleans <- t.stats.cleans + 1;
  (match t.telemetry with
  | Some h -> Telemetry.Hub.incr h "wasp_pool_cleans_total"
  | None -> ());
  (* Drop every page reference and start a clean dirty generation: the
     host-side work is O(pages), but the simulated cost model still
     charges the memset this stands for — the cleaning the paper's
     dedicated cleaner thread performs (Figure 8's Wasp+CA). *)
  Vm.Memory.reset_zero shell.mem;
  let cost = Cycles.Costs.memset_cost shell.mem_size in
  match (t.clean, t.policy) with
  | Sync, _ ->
      fire t "pool_release" ~reason:"sync" ~cycles:(Int64.of_int cost)
        ~nr:shell.mem_size;
      Cycles.Clock.advance_int (Kvmsim.Kvm.clock t.sys) cost;
      cache t shell
  | Async, Eager ->
      fire t "pool_release" ~reason:"async" ~cycles:(Int64.of_int cost)
        ~nr:shell.mem_size;
      (* standalone mode: a dedicated cleaner thread is assumed to keep
         up, so the cost is pure background work *)
      t.stats.background_cycles <- Int64.add t.stats.background_cycles (Int64.of_int cost);
      (match t.telemetry with
      | Some h ->
          Telemetry.Hub.instant h ~args:[ ("cycles", string_of_int cost) ] "async_clean";
          Telemetry.Hub.set_gauge h "wasp_pool_background_cycles"
            (Int64.to_float t.stats.background_cycles)
      | None -> ());
      cache t shell
  | Async, Scheduled ->
      (* scheduler mode: the shell is unavailable until a cleaner core
         drains it (or an acquire stalls on it) *)
      fire t "pool_release" ~reason:"scheduled" ~cycles:(Int64.of_int cost)
        ~nr:shell.mem_size;
      let shard = t.shards.(shell.home) in
      Queue.push { p_shell = shell; remaining = cost } shard.reclaim;
      note_reclaim t shard;
      note_size t

let drain t ~core ~budget =
  let shard = t.shards.(core) in
  let spent = ref 0 in
  let continue_ = ref true in
  while !continue_ && !spent < budget && not (Queue.is_empty shard.reclaim) do
    let p = Queue.peek shard.reclaim in
    let step = min p.remaining (budget - !spent) in
    p.remaining <- p.remaining - step;
    spent := !spent + step;
    t.stats.background_cycles <- Int64.add t.stats.background_cycles (Int64.of_int step);
    if p.remaining = 0 then begin
      ignore (Queue.pop shard.reclaim);
      cache t p.p_shell
    end
    else continue_ := false
  done;
  if !spent > 0 then begin
    (match t.telemetry with
    | Some h ->
        Telemetry.Hub.set_gauge h "wasp_pool_background_cycles"
          (Int64.to_float t.stats.background_cycles)
    | None -> ());
    note_reclaim t shard
  end;
  !spent
