type t = Deny_all | Allow_all | Mask of int64 | Custom of (int -> bool)

let deny_all = Deny_all
let allow_all = Allow_all

let mask_of_list nrs =
  List.fold_left (fun acc nr -> Int64.logor acc (Int64.shift_left 1L nr)) 0L nrs

let of_list nrs = Mask (mask_of_list nrs)

let allows p nr =
  nr = Hc.exit_
  ||
  match p with
  | Deny_all -> false
  | Allow_all -> true
  | Mask m -> nr >= 0 && nr < 64 && Int64.logand m (Int64.shift_left 1L nr) <> 0L
  | Custom f -> f nr

(* The textual form .vxr recordings carry. [Custom] predicates are
   opaque closures and cannot be serialized. *)
let to_string = function
  | Deny_all -> Some "deny_all"
  | Allow_all -> Some "allow_all"
  | Mask m -> Some (Printf.sprintf "mask:%Lx" m)
  | Custom _ -> None

let of_string s =
  match s with
  | "deny_all" -> Ok Deny_all
  | "allow_all" -> Ok Allow_all
  | _ ->
      if String.length s > 5 && String.sub s 0 5 = "mask:" then
        match Int64.of_string_opt ("0x" ^ String.sub s 5 (String.length s - 5)) with
        | Some m -> Ok (Mask m)
        | None -> Error (Printf.sprintf "bad policy mask %S" s)
      else Error (Printf.sprintf "unknown policy %S" s)

let pp ppf = function
  | Deny_all -> Format.pp_print_string ppf "deny-all"
  | Allow_all -> Format.pp_print_string ppf "allow-all"
  | Mask m -> Format.fprintf ppf "mask(0x%Lx)" m
  | Custom _ -> Format.pp_print_string ppf "custom"
