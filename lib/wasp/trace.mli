(** Execution tracing.

    An optional per-runtime event log recording what each invocation did:
    provisioning, image loads vs snapshot restores, every hypercall with
    its policy outcome, and the exit. Useful for debugging virtine
    clients and for asserting isolation properties in tests. *)

type event =
  | Provisioned of { from_pool : bool; mem_size : int }
  | Image_loaded of { name : string; bytes : int }
  | Snapshot_restored of { key : string; bytes : int }
  | Snapshot_captured of { key : string; bytes : int }
  | Booted of { mode : Vm.Modes.t }
  | Hypercall of { nr : int; allowed : bool }
  | Finished of { exited : bool; cycles : int64 }

val pp_event : Format.formatter -> event -> unit

val event_name : event -> string
(** Short dotted tag, e.g. ["trace.booted"] — the name mirrored events
    carry in a telemetry sink. *)

type t

val create : ?capacity:int -> ?clock:Cycles.Clock.t -> unit -> t
(** Ring buffer of the most recent [capacity] (default 4096) events.
    When a [clock] is attached (directly here, or automatically by
    [Runtime.set_trace]), each event is stamped with [Clock.now] at
    {!record} time. *)

val attach_clock : t -> Cycles.Clock.t -> unit
(** Stamp subsequent events from this clock. *)

val mirror : t -> Telemetry.Hub.t option -> unit
(** Mirror every subsequently recorded event into the hub's span sink as
    an instant event (named by {!event_name}, with the event's fields as
    args). Pass [None] to stop mirroring. *)

val record : t -> event -> unit
val events : t -> event list
(** Oldest first. *)

val stamped : t -> (int64 option * event) list
(** Oldest first, with the cycle stamp taken at {!record} time ([None]
    for events recorded without an attached clock). *)

val clear : t -> unit

val hypercalls : t -> (int * bool) list
(** Just the hypercall events: (number, allowed). *)

val count : t -> int
(** Events currently retained. *)
