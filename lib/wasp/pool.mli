(** The virtine shell pool (§5.2, Figure 6).

    Creating a hardware virtual context is the expensive part of a
    virtine ([KVM_CREATE_VM] allocates the VMCS/VMCB in the kernel).
    Wasp therefore recycles contexts: when a virtine returns, its memory
    is cleared — "preventing information leakage" — and the shell is
    cached for the next request. Cleaning can be charged synchronously
    (Wasp+C in Figure 8) or deferred to background work (Wasp+CA), which
    brings provisioning within a few percent of a bare vmrun.

    The pool is sharded per simulated core: shells live on the shard of
    the core that created them ([shell.home]) and never migrate, so a
    recycled shell's vCPU always bills the clock it was created on.
    Each shard is bounded by [capacity] and evicts least-recently-used
    shells beyond it.

    Async cleaning has two realizations. Under the default {!Eager}
    policy the memset cost is booked as background work at release time
    and the shell is immediately reusable (a dedicated cleaner thread
    that always keeps up — the standalone Wasp+CA model). Under
    {!Scheduled} — set by the multi-core scheduler — released shells sit
    on their shard's reclaim queue until idle cycles {!drain} them; an
    acquire that finds only queued shells stalls for the remaining clean
    cost, which is how deferred cleaning shows up in tail latency. *)

type shell = {
  vm : Kvmsim.Kvm.vm;
  vcpu : Kvmsim.Kvm.vcpu;
  mem : Vm.Memory.t;
  mem_size : int;
  home : int;  (** core whose shard owns this shell *)
}

type clean_mode = Sync | Async

type reclaim_policy =
  | Eager      (** async clean booked as background work at release *)
  | Scheduled  (** async clean deferred to the per-core reclaim queue *)

type stats = {
  mutable created : int;     (** shells built from scratch *)
  mutable reused : int;      (** pool hits (including stalled and prewarm hits) *)
  mutable cleans : int;
  mutable background_cycles : int64;  (** async cleaning + prewarm work *)
  mutable evicted : int;     (** shells dropped by LRU eviction *)
  mutable clean_stalls : int;         (** acquires that waited on a clean *)
  mutable stall_cycles : int64;       (** cycles spent in those waits *)
  mutable prewarmed : int;            (** shells pre-built on idle cycles *)
  mutable prewarm_hits : int;         (** acquires served from the prewarm queue *)
}

type prewarm = {
  pw_mem_size : int;   (** guest region size to pre-build *)
  pw_mode : Vm.Modes.t;
  pw_target : int;     (** per-shard depth to keep pre-built *)
}

type t

val create : ?capacity:int -> Kvmsim.Kvm.system -> clean:clean_mode -> t
(** One shard per core of the system. [capacity] (default 64) bounds each
    shard's cached-shell count; raises [Invalid_argument] if < 1. *)

val stats : t -> stats

val set_telemetry : t -> Telemetry.Hub.t option -> unit

val set_probes : t -> Vtrace.Engine.t option -> unit
(** Attach (or detach) a vtrace probe engine. Sites: ["pool_acquire"]
    (reason [hit]/[stall]/[miss]; a stall's [cycles] is what the acquire
    paid for the in-flight clean), ["pool_release"] (reason
    [sync]/[async]/[scheduled]; [cycles] = the clean's cost) and
    ["pool_evict"] (reason [lru]). [nr] carries the shell footprint. *)
(** Attach (or detach) a telemetry hub: hits/misses/cleans/evictions and
    clean stalls become [wasp_pool_*] counters and instant events, async
    cleaning updates the [wasp_pool_background_cycles] gauge, and cached
    and queued shell counts are tracked by the [wasp_pool_size] and
    [wasp_pool_reclaim_depth] gauges (with [_core<i>] variants on
    multi-core systems). *)

val set_reclaim_policy : t -> reclaim_policy -> unit
val reclaim_policy : t -> reclaim_policy

val acquire : t -> mem_size:int -> mode:Vm.Modes.t -> shell * bool
(** Returns a clean shell and whether it came from the pool, searching
    the current core's shard. A fresh shell charges the full KVM
    creation path; a pooled one only resets vCPU state. Under
    {!Scheduled}, if the shard's only matching shells are still on the
    reclaim queue, the acquire takes the oldest one and charges the
    remaining clean cost to the current core (a clean stall — still a
    pool hit). *)

val release : t -> shell -> unit
(** Clear the shell (memset of the guest region, then reset the dirty
    bitmap) and return it to its home shard. [Sync] charges the memset
    on the current core; [Async] books it as background work
    ({!Eager}) or queues the shell for {!drain} ({!Scheduled}). *)

val drain : t -> core:int -> budget:int -> int
(** Spend up to [budget] cycles cleaning [core]'s reclaim queue, front
    first, with partial progress carried across calls. Finished shells
    enter the shard cache. Returns the cycles actually spent. The caller
    (the scheduler's idle path) is responsible for advancing the core's
    clock by the returned amount. *)

(** {1 Pipelined pre-boot (async refill)}

    The paper's async clean-up moves shell {e cleaning} off the critical
    path; prewarming moves shell {e creation} off it too. Configure a
    prewarm target and idle cycles ({!prewarm_step}) pre-build complete
    never-run shells (VM + memory + vCPU, via {!Kvmsim.Kvm.build_shell});
    an acquire that would otherwise miss adopts one for the price of a
    single ioctl handoff instead of the full KVM creation path. *)

val set_prewarm : t -> prewarm option -> unit
(** Arm (or disarm) pipelined pre-boot. Raises [Invalid_argument] on a
    non-positive target or mem_size. *)

val prewarm : t -> prewarm option

val prewarm_step : t -> core:int -> budget:int -> int
(** Pre-build shells for [core]'s shard until its prewarm queue reaches
    the configured target or [budget] cycles are used ({!shell_cost}
    each, booked as background work). Returns the cycles spent; as with
    {!drain}, the caller advances the core's clock. No-op when prewarm
    is unconfigured. *)

val take_prewarmed : t -> mem_size:int -> mode:Vm.Modes.t -> shell option
(** Adopt a pre-built shell from the current core's shard, if the head
    of its prewarm queue matches [mem_size]: charges one
    [Costs.ioctl_syscall] handoff on the current clock and resets the
    vCPU into [mode]. Under the {!Eager} reclaim policy the taken shell
    is immediately replaced as background work (the standalone
    keeps-up model); under {!Scheduled}, refill waits for idle
    {!prewarm_step} calls. Used by {!acquire} on what would otherwise
    be a miss; exposed for pool-disabled runtimes. *)

val prewarm_depth : t -> core:int -> int
(** Pre-built shells waiting on [core]'s shard. *)

val shell_cost : int
(** Deterministic cycles to build one shell from scratch
    (KVM_CREATE_VM + memslot + KVM_CREATE_VCPU, jitter-free). *)

val size : t -> int
(** Shells currently cached (all shards; excludes the reclaim queues). *)

val shard_sizes : t -> int array
(** Cached-shell count per core. *)

val reclaim_depth : t -> core:int -> int
(** Shells awaiting cleaning on [core]'s reclaim queue. *)

val reclaim_pending : t -> int
(** Total queued shells across all cores. *)
