(** The virtine shell pool (§5.2, Figure 6).

    Creating a hardware virtual context is the expensive part of a
    virtine ([KVM_CREATE_VM] allocates the VMCS/VMCB in the kernel).
    Wasp therefore recycles contexts: when a virtine returns, its memory
    is cleared — "preventing information leakage" — and the shell is
    cached for the next request. Cleaning can be charged synchronously
    (Wasp+C in Figure 8) or deferred to background work (Wasp+CA), which
    brings provisioning within a few percent of a bare vmrun. *)

type shell = {
  vm : Kvmsim.Kvm.vm;
  vcpu : Kvmsim.Kvm.vcpu;
  mem : Vm.Memory.t;
  mem_size : int;
}

type clean_mode = Sync | Async

type stats = {
  mutable created : int;     (** shells built from scratch *)
  mutable reused : int;      (** pool hits *)
  mutable cleans : int;
  mutable background_cycles : int64;  (** async cleaning work *)
}

type t

val create : Kvmsim.Kvm.system -> clean:clean_mode -> t

val stats : t -> stats

val set_telemetry : t -> Telemetry.Hub.t option -> unit
(** Attach (or detach) a telemetry hub: hits/misses/cleans become
    [wasp_pool_*] counters and instant events, async cleaning updates the
    [wasp_pool_background_cycles] gauge, and the cached-shell count is
    tracked by the [wasp_pool_size] gauge. *)

val acquire : t -> mem_size:int -> mode:Vm.Modes.t -> shell * bool
(** Returns a clean shell and whether it came from the pool. A fresh
    shell charges the full KVM creation path; a pooled one only resets
    vCPU state. *)

val release : t -> shell -> unit
(** Clear the shell (memset of the guest region, charged according to the
    clean mode) and return it to the pool. *)

val size : t -> int
(** Shells currently cached. *)
