(** Virtine images.

    An image is a flat binary plus the machine configuration it needs:
    load address, entry point, target processor mode and guest memory
    size. The toolchain (assembler or the vcc compiler) produces these;
    Wasp only ever sees the blob — exactly like the paper's statically
    linked ~16 KB images. *)

type t = {
  name : string;
  code : bytes;            (** loaded at [origin] *)
  origin : int;
  entry : int;             (** absolute start address *)
  mode : Vm.Modes.t;
  mem_size : int;          (** guest region size *)
  symbols : (string * int) list;
      (** label -> absolute address, from the assembler; feeds the guest
          profiler's symbolization. Empty for images rebuilt from a raw
          blob (e.g. replay files): the profiler falls back to raw
          addresses. *)
}

val of_program : ?name:string -> ?mode:Vm.Modes.t -> ?mem_size:int -> Asm.program -> t
(** Wrap an assembled program. [mode] defaults to [Long]; [mem_size]
    defaults to {!Layout.default_mem_size}, grown if the code would not
    fit. *)

val of_asm_string :
  ?name:string -> ?mode:Vm.Modes.t -> ?mem_size:int -> ?entry:string -> string -> t
(** Assemble source text at {!Layout.image_base} and wrap it. *)

val size : t -> int
(** Image size in bytes (what gets copied on load — Figure 12's x-axis). *)

val pad_to : t -> int -> t
(** [pad_to img n] zero-pads the blob to [n] bytes (the Figure 12
    methodology: "we synthetically increase image size by padding a
    minimal virtine image with zeroes"), growing [mem_size] to fit. *)

val footprint : t -> int
(** Bytes from guest address 0 to the end of the image: the contiguous
    region a load or snapshot restore must populate. *)
