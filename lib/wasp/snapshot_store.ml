type entry = {
  image : Vm.Memory.image;
  footprint : int;
  regs : int64 array;
  pc : int;
  mode : Vm.Modes.t;
  native_state : (unit -> Univ.t) option;
}

type slot = { entry : entry; mutable last_used : int }

type t = {
  entries : (string, slot) Hashtbl.t;
  capacity : int;
  mutable tick : int;               (* monotonic LRU stamp *)
  mutable evictions : int;
  mutable total_bytes : int;        (* sum of entry footprints *)
  mutable telemetry : Telemetry.Hub.t option;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Snapshot_store.create: capacity must be >= 1";
  {
    entries = Hashtbl.create 16;
    capacity;
    tick = 0;
    evictions = 0;
    total_bytes = 0;
    telemetry = None;
  }

let set_telemetry t hub = t.telemetry <- hub

let count t = Hashtbl.length t.entries
let evictions t = t.evictions
let total_bytes t = t.total_bytes

let note t =
  match t.telemetry with
  | None -> ()
  | Some h ->
      Telemetry.Hub.set_gauge h "wasp_snapshot_store_entries" (float_of_int (count t));
      Telemetry.Hub.set_gauge h "wasp_snapshot_store_bytes" (float_of_int t.total_bytes)

let touch t slot =
  t.tick <- t.tick + 1;
  slot.last_used <- t.tick

let remove t ~key =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some slot ->
      Hashtbl.remove t.entries key;
      t.total_bytes <- t.total_bytes - slot.entry.footprint

(* Same policy as the shell pool: beyond capacity, the least-recently
   used key goes. O(n) scan — the store is small by construction. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key slot ->
      match !victim with
      | Some (_, stamp) when stamp <= slot.last_used -> ()
      | _ -> victim := Some (key, slot.last_used))
    t.entries;
  match !victim with
  | None -> ()
  | Some (key, _) ->
      remove t ~key;
      t.evictions <- t.evictions + 1;
      (match t.telemetry with
      | Some h -> Telemetry.Hub.incr h "wasp_snapshot_store_evictions_total"
      | None -> ())

let capture t ~key ~mem ~cpu ~native_state =
  let image = Vm.Memory.capture mem in
  let footprint = Vm.Memory.image_footprint image in
  let regs = Array.init Instr.num_regs (fun r -> Vm.Cpu.get_reg cpu r) in
  let entry =
    { image; footprint; regs; pc = Vm.Cpu.pc cpu; mode = Vm.Cpu.mode cpu; native_state }
  in
  remove t ~key;
  let slot = { entry; last_used = 0 } in
  Hashtbl.replace t.entries key slot;
  t.total_bytes <- t.total_bytes + footprint;
  touch t slot;
  if count t > t.capacity then evict_lru t;
  note t;
  footprint

let find t ~key =
  match Hashtbl.find_opt t.entries key with
  | None -> None
  | Some slot ->
      touch t slot;
      Some slot.entry

let restore_regs entry ~cpu =
  Vm.Cpu.reset cpu ~mode:entry.mode;
  Array.iteri (fun r v -> Vm.Cpu.set_reg cpu r v) entry.regs;
  Vm.Cpu.set_pc cpu entry.pc

let restore ?eager entry ~mem ~cpu =
  let footprint = Vm.Memory.restore_image ?eager mem entry.image in
  restore_regs entry ~cpu;
  Vm.Memory.clear_dirty mem;
  footprint

let restore_cow entry ~mem ~cpu =
  let pages, bytes = Vm.Memory.restore_image_cow mem entry.image in
  restore_regs entry ~cpu;
  Vm.Memory.clear_dirty mem;
  (pages, bytes)

let clear t ~key =
  remove t ~key;
  note t

let reset t =
  Hashtbl.reset t.entries;
  t.total_bytes <- 0;
  note t
