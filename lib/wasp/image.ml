type t = {
  name : string;
  code : bytes;
  origin : int;
  entry : int;
  mode : Vm.Modes.t;
  mem_size : int;
  symbols : (string * int) list;
}

let fit_mem_size ~origin ~code_len ~requested =
  let needed = origin + code_len + 4096 in
  let base = match requested with Some m -> m | None -> Layout.default_mem_size in
  let rec grow m = if m >= needed then m else grow (m * 2) in
  grow base

let of_program ?(name = "image") ?(mode = Vm.Modes.Long) ?mem_size (p : Asm.program) =
  let mem_size =
    fit_mem_size ~origin:p.origin ~code_len:(Bytes.length p.code) ~requested:mem_size
  in
  { name; code = p.code; origin = p.origin; entry = p.entry; mode; mem_size; symbols = p.symbols }

let of_asm_string ?name ?mode ?mem_size ?entry src =
  of_program ?name ?mode ?mem_size (Asm.assemble_string ~origin:Layout.image_base ?entry src)

let size t = Bytes.length t.code

let pad_to t n =
  if n < Bytes.length t.code then invalid_arg "Image.pad_to: smaller than code";
  let code = Bytes.make n '\000' in
  Bytes.blit t.code 0 code 0 (Bytes.length t.code);
  let mem_size = fit_mem_size ~origin:t.origin ~code_len:n ~requested:(Some t.mem_size) in
  { t with code; mem_size }

let footprint t = t.origin + Bytes.length t.code
