let flag_halt = 1L
let flag_link = 2L
let flag_vec = 4L

type sqe = {
  nr : int;
  flags : int64;
  args : int64 array; (* 5 *)
  link : int64;
}

let has flags bit = Int64.logand flags bit <> 0L

let slot index = Int64.to_int (Int64.rem index (Int64.of_int Layout.ring_entries))

let sqe_addr index = Layout.ring_sqes + (slot index * Layout.ring_sqe_size)
let cqe_addr index = Layout.ring_cqes + (slot index * Layout.ring_cqe_size)

let sq_head mem = Vm.Memory.read_u64 mem Layout.ring_sq_head
let sq_tail mem = Vm.Memory.read_u64 mem Layout.ring_sq_tail
let cq_head mem = Vm.Memory.read_u64 mem Layout.ring_cq_head
let cq_tail mem = Vm.Memory.read_u64 mem Layout.ring_cq_tail
let set_sq_head mem v = Vm.Memory.write_u64 mem Layout.ring_sq_head v
let set_sq_tail mem v = Vm.Memory.write_u64 mem Layout.ring_sq_tail v
let set_cq_head mem v = Vm.Memory.write_u64 mem Layout.ring_cq_head v
let set_cq_tail mem v = Vm.Memory.write_u64 mem Layout.ring_cq_tail v

let read_sqe mem ~index =
  let base = sqe_addr index in
  let f i = Vm.Memory.read_u64 mem (base + (8 * i)) in
  {
    nr = Int64.to_int (f 0);
    flags = f 1;
    args = [| f 2; f 3; f 4; f 5; f 6 |];
    link = f 7;
  }

let write_sqe mem ~index (s : sqe) =
  let base = sqe_addr index in
  let f i v = Vm.Memory.write_u64 mem (base + (8 * i)) v in
  f 0 (Int64.of_int s.nr);
  f 1 s.flags;
  Array.iteri (fun i v -> f (2 + i) v) s.args;
  f 7 s.link

let write_cqe mem ~index ~nr ~result =
  let base = cqe_addr index in
  Vm.Memory.write_u64 mem base result;
  Vm.Memory.write_u64 mem (base + 8) (Int64.of_int nr)

let cqe_result mem ~index = Vm.Memory.read_u64 mem (cqe_addr index)
let cqe_nr mem ~index = Int64.to_int (Vm.Memory.read_u64 mem (cqe_addr index + 8))

let link_delta link = Int64.to_int (Int64.logand link 0xffL)
let link_pos link = Int64.to_int (Int64.logand (Int64.shift_right_logical link 8) 0xffL)
let make_link ~pos ~delta = Int64.of_int ((pos lsl 8) lor (delta land 0xff))

type iov = { iov_ptr : int64; iov_len : int64 }

let iov_size = 16
let max_iov = 8

let read_iov mem ~ptr ~i =
  let base = Int64.to_int ptr + (i * iov_size) in
  { iov_ptr = Vm.Memory.read_u64 mem base; iov_len = Vm.Memory.read_u64 mem (base + 8) }
