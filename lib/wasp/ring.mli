(** Hypercall ring descriptor codec.

    One io_uring-style submission/completion ring lives in guest memory at
    {!Layout.ring_base} (see docs/hypercalls.md for the full ABI and
    determinism contract). The guest appends SQEs at [sq_tail] and rings
    {!Hc.ring_enter} once; the host drains [sq_head..sq_tail), dispatching
    each entry through the ordinary hypercall handlers, and posts one CQE
    per SQE at [cq_tail]. All cursors are monotonically increasing u64
    indices; the storage slot is the index modulo {!Layout.ring_entries}.

    This module is the pure layout codec — reading and writing descriptors
    in a {!Vm.Memory.t}. Validation, policy, cycle charging and dispatch
    live in {!Runtime}. *)

(** {1 SQE flags} *)

val flag_halt : int64
(** If this op completes with a negative result, every later op in the
    batch completes with {!Hc.err_canceled} instead of dispatching. *)

val flag_link : int64
(** The [link] field names an earlier op {e in the same batch} whose
    result is substituted into one of this op's argument slots before
    dispatch (see {!link_delta}/{!link_pos}). *)

val flag_vec : int64
(** Vectored I/O: args are [(fd, iov_ptr, iov_cnt)] with [iov_cnt] ≤
    {!max_iov} 16-byte [(ptr, len)] entries at [iov_ptr]. Only meaningful
    for [write]/[send]; the host dispatches one operation per segment and
    the CQE result is the sum (first failure wins). *)

type sqe = {
  nr : int;             (** hypercall number *)
  flags : int64;
  args : int64 array;   (** 5 argument slots, r1..r5 equivalents *)
  link : int64;         (** [(pos << 8) | delta] when {!flag_link} is set *)
}

val has : int64 -> int64 -> bool
(** [has flags bit] *)

val slot : int64 -> int
(** Index → storage slot (mod {!Layout.ring_entries}). *)

val sqe_addr : int64 -> int
val cqe_addr : int64 -> int

(** {1 Header cursors} *)

val sq_head : Vm.Memory.t -> int64
val sq_tail : Vm.Memory.t -> int64
val cq_head : Vm.Memory.t -> int64
val cq_tail : Vm.Memory.t -> int64
val set_sq_head : Vm.Memory.t -> int64 -> unit
val set_sq_tail : Vm.Memory.t -> int64 -> unit
val set_cq_head : Vm.Memory.t -> int64 -> unit
val set_cq_tail : Vm.Memory.t -> int64 -> unit

(** {1 Descriptors} *)

val read_sqe : Vm.Memory.t -> index:int64 -> sqe
val write_sqe : Vm.Memory.t -> index:int64 -> sqe -> unit
val write_cqe : Vm.Memory.t -> index:int64 -> nr:int -> result:int64 -> unit
val cqe_result : Vm.Memory.t -> index:int64 -> int64
val cqe_nr : Vm.Memory.t -> index:int64 -> int

(** {1 Links}

    A link names its source op by backward distance: [delta] = own index −
    source index (≥ 1, and the source must be in the same batch). [pos]
    selects which argument slot receives the source's result. *)

val link_delta : int64 -> int
val link_pos : int64 -> int
val make_link : pos:int -> delta:int -> int64

(** {1 Vectored buffers} *)

type iov = { iov_ptr : int64; iov_len : int64 }

val iov_size : int   (** 16 bytes: ptr u64, len u64 *)
val max_iov : int    (** 8 segments per vectored op *)

val read_iov : Vm.Memory.t -> ptr:int64 -> i:int -> iov
