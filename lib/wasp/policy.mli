(** Hypercall policies.

    Virtines live in a default-deny environment (§2): the client must
    expressly permit every externally observable behaviour. [exit] is the
    sole built-in capability. The C extensions map [virtine] to
    {!deny_all}, [virtine_permissive] to {!allow_all} and
    [virtine_config(cfg)] to a {!of_mask} bitmask (§5.3). *)

type t =
  | Deny_all
  | Allow_all
  | Mask of int64   (** bit n set = hypercall n permitted. *)
  | Custom of (int -> bool)
      (** client-supplied predicate over hypercall numbers. *)

val deny_all : t
val allow_all : t

val of_list : int list -> t
(** Policy permitting exactly the given hypercall numbers. *)

val mask_of_list : int list -> int64

val allows : t -> int -> bool
(** [allows p nr]: [exit] is always allowed; everything else must be
    granted by the policy. *)

val to_string : t -> string option
(** The textual form [.vxr] recordings carry (["deny_all"],
    ["allow_all"], ["mask:<hex>"]); [None] for {!Custom} predicates,
    which are opaque closures. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. *)

val pp : Format.formatter -> t -> unit
