(** The Wasp runtime: an embeddable micro-hypervisor for virtines (§5).

    A virtine client links against this library, registers host resources
    (files, sockets) and invokes functions as virtines. Each invocation
    provisions a hardware context (from the shell pool when warm), loads
    the image or restores a snapshot, marshals arguments into the guest at
    address 0, runs the guest, interposes on every hypercall under the
    client's policy, and recycles the shell. *)

type t

type clean_mode = [ `Sync | `Async ]

type reset_mode = [ `Memcpy | `Cow ]
(** How snapshotted virtines are reset between invocations. [`Memcpy]
    copies the whole footprint (the paper's implementation); [`Cow]
    retains a shell per snapshot key and restores only the pages the
    previous invocation dirtied — the SEUSS-style copy-on-write reset the
    paper anticipates in §7.2. *)

val create :
  ?seed:int ->
  ?freq_ghz:float ->
  ?pool:bool ->
  ?clean:clean_mode ->
  ?reset:reset_mode ->
  ?cores:int ->
  ?pool_capacity:int ->
  ?snapshot_capacity:int ->
  ?translate:bool ->
  ?flight_capacity:int ->
  unit ->
  t
(** A fresh runtime. [pool] (default true) enables shell caching;
    [clean] (default [`Sync]) selects Figure 8's Wasp+C vs Wasp+CA
    cleaning; [reset] (default [`Memcpy]) selects the snapshot reset
    mechanism. [cores] (default 1) gives the simulated machine that many
    per-core virtual clocks and pool shards; [pool_capacity] bounds each
    shard (default 64, LRU eviction beyond it); [snapshot_capacity]
    bounds the snapshot store the same way (default 64 keys).
    [translate] (default true) runs guests through the superblock
    translation cache — simulated cycles are identical either way, only
    wall-clock throughput differs (profiled runs always interpret).
    [flight_capacity] sizes the always-attached VM-exit flight ring
    (default 128 — see {!Profiler.Flight.create}). *)

val clock : t -> Cycles.Clock.t
(** The current core's clock. *)

val core_clock : t -> int -> Cycles.Clock.t

val cores : t -> int

val on_core : t -> int -> unit
(** Make [core] current: subsequent invocations charge its clock and use
    its pool shard. The multi-core scheduler ({!Dessim.Cores}) calls this
    before each task; single-core users never need it. *)

val current_core : t -> int

val set_reclaim_policy : t -> Pool.reclaim_policy -> unit
(** Select how [`Async] cleaning is realized (see {!Pool.reclaim_policy}).
    The scheduler switches the pool to [Scheduled] so cleans consume idle
    cycles and contended acquires stall observably. *)

val drain_reclaim : t -> core:int -> budget:int -> int
(** Spend up to [budget] idle cycles cleaning [core]'s reclaim queue;
    returns cycles spent. See {!Pool.drain}. *)

val reclaim_depth : t -> core:int -> int

val set_prewarm : t -> Pool.prewarm option -> unit
(** Arm (or disarm) pipelined pre-boot of replacement shells (see
    {!Pool.set_prewarm}): idle cycles pre-build complete shells so a
    provision that would miss pays only a handoff. Works with the pool
    disabled too — {!run}/{!run_native} then adopt pre-built shells
    instead of creating fresh ones. *)

val prewarm_step : t -> core:int -> budget:int -> int
(** Spend up to [budget] idle cycles pre-building shells for [core];
    returns cycles spent. See {!Pool.prewarm_step}. *)

val prewarm_depth : t -> core:int -> int
val rng : t -> Cycles.Rng.t
val env : t -> Hostenv.t
val kvm : t -> Kvmsim.Kvm.system
val pool_stats : t -> Pool.stats
val snapshots : t -> Snapshot_store.t

val drop_snapshot : t -> key:string -> unit
(** Forget a captured snapshot (e.g. the image changed). *)

type run_stats = {
  mutable invocations : int;
  mutable exited : int;          (** clean exits *)
  mutable faulted : int;         (** contained guest faults *)
  mutable fuel_exhausted : int;  (** runaway guests killed *)
  mutable hypercalls : int;      (** across all invocations *)
  mutable denied : int;
  mutable snapshot_restores : int;
}

val stats : t -> run_stats
(** Aggregate counters across every invocation this runtime has run
    (images and native payloads). *)

val set_trace : t -> Trace.t option -> unit
(** Attach (or detach) an event trace; subsequent invocations record
    provisioning, loads/restores, hypercalls and exits into it. The trace
    is stamped from this runtime's clock, and mirrors its events into the
    attached telemetry hub, if any. *)

val trace : t -> Trace.t option

val set_telemetry : t -> Telemetry.Hub.t option -> unit
(** Attach (or detach) a telemetry hub — it must have been created with
    this runtime's {!clock}. Once attached, every invocation opens a root
    [invocation] span tiled by phase spans ([provision],
    [image_load]/[boot] or [snapshot_restore], [marshal], [execute] with
    nested [hypercall]/[snapshot_capture] spans, [clean]) whose depth-1
    durations sum exactly to the invocation's reported [cycles]; the
    pool, the KVM layer and an attached trace feed the same hub; and the
    [wasp_*] metrics (invocation counters, boot/invocation cycle
    histograms, pool gauges) are kept up to date. *)

val telemetry : t -> Telemetry.Hub.t option

(** {1 Observability: profiler, flight recorder, record/replay} *)

val set_profiler : t -> Profiler.Profile.t option -> unit
(** Attach (or detach) a guest profiler. While attached, every
    invocation's execute phase runs with a vCPU step hook that attributes
    instruction cycles to guest functions (using the image's symbol
    table) and opcodes; the residue — VM-exit costs, hypercall dispatch,
    handler work — is booked to the [\[vmm\]] pseudo-function, so the
    per-function totals sum exactly to the execute span's duration. *)

val profiler : t -> Profiler.Profile.t option

val set_recorder : t -> Profiler.Replay.t option -> unit
(** Attach a replay recorder: each hypercall the runtime dispatches is
    appended as a cycle-stamped transcript event. The caller seeds the
    recording ({!Profiler.Replay.set_image}/[set_env]) and finalizes it
    ([finish]) around the invocation. *)

val recorder : t -> Profiler.Replay.t option

val set_probes : t -> Vtrace.Engine.t option -> unit
(** Attach (or detach) a vtrace probe engine, threading it through the
    KVM layer (["exit"], ["ept"], ["inject"], ["block"] sites) and the
    shell pool (["pool_*"] sites); this layer itself fires
    ["hypercall"]/["hypercall_ret"] around every dispatch and, when an
    ["instr"] probe is attached, installs a vCPU step hook — which
    forces the interpreter (cycle-identical) for the execute phase, the
    explicit opt-in the block site exists to avoid. Probes charge zero
    simulated cycles and never change guest-visible results: attached
    vs detached runs produce identical outcomes, registers and cycle
    counts at a fixed seed (see [docs/vtrace.md]). *)

val probes : t -> Vtrace.Engine.t option

val flight : t -> Profiler.Flight.t option
(** The VM-exit flight recorder (always attached by {!create}). *)

val flight_dump : t -> string option
(** The most recent black-box report, produced when a guest faulted or a
    hypercall was denied by policy: the last ring of VM exits, annotated,
    ending at the faulting PC / violating hypercall. *)

val clear_flight_dump : t -> unit

val set_fault_plan : t -> Cycles.Fault_plan.t option -> unit
(** Arm (or disarm) a deterministic fault plan on the underlying KVM
    system (see {!Kvmsim.Kvm.set_fault_plan} for the sites, and
    {!Supervisor} for running invocations under one with retries and
    quarantine). The runtime consumes two extra sites itself:
    [snapshot_corrupt] — one opportunity per snapshot restore; a fire
    stomps the restored page under the guest PC with an invalid-opcode
    pattern, so the guest faults at its first fetch — and
    [ring_corrupt] — one opportunity per {!Hc.ring_enter} doorbell; a
    fire makes the drain treat the ring header as corrupt, completing
    the whole batch as a contained (retryable) guest fault. *)

val fault_plan : t -> Cycles.Fault_plan.t option

(** {1 Invocation} *)

type outcome =
  | Exited of int64                 (** exit hypercall or clean halt *)
  | Faulted of Vm.Cpu.fault         (** the virtine died in isolation *)
  | Fuel_exhausted                  (** runaway guest, killed by Wasp *)

type result = {
  outcome : outcome;
  return_value : int64;   (** r0 at exit / the exit hypercall's argument *)
  output : bytes option;  (** published via [return_data] *)
  console : string;       (** bytes written to fd 1/2 *)
  cycles : int64;          (** end-to-end invocation latency *)
  hypercalls : int;
  denied : int;
  pointer_violations : int;
  from_snapshot : bool;
  from_pool : bool;
}

val run :
  t ->
  Image.t ->
  ?policy:Policy.t ->
  ?handlers:(int -> Inv.handler option) ->
  ?input:bytes ->
  ?args:int64 list ->
  ?conn:Hostenv.endpoint ->
  ?snapshot_key:string ->
  ?fuel:int ->
  ?inspect:(Vm.Memory.t -> Vm.Cpu.t -> unit) ->
  unit ->
  result
(** Run [image] as a virtine.

    - [policy] defaults to {!Policy.deny_all} (§2: default-deny).
    - [handlers] overrides canned handlers per hypercall number.
    - [input] is copied into the argument area at guest address 0
      (and is also the [get_data] source).
    - [args] are written as little-endian 64-bit words at address 0
      after [input] would be (use one or the other).
    - [snapshot_key] enables snapshotting: the first run executes the
      [snapshot] hypercall path and captures state; later runs restore it
      and skip boot.
    - [inspect] observes guest memory and registers after exit, before
      the shell is cleaned (used by milestone experiments). *)

(** {1 Native-payload virtines}

    A native payload runs host-implemented code {i in virtine context}:
    it may only touch the virtine's guest memory and must reach all
    external services through the same policy-checked hypercall path,
    with the same charged crossing costs. This is how we embed the
    JavaScript engine (§6.5) without compiling it to vx code. *)

module Native_ctx : sig
  type ctx

  val mem : ctx -> Vm.Memory.t
  val rng : ctx -> Cycles.Rng.t

  val charge : ctx -> int -> unit
  (** Account guest-side computation. *)

  val alloc : ctx -> int -> int
  (** Bump-allocate guest heap memory; returns a guest address.
      Raises [Out_of_memory] if the region is exhausted. *)

  val hypercall : ctx -> int -> int64 array -> int64
  (** Cross into the client: charges the full exit/entry round trip, then
      applies policy and handlers exactly as an [out] instruction would. *)

  val hypercall_batch : ctx -> (int * int64 array) list -> int64 list
  (** The native analogue of the guest hypercall ring: dispatch the ops
      in order through one crossing. The first op pays the full
      round trip; each later op only the in-kernel
      [Costs.hypercall_dispatch]. Returns results in submission order
      ([[]] for an empty batch). *)

  val offer_snapshot_state : ctx -> (unit -> Univ.t) -> unit
  (** Register the factory stored alongside a [snapshot] hypercall; on
      restore it materializes the state the memory image represents. *)
end

val run_native :
  t ->
  name:string ->
  ?mem_size:int ->
  ?mode:Vm.Modes.t ->
  ?policy:Policy.t ->
  ?handlers:(int -> Inv.handler option) ->
  ?input:bytes ->
  ?conn:Hostenv.endpoint ->
  ?snapshot_key:string ->
  body:(Native_ctx.ctx -> restored:Univ.t option -> int64) ->
  unit ->
  result
(** Provision a shell, boot (or restore the snapshot, in which case
    [restored] carries the materialized state), run [body], and recycle
    the shell. *)
