let port = 0x1

let exit_ = 0
let read = 1
let write = 2
let open_ = 3
let close = 4
let stat = 5
let snapshot = 6
let get_data = 7
let return_data = 8
let send = 9
let recv = 10
let brk = 11
let clock = 12
let getrandom = 13
let ring_enter = 14

let count = 15

let name = function
  | 0 -> "exit"
  | 1 -> "read"
  | 2 -> "write"
  | 3 -> "open"
  | 4 -> "close"
  | 5 -> "stat"
  | 6 -> "snapshot"
  | 7 -> "get_data"
  | 8 -> "return_data"
  | 9 -> "send"
  | 10 -> "recv"
  | 11 -> "brk"
  | 12 -> "clock"
  | 13 -> "getrandom"
  | 14 -> "ring_enter"
  | n -> Printf.sprintf "hc%d" n

let err_denied = -1L
let err_fault = -14L
let err_badf = -9L
let err_noent = -2L
let err_inval = -22L
let err_canceled = -125L
