(** Guest physical memory layout shared by the toolchain and the runtime.

    {v
      0x0000 .. 0x04ff   argument / marshalling area (args land at 0x0, §6.1)
      0x0500 .. 0x0fff   GDT
      0x1000 .. 0x3fff   page tables (long mode)
      0x4000 .. 0x7fff   stack (grows down from 0x8000)
      0x4800 .. 0x523f     hypercall ring (carved from the stack region)
      0x8000 ..          image: code + data, then the heap (brk grows up)
    v}

    Keeping the stack and tables below the image means a virtine's memory
    footprint is contiguous from 0, which is what the snapshot cost model
    measures.

    The hypercall ring (see [Wasp.Ring] and docs/hypercalls.md) occupies
    the bottom 0xA40 bytes of the stack region, spanning the 0x5000 page
    boundary on purpose: snapshot/CoW handling of an in-flight ring always
    exercises the multi-page case. Ring-using guests trade that much stack
    headroom (SP still starts at {!stack_top}); guests that never touch
    the ring are unaffected. *)

val arg_area : int         (** 0x0 *)
val arg_area_size : int
val stack_top : int        (** initial SP: 0x8000 *)
val stack_bottom : int     (** 0x4000; SP below this means overflow *)
val image_base : int       (** 0x8000 — where Wasp loads images (§5.1) *)
val default_mem_size : int (** 64 KB default guest region *)

(** {1 Hypercall ring carve-out}

    Header: four u64 cursors (monotonically increasing indices; the slot
    is the index modulo {!ring_entries}), then the SQE array, then the
    CQE array. The guest produces at [sq_tail], the host consumes at
    [sq_head] and completes at [cq_tail]. *)

val ring_base : int        (** 0x4800 *)
val ring_entries : int     (** 32 (power of two: slot = index & 31) *)
val ring_hdr_size : int    (** 0x40 *)
val ring_sqe_size : int    (** 64 bytes: nr, flags, args0..4, link *)
val ring_cqe_size : int    (** 16 bytes: result, nr *)
val ring_sq_head : int     (** u64: host consumer cursor *)
val ring_sq_tail : int     (** u64: guest producer cursor *)
val ring_cq_head : int     (** u64: guest completion cursor (unused by the host) *)
val ring_cq_tail : int     (** u64: host completion cursor *)
val ring_sqes : int        (** SQE array base (0x4840) *)
val ring_cqes : int        (** CQE array base (0x5040) *)
val ring_size : int        (** 0xA40 *)
val ring_end : int         (** 0x5240: first byte past the ring *)
