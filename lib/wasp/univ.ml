type t = ..
