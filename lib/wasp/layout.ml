let arg_area = 0x0
let arg_area_size = 0x500
let stack_top = 0x8000
let stack_bottom = 0x4000
let image_base = 0x8000
let default_mem_size = 64 * 1024

(* Hypercall ring: carved out of the bottom of the stack region and
   deliberately straddling the 0x5000 page boundary, so CoW snapshots of
   an in-flight ring always span two pages. *)
let ring_base = 0x4800
let ring_entries = 32
let ring_hdr_size = 0x40
let ring_sqe_size = 64
let ring_cqe_size = 16
let ring_sq_head = ring_base
let ring_sq_tail = ring_base + 8
let ring_cq_head = ring_base + 16
let ring_cq_tail = ring_base + 24
let ring_sqes = ring_base + ring_hdr_size
let ring_cqes = ring_sqes + (ring_entries * ring_sqe_size)
let ring_size = ring_hdr_size + (ring_entries * (ring_sqe_size + ring_cqe_size))
let ring_end = ring_base + ring_size
