(** Virtine supervision: retries, watchdogs, quarantine.

    A supervisor wraps a {!Runtime.t} and runs invocations under a
    failure policy: each attempt gets its own fuel deadline (the
    watchdog), failed attempts are retried with deterministic exponential
    backoff charged to the virtual clock, and images that keep failing
    are quarantined for a cooldown window. Failures are classified into a
    small taxonomy:

    - {!Fault} — the guest died in isolation (a contained
      {!Runtime.Faulted} exit) or provisioning failed underneath it
      ({!Kvmsim.Kvm.Injected_failure}). Retryable.
    - {!Timeout} — the fuel watchdog killed a runaway attempt
      ({!Runtime.Fuel_exhausted}). Retryable.
    - {!Policy} — the invocation completed but tripped the hypercall
      policy (denied hypercalls, with [fail_on_denied] set). Terminal:
      retrying a policy violation only repeats it.
    - {!Overload} — the supervisor refused to run at all: the image is
      quarantined. Terminal for this invocation.

    Everything the supervisor does is deterministic: backoff delays are
    pure functions of the attempt number, quarantine windows are measured
    on the virtual clock, and retries re-enter the same seeded runtime —
    so a chaos run under a fixed {!Cycles.Fault_plan} produces the same
    retry schedule and the same final cycle count every time. *)

type error_class = Fault | Timeout | Policy | Overload

val error_class_to_string : error_class -> string
(** ["fault"], ["timeout"], ["policy"], ["overload"]. *)

type config = {
  max_retries : int;  (** retries after the first attempt (default 3) *)
  backoff_base : int;
      (** virtual cycles charged before the first retry (default
          10_000) *)
  backoff_factor : int;
      (** backoff multiplier per further retry (default 2) *)
  attempt_fuel : int option;
      (** per-attempt fuel deadline; [None] uses the runtime default *)
  fail_on_denied : bool;
      (** classify completed invocations with denied hypercalls as
          {!Policy} failures (default false) *)
  quarantine_threshold : int;
      (** consecutive failed invocations before an image is quarantined
          (default 3) *)
  quarantine_cooldown : int64;
      (** virtual cycles an image stays quarantined (default
          10_000_000) *)
}

val default_config : config

type stats = {
  mutable supervised : int;  (** supervised invocations started *)
  mutable succeeded : int;
  mutable failed : int;  (** invocations that exhausted their attempts *)
  mutable retries : int;  (** attempts beyond the first, in total *)
  mutable backoff_cycles : int64;  (** virtual cycles spent backing off *)
  mutable quarantine_rejections : int;
}

type outcome = {
  result : (Runtime.result, error_class * string) Stdlib.result;
      (** the successful attempt's result, or why the supervisor gave
          up *)
  attempts : int;  (** attempts actually run (0 when quarantined) *)
  retries : int;  (** [max 0 (attempts - 1)] *)
  backoff_cycles : int;  (** virtual cycles this invocation backed off *)
  cycles : int64;
      (** end-to-end virtual cycles, attempts plus backoff *)
}

type t

val create : ?config:config -> Runtime.t -> t

val runtime : t -> Runtime.t
val config : t -> config
val stats : t -> stats

val set_slo : t -> Telemetry.Slo.t option -> unit
(** Attach an availability objective: every supervised invocation then
    records one event — good on success, bad on an exhausted/terminal
    failure or a quarantine rejection — re-evaluating the burn-rate
    rules on the spot. *)

val slo : t -> Telemetry.Slo.t option

val run :
  t ->
  Image.t ->
  ?policy:Policy.t ->
  ?input:bytes ->
  ?args:int64 list ->
  ?snapshot_key:string ->
  ?key:string ->
  unit ->
  outcome
(** Run [image] under supervision. [key] identifies the image for
    quarantine accounting (default [image.name]). Metrics (when the
    runtime has a telemetry hub): [wasp_supervised_total],
    [wasp_supervised_failures_total] (plain and [class]-labeled),
    [wasp_retries_total], [wasp_quarantine_rejections_total], and the
    [wasp_quarantined_images] gauge; each retry also leaves a
    [supervisor_retry] instant in the span stream. Spans: the whole
    invocation is a [supervised] span whose children are sibling
    [attempt] spans (backoff charged inside its attempt, so attempts
    tile the parent exactly). *)

val quarantined : t -> key:string -> bool
(** Is [key] quarantined as of the runtime's current virtual clock? *)

val release_quarantine : t -> key:string -> unit
(** Manually lift [key]'s quarantine and forget its failure streak. *)
