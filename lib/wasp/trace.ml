type event =
  | Provisioned of { from_pool : bool; mem_size : int }
  | Image_loaded of { name : string; bytes : int }
  | Snapshot_restored of { key : string; bytes : int }
  | Snapshot_captured of { key : string; bytes : int }
  | Booted of { mode : Vm.Modes.t }
  | Hypercall of { nr : int; allowed : bool }
  | Finished of { exited : bool; cycles : int64 }

let pp_event ppf = function
  | Provisioned { from_pool; mem_size } ->
      Format.fprintf ppf "provisioned (%s, %d KB)"
        (if from_pool then "pooled" else "fresh")
        (mem_size / 1024)
  | Image_loaded { name; bytes } -> Format.fprintf ppf "loaded image %s (%d B)" name bytes
  | Snapshot_restored { key; bytes } ->
      Format.fprintf ppf "restored snapshot %s (%d B)" key bytes
  | Snapshot_captured { key; bytes } ->
      Format.fprintf ppf "captured snapshot %s (%d B)" key bytes
  | Booted { mode } -> Format.fprintf ppf "booted to %a" Vm.Modes.pp mode
  | Hypercall { nr; allowed } ->
      Format.fprintf ppf "hypercall %s: %s" (Hc.name nr) (if allowed then "ok" else "denied")
  | Finished { exited; cycles } ->
      Format.fprintf ppf "finished (%s, %Ld cycles)" (if exited then "exit" else "abnormal") cycles

let event_name = function
  | Provisioned _ -> "trace.provisioned"
  | Image_loaded _ -> "trace.image_loaded"
  | Snapshot_restored _ -> "trace.snapshot_restored"
  | Snapshot_captured _ -> "trace.snapshot_captured"
  | Booted _ -> "trace.booted"
  | Hypercall _ -> "trace.hypercall"
  | Finished _ -> "trace.finished"

let event_args = function
  | Provisioned { from_pool; mem_size } ->
      [ ("from_pool", string_of_bool from_pool); ("mem_size", string_of_int mem_size) ]
  | Image_loaded { name; bytes } -> [ ("image", name); ("bytes", string_of_int bytes) ]
  | Snapshot_restored { key; bytes } -> [ ("key", key); ("bytes", string_of_int bytes) ]
  | Snapshot_captured { key; bytes } -> [ ("key", key); ("bytes", string_of_int bytes) ]
  | Booted { mode } -> [ ("mode", Vm.Modes.to_string mode) ]
  | Hypercall { nr; allowed } ->
      [ ("nr", Hc.name nr); ("allowed", string_of_bool allowed) ]
  | Finished { exited; cycles } ->
      [ ("exited", string_of_bool exited); ("cycles", Int64.to_string cycles) ]

(* The ring buffer stores events with the clock value at [record] time
   (None when no clock is attached), and is a thin adapter over an
   optional telemetry hub: every recorded event is also mirrored into the
   hub's span sink as an instant event. *)
type t = {
  mutable items : (int64 option * event) list;
  mutable n : int;
  capacity : int;
  mutable clock : Cycles.Clock.t option;
  mutable sink : Telemetry.Hub.t option;
}

let create ?(capacity = 4096) ?clock () =
  { items = []; n = 0; capacity; clock; sink = None }

let attach_clock t clock = t.clock <- Some clock
let mirror t hub = t.sink <- hub

let record t e =
  (match t.sink with
  | Some hub -> Telemetry.Hub.instant hub ~args:(event_args e) (event_name e)
  | None -> ());
  let stamp = Option.map Cycles.Clock.now t.clock in
  t.items <- (stamp, e) :: t.items;
  t.n <- t.n + 1;
  if t.n > 2 * t.capacity then begin
    (* amortized trim: keep the newest [capacity] *)
    t.items <- List.filteri (fun i _ -> i < t.capacity) t.items;
    t.n <- t.capacity
  end

let stamped t = List.rev (List.filteri (fun i _ -> i < t.capacity) t.items)

let events t = List.map snd (stamped t)

let clear t =
  t.items <- [];
  t.n <- 0

let hypercalls t =
  List.filter_map (function Hypercall { nr; allowed } -> Some (nr, allowed) | _ -> None)
    (events t)

let count t = min t.n t.capacity
