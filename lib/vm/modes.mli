(** x86-style processor modes.

    The paper (§4.2, Figure 3) shows that tailoring a virtine to the
    cheapest sufficient mode saves boot cycles: real mode skips the GDT,
    protected-mode transition and paging entirely. Our CPU truncates
    register results to the mode's width and bounds the addressable range
    accordingly. *)

type t = Real | Protected | Long

val width_bits : t -> int
(** 16 / 32 / 64. *)

val address_limit : t -> int
(** Highest addressable byte + 1: 1 MB in real mode, 4 GB in protected
    mode, and the 1 GB identity-mapped region in long mode (the boot
    sequence maps the first 1 GB with 2 MB pages, Table 1). *)

val mask : t -> int64 -> int64
(** Truncate a value to the mode width (zero-extended representation). *)

val sext : t -> int64 -> int64
(** Sign-extend a mode-width value to 64 bits (for signed compares,
    division and arithmetic shifts). *)

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string} (["real"] / ["protected"] / ["long"]). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val all : t list
