(** The vx virtual CPU.

    Executes encoded instructions fetched from guest memory, charging cycle
    costs against the virtual clock. A CPU never touches anything outside
    its {!Memory.t}: every fault and every [out] instruction becomes a VM
    exit that the hypervisor layer (kvmsim/Wasp) interprets. Register
    results are truncated to the active processor-mode width. *)

type fault =
  | Memory_oob of { addr : int; size : int }  (** access outside guest RAM *)
  | Page_fault of { addr : int }              (** beyond the mapped region *)
  | Invalid_opcode of { addr : int; msg : string }
  | Division_by_zero of { addr : int }

type exit_reason =
  | Halt
  | Io_out of { port : int; value : int64 }
      (** [out] executed: the hypercall doorbell. The CPU is resumable. *)
  | Io_in of { port : int; reg : Instr.reg }
      (** [in] executed: the host should deposit a value with {!set_reg}
          and resume. *)
  | Fault of fault
  | Out_of_fuel  (** instruction budget exhausted (runaway guest). *)

val pp_exit : Format.formatter -> exit_reason -> unit

type t

val create : mem:Memory.t -> mode:Modes.t -> clock:Cycles.Clock.t -> t
(** Registers and flags zeroed; PC at 0. The caller (boot/Wasp) sets PC
    and SP before running. *)

val mem : t -> Memory.t
val mode : t -> Modes.t

val get_reg : t -> Instr.reg -> int64
val set_reg : t -> Instr.reg -> int64 -> unit
(** Values are truncated to the mode width on write. *)

val pc : t -> int
val set_pc : t -> int -> unit
val set_sp : t -> int -> unit

val instructions_retired : t -> int64

val set_step_hook : t -> (pc:int -> instr:Instr.t -> cost:int -> unit) -> unit
(** Install a per-instruction observer, called once per retired
    instruction after its cost is charged to the clock and before it
    executes (the guest profiler's attachment point). At most one hook is
    active; installing replaces the previous one. *)

val clear_step_hook : t -> unit

val run : ?fuel:int -> t -> exit_reason
(** Execute until an exit. [fuel] (default 200M instructions) bounds
    runaway guests. Resumable: calling [run] again after an I/O exit
    continues after the I/O instruction. After a [Fault] exit, {!pc}
    reports the faulting instruction's address. *)

val reset : t -> mode:Modes.t -> unit
(** Clear registers/flags/PC and switch mode (shell reuse). Guest memory
    is cleared separately by the pool. *)

(** {1 Translator support}

    The surface {!module:Translate} compiles against. These expose just
    enough of the interpreter's internals for translated code to be
    observationally identical to {!run} — same faults, same cycle
    charges, same register truncation. Not intended for other callers. *)

exception Vm_fault of fault
(** Raised by faulting primitives below; {!run} converts it to
    [Fault _]. The translator's dispatcher must do the same. *)

val step : t -> exit_reason option
(** Execute exactly one instruction at the current {!pc} ([None] =
    continue). Raises {!Vm_fault} / {!Memory.Fault} with the PC rewound
    to the faulting instruction. *)

val clock : t -> Cycles.Clock.t
val regs : t -> int64 array
(** The live register file. Values are invariantly mode-masked; writers
    must store masked values (or use {!set_reg}). *)

val has_step_hook : t -> bool

val set_cmp : t -> signed:int -> unsigned:int -> unit
(** Set the comparison flags ([cmp]'s architectural effect). *)

val add_retired : t -> int -> unit
(** Credit [n] retired instructions (batched by translated blocks). *)

val check_range : t -> int -> int -> unit
(** [check_range t addr size] faults (mode-dependently) when the access
    crosses the architectural limit. Overflow-safe. *)

val read_mem : t -> Instr.width -> int -> int64
val write_mem : t -> Instr.width -> int -> int64 -> unit
val push : t -> int64 -> unit
val pop : t -> int64

val eval_binop : t -> Instr.binop -> int64 -> int64 -> int -> int64
(** [eval_binop t op l r pc]: untruncated result; the caller masks. [pc]
    only feeds the division-by-zero fault address. *)

val eval_cond : t -> Instr.cond -> bool

val branch_target : t -> int64 -> int
(** Architectural target of an indirect branch: mode-masked, clamped to
    the mode limit when it exceeds the host int range (the subsequent
    fetch then faults exactly like [Jmp] out of range). *)

val try_fetch : t -> int -> (Instr.t * int) option
(** Decode the instruction at an address without touching machine state;
    [None] when the fetch itself would fault. *)
