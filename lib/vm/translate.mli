(** Decode-once superblock translation cache for the vx CPU.

    A drop-in fast path for {!Cpu.run}: basic blocks are decoded once
    into closure-chain {e superblocks} (direct-threaded, chained on
    fallthrough and static branch targets), keyed by [(pc, cpu_mode)]
    and invalidated through {!Memory.page_version} / {!Memory.epoch} so
    self-modifying code and pool resets flush exactly the stale blocks.

    Observationally identical to the interpreter: same faults at the
    same PCs, same exits, bit-for-bit identical cycle counts and retired
    totals (exact {!Instr.cost} per instruction, batched and committed
    at every host observation point), same fuel semantics. When a step
    hook is installed (profiling), {!run} falls back to {!Cpu.run} so
    the hook's one-call-per-instruction contract holds.

    See [docs/translation.md] for the design. *)

type t

val create : Cpu.t -> t
(** A translation cache bound to one CPU (and its memory). Blocks
    persist across {!run} calls until invalidated. *)

val run : ?fuel:int -> t -> Cpu.exit_reason
(** Execute until a VM exit, like {!Cpu.run} (same default fuel,
    resumable after I/O exits, PC rewound to the faulting instruction on
    [Fault]). *)

val flush_cache : t -> unit
(** Drop every translated block (vcpu reset). Purely a performance
    event — stale blocks are also caught by validation. *)

val set_block_hook : t -> (pc:int -> unit) option -> unit
(** Install (or clear) a block-entry observer: called once per
    superblock entered — both dispatcher entries and chained static
    transfers — with the block's start pc. Unlike a {!Cpu} step hook
    this does {e not} force the interpreter fallback: the hook fires at
    superblock boundaries, which is exactly the granularity the
    translated engine preserves. The hook must not mutate guest state
    or advance clocks (vtrace block probes rely on this). *)

(** {1 Introspection} *)

type stats = {
  mutable blocks_translated : int;  (** superblocks compiled (incl. retranslations) *)
  mutable dispatches : int;         (** dispatcher entries (chained transfers excluded) *)
  mutable invalidations : int;      (** stale blocks dropped or aborted mid-block *)
  mutable hook_fallbacks : int;     (** runs delegated to the interpreter *)
}

val stats : t -> stats
