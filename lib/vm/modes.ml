type t = Real | Protected | Long

let width_bits = function Real -> 16 | Protected -> 32 | Long -> 64

let address_limit = function
  | Real -> 1 lsl 20
  | Protected -> 1 lsl 32
  | Long -> 1 lsl 30

let mask mode v =
  match mode with
  | Real -> Int64.logand v 0xFFFFL
  | Protected -> Int64.logand v 0xFFFFFFFFL
  | Long -> v

let sext mode v =
  match mode with
  | Real -> Int64.shift_right (Int64.shift_left v 48) 48
  | Protected -> Int64.shift_right (Int64.shift_left v 32) 32
  | Long -> v

let to_string = function Real -> "real" | Protected -> "protected" | Long -> "long"

let of_string = function
  | "real" -> Some Real
  | "protected" -> Some Protected
  | "long" -> Some Long
  | _ -> None

let pp ppf m = Format.pp_print_string ppf (to_string m)

let equal (a : t) (b : t) = a = b

let all = [ Real; Protected; Long ]
