(** Guest physical memory — a paged copy-on-write store.

    Each virtine owns a private, bounds-checked memory region; this is the
    mechanism behind the paper's isolation objective that a virtine "may
    not interact with any data or services outside of its own address
    space" (§3.1). Out-of-bounds accesses raise {!Fault}, which the CPU
    reports as a VM exit instead of ever touching host state.

    Internally the region is a page table of 4 KB pages in one of three
    states: the canonical {e zero} page (never materialized), an immutable
    {e shared} page (content-addressed, referenced by any number of
    memories and snapshot images), or a private {e owned} page. Reads
    never materialize anything; the first store to a zero or shared page
    breaks it private — the simulated analogue of an EPT demand-zero fill
    or CoW violation (see {!set_fault_hook}). Snapshot capture publishes
    pages into the process-wide {!Page_cache} and restore is a
    page-table swap, so warm-path work is O(dirty pages), not O(image). *)

exception Fault of { addr : int; size : int }
(** Raised on any access outside [0, size). *)

type t

val create : size:int -> t
(** Fresh zeroed memory of [size] bytes (all pages reference the zero
    page; nothing is materialized). *)

val size : t -> int

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int
(** Little-endian; result in [0, 2^32). *)

val read_u64 : t -> int -> int64

val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit
val write_u64 : t -> int -> int64 -> unit

val read_bytes : t -> off:int -> len:int -> bytes
val write_bytes : t -> off:int -> bytes -> unit
(** [write_bytes] skips all-zero chunks aimed at zero pages, so loading a
    zero-padded image materializes only its nonzero pages. The written
    range is marked dirty either way. *)

val read_cstring : t -> off:int -> max:int -> string
(** Read a NUL-terminated string of at most [max] bytes; raises {!Fault}
    if no terminator is found within bounds (hypercall handlers use this to
    validate guest-supplied paths without trusting guest lengths). *)

val fill_zero : t -> unit
(** Zero the whole region by dropping every page reference; marks
    everything dirty. *)

val reset_zero : t -> unit
(** Pool cleaning: drop every page reference {e and} start a fresh dirty
    generation — equivalent to {!fill_zero} + {!clear_dirty} without
    touching a byte. The caller still charges the simulated memset. *)

val copy_to : src:t -> dst:t -> unit
(** Share [src]'s pages into [dst]; sizes must match. [src]'s private
    pages are published (deduped) in the process; both sides then CoW. *)

val snapshot : t -> bytes
(** Copy out the full contents as a flat byte string. *)

val restore : t -> bytes -> unit
(** Overwrite contents from a flat snapshot of equal size. *)

(** {1 Page images}

    A capture is an O(pages) reference grab: every non-zero page is
    published into the {!Page_cache} (deduping identical content across
    snapshot keys and shells) and the image holds references, trimmed to
    the footprint. Restores swap references back into the page table. *)

type image

val capture : t -> image
(** Publish the current contents as an immutable page image. The source
    memory keeps running: its pages become shared and the next write to
    any of them CoW-faults. *)

val image_size : image -> int
(** Size of the memory the image was captured from. *)

val image_footprint : image -> int
(** Index of the last nonzero byte + 1 (0 for an all-zero capture). *)

val image_resident_pages : image -> int
(** Non-zero page references the image holds. *)

val restore_image : ?eager:bool -> t -> image -> int
(** Swap the image's page references in, zero-page the rest, and mark
    everything dirty (callers running a full reset then {!clear_dirty}).
    By default O(pages) reference stores — no byte traffic; later stores
    CoW-fault lazily. [~eager:true] materializes private copies up front
    (the paper's eager memcpy restore — O(footprint) bytes, no later
    faults). Returns the footprint. *)

val restore_image_cow : t -> image -> int * int
(** Rewrite only the pages dirtied since the last {!clear_dirty} with the
    image's references (zero beyond the image). Returns
    [(pages, logical_bytes)] restored; the caller clears the dirty set.
    Only valid when [t] held this image's state before the dirtying run. *)

(** {1 Dirty-page tracking}

    Every write marks its 4 KB page with the current generation stamp;
    {!clear_dirty} bumps the generation, invalidating all stamps in O(1).
    Copy-on-write virtine resets (the SEUSS-style optimization of §7.2)
    restore only the pages the previous invocation touched. *)

val page_size : int
(** 4096. *)

val dirty_pages : t -> int list
(** Indices of pages written since the last {!clear_dirty}, ascending. *)

val dirty_count : t -> int

val clear_dirty : t -> unit

(** {1 Content versions}

    Independent of the dirty stamps, every page carries a monotonic
    {e content version} bumped whenever its bytes may change (stores,
    image restores); {!reset_zero} instead bumps a memory-wide {e epoch}
    in O(1). The translation cache ({!module:Translate}) records the
    epoch and the versions of the pages a superblock was decoded from
    and re-validates them before reuse, so self-modifying code and pool
    resets invalidate exactly the stale blocks. {!clear_dirty} changes
    neither — cleaning the dirty set does not alter contents. *)

val epoch : t -> int
(** Memory-wide content epoch; bumped by {!reset_zero}. *)

val page_version : t -> int -> int
(** Content version of page [p] (not bounds-checked; callers pass pages
    obtained from successful accesses). *)

(** {1 Fault accounting} *)

val set_fault_hook : t -> (shared:bool -> page:int -> unit) option -> unit
(** Called on every page materialization: [shared = true] for a CoW break
    of a shared page (the simulated EPT write-protection violation),
    [false] for a demand-zero fill. The simulated KVM installs this to
    charge cycle costs and feed the flight recorder. *)

type page_stats = {
  total_pages : int;
  resident_pages : int;   (** privately materialized (owned) pages *)
  shared_pages : int;     (** references into the content-addressed cache *)
  zero_pages : int;
  cow_faults : int;       (** shared pages broken private over [t]'s life *)
  zero_fills : int;       (** demand-zero materializations *)
}

val page_stats : t -> page_stats

val resident_bytes : t -> int
(** Owned pages × {!page_size}: host memory this guest uniquely holds. *)

(** {1 Content-addressed page cache}

    Process-wide dedup table keyed by page-content digest. Bounded FIFO:
    eviction only loses future dedup (live references keep their buffers
    alive), never correctness. *)

module Page_cache : sig
  val set_capacity : int -> unit
  (** Default 8192 pages (32 MB). *)

  val entries : unit -> int
  val bytes : unit -> int
  val hits : unit -> int
  (** Interns that found an identical resident page. *)

  val misses : unit -> int
  val evictions : unit -> int

  val reset : unit -> unit
  (** Drop the table and zero the stats (tests). Outstanding references
      remain valid. *)
end
