exception Fault of { addr : int; size : int }

let page_size = 4096

type t = { data : bytes; size : int; dirty : Bytes.t }

let create ~size =
  { data = Bytes.make size '\000'; size; dirty = Bytes.make ((size + page_size - 1) / page_size) '\000' }

let size t = t.size

(* Overflow-safe: [addr + n] wraps for guest addresses near [max_int],
   which would let the check pass and surface a host [Invalid_argument]
   from [Bytes] instead of a guest {!Fault}. Compare against
   [t.size - n] instead, which cannot overflow once signs are known. *)
let check t addr n =
  if addr < 0 || n < 0 || addr > t.size - n then raise (Fault { addr; size = n })

let mark t addr n =
  let first = addr / page_size and last = (addr + n - 1) / page_size in
  for p = first to last do
    Bytes.unsafe_set t.dirty p '\001'
  done

let dirty_pages t =
  let acc = ref [] in
  for p = Bytes.length t.dirty - 1 downto 0 do
    if Bytes.unsafe_get t.dirty p = '\001' then acc := p :: !acc
  done;
  !acc

let dirty_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr n) t.dirty;
  !n

let clear_dirty t = Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000' 

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.data addr)

let read_u16 t addr =
  check t addr 2;
  Char.code (Bytes.unsafe_get t.data addr)
  lor (Char.code (Bytes.unsafe_get t.data (addr + 1)) lsl 8)

let read_u32 t addr =
  check t addr 4;
  let b i = Char.code (Bytes.unsafe_get t.data (addr + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let read_u64 t addr =
  check t addr 8;
  Bytes.get_int64_le t.data addr

let write_u8 t addr v =
  check t addr 1;
  mark t addr 1;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let write_u16 t addr v =
  check t addr 2;
  mark t addr 2;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set t.data (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))

let write_u32 t addr v =
  check t addr 4;
  mark t addr 4;
  for i = 0 to 3 do
    Bytes.unsafe_set t.data (addr + i) (Char.unsafe_chr ((v lsr (8 * i)) land 0xFF))
  done

let write_u64 t addr v =
  check t addr 8;
  mark t addr 8;
  Bytes.set_int64_le t.data addr v

let read_bytes t ~off ~len =
  check t off len;
  Bytes.sub t.data off len

let write_bytes t ~off b =
  let len = Bytes.length b in
  check t off len;
  if len > 0 then mark t off len;
  Bytes.blit b 0 t.data off len

let read_cstring t ~off ~max =
  check t off 0;
  let rec find i =
    if i >= max then raise (Fault { addr = off + i; size = 1 })
    else if read_u8 t (off + i) = 0 then i
    else find (i + 1)
  in
  let len = find 0 in
  Bytes.to_string (read_bytes t ~off ~len)

let fill_zero t =
  if t.size > 0 then mark t 0 t.size;
  Bytes.fill t.data 0 t.size '\000'

let copy_to ~src ~dst =
  if src.size <> dst.size then invalid_arg "Memory.copy_to: size mismatch";
  if dst.size > 0 then mark dst 0 dst.size;
  Bytes.blit src.data 0 dst.data 0 src.size

let snapshot t = Bytes.copy t.data

let restore t b =
  if Bytes.length b <> t.size then invalid_arg "Memory.restore: size mismatch";
  if t.size > 0 then mark t 0 t.size;
  Bytes.blit b 0 t.data 0 t.size
