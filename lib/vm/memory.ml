exception Fault of { addr : int; size : int }

let page_size = 4096
let page_shift = 12
let page_mask = page_size - 1

(* ------------------------------------------------------------------ *)
(* Pages                                                               *)
(* ------------------------------------------------------------------ *)

(* A shared page is immutable once published: every reference holds the
   same buffer and writes go through copy-on-write, so [s_data] is never
   mutated after interning. [s_key] is its content digest. *)
type shared = { s_data : bytes; s_key : string }

type page =
  | Zero                  (* canonical zero page, never materialized *)
  | Shared of shared      (* immutable, content-addressed, read-only *)
  | Owned of bytes        (* private, writable *)

(* Read-only view of the canonical zero page. Never written: every write
   path materializes an Owned page first. *)
let zero_data = Bytes.make page_size '\000'

let bytes_all_zero b pos len =
  (* 8-byte strides; [Bytes.get_int64_le] accepts unaligned offsets *)
  let stop = pos + len in
  let rec words i =
    if i + 8 > stop then tail i
    else Bytes.get_int64_le b i = 0L && words (i + 8)
  and tail i = i >= stop || (Bytes.unsafe_get b i = '\000' && tail (i + 1)) in
  words pos

let is_zero_page b = bytes_all_zero b 0 page_size

(* ------------------------------------------------------------------ *)
(* Content-addressed page cache                                        *)
(* ------------------------------------------------------------------ *)

module Page_cache = struct
  (* One process-wide table: pages are deduped across every memory,
     snapshot key and pool shell. Eviction (FIFO beyond [capacity]) only
     loses future dedup opportunities — existing references keep their
     buffer alive, so correctness never depends on residency. *)

  let table : (string, shared) Hashtbl.t = Hashtbl.create 512
  let order : string Queue.t = Queue.create ()
  let capacity = ref 8192
  let n_entries = ref 0
  let n_hits = ref 0
  let n_misses = ref 0
  let n_evictions = ref 0

  let set_capacity n =
    if n < 1 then invalid_arg "Memory.Page_cache.set_capacity: must be >= 1";
    capacity := n

  let entries () = !n_entries
  let bytes () = !n_entries * page_size
  let hits () = !n_hits
  let misses () = !n_misses
  let evictions () = !n_evictions

  let reset () =
    Hashtbl.reset table;
    Queue.clear order;
    n_entries := 0;
    n_hits := 0;
    n_misses := 0;
    n_evictions := 0

  (* Intern takes ownership of [b]: the caller's slot becomes a Shared
     reference, so the buffer is never mutated afterwards. *)
  let intern b =
    let key = Digest.bytes b in
    match Hashtbl.find_opt table key with
    | Some sh when String.equal sh.s_key key && Bytes.equal sh.s_data b ->
        incr n_hits;
        sh
    | Some _ ->
        (* digest collision: keep the page private rather than alias it *)
        { s_data = b; s_key = key }
    | None ->
        incr n_misses;
        let sh = { s_data = b; s_key = key } in
        if !n_entries >= !capacity then begin
          match Queue.take_opt order with
          | Some victim when Hashtbl.mem table victim ->
              Hashtbl.remove table victim;
              decr n_entries;
              incr n_evictions
          | Some _ | None -> ()
        end;
        Hashtbl.replace table key sh;
        Queue.push key order;
        incr n_entries;
        sh
end

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  size : int;
  npages : int;
  pages : page array;
  stamps : int array;       (* page p is dirty iff stamps.(p) = gen *)
  mutable gen : int;
  vers : int array;         (* monotonic per-page content version (see below) *)
  mutable epoch : int;      (* bulk content version: bumped by reset_zero *)
  mutable cow_faults : int;
  mutable zero_fills : int;
  mutable fault_hook : (shared:bool -> page:int -> unit) option;
}

let create ~size =
  let npages = (size + page_mask) / page_size in
  {
    size;
    npages;
    pages = Array.make npages Zero;
    stamps = Array.make npages 0;
    gen = 1;
    vers = Array.make npages 0;
    epoch = 0;
    cow_faults = 0;
    zero_fills = 0;
    fault_hook = None;
  }

let size t = t.size

let set_fault_hook t h = t.fault_hook <- h

(* Overflow-safe: [addr + n] wraps for guest addresses near [max_int],
   which would let the check pass and surface a host [Invalid_argument]
   from [Bytes] instead of a guest {!Fault}. Compare against
   [t.size - n] instead, which cannot overflow once signs are known. *)
let check t addr n =
  if addr < 0 || n < 0 || addr > t.size - n then raise (Fault { addr; size = n })

let mark t addr n =
  let first = addr lsr page_shift and last = (addr + n - 1) lsr page_shift in
  for p = first to last do
    Array.unsafe_set t.stamps p t.gen;
    (* content version: consumed by the translation cache to invalidate
       superblocks decoded from these pages. Unlike the dirty stamps it
       must survive [clear_dirty] — cleaning the dirty set does not
       change page contents, rewriting them does. *)
    Array.unsafe_set t.vers p (Array.unsafe_get t.vers p + 1)
  done

let dirty_pages t =
  let acc = ref [] in
  for p = t.npages - 1 downto 0 do
    if Array.unsafe_get t.stamps p = t.gen then acc := p :: !acc
  done;
  !acc

let dirty_count t =
  let n = ref 0 in
  for p = 0 to t.npages - 1 do
    if Array.unsafe_get t.stamps p = t.gen then incr n
  done;
  !n

(* The dirty bitmap is derived state: bumping the generation invalidates
   every stamp at once, O(1). *)
let clear_dirty t = t.gen <- t.gen + 1

let epoch t = t.epoch
let page_version t p = Array.unsafe_get t.vers p

let page_ro t p =
  match Array.unsafe_get t.pages p with
  | Zero -> zero_data
  | Shared s -> s.s_data
  | Owned b -> b

(* First store to a non-Owned page: demand-zero fill or CoW break. The
   fault hook (installed by the simulated KVM) charges the EPT-violation
   cost for shared pages; zero fills are free so cold-path timings are
   unchanged by the paged representation. *)
let page_rw t p =
  match Array.unsafe_get t.pages p with
  | Owned b -> b
  | Zero ->
      let b = Bytes.make page_size '\000' in
      t.pages.(p) <- Owned b;
      t.zero_fills <- t.zero_fills + 1;
      (match t.fault_hook with Some h -> h ~shared:false ~page:p | None -> ());
      b
  | Shared s ->
      let b = Bytes.copy s.s_data in
      t.pages.(p) <- Owned b;
      t.cow_faults <- t.cow_faults + 1;
      (match t.fault_hook with Some h -> h ~shared:true ~page:p | None -> ());
      b

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get (page_ro t (addr lsr page_shift)) (addr land page_mask))

let read_u16 t addr =
  check t addr 2;
  let off = addr land page_mask in
  if off <= page_size - 2 then begin
    let pg = page_ro t (addr lsr page_shift) in
    Char.code (Bytes.unsafe_get pg off)
    lor (Char.code (Bytes.unsafe_get pg (off + 1)) lsl 8)
  end
  else read_u8 t addr lor (read_u8 t (addr + 1) lsl 8)

let read_u32 t addr =
  check t addr 4;
  let off = addr land page_mask in
  if off <= page_size - 4 then begin
    let pg = page_ro t (addr lsr page_shift) in
    let b i = Char.code (Bytes.unsafe_get pg (off + i)) in
    b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  end
  else begin
    let b i = read_u8 t (addr + i) in
    b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  end

let read_u64 t addr =
  check t addr 8;
  let off = addr land page_mask in
  if off <= page_size - 8 then Bytes.get_int64_le (page_ro t (addr lsr page_shift)) off
  else begin
    let acc = ref 0L in
    for i = 7 downto 0 do
      acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (read_u8 t (addr + i)))
    done;
    !acc
  end

let write_u8 t addr v =
  check t addr 1;
  mark t addr 1;
  Bytes.unsafe_set (page_rw t (addr lsr page_shift)) (addr land page_mask)
    (Char.unsafe_chr (v land 0xFF))

let write_u16 t addr v =
  check t addr 2;
  mark t addr 2;
  let off = addr land page_mask in
  if off <= page_size - 2 then begin
    let pg = page_rw t (addr lsr page_shift) in
    Bytes.unsafe_set pg off (Char.unsafe_chr (v land 0xFF));
    Bytes.unsafe_set pg (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))
  end
  else begin
    write_u8 t addr (v land 0xFF);
    write_u8 t (addr + 1) ((v lsr 8) land 0xFF)
  end

let write_u32 t addr v =
  check t addr 4;
  mark t addr 4;
  let off = addr land page_mask in
  if off <= page_size - 4 then begin
    let pg = page_rw t (addr lsr page_shift) in
    for i = 0 to 3 do
      Bytes.unsafe_set pg (off + i) (Char.unsafe_chr ((v lsr (8 * i)) land 0xFF))
    done
  end
  else
    for i = 0 to 3 do
      write_u8 t (addr + i) ((v lsr (8 * i)) land 0xFF)
    done

let write_u64 t addr v =
  check t addr 8;
  mark t addr 8;
  let off = addr land page_mask in
  if off <= page_size - 8 then Bytes.set_int64_le (page_rw t (addr lsr page_shift)) off v
  else
    for i = 0 to 7 do
      write_u8 t (addr + i)
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
    done

let read_bytes t ~off ~len =
  check t off len;
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let addr = off + !pos in
    let in_page = addr land page_mask in
    let chunk = min (page_size - in_page) (len - !pos) in
    Bytes.blit (page_ro t (addr lsr page_shift)) in_page out !pos chunk;
    pos := !pos + chunk
  done;
  out

let write_bytes t ~off b =
  let len = Bytes.length b in
  check t off len;
  if len > 0 then begin
    mark t off len;
    let pos = ref 0 in
    while !pos < len do
      let addr = off + !pos in
      let in_page = addr land page_mask in
      let chunk = min (page_size - in_page) (len - !pos) in
      (* an all-zero chunk landing on a Zero page needs no store: large
         zero-padded images stay non-resident *)
      (match Array.unsafe_get t.pages (addr lsr page_shift) with
      | Zero when bytes_all_zero b !pos chunk -> ()
      | Zero | Shared _ | Owned _ ->
          Bytes.blit b !pos (page_rw t (addr lsr page_shift)) in_page chunk);
      pos := !pos + chunk
    done
  end

let read_cstring t ~off ~max =
  check t off 0;
  let rec find i =
    if i >= max then raise (Fault { addr = off + i; size = 1 })
    else if read_u8 t (off + i) = 0 then i
    else find (i + 1)
  in
  let len = find 0 in
  Bytes.to_string (read_bytes t ~off ~len)

let fill_zero t =
  if t.size > 0 then mark t 0 t.size;
  Array.fill t.pages 0 t.npages Zero

(* Pool cleaning: drop every reference and start a fresh generation —
   the simulated cost model still charges the memset this stands for.
   Bumping the epoch (rather than every page version) keeps the release
   path O(1) while still invalidating every translated superblock. *)
let reset_zero t =
  Array.fill t.pages 0 t.npages Zero;
  t.epoch <- t.epoch + 1;
  clear_dirty t

(* Publish page [p]: normalize all-zero Owned pages back to Zero, intern
   the rest. After this the slot is read-only until the next write
   faults it private again. *)
let share_page t p =
  match t.pages.(p) with
  | Zero -> Zero
  | Shared _ as pg -> pg
  | Owned b ->
      let pg = if is_zero_page b then Zero else Shared (Page_cache.intern b) in
      t.pages.(p) <- pg;
      pg

let copy_to ~src ~dst =
  if src.size <> dst.size then invalid_arg "Memory.copy_to: size mismatch";
  if dst.size > 0 then mark dst 0 dst.size;
  for p = 0 to src.npages - 1 do
    dst.pages.(p) <- share_page src p
  done

let snapshot t =
  let out = Bytes.create t.size in
  for p = 0 to t.npages - 1 do
    let off = p * page_size in
    Bytes.blit (page_ro t p) 0 out off (min page_size (t.size - off))
  done;
  out

let restore t b =
  if Bytes.length b <> t.size then invalid_arg "Memory.restore: size mismatch";
  if t.size > 0 then mark t 0 t.size;
  for p = 0 to t.npages - 1 do
    let off = p * page_size in
    let n = min page_size (t.size - off) in
    if bytes_all_zero b off n then t.pages.(p) <- Zero
    else begin
      let pg = Bytes.make page_size '\000' in
      Bytes.blit b off pg 0 n;
      t.pages.(p) <- Owned pg
    end
  done

(* ------------------------------------------------------------------ *)
(* Page images (snapshot capture/restore)                              *)
(* ------------------------------------------------------------------ *)

type image = { i_pages : page array; i_size : int; i_footprint : int }

let page_is_zero_ref = function Zero -> true | Shared _ | Owned _ -> false

let capture t =
  (* publishing every page also dedupes the live memory itself: repeated
     captures of the same state are reference grabs, not copies *)
  let shared = Array.init t.npages (fun p -> share_page t p) in
  let rec last_page p = if p < 0 then -1 else if page_is_zero_ref shared.(p) then last_page (p - 1) else p in
  let lp = last_page (t.npages - 1) in
  let footprint =
    if lp < 0 then 0
    else begin
      let pg =
        match shared.(lp) with Shared s -> s.s_data | Owned b -> b | Zero -> assert false
      in
      let limit = min page_size (t.size - (lp * page_size)) in
      let rec last_byte i =
        if i < 0 then lp * page_size
        else if Bytes.unsafe_get pg i <> '\000' then (lp * page_size) + i + 1
        else last_byte (i - 1)
      in
      last_byte (limit - 1)
    end
  in
  let keep = (footprint + page_mask) lsr page_shift in
  { i_pages = Array.sub shared 0 keep; i_size = t.size; i_footprint = footprint }

let image_size img = img.i_size
let image_footprint img = img.i_footprint

let image_resident_pages img =
  Array.fold_left (fun n pg -> if page_is_zero_ref pg then n else n + 1) 0 img.i_pages

(* [eager] materializes private copies up front (the paper's memcpy
   restore: later stores never fault); the default installs shared
   references and lets stores CoW lazily. *)
let restore_image ?(eager = false) t img =
  let keep = Array.length img.i_pages in
  if keep > t.npages || img.i_footprint > t.size then
    invalid_arg "Memory.restore_image: image exceeds memory";
  if eager then
    for p = 0 to keep - 1 do
      t.pages.(p) <-
        (match img.i_pages.(p) with
        | Zero -> Zero
        | Shared s -> Owned (Bytes.copy s.s_data)
        | Owned b -> Owned (Bytes.copy b))
    done
  else Array.blit img.i_pages 0 t.pages 0 keep;
  if t.npages > keep then Array.fill t.pages keep (t.npages - keep) Zero;
  if t.size > 0 then mark t 0 t.size;
  img.i_footprint

let restore_image_cow t img =
  let keep = Array.length img.i_pages in
  if keep > t.npages || img.i_footprint > t.size then
    invalid_arg "Memory.restore_image_cow: image exceeds memory";
  let pages = ref 0 and bytes = ref 0 in
  for p = 0 to t.npages - 1 do
    if Array.unsafe_get t.stamps p = t.gen then begin
      t.pages.(p) <- (if p < keep then img.i_pages.(p) else Zero);
      (* this path replaces page contents without going through [mark];
         bump the content version so stale superblocks are dropped *)
      Array.unsafe_set t.vers p (Array.unsafe_get t.vers p + 1);
      incr pages;
      bytes := !bytes + min page_size (t.size - (p * page_size))
    end
  done;
  (!pages, !bytes)

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

type page_stats = {
  total_pages : int;
  resident_pages : int;
  shared_pages : int;
  zero_pages : int;
  cow_faults : int;
  zero_fills : int;
}

let page_stats t =
  let resident = ref 0 and shared = ref 0 and zero = ref 0 in
  for p = 0 to t.npages - 1 do
    match Array.unsafe_get t.pages p with
    | Zero -> incr zero
    | Shared _ -> incr shared
    | Owned _ -> incr resident
  done;
  {
    total_pages = t.npages;
    resident_pages = !resident;
    shared_pages = !shared;
    zero_pages = !zero;
    cow_faults = t.cow_faults;
    zero_fills = t.zero_fills;
  }

let resident_bytes t =
  let resident = ref 0 in
  for p = 0 to t.npages - 1 do
    match Array.unsafe_get t.pages p with
    | Owned _ -> incr resident
    | Zero | Shared _ -> ()
  done;
  !resident * page_size
