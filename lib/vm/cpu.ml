type fault =
  | Memory_oob of { addr : int; size : int }
  | Page_fault of { addr : int }
  | Invalid_opcode of { addr : int; msg : string }
  | Division_by_zero of { addr : int }

type exit_reason =
  | Halt
  | Io_out of { port : int; value : int64 }
  | Io_in of { port : int; reg : Instr.reg }
  | Fault of fault
  | Out_of_fuel

let pp_fault ppf = function
  | Memory_oob { addr; size } -> Format.fprintf ppf "memory fault at 0x%x (%d bytes)" addr size
  | Page_fault { addr } -> Format.fprintf ppf "page fault at 0x%x" addr
  | Invalid_opcode { addr; msg } -> Format.fprintf ppf "invalid opcode at 0x%x: %s" addr msg
  | Division_by_zero { addr } -> Format.fprintf ppf "division by zero at 0x%x" addr

let pp_exit ppf = function
  | Halt -> Format.pp_print_string ppf "halt"
  | Io_out { port; value } -> Format.fprintf ppf "out(port=0x%x, value=%Ld)" port value
  | Io_in { port; reg } -> Format.fprintf ppf "in(port=0x%x, r%d)" port reg
  | Fault f -> Format.fprintf ppf "fault: %a" pp_fault f
  | Out_of_fuel -> Format.pp_print_string ppf "out of fuel"

type t = {
  memory : Memory.t;
  mutable cpu_mode : Modes.t;
  clock : Cycles.Clock.t;
  regs : int64 array;
  mutable pc : int;
  mutable signed_cmp : int;
  mutable unsigned_cmp : int;
  mutable retired : int64;
  mutable step_hook : (pc:int -> instr:Instr.t -> cost:int -> unit) option;
}

exception Vm_fault of fault

let create ~mem ~mode ~clock =
  {
    memory = mem;
    cpu_mode = mode;
    clock;
    regs = Array.make Instr.num_regs 0L;
    pc = 0;
    signed_cmp = 0;
    unsigned_cmp = 0;
    retired = 0L;
    step_hook = None;
  }

let mem t = t.memory
let mode t = t.cpu_mode

let get_reg t r = t.regs.(r)
let set_reg t r v = t.regs.(r) <- Modes.mask t.cpu_mode v

let pc t = t.pc
let set_pc t pc = t.pc <- pc
let set_sp t sp = set_reg t Instr.sp (Int64.of_int sp)

let instructions_retired t = t.retired

let set_step_hook t hook = t.step_hook <- Some hook
let clear_step_hook t = t.step_hook <- None

let reset t ~mode =
  t.cpu_mode <- mode;
  Array.fill t.regs 0 Instr.num_regs 0L;
  t.pc <- 0;
  t.signed_cmp <- 0;
  t.unsigned_cmp <- 0;
  t.retired <- 0L

(* Address check: guest RAM bounds are enforced by Memory; the mode's
   architectural limit (1 MB real, 4 GB protected, 1 GB mapped in long
   mode) is enforced here, faulting like hardware would.

   Overflow-safe, mirroring [Memory.check]: [addr + size] wraps negative
   for a base register near [max_int], which would slip past the limit
   check and surface a host [Invalid_argument] instead of a guest fault.
   [limit - size] cannot wrap once [addr >= 0] and [size >= 0]. *)
let check_range t addr size =
  let limit = Modes.address_limit t.cpu_mode in
  if addr < 0 || addr > limit - size then begin
    match t.cpu_mode with
    | Modes.Long -> raise (Vm_fault (Page_fault { addr }))
    | Modes.Real | Modes.Protected -> raise (Vm_fault (Memory_oob { addr; size }))
  end

let read_mem t width addr : int64 =
  let size = Instr.bytes_of_width width in
  check_range t addr size;
  match width with
  | Instr.W8 -> Int64.of_int (Memory.read_u8 t.memory addr)
  | Instr.W16 -> Int64.of_int (Memory.read_u16 t.memory addr)
  | Instr.W32 -> Int64.of_int (Memory.read_u32 t.memory addr)
  | Instr.W64 -> Memory.read_u64 t.memory addr

let write_mem t width addr (v : int64) =
  let size = Instr.bytes_of_width width in
  check_range t addr size;
  match width with
  | Instr.W8 -> Memory.write_u8 t.memory addr (Int64.to_int (Int64.logand v 0xFFL))
  | Instr.W16 -> Memory.write_u16 t.memory addr (Int64.to_int (Int64.logand v 0xFFFFL))
  | Instr.W32 ->
      Memory.write_u32 t.memory addr (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
  | Instr.W64 -> Memory.write_u64 t.memory addr v

let operand_value t : Instr.operand -> int64 = function
  | Reg r -> t.regs.(r)
  | Imm i -> Modes.mask t.cpu_mode i

(* Hardware masks shift counts to the operand width: 0..31 outside long
   mode, 0..63 in it. A single 63 mask let real/protected guests observe
   counts 32..63 that a 32-bit machine reduces mod 32. *)
let shift_mask t =
  match t.cpu_mode with Modes.Real | Modes.Protected -> 31L | Modes.Long -> 63L

let eval_binop t op l r pc =
  let open Int64 in
  let sl = Modes.sext t.cpu_mode l and sr = Modes.sext t.cpu_mode r in
  match (op : Instr.binop) with
  | Add -> add l r
  | Sub -> sub l r
  | Mul -> mul l r
  | Div ->
      if sr = 0L then raise (Vm_fault (Division_by_zero { addr = pc })) else div sl sr
  | Rem ->
      if sr = 0L then raise (Vm_fault (Division_by_zero { addr = pc })) else rem sl sr
  | And -> logand l r
  | Or -> logor l r
  | Xor -> logxor l r
  | Shl -> shift_left l (to_int (logand r (shift_mask t)))
  | Shr -> shift_right_logical l (to_int (logand r (shift_mask t)))
  | Sar -> shift_right sl (to_int (logand r (shift_mask t)))

let eval_cond t : Instr.cond -> bool = function
  | Eq -> t.signed_cmp = 0
  | Ne -> t.signed_cmp <> 0
  | Lt -> t.signed_cmp < 0
  | Le -> t.signed_cmp <= 0
  | Gt -> t.signed_cmp > 0
  | Ge -> t.signed_cmp >= 0
  | Ult -> t.unsigned_cmp < 0
  | Ule -> t.unsigned_cmp <= 0
  | Ugt -> t.unsigned_cmp > 0
  | Uge -> t.unsigned_cmp >= 0

let push t v =
  let sp = Int64.to_int t.regs.(Instr.sp) - 8 in
  write_mem t Instr.W64 sp v;
  set_reg t Instr.sp (Int64.of_int sp)

let pop t =
  let sp = Int64.to_int t.regs.(Instr.sp) in
  let v = read_mem t Instr.W64 sp in
  set_reg t Instr.sp (Int64.of_int (sp + 8));
  v

(* Indirect branch targets (callr/ret) truncate to the mode width like
   every architectural register write; a 32-bit-mode guest with a stale
   high half lands at the masked address, it does not escape to a
   truncated host-int one. A long-mode value still exceeding the host
   int range clamps to the architectural limit so the next fetch faults
   there — the same fault [Jmp] to an out-of-range target takes. *)
let branch_target t v =
  let v = Modes.mask t.cpu_mode v in
  if Int64.unsigned_compare v (Int64.of_int max_int) > 0 then
    Modes.address_limit t.cpu_mode
  else Int64.to_int v

let fetch t =
  let read_byte a =
    check_range t a 1;
    Memory.read_u8 t.memory a
  in
  try Encoding.decode read_byte t.pc with
  | Encoding.Decode_error { addr; msg } -> raise (Vm_fault (Invalid_opcode { addr; msg }))

let step_inner t start_pc : exit_reason option =
  let instr, size = fetch t in
  let cost = Instr.cost instr in
  Cycles.Clock.advance_int t.clock cost;
  t.retired <- Int64.add t.retired 1L;
  (match t.step_hook with Some h -> h ~pc:start_pc ~instr ~cost | None -> ());
  let next = start_pc + size in
  t.pc <- next;
  match instr with
  | Hlt -> Some Halt
  | Nop -> None
  | Mov (rd, src) ->
      set_reg t rd (operand_value t src);
      None
  | Bin (op, rd, src) ->
      set_reg t rd (eval_binop t op t.regs.(rd) (operand_value t src) start_pc);
      None
  | Neg rd ->
      set_reg t rd (Int64.neg (Modes.sext t.cpu_mode t.regs.(rd)));
      None
  | Not rd ->
      set_reg t rd (Int64.lognot t.regs.(rd));
      None
  | Cmp (r, src) ->
      let l = t.regs.(r) and rv = operand_value t src in
      t.signed_cmp <- Int64.compare (Modes.sext t.cpu_mode l) (Modes.sext t.cpu_mode rv);
      t.unsigned_cmp <- Int64.unsigned_compare l rv;
      None
  | Jmp a ->
      t.pc <- a;
      None
  | Jcc (c, a) ->
      if eval_cond t c then t.pc <- a;
      None
  | Call a ->
      push t (Int64.of_int next);
      t.pc <- a;
      None
  | Callr r ->
      push t (Int64.of_int next);
      (* read the register after the push: callr through sp must see the
         post-push stack pointer, exactly like hardware *)
      t.pc <- branch_target t t.regs.(r);
      None
  | Ret ->
      t.pc <- branch_target t (pop t);
      None
  | Push src ->
      push t (operand_value t src);
      None
  | Pop rd ->
      set_reg t rd (pop t);
      None
  | Load (w, rd, rb, d) ->
      let addr = Int64.to_int t.regs.(rb) + d in
      set_reg t rd (read_mem t w addr);
      None
  | Store (w, rb, d, src) ->
      let addr = Int64.to_int t.regs.(rb) + d in
      write_mem t w addr (operand_value t src);
      None
  | Lea (rd, rb, d) ->
      set_reg t rd (Int64.add t.regs.(rb) (Int64.of_int d));
      None
  | Out (port, src) -> Some (Io_out { port; value = operand_value t src })
  | In (rd, port) -> Some (Io_in { port; reg = rd })
  | Rdtsc rd ->
      set_reg t rd (Cycles.Clock.now t.clock);
      None

(* On a fault the PC is rewound to the faulting instruction so the
   hypervisor's post-mortem (flight recorder) reports where the guest
   died, like a real #PF pushing the faulting RIP. *)
let step t : exit_reason option =
  let start_pc = t.pc in
  try step_inner t start_pc with
  | Vm_fault _ as e ->
      t.pc <- start_pc;
      raise e
  | Memory.Fault _ as e ->
      t.pc <- start_pc;
      raise e

let run ?(fuel = 200_000_000) t =
  let remaining = ref fuel in
  let rec loop () =
    if !remaining <= 0 then Out_of_fuel
    else begin
      decr remaining;
      match step t with None -> loop () | Some exit -> exit
    end
  in
  try loop () with Vm_fault f -> Fault f | Memory.Fault { addr; size } -> Fault (Memory_oob { addr; size })

(* ------------------------------------------------------------------ *)
(* Translator support (see translate.ml)                               *)
(* ------------------------------------------------------------------ *)

let clock t = t.clock
let regs t = t.regs
let has_step_hook t = t.step_hook <> None

let set_cmp t ~signed ~unsigned =
  t.signed_cmp <- signed;
  t.unsigned_cmp <- unsigned

let add_retired t n = t.retired <- Int64.add t.retired (Int64.of_int n)

(* Decode one instruction at [pc] without perturbing machine state:
   faults during the fetch (out-of-range pc, truncated or invalid
   encoding) yield [None] so the translator can end the superblock there
   and leave the faulting fetch to the interpreter, which reports it
   exactly as a per-step fetch would. *)
let try_fetch t pc =
  let saved = t.pc in
  t.pc <- pc;
  let r = try Some (fetch t) with Vm_fault _ | Memory.Fault _ -> None in
  t.pc <- saved;
  r
