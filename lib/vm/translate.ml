(* Decode-once superblock translation for the vx CPU.

   The interpreter re-decodes byte-encoded instructions on every step;
   at scale (bench sweeps, fleet loadgen, fuzzing) that decode dominates
   wall-clock while contributing nothing to the simulation. This layer
   decodes each basic block once into a *superblock*: an OCaml closure
   chain with one direct-threaded continuation per instruction, chained
   on fallthrough and static branch targets. Blocks are keyed by
   (pc, cpu_mode) and invalidated by the page content versions in
   Memory, so self-modifying writes and Pool.release/CoW restores flush
   exactly the stale blocks.

   The timing model is untouched: every translated instruction charges
   its exact Instr.cost, bumps retired, and honors fuel. Cycle and
   retired charges are batched in plain ints and committed to the
   Clock/CPU at every point a host observer could look:

     - VM exits (hlt/out/in), Rdtsc, and the interpreter fallback;
     - before every guest memory *write* — a store can break a CoW page,
       and the EPT fault hook reads Clock.now and Cpu.pc mid-write, so
       the clock and pc must be architecturally exact there;
     - in the dispatcher's fault handler (reads/pops fault lazily).

   Simulated cycle counts are therefore bit-for-bit identical to the
   interpreter's, which is what keeps the measurement methodology (and
   .vxr replay) honest while wall-clock throughput rises an order of
   magnitude.

   When a step hook is installed (the profiler), runs fall back to the
   interpreter: the hook's contract is one call per retired instruction
   at an exact pc/cost, which batching would break. Documented in
   docs/translation.md and locked by tests. *)

type stats = {
  mutable blocks_translated : int;
  mutable dispatches : int;
  mutable invalidations : int;
  mutable hook_fallbacks : int;
}

(* A chain slot caches the resolved target block of a static edge
   (fallthrough, jmp, call, taken jcc) so steady-state control transfer
   is a validity check plus a tail call, not a table lookup. *)
type slot = { mutable s_blk : block option }

and block = {
  b_epoch : int;          (* Memory.epoch at translation time *)
  b_pages : int array;    (* pages the block's code bytes span *)
  b_vers : int array;     (* their content versions at translation time *)
  b_exec : unit -> Cpu.exit_reason option;
      (* [Some exit] = VM exit; [None] = control left the chain
         (indirect branch, invalidation, undecodable pc): re-dispatch at
         the CPU's pc. *)
}

type t = {
  cpu : Cpu.t;
  mem : Memory.t;
  clock : Cycles.Clock.t;
  table : (int, block) Hashtbl.t;
  mutable t_epoch : int;  (* epoch the table's entries belong to *)
  mutable cyc : int;      (* cycles charged but not yet committed *)
  mutable steps : int;    (* instructions retired but not yet committed *)
  mutable fuel : int;
  mutable cur_pc : int;   (* start pc of the instruction in flight *)
  mutable block_hook : (pc:int -> unit) option;
  stats : stats;
}

let create cpu =
  {
    cpu;
    mem = Cpu.mem cpu;
    clock = Cpu.clock cpu;
    table = Hashtbl.create 64;
    t_epoch = Memory.epoch (Cpu.mem cpu);
    cyc = 0;
    steps = 0;
    fuel = 0;
    cur_pc = 0;
    block_hook = None;
    stats =
      { blocks_translated = 0; dispatches = 0; invalidations = 0; hook_fallbacks = 0 };
  }

let stats t = t.stats
let flush_cache t = Hashtbl.reset t.table
let set_block_hook t h = t.block_hook <- h

(* Commit batched charges. Idempotent; called at every observation
   point. After this, Clock.now and instructions_retired read exactly
   what the interpreter would have accumulated. *)
let commit tr =
  if tr.cyc <> 0 then begin
    Cycles.Clock.advance_int tr.clock tr.cyc;
    tr.cyc <- 0
  end;
  if tr.steps <> 0 then begin
    Cpu.add_retired tr.cpu tr.steps;
    tr.steps <- 0
  end

let mode_index = function Modes.Real -> 0 | Modes.Protected -> 1 | Modes.Long -> 2
let key_of pc mode = (pc lsl 2) lor mode_index mode

(* Superblocks stop at 128 instructions; longer straight-line runs chain
   through a synthetic fallthrough edge. *)
let max_block = 128

let pages_current mem pages vers =
  let n = Array.length pages in
  let rec go i =
    i >= n
    || (Memory.page_version mem (Array.unsafe_get pages i) = Array.unsafe_get vers i
       && go (i + 1))
  in
  go 0

let block_valid tr b =
  b.b_epoch = Memory.epoch tr.mem && pages_current tr.mem b.b_pages b.b_vers

let rec lookup tr pc =
  let e = Memory.epoch tr.mem in
  if e <> tr.t_epoch then begin
    (* pool reset: every cached block decoded stale bytes *)
    Hashtbl.reset tr.table;
    tr.t_epoch <- e
  end;
  let key = key_of pc (Cpu.mode tr.cpu) in
  match Hashtbl.find_opt tr.table key with
  | Some b when block_valid tr b -> b
  | Some _ ->
      tr.stats.invalidations <- tr.stats.invalidations + 1;
      Hashtbl.remove tr.table key;
      let b = translate tr pc in
      Hashtbl.replace tr.table key b;
      b
  | None ->
      let b = translate tr pc in
      Hashtbl.replace tr.table key b;
      b

and translate tr pc0 =
  let cpu = tr.cpu in
  let mem = tr.mem in
  let mode = Cpu.mode cpu in
  let regs = Cpu.regs cpu in
  (* Pass 1: decode the block once. Stops at control flow, VM exits, an
     undecodable pc, or the length cap. *)
  let rec scan pc n acc =
    if n >= max_block then (List.rev acc, `Fall pc)
    else
      match Cpu.try_fetch cpu pc with
      | None -> (List.rev acc, `Bad pc)
      | Some ((instr : Instr.t), size) -> (
          let acc = (pc, instr, size) :: acc in
          match instr with
          | Hlt | Out _ | In _ | Jmp _ | Call _ | Callr _ | Ret ->
              (List.rev acc, `Stop)
          | _ -> scan (pc + size) (n + 1) acc)
  in
  let decoded, tail = scan pc0 0 [] in
  let body, term =
    match tail with
    | `Stop -> (
        match List.rev decoded with
        | last :: rest -> (List.rev rest, `Term last)
        | [] -> assert false)
    | (`Fall _ | `Bad _) as k -> (decoded, k)
  in
  (* The pages the decoded bytes span; rechecked after every in-block
     write (self-modifying code) and on every block entry. Filled in
     after compilation — the closures capture the refs. *)
  let pages_r = ref [||] and vers_r = ref [||] in
  let smc_ok () = pages_current mem !pages_r !vers_r in
  let smc_abort () =
    tr.stats.invalidations <- tr.stats.invalidations + 1;
    None
  in
  let out_of_fuel start =
    commit tr;
    Cpu.set_pc cpu start;
    Some Cpu.Out_of_fuel
  in
  (* Resolve a static branch edge lazily, caching the target block. *)
  let goto target =
    let slot = { s_blk = None } in
    fun () ->
      (* chained static edges bypass the dispatch loop, so block-entry
         observers must also fire here *)
      (match tr.block_hook with None -> () | Some f -> f ~pc:target);
      match slot.s_blk with
      | Some b when block_valid tr b -> b.b_exec ()
      | _ ->
          let b = lookup tr target in
          slot.s_blk <- Some b;
          b.b_exec ()
  in
  let operand : Instr.operand -> unit -> int64 = function
    | Reg r -> fun () -> Array.unsafe_get regs r
    | Imm i ->
        let v = Modes.mask mode i in
        fun () -> v
  in
  (* Branch-free per-mode constants so the per-instruction closures skip
     the [Modes.mask]/[Modes.sext] mode dispatch: and-with-(-1) and
     shift-by-0 are identities in long mode. *)
  let mask_c =
    match mode with
    | Modes.Real -> 0xFFFFL
    | Modes.Protected -> 0xFFFFFFFFL
    | Modes.Long -> -1L
  in
  let sext_s = 64 - Modes.width_bits mode in
  let mk v = Int64.logand v mask_c in
  let sx v = Int64.shift_right (Int64.shift_left v sext_s) sext_s in
  let count_c =
    match mode with Modes.Real | Modes.Protected -> 31L | Modes.Long -> 63L
  in
  (* Block terminator continuation. *)
  let tail_k : unit -> Cpu.exit_reason option =
    match term with
    | `Fall pc -> goto pc
    | `Bad pc ->
        (* Undecodable bytes: hand this single step to the interpreter,
           which charges/faults/reports exactly as a non-translated step
           would (and re-decodes fresh, so bytes later overwritten with
           valid code execute correctly too). *)
        fun () ->
          if tr.fuel <= 0 then out_of_fuel pc
          else begin
            tr.fuel <- tr.fuel - 1;
            commit tr;
            tr.cur_pc <- pc;
            Cpu.set_pc cpu pc;
            Cpu.step cpu
          end
    | `Term (start, instr, size) -> (
        let cost = Instr.cost instr in
        let next = start + size in
        let retire () =
          tr.cyc <- tr.cyc + cost;
          tr.steps <- tr.steps + 1
        in
        match instr with
        | Hlt ->
            fun () ->
              if tr.fuel <= 0 then out_of_fuel start
              else begin
                tr.fuel <- tr.fuel - 1;
                retire ();
                commit tr;
                Cpu.set_pc cpu next;
                Some Cpu.Halt
              end
        | Out (port, src) ->
            let srcf = operand src in
            fun () ->
              if tr.fuel <= 0 then out_of_fuel start
              else begin
                tr.fuel <- tr.fuel - 1;
                retire ();
                commit tr;
                Cpu.set_pc cpu next;
                Some (Cpu.Io_out { port; value = srcf () })
              end
        | In (rd, port) ->
            fun () ->
              if tr.fuel <= 0 then out_of_fuel start
              else begin
                tr.fuel <- tr.fuel - 1;
                retire ();
                commit tr;
                Cpu.set_pc cpu next;
                Some (Cpu.Io_in { port; reg = rd })
              end
        | Jmp a ->
            let g = goto a in
            fun () ->
              if tr.fuel <= 0 then out_of_fuel start
              else begin
                tr.fuel <- tr.fuel - 1;
                retire ();
                g ()
              end
        | Call a ->
            let g = goto a in
            let retv = Int64.of_int next in
            fun () ->
              if tr.fuel <= 0 then out_of_fuel start
              else begin
                tr.fuel <- tr.fuel - 1;
                retire ();
                tr.cur_pc <- start;
                (* the push may CoW-fault: hook observes clock + pc *)
                commit tr;
                Cpu.set_pc cpu next;
                Cpu.push cpu retv;
                if smc_ok () then g ()
                else begin
                  Cpu.set_pc cpu a;
                  smc_abort ()
                end
              end
        | Callr r ->
            let retv = Int64.of_int next in
            fun () ->
              if tr.fuel <= 0 then out_of_fuel start
              else begin
                tr.fuel <- tr.fuel - 1;
                retire ();
                tr.cur_pc <- start;
                commit tr;
                Cpu.set_pc cpu next;
                Cpu.push cpu retv;
                (* register read after the push (callr through sp) *)
                Cpu.set_pc cpu (Cpu.branch_target cpu (Array.unsafe_get regs r));
                None
              end
        | Ret ->
            fun () ->
              if tr.fuel <= 0 then out_of_fuel start
              else begin
                tr.fuel <- tr.fuel - 1;
                retire ();
                tr.cur_pc <- start;
                Cpu.set_pc cpu (Cpu.branch_target cpu (Cpu.pop cpu));
                None
              end
        | _ -> assert false (* only VM exits and branches terminate *))
  in
  (* Pass 2: compile body instructions back-to-front, each closure
     continuing into the next. *)
  let compile (start, (instr : Instr.t), size) next_k =
    let cost = Instr.cost instr in
    let next = start + size in
    (* register-only ops inline the batched cycles/retired bookkeeping to
       avoid a call per retired instruction; the memory-touching ops
       (which pay a guest memory access anyway) share it via [retire] *)
    let retire () =
      tr.cyc <- tr.cyc + cost;
      tr.steps <- tr.steps + 1
    in
    match instr with
    | Instr.Nop ->
        fun () ->
          if tr.fuel <= 0 then out_of_fuel start
          else begin
            tr.fuel <- tr.fuel - 1;
            tr.cyc <- tr.cyc + cost;
            tr.steps <- tr.steps + 1;
            next_k ()
          end
    | Mov (rd, src) -> (
        (* operands are invariantly mode-masked, so reg-to-reg moves
           need no re-mask *)
        match src with
        | Instr.Reg rs ->
            fun () ->
              if tr.fuel <= 0 then out_of_fuel start
              else begin
                tr.fuel <- tr.fuel - 1;
                tr.cyc <- tr.cyc + cost;
                tr.steps <- tr.steps + 1;
                Array.unsafe_set regs rd (Array.unsafe_get regs rs);
                next_k ()
              end
        | Instr.Imm i ->
            let v = Modes.mask mode i in
            fun () ->
              if tr.fuel <= 0 then out_of_fuel start
              else begin
                tr.fuel <- tr.fuel - 1;
                tr.cyc <- tr.cyc + cost;
                tr.steps <- tr.steps + 1;
                Array.unsafe_set regs rd v;
                next_k ()
              end)
    | Bin (op, rd, src) -> (
        let srcf = operand src in
        (* the common non-faulting operators get direct closures; the
           exact [Cpu.eval_binop] semantics are mirrored (mode-masked
           inputs in, mask applied on writeback) *)
        let simple fop =
          fun () ->
            if tr.fuel <= 0 then out_of_fuel start
            else begin
              tr.fuel <- tr.fuel - 1;
              tr.cyc <- tr.cyc + cost;
              tr.steps <- tr.steps + 1;
              Array.unsafe_set regs rd (mk (fop (Array.unsafe_get regs rd) (srcf ())));
              next_k ()
            end
        in
        match op with
        | Instr.Add -> simple Int64.add
        | Instr.Sub -> simple Int64.sub
        | Instr.Mul -> simple Int64.mul
        | Instr.And -> simple Int64.logand
        | Instr.Or -> simple Int64.logor
        | Instr.Xor -> simple Int64.logxor
        | Instr.Shl ->
            simple (fun l r -> Int64.shift_left l (Int64.to_int (Int64.logand r count_c)))
        | Instr.Shr ->
            simple (fun l r ->
                Int64.shift_right_logical l (Int64.to_int (Int64.logand r count_c)))
        | Instr.Sar ->
            simple (fun l r ->
                Int64.shift_right (sx l) (Int64.to_int (Int64.logand r count_c)))
        | Instr.Div | Instr.Rem ->
            fun () ->
              if tr.fuel <= 0 then out_of_fuel start
              else begin
                tr.fuel <- tr.fuel - 1;
                tr.cyc <- tr.cyc + cost;
                tr.steps <- tr.steps + 1;
                tr.cur_pc <- start;
                Array.unsafe_set regs rd
                  (Modes.mask mode
                     (Cpu.eval_binop cpu op (Array.unsafe_get regs rd) (srcf ()) start));
                next_k ()
              end)
    | Neg rd ->
        fun () ->
          if tr.fuel <= 0 then out_of_fuel start
          else begin
            tr.fuel <- tr.fuel - 1;
            tr.cyc <- tr.cyc + cost;
            tr.steps <- tr.steps + 1;
            Array.unsafe_set regs rd (mk (Int64.neg (sx (Array.unsafe_get regs rd))));
            next_k ()
          end
    | Not rd ->
        fun () ->
          if tr.fuel <= 0 then out_of_fuel start
          else begin
            tr.fuel <- tr.fuel - 1;
            tr.cyc <- tr.cyc + cost;
            tr.steps <- tr.steps + 1;
            Array.unsafe_set regs rd (mk (Int64.lognot (Array.unsafe_get regs rd)));
            next_k ()
          end
    | Cmp (r, src) ->
        let srcf = operand src in
        fun () ->
          if tr.fuel <= 0 then out_of_fuel start
          else begin
            tr.fuel <- tr.fuel - 1;
            tr.cyc <- tr.cyc + cost;
            tr.steps <- tr.steps + 1;
            let l = Array.unsafe_get regs r and rv = srcf () in
            Cpu.set_cmp cpu
              ~signed:(Int64.compare (sx l) (sx rv))
              ~unsigned:(Int64.unsigned_compare l rv);
            next_k ()
          end
    | Jcc (c, a) ->
        let g = goto a in
        fun () ->
          if tr.fuel <= 0 then out_of_fuel start
          else begin
            tr.fuel <- tr.fuel - 1;
            tr.cyc <- tr.cyc + cost;
            tr.steps <- tr.steps + 1;
            if Cpu.eval_cond cpu c then g () else next_k ()
          end
    | Push src ->
        let srcf = operand src in
        fun () ->
          if tr.fuel <= 0 then out_of_fuel start
          else begin
            tr.fuel <- tr.fuel - 1;
            retire ();
            tr.cur_pc <- start;
            commit tr;
            Cpu.set_pc cpu next;
            Cpu.push cpu (srcf ());
            if smc_ok () then next_k () else smc_abort ()
          end
    | Pop rd ->
        fun () ->
          if tr.fuel <= 0 then out_of_fuel start
          else begin
            tr.fuel <- tr.fuel - 1;
            retire ();
            tr.cur_pc <- start;
            Cpu.set_reg cpu rd (Cpu.pop cpu);
            next_k ()
          end
    | Load (w, rd, rb, d) ->
        fun () ->
          if tr.fuel <= 0 then out_of_fuel start
          else begin
            tr.fuel <- tr.fuel - 1;
            retire ();
            tr.cur_pc <- start;
            let addr = Int64.to_int (Array.unsafe_get regs rb) + d in
            Array.unsafe_set regs rd (mk (Cpu.read_mem cpu w addr));
            next_k ()
          end
    | Store (w, rb, d, src) ->
        let srcf = operand src in
        fun () ->
          if tr.fuel <= 0 then out_of_fuel start
          else begin
            tr.fuel <- tr.fuel - 1;
            retire ();
            tr.cur_pc <- start;
            commit tr;
            Cpu.set_pc cpu next;
            let addr = Int64.to_int (Array.unsafe_get regs rb) + d in
            Cpu.write_mem cpu w addr (srcf ());
            (* the store may have rewritten this very block *)
            if smc_ok () then next_k () else smc_abort ()
          end
    | Lea (rd, rb, d) ->
        let dv = Int64.of_int d in
        fun () ->
          if tr.fuel <= 0 then out_of_fuel start
          else begin
            tr.fuel <- tr.fuel - 1;
            tr.cyc <- tr.cyc + cost;
            tr.steps <- tr.steps + 1;
            Array.unsafe_set regs rd (mk (Int64.add (Array.unsafe_get regs rb) dv));
            next_k ()
          end
    | Rdtsc rd ->
        fun () ->
          if tr.fuel <= 0 then out_of_fuel start
          else begin
            tr.fuel <- tr.fuel - 1;
            retire ();
            (* rdtsc observes the clock including its own cost *)
            commit tr;
            Array.unsafe_set regs rd
              (Modes.mask mode (Cycles.Clock.now tr.clock));
            next_k ()
          end
    | Hlt | Jmp _ | Call _ | Callr _ | Ret | Out _ | In _ ->
        assert false (* terminators, never in the body *)
  in
  let exec = List.fold_right compile body tail_k in
  let end_pc =
    match term with `Term (pc, _, size) -> pc + size | `Fall pc | `Bad pc -> pc
  in
  (if end_pc > pc0 then begin
     let first = pc0 / Memory.page_size and last = (end_pc - 1) / Memory.page_size in
     let n = last - first + 1 in
     pages_r := Array.init n (fun i -> first + i);
     vers_r := Array.init n (fun i -> Memory.page_version mem (first + i))
   end);
  tr.stats.blocks_translated <- tr.stats.blocks_translated + 1;
  { b_epoch = Memory.epoch mem; b_pages = !pages_r; b_vers = !vers_r; b_exec = exec }

let default_fuel = 200_000_000 (* matches Cpu.run *)

let run ?(fuel = default_fuel) tr =
  let cpu = tr.cpu in
  if Cpu.has_step_hook cpu then begin
    (* profiling: the step hook wants one call per retired instruction
       with an exact pc and clock, which block batching would break.
       Identical timing either way, so fall back to the interpreter. *)
    tr.stats.hook_fallbacks <- tr.stats.hook_fallbacks + 1;
    Cpu.run ~fuel cpu
  end
  else begin
    tr.fuel <- fuel;
    tr.cur_pc <- Cpu.pc cpu;
    let rec loop () =
      tr.stats.dispatches <- tr.stats.dispatches + 1;
      (match tr.block_hook with None -> () | Some f -> f ~pc:(Cpu.pc cpu));
      let b = lookup tr (Cpu.pc cpu) in
      match b.b_exec () with Some exit -> exit | None -> loop ()
    in
    match loop () with
    | exit -> exit (* every exit path committed already *)
    | exception Cpu.Vm_fault f ->
        commit tr;
        Cpu.set_pc cpu tr.cur_pc;
        Cpu.Fault f
    | exception Memory.Fault { addr; size } ->
        commit tr;
        Cpu.set_pc cpu tr.cur_pc;
        Cpu.Fault (Memory_oob { addr; size })
  end
