let sites =
  [
    "exit";
    "hypercall";
    "hypercall_ret";
    "ept";
    "inject";
    "block";
    "instr";
    "pool_acquire";
    "pool_release";
    "pool_evict";
    "sup_attempt";
    "sup_backoff";
    "sup_quarantine";
    "gateway";
    "sched";
    "steal";
    "idle";
    "ring_enter";
    "ring_op";
  ]

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge
type lit = Int of int64 | Str of string
type term = Field of string | Lit of lit

type pred =
  | True
  | Cmp of term * cmp_op * term
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type aggfun = Count | Sum | Min | Max | Avg | Hist | Quantile of float
type action = { agg : aggfun; operand : string option; by : string list }
type probe = { site : string; pred : pred; action : action }
type spec = probe list

(* ---------------------------------------------------------------- lexer *)

type tok =
  | IDENT of string
  | INT of int64
  | FLOAT of float
  | STR of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | SEMI
  | CMP of cmp_op
  | ANDAND
  | OROR
  | BANG
  | EOF

exception Err of int * string

let fail pos msg = raise (Err (pos, msg))

let tok_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %Ld" i
  | FLOAT f -> Printf.sprintf "number %g" f
  | STR s -> Printf.sprintf "string %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | COLON -> "':'"
  | SEMI -> "';'"
  | CMP Eq -> "'=='"
  | CMP Ne -> "'!='"
  | CMP Lt -> "'<'"
  | CMP Le -> "'<='"
  | CMP Gt -> "'>'"
  | CMP Ge -> "'>='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c =
  is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t pos = toks := (t, pos) :: !toks in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident src.[!j] do incr j done;
      push (IDENT (String.sub src !i (!j - !i))) pos;
      i := !j
    end
    else if is_digit c then begin
      let j = ref !i in
      if
        c = '0' && !i + 1 < n
        && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X')
      then begin
        j := !i + 2;
        while
          !j < n
          && (is_digit src.[!j]
             || (src.[!j] >= 'a' && src.[!j] <= 'f')
             || (src.[!j] >= 'A' && src.[!j] <= 'F'))
        do
          incr j
        done;
        if !j = !i + 2 then fail pos "bad hex literal";
        push (INT (Int64.of_string (String.sub src !i (!j - !i)))) pos
      end
      else begin
        while !j < n && is_digit src.[!j] do incr j done;
        if !j < n && src.[!j] = '.' then begin
          incr j;
          while !j < n && is_digit src.[!j] do incr j done;
          push (FLOAT (float_of_string (String.sub src !i (!j - !i)))) pos
        end
        else push (INT (Int64.of_string (String.sub src !i (!j - !i)))) pos
      end;
      i := !j
    end
    else if c = '"' then begin
      let b = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while (not !closed) && !j < n do
        if src.[!j] = '"' then closed := true
        else begin
          if src.[!j] = '\\' && !j + 1 < n then begin
            incr j;
            Buffer.add_char b src.[!j]
          end
          else Buffer.add_char b src.[!j];
          incr j
        end
      done;
      if not !closed then fail pos "unterminated string literal";
      push (STR (Buffer.contents b)) pos;
      i := !j + 1
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "==" -> push (CMP Eq) pos; i := !i + 2
      | "!=" -> push (CMP Ne) pos; i := !i + 2
      | "<=" -> push (CMP Le) pos; i := !i + 2
      | ">=" -> push (CMP Ge) pos; i := !i + 2
      | "&&" -> push ANDAND pos; i := !i + 2
      | "||" -> push OROR pos; i := !i + 2
      | _ -> (
          (match c with
          | '{' -> push LBRACE pos
          | '}' -> push RBRACE pos
          | '(' -> push LPAREN pos
          | ')' -> push RPAREN pos
          | ',' -> push COMMA pos
          | ':' -> push COLON pos
          | ';' -> push SEMI pos
          | '<' -> push (CMP Lt) pos
          | '>' -> push (CMP Gt) pos
          | '!' -> push BANG pos
          | _ -> fail pos (Printf.sprintf "unexpected character %C" c));
          incr i)
    end
  done;
  toks := (EOF, n) :: !toks;
  Array.of_list (List.rev !toks)

(* --------------------------------------------------------------- parser *)

type state = { toks : (tok * int) array; mutable cur : int }

let peek st = fst st.toks.(st.cur)
let pos st = snd st.toks.(st.cur)
let advance st = st.cur <- st.cur + 1

let expect st t =
  if peek st = t then advance st
  else
    fail (pos st)
      (Printf.sprintf "expected %s, got %s" (tok_to_string t)
         (tok_to_string (peek st)))

let ident st =
  match peek st with
  | IDENT s -> advance st; s
  | t -> fail (pos st) (Printf.sprintf "expected identifier, got %s" (tok_to_string t))

let field st =
  let p = pos st in
  let name = ident st in
  match Ctx.canonical name with
  | Some f -> f
  | None ->
      fail p
        (Printf.sprintf "unknown field %S (known: %s)" name
           (String.concat ", " Ctx.fields))

let term st =
  match peek st with
  | INT i -> advance st; Lit (Int i)
  | STR s -> advance st; Lit (Str s)
  | IDENT _ -> Field (field st)
  | t -> fail (pos st) (Printf.sprintf "expected field or literal, got %s" (tok_to_string t))

let term_is_string = function
  | Field f -> not (Ctx.is_numeric f)
  | Lit (Str _) -> true
  | Lit (Int _) -> false

let check_cmp p l op r =
  let ls = term_is_string l and rs = term_is_string r in
  if ls <> rs then fail p "comparison mixes a string and a number";
  if ls && op <> Eq && op <> Ne then
    fail p "string fields compare only with == or !="

let rec pred_or st =
  let l = pred_and st in
  if peek st = OROR then begin
    advance st;
    Or (l, pred_or st)
  end
  else l

and pred_and st =
  let l = pred_atom st in
  if peek st = ANDAND then begin
    advance st;
    And (l, pred_and st)
  end
  else l

and pred_atom st =
  match peek st with
  | BANG ->
      advance st;
      Not (pred_atom st)
  | LPAREN ->
      advance st;
      let p = pred_or st in
      expect st RPAREN;
      p
  | _ -> (
      let p = pos st in
      let l = term st in
      match peek st with
      | CMP op ->
          advance st;
          let r = term st in
          check_cmp p l op r;
          Cmp (l, op, r)
      | t ->
          fail (pos st)
            (Printf.sprintf "expected comparison operator, got %s"
               (tok_to_string t)))

let aggfun_of_name p = function
  | "count" -> Count
  | "sum" -> Sum
  | "min" -> Min
  | "max" -> Max
  | "avg" -> Avg
  | "hist" -> Hist
  | "p" -> Quantile 0.0 (* quantile filled in by caller *)
  | name ->
      fail p
        (Printf.sprintf
           "unknown aggregation %S (known: count, sum, min, max, avg, hist, p)"
           name)

let action st =
  let p = pos st in
  let name = ident st in
  let agg = aggfun_of_name p name in
  expect st LPAREN;
  let agg, operand =
    match agg with
    | Quantile _ ->
        let q =
          match peek st with
          | FLOAT f -> advance st; f
          | INT i -> advance st; Int64.to_float i
          | t ->
              fail (pos st)
                (Printf.sprintf "p() needs a quantile first, got %s"
                   (tok_to_string t))
        in
        if q < 0.0 || q > 100.0 then fail p "quantile must be in [0, 100]";
        expect st COMMA;
        let fp = pos st in
        let f = field st in
        if not (Ctx.is_numeric f) then
          fail fp (Printf.sprintf "p() needs a numeric field, %S is a string" f);
        (Quantile q, Some f)
    | Count ->
        if peek st <> RPAREN then
          fail (pos st) "count() takes no operand";
        (Count, None)
    | _ ->
        let fp = pos st in
        let f = field st in
        if not (Ctx.is_numeric f) then
          fail fp
            (Printf.sprintf "%s() needs a numeric field, %S is a string" name f);
        (agg, Some f)
  in
  expect st RPAREN;
  let by =
    match peek st with
    | IDENT "by" ->
        advance st;
        expect st LPAREN;
        let rec more acc =
          let f = field st in
          if peek st = COMMA then begin
            advance st;
            more (f :: acc)
          end
          else List.rev (f :: acc)
        in
        let fs = more [] in
        expect st RPAREN;
        fs
    | _ -> []
  in
  { agg; operand; by }

let probe st =
  let p = pos st in
  let site = ident st in
  if not (List.mem site sites) then
    fail p
      (Printf.sprintf "unknown probe site %S (known: %s)" site
         (String.concat ", " sites));
  let pred =
    if peek st = COLON then begin
      advance st;
      pred_or st
    end
    else True
  in
  expect st LBRACE;
  let action = action st in
  expect st RBRACE;
  { site; pred; action }

let parse src =
  match
    let st = { toks = lex src; cur = 0 } in
    let rec probes acc =
      let pr = probe st in
      match peek st with
      | SEMI ->
          advance st;
          if peek st = EOF then List.rev (pr :: acc) else probes (pr :: acc)
      | EOF -> List.rev (pr :: acc)
      | t ->
          fail (pos st)
            (Printf.sprintf "expected ';' or end of input, got %s"
               (tok_to_string t))
    in
    if peek st = EOF then fail 0 "empty probe spec" else probes []
  with
  | spec -> Ok spec
  | exception Err (p, msg) -> Error (Printf.sprintf "at offset %d: %s" p msg)
  | exception Failure msg -> Error msg

(* -------------------------------------------------------------- printer *)

let cmp_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let lit_to_string = function
  | Int i -> Int64.to_string i
  | Str s -> Printf.sprintf "%S" s

let term_to_string = function Field f -> f | Lit l -> lit_to_string l

(* precedence: Or = 0, And = 1, atoms = 2 *)
let rec pred_to_string prec = function
  | True -> "true"
  | Cmp (l, op, r) ->
      Printf.sprintf "%s %s %s" (term_to_string l) (cmp_to_string op)
        (term_to_string r)
  | And (l, r) ->
      let s =
        Printf.sprintf "%s && %s" (pred_to_string 2 l) (pred_to_string 1 r)
      in
      if prec > 1 then "(" ^ s ^ ")" else s
  | Or (l, r) ->
      let s =
        Printf.sprintf "%s || %s" (pred_to_string 1 l) (pred_to_string 0 r)
      in
      if prec > 0 then "(" ^ s ^ ")" else s
  | Not p -> "!(" ^ pred_to_string 0 p ^ ")"

let quantile_to_string q =
  (* %g keeps 99.9 as "99.9" and 50. as "50" *)
  Printf.sprintf "%g" q

let agg_to_string a =
  match (a.agg, a.operand) with
  | Count, _ -> "count()"
  | Quantile q, Some f -> Printf.sprintf "p(%s, %s)" (quantile_to_string q) f
  | Sum, Some f -> Printf.sprintf "sum(%s)" f
  | Min, Some f -> Printf.sprintf "min(%s)" f
  | Max, Some f -> Printf.sprintf "max(%s)" f
  | Avg, Some f -> Printf.sprintf "avg(%s)" f
  | Hist, Some f -> Printf.sprintf "hist(%s)" f
  | _, None -> assert false

let action_to_string a =
  match a.by with
  | [] -> agg_to_string a
  | by -> Printf.sprintf "%s by (%s)" (agg_to_string a) (String.concat ", " by)

let probe_to_string p =
  match p.pred with
  | True -> Printf.sprintf "%s { %s }" p.site (action_to_string p.action)
  | pred ->
      Printf.sprintf "%s:%s { %s }" p.site (pred_to_string 0 pred)
        (action_to_string p.action)

let to_string spec = String.concat "; " (List.map probe_to_string spec)

let agg_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"
  | Hist -> "hist"
  | Quantile q ->
      let s = quantile_to_string q in
      "p"
      ^ String.map (function '.' -> '_' | c -> c) s
