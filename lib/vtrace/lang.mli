(** The vtrace probe language.

    A spec is a semicolon-separated list of probes:

    {v
      probe  := SITE [ ':' pred ] '{' action '}'
      pred   := or
      or     := and { '||' and }
      and    := atom { '&&' atom }
      atom   := '!' atom | '(' pred ')' | term cmp term
      term   := FIELD | INT | STRING
      cmp    := '==' | '!=' | '<' | '<=' | '>' | '>='
      action := AGG '(' [ operand ] ')' [ 'by' '(' FIELD {',' FIELD} ')' ]
      AGG    := count | sum | min | max | avg | hist | p
    v}

    [p] takes the quantile first: [p(99.9, cycles)]. [count] takes no
    operand; every other aggregation requires a numeric field. Field
    names are validated against {!Ctx.fields} (aliases allowed, see
    {!Ctx.canonical}); sites against {!sites}. String fields compare
    only with [==] / [!=] against string literals. *)

val sites : string list
(** The probe-site catalog (see [docs/vtrace.md] for where each fires). *)

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge
type lit = Int of int64 | Str of string
type term = Field of string  (** canonical name *) | Lit of lit

type pred =
  | True
  | Cmp of term * cmp_op * term
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type aggfun = Count | Sum | Min | Max | Avg | Hist | Quantile of float

type action = {
  agg : aggfun;
  operand : string option;  (** canonical field name; [None] for count *)
  by : string list;  (** canonical grouping fields, possibly empty *)
}

type probe = { site : string; pred : pred; action : action }

type spec = probe list

val parse : string -> (spec, string) result
(** Parse and validate a spec. Errors carry a position and a reason. *)

val probe_to_string : probe -> string
val to_string : spec -> string
(** Canonical rendering; [parse (to_string s) = Ok s] for valid specs. *)

val agg_name : aggfun -> string
(** Metric-safe aggregation name: ["count"], ["p99_9"], … *)
