(** Bounded keyed aggregation cells for one probe.

    Keys are rendered field tuples; cells are kept in first-insertion
    order, which is deterministic because every firing site is driven by
    the simulator's virtual clocks and seeded RNGs. Two bounds keep
    memory finite: a key-capacity bound (new keys beyond it are dropped
    and counted) and a per-key sample bound for the sample-keeping
    aggregations ([hist] and [p]). *)

type t

type cell = {
  mutable n : int;
  mutable sum : int64;
  mutable mn : int64;
  mutable mx : int64;
  mutable samples : float list;  (** newest first; [hist]/[p] only *)
  mutable sample_drops : int;
}

val create : ?key_capacity:int -> ?sample_cap:int -> Lang.aggfun -> t
(** Defaults: 512 keys, 8192 samples per key. *)

val observe : t -> key:string list -> int64 -> bool
(** Record one observation under [key]. [false] when the key table is
    full and [key] is new (the observation was dropped). *)

val value : t -> cell -> float
(** The cell's aggregate value under this aggregation ([hist] reports
    the observation count; quantiles interpolate like
    {!Stats.Descriptive.percentile}). *)

val cells : t -> (string list * cell) list
(** All cells, first-insertion order. *)

val find : t -> string list -> cell option
val key_drops : t -> int
val sample_drops : t -> int
(** Total samples discarded across cells once [sample_cap] was reached. *)
