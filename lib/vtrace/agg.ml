type cell = {
  mutable n : int;
  mutable sum : int64;
  mutable mn : int64;
  mutable mx : int64;
  mutable samples : float list;
  mutable sample_drops : int;
}

type t = {
  agg : Lang.aggfun;
  keep_samples : bool;
  sample_cap : int;
  key_capacity : int;
  tbl : (string list, cell) Hashtbl.t;
  mutable order : string list list; (* newest first *)
  mutable nkeys : int;
  mutable key_drops : int;
}

let create ?(key_capacity = 512) ?(sample_cap = 8192) agg =
  let keep_samples =
    match agg with Lang.Hist | Lang.Quantile _ -> true | _ -> false
  in
  {
    agg;
    keep_samples;
    sample_cap;
    key_capacity;
    tbl = Hashtbl.create 16;
    order = [];
    nkeys = 0;
    key_drops = 0;
  }

let update t c v =
  c.n <- c.n + 1;
  c.sum <- Int64.add c.sum v;
  if Int64.compare v c.mn < 0 then c.mn <- v;
  if Int64.compare v c.mx > 0 then c.mx <- v;
  if t.keep_samples then
    if c.n - c.sample_drops <= t.sample_cap then
      c.samples <- Int64.to_float v :: c.samples
    else c.sample_drops <- c.sample_drops + 1

let observe t ~key v =
  match Hashtbl.find_opt t.tbl key with
  | Some c ->
      update t c v;
      true
  | None ->
      if t.nkeys >= t.key_capacity then begin
        t.key_drops <- t.key_drops + 1;
        false
      end
      else begin
        let c =
          { n = 0; sum = 0L; mn = v; mx = v; samples = []; sample_drops = 0 }
        in
        Hashtbl.add t.tbl key c;
        t.order <- key :: t.order;
        t.nkeys <- t.nkeys + 1;
        update t c v;
        true
      end

let value t c =
  match t.agg with
  | Lang.Count | Lang.Hist -> float_of_int c.n
  | Lang.Sum -> Int64.to_float c.sum
  | Lang.Min -> Int64.to_float c.mn
  | Lang.Max -> Int64.to_float c.mx
  | Lang.Avg -> if c.n = 0 then 0.0 else Int64.to_float c.sum /. float_of_int c.n
  | Lang.Quantile q ->
      if c.samples = [] then 0.0
      else Stats.Descriptive.percentile (Array.of_list c.samples) q

let cells t =
  List.rev_map (fun key -> (key, Hashtbl.find t.tbl key)) t.order

let find t key = Hashtbl.find_opt t.tbl key
let key_drops t = t.key_drops
let sample_drops t = List.fold_left (fun a (_, c) -> a + c.sample_drops) 0 (cells t)
