type t = {
  site : string;
  core : int;
  trace : int64 option;
  fn : string;
  pc : int;
  reason : string;
  cycles : int64;
  fuel : int;
  nr : int64;
}

let make ?(core = 0) ?trace ?(fn = "") ?(pc = 0) ?(reason = "") ?(cycles = 0L)
    ?(fuel = 0) ?(nr = 0L) site =
  { site; core; trace; fn; pc; reason; cycles; fuel; nr }

type value = Int of int64 | Str of string

let fields =
  [ "site"; "core"; "trace_id"; "fn"; "pc"; "reason"; "cycles"; "fuel"; "nr" ]

let canonical name =
  match name with
  | "hc_nr" | "arg" | "page" | "port" -> Some "nr"
  | "trace" -> Some "trace_id"
  | f -> if List.mem f fields then Some f else None

let is_numeric = function "site" | "fn" | "reason" -> false | _ -> true

let get ctx = function
  | "site" -> Str ctx.site
  | "core" -> Int (Int64.of_int ctx.core)
  | "trace_id" -> Int (Option.value ctx.trace ~default:0L)
  | "fn" -> Str ctx.fn
  | "pc" -> Int (Int64.of_int ctx.pc)
  | "reason" -> Str ctx.reason
  | "cycles" -> Int ctx.cycles
  | "fuel" -> Int (Int64.of_int ctx.fuel)
  | "nr" -> Int ctx.nr
  | f -> invalid_arg ("Vtrace.Ctx.get: unknown field " ^ f)

let render ctx field =
  match (field, get ctx field) with
  | _, Str s -> if s = "" then "-" else s
  | "trace_id", Int _ -> (
      match ctx.trace with
      | Some id -> Printf.sprintf "%016Lx" id
      | None -> "-")
  | "pc", Int i -> Printf.sprintf "0x%Lx" i
  | _, Int i -> Int64.to_string i
