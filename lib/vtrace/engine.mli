(** The probe engine: compiled probes, firing, and output.

    Sites call {!fire} with a {!Ctx.t}; the engine runs every attached
    probe for that site — predicate, then keyed aggregation — charging
    zero simulated cycles. Detached sites pay a single [None] check
    (the [option] test in the host layer); attached-but-unwanted sites
    pay one hashtable miss. A per-probe firing budget bounds work and
    memory: once a probe has fired [budget] times, further matches are
    dropped and counted (exported as [vtrace_drops_total]).

    Determinism contract: probes never mutate guest-visible state, never
    read wall-clock time or unseeded randomness, and never advance a
    virtual clock — so attach-vs-detach and record-vs-replay produce
    identical guest results and identical aggregate tables at a fixed
    seed. *)

type t

val create : ?budget:int -> ?key_capacity:int -> ?sample_cap:int -> Lang.spec -> t
(** Compile a parsed spec. [budget] (default 1_000_000) bounds firings
    per probe; [key_capacity]/[sample_cap] bound each probe's
    aggregation (see {!Agg.create}). *)

val of_string :
  ?budget:int -> ?key_capacity:int -> ?sample_cap:int -> string ->
  (t, string) result
(** [create] composed with {!Lang.parse}. *)

val spec : t -> Lang.spec

val wants : t -> string -> bool
(** Whether any probe targets [site] — lets hosts skip building
    contexts (and e.g. avoid opting into instruction stepping) when no
    probe would fire. *)

val fire : t -> Ctx.t -> int
(** Run every probe attached to [ctx.site]; returns how many matched
    (fired or were budget-dropped — callers use [> 0] to learn that the
    event was observed, e.g. to stamp a flight-ring annotation). *)

val set_fn : t -> string -> unit
(** Name the function/image currently executing; contexts fired with an
    empty [fn] field inherit it (the KVM layer below Wasp does not know
    image names). *)

val set_metrics : t -> Telemetry.Metrics.t option -> unit
(** Attach a registry: drops increment [vtrace_drops_total] (labeled by
    kind: [budget] or [keys]) as they happen. *)

val fires : t -> int
(** Total successful firings across probes. *)

val drops : t -> int
(** Total drops (budget + key-capacity). *)

val probe_stats : t -> (Lang.probe * int * int) list
(** Per probe, in spec order: (probe, fires, drops). *)

val values : t -> probe:int -> (string list * float) list
(** Probe [probe]'s aggregate per key, insertion order — for tests. *)

val coverage : t -> (string * float) list
(** Per-site firing map flattened for coverage hashing: a
    ["site|probe#"] fire-count feature per probe plus a
    ["site|probe#|key,..."] feature per aggregation cell, in spec then
    key-insertion order. Deterministic at a fixed seed — the fuzzer's
    vtrace coverage plane. *)

val render : t -> string
(** All probes as {!Stats.Report} tables (plus per-key histograms for
    [hist] probes), deterministic byte-for-byte at a fixed seed. *)

val folded : t -> string
(** Folded-stack lines: [site;key;... value] — flamegraph-ready. *)

val export : t -> Telemetry.Metrics.t -> unit
(** Publish aggregates as labeled gauges
    [vtrace_<site>_<agg>{probe="<i>", <by-field>="<key>"}] and the drop
    total as [vtrace_drops_total]. Idempotent: re-export overwrites. *)
