type compiled = {
  index : int;
  cspec : Lang.probe;
  pred : Ctx.t -> bool;
  by : string list;
  operand : string option;
  agg : Agg.t;
  budget : int;
  mutable fired : int;
  mutable dropped : int;
}

type t = {
  probes : compiled array;
  by_site : (string, compiled list) Hashtbl.t;
  mutable cur_fn : string;
  mutable metrics : Telemetry.Metrics.t option;
  mutable total_fires : int;
  mutable budget_drops : int;
  mutable key_drops : int;
  (* drops already counted into a registry, per kind *)
  mutable pushed_budget_drops : int;
  mutable pushed_key_drops : int;
}

(* ------------------------------------------------------------- compile *)

let compile_term = function
  | Lang.Field f -> fun ctx -> Ctx.get ctx f
  | Lang.Lit (Lang.Int i) -> fun _ -> Ctx.Int i
  | Lang.Lit (Lang.Str s) -> fun _ -> Ctx.Str s

let cmp_values op a b =
  match (a, b) with
  | Ctx.Int x, Ctx.Int y -> (
      let c = Int64.compare x y in
      match op with
      | Lang.Eq -> c = 0
      | Lang.Ne -> c <> 0
      | Lang.Lt -> c < 0
      | Lang.Le -> c <= 0
      | Lang.Gt -> c > 0
      | Lang.Ge -> c >= 0)
  | Ctx.Str x, Ctx.Str y -> (
      match op with
      | Lang.Eq -> String.equal x y
      | Lang.Ne -> not (String.equal x y)
      | _ -> false)
  | _ -> false

let rec compile_pred = function
  | Lang.True -> fun _ -> true
  | Lang.Not p ->
      let f = compile_pred p in
      fun ctx -> not (f ctx)
  | Lang.And (a, b) ->
      let fa = compile_pred a and fb = compile_pred b in
      fun ctx -> fa ctx && fb ctx
  | Lang.Or (a, b) ->
      let fa = compile_pred a and fb = compile_pred b in
      fun ctx -> fa ctx || fb ctx
  | Lang.Cmp (l, op, r) ->
      let fl = compile_term l and fr = compile_term r in
      fun ctx -> cmp_values op (fl ctx) (fr ctx)

let create ?(budget = 1_000_000) ?key_capacity ?sample_cap spec =
  let probes =
    Array.of_list
      (List.mapi
         (fun index (p : Lang.probe) ->
           {
             index;
             cspec = p;
             pred = compile_pred p.pred;
             by = p.action.by;
             operand = p.action.operand;
             agg = Agg.create ?key_capacity ?sample_cap p.action.agg;
             budget;
             fired = 0;
             dropped = 0;
           })
         spec)
  in
  let by_site = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      let prev =
        Option.value (Hashtbl.find_opt by_site c.cspec.Lang.site) ~default:[]
      in
      (* keep spec order within a site *)
      Hashtbl.replace by_site c.cspec.Lang.site (prev @ [ c ]))
    probes;
  {
    probes;
    by_site;
    cur_fn = "";
    metrics = None;
    total_fires = 0;
    budget_drops = 0;
    key_drops = 0;
    pushed_budget_drops = 0;
    pushed_key_drops = 0;
  }

let of_string ?budget ?key_capacity ?sample_cap src =
  match Lang.parse src with
  | Error _ as e -> e
  | Ok spec -> Ok (create ?budget ?key_capacity ?sample_cap spec)

let spec t = Array.to_list (Array.map (fun c -> c.cspec) t.probes)
let wants t site = Hashtbl.mem t.by_site site
let set_fn t fn = t.cur_fn <- fn
let set_metrics t m = t.metrics <- m

let drops_help = "probe firings dropped (budget exhausted or key table full)"

let drop t p kind =
  p.dropped <- p.dropped + 1;
  (match kind with
  | `Budget -> t.budget_drops <- t.budget_drops + 1
  | `Keys -> t.key_drops <- t.key_drops + 1);
  match t.metrics with
  | None -> ()
  | Some m ->
      let label = match kind with `Budget -> "budget" | `Keys -> "keys" in
      Telemetry.Metrics.incr
        (Telemetry.Metrics.counter m ~help:drops_help
           ~labels:[ ("kind", label) ] "vtrace_drops_total");
      (match kind with
      | `Budget -> t.pushed_budget_drops <- t.pushed_budget_drops + 1
      | `Keys -> t.pushed_key_drops <- t.pushed_key_drops + 1)

(* ---------------------------------------------------------------- fire *)

let fire t ctx =
  match Hashtbl.find_opt t.by_site ctx.Ctx.site with
  | None -> 0
  | Some ps ->
      let ctx =
        if ctx.Ctx.fn = "" && t.cur_fn <> "" then { ctx with Ctx.fn = t.cur_fn }
        else ctx
      in
      List.fold_left
        (fun matched p ->
          if not (p.pred ctx) then matched
          else begin
            if p.fired >= p.budget then drop t p `Budget
            else begin
              let key = List.map (fun f -> Ctx.render ctx f) p.by in
              let v =
                match p.operand with
                | None -> 1L
                | Some f -> (
                    match Ctx.get ctx f with Ctx.Int i -> i | Ctx.Str _ -> 0L)
              in
              if Agg.observe p.agg ~key v then begin
                p.fired <- p.fired + 1;
                t.total_fires <- t.total_fires + 1
              end
              else drop t p `Keys
            end;
            matched + 1
          end)
        0 ps

let fires t = t.total_fires
let drops t = t.budget_drops + t.key_drops
let probe_stats t =
  Array.to_list (Array.map (fun p -> (p.cspec, p.fired, p.dropped)) t.probes)

let values t ~probe =
  let p = t.probes.(probe) in
  List.map (fun (key, cell) -> (key, Agg.value p.agg cell)) (Agg.cells p.agg)

(* Flattened per-site firing map: one "site|probe#|key,key" feature per
   aggregation cell, plus a "site|probe#" fire count per probe. The
   fuzzer hashes these (feature, value) pairs into its coverage bitmap;
   the rendering is deterministic (spec order, then key insertion
   order), so identical executions export identical coverage. *)
let coverage t =
  Array.to_list t.probes
  |> List.concat_map (fun p ->
         let prefix = Printf.sprintf "%s|%d" p.cspec.Lang.site p.index in
         (prefix, float_of_int p.fired)
         :: List.map
              (fun (key, cell) ->
                (prefix ^ "|" ^ String.concat "," key, Agg.value p.agg cell))
              (Agg.cells p.agg))

(* -------------------------------------------------------------- output *)

let agg_column p =
  match p.operand with
  | None -> Lang.agg_name p.cspec.Lang.action.Lang.agg
  | Some f ->
      Printf.sprintf "%s(%s)" (Lang.agg_name p.cspec.Lang.action.Lang.agg) f

let format_value agg v =
  match agg with
  | Lang.Avg | Lang.Quantile _ -> Printf.sprintf "%.2f" v
  | _ -> Printf.sprintf "%.0f" v

let hist_entries samples =
  let counts = Array.make 64 0 in
  List.iter
    (fun s ->
      let i = Telemetry.Metrics.bucket_index (Int64.of_float s) in
      counts.(i) <- counts.(i) + 1)
    samples;
  let acc = ref [] in
  for i = Array.length counts - 1 downto 0 do
    if counts.(i) > 0 then begin
      let lo, hi = Telemetry.Metrics.bucket_bounds i in
      let label =
        if Int64.equal hi Int64.max_int then Printf.sprintf "[%Ld,inf)" lo
        else Printf.sprintf "[%Ld,%Ld)" lo hi
      in
      acc := (label, counts.(i)) :: !acc
    end
  done;
  !acc

let render t =
  let buf = Buffer.create 512 in
  Array.iter
    (fun p ->
      let aggfun = p.cspec.Lang.action.Lang.agg in
      let title =
        Printf.sprintf "vtrace probe %d: %s" p.index
          (Lang.probe_to_string p.cspec)
      in
      let header = p.by @ [ agg_column p ] in
      let rows =
        List.map
          (fun (key, cell) -> key @ [ format_value aggfun (Agg.value p.agg cell) ])
          (Agg.cells p.agg)
      in
      let rows = if rows = [] then [ List.map (fun _ -> "-") header ] else rows in
      Buffer.add_string buf (Stats.Report.table ~title ~header rows);
      Buffer.add_string buf
        (Printf.sprintf "fires=%d drops=%d\n" p.fired p.dropped);
      (match aggfun with
      | Lang.Hist ->
          List.iter
            (fun (key, cell) ->
              let label =
                if key = [] then "all" else String.concat "," key
              in
              Buffer.add_string buf
                (Stats.Report.histogram
                   ~title:(Printf.sprintf "hist %s" label)
                   (hist_entries (List.rev cell.Agg.samples))))
            (Agg.cells p.agg)
      | _ -> ());
      Buffer.add_char buf '\n')
    t.probes;
  Buffer.contents buf

let folded t =
  let buf = Buffer.create 256 in
  Array.iter
    (fun p ->
      let aggfun = p.cspec.Lang.action.Lang.agg in
      List.iter
        (fun (key, cell) ->
          let stack =
            String.concat ";" (p.cspec.Lang.site :: key)
          in
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" stack
               (format_value aggfun (Agg.value p.agg cell))))
        (Agg.cells p.agg))
    t.probes;
  Buffer.contents buf

let export t m =
  Array.iter
    (fun p ->
      let aggfun = p.cspec.Lang.action.Lang.agg in
      let family =
        Printf.sprintf "vtrace_%s_%s" p.cspec.Lang.site (Lang.agg_name aggfun)
      in
      List.iter
        (fun (key, cell) ->
          let labels =
            ("probe", string_of_int p.index)
            :: List.map2 (fun f k -> (f, k)) p.by key
          in
          let g =
            Telemetry.Metrics.gauge m ~help:"vtrace probe aggregate" ~labels
              family
          in
          Telemetry.Metrics.set g (Agg.value p.agg cell))
        (Agg.cells p.agg))
    t.probes;
  let push kind total pushed commit =
    let delta = total - pushed in
    if delta > 0 then begin
      Telemetry.Metrics.incr ~by:delta
        (Telemetry.Metrics.counter m ~help:drops_help
           ~labels:[ ("kind", kind) ] "vtrace_drops_total");
      commit total
    end
  in
  push "budget" t.budget_drops t.pushed_budget_drops (fun n ->
      t.pushed_budget_drops <- n);
  push "keys" t.key_drops t.pushed_key_drops (fun n -> t.pushed_key_drops <- n)
