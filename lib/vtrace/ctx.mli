(** The per-site probe context: the record of facts a probe site hands to
    the engine when it fires. Every field is populated from simulator
    state that is itself deterministic (virtual clocks, seeded RNGs),
    so predicate evaluation and aggregation are replay-stable. *)

type t = {
  site : string;  (** probe-site name, e.g. ["exit"] *)
  core : int;  (** simulated core the event happened on *)
  trace : int64 option;  (** active causal trace id, if tracing *)
  fn : string;  (** function/image name ("" when unknown at the site) *)
  pc : int;  (** guest program counter, 0 when not meaningful *)
  reason : string;  (** site-specific discriminator, e.g. exit reason *)
  cycles : int64;  (** site-specific cycle measure (duration/cost) *)
  fuel : int;  (** fuel limit in force, 0 when none *)
  nr : int64;  (** site-specific numeric operand (hc nr, page, port…) *)
}

val make :
  ?core:int ->
  ?trace:int64 ->
  ?fn:string ->
  ?pc:int ->
  ?reason:string ->
  ?cycles:int64 ->
  ?fuel:int ->
  ?nr:int64 ->
  string ->
  t
(** [make site] builds a context; omitted fields default to zero/empty. *)

type value = Int of int64 | Str of string

val fields : string list
(** Canonical field names, in documentation order. *)

val canonical : string -> string option
(** Resolve a user-written field name (including aliases [hc_nr], [arg],
    [page], [port] → [nr]; [trace] → [trace_id]) to its canonical name;
    [None] if unknown. *)

val is_numeric : string -> bool
(** Whether a canonical field carries an [Int] (vs [Str]) value. *)

val get : t -> string -> value
(** Field access by canonical name. Raises [Invalid_argument] on an
    unknown field (the language layer validates names at parse time). *)

val render : t -> string -> string
(** Human/key rendering of a field: strings verbatim, [trace_id] as 16
    hex digits (["-"] when absent), [pc] as [0x%x], other ints in
    decimal. Used for aggregation keys, so it is deterministic. *)
