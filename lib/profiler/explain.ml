(* Causal post-mortem for traced runs: group retained spans by trace id,
   rank the trace roots by duration, and render the N slowest as full
   causal timelines — the span tree, the instants (retries, pool events,
   injected faults), the flight-ring exits stamped with the trace, and
   any histogram exemplars that resolve to it. Everything is derived
   from virtual-clock stamps, so the report is byte-identical across
   same-seed runs. *)

let trace_arg args = List.assoc_opt "trace_id" args
let span_arg args = List.assoc_opt "span_id" args
let parent_arg args = List.assoc_opt "parent_id" args

let is_id_arg (k, _) = k = "trace_id" || k = "span_id" || k = "parent_id"

let show_args args =
  match List.filter (fun kv -> not (is_id_arg kv)) args with
  | [] -> ""
  | rest ->
      "  [" ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) rest) ^ "]"

type tree = { span : Telemetry.Span.span; children : tree list }

(* Rebuild the parent-link tree of one trace. Spans close child-first,
   but [Span.items] re-sorts by seq (= open order), so a parent always
   precedes its children here. *)
let build_tree spans root =
  let children_of = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match parent_arg s.Telemetry.Span.args with
      | Some pid ->
          let l = try Hashtbl.find children_of pid with Not_found -> [] in
          Hashtbl.replace children_of pid (s :: l)
      | None -> ())
    spans;
  let rec build s =
    let kids =
      match span_arg s.Telemetry.Span.args with
      | None -> []
      | Some sid ->
          (try Hashtbl.find children_of sid with Not_found -> [])
          |> List.sort (fun a b ->
                 compare a.Telemetry.Span.seq b.Telemetry.Span.seq)
    in
    { span = s; children = List.map build kids }
  in
  build root

let render_tree buf ~root_start tree =
  let rec go indent t =
    let s = t.span in
    Buffer.add_string buf
      (Printf.sprintf "%s%s  +%Ld  %Ld cycles  core %d%s\n" indent
         s.Telemetry.Span.name
         (Int64.sub s.Telemetry.Span.start_cycles root_start)
         s.Telemetry.Span.duration s.Telemetry.Span.core
         (show_args s.Telemetry.Span.args));
    List.iter (go (indent ^ "  ")) t.children
  in
  go "  " tree

let conservation buf tree =
  let root = tree.span in
  let child_sum =
    List.fold_left
      (fun acc t -> Int64.add acc t.span.Telemetry.Span.duration)
      0L tree.children
  in
  if tree.children = [] then ()
  else if Int64.equal child_sum root.Telemetry.Span.duration then
    Buffer.add_string buf
      (Printf.sprintf "  conservation: %d children sum to %Ld cycles = root (exact)\n"
         (List.length tree.children) child_sum)
  else
    Buffer.add_string buf
      (Printf.sprintf
         "  conservation: children sum %Ld cycles vs root %Ld (MISMATCH %+Ld)\n"
         child_sum root.Telemetry.Span.duration
         (Int64.sub root.Telemetry.Span.duration child_sum))

let render_instants buf ~root_start instants =
  match instants with
  | [] -> ()
  | _ ->
      Buffer.add_string buf "  events:\n";
      List.iter
        (fun (name, at, args) ->
          Buffer.add_string buf
            (Printf.sprintf "    +%Ld  %s%s\n" (Int64.sub at root_start) name
               (show_args args)))
        instants

let render_flight buf ~trace_hex flight =
  match flight with
  | None -> ()
  | Some fr -> (
      match Telemetry.Tracectx.id_of_string trace_hex with
      | None -> ()
      | Some id ->
          let mine =
            List.filter
              (fun (e : Flight.entry) -> e.Flight.trace = Some id)
              (Flight.entries fr)
          in
          if mine <> [] then begin
            Buffer.add_string buf "  vm exits (flight ring):\n";
            List.iter
              (fun e ->
                Buffer.add_string buf
                  (Format.asprintf "    %a\n" Flight.pp_entry e))
              mine
          end)

let render_exemplars buf ~trace_hex registry =
  let hits = ref [] in
  List.iter
    (fun m ->
      match m with
      | Telemetry.Metrics.Histogram h ->
          List.iter
            (fun (le, (e : Telemetry.Metrics.exemplar)) ->
              if e.Telemetry.Metrics.e_trace = trace_hex then
                hits :=
                  Printf.sprintf "    %s%s bucket le=%Ld value=%Ld\n"
                    h.Telemetry.Metrics.h_name
                    (match h.Telemetry.Metrics.h_labels with
                    | [] -> ""
                    | labels ->
                        "{"
                        ^ String.concat ","
                            (List.map (fun (k, v) -> k ^ "=\"" ^ v ^ "\"") labels)
                        ^ "}")
                    le e.Telemetry.Metrics.e_value
                  :: !hits)
            (Telemetry.Metrics.bucket_exemplars h)
      | Telemetry.Metrics.Counter _ | Telemetry.Metrics.Gauge _ -> ())
    (Telemetry.Metrics.to_list registry);
  match List.rev !hits with
  | [] -> ()
  | lines ->
      Buffer.add_string buf "  exemplars resolving here:\n";
      List.iter (Buffer.add_string buf) lines

let slowest ?(n = 1) ~hub ?flight () =
  let items = Telemetry.Span.items (Telemetry.Hub.spans hub) in
  let spans =
    List.filter_map
      (function Telemetry.Span.Complete s -> Some s | Telemetry.Span.Instant _ -> None)
      items
  in
  let roots =
    List.filter
      (fun s ->
        trace_arg s.Telemetry.Span.args <> None
        && parent_arg s.Telemetry.Span.args = None)
      spans
  in
  if roots = [] then
    "explain: no traced invocations retained (enable tracing and re-run)\n"
  else begin
    let ranked =
      List.stable_sort
        (fun a b ->
          match
            compare b.Telemetry.Span.duration a.Telemetry.Span.duration
          with
          | 0 -> compare a.Telemetry.Span.seq b.Telemetry.Span.seq
          | c -> c)
        roots
    in
    let picked = List.filteri (fun i _ -> i < n) ranked in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf "=== explain: %d slowest of %d traced invocation(s) ===\n"
         (List.length picked) (List.length roots));
    List.iteri
      (fun rank root ->
        let trace_hex =
          match trace_arg root.Telemetry.Span.args with
          | Some id -> id
          | None -> assert false
        in
        let in_trace args = trace_arg args = Some trace_hex in
        let trace_spans =
          List.filter (fun s -> in_trace s.Telemetry.Span.args) spans
        in
        let instants =
          List.filter_map
            (function
              | Telemetry.Span.Instant { i_name; i_at; i_args; _ }
                when in_trace i_args ->
                  Some (i_name, i_at, i_args)
              | _ -> None)
            items
        in
        let root_start = root.Telemetry.Span.start_cycles in
        Buffer.add_string buf
          (Printf.sprintf "\n#%d  trace %s  %Ld cycles  (%d spans, %d events)\n"
             (rank + 1) trace_hex root.Telemetry.Span.duration
             (List.length trace_spans) (List.length instants));
        let tree = build_tree trace_spans root in
        render_tree buf ~root_start tree;
        conservation buf tree;
        render_instants buf ~root_start instants;
        render_flight buf ~trace_hex flight;
        render_exemplars buf ~trace_hex (Telemetry.Hub.metrics hub))
      picked;
    Buffer.add_string buf "=== end explain ===\n";
    Buffer.contents buf
  end
