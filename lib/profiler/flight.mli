(** VM-exit flight recorder.

    A fixed-size ring holding the most recent VM exits — reason, guest
    PC, virtual-cycle stamp, core id, plus a free-form hypervisor
    annotation (hypercall number/args/return). Recording charges no
    simulated cycles, so the recorder stays attached permanently; when a
    guest faults or violates policy the runtime renders the ring as an
    annotated "black box" {!dump}. *)

type kind =
  | Halt
  | Io_out of { port : int; value : int64 }
  | Io_in of { port : int }
  | Fault of string
  | Fuel
  | Ept of { page : int }
      (** Simulated EPT write-protection violation: a CoW break of a
          shared guest page. Unlike the other kinds this is not a
          [KVM_RUN] return — it is handled "in-kernel" — but it is an
          exit-class event worth a black-box entry. *)
  | Injected of string
      (** A fault-plan injection fired at the named site (see
          {!Cycles.Fault_plan} and [docs/robustness.md]); chaos runs
          leave their injections in the black box so a post-mortem can
          tell injected turbulence from organic failure. *)

type entry = private {
  seq : int;
  at : int64;
  core : int;
  pc : int;
  kind : kind;
  trace : int64 option;
      (** trace id of the request that took the exit, stamped when the
          telemetry hub has tracing enabled — the hook that makes a slow
          request's exits greppable in the black box *)
  mutable note : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of the last [capacity] (default 128) exits. *)

val capacity : t -> int

val total : t -> int
(** Exits ever recorded (including overwritten ones). *)

val count : t -> int
(** Exits currently retained ([min total capacity]). *)

val record : t -> ?trace:int64 -> at:int64 -> core:int -> pc:int -> kind -> unit

val annotate_last : t -> string -> unit
(** Attach hypervisor context (e.g. "write(1, 0x80, 5) -> 5") to the most
    recently recorded exit. *)

val append_note : t -> string -> unit
(** Like {!annotate_last} but appends (["; "]-separated) instead of
    replacing, so several observers (hypercall dispatch, vtrace probes)
    can stamp the same exit without clobbering each other. *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit

val dump : t -> reason:string -> string
(** The annotated black-box report: a header with [reason] and the
    retained entries, oldest first. *)
