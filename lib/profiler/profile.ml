(* Guest-level profiler for the vx vCPU.

   Two modes share one machinery:

   - [Exact]: every retired instruction's cycle cost is attributed to the
     enclosing function (per the shadow call stack), to its opcode, and to
     the full folded stack. Within an invocation, the attributed guest
     cycles plus the [vmm_name] residue equal the execute-span duration
     exactly (conservation; asserted by [test_profiler]).
   - [Sampled interval]: a cycle-budgeted PC sampler. A sample is taken
     whenever the virtual clock crosses the next sample point, so the
     sample count of a function estimates its cycles as
     [samples * interval] without per-instruction bookkeeping.

   The profiler is aggregate: it accumulates across invocations until
   [reset]. *)

type mode = Exact | Sampled of int

let vmm_name = "[vmm]"

type fn_stat = {
  fn_name : string;
  mutable self_cycles : int64;  (** exact mode: cycles of instructions retired in this fn *)
  mutable instrs : int;         (** exact mode: instructions retired in this fn *)
  mutable calls : int;          (** times this fn was entered by call *)
  mutable samples : int;        (** sampled mode: PC samples landing in this fn *)
}

type op_stat = { op_name : string; mutable op_cycles : int64; mutable op_count : int }

type t = {
  mode : mode;
  fns : (string, fn_stat) Hashtbl.t;
  ops : (string, op_stat) Hashtbl.t;
  folded_tbl : (string, int64) Hashtbl.t;  (** "a;b;c" -> cycles (exact) or samples *)
  mutable symtab : Symtab.t;
  mutable clock : Cycles.Clock.t option;
  mutable stack : string list;             (** shadow call stack, innermost first *)
  mutable pending_callr : bool;            (** top frame awaits resolution at next pc *)
  mutable next_sample : int64;
  mutable guest_cycles : int64;            (** exact: total attributed guest cycles *)
  mutable host_cycles : int64;             (** execute-span residue (vm exits, dispatch) *)
  mutable inv_guest : int64;               (** guest cycles of the current invocation *)
  mutable invocations : int;
  mutable in_invocation : bool;
}

let create ?(mode = Exact) () =
  (match mode with
  | Sampled n when n <= 0 -> invalid_arg "Profile.create: sample interval must be > 0"
  | Sampled _ | Exact -> ());
  {
    mode;
    fns = Hashtbl.create 32;
    ops = Hashtbl.create 32;
    folded_tbl = Hashtbl.create 64;
    symtab = Symtab.empty;
    clock = None;
    stack = [];
    pending_callr = false;
    next_sample = 0L;
    guest_cycles = 0L;
    host_cycles = 0L;
    inv_guest = 0L;
    invocations = 0;
    in_invocation = false;
  }

let mode t = t.mode
let invocations t = t.invocations
let guest_cycles t = t.guest_cycles
let host_cycles t = t.host_cycles
let total_cycles t = Int64.add t.guest_cycles t.host_cycles

let reset t =
  Hashtbl.reset t.fns;
  Hashtbl.reset t.ops;
  Hashtbl.reset t.folded_tbl;
  t.stack <- [];
  t.pending_callr <- false;
  t.guest_cycles <- 0L;
  t.host_cycles <- 0L;
  t.inv_guest <- 0L;
  t.invocations <- 0;
  t.in_invocation <- false

let fn_stat t name =
  match Hashtbl.find_opt t.fns name with
  | Some s -> s
  | None ->
      let s = { fn_name = name; self_cycles = 0L; instrs = 0; calls = 0; samples = 0 } in
      Hashtbl.add t.fns name s;
      s

let op_stat t name =
  match Hashtbl.find_opt t.ops name with
  | Some s -> s
  | None ->
      let s = { op_name = name; op_cycles = 0L; op_count = 0 } in
      Hashtbl.add t.ops name s;
      s

let opcode_key : Instr.t -> string = function
  | Instr.Hlt -> "hlt"
  | Nop -> "nop"
  | Mov _ -> "mov"
  | Bin (op, _, _) -> Instr.binop_name op
  | Neg _ -> "neg"
  | Not _ -> "not"
  | Cmp _ -> "cmp"
  | Jmp _ -> "jmp"
  | Jcc _ -> "jcc"
  | Call _ -> "call"
  | Callr _ -> "callr"
  | Ret -> "ret"
  | Push _ -> "push"
  | Pop _ -> "pop"
  | Load _ -> "load"
  | Store _ -> "store"
  | Lea _ -> "lea"
  | Out _ -> "out"
  | In _ -> "in"
  | Rdtsc _ -> "rdtsc"

let folded_key stack = String.concat ";" (List.rev stack)

let add_folded t key by =
  let prev = Option.value ~default:0L (Hashtbl.find_opt t.folded_tbl key) in
  Hashtbl.replace t.folded_tbl key (Int64.add prev by)

let begin_invocation t ~symbols ~clock =
  t.symtab <- Symtab.of_symbols symbols;
  t.clock <- Some clock;
  t.stack <- [];
  t.pending_callr <- false;
  t.inv_guest <- 0L;
  t.invocations <- t.invocations + 1;
  t.in_invocation <- true;
  match t.mode with
  | Sampled interval ->
      t.next_sample <- Int64.add (Cycles.Clock.now clock) (Int64.of_int interval)
  | Exact -> ()

(* The vCPU step hook: called once per retired instruction, after its
   cost was charged to the clock, before it executes. *)
let on_step t ~pc ~instr ~cost =
  (* resolve an indirect call's callee now that we can see its first pc *)
  if t.pending_callr then begin
    t.pending_callr <- false;
    let callee = Symtab.name_at t.symtab pc in
    (fn_stat t callee).calls <- (fn_stat t callee).calls + 1;
    match t.stack with _ :: rest -> t.stack <- callee :: rest | [] -> t.stack <- [ callee ]
  end;
  if t.stack = [] then t.stack <- [ Symtab.name_at t.symtab pc ];
  let current = List.hd t.stack in
  (match t.mode with
  | Exact ->
      let s = fn_stat t current in
      s.self_cycles <- Int64.add s.self_cycles (Int64.of_int cost);
      s.instrs <- s.instrs + 1;
      t.inv_guest <- Int64.add t.inv_guest (Int64.of_int cost);
      let o = op_stat t (opcode_key instr) in
      o.op_cycles <- Int64.add o.op_cycles (Int64.of_int cost);
      o.op_count <- o.op_count + 1;
      add_folded t (folded_key t.stack) (Int64.of_int cost)
  | Sampled interval -> (
      match t.clock with
      | Some clk when Int64.compare (Cycles.Clock.now clk) t.next_sample >= 0 ->
          let s = fn_stat t current in
          s.samples <- s.samples + 1;
          add_folded t (folded_key t.stack) 1L;
          t.next_sample <- Int64.add (Cycles.Clock.now clk) (Int64.of_int interval)
      | Some _ | None -> ()));
  (* maintain the shadow stack across control transfers *)
  match instr with
  | Instr.Call a ->
      let callee = Symtab.name_at t.symtab a in
      (fn_stat t callee).calls <- (fn_stat t callee).calls + 1;
      t.stack <- callee :: t.stack
  | Instr.Callr _ ->
      t.stack <- "?" :: t.stack;
      t.pending_callr <- true
  | Instr.Ret -> (
      match t.stack with _ :: rest -> t.stack <- rest | [] -> ())
  | _ -> ()

let end_invocation t ~execute_cycles =
  if t.in_invocation then begin
    t.in_invocation <- false;
    t.guest_cycles <- Int64.add t.guest_cycles t.inv_guest;
    let host = Int64.sub execute_cycles t.inv_guest in
    let host = if Int64.compare host 0L < 0 then 0L else host in
    t.host_cycles <- Int64.add t.host_cycles host;
    if t.mode = Exact && Int64.compare host 0L > 0 then add_folded t vmm_name host
  end

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type fn_row = {
  row_name : string;
  row_cycles : int64;  (** exact: attributed cycles; sampled: samples * interval *)
  row_instrs : int;
  row_calls : int;
  row_samples : int;
}

let functions t =
  let rows =
    Hashtbl.fold
      (fun _ (s : fn_stat) acc ->
        let cycles =
          match t.mode with
          | Exact -> s.self_cycles
          | Sampled interval -> Int64.of_int (s.samples * interval)
        in
        {
          row_name = s.fn_name;
          row_cycles = cycles;
          row_instrs = s.instrs;
          row_calls = s.calls;
          row_samples = s.samples;
        }
        :: acc)
      t.fns []
  in
  let rows =
    if t.mode = Exact && Int64.compare t.host_cycles 0L > 0 then
      {
        row_name = vmm_name;
        row_cycles = t.host_cycles;
        row_instrs = 0;
        row_calls = 0;
        row_samples = 0;
      }
      :: rows
    else rows
  in
  List.sort
    (fun a b ->
      match compare b.row_cycles a.row_cycles with
      | 0 -> compare a.row_name b.row_name
      | c -> c)
    rows

let opcodes t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.ops []
  |> List.sort (fun a b ->
         match compare b.op_cycles a.op_cycles with
         | 0 -> compare a.op_name b.op_name
         | c -> c)

let folded t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.folded_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let folded_lines t =
  String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s %Ld\n" k v) (folded t))

let render t =
  let buf = Buffer.create 1024 in
  let mode_str =
    match t.mode with
    | Exact -> "exact"
    | Sampled i -> Printf.sprintf "sampled, every %d cycles" i
  in
  Buffer.add_string buf
    (Printf.sprintf "guest profile (%s; %d invocation%s)\n" mode_str t.invocations
       (if t.invocations = 1 then "" else "s"));
  let rows = functions t in
  let total = List.fold_left (fun acc r -> Int64.add acc r.row_cycles) 0L rows in
  let pct c =
    if Int64.compare total 0L <= 0 then "-"
    else Printf.sprintf "%.1f%%" (Int64.to_float c /. Int64.to_float total *. 100.0)
  in
  Buffer.add_string buf
    (Stats.Report.table
       ~header:[ "function"; "cycles"; "%"; "instrs"; "calls"; "samples" ]
       (List.map
          (fun r ->
            [
              r.row_name;
              Int64.to_string r.row_cycles;
              pct r.row_cycles;
              string_of_int r.row_instrs;
              string_of_int r.row_calls;
              string_of_int r.row_samples;
            ])
          rows
       @ [ [ "total"; Int64.to_string total; "100.0%"; ""; ""; "" ] ]));
  if Hashtbl.length t.ops > 0 then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Stats.Report.table
         ~header:[ "opcode"; "cycles"; "count" ]
         (List.map
            (fun o ->
              [ o.op_name; Int64.to_string o.op_cycles; string_of_int o.op_count ])
            (opcodes t)))
  end;
  Buffer.contents buf

let export t hub =
  let reg = Telemetry.Hub.metrics hub in
  List.iter
    (fun r ->
      Telemetry.Metrics.incr
        ~by:(Int64.to_int r.row_cycles)
        (Telemetry.Metrics.counter reg
           ~labels:[ ("fn", r.row_name) ]
           ~help:"self cycles attributed to a guest function by the profiler"
           "wasp_profile_fn_cycles"))
    (functions t);
  List.iter
    (fun o ->
      Telemetry.Metrics.incr ~by:(Int64.to_int o.op_cycles)
        (Telemetry.Metrics.counter reg
           ~labels:[ ("op", o.op_name) ]
           ~help:"cycles attributed to a guest opcode by the profiler"
           "wasp_profile_opcode_cycles"))
    (opcodes t)
