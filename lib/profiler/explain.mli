(** Causal timelines for traced runs ([wasprun --explain-slowest]).

    Groups the hub's retained spans by trace id and renders the N
    slowest trace roots as full post-mortems: the span tree with
    per-span cycles and cores, a conservation check (do the root's
    direct children tile it exactly?), the trace's instants (supervisor
    retries, pool hits/stalls, injected faults, SLO alerts), the
    flight-ring VM exits stamped with the trace, and every histogram
    exemplar that resolves to it. Derived entirely from virtual-clock
    stamps and deterministic ids, the report is byte-identical across
    same-seed runs. *)

val slowest : ?n:int -> hub:Telemetry.Hub.t -> ?flight:Flight.t -> unit -> string
(** [slowest ~n ~hub ~flight ()] renders the [n] (default 1) slowest
    traced invocations (spans with a trace id and no parent), ranked by
    duration, ties broken by creation order. Returns a note instead
    when no traced spans were retained. *)
