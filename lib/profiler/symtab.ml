type sym = { s_name : string; s_addr : int }

type t = { syms : sym array }

let is_local name = String.length name > 0 && name.[0] = '.'

let of_symbols ?(keep_local = false) symbols =
  let kept =
    List.filter (fun (name, _) -> keep_local || not (is_local name)) symbols
  in
  let arr = Array.of_list (List.map (fun (n, a) -> { s_name = n; s_addr = a }) kept) in
  (* stable on equal addresses: first-listed symbol wins the lookup *)
  Array.stable_sort (fun a b -> compare a.s_addr b.s_addr) arr;
  { syms = arr }

let empty = { syms = [||] }

let size t = Array.length t.syms

let symbols t = Array.to_list (Array.map (fun s -> (s.s_name, s.s_addr)) t.syms)

(* Greatest symbol address <= pc: the enclosing function under the
   convention that a function's code extends to the next symbol. *)
let lookup t pc =
  let n = Array.length t.syms in
  if n = 0 || pc < t.syms.(0).s_addr then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.syms.(mid).s_addr <= pc then lo := mid else hi := mid - 1
    done;
    Some t.syms.(!lo).s_name
  end

let name_at t pc =
  match lookup t pc with Some n -> n | None -> Printf.sprintf "0x%x" pc
