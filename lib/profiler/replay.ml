(* Deterministic invocation recording: the .vxr format.

   A recording captures everything needed to re-execute one virtine
   invocation bit-for-bit in the simulator: the image bytes (integrity-
   checked by MD5), the runtime RNG seed, the policy, the fuel budget,
   and the full hypercall transcript with virtual-cycle stamps. Because
   the simulator is deterministic, replaying with the same seed must
   reproduce every stamp exactly; [diff] reports any divergence, turning
   an anomalous invocation into a reproducible test case. *)

type event = { at : int64; nr : int; args : int64 array; ret : int64 }

type t = {
  mutable image_name : string;
  mutable mode : string;      (* "real" | "protected" | "long" *)
  mutable origin : int;
  mutable entry : int;
  mutable mem_size : int;
  mutable code : string;      (* raw image bytes *)
  mutable seed : int;
  mutable policy : string;    (* "deny_all" | "allow_all" | "mask:<hex>" *)
  mutable fuel : int;
  mutable fault_plan : string option;
      (* one-line Cycles.Fault_plan.to_string form; None = no chaos *)
  mutable events_rev : event list;
  mutable n_events : int;
  mutable total_cycles : int64;
  mutable outcome : string;   (* "exited" | "faulted" | "fuel" | "" *)
  mutable return_value : int64;
}

let create () =
  {
    image_name = "";
    mode = "long";
    origin = 0;
    entry = 0;
    mem_size = 0;
    code = "";
    seed = 0;
    policy = "deny_all";
    fuel = 0;
    fault_plan = None;
    events_rev = [];
    n_events = 0;
    total_cycles = 0L;
    outcome = "";
    return_value = 0L;
  }

let set_image t ~name ~mode ~origin ~entry ~mem_size ~code =
  t.image_name <- name;
  t.mode <- mode;
  t.origin <- origin;
  t.entry <- entry;
  t.mem_size <- mem_size;
  t.code <- code

let set_env t ?fault_plan ~seed ~policy ~fuel () =
  t.seed <- seed;
  t.policy <- policy;
  t.fuel <- fuel;
  t.fault_plan <- fault_plan

let add_event t ~at ~nr ~args ~ret =
  t.events_rev <- { at; nr; args = Array.copy args; ret } :: t.events_rev;
  t.n_events <- t.n_events + 1

let finish t ~cycles ~outcome ~return_value =
  t.total_cycles <- cycles;
  t.outcome <- outcome;
  t.return_value <- return_value

let events t = List.rev t.events_rev
let event_count t = t.n_events

let image_name t = t.image_name
let mode t = t.mode
let origin t = t.origin
let entry t = t.entry
let mem_size t = t.mem_size
let code t = t.code
let seed t = t.seed
let policy t = t.policy
let fuel t = t.fuel
let fault_plan t = t.fault_plan
let total_cycles t = t.total_cycles
let outcome t = t.outcome
let return_value t = t.return_value

let image_md5 t = Digest.to_hex (Digest.string t.code)

(* The runtime calls this with the image bytes read back through the
   paged memory's logical view after loading, so a recording's MD5 keeps
   guarding the same property — "the guest saw exactly these bytes" —
   independent of how pages are represented underneath. *)
let image_matches t view = String.equal (Digest.to_hex (Digest.bytes view)) (image_md5 t)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let hex_of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Replay: odd hex string";
  String.init (n / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let magic = "vxr1"

(* Largest guest region a recording may describe (64 MB). Recordings of
   real invocations are tiny; the cap exists so a hostile .vxr cannot
   make a replayer allocate unbounded memory. *)
let max_mem_size = 64 * 1024 * 1024

let to_string t =
  let buf = Buffer.create (1024 + (2 * String.length t.code)) in
  Buffer.add_string buf (magic ^ "\n");
  Buffer.add_string buf (Printf.sprintf "image %s\n" t.image_name);
  Buffer.add_string buf (Printf.sprintf "mode %s\n" t.mode);
  Buffer.add_string buf (Printf.sprintf "origin %d\n" t.origin);
  Buffer.add_string buf (Printf.sprintf "entry %d\n" t.entry);
  Buffer.add_string buf (Printf.sprintf "mem_size %d\n" t.mem_size);
  Buffer.add_string buf (Printf.sprintf "seed %d\n" t.seed);
  Buffer.add_string buf (Printf.sprintf "policy %s\n" t.policy);
  Buffer.add_string buf (Printf.sprintf "fuel %d\n" t.fuel);
  (match t.fault_plan with
  | Some plan -> Buffer.add_string buf (Printf.sprintf "faultplan %s\n" plan)
  | None -> ());
  Buffer.add_string buf (Printf.sprintf "md5 %s\n" (image_md5 t));
  Buffer.add_string buf (Printf.sprintf "code %s\n" (hex_of_string t.code));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "hc %Ld %d %Ld %s\n" e.at e.nr e.ret
           (String.concat " " (Array.to_list (Array.map Int64.to_string e.args)))))
    (events t);
  Buffer.add_string buf (Printf.sprintf "total %Ld\n" t.total_cycles);
  Buffer.add_string buf (Printf.sprintf "outcome %s\n" t.outcome);
  Buffer.add_string buf (Printf.sprintf "ret %Ld\n" t.return_value);
  Buffer.contents buf

let of_string s =
  let t = create () in
  let stored_md5 = ref "" in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | first :: _ when first = magic -> ()
  | _ -> fail "not a vxr file (missing %s header)" magic);
  let split_kv line =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i ->
        (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
  in
  let int_of v ~what =
    match int_of_string_opt v with
    | Some n -> n
    | None ->
        fail "bad %s: %S" what v;
        0
  in
  let int64_of v ~what =
    match Int64.of_string_opt v with
    | Some n -> n
    | None ->
        fail "bad %s: %S" what v;
        0L
  in
  List.iteri
    (fun i line ->
      if i > 0 && line <> "" then begin
        let key, v = split_kv line in
        match key with
        | "image" -> t.image_name <- v
        | "mode" -> t.mode <- v
        | "origin" -> t.origin <- int_of v ~what:"origin"
        | "entry" -> t.entry <- int_of v ~what:"entry"
        | "mem_size" -> t.mem_size <- int_of v ~what:"mem_size"
        | "seed" -> t.seed <- int_of v ~what:"seed"
        | "policy" -> t.policy <- v
        | "fuel" -> t.fuel <- int_of v ~what:"fuel"
        | "faultplan" -> t.fault_plan <- Some v
        | "md5" -> stored_md5 := v
        | "code" -> (
            match string_of_hex v with
            | code -> t.code <- code
            | exception Invalid_argument _ | exception Failure _ ->
                fail "bad code hex")
        | "hc" -> (
            match String.split_on_char ' ' v with
            | at :: nr :: ret :: args ->
                add_event t ~at:(int64_of at ~what:"hc stamp")
                  ~nr:(int_of nr ~what:"hc nr")
                  ~args:(Array.of_list (List.map (fun a -> int64_of a ~what:"hc arg") args))
                  ~ret:(int64_of ret ~what:"hc ret")
            | _ -> fail "bad hc line: %S" v)
        | "total" -> t.total_cycles <- int64_of v ~what:"total"
        | "outcome" -> t.outcome <- v
        | "ret" -> t.return_value <- int64_of v ~what:"ret"
        | _ -> fail "unknown field %S" key
      end)
    lines;
  (* Semantic validation: a recording that parses but describes an
     impossible machine (negative or absurd memory, code that cannot
     fit, a load outside the region) must be a typed error here, not a
     [Vm.Memory.Fault] raised later through whatever driver rebuilt the
     image — fuzz corpora are full of exactly these. *)
  (match !err with
  | Some _ -> ()
  | None ->
      if t.mem_size <= 0 then fail "bad mem_size %d (must be positive)" t.mem_size
      else if t.mem_size > max_mem_size then
        fail "bad mem_size %d (over the %d-byte replay cap)" t.mem_size max_mem_size
      else if t.origin < 0 then fail "bad origin %d (negative)" t.origin
      else if t.entry < 0 then fail "bad entry %d (negative)" t.entry
      else if t.fuel < 0 then fail "bad fuel %d (negative)" t.fuel
      else if t.origin + String.length t.code > t.mem_size then
        fail "code does not fit: origin %d + %d bytes > mem_size %d" t.origin
          (String.length t.code) t.mem_size
      else if t.entry >= t.mem_size then
        fail "entry 0x%x outside the %d-byte region" t.entry t.mem_size);
  (match !err with
  | None when !stored_md5 <> "" && !stored_md5 <> image_md5 t ->
      fail "image corrupt: md5 %s does not match recorded %s" (image_md5 t) !stored_md5
  | _ -> ());
  match !err with None -> Ok t | Some m -> Error m

let to_file t path =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

let of_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Divergence detection                                                *)
(* ------------------------------------------------------------------ *)

let max_reported = 10

let diff recorded replayed =
  let divs = ref [] in
  let hidden = ref 0 in
  let add fmt =
    Printf.ksprintf
      (fun m -> if List.length !divs < max_reported then divs := m :: !divs else incr hidden)
      fmt
  in
  if image_md5 recorded <> image_md5 replayed then
    add "image: md5 %s vs %s" (image_md5 recorded) (image_md5 replayed);
  if recorded.seed <> replayed.seed then add "seed: %d vs %d" recorded.seed replayed.seed;
  if recorded.policy <> replayed.policy then
    add "policy: %s vs %s" recorded.policy replayed.policy;
  if recorded.fault_plan <> replayed.fault_plan then
    add "fault plan: %s vs %s"
      (Option.value recorded.fault_plan ~default:"<none>")
      (Option.value replayed.fault_plan ~default:"<none>");
  if recorded.n_events <> replayed.n_events then
    add "hypercall count: %d vs %d" recorded.n_events replayed.n_events;
  List.iteri
    (fun i (a, b) ->
      if a.nr <> b.nr then add "hc[%d]: nr %d vs %d" i a.nr b.nr
      else if Int64.compare a.at b.at <> 0 then
        add "hc[%d] (%d): cycle stamp %Ld vs %Ld" i a.nr a.at b.at
      else if a.args <> b.args then
        add "hc[%d] (%d): args (%s) vs (%s)" i a.nr
          (String.concat "," (Array.to_list (Array.map Int64.to_string a.args)))
          (String.concat "," (Array.to_list (Array.map Int64.to_string b.args)))
      else if Int64.compare a.ret b.ret <> 0 then
        add "hc[%d] (%d): return %Ld vs %Ld" i a.nr a.ret b.ret)
    (List.combine
       (let ea = events recorded and eb = events replayed in
        let n = min (List.length ea) (List.length eb) in
        List.filteri (fun i _ -> i < n) ea)
       (let ea = events recorded and eb = events replayed in
        let n = min (List.length ea) (List.length eb) in
        List.filteri (fun i _ -> i < n) eb));
  if Int64.compare recorded.total_cycles replayed.total_cycles <> 0 then
    add "total cycles: %Ld vs %Ld" recorded.total_cycles replayed.total_cycles;
  if recorded.outcome <> replayed.outcome then
    add "outcome: %s vs %s" recorded.outcome replayed.outcome;
  if Int64.compare recorded.return_value replayed.return_value <> 0 then
    add "return value: %Ld vs %Ld" recorded.return_value replayed.return_value;
  let out = List.rev !divs in
  if !hidden > 0 then out @ [ Printf.sprintf "(%d further divergences suppressed)" !hidden ]
  else out
