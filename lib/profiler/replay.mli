(** Deterministic invocation record/replay: the [.vxr] format.

    A recording holds the image bytes (MD5-checked), the runtime RNG
    seed, the policy, the fuel budget, the cycle-stamped hypercall
    transcript, and the final outcome of one invocation. The simulator is
    deterministic, so re-executing under the same seed must reproduce
    every stamp; {!diff} reports cycle-for-cycle divergences. *)

type event = { at : int64; nr : int; args : int64 array; ret : int64 }
(** One hypercall: virtual-cycle stamp at dispatch, number, argument
    registers, and the value returned in r0. *)

type t

val create : unit -> t

val set_image :
  t ->
  name:string ->
  mode:string ->
  origin:int ->
  entry:int ->
  mem_size:int ->
  code:string ->
  unit

val set_env : t -> ?fault_plan:string -> seed:int -> policy:string -> fuel:int -> unit -> unit
(** [policy] is ["deny_all"], ["allow_all"] or ["mask:<hex>"].
    [fault_plan] is the armed plan's one-line
    {!Cycles.Fault_plan.to_string} form; recordings made under chaos
    carry it so replay re-arms an identical plan and the injected
    turbulence reproduces cycle-for-cycle. *)

val add_event : t -> at:int64 -> nr:int -> args:int64 array -> ret:int64 -> unit

val finish : t -> cycles:int64 -> outcome:string -> return_value:int64 -> unit
(** [outcome] is ["exited"], ["faulted"] or ["fuel"]. *)

val events : t -> event list
val event_count : t -> int

val image_name : t -> string
val mode : t -> string
val origin : t -> int
val entry : t -> int
val mem_size : t -> int
val code : t -> string
val seed : t -> int
val policy : t -> string
val fuel : t -> int

val fault_plan : t -> string option
(** The textual fault plan recorded with this invocation, if any. *)
val total_cycles : t -> int64
val outcome : t -> string
val return_value : t -> int64

val image_md5 : t -> string

val image_matches : t -> bytes -> bool
(** [image_matches t view] checks [view] (the image bytes as read back
    through the guest's logical page view) against the recorded MD5 —
    the integrity check stays representation-independent, so [.vxr]
    files recorded against flat memory verify against the paged store. *)

val to_string : t -> string
(** Render as a [.vxr] file (line-oriented text). *)

val of_string : string -> (t, string) result
(** Parse a [.vxr] file; verifies the embedded image MD5 and that the
    recording describes a loadable machine (positive bounded [mem_size],
    non-negative [origin]/[entry]/[fuel]/[seed], code fitting inside the
    region, entry inside it). Truncated or garbage input is always a
    typed [Error], never an exception — replay drivers and the fuzz
    corpus loader rely on this. *)

val to_file : t -> string -> unit
(** Write the {!to_string} rendering to [path]. *)

val of_file : string -> (t, string) result
(** Read and {!of_string} [path]; I/O failures become [Error]. *)

val diff : t -> t -> string list
(** [diff recorded replayed]: divergences in execution order (empty =
    deterministic replay succeeded). At most 10 are itemized. *)
