(* VM-exit flight recorder: a fixed-size ring of the most recent VM
   exits, stamped with the virtual clock and the core that took them.
   Recording charges no cycles (the real-hardware analogue is a per-cpu
   lock-free ring, as in IRIS-style hypervisor record/replay), so it can
   stay on permanently; on a guest fault or policy violation the last-N
   events are rendered as a "black box" report. *)

type kind =
  | Halt
  | Io_out of { port : int; value : int64 }
  | Io_in of { port : int }
  | Fault of string
  | Fuel
  | Ept of { page : int }
  | Injected of string

type entry = {
  seq : int;            (** monotonically increasing exit number *)
  at : int64;           (** virtual-clock cycle stamp *)
  core : int;
  pc : int;             (** guest pc at the exit *)
  kind : kind;
  trace : int64 option; (** active trace id, when request tracing is on *)
  mutable note : string;  (** hypervisor annotation (hypercall nr/args/ret) *)
}

type t = {
  capacity : int;
  ring : entry option array;
  mutable next : int;   (** ring slot for the next record *)
  mutable total : int;  (** exits ever recorded *)
  mutable last : entry option;
}

let create ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be >= 1";
  { capacity; ring = Array.make capacity None; next = 0; total = 0; last = None }

let capacity t = t.capacity
let total t = t.total
let count t = min t.total t.capacity

let record t ?trace ~at ~core ~pc kind =
  let e = { seq = t.total; at; core; pc; kind; trace; note = "" } in
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1;
  t.last <- Some e

let annotate_last t note = match t.last with Some e -> e.note <- note | None -> ()

let append_note t note =
  match t.last with
  | None -> ()
  | Some e -> e.note <- (if e.note = "" then note else e.note ^ "; " ^ note)

(* Oldest-first list of retained entries. *)
let entries t =
  let n = count t in
  let first = (t.next - n + t.capacity * 2) mod t.capacity in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0;
  t.last <- None

let kind_to_string = function
  | Halt -> "hlt"
  | Io_out { port; value } -> Printf.sprintf "io_out port=0x%x value=%Ld" port value
  | Io_in { port } -> Printf.sprintf "io_in port=0x%x" port
  | Fault msg -> Printf.sprintf "FAULT %s" msg
  | Fuel -> "out_of_fuel"
  | Ept { page } -> Printf.sprintf "ept_violation page=%d" page
  | Injected site -> Printf.sprintf "INJECTED %s" site

let pp_entry ppf e =
  Format.fprintf ppf "#%-6d cyc=%-12Ld core=%d pc=0x%06x %s%s%s" e.seq e.at e.core e.pc
    (kind_to_string e.kind)
    (match e.trace with
    | Some id -> Printf.sprintf " trace=%016Lx" id
    | None -> "")
    (if e.note = "" then "" else "  ; " ^ e.note)

let dump t ~reason =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "=== flight recorder: %s ===\n%d VM exits recorded, last %d retained:\n"
       reason t.total (count t));
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "  %a\n" pp_entry e))
    (entries t);
  Buffer.add_string buf "=== end flight recorder ===\n";
  Buffer.contents buf
