(** Guest symbol table: maps program counters back to the function (label)
    that contains them, using the assembler's label/address pairs.

    Labels starting with ['.'] are compiler-local (vcc emits [.L*] branch
    targets and string-pool labels) and are dropped by default so
    attribution lands on real function symbols. *)

type t

val of_symbols : ?keep_local:bool -> (string * int) list -> t
(** Build from [Asm.program.symbols]-style pairs. Sorted internally;
    duplicate addresses keep the first-listed name. *)

val empty : t

val size : t -> int

val symbols : t -> (string * int) list
(** Retained symbols in address order. *)

val lookup : t -> int -> string option
(** The symbol with the greatest address [<= pc] — the enclosing function
    under flat code layout. [None] below the first symbol. *)

val name_at : t -> int -> string
(** Like {!lookup} but renders unmapped PCs as a hex address. *)

val is_local : string -> bool
(** Whether a label is compiler-local (starts with ['.']). *)
