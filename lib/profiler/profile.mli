(** Guest profiler: cycle attribution inside the virtine.

    Attached to a {!Wasp.Runtime} (via [Runtime.set_profiler]), the
    profiler hooks the vCPU's fetch/execute loop and attributes the
    execute phase's cycles to guest functions, opcodes, and folded call
    stacks. Two modes:

    - {!Exact}: per-instruction attribution. Guest cycles plus the
      [\[vmm\]] residue (VM exits, hypercall dispatch) equal the execute
      span's duration exactly — a conservation property tests assert.
    - [Sampled interval]: cycle-budgeted PC sampling; a sample fires each
      time the virtual clock crosses the next [interval]-cycle boundary.

    The profiler aggregates across invocations until {!reset}. *)

type mode = Exact | Sampled of int  (** sample every [n] cycles *)

type t

val vmm_name : string
(** Name of the pseudo-function charged with host-side (VM exit /
    hypercall dispatch) cycles: ["\[vmm\]"]. *)

val create : ?mode:mode -> unit -> t
(** Default mode is {!Exact}. @raise Invalid_argument on a non-positive
    sampling interval. *)

val mode : t -> mode
val invocations : t -> int

val guest_cycles : t -> int64
(** Exact mode: total cycles attributed to guest instructions. *)

val host_cycles : t -> int64
(** Execute-span cycles not spent in guest instructions (exit costs,
    dispatch, handler work). *)

val total_cycles : t -> int64
(** [guest_cycles + host_cycles] = the summed execute-span durations of
    all profiled invocations (exact mode). *)

val reset : t -> unit

(** {1 Runtime integration} *)

val begin_invocation : t -> symbols:(string * int) list -> clock:Cycles.Clock.t -> unit
(** Called by the runtime before the execute phase: installs the image's
    symbol table and clears the shadow stack. *)

val on_step : t -> pc:int -> instr:Instr.t -> cost:int -> unit
(** The vCPU step hook target (see [Vm.Cpu.set_step_hook]). *)

val opcode_key : Instr.t -> string
(** Short mnemonic for an instruction ("mov", "add", …) — the key the
    per-opcode table buckets by; also used by vtrace ["instr"] probes as
    their [reason] field. *)

val end_invocation : t -> execute_cycles:int64 -> unit
(** Called after the execute phase with the span's duration; books the
    non-guest residue as [\[vmm\]] cycles. *)

(** {1 Reports} *)

type fn_row = {
  row_name : string;
  row_cycles : int64;  (** exact: attributed; sampled: [samples * interval] *)
  row_instrs : int;
  row_calls : int;
  row_samples : int;
}

type op_stat = private {
  op_name : string;
  mutable op_cycles : int64;
  mutable op_count : int;
}

val functions : t -> fn_row list
(** Per-function rows, heaviest first, including [\[vmm\]] in exact mode.
    In exact mode the rows' cycles sum to {!total_cycles}. *)

val opcodes : t -> op_stat list
(** Per-opcode cycle table, heaviest first. *)

val folded : t -> (string * int64) list
(** Folded call stacks ("a;b;c", weight) — flamegraph collapse format.
    Weights are cycles in exact mode, samples in sampled mode. *)

val folded_lines : t -> string
(** {!folded} rendered one "stack weight" line each, ready for
    [flamegraph.pl]. *)

val render : t -> string
(** Human-readable per-function and per-opcode tables. *)

val export : t -> Telemetry.Hub.t -> unit
(** Export per-function and per-opcode cycle totals into the hub's
    metrics registry as labeled counters ([wasp_profile_fn_cycles{fn},
    wasp_profile_opcode_cycles{op}]). Call once, after the run. *)
