(** The vx guest instruction set.

    Virtine images are binaries for this small register machine. It stands
    in for the x86 subset the paper's assembly/newlib images use: 16 general
    registers, a guest-memory stack, absolute control flow, byte- to
    quad-word memory accesses, and port I/O ([out]) as the hypercall
    doorbell. Register width is truncated by the CPU according to the active
    processor mode (real = 16-bit, protected = 32-bit, long = 64-bit),
    mirroring how the same virtine source can be compiled for cheaper
    modes (paper Figure 3). *)

type reg = int
(** Register index in [0, 15]. By convention: r0 = return value and first
    argument, r0-r5 = arguments, r13 = frame pointer, r15 = stack pointer. *)

val num_regs : int
val sp : reg
val fp : reg

val reg_name : reg -> string
(** "r0" ... "r15". *)

val reg_of_name : string -> reg option

type operand = Reg of reg | Imm of int64

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar

val binop_name : binop -> string
(** Assembly mnemonic, e.g. "add". *)

type cond = Eq | Ne | Lt | Le | Gt | Ge | Ult | Ule | Ugt | Uge
(** Signed and unsigned comparisons against the flags set by [Cmp]. *)

val cond_name : cond -> string
(** Condition suffix, e.g. "eq" (as in "jeq"). *)

type width = W8 | W16 | W32 | W64

val bytes_of_width : width -> int

type t =
  | Hlt                                  (** stop; VM exit [Halt]. *)
  | Nop
  | Mov of reg * operand
  | Bin of binop * reg * operand         (** rd <- rd op src. *)
  | Neg of reg
  | Not of reg
  | Cmp of reg * operand                 (** set flags from rd - src. *)
  | Jmp of int                           (** absolute guest address. *)
  | Jcc of cond * int
  | Call of int
  | Callr of reg                         (** indirect call. *)
  | Ret
  | Push of operand
  | Pop of reg
  | Load of width * reg * reg * int      (** rd <- [rb + disp], zero-extended. *)
  | Store of width * reg * int * operand (** [rb + disp] <- src (low bytes). *)
  | Lea of reg * reg * int               (** rd <- rb + disp. *)
  | Out of int * operand                 (** port I/O: the hypercall doorbell. *)
  | In of reg * int
  | Rdtsc of reg                         (** read the virtual cycle counter. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

val cost : t -> int
(** Cycle cost charged on retire (hypercall exits are charged separately by
    the host path). *)
