(** Service-level objectives with multi-window, multi-burn-rate alerting
    on the virtual clock.

    An objective declares what fraction of events must be {e good} over
    a rolling [period] of virtual-time cycles — availability (the caller
    says good/bad) or a latency target (good iff the observed latency is
    under a threshold, the histogram-free stand-in for "p99 under X").
    The {e burn rate} over a window is the observed bad fraction divided
    by the error budget [1 - target]: burn 1.0 spends the budget exactly
    over the period. An alerting rule fires when both its long and short
    windows burn past a threshold (the short window makes alerts clear
    promptly after the storm passes), following the multiwindow
    multi-burn-rate recipe from the Google SRE workbook.

    Every [record] re-evaluates the rules, updates [slo_*] gauges and
    counters in the hub's registry, and emits a [slo_alert] instant span
    on each firing/cleared transition — so alert timelines live in the
    same trace as the requests that caused them, and replay
    deterministically. *)

type rule = {
  rule_name : string;
  long_window : int64;    (** cycles *)
  short_window : int64;   (** cycles; must be <= [long_window] *)
  burn_threshold : float; (** fire when both windows burn at >= this rate *)
}

type objective =
  | Availability            (** caller classifies each event good/bad *)
  | Latency_under of int64  (** good iff latency (cycles) <= threshold *)

type t

val default_rules : period:int64 -> rule list
(** The classic pair: [fast] pages when ~5% of the budget burns in
    [period/100] (burn 5x, short window 1/12 of that), [slow] when ~10%
    burns in [period/20] (burn 2x). *)

val create :
  hub:Hub.t ->
  name:string ->
  ?objective:objective ->
  target:float ->
  ?rules:rule list ->
  period:int64 ->
  unit ->
  t
(** Declare an objective. [target] is the required good fraction, inside
    (0, 1), e.g. [0.99]. [rules] defaults to {!default_rules}. The
    declared target is exported as [slo_objective{slo="name"}].
    @raise Invalid_argument on a target outside (0, 1), an empty rule
    list, or a rule whose short window exceeds its long window. *)

val record : t -> good:bool -> unit
(** Feed one event stamped at the hub clock's current cycle, then
    re-evaluate every rule (pruning events older than the longest
    window). *)

val record_latency : t -> int64 -> unit
(** Feed one latency observation against a {!Latency_under} objective.
    @raise Invalid_argument if the objective is {!Availability}. *)

val evaluate : t -> unit
(** Re-evaluate rules without feeding an event (e.g. after advancing the
    clock past a quiet stretch). *)

val name : t -> string
val target : t -> float
val objective : t -> objective
val error_budget : t -> float

val alerting : t -> bool
(** Is any rule currently firing? *)

val rule_alerting : t -> rule:string -> bool

val burn_rate : t -> rule:string -> float * float
(** Current [(long, short)] window burn rates of the named rule.
    @raise Invalid_argument on an unknown rule. *)

val peak_burn : t -> float
(** Highest long-window burn rate seen by any rule so far. *)

val alerts_fired : t -> int
val alerts_cleared : t -> int
val good_count : t -> int
val bad_count : t -> int

val compliance : t -> float
(** Lifetime good fraction (1.0 when no events recorded). *)

val met : t -> bool
(** [compliance t >= target t] — the verdict column of SLO tables. *)
