type t = { mutable clk : Cycles.Clock.t; sink : Span.sink; registry : Metrics.t }

let create ?capacity ~clock () =
  { clk = clock; sink = Span.create ?capacity ~clock (); registry = Metrics.create () }

let clock t = t.clk

let set_clock t clk =
  t.clk <- clk;
  Span.set_clock t.sink clk

let core t = Span.core t.sink
let set_core t core = Span.set_core t.sink core
let spans t = t.sink
let metrics t = t.registry

let enable_tracing t ~seed = Span.set_tracer t.sink (Some (Tracectx.create ~seed))
let tracing_enabled t = Span.tracer t.sink <> None
let current_ids t = Span.current_ids t.sink
let current_trace t = Span.current_trace t.sink

let enter t ?args name = Span.enter t.sink ?args name
let leave t ?args () = Span.leave t.sink ?args ()
let with_span t ?args name f = Span.with_span t.sink ?args name f
let instant t ?args name = Span.instant t.sink ?args name

let incr t ?by name = Metrics.incr ?by (Metrics.counter t.registry name)

let observe t name v =
  let exemplar =
    match current_trace t with
    | Some id -> Some (Tracectx.id_to_string id)
    | None -> None
  in
  Metrics.observe ?exemplar (Metrics.histogram t.registry name) v

let set_gauge t name v = Metrics.set (Metrics.gauge t.registry name) v

let clear_spans t = Span.clear t.sink
