type ids = {
  trace_id : int64;
  span_id : int64;
  parent_id : int64 option;
}

type t = { rng : Cycles.Rng.t }

let create ~seed = { rng = Cycles.Rng.create ~seed }

(* Ids must be non-zero so the all-zeroes id can never collide with a
   real one (mirrors the W3C trace-context invalid-id rule). The draw
   comes from the tracer's own stream, never the simulation RNG, so
   enabling tracing cannot perturb a replay. *)
let rec fresh_id t =
  let v = Cycles.Rng.int64 t.rng in
  if Int64.equal v 0L then fresh_id t else v

let enter t ~parent =
  match parent with
  | None ->
      let trace_id = fresh_id t in
      let span_id = fresh_id t in
      { trace_id; span_id; parent_id = None }
  | Some p ->
      { trace_id = p.trace_id; span_id = fresh_id t; parent_id = Some p.span_id }

let id_to_string id = Printf.sprintf "%016Lx" id

let id_of_string s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some v when String.length s = 16 -> Some v
  | _ -> None

let args_of_ids ids =
  let base =
    [ ("trace_id", id_to_string ids.trace_id); ("span_id", id_to_string ids.span_id) ]
  in
  match ids.parent_id with
  | None -> base
  | Some p -> base @ [ ("parent_id", id_to_string p) ]
