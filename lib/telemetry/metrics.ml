type counter = {
  c_name : string;
  c_help : string;
  c_labels : (string * string) list;
  mutable c_value : int;
  c_bad : int ref;  (* the registry's shared bad-sample tally *)
}

type gauge = {
  g_name : string;
  g_help : string;
  g_labels : (string * string) list;
  mutable g_value : float;
  g_bad : int ref;
}

type exemplar = { e_trace : string; e_value : int64 }

type histogram = {
  h_name : string;
  h_help : string;
  h_labels : (string * string) list;
  h_buckets : int array;
  h_exemplars : exemplar option array;
  mutable h_count : int;
  mutable h_sum : int64;
  mutable h_min : int64;
  mutable h_max : int64;
  h_bad : int ref;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (* newest first *)
  bad : int ref;  (* rejected samples across all series *)
}

let num_buckets = 63

let create () = { tbl = Hashtbl.create 32; order = []; bad = ref 0 }

(* [order] records first registration only: re-registering a key (e.g. a
   lookup racing a replace) must not move it, or exposition order would
   depend on call history rather than creation order. *)
let register t key metric =
  if not (Hashtbl.mem t.tbl key) then t.order <- key :: t.order;
  Hashtbl.replace t.tbl key metric

(* Labeled series live in the same registry as plain ones, keyed by
   name plus the rendered label set so each (name, labels) pair is its
   own find-or-register identity. Unlabeled metrics keep the bare name
   as their key, so [find] by name is unaffected. *)
let series_key name labels =
  match labels with
  | [] -> name
  | _ ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let counter t ?(help = "") ?(labels = []) name =
  let key = series_key name labels in
  match Hashtbl.find_opt t.tbl key with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ key ^ " is not a counter")
  | None ->
      let c =
        { c_name = name; c_help = help; c_labels = labels; c_value = 0; c_bad = t.bad }
      in
      register t key (Counter c);
      c

let gauge t ?(help = "") ?(labels = []) name =
  let key = series_key name labels in
  match Hashtbl.find_opt t.tbl key with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ key ^ " is not a gauge")
  | None ->
      let g =
        { g_name = name; g_help = help; g_labels = labels; g_value = 0.0; g_bad = t.bad }
      in
      register t key (Gauge g);
      g

let histogram t ?(help = "") ?(labels = []) name =
  let key = series_key name labels in
  match Hashtbl.find_opt t.tbl key with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ key ^ " is not a histogram")
  | None ->
      let h =
        {
          h_name = name;
          h_help = help;
          h_labels = labels;
          h_buckets = Array.make num_buckets 0;
          h_exemplars = Array.make num_buckets None;
          h_count = 0;
          h_sum = 0L;
          h_min = Int64.max_int;
          h_max = 0L;
          h_bad = t.bad;
        }
      in
      register t key (Histogram h);
      h

(* Bad samples (negative counter increments, NaN gauge values, negative
   histogram observations) never corrupt a series: counters stay
   monotone, gauges keep their last good value, observations clamp to
   zero. Each rejection bumps the registry-wide tally, exported as
   [telemetry_bad_samples_total] once nonzero. *)
let incr ?(by = 1) c =
  if by < 0 then c.c_bad := !(c.c_bad) + 1 else c.c_value <- c.c_value + by

let set g v =
  if Float.is_nan v then g.g_bad := !(g.g_bad) + 1 else g.g_value <- v

(* Bucket 0 holds zeros; bucket i >= 1 holds [2^(i-1), 2^i). *)
let bucket_index v =
  if Int64.compare v 1L < 0 then 0
  else begin
    let v = Int64.to_int v in
    let rec find i = if i >= num_buckets - 1 || v < 1 lsl i then i else find (i + 1) in
    find 1
  end

let bucket_bounds i =
  if i < 0 || i >= num_buckets then invalid_arg "Metrics.bucket_bounds";
  let lo = if i = 0 then 0L else Int64.of_int (1 lsl (i - 1)) in
  let hi = if i >= num_buckets - 1 then Int64.max_int else Int64.of_int (1 lsl i) in
  (lo, hi)

let observe ?exemplar h v =
  let v =
    if Int64.compare v 0L < 0 then begin
      h.h_bad := !(h.h_bad) + 1;
      0L
    end
    else v
  in
  let i = bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  (match exemplar with
  | Some trace -> h.h_exemplars.(i) <- Some { e_trace = trace; e_value = v }
  | None -> ());
  h.h_count <- h.h_count + 1;
  h.h_sum <- Int64.add h.h_sum v;
  if Int64.compare v h.h_min < 0 then h.h_min <- v;
  if Int64.compare v h.h_max > 0 then h.h_max <- v

let percentile h p =
  if p < 0.0 || p > 100.0 then invalid_arg "Metrics.percentile: p outside [0,100]";
  if h.h_count = 0 then 0.0
  else begin
    let target = p /. 100.0 *. float_of_int h.h_count in
    let clamp v =
      let lo = Int64.to_float h.h_min and hi = Int64.to_float h.h_max in
      Float.min hi (Float.max lo v)
    in
    let rec go i cum =
      if i >= num_buckets then clamp (Int64.to_float h.h_max)
      else begin
        let c = h.h_buckets.(i) in
        if c > 0 && float_of_int (cum + c) >= target then begin
          let lo, hi = bucket_bounds i in
          let frac = Float.max 0.0 ((target -. float_of_int cum) /. float_of_int c) in
          clamp (Int64.to_float lo +. ((Int64.to_float hi -. Int64.to_float lo) *. frac))
        end
        else go (i + 1) (cum + c)
      end
    in
    go 0 0
  end

let nonempty_buckets h =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then begin
      let lo, hi = bucket_bounds i in
      acc := (lo, hi, h.h_buckets.(i)) :: !acc
    end
  done;
  !acc

let cumulative_buckets h =
  let cum = ref 0 in
  List.map
    (fun (_, hi, c) ->
      cum := !cum + c;
      (hi, !cum))
    (nonempty_buckets h)

(* Exemplars aligned with [cumulative_buckets]: one (upper bound,
   exemplar) pair per occupied bucket that recorded one. *)
let bucket_exemplars h =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      match h.h_exemplars.(i) with
      | Some e ->
          let _, hi = bucket_bounds i in
          acc := (hi, e) :: !acc
      | None -> ()
  done;
  !acc

let bad_samples t = !(t.bad)

(* [telemetry_bad_samples_total] materializes lazily, on the first read
   after a rejection: registering it eagerly in [create] would put it at
   the head of every exposition whether or not anything misbehaved. *)
let sync_bad t =
  if !(t.bad) > 0 then begin
    let key = "telemetry_bad_samples_total" in
    let c =
      match Hashtbl.find_opt t.tbl key with
      | Some (Counter c) -> c
      | Some _ | None ->
          let c =
            {
              c_name = key;
              c_help = "samples rejected by the registry (negative increment, NaN gauge, negative observation)";
              c_labels = [];
              c_value = 0;
              c_bad = t.bad;
            }
          in
          register t key (Counter c);
          c
    in
    c.c_value <- !(t.bad)
  end

let find t name =
  sync_bad t;
  Hashtbl.find_opt t.tbl name

let to_list t =
  sync_bad t;
  List.rev_map (fun name -> Hashtbl.find t.tbl name) t.order
