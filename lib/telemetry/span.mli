(** Cycle-attributed phase spans.

    A span names a phase of work ([provision], [boot], [execute], ...)
    and carries the virtual-clock cycle count at which it started and how
    many cycles elapsed before it closed. Spans nest: the runtime opens a
    root [invocation] span and tiles its interior with phase spans so
    that the durations of the depth-1 children sum exactly to the
    invocation's end-to-end latency (no charged work happens outside a
    phase). Because stamps come from {!Cycles.Clock}, traces are
    deterministic for a fixed seed. *)

type span = {
  name : string;                   (** phase name, e.g. ["boot"] *)
  start_cycles : int64;            (** clock value when the span opened *)
  duration : int64;                (** cycles between open and close *)
  depth : int;                     (** nesting depth; 0 = root *)
  seq : int;                       (** creation order, unique per sink *)
  core : int;                      (** simulated core the span was opened on *)
  args : (string * string) list;   (** free-form attributes *)
}

type item =
  | Complete of span
  | Instant of {
      i_name : string;
      i_at : int64;
      i_depth : int;
      i_seq : int;
      i_core : int;
      i_args : (string * string) list;
    }  (** a point-in-time event, e.g. a mirrored {!Wasp.Trace} entry *)

type sink
(** Collects finished spans and instants, stamping them from one clock. *)

val create : ?capacity:int -> clock:Cycles.Clock.t -> unit -> sink
(** A fresh sink. At most [capacity] (default 65536) items are retained;
    further items are counted in {!dropped} but not stored (nesting
    bookkeeping still happens, so depths stay correct). *)

val clock : sink -> Cycles.Clock.t

val set_clock : sink -> Cycles.Clock.t -> unit
(** Retarget the stamping clock (multi-core runs switch the sink to the
    active core's clock). Only switch between spans: a span that is open
    across a switch gets its duration measured on the leave-time clock. *)

val core : sink -> int

val set_core : sink -> int -> unit
(** Stamp subsequently opened spans/instants with this core id (the
    Chrome exporter lays each core out as its own thread track). The
    runtime's core switcher keeps this in sync with {!set_clock}. *)

val set_tracer : sink -> Tracectx.t option -> unit
(** Attach (or detach) a {!Tracectx.t}. While attached, every {!enter}
    mints span ids: a depth-0 span starts a fresh trace, nested spans
    inherit the enclosing trace and link to their parent. Retained spans
    carry [trace_id]/[span_id]/[parent_id] args; instants carry the
    active [trace_id]. *)

val tracer : sink -> Tracectx.t option

val current_ids : sink -> Tracectx.ids option
(** Ids of the innermost open span, when tracing is on. *)

val current_trace : sink -> int64 option
(** Trace id of the innermost open span, when tracing is on — what
    exemplars and flight-ring entries are stamped with. *)

val enter : sink -> ?args:(string * string) list -> string -> unit
(** Open a span stamped at [Clock.now]. *)

val leave : sink -> ?args:(string * string) list -> unit -> unit
(** Close the innermost open span (no-op if none is open); [args] are
    appended to those given at {!enter}. *)

val with_span : sink -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span s name f] brackets [f] with {!enter}/{!leave}, closing the
    span even if [f] raises. *)

val instant : sink -> ?args:(string * string) list -> string -> unit
(** Record a point event at [Clock.now] and the current depth. *)

val items : sink -> item list
(** Retained items in creation ([seq]) order. *)

val spans : sink -> span list
(** Just the completed spans, in creation order. *)

val depth : sink -> int
(** Number of currently open spans. *)

val count : sink -> int
val dropped : sink -> int
val clear : sink -> unit
(** Drop retained items (open spans stay open). *)
