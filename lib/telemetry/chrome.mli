(** Chrome [trace_event] JSON exporter.

    Serializes a hub's spans as "X" (complete) events and its instants as
    "i" events, timestamps in microseconds of virtual time, loadable in
    [about://tracing] or {{:https://ui.perfetto.dev}Perfetto}. Every span
    also carries its raw cycle count under [args.cycles]. Output is
    deterministic: two runs with the same seed produce byte-identical
    JSON. *)

val to_json : ?process:string -> Hub.t -> string
(** [process] (default ["wasp"]) names the trace's process row. *)
