type span = {
  name : string;
  start_cycles : int64;
  duration : int64;
  depth : int;
  seq : int;
  core : int;
  args : (string * string) list;
}

type item =
  | Complete of span
  | Instant of {
      i_name : string;
      i_at : int64;
      i_depth : int;
      i_seq : int;
      i_core : int;
      i_args : (string * string) list;
    }

type frame = {
  f_name : string;
  f_start : int64;
  f_depth : int;
  f_seq : int;
  f_core : int;
  f_args : (string * string) list;
  f_ids : Tracectx.ids option;
}

type sink = {
  mutable clk : Cycles.Clock.t;
  capacity : int;
  mutable core : int;
  mutable stack : frame list;
  mutable finished : item list; (* finish order, newest first *)
  mutable n : int;
  mutable dropped_n : int;
  mutable next_seq : int;
  mutable tracer : Tracectx.t option;
}

let create ?(capacity = 65536) ~clock () =
  {
    clk = clock;
    capacity;
    core = 0;
    stack = [];
    finished = [];
    n = 0;
    dropped_n = 0;
    next_seq = 0;
    tracer = None;
  }

let clock s = s.clk
let set_clock s clk = s.clk <- clk

let core s = s.core
let set_core s core = s.core <- core

let set_tracer s tr = s.tracer <- tr
let tracer s = s.tracer

let current_ids s =
  match s.stack with [] -> None | f :: _ -> f.f_ids

let current_trace s =
  match current_ids s with
  | Some ids -> Some ids.Tracectx.trace_id
  | None -> None

let push_item s item =
  if s.n >= s.capacity then s.dropped_n <- s.dropped_n + 1
  else begin
    s.finished <- item :: s.finished;
    s.n <- s.n + 1
  end

let fresh_seq s =
  let q = s.next_seq in
  s.next_seq <- q + 1;
  q

let enter s ?(args = []) name =
  let ids =
    match s.tracer with
    | None -> None
    | Some tr -> Some (Tracectx.enter tr ~parent:(current_ids s))
  in
  let frame =
    {
      f_name = name;
      f_start = Cycles.Clock.now s.clk;
      f_depth = List.length s.stack;
      f_seq = fresh_seq s;
      f_core = s.core;
      f_args = args;
      f_ids = ids;
    }
  in
  s.stack <- frame :: s.stack

let leave s ?(args = []) () =
  match s.stack with
  | [] -> ()
  | f :: rest ->
      s.stack <- rest;
      let id_args =
        match f.f_ids with None -> [] | Some ids -> Tracectx.args_of_ids ids
      in
      push_item s
        (Complete
           {
             name = f.f_name;
             start_cycles = f.f_start;
             duration = Cycles.Clock.elapsed_since s.clk f.f_start;
             depth = f.f_depth;
             seq = f.f_seq;
             core = f.f_core;
             args = id_args @ f.f_args @ args;
           })

let with_span s ?args name f =
  enter s ?args name;
  match f () with
  | v ->
      leave s ();
      v
  | exception e ->
      leave s ();
      raise e

let instant s ?(args = []) name =
  let id_args =
    match current_ids s with
    | Some ids -> [ ("trace_id", Tracectx.id_to_string ids.Tracectx.trace_id) ]
    | None -> []
  in
  push_item s
    (Instant
       {
         i_name = name;
         i_at = Cycles.Clock.now s.clk;
         i_depth = List.length s.stack;
         i_seq = fresh_seq s;
         i_core = s.core;
         i_args = id_args @ args;
       })

let item_seq = function Complete sp -> sp.seq | Instant i -> i.i_seq

let items s = List.sort (fun a b -> compare (item_seq a) (item_seq b)) s.finished

let spans s =
  List.filter_map (function Complete sp -> Some sp | Instant _ -> None) (items s)

let depth s = List.length s.stack
let count s = s.n
let dropped s = s.dropped_n

let clear s =
  s.finished <- [];
  s.n <- 0;
  s.dropped_n <- 0
