(** A telemetry hub: one span sink plus one metrics registry, stamped
    from one virtual clock.

    This is the object instrumentation sites share. A {!Wasp.Runtime}
    (and, through it, the pool, the KVM simulation and the serverless
    layer) is given a hub with [Wasp.Runtime.set_telemetry]; exporters
    ({!Chrome}, {!Prometheus}, {!Summary}) read it back out. *)

type t

val create : ?capacity:int -> clock:Cycles.Clock.t -> unit -> t
(** [capacity] bounds the span sink (default 65536 items). The hub MUST
    be created with the clock of the runtime it instruments, or span
    stamps will not line up with charged cycles. *)

val clock : t -> Cycles.Clock.t

val set_clock : t -> Cycles.Clock.t -> unit
(** Retarget the hub (and its span sink) to another clock. Multi-core
    runs switch the hub to the active core's clock on every core switch
    so spans are stamped on the timeline of the core doing the work. *)
val core : t -> int

val set_core : t -> int -> unit
(** Stamp subsequent spans/instants with this core id (see
    {!Span.set_core}); [Kvmsim.Kvm.set_core] calls this together with
    {!set_clock} on every core switch. *)

val spans : t -> Span.sink
val metrics : t -> Metrics.t

(** {1 Trace context} *)

val enable_tracing : t -> seed:int -> unit
(** Attach a fresh {!Tracectx.t} to the span sink: from here on every
    root span starts a trace and nested spans carry
    [trace_id]/[span_id]/[parent_id] args (see {!Span.set_tracer}).
    Same seed, byte-identical ids. {!observe} starts stamping histogram
    exemplars with the active trace id. *)

val tracing_enabled : t -> bool
val current_ids : t -> Tracectx.ids option
val current_trace : t -> int64 option
(** Trace id of the innermost open span ([None] when tracing is off or
    no span is open). *)

(** {1 Span conveniences} *)

val enter : t -> ?args:(string * string) list -> string -> unit
val leave : t -> ?args:(string * string) list -> unit -> unit
val with_span : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
val instant : t -> ?args:(string * string) list -> string -> unit

(** {1 Metric conveniences (find-or-register by name)} *)

val incr : t -> ?by:int -> string -> unit

val observe : t -> string -> int64 -> unit
(** Record into the named histogram; when tracing is on and a span is
    open, the sample carries the active trace id as an exemplar. *)

val set_gauge : t -> string -> float -> unit

val clear_spans : t -> unit
(** Drop retained spans (e.g. between benchmark arms); metrics persist. *)
