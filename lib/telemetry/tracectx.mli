(** Deterministic trace contexts.

    A tracer hands out W3C-style (trace id, span id, parent id) triples
    from its own seeded {!Cycles.Rng} stream: attach one to a
    {!Span.sink} (via {!Span.set_tracer} or {!Hub.enable_tracing}) and
    every span opened while it is active is stamped with a causal
    identity. A root-level span starts a fresh trace; nested spans
    inherit the enclosing trace id and link to their parent's span id.

    Determinism is the point: ids are a pure function of (tracer seed,
    enter order), and the tracer never touches the simulation's RNG, so
    two same-seed runs mint byte-identical ids and a replayed run traces
    identically to the recorded one. *)

type ids = {
  trace_id : int64;   (** shared by every span of one request *)
  span_id : int64;    (** unique per span within the sink *)
  parent_id : int64 option;  (** [None] for a trace root *)
}

type t

val create : seed:int -> t
(** A fresh tracer with its own id stream. Same seed, same ids. *)

val enter : t -> parent:ids option -> ids
(** Mint ids for a span opening under [parent]. [None] starts a new
    trace (fresh trace id, no parent); [Some p] stays in [p]'s trace
    with [parent_id = Some p.span_id]. Ids are never zero. *)

val id_to_string : int64 -> string
(** 16 lowercase hex digits, zero-padded — the form used in span args,
    Prometheus exemplars and flight-ring entries. *)

val id_of_string : string -> int64 option
(** Inverse of {!id_to_string}; [None] on malformed input. *)

val args_of_ids : ids -> (string * string) list
(** [("trace_id", ..); ("span_id", ..)] plus [("parent_id", ..)] when
    the span has a parent — the args stamped onto retained spans. *)
