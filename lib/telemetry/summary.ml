type node = {
  key : string;
  name : string;
  node_depth : int;
  order : int;
  mutable count : int;
  mutable total : int64;
  mutable durs : int64 list;
}

(* Rebuild the span tree from (seq, depth): spans arrive in enter order,
   so a span at depth d is a child of the most recent span at depth d-1. *)
let aggregate spans =
  let tbl : (string, node) Hashtbl.t = Hashtbl.create 32 in
  let parent_of : (string, string option) Hashtbl.t = Hashtbl.create 32 in
  let stack = ref [] in
  List.iter
    (fun (s : Span.span) ->
      let rec trim st = if List.length st > s.Span.depth then trim (List.tl st) else st in
      stack := trim !stack;
      let path = s.Span.name :: !stack in
      let key = String.concat " / " (List.rev path) in
      let parent =
        match !stack with [] -> None | st -> Some (String.concat " / " (List.rev st))
      in
      Hashtbl.replace parent_of key parent;
      (match Hashtbl.find_opt tbl key with
      | Some n ->
          n.count <- n.count + 1;
          n.total <- Int64.add n.total s.Span.duration;
          n.durs <- s.Span.duration :: n.durs
      | None ->
          Hashtbl.add tbl key
            {
              key;
              name = s.Span.name;
              node_depth = s.Span.depth;
              order = s.Span.seq;
              count = 1;
              total = s.Span.duration;
              durs = [ s.Span.duration ];
            });
      stack := path)
    spans;
  let nodes =
    Hashtbl.fold (fun _ n acc -> n :: acc) tbl []
    |> List.sort (fun a b -> compare a.order b.order)
  in
  (nodes, parent_of)

let render ?(title = "Telemetry: where did the cycles go") hub =
  let clk = Hub.clock hub in
  let sink = Hub.spans hub in
  let spans = Span.spans sink in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  if spans = [] then Buffer.add_string buf "(no spans recorded)\n"
  else begin
    let nodes, parent_of = aggregate spans in
    let child_total : (string, int64) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun n ->
        match Hashtbl.find_opt parent_of n.key with
        | Some (Some p) ->
            let prev = Option.value ~default:0L (Hashtbl.find_opt child_total p) in
            Hashtbl.replace child_total p (Int64.add prev n.total)
        | _ -> ())
      nodes;
    let self n =
      Int64.sub n.total (Option.value ~default:0L (Hashtbl.find_opt child_total n.key))
    in
    let wall =
      List.fold_left
        (fun acc n -> if n.node_depth = 0 then Int64.add acc n.total else acc)
        0L nodes
    in
    let pct c =
      if Int64.compare wall 0L <= 0 then "-"
      else Printf.sprintf "%.1f%%" (Int64.to_float c /. Int64.to_float wall *. 100.0)
    in
    let rows =
      List.map
        (fun n ->
          [
            String.make (2 * n.node_depth) ' ' ^ n.name;
            string_of_int n.count;
            Int64.to_string n.total;
            Int64.to_string (self n);
            pct n.total;
            pct (self n);
          ])
        nodes
    in
    Buffer.add_string buf
      (Stats.Report.table
         ~header:[ "span"; "count"; "cycles"; "self"; "% wall"; "% self" ]
         rows);
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Stats.Report.percentile_table ~title:"span latency percentiles" ~unit_label:"us"
         (List.map
            (fun n ->
              ( String.make (2 * n.node_depth) ' ' ^ n.name,
                Array.of_list (List.rev_map (fun c -> Cycles.Clock.to_us clk c) n.durs) ))
            nodes));
    if Span.dropped sink > 0 then
      Buffer.add_string buf
        (Printf.sprintf "(%d items dropped at sink capacity)\n" (Span.dropped sink))
  end;
  (match Metrics.find (Hub.metrics hub) "wasp_invocation_cycles" with
  | Some (Metrics.Histogram h) when h.Metrics.h_count > 0 ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Stats.Report.histogram ~title:"invocation latency distribution (cycles, log2 buckets)"
           (List.map
              (fun (lo, hi, c) -> (Printf.sprintf "[%Ld, %Ld)" lo hi, c))
              (Metrics.nonempty_buckets h)))
  | _ -> ());
  Buffer.contents buf
