(** Prometheus text-format exporter.

    Renders a metrics registry in the plain-text exposition format:
    [# HELP] / [# TYPE] preambles, counters and gauges as single samples,
    histograms as cumulative [_bucket{le="..."}] series plus [_sum] and
    [_count]. Metrics appear in registration order, so output is
    deterministic. *)

val to_text : Metrics.t -> string
