(** ASCII "where did the cycles go" summary.

    Reconstructs the span tree from a hub's sink, aggregates by call
    path, and renders (via {!Stats.Report}):

    - a flame-style table — one row per path, indented by depth, with
      invocation count, total cycles, self cycles (total minus children)
      and the share of root wall time;
    - per-path latency percentiles (p50/p90/p99, microseconds);
    - the log2-bucket distribution of [wasp_invocation_cycles] when that
      histogram is populated. *)

val render : ?title:string -> Hub.t -> string
