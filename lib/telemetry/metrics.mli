(** Metrics registry: named counters, gauges and log-bucketed cycle
    histograms.

    Registration is idempotent — asking for a counter that already exists
    returns the existing one — so instrumentation sites can look metrics
    up by name without threading handles around. Histograms bucket values
    by powers of two (bucket 0 holds zeros, bucket [i >= 1] holds
    [[2^(i-1), 2^i)]) and answer percentile queries by linear
    interpolation within the crossing bucket, clamped to the observed
    min/max — exact for constant inputs and deterministic always. *)

type counter = private {
  c_name : string;
  c_help : string;
  c_labels : (string * string) list;  (** Prometheus-style label set; [[]] = plain *)
  mutable c_value : int;
  c_bad : int ref;  (** the owning registry's shared bad-sample tally *)
}

type gauge = private {
  g_name : string;
  g_help : string;
  g_labels : (string * string) list;
  mutable g_value : float;
  g_bad : int ref;
}

type exemplar = { e_trace : string; e_value : int64 }
(** Last traced observation to land in a bucket: the trace id (16 hex
    digits) and the observed value — what the Prometheus exporter renders
    as an OpenMetrics [# {trace_id="..."} value] suffix. *)

type histogram = private {
  h_name : string;
  h_help : string;
  h_labels : (string * string) list;
  h_buckets : int array;   (** 63 log2 buckets *)
  h_exemplars : exemplar option array;  (** per-bucket, newest wins *)
  mutable h_count : int;
  mutable h_sum : int64;
  mutable h_min : int64;
  mutable h_max : int64;
  h_bad : int ref;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Find-or-register. Each distinct (name, labels) pair is its own
    series: [counter t ~labels:["fn", "main"] "cycles"] and
    [counter t ~labels:["fn", "fib"] "cycles"] are independent counters
    under one exported metric family. {!find} by bare name only sees the
    unlabeled series. @raise Invalid_argument if the identity is already
    a different kind of metric. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram : t -> ?help:string -> ?labels:(string * string) list -> string -> histogram
(** Find-or-register, with the same per-series (name, labels) identity
    as {!counter}: each labeled series keeps its own buckets, exported
    under one family with the series labels merged into the [le]
    label set. *)

val incr : ?by:int -> counter -> unit
(** Counters are monotone: a negative [by] is rejected (the value is
    unchanged) and counted as a bad sample. *)

val set : gauge -> float -> unit
(** A NaN value is rejected — the gauge keeps its last good value — and
    counted as a bad sample. *)

val observe : ?exemplar:string -> histogram -> int64 -> unit
(** Record one sample. A negative value clamps to 0 and is counted as a
    bad sample. [exemplar] is the active trace id; when given, it
    replaces the landing bucket's exemplar so every bucket remembers its
    most recent traced sample. *)

val bad_samples : t -> int
(** Samples rejected so far (negative counter increments, NaN gauge
    values, negative observations). Once nonzero, the registry exports a
    [telemetry_bad_samples_total] counter carrying this tally; it is
    materialized on the first {!find}/{!to_list} after a rejection so a
    clean run's exposition is unchanged. *)

val percentile : histogram -> float -> float
(** [percentile h p] with [p] in [0,100]; 0.0 on an empty histogram.
    @raise Invalid_argument if [p] is outside [0,100]. *)

val bucket_index : int64 -> int
(** The bucket a value lands in. *)

val bucket_bounds : int -> int64 * int64
(** [(lo, hi)] of bucket [i]: values [v] with [lo <= v < hi]. *)

val nonempty_buckets : histogram -> (int64 * int64 * int) list
(** [(lo, hi, count)] for each occupied bucket, ascending. *)

val cumulative_buckets : histogram -> (int64 * int) list
(** [(upper_bound, cumulative_count)] per occupied bucket, ascending —
    the Prometheus [le] series. *)

val bucket_exemplars : histogram -> (int64 * exemplar) list
(** [(upper_bound, exemplar)] for each occupied bucket holding one,
    ascending; upper bounds match {!cumulative_buckets}. *)

val find : t -> string -> metric option

val to_list : t -> metric list
(** All metrics in stable first-registration order (re-registration
    never reorders), so exposition is deterministic across runs. *)
