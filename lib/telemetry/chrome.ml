let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) args)
  ^ "}"

(* Each simulated core becomes its own thread track: tid = core + 1
   (Chrome treats tid 0 oddly, so core 0 maps to tid 1). *)
let tid_of_core core = core + 1

(* When tracing is on, a child span that opened on a different core than
   its parent gets a flow start/finish pair so Perfetto draws the causal
   arrow across thread tracks. Flows are keyed by the child's span id,
   which the tracer guarantees unique. *)
let flows items =
  let spans =
    List.filter_map (function Span.Complete s -> Some s | Span.Instant _ -> None) items
  in
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match List.assoc_opt "span_id" s.Span.args with
      | Some id -> Hashtbl.replace by_id id s
      | None -> ())
    spans;
  List.filter_map
    (fun s ->
      match
        (List.assoc_opt "parent_id" s.Span.args, List.assoc_opt "span_id" s.Span.args)
      with
      | Some pid, Some sid -> (
          match Hashtbl.find_opt by_id pid with
          | Some p when p.Span.core <> s.Span.core -> Some (p, s, sid)
          | _ -> None)
      | _ -> None)
    spans

let to_json ?(process = "wasp") hub =
  let clk = Hub.clock hub in
  let us c = Cycles.Clock.to_us clk c in
  let items = Span.items (Hub.spans hub) in
  let cores =
    List.sort_uniq compare
      (List.map
         (function Span.Complete s -> s.Span.core | Span.Instant i -> i.i_core)
         items)
  in
  let cores = if cores = [] then [ 0 ] else cores in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"%s\"}}"
       (escape process));
  List.iter
    (fun core ->
      Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"core %d\"}}"
           (tid_of_core core) core))
    cores;
  List.iter
    (fun item ->
      Buffer.add_char buf ',';
      match item with
      | Span.Complete s ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"wasp\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":%s}"
               (escape s.Span.name) (us s.Span.start_cycles) (us s.Span.duration)
               (tid_of_core s.Span.core)
               (args_json (("cycles", Int64.to_string s.Span.duration) :: s.Span.args)))
      | Span.Instant i ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"wasp\",\"ph\":\"i\",\"ts\":%.3f,\"s\":\"t\",\"pid\":1,\"tid\":%d,\"args\":%s}"
               (escape i.i_name) (us i.i_at) (tid_of_core i.i_core) (args_json i.i_args)))
    items;
  List.iter
    (fun (p, s, sid) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"trace\",\"cat\":\"wasp.flow\",\"ph\":\"s\",\"id\":\"0x%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
           (escape sid) (us p.Span.start_cycles) (tid_of_core p.Span.core));
      Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"trace\",\"cat\":\"wasp.flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":\"0x%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
           (escape sid) (us s.Span.start_cycles) (tid_of_core s.Span.core)))
    (flows items);
  Buffer.add_string buf "]}";
  Buffer.contents buf
