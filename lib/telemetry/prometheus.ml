(* Prometheus text exposition (version 0.0.4). Label values are escaped
   per the spec: backslash, double-quote and newline each get a
   backslash prefix (newline becomes backslash-n). HELP/TYPE preambles
   are emitted once per metric family, so many labeled series of one
   family share a single preamble. *)

let escape_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* HELP strings escape only backslash and newline (quotes are legal). *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let to_text registry =
  let buf = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  let preamble name help kind =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun metric ->
      match metric with
      | Metrics.Counter c ->
          preamble c.Metrics.c_name c.Metrics.c_help "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" c.Metrics.c_name
               (render_labels c.Metrics.c_labels)
               c.Metrics.c_value)
      | Metrics.Gauge g ->
          preamble g.Metrics.g_name g.Metrics.g_help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %g\n" g.Metrics.g_name
               (render_labels g.Metrics.g_labels)
               g.Metrics.g_value)
      | Metrics.Histogram h ->
          preamble h.Metrics.h_name h.Metrics.h_help "histogram";
          (* The family's own labels are merged with [le] on every bucket
             line; a bucket whose last traced sample is known gets an
             OpenMetrics exemplar suffix linking it to that trace. *)
          let fam = h.Metrics.h_labels in
          let exemplars = Metrics.bucket_exemplars h in
          List.iter
            (fun (le, cum) ->
              let labels = fam @ [ ("le", Int64.to_string le) ] in
              let suffix =
                match List.assoc_opt le exemplars with
                | Some e ->
                    Printf.sprintf " # {trace_id=\"%s\"} %Ld" e.Metrics.e_trace
                      e.Metrics.e_value
                | None -> ""
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d%s\n" h.Metrics.h_name
                   (render_labels labels) cum suffix))
            (Metrics.cumulative_buckets h);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" h.Metrics.h_name
               (render_labels (fam @ [ ("le", "+Inf") ]))
               h.Metrics.h_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %Ld\n" h.Metrics.h_name (render_labels fam)
               h.Metrics.h_sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" h.Metrics.h_name (render_labels fam)
               h.Metrics.h_count))
    (Metrics.to_list registry);
  Buffer.contents buf
