let to_text registry =
  let buf = Buffer.create 1024 in
  let preamble name help kind =
    if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun metric ->
      match metric with
      | Metrics.Counter c ->
          preamble c.Metrics.c_name c.Metrics.c_help "counter";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" c.Metrics.c_name c.Metrics.c_value)
      | Metrics.Gauge g ->
          preamble g.Metrics.g_name g.Metrics.g_help "gauge";
          Buffer.add_string buf (Printf.sprintf "%s %g\n" g.Metrics.g_name g.Metrics.g_value)
      | Metrics.Histogram h ->
          preamble h.Metrics.h_name h.Metrics.h_help "histogram";
          List.iter
            (fun (le, cum) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%Ld\"} %d\n" h.Metrics.h_name le cum))
            (Metrics.cumulative_buckets h);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" h.Metrics.h_name h.Metrics.h_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %Ld\n" h.Metrics.h_name h.Metrics.h_sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" h.Metrics.h_name h.Metrics.h_count))
    (Metrics.to_list registry);
  Buffer.contents buf
