(* Multi-window, multi-burn-rate SLO evaluation on the virtual clock.

   An objective declares what fraction of events must be good over a
   rolling period; burn rate is the ratio of the observed bad fraction
   to the error budget (1 - target). A burn rate of 1.0 spends the
   budget exactly over the period; the classic alerting rules page when
   a large fraction of the budget burns in a small window, confirmed by
   a short window so alerts clear promptly once the storm passes. All
   windows are virtual-time cycle spans, so a chaos run alerts
   identically on every replay. *)

type rule = {
  rule_name : string;
  long_window : int64;
  short_window : int64;
  burn_threshold : float;
}

type objective = Availability | Latency_under of int64

type rule_state = {
  rule : rule;
  mutable active : bool;
  mutable peak_burn : float;
}

type t = {
  hub : Hub.t;
  name : string;
  target : float;
  objective : objective;
  rules : rule_state list;
  horizon : int64;
  mutable events : (int64 * bool) list; (* newest first *)
  mutable newest : int64;
  mutable good_n : int;
  mutable bad_n : int;
  mutable fired_n : int;
  mutable cleared_n : int;
}

(* The SRE-book pair: the fast rule fires when ~5% of the budget burns
   in period/100 (burn 5x), the slow rule when ~10% burns in period/20
   (burn 2x). Each is confirmed by a short window 1/12 its size. *)
let default_rules ~period =
  let div d =
    let w = Int64.div period (Int64.of_int d) in
    if Int64.compare w 1L < 0 then 1L else w
  in
  [
    { rule_name = "fast"; long_window = div 100; short_window = div 1200; burn_threshold = 5.0 };
    { rule_name = "slow"; long_window = div 20; short_window = div 240; burn_threshold = 2.0 };
  ]

let create ~hub ~name ?(objective = Availability) ~target ?rules ~period () =
  if not (target > 0.0 && target < 1.0) then
    invalid_arg "Slo.create: target must be inside (0, 1)";
  if Int64.compare period 1L < 0 then invalid_arg "Slo.create: period must be >= 1";
  let rules = match rules with Some r -> r | None -> default_rules ~period in
  if rules = [] then invalid_arg "Slo.create: no rules";
  List.iter
    (fun r ->
      if Int64.compare r.long_window r.short_window < 0 then
        invalid_arg ("Slo.create: short window exceeds long window in rule " ^ r.rule_name))
    rules;
  let horizon =
    List.fold_left
      (fun acc r -> if Int64.compare r.long_window acc > 0 then r.long_window else acc)
      1L rules
  in
  let t =
    {
      hub;
      name;
      target;
      objective;
      rules = List.map (fun r -> { rule = r; active = false; peak_burn = 0.0 }) rules;
      horizon;
      events = [];
      newest = 0L;
      good_n = 0;
      bad_n = 0;
      fired_n = 0;
      cleared_n = 0;
    }
  in
  let m = Hub.metrics hub in
  Metrics.set
    (Metrics.gauge m ~help:"declared SLO target" ~labels:[ ("slo", name) ] "slo_objective")
    target;
  t

let name t = t.name
let target t = t.target
let objective t = t.objective
let error_budget t = 1.0 -. t.target

let in_window t w stamp = Int64.compare stamp (Int64.sub t.newest w) >= 0

let burn_over t w =
  let total = ref 0 and bad = ref 0 in
  List.iter
    (fun (stamp, good) ->
      if in_window t w stamp then begin
        incr total;
        if not good then incr bad
      end)
    t.events;
  if !total = 0 then 0.0
  else float_of_int !bad /. float_of_int !total /. error_budget t

let sgauge t ~rule name v =
  Metrics.set
    (Metrics.gauge (Hub.metrics t.hub) ~labels:[ ("slo", t.name); ("rule", rule) ] name)
    v

let sincr t ?rule name =
  let labels =
    ("slo", t.name) :: (match rule with Some r -> [ ("rule", r) ] | None -> [])
  in
  Metrics.incr (Metrics.counter (Hub.metrics t.hub) ~labels name)

let evaluate t =
  List.iter
    (fun rs ->
      let bl = burn_over t rs.rule.long_window in
      let bs = burn_over t rs.rule.short_window in
      if bl > rs.peak_burn then rs.peak_burn <- bl;
      sgauge t ~rule:rs.rule.rule_name "slo_burn_rate" bl;
      let firing = bl >= rs.rule.burn_threshold && bs >= rs.rule.burn_threshold in
      let alert state =
        Hub.instant t.hub
          ~args:
            [
              ("slo", t.name);
              ("rule", rs.rule.rule_name);
              ("state", state);
              ("burn_long", Printf.sprintf "%.2f" bl);
              ("burn_short", Printf.sprintf "%.2f" bs);
            ]
          "slo_alert"
      in
      if firing && not rs.active then begin
        rs.active <- true;
        t.fired_n <- t.fired_n + 1;
        sincr t ~rule:rs.rule.rule_name "slo_alerts_fired_total";
        alert "firing"
      end
      else if (not firing) && rs.active then begin
        rs.active <- false;
        t.cleared_n <- t.cleared_n + 1;
        sincr t ~rule:rs.rule.rule_name "slo_alerts_cleared_total";
        alert "cleared"
      end;
      sgauge t ~rule:rs.rule.rule_name "slo_alert_active" (if rs.active then 1.0 else 0.0))
    t.rules

let record t ~good =
  let stamp = Cycles.Clock.now (Hub.clock t.hub) in
  if Int64.compare stamp t.newest > 0 then t.newest <- stamp;
  t.events <- (stamp, good) :: t.events;
  if good then t.good_n <- t.good_n + 1 else t.bad_n <- t.bad_n + 1;
  sincr t "slo_events_total";
  if not good then sincr t "slo_bad_events_total";
  let cutoff = Int64.sub t.newest t.horizon in
  t.events <- List.filter (fun (s, _) -> Int64.compare s cutoff >= 0) t.events;
  evaluate t

let record_latency t cycles =
  match t.objective with
  | Latency_under threshold -> record t ~good:(Int64.compare cycles threshold <= 0)
  | Availability ->
      invalid_arg "Slo.record_latency: objective is availability, use record"

let alerting t = List.exists (fun rs -> rs.active) t.rules

let rule_alerting t ~rule =
  List.exists (fun rs -> rs.rule.rule_name = rule && rs.active) t.rules

let burn_rate t ~rule =
  match List.find_opt (fun rs -> rs.rule.rule_name = rule) t.rules with
  | None -> invalid_arg ("Slo.burn_rate: unknown rule " ^ rule)
  | Some rs -> (burn_over t rs.rule.long_window, burn_over t rs.rule.short_window)

let peak_burn t =
  List.fold_left (fun acc rs -> Float.max acc rs.peak_burn) 0.0 t.rules

let alerts_fired t = t.fired_n
let alerts_cleared t = t.cleared_n
let good_count t = t.good_n
let bad_count t = t.bad_n

let compliance t =
  let total = t.good_n + t.bad_n in
  if total = 0 then 1.0 else float_of_int t.good_n /. float_of_int total

let met t = compliance t >= t.target
