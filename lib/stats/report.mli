(** ASCII report rendering for benchmark output.

    The bench harness regenerates every paper table/figure as text; this
    module renders aligned tables and simple horizontal bar charts so the
    "shape" of each figure is visible in a terminal. *)

type align = Left | Right

val table :
  ?title:string -> header:string list -> ?align:align list -> string list list -> string
(** [table ~header rows] renders an aligned table. [align] defaults to
    left for the first column and right for the rest. Row widths must
    match the header. *)

val bar_chart :
  ?title:string -> ?width:int -> ?log:bool -> (string * float) list -> string
(** [bar_chart entries] renders labeled horizontal bars scaled to the
    maximum value. [log] plots log10 of the values (all must be > 0),
    mirroring the paper's log-scale axes. *)

val series :
  ?title:string -> header:string list -> (float * float list) list -> string
(** [series ~header points] renders an x column plus one column per series
    value, for figure-style line data. *)

val percentile_table :
  ?title:string ->
  ?unit_label:string ->
  ?slo:(string * float) list ->
  (string * float array) list ->
  string
(** [percentile_table rows] renders one row per labeled sample set with
    n, p50, p90, p99, p99.9 and max columns (linear-interpolated
    percentiles via {!Descriptive.percentile}). [unit_label] annotates
    the value columns, e.g. ["us"]. Empty sample sets render as dashes.
    [slo] maps row labels to p99 targets (same unit as the samples):
    when given, two extra columns show each row's target and a
    met/MISSED verdict (dashes for rows without a target). *)

val histogram : ?title:string -> ?width:int -> (string * int) list -> string
(** [histogram entries] renders labeled integer counts as horizontal bars
    scaled to the largest count — used for bucketed latency
    distributions. *)

val section : string -> string
(** A visually distinct section banner. *)
