type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let table ?title ~header ?align rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Report.table: row width mismatch")
    rows;
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a ->
        if List.length a <> ncols then invalid_arg "Report.table: align width mismatch";
        a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let render_row row =
    let cells =
      List.mapi (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell) row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule = "|" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|" in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let bar_chart ?title ?(width = 50) ?(log = false) entries =
  let value (_, v) =
    if log then begin
      if v <= 0.0 then invalid_arg "Report.bar_chart: log of nonpositive value";
      log10 v
    end
    else v
  in
  let vmax = List.fold_left (fun acc e -> max acc (value e)) 0.0 entries in
  let label_w = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  List.iter
    (fun ((label, raw) as e) ->
      let v = value e in
      let n =
        if vmax <= 0.0 then 0 else max 1 (int_of_float (v /. vmax *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s %.1f\n" (pad Left label_w label) (String.make n '#') raw))
    entries;
  Buffer.contents buf

let series ?title ~header points =
  let rows =
    List.map
      (fun (x, ys) -> Printf.sprintf "%.2f" x :: List.map (Printf.sprintf "%.2f") ys)
      points
  in
  table ?title ~header rows

let percentile_table ?title ?(unit_label = "") ?slo rows =
  let u = if unit_label = "" then "" else Printf.sprintf " (%s)" unit_label in
  let slo_header = match slo with None -> [] | Some _ -> [ "slo p99" ^ u; "slo" ] in
  let header =
    [ "label"; "n"; "p50" ^ u; "p90" ^ u; "p99" ^ u; "p99.9" ^ u; "max" ^ u ]
    @ slo_header
  in
  let fmt v = Printf.sprintf "%.2f" v in
  (* Verdict against the row's declared p99 target; rows without a
     target (or without samples) show a dash. *)
  let verdict label xs =
    match slo with
    | None -> []
    | Some targets -> (
        match List.assoc_opt label targets with
        | None -> [ "-"; "-" ]
        | Some target ->
            if Array.length xs = 0 then [ fmt target; "-" ]
            else if Descriptive.percentile xs 99.0 <= target then [ fmt target; "met" ]
            else [ fmt target; "MISSED" ])
  in
  let body =
    List.map
      (fun (label, xs) ->
        if Array.length xs = 0 then
          [ label; "0"; "-"; "-"; "-"; "-"; "-" ] @ verdict label xs
        else
          [
            label;
            string_of_int (Array.length xs);
            fmt (Descriptive.percentile xs 50.0);
            fmt (Descriptive.percentile xs 90.0);
            fmt (Descriptive.percentile xs 99.0);
            fmt (Descriptive.percentile xs 99.9);
            fmt (Descriptive.maximum xs);
          ]
          @ verdict label xs)
      rows
  in
  table ?title ~header body

let histogram ?title ?(width = 50) entries =
  let cmax = List.fold_left (fun acc (_, c) -> max acc c) 0 entries in
  let label_w = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries in
  let count_w =
    List.fold_left (fun acc (_, c) -> max acc (String.length (string_of_int c))) 0 entries
  in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  List.iter
    (fun (label, count) ->
      let n =
        if cmax <= 0 || count <= 0 then 0
        else max 1 (count * width / cmax)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s\n" (pad Left label_w label)
           (pad Right count_w (string_of_int count))
           (String.make n '#')))
    entries;
  Buffer.contents buf

let section name =
  let bar = String.make (String.length name + 8) '=' in
  Printf.sprintf "\n%s\n=== %s ===\n%s\n" bar name bar
