let base64_js_source =
  {|
var chars = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
function encode(data) {
  var out = "";
  var i = 0;
  var n = data.length;
  while (i + 2 < n) {
    var b0 = data[i];
    var b1 = data[i + 1];
    var b2 = data[i + 2];
    out += chars.charAt(b0 >> 2);
    out += chars.charAt(((b0 & 3) << 4) | (b1 >> 4));
    out += chars.charAt(((b1 & 15) << 2) | (b2 >> 6));
    out += chars.charAt(b2 & 63);
    i += 3;
  }
  var rem = n - i;
  if (rem === 1) {
    var c0 = data[i];
    out += chars.charAt(c0 >> 2);
    out += chars.charAt((c0 & 3) << 4);
    out += "==";
  } else if (rem === 2) {
    var d0 = data[i];
    var d1 = data[i + 1];
    out += chars.charAt(d0 >> 2);
    out += chars.charAt(((d0 & 3) << 4) | (d1 >> 4));
    out += chars.charAt((d1 & 15) << 2);
    out += "=";
  }
  return out;
}
|}

let make_input ~size =
  let rng = Cycles.Rng.create ~seed:0xB64 in
  Bytes.init size (fun _ -> Char.chr (Cycles.Rng.int rng 256))

let reference_encode b = Vcrypto.Base64.encode (Bytes.to_string b)

type outcome = { latency_cycles : int64; output : string }

let data_value input =
  Jsvalue.Arr
    (Jsvalue.vec_of_list
       (List.init (Bytes.length input) (fun i ->
            Jsvalue.Num (float_of_int (Char.code (Bytes.get input i))))))

let encode_with engine input =
  match Engine.call engine "encode" [ data_value input ] with
  | Ok (Jsvalue.Str s) -> s
  | Ok v -> failwith ("encode returned non-string: " ^ Jsvalue.to_string v)
  | Error e -> failwith ("js error: " ^ e)

let run_baseline ~clock ~input =
  let start = Cycles.Clock.now clock in
  let charge c = Cycles.Clock.advance_int clock c in
  let engine = Engine.create ~charge () in
  (match Engine.eval engine base64_js_source with
  | Ok _ -> ()
  | Error e -> failwith ("js error: " ^ e));
  let output = encode_with engine input in
  Engine.destroy engine;
  { latency_cycles = Cycles.Clock.elapsed_since clock start; output }

(* engine heap arena: Duktape keeps its context in ~48 KB of heap, which
   is what the snapshot must capture and restore *)
let arena_bytes = 48 * 1024

type Wasp.Univ.t += Js_engine of Engine.t

let policy =
  Wasp.Policy.of_list [ Wasp.Hc.snapshot; Wasp.Hc.get_data; Wasp.Hc.return_data ]

let run_virtine w ~input ~snapshot ~teardown ~key =
  let module N = Wasp.Runtime.Native_ctx in
  let result =
    Wasp.Runtime.run_native w ~name:"js-base64" ~mem_size:(128 * 1024) ~policy ~input
      ?snapshot_key:(if snapshot then Some key else None)
      ~body:(fun ctx ~restored ->
        let charge c = N.charge ctx c in
        (* Cold path: the snapshot capture and the input fetch share one
           crossing via [hypercall_batch]; the warm path pays a single
           [get_data] round trip. *)
        let snapshot_pending = ref false in
        let engine =
          match restored with
          | Some (Js_engine e) ->
              Engine.set_charge e charge;
              e
          | Some _ | None ->
              (* boot path: allocate the engine context inside guest
                 memory (the arena), bind natives, load the UDF *)
              let arena = N.alloc ctx arena_bytes in
              let mem = N.mem ctx in
              (* touch the arena so the snapshot captures a real footprint *)
              for i = 0 to (arena_bytes / 256) - 1 do
                Vm.Memory.write_u8 mem (arena + (i * 256)) 0xDA
              done;
              let e = Engine.create ~charge () in
              (match Engine.eval e base64_js_source with
              | Ok _ -> ()
              | Error err -> failwith ("js error: " ^ err));
              if snapshot then begin
                (* the restore path rebuilds the same engine state from
                   the memory image; the rebuild itself is free because
                   the restore memcpy is what is charged *)
                N.offer_snapshot_state ctx (fun () ->
                    let fresh = Engine.create ~charge:(fun _ -> ()) () in
                    (match Engine.eval fresh base64_js_source with
                    | Ok _ -> ()
                    | Error err -> failwith ("js error: " ^ err));
                    Js_engine fresh);
                snapshot_pending := true
              end;
              e
        in
        (* pull the input through the only data channel *)
        let buf = N.alloc ctx (Bytes.length input) in
        let get_args = [| Int64.of_int buf; Int64.of_int (Bytes.length input) |] in
        let n =
          if !snapshot_pending then
            match
              N.hypercall_batch ctx
                [ (Wasp.Hc.snapshot, [||]); (Wasp.Hc.get_data, get_args) ]
            with
            | [ _; n ] -> n
            | _ -> Wasp.Hc.err_inval
          else N.hypercall ctx Wasp.Hc.get_data get_args
        in
        let mem = N.mem ctx in
        let data = Vm.Memory.read_bytes mem ~off:buf ~len:(Int64.to_int n) in
        let out = encode_with engine data in
        (* publish and exit *)
        let out_addr = N.alloc ctx (String.length out) in
        Vm.Memory.write_bytes mem ~off:out_addr (Bytes.of_string out);
        ignore
          (N.hypercall ctx Wasp.Hc.return_data
             [| Int64.of_int out_addr; Int64.of_int (String.length out) |]);
        if teardown then Engine.destroy engine;
        0L)
      ()
  in
  let output =
    match result.Wasp.Runtime.output with
    | Some b -> Bytes.to_string b
    | None -> failwith "virtine produced no output"
  in
  { latency_cycles = result.Wasp.Runtime.cycles; output }
