type t = {
  wasp : Wasp.Runtime.t;
  isolate_key : string;
  isolate_source : string;
  isolate_entry : string;
}

type Wasp.Univ.t += Isolate_engine of Engine.t

let arena_bytes = 48 * 1024

let policy =
  Wasp.Policy.of_list [ Wasp.Hc.snapshot; Wasp.Hc.get_data; Wasp.Hc.return_data ]

let create wasp ~key ~source ~entry =
  { wasp; isolate_key = key; isolate_source = source; isolate_entry = entry }

let key t = t.isolate_key
let source t = t.isolate_source
let entry t = t.isolate_entry

(* Run one invocation. [decode] turns the guest-side input bytes into the
   engine-call arguments (charging guest cycles for the decode); [encode]
   turns the result value into output bytes. *)
let run t ~input ~decode ~encode =
  let module N = Wasp.Runtime.Native_ctx in
  let error = ref None in
  let result =
    Wasp.Runtime.run_native t.wasp ~name:("isolate:" ^ t.isolate_key)
      ~mem_size:(128 * 1024) ~policy ~input ~snapshot_key:t.isolate_key
      ~body:(fun ctx ~restored ->
        let charge c = N.charge ctx c in
        let build ~charged =
          let e = Engine.create ~charge:(if charged then charge else fun _ -> ()) () in
          match Engine.eval e t.isolate_source with
          | Ok _ -> Ok e
          | Error msg -> Error msg
        in
        (* On the cold path the snapshot capture and the input fetch ride
           one crossing (the native analogue of the guest hypercall ring);
           warm invocations only ever need the [get_data]. *)
        let snapshot_pending = ref false in
        let engine =
          match restored with
          | Some (Isolate_engine e) ->
              Engine.set_charge e charge;
              Ok e
          | Some _ | None -> (
              let arena = N.alloc ctx arena_bytes in
              let mem = N.mem ctx in
              for i = 0 to (arena_bytes / 256) - 1 do
                Vm.Memory.write_u8 mem (arena + (i * 256)) 0x15
              done;
              match build ~charged:true with
              | Error msg -> Error msg
              | Ok e ->
                  N.offer_snapshot_state ctx (fun () ->
                      match build ~charged:false with
                      | Ok fresh -> Isolate_engine fresh
                      | Error msg -> failwith msg);
                  snapshot_pending := true;
                  Ok e)
        in
        match engine with
        | Error msg ->
            error := Some msg;
            -1L
        | Ok engine -> (
            (* pull the input through the data channel *)
            let buf = N.alloc ctx (max 8 (Bytes.length input)) in
            let get_args =
              [| Int64.of_int buf; Int64.of_int (Bytes.length input) |]
            in
            let n =
              if !snapshot_pending then
                match
                  N.hypercall_batch ctx
                    [ (Wasp.Hc.snapshot, [||]); (Wasp.Hc.get_data, get_args) ]
                with
                | [ _; n ] -> n
                | _ -> Wasp.Hc.err_inval
              else N.hypercall ctx Wasp.Hc.get_data get_args
            in
            let mem = N.mem ctx in
            let data = Vm.Memory.read_bytes mem ~off:buf ~len:(Int64.to_int n) in
            match decode ~charge data with
            | Error msg ->
                error := Some msg;
                -1L
            | Ok args -> (
                match Engine.call engine t.isolate_entry args with
                | Error msg ->
                    error := Some msg;
                    -1L
                | Ok v ->
                    let out = encode v in
                    let out_addr = N.alloc ctx (max 8 (String.length out)) in
                    Vm.Memory.write_bytes mem ~off:out_addr (Bytes.of_string out);
                    N.hypercall ctx Wasp.Hc.return_data
                      [| Int64.of_int out_addr; Int64.of_int (String.length out) |])))
      ()
  in
  let outcome =
    match !error with
    | Some msg -> Error msg
    | None -> (
        match result.Wasp.Runtime.output with
        | Some b -> Ok (Bytes.to_string b)
        | None -> Error "no output")
  in
  (outcome, result.Wasp.Runtime.cycles)

let invoke t ~input =
  let decode ~charge data =
    charge (Bytes.length data * 2);
    Ok
      [
        Jsvalue.Arr
          (Jsvalue.vec_of_list
             (List.init (Bytes.length data) (fun i ->
                  Jsvalue.Num (float_of_int (Char.code (Bytes.get data i))))));
      ]
  in
  let encode v = Jsvalue.to_string v in
  run t ~input ~decode ~encode

let call_json t args =
  let payload = Json.stringify (Jsvalue.Arr (Jsvalue.vec_of_list args)) in
  let decode ~charge data =
    (* parsing the argument JSON is guest work *)
    charge (Bytes.length data * 8);
    match Json.parse (Bytes.to_string data) with
    | Jsvalue.Arr v -> Ok (Jsvalue.vec_to_list v)
    | _ -> Error "malformed argument payload"
    | exception Jsvalue.Js_error msg -> Error msg
  in
  let encode v = Json.stringify v in
  let outcome, cycles = run t ~input:(Bytes.of_string payload) ~decode ~encode in
  match outcome with
  | Error msg -> (Error msg, cycles)
  | Ok json -> (
      match Json.parse json with
      | v -> (Ok v, cycles)
      | exception Jsvalue.Js_error msg -> (Error msg, cycles))
