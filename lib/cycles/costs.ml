let alu = 1
let mul = 3
let div = 20
let mem = 4
let mem_cold = 50
let branch = 1
let call = 2
let rdtsc = 30

let protected_transition = 3217
let long_transition = 681
let ljmp32 = 175
let ljmp64 = 190
let lgdt32 = 4118
let first_instruction = 74
let ept_build = 2100

let ioctl_syscall = 1400
let kvm_run_checks = 1100
let vmentry = 3200
let vmexit = 3800

let vmrun_total = ioctl_syscall + kvm_run_checks + vmentry + vmexit

let kvm_create_vm = 210_000
let kvm_create_vcpu = 60_000
let kvm_memory_region = 18_000

let function_call = 10
let pthread_spawn_join = 30_000
let process_spawn = 1_300_000

let sgx_ecreate = 270_000
let sgx_eadd_page = 7_500
let sgx_einit = 1_600_000
let sgx_ecall = 13_500

let memcpy_cycles_per_byte = 2.69 /. 6.7
let memset_cycles_per_byte = 2.69 /. 11.0

let memcpy_cost bytes = int_of_float (float_of_int bytes *. memcpy_cycles_per_byte)
let memset_cost bytes = int_of_float (float_of_int bytes *. memset_cycles_per_byte)

let cow_page_fault = 450

let ept_violation = 2400
let ept_map_page = 210
let ept_root_swap = 850

let hypercall_guest_side = 150
let hypercall_dispatch = 400
let hypercall_round_trip = vmexit + ioctl_syscall + hypercall_dispatch + kvm_run_checks + vmentry

let host_read = 1_200
let host_write = 1_100
let host_open = 2_500
let host_close = 700
let host_stat = 900
let host_send = 55_000
let host_recv = 62_000

let jitter rng ~pct c =
  if c = 0 then 0
  else begin
    let sigma = pct in
    let factor = Rng.lognormal rng ~mu:(-.(sigma *. sigma) /. 2.0) ~sigma in
    max 0 (int_of_float (float_of_int c *. factor))
  end

let jitter_pos rng ~pct c =
  if c = 0 then 0
  else c + int_of_float (float_of_int c *. pct *. abs_float (Rng.gaussian rng))

let scheduler_outlier rng =
  (* ~0.5% of trials hit a host scheduling event of 50-500 us. *)
  if Rng.float rng < 0.005 then Some (135_000 + Rng.int rng 1_200_000) else None
