(** Deterministic fault-injection plans.

    A plan names {e sites} — places in the simulated virtualization stack
    where something can go wrong (a spurious VM exit, a failed
    [KVM_CREATE_VM], a corrupted snapshot page) — and arms each with a
    trigger. Consumers ask {!fires} once per {e opportunity} (each
    [KVM_RUN], each VM creation, each snapshot restore); the plan answers
    deterministically:

    - {!Prob} sites draw from a per-site RNG stream derived from the plan
      seed, so two plans with equal seeds fire identically and adding a
      site never perturbs another site's stream;
    - {!Every} sites fire on a fixed schedule of opportunity indices,
      with no randomness at all.

    Because every decision is a pure function of (seed, site, opportunity
    index), a chaos run is replayable: re-arm an identical plan (same
    seed, same sites — see {!copy} or {!of_string}) and the same faults
    fire at the same points, cycle for cycle. *)

type trigger =
  | Prob of float
      (** Fire each opportunity with this probability (in [0, 1]),
          drawn from the site's own seeded stream. *)
  | Every of { start : int; interval : int }
      (** Fire at 0-based opportunity indices [start], [start+interval],
          [start+2*interval], ... ([interval = 0] fires once, at
          [start]). *)

type t

val create : ?seed:int -> (string * trigger) list -> t
(** A fresh, armed plan. [seed] (default 0xFA17) drives every [Prob]
    site. @raise Invalid_argument on a probability outside [0, 1], a
    negative [start]/[interval], a duplicate site, or a site name
    containing [';'], ['='] or whitespace (they would break the textual
    form). *)

val seed : t -> int
val sites : t -> (string * trigger) list
(** In creation order. *)

val fires : t -> site:string -> bool
(** Consume one opportunity at [site]; true if the plan injects a fault
    here. Unknown sites never fire (and are not counted). *)

val opportunities : t -> site:string -> int
(** Opportunities consumed at [site] so far. *)

val injected : t -> site:string -> int
(** Faults fired at [site] so far. *)

val total_injected : t -> int

val reset : t -> unit
(** Re-arm: opportunity counters back to zero, [Prob] streams back to
    their seed-derived start. After [reset] the plan answers exactly the
    same sequence again. *)

val copy : t -> t
(** A fresh armed plan with the same seed and sites ({!reset} without
    disturbing the original). *)

val to_string : t -> string
(** One-line textual form, e.g.
    ["seed=0xfa17;spurious_exit=p0.05;guest_hang=@50+100"]. Round-trips
    through {!of_string}; embedded in [.vxr] recordings so chaos runs
    replay faithfully. *)

val of_string : string -> (t, string) result
(** Parse the textual form. Sites are separated by [';'] or newlines;
    blank segments and [#]-comments are skipped, so the same parser reads
    both the one-line form and a [--fault-plan] file. Triggers are
    [p<float>] (probability) or [@<start>+<interval>] (schedule); an
    optional [seed=<int>] segment (decimal or 0x-hex) sets the seed. *)
