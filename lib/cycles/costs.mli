(** Calibrated cost model.

    Every constant is in cycles on the paper's {i tinker} testbed
    (AMD EPYC 7281, 2.69 GHz, Linux 5.9.12) unless noted otherwise, and is
    either taken directly from the paper (Table 1, Figure 2, §6.2) or
    back-derived from a latency the paper reports. Centralizing them here
    makes the calibration auditable and lets benches ablate individual
    components. *)

(** {1 Guest instruction costs} *)

val alu : int
(** Simple register ALU op (add/sub/logic/mov). *)

val mul : int
val div : int

val mem : int
(** L1-hit load/store. *)

val mem_cold : int
(** Uncached memory write, e.g. first-touch page-table stores; chosen so
    that building the 1 GB identity map (2 MB pages, 3 levels, ~515 PTE
    stores plus CR3/EPT work) lands near Table 1's 28109 cycles. *)

val branch : int
val call : int
val rdtsc : int
(** rdtsc reads take tens of cycles on Zen. *)

(** {1 Mode transitions — Table 1} *)

val protected_transition : int  (** cr0.PE flip: 3217. *)
val long_transition : int       (** EFER.LME + cr4.PAE: 681. *)
val ljmp32 : int                (** far jump into 32-bit segment: 175. *)
val ljmp64 : int                (** far jump into 64-bit segment: 190. *)
val lgdt32 : int                (** load 32-bit GDT: 4118. *)
val first_instruction : int     (** fetch of first guest instruction: 74. *)
val ept_build : int
(** KVM-side EPT construction triggered by the identity mapping; part of the
    28109-cycle paging component. *)

(** {1 Host virtualization costs — Figure 2 / Figure 8} *)

val ioctl_syscall : int
(** Ring 3 -> ring 0 -> ring 3 syscall round trip for an ioctl. *)

val kvm_run_checks : int
(** KVM's sanity checks on the KVM_RUN path. *)

val vmentry : int
val vmexit : int

val vmrun_total : int
(** The full "vmrun" lower bound of Figure 2: ioctl + checks + entry + exit.
    Roughly 10K cycles (~3.7 us). *)

val kvm_create_vm : int
(** KVM_CREATE_VM: VMCB/VMCS and in-kernel state allocation (~200K). *)

val kvm_create_vcpu : int
val kvm_memory_region : int

val function_call : int       (** null native call+return: ~10. *)
val pthread_spawn_join : int  (** pthread_create+join: ~30K. *)
val process_spawn : int       (** fork+exec+exit+wait: ~1.3M (~0.5 ms). *)

(** {1 SGX (Intel i7-10750H, reported at the same 2.69 GHz scale)} *)

val sgx_ecreate : int
val sgx_eadd_page : int  (** per 4 KB page: EADD+EEXTEND measurement. *)
val sgx_einit : int
val sgx_ecall : int      (** enclave entry: ~5 us. *)

(** {1 Memory bandwidth — Figure 12} *)

val memcpy_cycles_per_byte : float
(** 6.7 GB/s on tinker => 2.69e9 / 6.7e9 ~= 0.40 cycles/byte. *)

val memset_cycles_per_byte : float
(** Streaming stores are faster than copies. *)

val memcpy_cost : int -> int
(** [memcpy_cost bytes] in cycles. *)

val memset_cost : int -> int

val cow_page_fault : int
(** Per-page cost of a copy-on-write reset: the minor fault + PTE fixup
    that accompanies each dirty-page copy (the SEUSS-style reset the
    paper's §7.2 anticipates). *)

val ept_violation : int
(** Handling one EPT write-protection violation: the exit, walking the
    EPT, and re-entering — excluding the page copy itself (charge
    {!memcpy_cost} [page_size] on top for a CoW break). Sits between the
    bare vmexit/vmentry pair and the paper's full hypercall round trip
    because no user-space crossing is needed. *)

val ept_map_page : int
(** Installing one EPT leaf entry (write-protecting a page at snapshot
    capture, or mapping a shared page on restore). Same order as a PTE
    store burst within {!ept_build}. *)

val ept_root_swap : int
(** Repointing a vCPU at a pre-built EPT root (plus the implied TLB/VPID
    flush): the O(1) part of a snapshot restore, independent of image
    size. *)

(** {1 Hypercall path} *)

val hypercall_guest_side : int
(** OUT instruction until the exit is architecturally visible. *)

val hypercall_dispatch : int
(** Wasp-side decode + policy check + handler dispatch overhead. *)

val hypercall_round_trip : int
(** Full guest->host->guest crossing excluding the handler body:
    vmexit + ioctl return + dispatch + KVM_RUN + vmentry. The paper calls
    these exits "doubly expensive due to the ring transitions". *)

(** {1 Host kernel service costs (hypercall handler bodies)} *)

val host_read : int
val host_write : int
val host_open : int
val host_close : int
val host_stat : int
val host_send : int
val host_recv : int

(** {1 Noise} *)

val jitter : Rng.t -> pct:float -> int -> int
(** [jitter rng ~pct c] perturbs [c] by a log-normal factor with ~[pct]
    relative spread, modelling measurement noise. Result >= 0. *)

val jitter_pos : Rng.t -> pct:float -> int -> int
(** One-sided jitter: the result is never below [c]. Used where the paper
    reports minimum observed latencies (Table 1), so the minimum of many
    trials converges to the calibrated value. *)

val scheduler_outlier : Rng.t -> int option
(** With small probability, returns a large host-scheduling delay; the
    paper removed such outliers with Tukey's method, and so do our benches. *)
