type trigger =
  | Prob of float
  | Every of { start : int; interval : int }

type site_state = {
  name : string;
  trigger : trigger;
  mutable rng : Rng.t;  (* Prob sites only; re-derived on reset *)
  mutable opportunities : int;
  mutable injected : int;
}

type t = {
  seed : int;
  order : string list;  (* creation order, for sites/to_string *)
  by_name : (string, site_state) Hashtbl.t;
}

(* FNV-1a over the site name, folded with the plan seed. Hashtbl.hash is
   not stable across compiler versions; the fire pattern must be. *)
let site_seed ~seed name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    name;
  Int64.to_int (Int64.logxor !h (Int64.of_int seed)) land max_int

let valid_name name =
  name <> ""
  && String.for_all
       (fun c -> not (c = ';' || c = '=' || c = ' ' || c = '\t' || c = '\n' || c = '\r'))
       name

let check_trigger name = function
  | Prob p ->
      if not (p >= 0.0 && p <= 1.0) then
        invalid_arg (Printf.sprintf "Fault_plan: %s: probability %g outside [0, 1]" name p)
  | Every { start; interval } ->
      if start < 0 || interval < 0 then
        invalid_arg (Printf.sprintf "Fault_plan: %s: negative schedule" name)

let create ?(seed = 0xFA17) sites =
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun (name, trigger) ->
      if not (valid_name name) then
        invalid_arg (Printf.sprintf "Fault_plan: bad site name %S" name);
      if Hashtbl.mem by_name name then
        invalid_arg (Printf.sprintf "Fault_plan: duplicate site %S" name);
      check_trigger name trigger;
      Hashtbl.replace by_name name
        {
          name;
          trigger;
          rng = Rng.create ~seed:(site_seed ~seed name);
          opportunities = 0;
          injected = 0;
        })
    sites;
  { seed; order = List.map fst sites; by_name }

let seed t = t.seed

let sites t =
  List.map (fun name -> (name, (Hashtbl.find t.by_name name).trigger)) t.order

let fires t ~site =
  match Hashtbl.find_opt t.by_name site with
  | None -> false
  | Some s ->
      let i = s.opportunities in
      s.opportunities <- i + 1;
      let fire =
        match s.trigger with
        | Prob p -> Rng.float s.rng < p
        | Every { start; interval } ->
            if interval = 0 then i = start
            else i >= start && (i - start) mod interval = 0
      in
      if fire then s.injected <- s.injected + 1;
      fire

let opportunities t ~site =
  match Hashtbl.find_opt t.by_name site with None -> 0 | Some s -> s.opportunities

let injected t ~site =
  match Hashtbl.find_opt t.by_name site with None -> 0 | Some s -> s.injected

let total_injected t =
  Hashtbl.fold (fun _ s acc -> acc + s.injected) t.by_name 0

let reset t =
  Hashtbl.iter
    (fun _ s ->
      s.opportunities <- 0;
      s.injected <- 0;
      s.rng <- Rng.create ~seed:(site_seed ~seed:t.seed s.name))
    t.by_name

let copy t = create ~seed:t.seed (sites t)

let trigger_to_string = function
  | Prob p -> Printf.sprintf "p%g" p
  | Every { start; interval } -> Printf.sprintf "@%d+%d" start interval

let to_string t =
  String.concat ";"
    (Printf.sprintf "seed=0x%x" t.seed
    :: List.map
         (fun (name, trig) -> Printf.sprintf "%s=%s" name (trigger_to_string trig))
         (sites t))

let parse_trigger s =
  let n = String.length s in
  if n = 0 then Error "empty trigger"
  else if s.[0] = 'p' then
    match float_of_string_opt (String.sub s 1 (n - 1)) with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok (Prob p)
    | Some p -> Error (Printf.sprintf "probability %g outside [0, 1]" p)
    | None -> Error (Printf.sprintf "bad probability %S" s)
  else if s.[0] = '@' then
    match String.index_opt s '+' with
    | None -> (
        match int_of_string_opt (String.sub s 1 (n - 1)) with
        | Some start when start >= 0 -> Ok (Every { start; interval = 0 })
        | Some _ | None -> Error (Printf.sprintf "bad schedule %S" s))
    | Some i -> (
        match
          ( int_of_string_opt (String.sub s 1 (i - 1)),
            int_of_string_opt (String.sub s (i + 1) (n - i - 1)) )
        with
        | Some start, Some interval when start >= 0 && interval >= 0 ->
            Ok (Every { start; interval })
        | _ -> Error (Printf.sprintf "bad schedule %S" s))
  else Error (Printf.sprintf "bad trigger %S (want p<float> or @<start>+<interval>)" s)

let of_string text =
  let strip s =
    let s = match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s in
    String.trim s
  in
  let segments =
    String.split_on_char '\n' text
    |> List.concat_map (String.split_on_char ';')
    |> List.map strip
    |> List.filter (fun s -> s <> "")
  in
  let rec go seed acc = function
    | [] -> (
        match List.rev acc with
        | [] -> Error "fault plan names no sites"
        | sites -> (
            match create ?seed sites with
            | plan -> Ok plan
            | exception Invalid_argument msg -> Error msg))
    | seg :: rest -> (
        match String.index_opt seg '=' with
        | None -> Error (Printf.sprintf "bad segment %S (want name=trigger)" seg)
        | Some i -> (
            let key = String.trim (String.sub seg 0 i) in
            let value = String.trim (String.sub seg (i + 1) (String.length seg - i - 1)) in
            if key = "seed" then
              match int_of_string_opt value with
              | Some s -> go (Some s) acc rest
              | None -> Error (Printf.sprintf "bad seed %S" value)
            else
              match parse_trigger value with
              | Ok trig -> go seed ((key, trig) :: acc) rest
              | Error e -> Error (Printf.sprintf "site %s: %s" key e)))
  in
  go None [] segments
