(** Simulated KVM interface.

    Mirrors the Linux KVM lifecycle Wasp drives: open [/dev/kvm], create a
    VM file descriptor ([KVM_CREATE_VM] — the expensive in-kernel
    VMCS/VMCB and state allocation), register a user memory region, create
    a vCPU, and enter the guest with the [KVM_RUN] ioctl. Each step
    charges the calibrated host-side cycle costs (Figure 2/8), including
    the ring transitions that make hypercall exits "doubly expensive"
    (§6.3). *)

type system
(** An open /dev/kvm: owns the virtual clock and noise source. *)

type vm
type vcpu

type run_exit =
  | Hlt
  | Io_out of { port : int; value : int64 }
  | Io_in of { port : int; reg : Instr.reg }
  | Fault of Vm.Cpu.fault
  | Out_of_fuel

type stats = {
  mutable vm_creations : int;
  mutable vcpu_creations : int;
  mutable runs : int;
  mutable io_exits : int;
  mutable fault_exits : int;
  mutable ept_violations : int;
      (** CoW breaks of shared guest pages (simulated EPT
          write-protection violations); each charged
          [Costs.ept_violation + memcpy_cost page_size]. *)
  mutable injected_faults : int;
      (** Fault-plan injections fired through this system (all sites). *)
}

exception Injected_failure of string
(** Raised by operations the armed fault plan makes fail outright
    (currently {!site_provision_fail} in {!create_vm}). The payload is
    the site name. *)

(** {2 Fault injection}

    Arm a {!Cycles.Fault_plan.t} and the simulated KVM perturbs itself at
    these sites (see [docs/robustness.md]):

    - {!site_spurious_exit}: one opportunity per {!run}; a fire charges a
      wasted exit/re-entry round trip before the guest makes progress.
    - {!site_ept_storm}: one opportunity per {!run}; a fire charges a
      burst of 8 no-progress EPT violations.
    - {!site_guest_hang}: one opportunity per {!run}; a fire burns the
      caller's entire fuel budget and returns {!Out_of_fuel} without
      executing the guest.
    - {!site_provision_fail}: one opportunity per {!create_vm}; a fire
      raises {!Injected_failure} after charging the failed ioctl's
      syscall round trip.
    - {!site_snapshot_corrupt} is consumed by the Wasp runtime (one
      opportunity per snapshot restore): a fire overwrites the restored
      page under the guest PC with an invalid-opcode pattern, so the
      guest faults deterministically at its first fetch.
    - {!site_ring_corrupt} is consumed by the Wasp runtime (one
      opportunity per {!Hc.ring_enter} doorbell): a fire makes the drain
      treat the ring header as corrupt, so the whole batch completes as
      a guest fault (retryable under supervision) without dispatching.

    Injected costs are charged {e without} jitter, so a chaos run under
    the same plan and seed replays cycle-for-cycle. Each fire bumps
    [stats.injected_faults], the [wasp_faults_injected_total] counter
    (plain and [site]-labeled) and leaves an [INJECTED] entry in the
    attached flight ring. *)

val site_spurious_exit : string
val site_ept_storm : string
val site_provision_fail : string
val site_guest_hang : string
val site_snapshot_corrupt : string
val site_ring_corrupt : string

val set_fault_plan : system -> Cycles.Fault_plan.t option -> unit
(** Arm (or disarm) a fault plan. The plan's state advances as
    opportunities are consumed; use {!Cycles.Fault_plan.copy} to arm an
    identical fresh plan elsewhere. *)

val fault_plan : system -> Cycles.Fault_plan.t option

val plan_fires : system -> string -> bool
(** Consume one opportunity at the named site against the armed plan
    (false when none is armed). A fire does the injection bookkeeping —
    stats, counters, flight entry — but charges no cycles; the caller
    applies the consequence. Exposed for sites that live above the KVM
    layer (the runtime's {!site_snapshot_corrupt}). *)

val open_dev :
  ?seed:int -> ?freq_ghz:float -> ?cores:int -> ?translate:bool -> unit -> system
(** [cores] (default 1) gives the system that many per-core virtual
    clocks; all charges land on the {e current} core's clock (see
    {!set_core}). [translate] (default [true]) executes guests through
    the {!Vm.Translate} superblock cache; either way the simulated
    cycle counts are bit-for-bit identical, only wall-clock differs. *)

val set_translate : system -> bool -> unit
(** Toggle binary translation for subsequent {!run} calls (replay
    tooling compares engines this way). *)

val translate_enabled : system -> bool

val clock : system -> Cycles.Clock.t
(** The current core's clock (core 0 until {!set_core} is called). *)

val cores : system -> int
val current_core : system -> int

val core_clock : system -> int -> Cycles.Clock.t

val set_core : system -> int -> unit
(** Make [core] current: subsequent charges, vCPU creations and span
    stamps (the attached hub is retargeted) land on its clock. The
    multi-core scheduler calls this before running each task. *)

val rng : system -> Cycles.Rng.t
val stats : system -> stats

val exit_reason_counts : system -> (string * int) list
(** Always-on per-reason tally of every {!run} return — the
    [kvm_exits_total{reason}] series ([hlt]/[hypercall]/[io_out]/
    [io_in]/[fault]/[fuel]) readable without a telemetry hub, sorted by
    reason. The fuzzer hashes it (with the flight ring's exit-edge
    pairs) into its coverage bitmap after each candidate. *)

val set_telemetry : system -> Telemetry.Hub.t option -> unit
(** Attach (or detach) a telemetry hub; subsequent KVM transitions
    (vm-create, memslot/EPT build, vcpu-create, [KVM_RUN]) open spans and
    bump [kvm_*] counters on it. The hub must share this system's
    clock. *)

val set_flight : system -> Profiler.Flight.t option -> unit
(** Attach (or detach) a flight recorder: every VM exit {!run} observes
    (halt, I/O, fault, fuel) is recorded with its cycle stamp, core id
    and guest PC. The runtime dumps the ring as a black-box report when
    a guest faults or violates hypercall policy. *)

val flight : system -> Profiler.Flight.t option

val set_probes : system -> Vtrace.Engine.t option -> unit
(** Attach (or detach) a vtrace probe engine. Sites fired by this layer:
    ["exit"] (every {!run} return — reason [hlt]/[io_out]/[io_in]/
    [fault]/[fuel], or [hypercall] with [nr] = the hypercall number when
    the out port matches {!set_hc_port}; [cycles] = the run's
    entry-to-exit duration), ["ept"] (CoW break; [nr] = page, [cycles] =
    charged cost), ["inject"] (fault-plan fire; [reason] = site) and
    ["block"] (superblock entry under the translated engine — installed
    as a {!Vm.Translate} block hook, so it does {e not} force the
    interpreter fallback). When an ["exit"] probe fires, the flight
    ring's newest entry is annotated ["vtrace"]. Probes charge zero
    simulated cycles; detached sites cost one [None] check. *)

val probes : system -> Vtrace.Engine.t option

val set_hc_port : system -> int option -> unit
(** Declare the hypercall port (the runtime above passes its [Hc.port]):
    [Io_out] exits on it fire ["exit"] probes with reason ["hypercall"]
    and [nr] = the value written (the hypercall number). *)

val create_vm : system -> vm
(** [KVM_CREATE_VM]: charges the in-kernel allocation cost. *)

val set_user_memory_region : vm -> size:int -> Vm.Memory.t
(** Allocate and register guest memory; charges the memslot setup cost.
    Replaces any previous region. Installs the memory's fault hook: CoW
    breaks of shared pages charge the simulated EPT-violation cost and
    land in the flight ring (demand-zero fills are free). *)

val vm_memory : vm -> Vm.Memory.t
(** Raises [Invalid_argument] if no region was registered. *)

val vm_system : vm -> system

val create_vcpu : vm -> mode:Vm.Modes.t -> vcpu
(** Charges vCPU allocation. The vCPU starts in [mode] (the guest boot
    code's mode transitions are charged separately by {!Vm.Boot}). *)

val vcpu_cpu : vcpu -> Vm.Cpu.t
(** Direct register/PC access for the user-space VMM, like
    [KVM_GET/SET_REGS]. *)

val vcpu_vm : vcpu -> vm

val vcpu_translation_stats : vcpu -> Vm.Translate.stats
(** Counters of the vCPU's superblock cache (blocks compiled,
    dispatches, invalidations, interpreter fallbacks). *)

val reset_vcpu : vcpu -> mode:Vm.Modes.t -> unit
(** Clear architectural state for shell reuse and drop the vCPU's
    translated blocks; memory is untouched. *)

val run : ?fuel:int -> vcpu -> run_exit
(** The [KVM_RUN] ioctl: charges syscall entry, in-kernel checks and VM
    entry; executes the guest until it exits; charges VM exit and the
    return to user space. Resumable after I/O exits. Each return also
    bumps the [kvm_exits_total{reason}] counter
    ([hlt]/[hypercall]/[io_out]/[io_in]/[fault]/[fuel]). *)

val build_shell : system -> core:int -> size:int -> mode:Vm.Modes.t -> vcpu
(** Background shell assembly for pipelined pool refill: the same
    VM + memory + vCPU construction as {!create_vm} /
    {!set_user_memory_region} / {!create_vcpu}, but charging {e no}
    cycles, opening no spans and consuming no fault-plan opportunities —
    the caller accounts the deterministic construction cost against an
    idle-cycle budget (see {!Wasp.Pool}). The vCPU is bound to [core]'s
    clock so a prewarmed shell later executes on its owning shard's
    clock. Creation stats are still bumped. *)
