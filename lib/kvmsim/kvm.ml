type system = {
  clocks : Cycles.Clock.t array;  (* one virtual clock per simulated core *)
  mutable cur : int;              (* core charged by subsequent operations *)
  rng : Cycles.Rng.t;
  stats : stats;
  mutable telemetry : Telemetry.Hub.t option;
  mutable flight : Profiler.Flight.t option;
  mutable active_cpu : Vm.Cpu.t option;
      (* vCPU inside KVM_RUN right now: EPT violations taken from guest
         stores are stamped with its PC in the flight ring *)
  mutable plan : Cycles.Fault_plan.t option;
  mutable translate : bool;
      (* execute guests through the superblock translation cache; off =
         pure interpreter. Cycle-identical either way. *)
  mutable probes : Vtrace.Engine.t option;
  mutable hc_port : int option;
      (* the hypercall port, when a runtime above us declared one:
         Io_out exits on it fire vtrace "exit" probes as "hypercall" *)
  mutable block_probe : (pc:int -> unit) option;
      (* prebuilt superblock-entry observer, installed on each vCPU's
         translation cache while running; None unless a block probe is
         attached *)
  exit_reasons : (string, int ref) Hashtbl.t;
      (* always-on per-reason exit tally (the kvm_exits_total{reason}
         series without needing a telemetry hub) — the fuzzer's
         exit-edge coverage signal reads it after every candidate *)
}

and stats = {
  mutable vm_creations : int;
  mutable vcpu_creations : int;
  mutable runs : int;
  mutable io_exits : int;
  mutable fault_exits : int;
  mutable ept_violations : int;
  mutable injected_faults : int;
}

exception Injected_failure of string

let site_spurious_exit = "spurious_exit"
let site_ept_storm = "ept_storm"
let site_provision_fail = "provision_fail"
let site_guest_hang = "guest_hang"
let site_snapshot_corrupt = "snapshot_corrupt"
let site_ring_corrupt = "ring_corrupt"

type vm = { sys : system; mutable memory : Vm.Memory.t option }

type vcpu = { parent : vm; cpu : Vm.Cpu.t; trans : Vm.Translate.t }

type run_exit =
  | Hlt
  | Io_out of { port : int; value : int64 }
  | Io_in of { port : int; reg : Instr.reg }
  | Fault of Vm.Cpu.fault
  | Out_of_fuel

let open_dev ?(seed = 0x5eed) ?freq_ghz ?(cores = 1) ?(translate = true) () =
  if cores < 1 then invalid_arg "Kvm.open_dev: cores must be >= 1";
  {
    clocks = Array.init cores (fun _ -> Cycles.Clock.create ?freq_ghz ());
    cur = 0;
    rng = Cycles.Rng.create ~seed;
    stats =
      {
        vm_creations = 0;
        vcpu_creations = 0;
        runs = 0;
        io_exits = 0;
        fault_exits = 0;
        ept_violations = 0;
        injected_faults = 0;
      };
    telemetry = None;
    flight = None;
    active_cpu = None;
    plan = None;
    translate;
    probes = None;
    hc_port = None;
    block_probe = None;
    exit_reasons = Hashtbl.create 8;
  }

let set_translate sys on = sys.translate <- on
let translate_enabled sys = sys.translate

let clock sys = sys.clocks.(sys.cur)
let cores sys = Array.length sys.clocks
let current_core sys = sys.cur

let core_clock sys core =
  if core < 0 || core >= Array.length sys.clocks then invalid_arg "Kvm.core_clock: no such core";
  sys.clocks.(core)

let set_core sys core =
  if core < 0 || core >= Array.length sys.clocks then invalid_arg "Kvm.set_core: no such core";
  sys.cur <- core;
  match sys.telemetry with
  | Some h ->
      Telemetry.Hub.set_clock h sys.clocks.(core);
      Telemetry.Hub.set_core h core
  | None -> ()

let rng sys = sys.rng
let stats sys = sys.stats

let set_telemetry sys hub = sys.telemetry <- hub
let set_flight sys fr = sys.flight <- fr
let flight sys = sys.flight

let set_fault_plan sys plan = sys.plan <- plan
let fault_plan sys = sys.plan

(* One injection fired: count it (stats + the plain and site-labeled
   [wasp_faults_injected_total] series) and leave an [INJECTED] entry in
   the black box, stamped with the active guest PC when there is one.
   Bookkeeping charges no cycles — the *consequence* of the injection
   (the spurious round trip, the storm, the raised failure) is what the
   site charges. *)
(* Trace id of the request currently on-CPU, so black-box entries are
   greppable by trace. None when tracing is off or no span is open. *)
let active_trace sys =
  match sys.telemetry with
  | None -> None
  | Some h -> Telemetry.Hub.current_trace h

let set_hc_port sys port = sys.hc_port <- port

let set_probes sys e =
  sys.probes <- e;
  sys.block_probe <-
    (match e with
    | Some eng when Vtrace.Engine.wants eng "block" ->
        Some
          (fun ~pc ->
            ignore
              (Vtrace.Engine.fire eng
                 (Vtrace.Ctx.make ~core:sys.cur ?trace:(active_trace sys) ~pc
                    "block")))
    | _ -> None)

let probes sys = sys.probes

let note_injection sys site =
  sys.stats.injected_faults <- sys.stats.injected_faults + 1;
  (match sys.telemetry with
  | None -> ()
  | Some h ->
      let m = Telemetry.Hub.metrics h in
      let help = "fault-plan injections fired" in
      Telemetry.Metrics.incr (Telemetry.Metrics.counter m ~help "wasp_faults_injected_total");
      Telemetry.Metrics.incr
        (Telemetry.Metrics.counter m ~help ~labels:[ ("site", site) ]
           "wasp_faults_injected_total"));
  (match sys.flight with
  | None -> ()
  | Some fr ->
      let pc = match sys.active_cpu with Some cpu -> Vm.Cpu.pc cpu | None -> 0 in
      Profiler.Flight.record fr
        ?trace:(active_trace sys)
        ~at:(Cycles.Clock.now (clock sys))
        ~core:sys.cur ~pc (Profiler.Flight.Injected site));
  match sys.probes with
  | None -> ()
  | Some e ->
      let pc = match sys.active_cpu with Some cpu -> Vm.Cpu.pc cpu | None -> 0 in
      ignore
        (Vtrace.Engine.fire e
           (Vtrace.Ctx.make ~core:sys.cur ?trace:(active_trace sys) ~pc
              ~reason:site "inject"))

let plan_fires sys site =
  match sys.plan with
  | None -> false
  | Some plan ->
      let fire = Cycles.Fault_plan.fires plan ~site in
      if fire then note_injection sys site;
      fire

let kspan sys name f =
  match sys.telemetry with None -> f () | Some h -> Telemetry.Hub.with_span h name f

let kincr sys name =
  match sys.telemetry with None -> () | Some h -> Telemetry.Hub.incr h name

(* Exit-reason split of the exit counter: one series per cause, so the
   ring refactor's exit savings show up as a shrinking [hypercall]
   series rather than a mystery delta in the total. *)
let note_exit_reason sys reason =
  (match Hashtbl.find_opt sys.exit_reasons reason with
  | Some r -> incr r
  | None -> Hashtbl.replace sys.exit_reasons reason (ref 1));
  match sys.telemetry with
  | None -> ()
  | Some h ->
      let m = Telemetry.Hub.metrics h in
      Telemetry.Metrics.incr
        (Telemetry.Metrics.counter m ~help:"KVM_RUN exits by cause"
           ~labels:[ ("reason", reason) ] "kvm_exits_total")

let exit_reason_counts sys =
  Hashtbl.fold (fun reason r acc -> (reason, !r) :: acc) sys.exit_reasons []
  |> List.sort compare

let charge sys cycles = Cycles.Clock.advance_int (clock sys) (Cycles.Costs.jitter sys.rng ~pct:0.05 cycles)

let create_vm sys =
  kincr sys "kvm_vm_creations_total";
  kspan sys "kvm_create_vm" (fun () ->
      (* fault plan: KVM_CREATE_VM can fail (the kernel's VMCS/VMCB
         allocation returning ENOMEM). The failed ioctl still pays its
         syscall round trip; the in-kernel allocation is never reached. *)
      if plan_fires sys site_provision_fail then begin
        Cycles.Clock.advance_int (clock sys) Cycles.Costs.ioctl_syscall;
        raise (Injected_failure site_provision_fail)
      end;
      charge sys Cycles.Costs.kvm_create_vm;
      sys.stats.vm_creations <- sys.stats.vm_creations + 1;
      { sys; memory = None })

(* A CoW break of a shared guest page: the simulated EPT write-protection
   violation. Charged deterministically (no jitter — the replay contract
   requires byte-identical stamps) and in-line, so it lands inside
   whatever phase span the triggering store runs under. Demand-zero fills
   ([shared = false]) charge nothing: cold-path timings are unchanged by
   the paged representation. *)
let on_page_fault sys ~shared ~page =
  if shared then begin
    sys.stats.ept_violations <- sys.stats.ept_violations + 1;
    kincr sys "kvm_ept_violations_total";
    let cost =
      Cycles.Costs.ept_violation + Cycles.Costs.memcpy_cost Vm.Memory.page_size
    in
    Cycles.Clock.advance_int (clock sys) cost;
    let pc = match sys.active_cpu with Some cpu -> Vm.Cpu.pc cpu | None -> 0 in
    (match sys.flight with
    | None -> ()
    | Some fr ->
        Profiler.Flight.record fr
          ?trace:(active_trace sys)
          ~at:(Cycles.Clock.now (clock sys))
          ~core:sys.cur ~pc
          (Profiler.Flight.Ept { page }));
    match sys.probes with
    | None -> ()
    | Some e ->
        ignore
          (Vtrace.Engine.fire e
             (Vtrace.Ctx.make ~core:sys.cur ?trace:(active_trace sys) ~pc
                ~reason:"cow_break" ~cycles:(Int64.of_int cost)
                ~nr:(Int64.of_int page) "ept"))
  end

let set_user_memory_region vm ~size =
  (* the EPT/memslot build transition *)
  kspan vm.sys "kvm_memory_region" (fun () ->
      charge vm.sys Cycles.Costs.kvm_memory_region;
      let mem = Vm.Memory.create ~size in
      Vm.Memory.set_fault_hook mem
        (Some (fun ~shared ~page -> on_page_fault vm.sys ~shared ~page));
      vm.memory <- Some mem;
      mem)

let vm_memory vm =
  match vm.memory with
  | Some m -> m
  | None -> invalid_arg "Kvm.vm_memory: no user memory region registered"

let vm_system vm = vm.sys

let create_vcpu vm ~mode =
  kincr vm.sys "kvm_vcpu_creations_total";
  kspan vm.sys "kvm_create_vcpu" (fun () ->
      charge vm.sys Cycles.Costs.kvm_create_vcpu;
      vm.sys.stats.vcpu_creations <- vm.sys.stats.vcpu_creations + 1;
      (* the vCPU charges the clock of the core that created it: shells
         stay in their owning core's pool shard, so guest execution is
         always billed to that core *)
      let cpu = Vm.Cpu.create ~mem:(vm_memory vm) ~mode ~clock:(clock vm.sys) in
      { parent = vm; cpu; trans = Vm.Translate.create cpu })

let vcpu_cpu v = v.cpu
let vcpu_vm v = v.parent
let vcpu_translation_stats v = Vm.Translate.stats v.trans

let reset_vcpu v ~mode =
  Vm.Cpu.reset v.cpu ~mode;
  (* shell reuse: the pool's reset_zero already epoch-invalidates every
     block; dropping them too keeps the table from accreting garbage *)
  Vm.Translate.flush_cache v.trans

let run ?fuel v =
  let sys = v.parent.sys in
  sys.stats.runs <- sys.stats.runs + 1;
  kincr sys "kvm_runs_total";
  let t0 = Cycles.Clock.now (clock sys) in
  Vm.Translate.set_block_hook v.trans sys.block_probe;
  let exit =
    kspan sys "vcpu_run" (fun () ->
        charge sys (Cycles.Costs.ioctl_syscall + Cycles.Costs.kvm_run_checks + Cycles.Costs.vmentry);
        sys.active_cpu <- Some v.cpu;
        let exit =
          Fun.protect ~finally:(fun () -> sys.active_cpu <- None) (fun () ->
              (* Fault-plan perturbations inside KVM_RUN. Injected costs
                 are charged without jitter: the chaos timeline must
                 replay cycle-for-cycle under the same plan. *)
              if plan_fires sys site_spurious_exit then
                (* one spurious exit: a wasted exit/re-entry round trip
                   before the guest makes progress *)
                Cycles.Clock.advance_int (clock sys)
                  (Cycles.Costs.vmexit + Cycles.Costs.ioctl_syscall
                 + Cycles.Costs.kvm_run_checks + Cycles.Costs.vmentry);
              if plan_fires sys site_ept_storm then
                (* a burst of EPT violations that make no forward
                   progress (walk + exit + re-entry, no page copied) *)
                Cycles.Clock.advance_int (clock sys) (8 * Cycles.Costs.ept_violation);
              if plan_fires sys site_guest_hang then begin
                (* the guest spins without retiring useful work until the
                   fuel watchdog kills it *)
                let spin = match fuel with Some f -> max f 1 | None -> 1_000_000 in
                Cycles.Clock.advance_int (clock sys) (spin * Cycles.Costs.alu);
                Vm.Cpu.Out_of_fuel
              end
              else if sys.translate then Vm.Translate.run ?fuel v.trans
              else Vm.Cpu.run ?fuel v.cpu)
        in
        charge sys Cycles.Costs.vmexit;
        exit)
  in
  let record_exit kind =
    match sys.flight with
    | None -> ()
    | Some fr ->
        Profiler.Flight.record fr
          ?trace:(active_trace sys)
          ~at:(Cycles.Clock.now (clock sys))
          ~core:sys.cur ~pc:(Vm.Cpu.pc v.cpu) kind
  in
  (* vtrace "exit" site: fires after the flight entry so a matching
     probe can stamp it; charges nothing. [cycles] is this KVM_RUN's
     entry-to-exit duration on the current core's clock. *)
  let fire_exit reason nr =
    match sys.probes with
    | None -> ()
    | Some e ->
        let fired =
          Vtrace.Engine.fire e
            (Vtrace.Ctx.make ~core:sys.cur ?trace:(active_trace sys)
               ~pc:(Vm.Cpu.pc v.cpu) ~reason
               ~cycles:(Int64.sub (Cycles.Clock.now (clock sys)) t0)
               ~fuel:(Option.value fuel ~default:0)
               ~nr "exit")
        in
        if fired > 0 then
          match sys.flight with
          | None -> ()
          | Some fr -> Profiler.Flight.append_note fr "vtrace"
  in
  match exit with
  | Vm.Cpu.Halt ->
      record_exit Profiler.Flight.Halt;
      note_exit_reason sys "hlt";
      fire_exit "hlt" 0L;
      Hlt
  | Vm.Cpu.Io_out { port; value } ->
      sys.stats.io_exits <- sys.stats.io_exits + 1;
      kincr sys "kvm_io_exits_total";
      record_exit (Profiler.Flight.Io_out { port; value });
      (match sys.hc_port with
      | Some p when p = port ->
          note_exit_reason sys "hypercall";
          fire_exit "hypercall" value
      | _ ->
          note_exit_reason sys "io_out";
          fire_exit "io_out" (Int64.of_int port));
      Io_out { port; value }
  | Vm.Cpu.Io_in { port; reg } ->
      sys.stats.io_exits <- sys.stats.io_exits + 1;
      kincr sys "kvm_io_exits_total";
      record_exit (Profiler.Flight.Io_in { port });
      note_exit_reason sys "io_in";
      fire_exit "io_in" (Int64.of_int port);
      Io_in { port; reg }
  | Vm.Cpu.Fault f ->
      sys.stats.fault_exits <- sys.stats.fault_exits + 1;
      kincr sys "kvm_fault_exits_total";
      record_exit
        (Profiler.Flight.Fault (Format.asprintf "%a" Vm.Cpu.pp_exit (Vm.Cpu.Fault f)));
      note_exit_reason sys "fault";
      fire_exit "fault" 0L;
      Fault f
  | Vm.Cpu.Out_of_fuel ->
      record_exit Profiler.Flight.Fuel;
      note_exit_reason sys "fuel";
      fire_exit "fuel" 0L;
      Out_of_fuel

(* Background shell construction for the pool's pipelined prewarm: the
   same VM + memory + vCPU assembly as the charged path, but with no
   clock charges, no spans and no fault-plan opportunities — the caller
   books the deterministic construction cost against its idle-cycle
   budget instead. The vCPU is bound to [core]'s clock regardless of the
   current core, so a prewarmed shell later runs on its owning shard's
   clock exactly like a synchronously created one. *)
let build_shell sys ~core ~size ~mode =
  if core < 0 || core >= Array.length sys.clocks then
    invalid_arg "Kvm.build_shell: no such core";
  sys.stats.vm_creations <- sys.stats.vm_creations + 1;
  sys.stats.vcpu_creations <- sys.stats.vcpu_creations + 1;
  let vm = { sys; memory = None } in
  let mem = Vm.Memory.create ~size in
  Vm.Memory.set_fault_hook mem
    (Some (fun ~shared ~page -> on_page_fault sys ~shared ~page));
  vm.memory <- Some mem;
  let cpu = Vm.Cpu.create ~mem ~mode ~clock:sys.clocks.(core) in
  { parent = vm; cpu; trans = Vm.Translate.create cpu }
