(** The campaign driver: corpus scheduling, coverage accounting,
    finding dedup, shrinking, and fixture emission.

    With [iters] set (and no [time_budget]) a campaign is a pure
    function of its [seed]: same seed → same corpus, same coverage bit
    count, same findings in the same order. A [time_budget] bounds wall
    time instead; its iteration count is inherently non-deterministic
    (each iteration is still seeded). *)

type config = {
  seed : int;
  iters : int option;
  time_budget : float option;  (** seconds, measured with [now] *)
  now : unit -> float;
  corpus_dir : string option;  (** load + persist coverage-novel cases *)
  fixtures_out : string option;  (** write shrunk reproducer [.vxr]s *)
  canary : Oracle.canary option;
  max_findings : int;  (** stop after this many distinct findings *)
  shrink_budget : int;
  log : string -> unit;
}

val default_config : config
(** 200 iterations, seed 0xF022, no persistence, no canary. *)

type finding = {
  f_class : Oracle.fclass;
  f_detail : string;
  f_case : Corpus.case;  (** as found *)
  f_shrunk : Corpus.case;  (** after delta debugging *)
  f_fixture : string option;  (** written reproducer path *)
}

type summary = {
  iterations : int;
  corpus_size : int;
  coverage_bits : int;
  findings : finding list;
  skipped : (string * string) list;  (** unloadable corpus files *)
}

val run : config -> summary

val check_fixtures :
  dir:string -> log:(string -> unit) -> (int, string list) result
(** Replay every [.vxr] under [dir] on both engines (interpreter and
    translator) against its recorded transcript; byte-level recording
    equality is required. [Ok n] = all [n] fixtures passed. *)

val emit_corpus_fixtures : dir:string -> n:int -> string list
(** Record canonical transcripts for up to [n] built-in seed cases (one
    per input plane first) into [dir]; returns the written paths. *)
