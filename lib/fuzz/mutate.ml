(* Plane-aware deterministic mutators.

   Every random choice flows through an explicit Cycles.Rng stream, so a
   fuzz campaign is a pure function of its seed. Mutators respect the
   case's plane:

   - [Image_bytes]: opcode-aware where possible — decode the blob into
     instructions, then replace/insert/delete/splice whole instructions
     or retarget immediates at interesting machine constants — with raw
     byte havoc as the fallback (undecodable blobs are themselves
     first-class inputs: the decoder and fault paths are under test);
   - [Ring_batch]: only bytes at or past the trampoline's data offset
     mutate (ring header cursors, SQE descriptors, links), keeping the
     doorbell trampoline intact;
   - [Plan]: the fault-plan text mutates (sites, triggers, seeds),
     validated so every produced case still parses;

   plus environment mutations (seed, fuel, policy mask bits) that apply
   to any plane. *)

let interesting_imms =
  [|
    0L;
    1L;
    -1L;
    2L;
    0x7FL;
    0x80L;
    0xFFL;
    0x7FFFL;
    0x8000L;
    0xFFFFL;
    0x7FFFFFFFL;
    0xFFFFFFFFL;
    Int64.max_int;
    Int64.min_int;
    Int64.of_int Wasp.Layout.image_base;
    Int64.of_int Wasp.Layout.stack_top;
    Int64.of_int Wasp.Layout.ring_base;
    Int64.of_int (Wasp.Layout.ring_base + Wasp.Layout.ring_size);
    Int64.of_int Wasp.Layout.default_mem_size;
    Int64.of_int (Wasp.Layout.default_mem_size - 1);
  |]

let pick_imm rng = interesting_imms.(Cycles.Rng.int rng (Array.length interesting_imms))

let pick_reg rng = Cycles.Rng.int rng Instr.num_regs

(* A random instruction built from interesting parts. *)
let random_instr rng : Instr.t =
  let operand () =
    if Cycles.Rng.int rng 2 = 0 then Instr.Reg (pick_reg rng)
    else Instr.Imm (pick_imm rng)
  in
  let width () =
    match Cycles.Rng.int rng 4 with
    | 0 -> Instr.W8
    | 1 -> Instr.W16
    | 2 -> Instr.W32
    | _ -> Instr.W64
  in
  let binop () =
    match Cycles.Rng.int rng 11 with
    | 0 -> Instr.Add
    | 1 -> Instr.Sub
    | 2 -> Instr.Mul
    | 3 -> Instr.Div
    | 4 -> Instr.Rem
    | 5 -> Instr.And
    | 6 -> Instr.Or
    | 7 -> Instr.Xor
    | 8 -> Instr.Shl
    | 9 -> Instr.Shr
    | _ -> Instr.Sar
  in
  let addr () = Int64.to_int (Int64.logand (pick_imm rng) 0xFFFFL) in
  match Cycles.Rng.int rng 14 with
  | 0 -> Instr.Hlt
  | 1 -> Instr.Nop
  | 2 -> Instr.Mov (pick_reg rng, operand ())
  | 3 -> Instr.Bin (binop (), pick_reg rng, operand ())
  | 4 -> Instr.Cmp (pick_reg rng, operand ())
  | 5 -> Instr.Jmp (addr ())
  | 6 -> Instr.Push (operand ())
  | 7 -> Instr.Pop (pick_reg rng)
  | 8 -> Instr.Load (width (), pick_reg rng, pick_reg rng, Cycles.Rng.int rng 64)
  | 9 -> Instr.Store (width (), pick_reg rng, Cycles.Rng.int rng 64, operand ())
  | 10 -> Instr.Lea (pick_reg rng, pick_reg rng, Cycles.Rng.int rng 4096)
  | 11 -> Instr.Out (Wasp.Hc.port, operand ())
  | 12 -> Instr.Rdtsc (pick_reg rng)
  | _ -> Instr.Ret

(* ------------------------------------------------------------------ *)
(* Byte-level havoc (any plane)                                        *)
(* ------------------------------------------------------------------ *)

let havoc_bytes rng s ~from =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  if n <= from then s
  else begin
    let pos () = from + Cycles.Rng.int rng (n - from) in
    (match Cycles.Rng.int rng 4 with
    | 0 ->
        let p = pos () in
        Bytes.set b p
          (Char.chr (Char.code (Bytes.get b p) lxor (1 lsl Cycles.Rng.int rng 8)))
    | 1 -> Bytes.set b (pos ()) (Char.chr (Cycles.Rng.int rng 256))
    | 2 ->
        let p = pos () in
        Bytes.set b p
          (Char.chr ((Char.code (Bytes.get b p) + Cycles.Rng.int rng 35 - 17) land 0xFF))
    | _ ->
        (* copy a chunk from elsewhere in the mutable region *)
        let src = pos () and dst = pos () in
        let len = min (1 + Cycles.Rng.int rng 16) (n - max src dst) in
        Bytes.blit b src b dst len);
    Bytes.to_string b
  end

(* ------------------------------------------------------------------ *)
(* Image plane                                                         *)
(* ------------------------------------------------------------------ *)

let encode_instrs instrs =
  Bytes.to_string (Encoding.encode_program instrs)

let mutate_instrs rng instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  if n = 0 then [ random_instr rng ]
  else
    match Cycles.Rng.int rng 5 with
    | 0 ->
        (* replace one instruction *)
        arr.(Cycles.Rng.int rng n) <- random_instr rng;
        Array.to_list arr
    | 1 ->
        (* insert *)
        let at = Cycles.Rng.int rng (n + 1) in
        let l = Array.to_list arr in
        let rec ins i = function
          | rest when i = at -> random_instr rng :: rest
          | [] -> [ random_instr rng ]
          | x :: rest -> x :: ins (i + 1) rest
        in
        ins 0 l
    | 2 ->
        (* delete *)
        let at = Cycles.Rng.int rng n in
        List.filteri (fun i _ -> i <> at) (Array.to_list arr)
    | 3 ->
        (* retarget an immediate at an interesting constant *)
        let at = Cycles.Rng.int rng n in
        (arr.(at) <-
           (match arr.(at) with
           | Instr.Mov (r, _) -> Instr.Mov (r, Instr.Imm (pick_imm rng))
           | Instr.Bin (op, r, _) -> Instr.Bin (op, r, Instr.Imm (pick_imm rng))
           | Instr.Cmp (r, _) -> Instr.Cmp (r, Instr.Imm (pick_imm rng))
           | Instr.Push _ -> Instr.Push (Instr.Imm (pick_imm rng))
           | Instr.Jmp _ -> Instr.Jmp (Int64.to_int (Int64.logand (pick_imm rng) 0xFFFFL))
           | i -> i));
        Array.to_list arr
    | _ ->
        (* splice: duplicate a run of instructions elsewhere *)
        let src = Cycles.Rng.int rng n in
        let len = min (1 + Cycles.Rng.int rng 4) (n - src) in
        let dst = Cycles.Rng.int rng (n + 1) in
        let l = Array.to_list arr in
        let chunk = Array.to_list (Array.sub arr src len) in
        let rec ins i = function
          | rest when i = dst -> chunk @ rest
          | [] -> chunk
          | x :: rest -> x :: ins (i + 1) rest
        in
        ins 0 l

let mutate_image rng code =
  match Encoding.decode_program (Bytes.of_string code) with
  | instrs -> (
      match Cycles.Rng.int rng 4 with
      | 0 | 1 -> encode_instrs (mutate_instrs rng instrs)
      | 2 -> havoc_bytes rng code ~from:0
      | _ ->
          (* truncate to an instruction boundary: the truncated-fetch plane *)
          let keep = Cycles.Rng.int rng (List.length instrs + 1) in
          encode_instrs (List.filteri (fun i _ -> i < keep) instrs))
  | exception Encoding.Decode_error _ ->
      (* undecodable blob: raw havoc only *)
      havoc_bytes rng code ~from:0

(* ------------------------------------------------------------------ *)
(* Ring plane                                                          *)
(* ------------------------------------------------------------------ *)

let put_u64 b off v =
  if off + 8 <= Bytes.length b then
    for i = 0 to 7 do
      Bytes.set b (off + i)
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
    done

let interesting_cursors = [| 0L; 1L; 31L; 32L; 33L; 64L; 0xFFFFL; -1L; Int64.max_int |]

(* Structured ring mutations work on the data blob (header + SQEs). *)
let mutate_ring_blob rng blob =
  let n = String.length blob in
  if n < 8 then havoc_bytes rng blob ~from:0
  else
    match Cycles.Rng.int rng 3 with
    | 0 ->
        (* stomp a header cursor *)
        let b = Bytes.of_string blob in
        let field = Cycles.Rng.int rng 4 in
        put_u64 b (8 * field)
          interesting_cursors.(Cycles.Rng.int rng (Array.length interesting_cursors));
        Bytes.to_string b
    | 1 ->
        (* rewrite an SQE field: nr near the valid range, wild args/links *)
        let b = Bytes.of_string blob in
        let sqe = Cycles.Rng.int rng 32 in
        let field = Cycles.Rng.int rng 8 in
        let off = 0x40 + (64 * sqe) + (8 * field) in
        let v =
          if field = 0 then Int64.of_int (Cycles.Rng.int rng (Wasp.Hc.count + 4) - 2)
          else if Cycles.Rng.int rng 2 = 0 then pick_imm rng
          else Int64.of_int (Cycles.Rng.int rng 65536)
        in
        put_u64 b off v;
        Bytes.to_string b
    | _ -> havoc_bytes rng blob ~from:0

(* ------------------------------------------------------------------ *)

let known_sites =
  [| "spurious_exit"; "ept_storm"; "guest_hang"; "provision_fail"; "snapshot_corrupt"; "ring_corrupt" |]

(* Plan plane: grow/shrink/perturb the textual plan, keeping it valid. *)
let mutate_plan rng plan =
  let base = Option.value plan ~default:"seed=0x1" in
  let parts = String.split_on_char ';' base in
  let keyed, sites =
    List.partition (fun p -> String.length p >= 5 && String.sub p 0 5 = "seed=") parts
  in
  let seed_part =
    match keyed with
    | s :: _ -> s
    | [] -> "seed=0x1"
  in
  let render ss = String.concat ";" (seed_part :: List.filter (fun s -> s <> "") ss) in
  let candidate =
    match Cycles.Rng.int rng 4 with
    | 0 ->
        (* add a site with a random trigger *)
        let site = known_sites.(Cycles.Rng.int rng (Array.length known_sites)) in
        let trig =
          if Cycles.Rng.int rng 2 = 0 then
            Printf.sprintf "@%d+%d" (Cycles.Rng.int rng 4) (1 + Cycles.Rng.int rng 7)
          else Printf.sprintf "p0.%02d" (1 + Cycles.Rng.int rng 30)
        in
        render (sites @ [ site ^ "=" ^ trig ])
    | 1 ->
        (* drop a site *)
        if sites = [] then render sites
        else
          let at = Cycles.Rng.int rng (List.length sites) in
          render (List.filteri (fun i _ -> i <> at) sites)
    | 2 ->
        (* reseed the plan *)
        Printf.sprintf "seed=0x%X;%s" (Cycles.Rng.int rng 0xFFFFF) (String.concat ";" sites)
    | _ ->
        (* perturb a trigger by regenerating the whole site *)
        let site = known_sites.(Cycles.Rng.int rng (Array.length known_sites)) in
        render
          (List.filter
             (fun s -> not (String.length s > String.length site && String.sub s 0 (String.length site) = site))
             sites
          @ [ Printf.sprintf "%s=@%d+%d" site (Cycles.Rng.int rng 3) (1 + Cycles.Rng.int rng 5) ])
  in
  match Cycles.Fault_plan.of_string candidate with
  | Ok _ -> Some candidate
  | Error _ -> plan (* keep the old valid plan rather than emit junk *)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let mutate_env rng (c : Corpus.case) : Corpus.case =
  match Cycles.Rng.int rng 3 with
  | 0 -> { c with seed = Cycles.Rng.int rng 0xFFFFFF }
  | 1 ->
      (* fuel: tiny budgets hit the fuel plane, big ones the deep paths *)
      let fuels = [| 16; 256; 4096; Corpus.default_fuel; 4 * Corpus.default_fuel |] in
      { c with fuel = fuels.(Cycles.Rng.int rng (Array.length fuels)) }
  | _ ->
      let policies =
        [|
          Wasp.Policy.deny_all;
          Wasp.Policy.allow_all;
          Wasp.Policy.Mask (Wasp.Policy.mask_of_list [ Wasp.Hc.write; Wasp.Hc.read ]);
          Wasp.Policy.Mask (Wasp.Policy.mask_of_list [ Wasp.Hc.exit_ ]);
          Wasp.Policy.Mask (Int64.of_int (Cycles.Rng.int rng 0xFFFF));
        |]
      in
      { c with policy = policies.(Cycles.Rng.int rng (Array.length policies)) }

let mutate ~rng (c : Corpus.case) : Corpus.case =
  (* one in four mutations touches the environment, whatever the plane *)
  if Cycles.Rng.int rng 4 = 0 then mutate_env rng c
  else
    match c.plane with
    | Corpus.Image_bytes -> { c with code = mutate_image rng c.code }
    | Corpus.Plan -> { c with plan = mutate_plan rng c.plan }
    | Corpus.Ring_batch ->
        let off = Lazy.force Corpus.ring_data_offset in
        if String.length c.code <= off then { c with code = havoc_bytes rng c.code ~from:0 }
        else
          let blob = String.sub c.code off (String.length c.code - off) in
          let blob' =
            if Cycles.Rng.int rng 3 = 0 then havoc_bytes rng blob ~from:0
            else mutate_ring_blob rng blob
          in
          (* rebuild through the trampoline so the copy length matches *)
          Corpus.ring_case ~blob:blob' ~seed:c.seed ~policy:c.policy ~fuel:c.fuel
            ~plan:c.plan

let rounds ~rng n c =
  let rec go n c = if n <= 0 then c else go (n - 1) (mutate ~rng c) in
  go (max 1 n) c
