(* Delta-debugging minimizer for findings.

   [shrink ~check case] greedily reduces a failing case while [check]
   (reproduces-the-same-finding-class, supplied by the driver) stays
   true. Guarantees, relied on by the committed-fixture pipeline and
   checked by the qcheck suite:

   - every intermediate and the result satisfy [check] (same failure
     class as the input — a shrink never "finds a different bug");
   - the result's size never exceeds the input's (monotone);
   - the number of [check] calls is bounded by [budget].

   Passes: instruction-granular ddmin over decodable images (chunk
   removal, large chunks first), raw tail truncation otherwise,
   ring-blob tail truncation + SQE zeroing for the ring plane, fault-plan
   site dropping, and fuel halving. *)

let size (c : Corpus.case) =
  String.length c.code
  + (match c.plan with Some p -> String.length p | None -> 0)

type state = { check : Corpus.case -> bool; budget : int; mutable calls : int }

(* One guarded probe: accept only a reproducing, never-larger candidate. *)
let attempt st (best : Corpus.case) (cand : Corpus.case) =
  if st.calls >= st.budget || size cand > size best then None
  else begin
    st.calls <- st.calls + 1;
    if st.check cand then Some cand else None
  end

(* Run [step best] until it stops improving or the budget is gone. *)
let rec fixpoint st step best =
  if st.calls >= st.budget then best
  else
    match step best with
    | Some better -> fixpoint st step better
    | None -> best

(* ------------------------------------------------------------------ *)
(* Image plane: instruction-granular ddmin                              *)
(* ------------------------------------------------------------------ *)

let encode instrs = Bytes.to_string (Encoding.encode_program instrs)

let drop_range l from len =
  List.filteri (fun i _ -> i < from || i >= from + len) l

(* Remove the first removable chunk of [k] instructions; [None] when no
   chunk of this size can go. *)
let remove_chunk st best instrs k =
  let n = List.length instrs in
  let rec go from =
    if from >= n then None
    else
      let cand = { best with Corpus.code = encode (drop_range instrs from k) } in
      match attempt st best cand with
      | Some c -> Some c
      | None -> go (from + k)
  in
  go 0

let ddmin_instrs st best =
  let rec outer best =
    match Encoding.decode_program (Bytes.of_string best.Corpus.code) with
    | exception Encoding.Decode_error _ -> best
    | instrs ->
        let n = List.length instrs in
        if n <= 1 then best
        else
          let rec by_chunk k =
            if k < 1 || st.calls >= st.budget then None
            else
              match remove_chunk st best instrs k with
              | Some c -> Some c
              | None -> by_chunk (k / 2)
          in
          (match by_chunk (n / 2) with Some c -> outer c | None -> best)
  in
  outer best

(* Raw fallback: chop the tail, halving the cut until single bytes. *)
let truncate_tail st best =
  let step (b : Corpus.case) =
    let n = String.length b.Corpus.code in
    if n <= 1 then None
    else
      let rec cut k =
        if k < 1 then None
        else
          let cand = { b with Corpus.code = String.sub b.Corpus.code 0 (n - k) } in
          match attempt st b cand with Some c -> Some c | None -> cut (k / 2)
      in
      cut (n / 2)
  in
  fixpoint st step best

(* ------------------------------------------------------------------ *)
(* Ring plane: shrink the data blob, keep the trampoline                *)
(* ------------------------------------------------------------------ *)

let ring_blob (c : Corpus.case) =
  let off = Lazy.force Corpus.ring_data_offset in
  if String.length c.code <= off then None
  else Some (String.sub c.code off (String.length c.code - off))

let rebuild_ring (c : Corpus.case) blob =
  Corpus.ring_case ~blob ~seed:c.seed ~policy:c.policy ~fuel:c.fuel ~plan:c.plan

let shrink_ring st best =
  let step (b : Corpus.case) =
    match ring_blob b with
    | None -> None
    | Some blob ->
        let n = String.length blob in
        if n <= 8 then None
        else
          let rec cut k =
            if k < 1 then None
            else
              let cand = rebuild_ring b (String.sub blob 0 (n - k)) in
              match attempt st b cand with Some c -> Some c | None -> cut (k / 2)
          in
          cut (n / 2)
  in
  fixpoint st step best

(* ------------------------------------------------------------------ *)
(* Plan and environment                                                 *)
(* ------------------------------------------------------------------ *)

let shrink_plan st best =
  let step (b : Corpus.case) =
    match b.Corpus.plan with
    | None -> None
    | Some text ->
        let parts =
          List.filter (fun p -> p <> "") (String.split_on_char ';' text)
        in
        let seed_parts, sites =
          List.partition
            (fun p -> String.length p >= 5 && String.sub p 0 5 = "seed=")
            parts
        in
        let render ss =
          match seed_parts @ ss with
          | [] -> None
          | l -> Some (String.concat ";" l)
        in
        if sites = [] then attempt st b { b with Corpus.plan = None }
        else
          let rec drop i =
            if i >= List.length sites then
              attempt st b { b with Corpus.plan = None }
            else
              let cand =
                { b with Corpus.plan = render (List.filteri (fun j _ -> j <> i) sites) }
              in
              match attempt st b cand with Some c -> Some c | None -> drop (i + 1)
          in
          drop 0
  in
  fixpoint st step best

let shrink_fuel st best =
  let step (b : Corpus.case) =
    if b.Corpus.fuel <= 16 then None
    else attempt st b { b with Corpus.fuel = b.Corpus.fuel / 2 }
  in
  fixpoint st step best

(* ------------------------------------------------------------------ *)

let check_calls_bound = 256

let shrink ~check ?(budget = check_calls_bound) (c0 : Corpus.case) =
  let st = { check; budget; calls = 0 } in
  let c =
    match c0.Corpus.plane with
    | Corpus.Ring_batch -> shrink_ring st c0
    | _ -> truncate_tail st (ddmin_instrs st c0)
  in
  let c = shrink_plan st c in
  let c = shrink_fuel st c in
  c
