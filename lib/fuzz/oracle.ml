(* The differential oracle.

   Every candidate executes several times under configurations the
   determinism contract says must agree, and any disagreement is a
   finding even when nothing crashes:

   - interpreter vs [Vm.Translate] (bit-identical everything, cycles
     included — the translation-cache parity contract);
   - eager [`Memcpy] vs lazy [`Cow] snapshot restore (identical
     guest-visible results; cycles legitimately differ between the two
     reset mechanisms, so timing is excluded from this comparison);
   - a .vxr round trip: serialize the case, reparse it and re-execute —
     the committed-fixture property, exercised on every candidate;
   - host exceptions escaping the runtime anywhere are crashes
     (Injected_failure under a plan that arms provision_fail is an
     outcome, not a crash).

   Canaries are deliberately wrong harness arms — never product code —
   used by the fuzz smoke test to prove a planted bug is detected:
   [Shift_mask] re-runs the guest raw with the reverted shift-count
   guard emulated via a step hook; [Cycle_skew] perturbs the translated
   arm's cycle observation. *)

type obs = {
  o_outcome : string;
  o_ret : int64;
  o_cycles : int64;
  o_hypercalls : int;
  o_denied : int;
  o_state : string;  (* MD5 of final registers + guest memory *)
  o_events : (int64 * int * int64 array * int64) list;  (* at, nr, args, ret *)
}

type fclass =
  | Host_exception
  | Engine_divergence
  | Restore_divergence
  | Replay_divergence
  | Canary_divergence

let fclass_name = function
  | Host_exception -> "host-exception"
  | Engine_divergence -> "engine-divergence"
  | Restore_divergence -> "restore-divergence"
  | Replay_divergence -> "replay-divergence"
  | Canary_divergence -> "canary-divergence"

type canary = Shift_mask | Cycle_skew

let canary_of_string = function
  | "shift-mask" -> Some Shift_mask
  | "cycle-skew" -> Some Cycle_skew
  | _ -> None

let canary_name = function Shift_mask -> "shift-mask" | Cycle_skew -> "cycle-skew"

type verdict = {
  features : string list;  (* coverage features of the canonical run *)
  recording : Profiler.Replay.t option;  (* canonical transcript *)
  finding : (fclass * string) option;
}

(* Probes whose firing maps feed the coverage bitmap. *)
let coverage_spec =
  "exit { count() by (reason) }; hypercall { count() by (nr) }; hypercall_ret \
   { count() by (reason) }; ept { count() }; inject { count() by (reason) }; \
   ring_enter { count() }; ring_op { count() by (nr) }"

(* Detailed outcome for differential comparison... *)
let outcome_string = function
  | Wasp.Runtime.Exited _ -> "exited"
  | Wasp.Runtime.Faulted f -> Format.asprintf "%a" Vm.Cpu.pp_exit (Vm.Cpu.Fault f)
  | Wasp.Runtime.Fuel_exhausted -> "fuel"

(* ... and the coarse form .vxr recordings carry. *)
let coarse_outcome detailed =
  if detailed = "exited" || detailed = "fuel" then detailed else "faulted"

(* ------------------------------------------------------------------ *)
(* One runtime-level execution arm                                     *)
(* ------------------------------------------------------------------ *)

type arm_result = Obs of obs | Crash of string

let state_digest mem cpu =
  let b = Buffer.create 256 in
  for i = 0 to Instr.num_regs - 1 do
    Buffer.add_string b (Int64.to_string (Vm.Cpu.get_reg cpu i));
    Buffer.add_char b ','
  done;
  Buffer.add_bytes b (Vm.Memory.snapshot mem);
  Digest.to_hex (Digest.string (Buffer.contents b))

let plan_arms_provision_fail (case : Corpus.case) =
  match case.plan with
  | None -> false
  | Some text ->
      let re = "provision_fail" in
      let n = String.length text and m = String.length re in
      let rec go i = i + m <= n && (String.sub text i m = re || go (i + 1)) in
      go 0

(* Run [case] once ([runs] times in one runtime for the restore arms)
   and observe the last invocation. Anything an armed plan can inject —
   including Injected_failure from provision_fail — is an outcome, not a
   crash; only exceptions the plan cannot explain are. [post] observes
   the runtime after the runs (coverage harvest). *)
let run_arm ?(translate = false) ?(reset = `Memcpy) ?(runs = 1) ?snapshot_key
    ?probes ?profiler ?(post = fun (_ : Wasp.Runtime.t) -> ()) ?recorder
    (case : Corpus.case) : arm_result =
  try
    let w =
      Wasp.Runtime.create ~seed:case.seed ~translate ~reset ~flight_capacity:256
        ()
    in
    (match case.plan with
    | Some text -> (
        match Cycles.Fault_plan.of_string text with
        | Ok plan -> Wasp.Runtime.set_fault_plan w (Some plan)
        | Error e -> failwith ("unparseable case plan: " ^ e))
    | None -> ());
    Wasp.Runtime.set_probes w probes;
    Wasp.Runtime.set_profiler w profiler;
    let image = Corpus.image_of case in
    (* the runtime cross-checks an attached recorder's image against the
       loaded one, so the recorder must be seeded before the run *)
    (match recorder with
    | Some rc ->
        Profiler.Replay.set_image rc ~name:image.Wasp.Image.name
          ~mode:(Vm.Modes.to_string case.mode) ~origin:image.Wasp.Image.origin
          ~entry:image.Wasp.Image.entry ~mem_size:image.Wasp.Image.mem_size
          ~code:(Bytes.to_string image.Wasp.Image.code);
        Profiler.Replay.set_env rc ?fault_plan:case.plan ~seed:case.seed
          ~policy:(Corpus.policy_string case) ~fuel:case.fuel ()
    | None -> ());
    Wasp.Runtime.set_recorder w recorder;
    let state = ref "" in
    let inspect mem cpu = state := state_digest mem cpu in
    let result = ref None in
    for _ = 1 to runs do
      result :=
        Some
          (Wasp.Runtime.run w image ~policy:case.policy ?snapshot_key
             ~fuel:case.fuel ~inspect ())
    done;
    let r = Option.get !result in
    let events =
      match recorder with
      | None -> []
      | Some rc ->
          List.map
            (fun (e : Profiler.Replay.event) -> (e.at, e.nr, e.args, e.ret))
            (Profiler.Replay.events rc)
    in
    post w;
    Obs
      {
        o_outcome = outcome_string r.Wasp.Runtime.outcome;
        o_ret = r.Wasp.Runtime.return_value;
        o_cycles = r.Wasp.Runtime.cycles;
        o_hypercalls = r.Wasp.Runtime.hypercalls;
        o_denied = r.Wasp.Runtime.denied;
        o_state = !state;
        o_events = events;
      }
  with
  | Kvmsim.Kvm.Injected_failure site when plan_arms_provision_fail case ->
      Obs
        {
          o_outcome = "injected:" ^ site;
          o_ret = 0L;
          o_cycles = 0L;
          o_hypercalls = 0;
          o_denied = 0;
          o_state = "";
          o_events = [];
        }
  | e -> Crash (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let events_brief evs =
  String.concat ";"
    (List.map
       (fun (at, nr, _args, ret) -> Printf.sprintf "%Ld:%d:%Ld" at nr ret)
       evs)

(* Full comparison: the engine contract (timing included). *)
let diff_full a b =
  if a.o_outcome <> b.o_outcome then
    Some (Printf.sprintf "outcome %s vs %s" a.o_outcome b.o_outcome)
  else if a.o_ret <> b.o_ret then
    Some (Printf.sprintf "ret %Ld vs %Ld" a.o_ret b.o_ret)
  else if a.o_cycles <> b.o_cycles then
    Some (Printf.sprintf "cycles %Ld vs %Ld" a.o_cycles b.o_cycles)
  else if a.o_state <> b.o_state then
    Some (Printf.sprintf "final state %s vs %s" a.o_state b.o_state)
  else if a.o_events <> b.o_events then
    Some
      (Printf.sprintf "transcript [%s] vs [%s]" (events_brief a.o_events)
         (events_brief b.o_events))
  else if a.o_hypercalls <> b.o_hypercalls || a.o_denied <> b.o_denied then
    Some
      (Printf.sprintf "hc/denied %d/%d vs %d/%d" a.o_hypercalls a.o_denied
         b.o_hypercalls b.o_denied)
  else None

(* Guest-visible comparison: the restore contract. [`Cow] restore
   charges different (cheaper) reset costs than [`Memcpy] by design, so
   cycle stamps are excluded; results, final state and the un-stamped
   hypercall sequence must match. *)
let diff_visible a b =
  let strip evs = List.map (fun (_, nr, args, ret) -> (nr, args, ret)) evs in
  if a.o_outcome <> b.o_outcome then
    Some (Printf.sprintf "outcome %s vs %s" a.o_outcome b.o_outcome)
  else if a.o_ret <> b.o_ret then
    Some (Printf.sprintf "ret %Ld vs %Ld" a.o_ret b.o_ret)
  else if a.o_state <> b.o_state then
    Some (Printf.sprintf "final state %s vs %s" a.o_state b.o_state)
  else if strip a.o_events <> strip b.o_events then
    Some "hypercall sequence (nr/args/ret) differs"
  else if a.o_denied <> b.o_denied then
    Some (Printf.sprintf "denied %d vs %d" a.o_denied b.o_denied)
  else None

(* ------------------------------------------------------------------ *)
(* Canary arms (harness-only planted bugs)                             *)
(* ------------------------------------------------------------------ *)

(* Raw-CPU execution with a null hypervisor (out -> r0 := 0, in -> a
   constant), bounded resumes. [buggy_shifts] emulates the reverted
   shift-count guard: a count at or beyond the mode width produces 0
   (Sar of a negative value saturates to -1) instead of using the
   masked count. The emulation is a step hook that schedules a
   destination-register fixup applied before the next instruction. *)
let raw_exec ?(buggy_shifts = false) (case : Corpus.case) =
  let mem = Vm.Memory.create ~size:(Corpus.mem_size_for case.code) in
  Vm.Memory.write_bytes mem ~off:Wasp.Layout.image_base
    (Bytes.of_string case.code);
  let clock = Cycles.Clock.create () in
  let cpu = Vm.Cpu.create ~mem ~mode:case.mode ~clock in
  Vm.Cpu.set_pc cpu Wasp.Layout.image_base;
  Vm.Cpu.set_sp cpu Wasp.Layout.stack_top;
  let pending = ref None in
  if buggy_shifts then
    Vm.Cpu.set_step_hook cpu (fun ~pc:_ ~instr ~cost:_ ->
        (match !pending with
        | Some (rd, v) -> Vm.Cpu.set_reg cpu rd v
        | None -> ());
        pending := None;
        match instr with
        | Instr.Bin (((Instr.Shl | Instr.Shr | Instr.Sar) as op), rd, src) ->
            let count =
              match src with
              | Instr.Reg r -> Vm.Cpu.get_reg cpu r
              | Instr.Imm i -> i
            in
            let width = Int64.of_int (Vm.Modes.width_bits case.mode) in
            if Int64.unsigned_compare count width >= 0 then
              let v =
                match op with
                | Instr.Sar when Int64.compare (Vm.Cpu.get_reg cpu rd) 0L < 0
                  ->
                    -1L
                | _ -> 0L
              in
              pending := Some (rd, Vm.Modes.mask case.mode v)
        | _ -> ());
  let fuel = min case.fuel 100_000 in
  let rec go budget =
    let left = fuel - Int64.to_int (Vm.Cpu.instructions_retired cpu) in
    if left <= 0 then Vm.Cpu.Out_of_fuel
    else
      match Vm.Cpu.run ~fuel:left cpu with
      | Vm.Cpu.Io_out _ when budget > 0 ->
          Vm.Cpu.set_reg cpu 0 0L;
          go (budget - 1)
      | Vm.Cpu.Io_in { reg; _ } when budget > 0 ->
          Vm.Cpu.set_reg cpu reg 0x5A5AL;
          go (budget - 1)
      | e -> e
  in
  let e = go 64 in
  (match !pending with Some (rd, v) -> Vm.Cpu.set_reg cpu rd v | None -> ());
  Vm.Cpu.clear_step_hook cpu;
  ( Format.asprintf "%a" Vm.Cpu.pp_exit e,
    Array.init Instr.num_regs (Vm.Cpu.get_reg cpu),
    Digest.to_hex (Digest.bytes (Vm.Memory.snapshot mem)) )

let shift_mask_canary case =
  match (raw_exec case, raw_exec ~buggy_shifts:true case) with
  | (e1, r1, m1), (e2, r2, m2) ->
      if e1 <> e2 then Some (Printf.sprintf "raw exit %s vs buggy %s" e1 e2)
      else if r1 <> r2 then begin
        let i = ref 0 in
        Array.iteri (fun j v -> if v <> r2.(j) && !i = 0 then i := j + 1) r1;
        let j = !i - 1 in
        Some (Printf.sprintf "r%d %Ld vs buggy %Ld" j r1.(j) r2.(j))
      end
      else if m1 <> m2 then Some "raw memory digest differs under buggy shifts"
      else None
  | exception e -> Some ("canary arm crashed: " ^ Printexc.to_string e)

(* The cycle-skew canary: pretend the translated engine mis-charges one
   cycle on long-running guests. *)
let skew_obs obs =
  if Int64.compare obs.o_cycles 1_000L > 0 then
    { obs with o_cycles = Int64.add obs.o_cycles 1L }
  else obs

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

(* The differential ladder below the canonical arm; first divergence
   wins. *)
let differential ?canary canonical (case : Corpus.case) =
  (* every arm gets its own recorder so transcripts are comparable *)
  let run_arm ?translate ?reset ?runs ?snapshot_key case =
    run_arm ?translate ?reset ?runs ?snapshot_key
      ~recorder:(Profiler.Replay.create ()) case
  in
  match run_arm ~translate:true case with
  | Crash d -> Some (Host_exception, "translated arm: " ^ d)
  | Obs o -> (
      let translated =
        match canary with Some Cycle_skew -> skew_obs o | _ -> o
      in
      match diff_full canonical translated with
      | Some d ->
          let cls =
            match canary with
            | Some Cycle_skew -> Canary_divergence
            | _ -> Engine_divergence
          in
          Some (cls, "interpreter vs translator: " ^ d)
      | None -> (
          let restore reset =
            run_arm ~translate:false ~reset ~runs:2 ~snapshot_key:"fuzz" case
          in
          match (restore `Memcpy, restore `Cow) with
          | Crash d, _ -> Some (Host_exception, "memcpy-restore arm: " ^ d)
          | _, Crash d -> Some (Host_exception, "cow-restore arm: " ^ d)
          | Obs eager, Obs cow -> (
              match diff_visible eager cow with
              | Some d -> Some (Restore_divergence, "memcpy vs cow restore: " ^ d)
              | None -> (
                  match Corpus.of_vxr_string (Corpus.to_vxr_string case) with
                  | Error d ->
                      Some (Replay_divergence, "own .vxr does not reparse: " ^ d)
                  | Ok case' -> (
                      match run_arm ~translate:false case' with
                      | Crash d -> Some (Host_exception, "replay arm: " ^ d)
                      | Obs replayed -> (
                          match diff_full canonical replayed with
                          | Some d ->
                              Some
                                ( Replay_divergence,
                                  ".vxr round-trip re-execution diverged: " ^ d
                                )
                          | None -> (
                              match canary with
                              | Some Shift_mask -> (
                                  match shift_mask_canary case with
                                  | Some d ->
                                      Some
                                        ( Canary_divergence,
                                          "shift-mask canary: " ^ d )
                                  | None -> None)
                              | _ -> None)))))))

let classify ?canary (case : Corpus.case) : verdict =
  let probes =
    match Vtrace.Engine.of_string coverage_spec with
    | Ok e -> e
    | Error e -> failwith ("internal: bad coverage spec: " ^ e)
  in
  let profiler = Profiler.Profile.create () in
  let recorder = Profiler.Replay.create () in
  let harvested = ref [] in
  let post w =
    harvested :=
      Coverage.kvm_features (Wasp.Runtime.kvm w)
      @ Coverage.flight_features (Wasp.Runtime.flight w)
  in
  (* The canonical arm: interpreter with every coverage surface
     attached. A crash here is a finding with no recording. *)
  match run_arm ~translate:false ~probes ~profiler ~post ~recorder case with
  | Crash detail ->
      {
        features = [ "crash" ];
        recording = None;
        finding = Some (Host_exception, detail);
      }
  | Obs canonical ->
      let features =
        Coverage.outcome_features ~outcome:canonical.o_outcome
          ~ret:canonical.o_ret ~hypercalls:canonical.o_hypercalls
          ~denied:canonical.o_denied
        @ !harvested
        @ Coverage.vtrace_features probes
        @ Coverage.opcode_features profiler
      in
      let finding = differential ?canary canonical case in
      (* The .vxr a fixture carries: the case environment plus the
         canonical transcript — exactly what a recorded [wasprun] run
         would have produced. *)
      let recording =
        let rc = Corpus.to_replay case in
        List.iter
          (fun (at, nr, args, ret) ->
            Profiler.Replay.add_event rc ~at ~nr ~args ~ret)
          canonical.o_events;
        Profiler.Replay.finish rc ~cycles:canonical.o_cycles
          ~outcome:(coarse_outcome canonical.o_outcome)
          ~return_value:canonical.o_ret;
        Some rc
      in
      { features; recording; finding }
