(** Fuzz cases and the on-disk corpus.

    A case is the environment half of a [.vxr] recording — image bytes,
    mode, seed, policy, fuel and fault plan — so corpus entries and
    shrunk reproducers are stored {e as} [.vxr] files: every corpus
    entry is directly replayable with [wasprun --replay], and CI
    fixtures need no second format. *)

(** The three mutated input planes (see [docs/fuzzing.md]). *)
type plane =
  | Image_bytes  (** the code blob itself is the input *)
  | Ring_batch
      (** fixed trampoline guest splats a data blob over the hypercall
          ring (header cursors + SQEs) and rings the doorbell; only the
          blob mutates *)
  | Plan  (** the {!Cycles.Fault_plan} text mutates *)

type case = {
  plane : plane;
  mode : Vm.Modes.t;
  code : string;  (** raw image bytes, loaded at {!Wasp.Layout.image_base} *)
  seed : int;
  policy : Wasp.Policy.t;  (** serializable constructors only *)
  fuel : int;
  plan : string option;  (** {!Cycles.Fault_plan.to_string} form *)
}

val plane_tag : plane -> string
(** ["fuzz-img"] / ["fuzz-ring"] / ["fuzz-plan"] — the image-name prefix
    that round-trips the plane through a [.vxr] file. *)

val plane_of_name : string -> plane

val policy_string : case -> string
(** The policy's [.vxr] form (["deny_all"] / ["allow_all"] /
    ["mask:<hex>"]). *)

val digest : case -> string
(** Content hash (hex MD5) over every case field. *)

val name : case -> string
(** ["<plane-tag>-<digest prefix>"]: the image name and corpus file stem. *)

val image_of : case -> Wasp.Image.t

val mem_size_for : string -> int
(** Guest region size for a code blob: the default 64 KB, page-rounded
    up when the image would not fit. *)

val to_replay : case -> Profiler.Replay.t
(** The case as an environment-only recording (no transcript yet). *)

val of_replay : Profiler.Replay.t -> (case, string) result
(** Rebuild a case from a parsed recording; validates mode, policy and
    fault plan so a corpus sweep never raises downstream. *)

val to_vxr_string : case -> string
val of_vxr_string : string -> (case, string) result

val save_case : dir:string -> case -> string
(** Write the case as [<name>.vxr] under [dir]; returns the path. *)

val load_dir : string -> case list * (string * string) list
(** Load every [*.vxr] under a directory (sorted, deterministic).
    Malformed or invalid files come back as [(path, reason)] pairs —
    never an exception; a fuzz corpus is expected to contain junk. *)

val ring_case :
  blob:string ->
  seed:int ->
  policy:Wasp.Policy.t ->
  fuel:int ->
  plan:string option ->
  case
(** Assemble a ring-plane case: trampoline + [blob] (truncated to
    {!Wasp.Layout.ring_size}). *)

val ring_data_offset : int lazy_t
(** Byte offset of the mutable blob inside a ring-plane image (the
    encoded size of the fixed trampoline prefix). *)

val seed_ring_blob : unit -> string
(** A well-formed one-op batch (sq_tail = 1, one [write] SQE). *)

val default_fuel : int
(** Per-candidate instruction budget (small: fuzz candidates must be
    cheap, and tiny budgets are themselves an interesting plane). *)

val seeds : unit -> case list
(** Built-in seed corpus: one case per plane plus a shift/width/memory
    toucher. *)
