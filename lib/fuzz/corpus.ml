(* Fuzz cases and the on-disk corpus.

   A case is everything one deterministic invocation needs — exactly
   the environment half of a .vxr recording (image bytes, mode, seed,
   policy, fuel, fault plan), which is why corpus entries and shrunk
   reproducers are stored AS .vxr files: the corpus is readable by
   [wasprun --replay], and a fixture needs no second format.

   Three input planes, tagged in the image name so scheduling can pick
   plane-appropriate mutators after a round trip through disk:

   - [Image_bytes] ("fuzz-img-*"): the code blob itself is the input.
   - [Ring_batch] ("fuzz-ring-*"): the code is a fixed trampoline that
     memcpys a data blob over the hypercall ring (header + SQEs) and
     rings the doorbell; only the blob mutates. This drives the batched
     hypercall plane with arbitrary cursors/descriptors/links.
   - [Plan] ("fuzz-plan-*"): the fault-plan text mutates (sites,
     triggers, seeds); the image stays a known-good guest. *)

type plane = Image_bytes | Ring_batch | Plan

type case = {
  plane : plane;
  mode : Vm.Modes.t;
  code : string;  (* raw image bytes, loaded at Layout.image_base *)
  seed : int;
  policy : Wasp.Policy.t;  (* serializable constructors only *)
  fuel : int;
  plan : string option;  (* Cycles.Fault_plan.to_string form *)
}

let plane_tag = function
  | Image_bytes -> "fuzz-img"
  | Ring_batch -> "fuzz-ring"
  | Plan -> "fuzz-plan"

let plane_of_name name =
  let has_prefix p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  if has_prefix "fuzz-ring" then Ring_batch
  else if has_prefix "fuzz-plan" then Plan
  else Image_bytes

let policy_string c =
  match Wasp.Policy.to_string c.policy with
  | Some s -> s
  | None -> "deny_all" (* mutators never build Custom policies *)

let digest c =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            plane_tag c.plane;
            Vm.Modes.to_string c.mode;
            c.code;
            string_of_int c.seed;
            policy_string c;
            string_of_int c.fuel;
            Option.value c.plan ~default:"";
          ]))

let name c = Printf.sprintf "%s-%s" (plane_tag c.plane) (String.sub (digest c) 0 12)

let mem_size_for code =
  let need = Wasp.Layout.image_base + String.length code in
  max Wasp.Layout.default_mem_size
    (((need + 4095) / 4096) * 4096)

let image_of c : Wasp.Image.t =
  {
    name = name c;
    code = Bytes.of_string c.code;
    origin = Wasp.Layout.image_base;
    entry = Wasp.Layout.image_base;
    mode = c.mode;
    mem_size = mem_size_for c.code;
    symbols = [];
  }

(* ------------------------------------------------------------------ *)
(* .vxr round trip                                                     *)
(* ------------------------------------------------------------------ *)

let to_replay c =
  let r = Profiler.Replay.create () in
  Profiler.Replay.set_image r ~name:(name c) ~mode:(Vm.Modes.to_string c.mode)
    ~origin:Wasp.Layout.image_base ~entry:Wasp.Layout.image_base
    ~mem_size:(mem_size_for c.code) ~code:c.code;
  Profiler.Replay.set_env r ?fault_plan:c.plan ~seed:c.seed ~policy:(policy_string c)
    ~fuel:c.fuel ();
  r

let of_replay r =
  match
    ( Vm.Modes.of_string (Profiler.Replay.mode r),
      Wasp.Policy.of_string (Profiler.Replay.policy r) )
  with
  | None, _ -> Error (Printf.sprintf "unknown mode %S" (Profiler.Replay.mode r))
  | _, Error e -> Error e
  | Some mode, Ok policy ->
      (match Profiler.Replay.fault_plan r with
      | Some text -> (
          match Cycles.Fault_plan.of_string text with
          | Ok _ -> Ok ()
          | Error e -> Error (Printf.sprintf "bad fault plan: %s" e))
      | None -> Ok ())
      |> Result.map (fun () ->
             {
               plane = plane_of_name (Profiler.Replay.image_name r);
               mode;
               code = Profiler.Replay.code r;
               seed = Profiler.Replay.seed r;
               policy;
               fuel = Profiler.Replay.fuel r;
               plan = Profiler.Replay.fault_plan r;
             })

let to_vxr_string c = Profiler.Replay.to_string (to_replay c)

let of_vxr_string s =
  match Profiler.Replay.of_string s with
  | Error e -> Error e
  | Ok r -> of_replay r

(* ------------------------------------------------------------------ *)
(* Directory persistence                                               *)
(* ------------------------------------------------------------------ *)

let save_case ~dir c =
  let path = Filename.concat dir (name c ^ ".vxr") in
  Profiler.Replay.to_file (to_replay c) path;
  path

(* Malformed files are the expected state of a fuzz corpus directory
   (killed runs, hand truncation, cache corruption): every parse or
   validation failure comes back as a (file, reason) pair, never an
   exception. *)
let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> ([], [ (dir, msg) ])
  | files ->
      Array.sort compare files;
      Array.fold_left
        (fun (ok, bad) f ->
          if Filename.check_suffix f ".vxr" then
            let path = Filename.concat dir f in
            match Profiler.Replay.of_file path with
            | Error e -> (ok, (path, e) :: bad)
            | Ok r -> (
                match of_replay r with
                | Error e -> (ok, (path, e) :: bad)
                | Ok c -> (c :: ok, bad))
          else (ok, bad))
        ([], []) files
      |> fun (ok, bad) -> (List.rev ok, List.rev bad)

(* ------------------------------------------------------------------ *)
(* Built-in seed cases                                                 *)
(* ------------------------------------------------------------------ *)

(* Recursive fib: deep call stacks, arithmetic, a clean exit. *)
let fib_source =
  {|
start:
  mov r1, 10
  call fib
  mov r1, r0
  mov r0, 0
  out 1, r0
  hlt
fib:
  cmp r1, 2
  jlt fib_base
  push r1
  sub r1, 1
  call fib
  pop r1
  push r0
  sub r1, 2
  call fib
  pop r2
  add r0, r2
  ret
fib_base:
  mov r0, r1
  ret
|}

(* A guest that touches every memory width, shifts by register counts
   (the translator-parity surface PR 7 hardened), and issues a denied
   hypercall — coverage for fault, policy and opcode planes. *)
let touch_source =
  {|
start:
  mov r1, 0x9000
  mov r2, 0x1122334455667788
  st64 [r1], r2
  ld32 r3, [r1+4]
  st16 [r1+8], r3
  ld8 r4, [r1+8]
  mov r5, 65
  shl r2, r5        ; over-width shift count: mode-masked semantics
  shr r3, r5
  sar r4, r5
  mov r0, 12        ; clock hypercall (denied under deny_all)
  out 1, r0
  mov r1, r4
  mov r0, 0
  out 1, r0
  hlt
|}

(* The ring trampoline: copy the data blob over the hypercall ring
   (header + SQEs), ring the doorbell, exit with the completion count.
   Everything the host sees on the ring plane comes from the blob. *)
let trampoline_items blob =
  let open Asm in
  [
    Label "start";
    Insn (SMov (1, OLbl "data"));
    Insn (SMov (2, OImm (Int64.of_int Wasp.Layout.ring_base)));
    Insn (SMov (3, OImm (Int64.of_int (String.length blob))));
    Label "copy";
    Insn (SCmp (3, OImm 0L));
    Insn (SJcc (Instr.Eq, Lbl "ring"));
    Insn (SLoad (Instr.W8, 0, 1, 0));
    Insn (SStore (Instr.W8, 2, 0, OReg 0));
    Insn (SBin (Instr.Add, 1, OImm 1L));
    Insn (SBin (Instr.Add, 2, OImm 1L));
    Insn (SBin (Instr.Sub, 3, OImm 1L));
    Insn (SJmp (Lbl "copy"));
    Label "ring";
    Insn (SMov (0, OImm (Int64.of_int Wasp.Hc.ring_enter)));
    Insn (SOut (Wasp.Hc.port, OReg 0));
    Insn (SMov (1, OReg 0));
    Insn (SMov (0, OImm (Int64.of_int Wasp.Hc.exit_)));
    Insn (SOut (Wasp.Hc.port, OReg 0));
    Insn (SHlt);
    Label "data";
    Byte (List.init (String.length blob) (fun i -> Char.code blob.[i]));
  ]

let ring_case ~blob ~seed ~policy ~fuel ~plan =
  let blob =
    if String.length blob > Wasp.Layout.ring_size then
      String.sub blob 0 Wasp.Layout.ring_size
    else blob
  in
  let program = Asm.assemble ~origin:Wasp.Layout.image_base (trampoline_items blob) in
  {
    plane = Ring_batch;
    mode = Vm.Modes.Long;
    code = Bytes.to_string program.Asm.code;
    seed;
    policy;
    fuel;
    plan;
  }

(* Offset of the data blob inside a trampoline image: the trampoline
   prefix is fixed, so it is the encoded size of the empty-blob
   trampoline. Mutators only touch bytes at or past this offset. *)
let ring_data_offset =
  lazy (Bytes.length (Asm.assemble ~origin:Wasp.Layout.image_base (trampoline_items "")).Asm.code)

(* A well-formed one-op batch: sq_tail = 1, one write(1, buf, len) SQE.
   Field layout per docs/hypercalls.md: nr, flags, args0..4, link. *)
let seed_ring_blob () =
  let b = Buffer.create 128 in
  let u64 v =
    for i = 0 to 7 do
      Buffer.add_char b (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
    done
  in
  u64 0L (* sq_head *);
  u64 1L (* sq_tail: one pending SQE *);
  u64 0L (* cq_head *);
  u64 0L (* cq_tail *);
  (* SQE 0: write(fd=1, buf=arg area, len=4) *)
  u64 (Int64.of_int Wasp.Hc.write);
  u64 0L (* flags *);
  u64 1L (* arg0: fd *);
  u64 0L (* arg1: buf (guest address 0) *);
  u64 4L (* arg2: len *);
  u64 0L;
  u64 0L;
  u64 0L (* link *);
  Buffer.contents b

let default_fuel = 200_000

let seeds () =
  let img src ~seed ~policy ~plan =
    let program = Asm.assemble_string ~origin:Wasp.Layout.image_base src in
    {
      plane = Image_bytes;
      mode = Vm.Modes.Long;
      code = Bytes.to_string program.Asm.code;
      seed;
      policy;
      fuel = default_fuel;
      plan;
    }
  in
  [
    img fib_source ~seed:0xACE ~policy:Wasp.Policy.deny_all ~plan:None;
    img touch_source ~seed:0xACE ~policy:Wasp.Policy.deny_all ~plan:None;
    ring_case ~blob:(seed_ring_blob ()) ~seed:0xACE
      ~policy:(Wasp.Policy.Mask (Wasp.Policy.mask_of_list [ Wasp.Hc.write; Wasp.Hc.read ]))
      ~fuel:default_fuel ~plan:None;
    (* the Plan plane seed: fib under the standard non-fatal chaos plan *)
    {
      (img fib_source ~seed:0xACE ~policy:Wasp.Policy.deny_all
         ~plan:(Some "seed=0xC4405;spurious_exit=@0+2;ept_storm=@1+3"))
      with
      plane = Plan;
    };
  ]
