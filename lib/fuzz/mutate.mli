(** Plane-aware deterministic mutators. Every random choice flows
    through the supplied {!Cycles.Rng.t}, so a campaign is a pure
    function of its seed.

    Image-plane mutations are opcode-aware when the blob decodes
    (instruction replace/insert/delete/splice, immediates retargeted at
    interesting machine constants) with raw byte havoc as fallback;
    ring-plane mutations touch only the data blob past the trampoline
    (header cursors, SQE descriptors/links); plan-plane mutations
    add/drop/perturb fault sites and always yield a plan that still
    parses. One in four mutations perturbs the environment (seed, fuel,
    policy) regardless of plane. *)

val mutate : rng:Cycles.Rng.t -> Corpus.case -> Corpus.case

val rounds : rng:Cycles.Rng.t -> int -> Corpus.case -> Corpus.case
(** [rounds ~rng n c]: [n] stacked mutations (at least one). *)

val havoc_bytes : Cycles.Rng.t -> string -> from:int -> string
(** Raw byte havoc on the region at or past [from] (exposed for tests). *)
