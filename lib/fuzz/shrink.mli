(** Delta-debugging minimizer for findings.

    Guarantees (checked by the qcheck suite in [test/test_fuzz.ml]):
    every intermediate and the final result satisfy [check] (the shrink
    preserves the finding class it was given), the result is never
    larger than the input, and [check] is called at most [budget]
    times. *)

val size : Corpus.case -> int
(** Shrink metric: code bytes + plan text bytes. *)

val shrink :
  check:(Corpus.case -> bool) -> ?budget:int -> Corpus.case -> Corpus.case
(** [check] must hold on the input case; [budget] defaults to
    {!check_calls_bound}. *)

val check_calls_bound : int
