(** The differential oracle: execute one case under every configuration
    the determinism contracts say must agree, and turn any disagreement
    into a finding.

    Arms: interpreter vs {!Vm.Translate} (cycle-exact), [`Memcpy] vs
    [`Cow] snapshot restore (guest-visible results; timing excluded by
    design), a [.vxr] serialize → reparse → re-execute round trip, and
    host exceptions anywhere. Canaries are deliberately wrong
    harness-side arms used by the fuzz smoke test to prove a planted bug
    is detected. *)

type obs = {
  o_outcome : string;
  o_ret : int64;
  o_cycles : int64;
  o_hypercalls : int;
  o_denied : int;
  o_state : string;  (** MD5 of final registers + guest memory *)
  o_events : (int64 * int * int64 array * int64) list;
      (** hypercall transcript: at, nr, args, ret *)
}

type fclass =
  | Host_exception  (** an exception escaped the runtime *)
  | Engine_divergence  (** interpreter vs translator *)
  | Restore_divergence  (** memcpy vs CoW snapshot restore *)
  | Replay_divergence  (** .vxr round trip broke *)
  | Canary_divergence  (** a planted harness bug was detected *)

val fclass_name : fclass -> string

type canary = Shift_mask | Cycle_skew

val canary_of_string : string -> canary option
(** ["shift-mask"] / ["cycle-skew"]. *)

val canary_name : canary -> string

type verdict = {
  features : string list;  (** coverage features of the canonical run *)
  recording : Profiler.Replay.t option;
      (** the case + canonical transcript, as a committed fixture would
          carry it; [None] only when the canonical arm crashed *)
  finding : (fclass * string) option;
}

val coverage_spec : string
(** The vtrace probe spec attached to the canonical arm. *)

val coarse_outcome : string -> string
(** Collapse a detailed outcome to the ["exited"]/["faulted"]/["fuel"]
    form [.vxr] recordings carry. *)

val classify : ?canary:canary -> Corpus.case -> verdict
(** Run every arm. Deterministic: same case (and canary) → same
    verdict. *)

(** {1 Exposed for tests} *)

type arm_result = Obs of obs | Crash of string

val run_arm :
  ?translate:bool ->
  ?reset:Wasp.Runtime.reset_mode ->
  ?runs:int ->
  ?snapshot_key:string ->
  ?probes:Vtrace.Engine.t ->
  ?profiler:Profiler.Profile.t ->
  ?post:(Wasp.Runtime.t -> unit) ->
  ?recorder:Profiler.Replay.t ->
  Corpus.case ->
  arm_result

val diff_full : obs -> obs -> string option
val diff_visible : obs -> obs -> string option
