(* The campaign driver: corpus scheduling, coverage accounting, finding
   dedup, shrinking, and fixture emission.

   Determinism: with [iters] set (and no time budget) the whole
   campaign is a pure function of [seed] — same seed, same corpus, same
   coverage bit count, same findings, in the same order. A [time_budget]
   bounds wall time instead and is documented as non-deterministic in
   iteration count (the per-iteration work is still seeded). *)

type config = {
  seed : int;
  iters : int option;  (* iteration count: the deterministic mode *)
  time_budget : float option;  (* seconds, measured with [now] *)
  now : unit -> float;
  corpus_dir : string option;  (* persisted coverage-novel cases *)
  fixtures_out : string option;  (* shrunk reproducer .vxr files *)
  canary : Oracle.canary option;
  max_findings : int;
  shrink_budget : int;
  log : string -> unit;
}

let default_config =
  {
    seed = 0xF022;
    iters = Some 200;
    time_budget = None;
    now = (fun () -> 0.);
    corpus_dir = None;
    fixtures_out = None;
    canary = None;
    max_findings = 8;
    shrink_budget = Shrink.check_calls_bound;
    log = ignore;
  }

type finding = {
  f_class : Oracle.fclass;
  f_detail : string;
  f_case : Corpus.case;  (* as found *)
  f_shrunk : Corpus.case;  (* after delta debugging *)
  f_fixture : string option;  (* written reproducer path *)
}

type summary = {
  iterations : int;
  corpus_size : int;
  coverage_bits : int;
  findings : finding list;
  skipped : (string * string) list;  (* unloadable corpus files *)
}

(* Findings are deduplicated by class plus the arm prefix of the detail
   (the text before the first ':'), so "cycles 812 vs 813" and "cycles
   99 vs 101" from the same arm collapse into one reproducer. *)
let finding_key cls detail =
  let prefix =
    match String.index_opt detail ':' with
    | Some i -> String.sub detail 0 i
    | None -> detail
  in
  Oracle.fclass_name cls ^ "|" ^ prefix

let mkdir_p dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write_fixture config (shrunk : Corpus.case) =
  match config.fixtures_out with
  | None -> None
  | Some dir -> (
      mkdir_p dir;
      (* the fixture carries the canonical transcript of the shrunk
         case so CI can diff replays against it *)
      match (Oracle.classify ?canary:config.canary shrunk).Oracle.recording with
      | None -> None
      | Some rc ->
          let path = Filename.concat dir (Corpus.name shrunk ^ ".vxr") in
          Profiler.Replay.to_file rc path;
          Some path)

let run config : summary =
  let rng = Cycles.Rng.create ~seed:config.seed in
  let cov = Coverage.create () in
  let corpus = ref [||] in
  let seen = Hashtbl.create 256 in
  let findings = ref [] in
  let finding_keys = Hashtbl.create 8 in
  let started = config.now () in
  let add_to_corpus c =
    corpus := Array.append !corpus [| c |];
    match config.corpus_dir with
    | Some dir ->
        mkdir_p dir;
        ignore (Corpus.save_case ~dir c)
    | None -> ()
  in
  let handle_finding case cls detail =
    let key = finding_key cls detail in
    if not (Hashtbl.mem finding_keys key) then begin
      Hashtbl.replace finding_keys key ();
      config.log
        (Printf.sprintf "finding [%s] %s (case %s, shrinking...)"
           (Oracle.fclass_name cls) detail (Corpus.name case));
      let check c =
        match (Oracle.classify ?canary:config.canary c).Oracle.finding with
        | Some (cls', _) -> cls' = cls
        | None -> false
      in
      let shrunk = Shrink.shrink ~check ~budget:config.shrink_budget case in
      let path = write_fixture config shrunk in
      config.log
        (Printf.sprintf "  shrunk %s: %d -> %d bytes%s" (Corpus.name shrunk)
           (Shrink.size case) (Shrink.size shrunk)
           (match path with Some p -> " -> " ^ p | None -> ""));
      findings :=
        { f_class = cls; f_detail = detail; f_case = case; f_shrunk = shrunk;
          f_fixture = path }
        :: !findings
    end
  in
  (* Absorb one case: classify, account coverage, keep if novel. *)
  let absorb ~always_keep case =
    match Hashtbl.mem seen (Corpus.digest case) with
    | true -> ()
    | false ->
        Hashtbl.replace seen (Corpus.digest case) ();
        let v = Oracle.classify ?canary:config.canary case in
        let fresh = Coverage.observe cov v.Oracle.features in
        if fresh > 0 || always_keep then add_to_corpus case;
        (match v.Oracle.finding with
        | Some (cls, detail) -> handle_finding case cls detail
        | None -> ())
  in
  (* seed corpus: built-ins plus whatever the corpus directory holds *)
  let loaded, skipped =
    match config.corpus_dir with
    | Some dir when Sys.file_exists dir -> Corpus.load_dir dir
    | _ -> ([], [])
  in
  List.iter (fun (path, reason) -> config.log (Printf.sprintf "skipping %s: %s" path reason)) skipped;
  List.iter (absorb ~always_keep:true) (Corpus.seeds ());
  List.iter (absorb ~always_keep:false) loaded;
  (* the mutation loop *)
  let iterations = ref 0 in
  let stop () =
    List.length !findings >= config.max_findings
    || (match config.iters with Some n -> !iterations >= n | None -> false)
    || (match config.time_budget with
       | Some s -> config.now () -. started >= s
       | None -> false)
    || (config.iters = None && config.time_budget = None && !iterations >= 200)
  in
  while not (stop ()) do
    incr iterations;
    let parent = !corpus.(Cycles.Rng.int rng (Array.length !corpus)) in
    let candidate = Mutate.rounds ~rng (1 + Cycles.Rng.int rng 4) parent in
    absorb ~always_keep:false candidate;
    if !iterations mod 50 = 0 then
      config.log
        (Printf.sprintf "iter %d: corpus=%d coverage_bits=%d findings=%d"
           !iterations (Array.length !corpus) (Coverage.bit_count cov)
           (List.length !findings))
  done;
  {
    iterations = !iterations;
    corpus_size = Array.length !corpus;
    coverage_bits = Coverage.bit_count cov;
    findings = List.rev !findings;
    skipped;
  }

(* ------------------------------------------------------------------ *)
(* Fixture replay (the CI `fixtures` step)                              *)
(* ------------------------------------------------------------------ *)

(* Re-execute a recorded fixture on one engine and rebuild the
   recording; any Replay.diff divergence or byte-level mismatch against
   the committed file is a failure. *)
let replay_on ~translate (case : Corpus.case) (recorded : Profiler.Replay.t) =
  let recorder = Profiler.Replay.create () in
  match Oracle.run_arm ~translate ~recorder case with
  | Oracle.Crash d -> Error ("crashed: " ^ d)
  | Oracle.Obs obs ->
      let rebuilt = Corpus.to_replay case in
      List.iter
        (fun (at, nr, args, ret) -> Profiler.Replay.add_event rebuilt ~at ~nr ~args ~ret)
        obs.Oracle.o_events;
      Profiler.Replay.finish rebuilt ~cycles:obs.Oracle.o_cycles
        ~outcome:(Oracle.coarse_outcome obs.Oracle.o_outcome)
        ~return_value:obs.Oracle.o_ret;
      let diffs = Profiler.Replay.diff recorded rebuilt in
      if diffs <> [] then Error (String.concat "; " diffs)
      else if
        Profiler.Replay.to_string rebuilt <> Profiler.Replay.to_string recorded
      then Error "recording text differs byte-for-byte"
      else Ok ()

let check_fixture path =
  match Profiler.Replay.of_file path with
  | Error e -> Error (Printf.sprintf "%s: unparseable: %s" path e)
  | Ok recorded -> (
      match Corpus.of_replay recorded with
      | Error e -> Error (Printf.sprintf "%s: not a fuzz case: %s" path e)
      | Ok case -> (
          match replay_on ~translate:false case recorded with
          | Error e -> Error (Printf.sprintf "%s [interp]: %s" path e)
          | Ok () -> (
              match replay_on ~translate:true case recorded with
              | Error e -> Error (Printf.sprintf "%s [translate]: %s" path e)
              | Ok () -> Ok path)))

(* Replay every committed .vxr on both engines; returns the number that
   passed or the list of divergences. *)
let check_fixtures ~dir ~log =
  match Sys.readdir dir with
  | exception Sys_error e -> Error [ dir ^ ": " ^ e ]
  | files ->
      Array.sort compare files;
      let ok = ref 0 and errs = ref [] in
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".vxr" then
            match check_fixture (Filename.concat dir f) with
            | Ok path ->
                incr ok;
                log (Printf.sprintf "fixture ok: %s" path)
            | Error e -> errs := e :: !errs)
        files;
      if !errs = [] then Ok !ok else Error (List.rev !errs)

(* ------------------------------------------------------------------ *)
(* Corpus fixture emission                                              *)
(* ------------------------------------------------------------------ *)

(* Record canonical transcripts for up to [n] seed cases (one per plane
   first) into [dir] — the committed reproducer corpus is bootstrapped
   from these even when a campaign finds no real divergence. *)
let emit_corpus_fixtures ~dir ~n =
  mkdir_p dir;
  let all = Corpus.seeds () in
  let by_plane =
    List.sort_uniq (fun a b -> compare a.Corpus.plane b.Corpus.plane) all
  in
  let rest = List.filter (fun c -> not (List.memq c by_plane)) all in
  let picks = List.filteri (fun i _ -> i < n) (by_plane @ rest) in
  List.filter_map
    (fun case ->
      match (Oracle.classify case).Oracle.recording with
      | None -> None
      | Some rc ->
          let path = Filename.concat dir (Corpus.name case ^ ".vxr") in
          Profiler.Replay.to_file rc path;
          Some path)
    picks
