(* Coverage signal: deterministic execution features hashed into a
   fixed bitmap.

   Nothing here instruments the VMM — every feature is read back from
   observability surfaces that already exist: the always-on
   kvm_exits_total{reason} tally, exit-kind edges from the flight ring,
   the profiler's per-opcode table, and vtrace per-site firing maps.
   Counts are bucketized to their log2 so "ran the loop 1000 vs 1001
   times" is not novelty but "first time a guest took 1000+ EPT
   violations" is. *)

let bitmap_bits = 1 lsl 16

type t = {
  bits : Bytes.t;
  mutable set_count : int;
}

let create () = { bits = Bytes.make (bitmap_bits / 8) '\000'; set_count = 0 }

let bit_count t = t.set_count

(* FNV-1a; Hashtbl.hash is not stable across compiler versions and the
   corpus bitmap must be. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int (Int64.logand !h (Int64.of_int (bitmap_bits - 1)))

let log2_bucket v =
  if v <= 0 then 0
  else
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 v

let feature name v = Printf.sprintf "%s#%d" name (log2_bucket v)

(* Mark the features' bits; returns how many were new. *)
let observe t features =
  List.fold_left
    (fun fresh f ->
      let bit = fnv1a f in
      let byte = bit lsr 3 and mask = 1 lsl (bit land 7) in
      let cur = Char.code (Bytes.get t.bits byte) in
      if cur land mask <> 0 then fresh
      else begin
        Bytes.set t.bits byte (Char.chr (cur lor mask));
        t.set_count <- t.set_count + 1;
        fresh + 1
      end)
    0 features

(* ------------------------------------------------------------------ *)
(* Feature extraction                                                  *)
(* ------------------------------------------------------------------ *)

let flight_kind_name (k : Profiler.Flight.kind) =
  match k with
  | Profiler.Flight.Halt -> "hlt"
  | Io_out { port; _ } -> Printf.sprintf "out%d" port
  | Io_in { port } -> Printf.sprintf "in%d" port
  | Fault f -> "fault:" ^ f
  | Fuel -> "fuel"
  | Ept _ -> "ept"
  | Injected site -> "inj:" ^ site

(* Exit-kind edges: consecutive flight-ring entries as (from, to)
   pairs — the control-flow-sensitive half of the exit signal. *)
let flight_features flight =
  match flight with
  | None -> []
  | Some fl ->
      let kinds = List.map (fun e -> flight_kind_name e.Profiler.Flight.kind) (Profiler.Flight.entries fl) in
      let rec edges acc = function
        | a :: (b :: _ as rest) -> edges (("edge:" ^ a ^ ">" ^ b) :: acc) rest
        | _ -> acc
      in
      (* edges as presence features (no counts): the ring is bounded,
         so counting would make coverage depend on ring capacity *)
      List.sort_uniq compare (edges [] kinds)

let kvm_features sys =
  List.map (fun (reason, n) -> feature ("exit:" ^ reason) n) (Kvmsim.Kvm.exit_reason_counts sys)

let opcode_features prof =
  List.map
    (fun (op : Profiler.Profile.op_stat) -> feature ("op:" ^ op.Profiler.Profile.op_name) op.op_count)
    (Profiler.Profile.opcodes prof)

let vtrace_features engine =
  List.map (fun (name, v) -> feature ("vt:" ^ name) (int_of_float v)) (Vtrace.Engine.coverage engine)

let outcome_features ~outcome ~ret ~hypercalls ~denied =
  [
    "outcome:" ^ outcome;
    feature "ret" (Int64.to_int (Int64.logand ret 0xFFFFFFFFL));
    feature "hc" hypercalls;
    feature "denied" denied;
  ]
