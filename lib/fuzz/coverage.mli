(** Coverage signal: execution features hashed into a fixed bitmap.

    All features are read from existing observability surfaces — the
    always-on KVM exit-reason tally, exit-kind edges from the flight
    ring, the profiler's per-opcode table and vtrace per-site firing
    maps — bucketized (log2 of the count) and FNV-hashed into a 64K-bit
    map. An input is "interesting" when it sets a bit no earlier input
    set. *)

type t

val create : unit -> t

val bit_count : t -> int
(** Bits currently set — the corpus-wide coverage count. *)

val observe : t -> string list -> int
(** Mark each feature's bit; returns how many bits were newly set. *)

val feature : string -> int -> string
(** [feature name count]: the bucketized feature string
    (["name#log2bucket"]). *)

val log2_bucket : int -> int

val flight_features : Profiler.Flight.t option -> string list
(** Exit-kind edge pairs from the flight ring, deduplicated (presence,
    not counts: the ring is bounded). *)

val kvm_features : Kvmsim.Kvm.system -> string list
(** Bucketized [kvm_exits_total{reason}] counts. *)

val opcode_features : Profiler.Profile.t -> string list
(** Bucketized per-opcode execution counts. *)

val vtrace_features : Vtrace.Engine.t -> string list
(** Bucketized per-site firing map from {!Vtrace.Engine.coverage}. *)

val outcome_features :
  outcome:string -> ret:int64 -> hypercalls:int -> denied:int -> string list
