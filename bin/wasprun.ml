(* wasprun: load an assembled vx image and run it under Wasp, like
   feeding a raw binary to the paper's runtime API.

     wasprun FILE.vxa [--mode real|protected|long] [--allow read,write,...]
     wasprun --example         # run a built-in recursive-fib demo image
     wasprun --example --profile
                               # per-function / per-opcode cycle tables
     wasprun --example --record out.vxr
     wasprun --replay out.vxr  # re-execute and diff cycle-for-cycle
     wasprun --example-fault   # seeded guest fault: flight-recorder dump
     wasprun --example --chaos # run under the default fault plan
     wasprun --example --fault-plan plan.txt
                               # run under a custom fault plan
     wasprun --example --trace-json t.json --metrics
                               # telemetry: Chrome trace + metrics dump
     wasprun --check-trace t.json
                               # validate a trace-event dump (CI smoke)
     wasprun --example --repeat 8 --explain-slowest 2
                               # causal timelines of the 2 slowest runs
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Recursive fib: deep call stacks give the profiler real functions to
   attribute cycles to (start, fib, and the [vmm] residue). *)
let example_source =
  {|
; demo: recursively compute fib(12) = 144, report it via the exit hypercall
start:
  mov r1, 12
  call fib
  mov r1, r0     ; exit code = fib(12)
  mov r0, 0      ; exit(r1)
  out 1, r0
  hlt

; fib(n): argument in r1, result in r0; clobbers r2
fib:
  cmp r1, 2
  jlt fib_base
  push r1
  sub r1, 1
  call fib       ; r0 = fib(n-1)
  pop r1
  push r0
  sub r1, 2
  call fib       ; r0 = fib(n-2)
  pop r2
  add r0, r2
  ret
fib_base:
  mov r0, r1
  ret
|}

(* Hammer a hypercall past the flight ring's warm-up, then touch
   unmapped memory: the dump shows the faulting PC and the exits that
   led up to it. *)
let example_fault_source =
  {|
; demo: 40 hypercall exits, then a wild load faults the virtine
start:
  mov r2, 40
hammer:
  mov r0, 12     ; clock hypercall (denied under default policy; still exits)
  out 1, r0
  sub r2, 1
  cmp r2, 0
  jgt hammer
  mov r1, 0x7ffffff0
  ld64 r0, [r1]  ; unmapped: page fault
  hlt
|}

let hc_by_name =
  [
    ("read", Wasp.Hc.read); ("write", Wasp.Hc.write); ("open", Wasp.Hc.open_);
    ("close", Wasp.Hc.close); ("stat", Wasp.Hc.stat); ("snapshot", Wasp.Hc.snapshot);
    ("get_data", Wasp.Hc.get_data); ("return_data", Wasp.Hc.return_data);
    ("send", Wasp.Hc.send); ("recv", Wasp.Hc.recv); ("brk", Wasp.Hc.brk);
    ("clock", Wasp.Hc.clock); ("getrandom", Wasp.Hc.getrandom);
    ("ring_enter", Wasp.Hc.ring_enter);
  ]

let policy_to_string p =
  match Wasp.Policy.to_string p with
  | Some s -> s
  | None -> invalid_arg "cannot record a Custom policy"

let policy_of_string = Wasp.Policy.of_string

let mode_of_string s =
  match Vm.Modes.of_string s with
  | Some m -> Ok m
  | None -> Error (Printf.sprintf "unknown mode %S" s)

let outcome_string = function
  | Wasp.Runtime.Exited _ -> "exited"
  | Wasp.Runtime.Faulted _ -> "faulted"
  | Wasp.Runtime.Fuel_exhausted -> "fuel"

let default_fuel = 50_000_000

(* --chaos: non-fatal turbulence (spurious exits and EPT storms perturb
   the timeline without killing the guest), so a recorded chaos run still
   exits cleanly and its .vxr replays prove plan fidelity. Scheduled
   triggers rather than probabilities: even a single short invocation
   takes visible injections. *)
let default_chaos_plan = "seed=0xC4405;spurious_exit=@0+2;ept_storm=@1+3"

(* Validate a Chrome trace-event dump: well-formed JSON, a non-empty
   traceEvents array, and the invocation phase spans present. *)
let check_trace path =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "trace invalid: %s\n" m; 1) fmt in
  match Vjs.Json.parse (read_file path) with
  | exception Vjs.Jsvalue.Js_error msg -> fail "JSON parse error: %s" msg
  | exception Sys_error msg -> fail "%s" msg
  | Vjs.Jsvalue.Obj tbl -> (
      match Hashtbl.find_opt tbl "traceEvents" with
      | Some (Vjs.Jsvalue.Arr v) ->
          let events = Vjs.Jsvalue.vec_to_list v in
          let names =
            List.filter_map
              (function
                | Vjs.Jsvalue.Obj o -> (
                    match Hashtbl.find_opt o "name" with
                    | Some (Vjs.Jsvalue.Str s) -> Some s
                    | _ -> None)
                | _ -> None)
              events
          in
          let required = [ "invocation"; "provision"; "boot"; "execute"; "clean" ] in
          let missing = List.filter (fun n -> not (List.mem n names)) required in
          if events = [] then fail "empty traceEvents"
          else if missing <> [] then
            fail "missing spans: %s" (String.concat ", " missing)
          else begin
            Printf.printf "trace ok: %d events, phases covered\n" (List.length events);
            0
          end
      | _ -> fail "no traceEvents array")
  | _ -> fail "top level is not an object"

(* --probe: compile the (repeatable, ';'-joined) probe spec. *)
let build_probes probe =
  match probe with
  | [] -> Ok None
  | specs -> (
      match Vtrace.Engine.of_string (String.concat "; " specs) with
      | Ok e -> Ok (Some e)
      | Error msg -> Error msg)

(* Probe output goes to --probe-out if given, stdout otherwise — the
   same bytes either way, so recording and replay tables can be diffed. *)
let emit_probes probes probe_out =
  match probes with
  | None -> ()
  | Some e -> (
      let text = Vtrace.Engine.render e in
      match probe_out with
      | Some path ->
          write_file path text;
          Printf.printf "probe aggregates written to %s\n" path
      | None ->
          print_newline ();
          print_string text)

(* --vhttp: one request through the ringed static-file server (§6.3 with
   the batched hypercall ring; see docs/hypercalls.md). The host
   environment is rebuilt deterministically — the static corpus plus a
   socket pair already carrying "GET /index.html" — so a recorded run
   replays byte-identically: [replay_file] recreates the same
   environment whenever the recorded image is a fileserver. *)
let setup_vhttp_env w =
  let path = Vhttp.Fileserver.add_default_files (Wasp.Runtime.env w) in
  let client_end, server_end = Wasp.Hostenv.socket_pair (Wasp.Runtime.env w) in
  ignore
    (Wasp.Hostenv.send client_end
       (Bytes.of_string (Vhttp.Fileserver.request_for ~path)));
  (client_end, server_end)

let is_fileserver_image name =
  String.length name >= 10 && String.sub name 0 10 = "fileserver"

let run_vhttp ~record ~seed ~translate ~probe ~probe_out ?flight_capacity () =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "vhttp: %s\n" m; 1) fmt in
  match build_probes probe with
  | Error msg -> fail "bad probe spec: %s" msg
  | Ok probes -> (
      let compiled = Vhttp.Fileserver.compile_ring ~snapshot:false in
      match Vcc.Compile.find_virtine compiled "handle" with
      | None -> fail "ringed fileserver has no virtine handler"
      | Some vi ->
          let image = vi.Vcc.Compile.image in
          let policy = vi.Vcc.Compile.policy in
          let w = Wasp.Runtime.create ~seed ~translate ?flight_capacity () in
          Wasp.Runtime.set_probes w probes;
          let client_end, server_end = setup_vhttp_env w in
          let recorder =
            match record with
            | None -> None
            | Some _ ->
                let rc = Profiler.Replay.create () in
                Profiler.Replay.set_image rc ~name:image.Wasp.Image.name
                  ~mode:(Vm.Modes.to_string image.Wasp.Image.mode)
                  ~origin:image.Wasp.Image.origin ~entry:image.Wasp.Image.entry
                  ~mem_size:image.Wasp.Image.mem_size
                  ~code:(Bytes.to_string image.Wasp.Image.code);
                Profiler.Replay.set_env rc ~seed ~policy:(policy_to_string policy)
                  ~fuel:default_fuel ();
                Wasp.Runtime.set_recorder w (Some rc);
                Some rc
          in
          let r =
            Wasp.Runtime.run w image ~policy ~conn:server_end ~fuel:default_fuel ()
          in
          (match (recorder, record) with
          | Some rc, Some path ->
              Profiler.Replay.finish rc ~cycles:r.Wasp.Runtime.cycles
                ~outcome:(outcome_string r.Wasp.Runtime.outcome)
                ~return_value:r.Wasp.Runtime.return_value;
              write_file path (Profiler.Replay.to_string rc);
              Printf.printf "recording written to %s (%d hypercall events)\n" path
                (Profiler.Replay.event_count rc)
          | _ -> ());
          emit_probes probes probe_out;
          let response = Bytes.to_string (Wasp.Hostenv.recv client_end ~max:8192) in
          (match r.Wasp.Runtime.outcome with
          | Wasp.Runtime.Exited code ->
              Printf.printf
                "served %d response bytes, exited with %Ld  [%.1f us, %d hypercalls]\n"
                (String.length response) code
                (Cycles.Clock.to_us (Wasp.Runtime.clock w) r.Wasp.Runtime.cycles)
                r.Wasp.Runtime.hypercalls;
              0
          | Wasp.Runtime.Faulted f ->
              Printf.printf "faulted: %s\n"
                (Format.asprintf "%a" Vm.Cpu.pp_exit (Vm.Cpu.Fault f));
              1
          | Wasp.Runtime.Fuel_exhausted ->
              print_endline "out of fuel";
              1))

(* Re-execute a .vxr recording under the recorded seed/policy/fuel and
   diff the fresh transcript against it, cycle for cycle. Replaying with
   the opposite of the recording engine (--no-translate vs the default
   translated run, or vice versa) is the cross-engine equivalence
   check: zero divergence means interpreter and translator agree on
   every hypercall cycle stamp. *)
let replay_file ~translate ~probe ~probe_out ?flight_capacity path =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "replay: %s\n" m; 1) fmt in
  match Profiler.Replay.of_string (read_file path) with
  | exception Sys_error msg -> fail "%s" msg
  | Error msg -> fail "cannot parse %s: %s" path msg
  | Ok recorded -> (
      match
        ( mode_of_string (Profiler.Replay.mode recorded),
          policy_of_string (Profiler.Replay.policy recorded) )
      with
      | Error msg, _ | _, Error msg -> fail "%s" msg
      | Ok mode, Ok policy ->
          match build_probes probe with
          | Error msg -> fail "bad probe spec: %s" msg
          | Ok probes ->
          let image : Wasp.Image.t =
            {
              name = Profiler.Replay.image_name recorded;
              code = Bytes.of_string (Profiler.Replay.code recorded);
              origin = Profiler.Replay.origin recorded;
              entry = Profiler.Replay.entry recorded;
              mode;
              mem_size = Profiler.Replay.mem_size recorded;
              symbols = [];
            }
          in
          let w =
            Wasp.Runtime.create ~seed:(Profiler.Replay.seed recorded) ~translate
              ?flight_capacity ()
          in
          Wasp.Runtime.set_probes w probes;
          (* Chaos recordings carry their fault plan; re-arm an identical
             one so injected turbulence reproduces cycle-for-cycle. *)
          let plan_err = ref None in
          (match Profiler.Replay.fault_plan recorded with
          | Some text -> (
              match Cycles.Fault_plan.of_string text with
              | Ok plan -> Wasp.Runtime.set_fault_plan w (Some plan)
              | Error msg -> plan_err := Some msg)
          | None -> ());
          if !plan_err <> None then fail "bad recorded fault plan: %s" (Option.get !plan_err)
          else begin
          let fresh = Profiler.Replay.create () in
          Profiler.Replay.set_image fresh ~name:image.name
            ~mode:(Vm.Modes.to_string image.mode) ~origin:image.origin ~entry:image.entry
            ~mem_size:image.mem_size
            ~code:(Bytes.to_string image.code);
          Profiler.Replay.set_env fresh
            ?fault_plan:(Profiler.Replay.fault_plan recorded)
            ~seed:(Profiler.Replay.seed recorded)
            ~policy:(Profiler.Replay.policy recorded)
            ~fuel:(Profiler.Replay.fuel recorded) ();
          Wasp.Runtime.set_recorder w (Some fresh);
          (* Fileserver recordings (--vhttp) need the host environment the
             recording ran against: rebuild the corpus + pending request. *)
          let conn =
            if is_fileserver_image image.name then Some (snd (setup_vhttp_env w))
            else None
          in
          let r =
            Wasp.Runtime.run w image ~policy ?conn
              ~fuel:(Profiler.Replay.fuel recorded) ()
          in
          Profiler.Replay.finish fresh ~cycles:r.Wasp.Runtime.cycles
            ~outcome:(outcome_string r.Wasp.Runtime.outcome)
            ~return_value:r.Wasp.Runtime.return_value;
          emit_probes probes probe_out;
          (match Profiler.Replay.diff recorded fresh with
          | [] ->
              Printf.printf
                "replay ok: zero divergence (%d hypercall events, %Ld cycles, outcome %s)\n"
                (Profiler.Replay.event_count recorded)
                (Profiler.Replay.total_cycles recorded)
                (Profiler.Replay.outcome recorded);
              0
          | divergences ->
              Printf.eprintf "replay DIVERGED (%d differences):\n" (List.length divergences);
              List.iter (fun d -> Printf.eprintf "  %s\n" d) divergences;
              1)
          end)

(* --mem-stats: page-sharing figures for the run, read back from the
   gauges the runtime maintains plus the process-wide page cache. *)
let print_mem_stats hub w =
  let m = Telemetry.Hub.metrics hub in
  let gauge name =
    match Telemetry.Metrics.find m name with
    | Some (Telemetry.Metrics.Gauge g) -> int_of_float g.Telemetry.Metrics.g_value
    | _ -> 0
  in
  let resident = gauge "wasp_mem_resident_pages" in
  let shared = gauge "wasp_mem_shared_pages" in
  let ept = (Kvmsim.Kvm.stats (Wasp.Runtime.kvm w)).Kvmsim.Kvm.ept_violations in
  let hits = Vm.Memory.Page_cache.hits () in
  let misses = Vm.Memory.Page_cache.misses () in
  let interned = hits + misses in
  let dedup =
    if interned = 0 then 0.0 else float_of_int hits /. float_of_int interned
  in
  print_newline ();
  print_endline "--- memory ---";
  Printf.printf "resident pages    %d (%d KB private)\n" resident (resident * 4);
  Printf.printf "shared pages      %d (refs into the page cache)\n" shared;
  Printf.printf "cow faults        %d (EPT write-protection violations)\n" ept;
  Printf.printf "page cache        %d pages, %d KB\n"
    (Vm.Memory.Page_cache.entries ())
    (Vm.Memory.Page_cache.bytes () / 1024);
  Printf.printf "dedup ratio       %.2f (%d of %d interned pages were already resident)\n"
    dedup hits interned;
  print_endline "--------------"

let run file example example_fault vhttp mode allow all trace_json metrics mem_stats check
    profile profile_folded record replay seed chaos fault_plan_file repeat
    explain_slowest translate probe probe_out flight_capacity =
  match (check, replay) with
  | _ when (match flight_capacity with Some n -> n < 1 | None -> false) ->
      prerr_endline "error: --flight-capacity must be >= 1";
      1
  | Some path, _ -> check_trace path
  | None, Some path -> replay_file ~translate ~probe ~probe_out ?flight_capacity path
  | None, None when vhttp ->
      run_vhttp ~record ~seed ~translate ~probe ~probe_out ?flight_capacity ()
  | None, None -> (
      let source =
        if example then Some example_source
        else if example_fault then Some example_fault_source
        else match file with Some f -> Some (read_file f) | None -> None
      in
      match source with
      | None ->
          prerr_endline "error: pass an assembly file or --example / --example-fault";
          1
      | Some src -> (
          match Asm.assemble_string ~origin:Wasp.Layout.image_base src with
          | exception Asm.Asm_error msg ->
              Printf.eprintf "assembly error: %s\n" msg;
              1
          | program -> (
              let image = Wasp.Image.of_program ~name:"wasprun" ~mode program in
              let policy =
                if all then Wasp.Policy.allow_all
                else
                  Wasp.Policy.of_list
                    (List.filter_map (fun n -> List.assoc_opt n hc_by_name) allow)
              in
              let plan_result =
                match (fault_plan_file, chaos) with
                | Some path, _ -> (
                    match Cycles.Fault_plan.of_string (read_file path) with
                    | Ok p -> Ok (Some p)
                    | Error msg -> Error msg
                    | exception Sys_error msg -> Error msg)
                | None, true -> (
                    match Cycles.Fault_plan.of_string default_chaos_plan with
                    | Ok p -> Ok (Some p)
                    | Error msg -> Error msg)
                | None, false -> Ok None
              in
              match plan_result with
              | Error msg ->
                  Printf.eprintf "error: fault plan: %s\n" msg;
                  1
              | Ok _ when repeat < 1 ->
                  prerr_endline "error: --repeat must be >= 1";
                  1
              | Ok _ when record <> None && repeat > 1 ->
                  prerr_endline "error: --record captures a single invocation; drop --repeat";
                  1
              | Ok plan ->
              match build_probes probe with
              | Error msg ->
                  Printf.eprintf "error: bad probe spec: %s\n" msg;
                  1
              | Ok probes ->
              let w = Wasp.Runtime.create ~seed ~translate ?flight_capacity () in
              Wasp.Runtime.set_probes w probes;
              (match plan with
              | Some p -> Wasp.Runtime.set_fault_plan w (Some p)
              | None -> ());
              let hub =
                if trace_json <> None || metrics || mem_stats || explain_slowest > 0
                then begin
                  let h = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
                  (* ids come from the same --seed, so --explain-slowest
                     prints byte-identical timelines across runs *)
                  if explain_slowest > 0 then Telemetry.Hub.enable_tracing h ~seed;
                  Wasp.Runtime.set_telemetry w (Some h);
                  Some h
                end
                else None
              in
              (match (probes, hub) with
              | Some e, Some h ->
                  Vtrace.Engine.set_metrics e (Some (Telemetry.Hub.metrics h))
              | _ -> ());
              let prof =
                if profile || profile_folded <> None then begin
                  let p = Profiler.Profile.create () in
                  Wasp.Runtime.set_profiler w (Some p);
                  Some p
                end
                else None
              in
              let recorder =
                match record with
                | None -> None
                | Some _ ->
                    let rc = Profiler.Replay.create () in
                    Profiler.Replay.set_image rc ~name:image.Wasp.Image.name
                      ~mode:(Vm.Modes.to_string image.Wasp.Image.mode)
                      ~origin:image.Wasp.Image.origin ~entry:image.Wasp.Image.entry
                      ~mem_size:image.Wasp.Image.mem_size
                      ~code:(Bytes.to_string image.Wasp.Image.code);
                    Profiler.Replay.set_env rc
                      ?fault_plan:(Option.map Cycles.Fault_plan.to_string plan)
                      ~seed ~policy:(policy_to_string policy) ~fuel:default_fuel ();
                    Wasp.Runtime.set_recorder w (Some rc);
                    Some rc
              in
              Printf.printf "loaded %d bytes at 0x%x (%s mode), policy %s\n"
                (Wasp.Image.size image) image.Wasp.Image.origin
                (Vm.Modes.to_string image.Wasp.Image.mode)
                (Format.asprintf "%a" Wasp.Policy.pp policy);
              let r = ref (Wasp.Runtime.run w image ~policy ~fuel:default_fuel ()) in
              for _ = 2 to repeat do
                r := Wasp.Runtime.run w image ~policy ~fuel:default_fuel ()
              done;
              let r = !r in
              if r.Wasp.Runtime.console <> "" then
                Printf.printf "--- console ---\n%s---------------\n" r.Wasp.Runtime.console;
              let trace_write_failed =
                match (trace_json, hub) with
                | Some path, Some h -> (
                    match write_file path (Telemetry.Chrome.to_json h) with
                    | () ->
                        Printf.printf
                          "trace written to %s (load it in about://tracing or Perfetto)\n" path;
                        false
                    | exception Sys_error msg ->
                        Printf.eprintf "error: cannot write trace: %s\n" msg;
                        true)
                | _ -> false
              in
              (match prof with
              | Some p ->
                  (match hub with Some h -> Profiler.Profile.export p h | None -> ());
                  if profile then begin
                    print_newline ();
                    print_string (Profiler.Profile.render p)
                  end;
                  (match profile_folded with
                  | Some path ->
                      write_file path (Profiler.Profile.folded_lines p);
                      Printf.printf "folded stacks written to %s (flamegraph.pl input)\n" path
                  | None -> ())
              | None -> ());
              (match (recorder, record) with
              | Some rc, Some path ->
                  Profiler.Replay.finish rc ~cycles:r.Wasp.Runtime.cycles
                    ~outcome:(outcome_string r.Wasp.Runtime.outcome)
                    ~return_value:r.Wasp.Runtime.return_value;
                  write_file path (Profiler.Replay.to_string rc);
                  Printf.printf "recording written to %s (%d hypercall events)\n" path
                    (Profiler.Replay.event_count rc)
              | _ -> ());
              (match (probes, hub) with
              | Some e, Some h -> Vtrace.Engine.export e (Telemetry.Hub.metrics h)
              | _ -> ());
              emit_probes probes probe_out;
              (match hub with
              | Some h when metrics ->
                  print_newline ();
                  print_string (Telemetry.Summary.render h);
                  print_newline ();
                  print_string (Telemetry.Prometheus.to_text (Telemetry.Hub.metrics h))
              | _ -> ());
              (match hub with
              | Some h when mem_stats -> print_mem_stats h w
              | _ -> ());
              (match hub with
              | Some h when explain_slowest > 0 ->
                  print_newline ();
                  print_string
                    (Profiler.Explain.slowest ~n:explain_slowest ~hub:h
                       ?flight:(Wasp.Runtime.flight w) ())
              | _ -> ());
              (match plan with
              | Some p ->
                  Printf.printf "chaos: %d faults injected under plan %s\n"
                    (Cycles.Fault_plan.total_injected p)
                    (Cycles.Fault_plan.to_string p)
              | None -> ());
              (match r.Wasp.Runtime.outcome with
              | Wasp.Runtime.Exited code ->
                  Printf.printf "exited with %Ld  [%.1f us, %d hypercalls, %d denied]\n" code
                    (Cycles.Clock.to_us (Wasp.Runtime.clock w) r.Wasp.Runtime.cycles)
                    r.Wasp.Runtime.hypercalls r.Wasp.Runtime.denied;
                  if trace_write_failed then 1 else 0
              | Wasp.Runtime.Faulted f ->
                  Printf.printf "faulted: %s\n"
                    (Format.asprintf "%a" Vm.Cpu.pp_exit (Vm.Cpu.Fault f));
                  (match Wasp.Runtime.flight_dump w with
                  | Some dump ->
                      print_newline ();
                      print_string dump
                  | None -> ());
                  1
              | Wasp.Runtime.Fuel_exhausted ->
                  print_endline "out of fuel";
                  1))))

let () =
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.vxa") in
  let example =
    Arg.(value & flag & info [ "example" ] ~doc:"Run a built-in recursive-fib demo image")
  in
  let example_fault =
    Arg.(
      value & flag
      & info [ "example-fault" ]
          ~doc:
            "Run a built-in demo that faults after a burst of hypercalls, printing the \
             flight-recorder black-box dump")
  in
  let vhttp =
    Arg.(
      value & flag
      & info [ "vhttp" ]
          ~doc:
            "Serve one request through the ringed static-file server (batched \
             hypercalls, two VM exits). Combine with $(b,--record) to capture a \
             .vxr whose $(b,--replay) rebuilds the same host environment")
  in
  let mode =
    let modes =
      [ ("real", Vm.Modes.Real); ("protected", Vm.Modes.Protected); ("long", Vm.Modes.Long) ]
    in
    Arg.(value & opt (enum modes) Vm.Modes.Long & info [ "m"; "mode" ])
  in
  let allow =
    Arg.(
      value
      & opt (list string) []
      & info [ "allow" ] ~docv:"HC,..." ~doc:"Hypercalls to permit (default deny)")
  in
  let all = Arg.(value & flag & info [ "permissive" ] ~doc:"Allow all hypercalls") in
  let trace_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-json" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace-event JSON dump of the invocation's spans to $(docv)")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the telemetry summary and Prometheus-style metrics after the run")
  in
  let mem_stats =
    Arg.(
      value & flag
      & info [ "mem-stats" ]
          ~doc:
            "Print page-sharing statistics after the run: resident and shared pages, CoW \
             faults, page-cache occupancy and dedup ratio")
  in
  let check =
    Arg.(
      value
      & opt (some string) None
      & info [ "check-trace" ] ~docv:"FILE"
          ~doc:"Validate a previously written trace-event JSON dump and exit")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Profile the guest: print per-function and per-opcode cycle tables after the \
             run (exact attribution; totals equal the execute phase)")
  in
  let profile_folded =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-folded" ] ~docv:"FILE"
          ~doc:"Write folded call stacks (flamegraph collapse format) to $(docv)")
  in
  let record =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE.vxr"
          ~doc:
            "Record the invocation (image, seed, policy, hypercall transcript) to $(docv) \
             for deterministic replay")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE.vxr"
          ~doc:
            "Re-execute a recorded invocation under the recorded seed and diff the fresh \
             transcript cycle-for-cycle against the recording")
  in
  let seed =
    Arg.(
      value & opt int 0xACE
      & info [ "seed" ] ~docv:"N" ~doc:"Runtime RNG seed (recorded into .vxr files)")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Run under the built-in non-fatal fault plan (spurious VM exits and EPT \
             storms); recorded .vxr files embed the plan so replays reproduce the \
             turbulence cycle-for-cycle")
  in
  let fault_plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-plan" ] ~docv:"FILE"
          ~doc:
            "Run under the fault plan read from $(docv) (site=trigger lines; see \
             docs/robustness.md). Overrides $(b,--chaos)")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"K"
          ~doc:
            "Run the image $(docv) times in one runtime (pool and caches stay warm), so \
             $(b,--explain-slowest) has a population to rank")
  in
  let explain_slowest =
    Arg.(
      value & opt int 0
      & info [ "explain-slowest" ] ~docv:"N"
          ~doc:
            "After the run, print the full causal timeline (span tree, VM exits, faults, \
             retries, exemplars) of the $(docv) slowest invocations. Enables request \
             tracing, seeded by $(b,--seed), so the report is identical across runs")
  in
  let translate =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "translate" ]
                ~doc:
                  "Execute the guest through the superblock translation cache (the \
                   default). Simulated cycle counts are identical to the interpreter's" );
            ( false,
              info [ "no-translate" ]
                ~doc:
                  "Execute the guest through the step interpreter. Combined with \
                   $(b,--replay) of a recording made under the default engine this is \
                   the cross-engine zero-divergence check" );
          ])
  in
  let probe =
    Arg.(
      value
      & opt_all string []
      & info [ "probe" ] ~docv:"SPEC"
          ~doc:
            "Attach a vtrace probe (repeatable; see docs/vtrace.md), e.g. \
             $(b,'exit { count() by (reason) }'). Probes charge zero simulated \
             cycles; aggregate tables print after the run. Works with $(b,--replay) \
             too, so recorded and replayed tables can be diffed")
  in
  let probe_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "probe-out" ] ~docv:"FILE"
          ~doc:"Write the probe aggregate tables to $(docv) instead of stdout")
  in
  let flight_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:"Size of the VM-exit flight ring (default 128)")
  in
  let cmd =
    Cmd.v
      (Cmd.info "wasprun" ~doc:"run a vx assembly image under the Wasp micro-hypervisor")
      Term.(
        const run $ file $ example $ example_fault $ vhttp $ mode $ allow $ all $ trace_json
        $ metrics $ mem_stats $ check $ profile $ profile_folded $ record $ replay $ seed
        $ chaos $ fault_plan $ repeat $ explain_slowest $ translate $ probe $ probe_out
        $ flight_capacity)
  in
  exit (Cmd.eval' cmd)
