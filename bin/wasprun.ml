(* wasprun: load an assembled vx image and run it under Wasp, like
   feeding a raw binary to the paper's runtime API.

     wasprun FILE.vxa [--mode real|protected|long] [--allow read,write,...]
     wasprun --example         # run a built-in demo image
     wasprun --example --trace-json t.json --metrics
                               # telemetry: Chrome trace + metrics dump
     wasprun --check-trace t.json
                               # validate a trace-event dump (CI smoke)
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let example_source =
  {|
; demo: compute 6*7 and report it via the exit hypercall
start:
  mov r1, 6
  mov r2, 7
  mov r0, r1
  mul r0, r2
  mov r1, r0
  mov r0, 0      ; exit(r1)
  out 1, r0
  hlt
|}

let hc_by_name =
  [
    ("read", Wasp.Hc.read); ("write", Wasp.Hc.write); ("open", Wasp.Hc.open_);
    ("close", Wasp.Hc.close); ("stat", Wasp.Hc.stat); ("snapshot", Wasp.Hc.snapshot);
    ("get_data", Wasp.Hc.get_data); ("return_data", Wasp.Hc.return_data);
    ("send", Wasp.Hc.send); ("recv", Wasp.Hc.recv); ("brk", Wasp.Hc.brk);
    ("clock", Wasp.Hc.clock); ("getrandom", Wasp.Hc.getrandom);
  ]

(* Validate a Chrome trace-event dump: well-formed JSON, a non-empty
   traceEvents array, and the invocation phase spans present. *)
let check_trace path =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "trace invalid: %s\n" m; 1) fmt in
  match Vjs.Json.parse (read_file path) with
  | exception Vjs.Jsvalue.Js_error msg -> fail "JSON parse error: %s" msg
  | exception Sys_error msg -> fail "%s" msg
  | Vjs.Jsvalue.Obj tbl -> (
      match Hashtbl.find_opt tbl "traceEvents" with
      | Some (Vjs.Jsvalue.Arr v) ->
          let events = Vjs.Jsvalue.vec_to_list v in
          let names =
            List.filter_map
              (function
                | Vjs.Jsvalue.Obj o -> (
                    match Hashtbl.find_opt o "name" with
                    | Some (Vjs.Jsvalue.Str s) -> Some s
                    | _ -> None)
                | _ -> None)
              events
          in
          let required = [ "invocation"; "provision"; "boot"; "execute"; "clean" ] in
          let missing = List.filter (fun n -> not (List.mem n names)) required in
          if events = [] then fail "empty traceEvents"
          else if missing <> [] then
            fail "missing spans: %s" (String.concat ", " missing)
          else begin
            Printf.printf "trace ok: %d events, phases covered\n" (List.length events);
            0
          end
      | _ -> fail "no traceEvents array")
  | _ -> fail "top level is not an object"

let run file example mode allow all trace_json metrics check =
  match check with
  | Some path -> check_trace path
  | None -> (
      let source =
        if example then Some example_source
        else match file with Some f -> Some (read_file f) | None -> None
      in
      match source with
      | None ->
          prerr_endline "error: pass an assembly file or --example";
          1
      | Some src -> (
          match Asm.assemble_string ~origin:Wasp.Layout.image_base src with
          | exception Asm.Asm_error msg ->
              Printf.eprintf "assembly error: %s\n" msg;
              1
          | program ->
              let image = Wasp.Image.of_program ~name:"wasprun" ~mode program in
              let policy =
                if all then Wasp.Policy.allow_all
                else
                  Wasp.Policy.of_list
                    (List.filter_map (fun n -> List.assoc_opt n hc_by_name) allow)
              in
              let w = Wasp.Runtime.create () in
              let hub =
                if trace_json <> None || metrics then begin
                  let h = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
                  Wasp.Runtime.set_telemetry w (Some h);
                  Some h
                end
                else None
              in
              Printf.printf "loaded %d bytes at 0x%x (%s mode), policy %s\n"
                (Wasp.Image.size image) image.Wasp.Image.origin
                (Vm.Modes.to_string image.Wasp.Image.mode)
                (Format.asprintf "%a" Wasp.Policy.pp policy);
              let r = Wasp.Runtime.run w image ~policy () in
              if r.Wasp.Runtime.console <> "" then
                Printf.printf "--- console ---\n%s---------------\n" r.Wasp.Runtime.console;
              let trace_write_failed =
                match (trace_json, hub) with
                | Some path, Some h -> (
                    match write_file path (Telemetry.Chrome.to_json h) with
                    | () ->
                        Printf.printf
                          "trace written to %s (load it in about://tracing or Perfetto)\n" path;
                        false
                    | exception Sys_error msg ->
                        Printf.eprintf "error: cannot write trace: %s\n" msg;
                        true)
                | _ -> false
              in
              (match hub with
              | Some h when metrics ->
                  print_newline ();
                  print_string (Telemetry.Summary.render h);
                  print_newline ();
                  print_string (Telemetry.Prometheus.to_text (Telemetry.Hub.metrics h))
              | _ -> ());
              (match r.Wasp.Runtime.outcome with
              | Wasp.Runtime.Exited code ->
                  Printf.printf "exited with %Ld  [%.1f us, %d hypercalls, %d denied]\n" code
                    (Cycles.Clock.to_us (Wasp.Runtime.clock w) r.Wasp.Runtime.cycles)
                    r.Wasp.Runtime.hypercalls r.Wasp.Runtime.denied;
                  if trace_write_failed then 1 else 0
              | Wasp.Runtime.Faulted f ->
                  Printf.printf "faulted: %s\n"
                    (Format.asprintf "%a" Vm.Cpu.pp_exit (Vm.Cpu.Fault f));
                  1
              | Wasp.Runtime.Fuel_exhausted ->
                  print_endline "out of fuel";
                  1)))

let () =
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.vxa") in
  let example = Arg.(value & flag & info [ "example" ] ~doc:"Run a built-in demo image") in
  let mode =
    let modes =
      [ ("real", Vm.Modes.Real); ("protected", Vm.Modes.Protected); ("long", Vm.Modes.Long) ]
    in
    Arg.(value & opt (enum modes) Vm.Modes.Long & info [ "m"; "mode" ])
  in
  let allow =
    Arg.(
      value
      & opt (list string) []
      & info [ "allow" ] ~docv:"HC,..." ~doc:"Hypercalls to permit (default deny)")
  in
  let all = Arg.(value & flag & info [ "permissive" ] ~doc:"Allow all hypercalls") in
  let trace_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-json" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace-event JSON dump of the invocation's spans to $(docv)")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the telemetry summary and Prometheus-style metrics after the run")
  in
  let check =
    Arg.(
      value
      & opt (some string) None
      & info [ "check-trace" ] ~docv:"FILE"
          ~doc:"Validate a previously written trace-event JSON dump and exit")
  in
  let cmd =
    Cmd.v
      (Cmd.info "wasprun" ~doc:"run a vx assembly image under the Wasp micro-hypervisor")
      Term.(const run $ file $ example $ mode $ allow $ all $ trace_json $ metrics $ check)
  in
  exit (Cmd.eval' cmd)
