(* benchdiff: the CI bench-regression gate.

     benchdiff --baseline bench/baselines --fresh /tmp/bench-out fig12 memshare

   Compares freshly generated BENCH_<fig>.json files (bench/main.exe
   --json-out) against committed baselines, cell by cell. Numeric cells
   must agree within a relative tolerance (default 15%); non-numeric
   cells must match exactly. A structural mismatch (missing figure,
   fewer tables than the baseline, different header) fails loudly with a
   hint to regenerate the baselines — except a *new* figure (fresh
   parses, no baseline committed yet) or extra fresh tables, which are
   reported as informational so the PR introducing a figure isn't
   blocked by its own gate. Exit 0 = within tolerance, 1 = regression,
   2 = structural/usage error. *)

open Cmdliner

type table = { title : string option; header : string list; rows : string list list }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let str_field tbl key =
  match Hashtbl.find_opt tbl key with Some (Vjs.Jsvalue.Str s) -> Some s | _ -> None

let string_list = function
  | Vjs.Jsvalue.Arr v ->
      Some
        (List.filter_map
           (function Vjs.Jsvalue.Str s -> Some s | _ -> None)
           (Vjs.Jsvalue.vec_to_list v))
  | _ -> None

let parse_bench path =
  match Vjs.Json.parse (read_file path) with
  | exception Sys_error msg -> Error msg
  | exception Vjs.Jsvalue.Js_error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Vjs.Jsvalue.Obj top -> (
      match Hashtbl.find_opt top "tables" with
      | Some (Vjs.Jsvalue.Arr v) -> (
          let tables =
            List.filter_map
              (function
                | Vjs.Jsvalue.Obj o ->
                    let header =
                      Option.bind (Hashtbl.find_opt o "header") string_list
                    in
                    let rows =
                      match Hashtbl.find_opt o "rows" with
                      | Some (Vjs.Jsvalue.Arr rv) ->
                          Some
                            (List.filter_map string_list (Vjs.Jsvalue.vec_to_list rv))
                      | _ -> None
                    in
                    (match (header, rows) with
                    | Some header, Some rows ->
                        Some { title = str_field o "title"; header; rows }
                    | _ -> None)
                | _ -> None)
              (Vjs.Jsvalue.vec_to_list v)
          in
          match tables with
          | [] -> Error (Printf.sprintf "%s: no tables" path)
          | ts -> Ok ts)
      | _ -> Error (Printf.sprintf "%s: no tables array" path))
  | _ -> Error (Printf.sprintf "%s: top level is not an object" path)

(* A cell is numeric if it starts with a float ("394.8", "98.75%",
   "16 MB"). Compare the leading number within tolerance and require the
   rest (the unit text) to match exactly. *)
let split_numeric cell =
  let n = String.length cell in
  let is_num_char c = (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' in
  let rec last i = if i < n && is_num_char cell.[i] then last (i + 1) else i in
  let stop = last 0 in
  if stop = 0 then None
  else
    match float_of_string_opt (String.sub cell 0 stop) with
    | Some f -> Some (f, String.sub cell stop (n - stop))
    | None -> None

(* (relative drift if both cells are numeric with matching units, verdict) *)
let cell_verdict ~tolerance a b =
  match (split_numeric a, split_numeric b) with
  | Some (x, ua), Some (y, ub) when ua = ub ->
      let scale = Float.max (Float.abs x) (Float.abs y) in
      let drift = if scale = 0.0 then 0.0 else Float.abs (x -. y) /. scale in
      (Some drift, drift <= tolerance)
  | _ -> (None, String.equal a b)

(* One compared cell, kept for --summary-json. *)
type cell = {
  cl_table : string;
  cl_row : int;
  cl_col : string;
  cl_baseline : string;
  cl_fresh : string;
  cl_drift : float option;
  cl_ok : bool;
}

let structural_hint =
  "baseline shape differs from fresh output -- regenerate with `make bench-baselines` \
   and commit the result"

let compare_fig ~tolerance ~fig baseline fresh =
  let failures = ref [] in
  let structural = ref [] in
  let notices = ref [] in
  let cells = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let misshapen fmt = Printf.ksprintf (fun m -> structural := m :: !structural) fmt in
  let notice fmt = Printf.ksprintf (fun m -> notices := m :: !notices) fmt in
  (* An experiment growing a new table is additive — compare the common
     prefix and mention the extras. A table *disappearing* is structural:
     the baseline promises coverage the fresh run no longer delivers. *)
  let nb = List.length baseline and nf = List.length fresh in
  let baseline, fresh =
    if nf > nb then begin
      notice "%s: %d new table(s) in fresh output with no baseline yet (informational)"
        fig (nf - nb);
      (baseline, List.filteri (fun i _ -> i < nb) fresh)
    end
    else (baseline, fresh)
  in
  if List.length baseline <> List.length fresh then
    misshapen "%s: %d tables in baseline vs %d fresh" fig nb nf
  else
    List.iteri
      (fun ti (b, f) ->
        let where =
          match b.title with
          | Some t -> Printf.sprintf "%s table %d (%s)" fig ti t
          | None -> Printf.sprintf "%s table %d" fig ti
        in
        if b.header <> f.header then misshapen "%s: header changed" where
        else if List.length b.rows <> List.length f.rows then
          misshapen "%s: %d rows in baseline vs %d fresh" where (List.length b.rows)
            (List.length f.rows)
        else
          List.iteri
            (fun ri (br, fr) ->
              if List.length br <> List.length fr then
                misshapen "%s row %d: column count changed" where ri
              else
                List.iteri
                  (fun ci (bc, fc) ->
                    let drift, ok = cell_verdict ~tolerance bc fc in
                    cells :=
                      {
                        cl_table = where;
                        cl_row = ri;
                        cl_col = List.nth b.header ci;
                        cl_baseline = bc;
                        cl_fresh = fc;
                        cl_drift = drift;
                        cl_ok = ok;
                      }
                      :: !cells;
                    if not ok then
                      fail "%s row %d [%s]: %S vs fresh %S (tolerance %.0f%%)" where ri
                        (List.nth b.header ci) bc fc (tolerance *. 100.0))
                  (List.combine br fr))
            (List.combine b.rows f.rows))
      (List.combine baseline fresh);
  (List.rev !structural, List.rev !failures, List.rev !notices, List.rev !cells)

(* --summary-json: a machine-readable verdict per compared cell, for the
   CI artifact. Hand-rolled writer — the cell grammar is tiny and flat. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let cell_json c =
  Printf.sprintf
    "{\"table\":\"%s\",\"row\":%d,\"col\":\"%s\",\"baseline\":\"%s\",\"fresh\":\"%s\",\"drift\":%s,\"ok\":%b}"
    (json_escape c.cl_table) c.cl_row (json_escape c.cl_col)
    (json_escape c.cl_baseline) (json_escape c.cl_fresh)
    (match c.cl_drift with Some d -> Printf.sprintf "%.6f" d | None -> "null")
    c.cl_ok

let write_summary path ~tolerance ~figures ~structural_total ~regression_total =
  let worst =
    List.fold_left
      (fun acc (_, _, cells) ->
        List.fold_left
          (fun acc c ->
            match (c.cl_drift, acc) with
            | None, _ -> acc
            | Some d, Some w when d <= (match w.cl_drift with Some wd -> wd | None -> 0.0)
              ->
                acc
            | Some _, _ -> Some c)
          acc cells)
      None figures
  in
  let fig_json (fig, status, cells) =
    Printf.sprintf "{\"figure\":\"%s\",\"status\":\"%s\",\"cells\":[%s]}"
      (json_escape fig) status
      (String.concat "," (List.map cell_json cells))
  in
  let doc =
    Printf.sprintf
      "{\"tolerance\":%.6f,\"structural\":%d,\"regressions\":%d,\"worst_drift\":%s,\"figures\":[%s]}\n"
      tolerance structural_total regression_total
      (match worst with Some c -> cell_json c | None -> "null")
      (String.concat "," (List.map fig_json figures))
  in
  let oc = open_out path in
  output_string oc doc;
  close_out oc

let run baseline_dir fresh_dir tolerance summary_json figs =
  if figs = [] then begin
    prerr_endline "benchdiff: name at least one figure (e.g. fig12 memshare)";
    2
  end
  else begin
    let structural_total = ref 0 and regression_total = ref 0 in
    let figures = ref [] in
    List.iter
      (fun fig ->
        let file = Printf.sprintf "BENCH_%s.json" fig in
        let bpath = Filename.concat baseline_dir file in
        let fpath = Filename.concat fresh_dir file in
        match (parse_bench bpath, parse_bench fpath) with
        | Error _, Ok _ when not (Sys.file_exists bpath) ->
            (* a brand-new figure: fresh output parses but nothing is
               committed yet. Informational, not a gate failure — the
               gate would otherwise block the very PR that introduces
               the figure. *)
            Printf.printf
              "NEW %s: no committed baseline (%s); fresh output parses -- commit it \
               with `make bench-baselines` to start gating\n"
              fig bpath;
            figures := (fig, "new", []) :: !figures
        | Error m, _ ->
            Printf.eprintf "benchdiff: baseline %s\n" m;
            incr structural_total;
            figures := (fig, "structural", []) :: !figures
        | _, Error m ->
            Printf.eprintf "benchdiff: fresh %s\n" m;
            incr structural_total;
            figures := (fig, "structural", []) :: !figures
        | Ok b, Ok f ->
            let structural, failures, notices, cells = compare_fig ~tolerance ~fig b f in
            List.iter (fun m -> Printf.printf "NOTICE %s\n" m) notices;
            List.iter (fun m -> Printf.eprintf "STRUCTURE %s\n" m) structural;
            List.iter (fun m -> Printf.eprintf "REGRESSION %s\n" m) failures;
            structural_total := !structural_total + List.length structural;
            regression_total := !regression_total + List.length failures;
            let status =
              if structural <> [] then "structural"
              else if failures <> [] then "regression"
              else "ok"
            in
            figures := (fig, status, cells) :: !figures;
            if structural = [] && failures = [] then
              Printf.printf "%s: ok (within %.0f%% of baseline)\n" fig
                (tolerance *. 100.0))
      figs;
    (match summary_json with
    | Some path ->
        write_summary path ~tolerance ~figures:(List.rev !figures)
          ~structural_total:!structural_total ~regression_total:!regression_total
    | None -> ());
    if !structural_total > 0 then begin
      Printf.eprintf "benchdiff: %s\n" structural_hint;
      2
    end
    else if !regression_total > 0 then begin
      Printf.eprintf "benchdiff: %d cell(s) out of tolerance\n" !regression_total;
      1
    end
    else 0
  end

let () =
  let baseline =
    Arg.(
      value
      & opt string "bench/baselines"
      & info [ "baseline" ] ~docv:"DIR" ~doc:"Directory of committed BENCH_*.json baselines")
  in
  let fresh =
    Arg.(
      required
      & opt (some string) None
      & info [ "fresh" ] ~docv:"DIR" ~doc:"Directory of freshly generated BENCH_*.json")
  in
  let tolerance =
    Arg.(
      value & opt float 0.15
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:"Allowed relative drift for numeric cells (default 0.15)")
  in
  let summary_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary-json" ] ~docv:"PATH"
          ~doc:
            "Write a machine-readable summary (per-cell verdicts, worst relative \
             drift) to $(docv) for the CI artifact")
  in
  let figs = Arg.(value & pos_all string [] & info [] ~docv:"FIG") in
  let cmd =
    Cmd.v
      (Cmd.info "benchdiff" ~doc:"compare bench JSON outputs against committed baselines")
      Term.(const run $ baseline $ fresh $ tolerance $ summary_json $ figs)
  in
  exit (Cmd.eval' cmd)
