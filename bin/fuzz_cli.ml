(* fuzz — coverage-guided differential fuzzing of the simulated
   hypervisor on the replay substrate.

   Modes:
     fuzz --iters N --seed S            deterministic campaign (CI smoke)
     fuzz --time-budget SECS            time-boxed campaign (nightly lane)
     fuzz --check-fixtures DIR          replay committed reproducers on
                                        both engines, fail on divergence
     fuzz --emit-corpus-fixtures N ...  record canonical seed transcripts

   Exit codes: 0 = clean (or, under --expect-finding, the expected
   canary was found), 1 = findings (or expected finding missing),
   2 = usage/fixture errors. *)

open Cmdliner

let log verbose fmt =
  Printf.ksprintf (fun s -> if verbose then Printf.printf "fuzz: %s\n%!" s) fmt

let run_campaign iters time_budget seed corpus_dir fixtures_out canary_name
    max_findings expect_finding verbose =
  match
    match canary_name with
    | None -> Ok None
    | Some name -> (
        match Fuzz.Oracle.canary_of_string name with
        | Some c -> Ok (Some c)
        | None -> Error (Printf.sprintf "unknown canary %S (shift-mask | cycle-skew)" name))
  with
  | Error e ->
      Printf.eprintf "fuzz: %s\n" e;
      2
  | Ok canary ->
      let config =
        {
          Fuzz.Driver.default_config with
          seed;
          iters;
          time_budget;
          now = Sys.time;
          corpus_dir;
          fixtures_out;
          canary;
          max_findings;
          log = (fun s -> if verbose then Printf.printf "fuzz: %s\n%!" s);
        }
      in
      let s = Fuzz.Driver.run config in
      List.iter
        (fun (f : Fuzz.Driver.finding) ->
          Printf.printf "FINDING [%s] %s\n  case: %s (%d bytes)\n  shrunk: %s (%d bytes)%s\n"
            (Fuzz.Oracle.fclass_name f.Fuzz.Driver.f_class)
            f.Fuzz.Driver.f_detail
            (Fuzz.Corpus.name f.Fuzz.Driver.f_case)
            (Fuzz.Shrink.size f.Fuzz.Driver.f_case)
            (Fuzz.Corpus.name f.Fuzz.Driver.f_shrunk)
            (Fuzz.Shrink.size f.Fuzz.Driver.f_shrunk)
            (match f.Fuzz.Driver.f_fixture with
            | Some p -> "\n  reproducer: " ^ p
            | None -> ""))
        s.Fuzz.Driver.findings;
      Printf.printf "FUZZ: iters=%d corpus=%d coverage_bits=%d findings=%d\n"
        s.Fuzz.Driver.iterations s.Fuzz.Driver.corpus_size
        s.Fuzz.Driver.coverage_bits
        (List.length s.Fuzz.Driver.findings);
      (match expect_finding with
      | None -> if s.Fuzz.Driver.findings = [] then 0 else 1
      | Some cls_name ->
          let hit =
            List.exists
              (fun (f : Fuzz.Driver.finding) ->
                Fuzz.Oracle.fclass_name f.Fuzz.Driver.f_class = cls_name)
              s.Fuzz.Driver.findings
          in
          if hit then begin
            Printf.printf "FUZZ-SMOKE: canary=detected class=%s\n" cls_name;
            0
          end
          else begin
            Printf.printf "FUZZ-SMOKE: canary=MISSED class=%s\n" cls_name;
            1
          end)

let run iters time_budget seed corpus_dir fixtures_out canary max_findings
    expect_finding check_fixtures_dir emit_n emit_dir verbose =
  match (check_fixtures_dir, emit_n) with
  | Some dir, _ -> (
      match Fuzz.Driver.check_fixtures ~dir ~log:(fun s -> log verbose "%s" s) with
      | Ok n ->
          Printf.printf "FIXTURES: ok=%d dir=%s\n" n dir;
          if n = 0 then begin
            Printf.eprintf "fuzz: no .vxr fixtures under %s\n" dir;
            2
          end
          else 0
      | Error errs ->
          List.iter (fun e -> Printf.eprintf "FIXTURE-DIVERGENCE: %s\n" e) errs;
          2)
  | None, Some n ->
      let dir = Option.value emit_dir ~default:"test/fixtures" in
      let written = Fuzz.Driver.emit_corpus_fixtures ~dir ~n in
      List.iter (fun p -> Printf.printf "wrote %s\n" p) written;
      if written = [] then 2 else 0
  | None, None ->
      run_campaign iters time_budget seed corpus_dir fixtures_out canary
        max_findings expect_finding verbose

let () =
  let iters =
    Arg.(
      value
      & opt (some int) None
      & info [ "iters" ] ~docv:"N"
          ~doc:"Run exactly $(docv) mutation iterations (deterministic mode)")
  in
  let time_budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECS"
          ~doc:"Stop after $(docv) seconds of CPU time (nightly mode; iteration count is not deterministic)")
  in
  let seed =
    Arg.(
      value & opt int 0xF022
      & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign RNG seed; everything derives from it")
  in
  let corpus_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Load this corpus directory and persist coverage-novel cases back into it")
  in
  let fixtures_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "fixtures-out" ] ~docv:"DIR"
          ~doc:"Write shrunk reproducer .vxr files here")
  in
  let canary =
    Arg.(
      value
      & opt (some string) None
      & info [ "canary" ] ~docv:"NAME"
          ~doc:"Arm a planted harness bug (shift-mask | cycle-skew) the oracle must detect")
  in
  let max_findings =
    Arg.(
      value & opt int 8
      & info [ "max-findings" ] ~docv:"N" ~doc:"Stop after $(docv) distinct findings")
  in
  let expect_finding =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-finding" ] ~docv:"CLASS"
          ~doc:
            "Invert the exit code: succeed only if a finding of $(docv) (e.g. \
             canary-divergence) was detected — the smoke-test mode")
  in
  let check_fixtures_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "check-fixtures" ] ~docv:"DIR"
          ~doc:"Replay every committed .vxr under $(docv) on both engines and diff")
  in
  let emit_n =
    Arg.(
      value
      & opt (some int) None
      & info [ "emit-corpus-fixtures" ] ~docv:"N"
          ~doc:"Record canonical transcripts for $(docv) seed cases and exit")
  in
  let emit_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-dir" ] ~docv:"DIR" ~doc:"Target for --emit-corpus-fixtures (default test/fixtures)")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-iteration progress on stdout")
  in
  let cmd =
    Cmd.v
      (Cmd.info "fuzz_cli"
         ~doc:"coverage-guided differential fuzzing of the virtine hypervisor")
      Term.(
        const run $ iters $ time_budget $ seed $ corpus_dir $ fixtures_out
        $ canary $ max_findings $ expect_finding $ check_fixtures_dir $ emit_n
        $ emit_dir $ verbose)
  in
  exit (Cmd.eval' cmd)
