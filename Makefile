# Convenience entry points; everything below is plain dune.
#
# Smoke targets write into a private mktemp directory cleaned by a trap,
# so they are safe to run in parallel (make -j) and leave nothing behind.

BENCH_JSON_DIR ?= /tmp/wasp-bench-json
BENCH_GATE_FIGS ?= fig12 memshare chaos_slo translate rings

.PHONY: all check test bench bench-json bench-baselines bench-gate \
	trace-smoke sched-smoke profiler-smoke chaos-smoke slo-smoke \
	explain-smoke translate-smoke vtrace-smoke ring-smoke \
	fuzz-smoke fuzz-fixtures fuzz-nightly fmt clean

all:
	dune build

# tier-1 gate: full build + every test suite + the smoke tests
check:
	dune build
	dune runtest
	$(MAKE) sched-smoke
	$(MAKE) profiler-smoke
	$(MAKE) chaos-smoke
	$(MAKE) slo-smoke
	$(MAKE) explain-smoke
	$(MAKE) translate-smoke
	$(MAKE) vtrace-smoke
	$(MAKE) ring-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) fuzz-fixtures

test: check

bench:
	dune exec bench/main.exe

# machine-readable results: every table also lands in BENCH_<fig>.json
bench-json:
	dune exec bench/main.exe -- --json-out $(BENCH_JSON_DIR)
	@ls $(BENCH_JSON_DIR)

# regenerate the committed bench baselines the CI gate compares against
bench-baselines:
	dune exec bench/main.exe -- $(BENCH_GATE_FIGS) --json-out bench/baselines
	@ls bench/baselines

# the CI bench-regression gate: regenerate the gated figures into a
# scratch directory and diff them against the committed baselines
bench-gate:
	@set -eu; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT INT TERM; \
	dune exec bench/main.exe -- $(BENCH_GATE_FIGS) --json-out $$d > /dev/null; \
	dune exec bin/benchdiff.exe -- --baseline bench/baselines --fresh $$d $(BENCH_GATE_FIGS)

# telemetry smoke: emit a Chrome trace from an instrumented run, then
# validate it (JSON parses, phase spans present)
trace-smoke:
	@set -eu; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT INT TERM; \
	dune exec bin/wasprun.exe -- --example --trace-json $$d/trace.json --metrics; \
	dune exec bin/wasprun.exe -- --check-trace $$d/trace.json

# multi-core scheduler smoke: run the fig12 core-scaling sweep on 4
# simulated cores with telemetry, dump the Chrome trace, validate it
sched-smoke:
	@set -eu; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT INT TERM; \
	dune exec bench/main.exe -- fig12 --cores 4 --telemetry --trace-json $$d/sched.json > /dev/null; \
	dune exec bin/wasprun.exe -- --check-trace $$d/sched.json

# profiler/replay smoke: profile one recursive-fib invocation while
# recording it, then replay the recording and require zero cycle
# divergence (the exit status of --replay enforces it)
profiler-smoke:
	@set -eu; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT INT TERM; \
	dune exec bin/wasprun.exe -- --example --profile --profile-folded $$d/fib.folded --record $$d/fib.vxr; \
	dune exec bin/wasprun.exe -- --replay $$d/fib.vxr

# chaos smoke: record an invocation under the default fault plan, then
# replay it; --replay re-arms the recorded plan and requires zero
# divergence, injections included
chaos-smoke:
	@set -eu; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT INT TERM; \
	dune exec bin/wasprun.exe -- --example --chaos --record $$d/chaos.vxr; \
	dune exec bin/wasprun.exe -- --replay $$d/chaos.vxr

# SLO smoke: run the chaos burn-rate arm and require that at least one
# alert fired during the storm AND everything recovered afterwards
slo-smoke:
	@set -eu; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT INT TERM; \
	dune exec bench/main.exe -- chaos_slo > $$d/slo.txt; \
	grep -E 'SLO-SMOKE: alerts_fired=[1-9][0-9]* .* recovered=yes' $$d/slo.txt \
	  || { echo "slo-smoke: alert did not fire or did not recover:"; cat $$d/slo.txt; exit 1; }

# explain smoke: same-seed runs of --explain-slowest must print
# byte-identical causal timelines (deterministic trace ids + virtual
# clock), and the span tree must tile the root exactly
explain-smoke:
	@set -eu; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT INT TERM; \
	dune exec bin/wasprun.exe -- --example --chaos --repeat 5 --explain-slowest 1 > $$d/a.txt; \
	dune exec bin/wasprun.exe -- --example --chaos --repeat 5 --explain-slowest 1 > $$d/b.txt; \
	cmp $$d/a.txt $$d/b.txt || { echo "explain-smoke: same-seed explain output diverged"; exit 1; }; \
	grep -q 'conservation: .* (exact)' $$d/a.txt \
	  || { echo "explain-smoke: span tree does not tile the root exactly:"; cat $$d/a.txt; exit 1; }

# translation smoke: a recording made under the translator must replay
# with zero divergence on BOTH engines (the .vxr format is engine-blind),
# and the engine-ablation bench must report zero architectural
# divergence at a double-digit wall-clock speedup
translate-smoke:
	@set -eu; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT INT TERM; \
	dune exec bin/wasprun.exe -- --example --record $$d/tr.vxr; \
	dune exec bin/wasprun.exe -- --replay $$d/tr.vxr --no-translate; \
	dune exec bin/wasprun.exe -- --replay $$d/tr.vxr; \
	dune exec bench/main.exe -- translate > $$d/tr.txt; \
	grep -E 'TRANSLATE-SMOKE: divergence=0 speedup=[0-9]{2,}x' $$d/tr.txt \
	  || { echo "translate-smoke: engines diverged or speedup below 10x:"; cat $$d/tr.txt; exit 1; }

# vtrace smoke: attach a probe to a chaos recording run, require the
# rendered table to see the workload, then replay the recording with the
# same probe attached — the aggregate tables must be byte-identical
# (probes are replay-stable and charge no simulated cycles)
vtrace-smoke:
	@set -eu; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT INT TERM; \
	dune exec bin/wasprun.exe -- --example --chaos --record $$d/vt.vxr \
	  --probe 'exit { count() by (reason) }' --probe-out $$d/rec.txt; \
	grep -q '| hypercall' $$d/rec.txt \
	  || { echo "vtrace-smoke: probe table missing hypercall exits:"; cat $$d/rec.txt; exit 1; }; \
	dune exec bin/wasprun.exe -- --replay $$d/vt.vxr \
	  --probe 'exit { count() by (reason) }' --probe-out $$d/rep.txt; \
	cmp $$d/rec.txt $$d/rep.txt \
	  || { echo "vtrace-smoke: record and replay probe tables differ"; \
	       diff $$d/rec.txt $$d/rep.txt; exit 1; }

# ring smoke: record one request through the ringed file server (two
# exits: read + ring_enter doorbell), then replay the .vxr on BOTH
# engines — the replay rebuilds the host environment (corpus + pending
# request) from the image name and must diverge by zero cycles
ring-smoke:
	@set -eu; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT INT TERM; \
	dune exec bin/wasprun.exe -- --vhttp --record $$d/ring.vxr; \
	dune exec bin/wasprun.exe -- --replay $$d/ring.vxr --no-translate; \
	dune exec bin/wasprun.exe -- --replay $$d/ring.vxr

# fuzz smoke: a fixed-iteration campaign must be clean AND byte-identical
# across two same-seed runs, and the differential oracle must catch both
# planted harness canaries (a reverted shift-mask guard emulated in a
# harness arm, and a one-cycle translator skew) within the same budget
fuzz-smoke:
	@set -eu; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT INT TERM; \
	dune exec bin/fuzz_cli.exe -- --iters 25 --seed 0xF022 > $$d/a.txt; \
	dune exec bin/fuzz_cli.exe -- --iters 25 --seed 0xF022 > $$d/b.txt; \
	cmp $$d/a.txt $$d/b.txt \
	  || { echo "fuzz-smoke: same-seed campaigns diverged"; diff $$d/a.txt $$d/b.txt; exit 1; }; \
	grep -E 'FUZZ: iters=25 corpus=[0-9]+ coverage_bits=[0-9]+ findings=0' $$d/a.txt \
	  || { echo "fuzz-smoke: campaign not clean:"; cat $$d/a.txt; exit 1; }; \
	dune exec bin/fuzz_cli.exe -- --iters 5 --seed 3 --canary shift-mask \
	  --expect-finding canary-divergence > $$d/c1.txt \
	  || { echo "fuzz-smoke: shift-mask canary missed:"; cat $$d/c1.txt; exit 1; }; \
	dune exec bin/fuzz_cli.exe -- --iters 5 --seed 3 --canary cycle-skew \
	  --expect-finding canary-divergence > $$d/c2.txt \
	  || { echo "fuzz-smoke: cycle-skew canary missed:"; cat $$d/c2.txt; exit 1; }; \
	grep -h 'FUZZ-SMOKE' $$d/c1.txt $$d/c2.txt

# replay every committed reproducer on BOTH engines and require
# byte-identical recordings (CI runs this on every PR)
fuzz-fixtures:
	dune exec bin/fuzz_cli.exe -- --check-fixtures test/fixtures

# the nightly lane: a time-boxed campaign with a persistent corpus
# (FUZZ_BUDGET CPU-seconds, FUZZ_CORPUS carried across nights by CI)
FUZZ_BUDGET ?= 600
FUZZ_CORPUS ?= fuzz-corpus
fuzz-nightly:
	@set -u; mkdir -p $(FUZZ_CORPUS) fuzz-out; \
	dune exec bin/fuzz_cli.exe -- --time-budget $(FUZZ_BUDGET) \
	  --corpus $(FUZZ_CORPUS) --fixtures-out fuzz-out/reproducers -v \
	  > fuzz-out/nightly.log 2>&1; status=$$?; \
	cat fuzz-out/nightly.log; exit $$status

# formatting gate; skipped gracefully where ocamlformat is not installed
# (CI always runs it)
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then dune build @fmt; \
	else echo "ocamlformat not found; skipping fmt (CI enforces it)"; fi

clean:
	dune clean
