# Convenience entry points; everything below is plain dune.

TRACE := /tmp/wasp-trace.json
SCHED_TRACE := /tmp/wasp-sched-trace.json

.PHONY: all check test bench trace-smoke sched-smoke clean

all:
	dune build

# tier-1 gate: full build + every test suite + scheduler smoke
check:
	dune build
	dune runtest
	$(MAKE) sched-smoke

test: check

bench:
	dune exec bench/main.exe

# telemetry smoke: emit a Chrome trace from an instrumented run, then
# validate it (JSON parses, phase spans present)
trace-smoke:
	dune exec bin/wasprun.exe -- --example --trace-json $(TRACE) --metrics
	dune exec bin/wasprun.exe -- --check-trace $(TRACE)

# multi-core scheduler smoke: run the fig12 core-scaling sweep on 4
# simulated cores with telemetry, dump the Chrome trace, validate it
sched-smoke:
	dune exec bench/main.exe -- fig12 --cores 4 --telemetry --trace-json $(SCHED_TRACE) > /dev/null
	dune exec bin/wasprun.exe -- --check-trace $(SCHED_TRACE)

clean:
	dune clean
