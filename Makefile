# Convenience entry points; everything below is plain dune.

TRACE := /tmp/wasp-trace.json
SCHED_TRACE := /tmp/wasp-sched-trace.json
VXR := /tmp/wasp-profiler-smoke.vxr
FOLDED := /tmp/wasp-profiler-smoke.folded
BENCH_JSON_DIR := /tmp/wasp-bench-json

.PHONY: all check test bench bench-json trace-smoke sched-smoke profiler-smoke clean

all:
	dune build

# tier-1 gate: full build + every test suite + scheduler smoke + profiler smoke
check:
	dune build
	dune runtest
	$(MAKE) sched-smoke
	$(MAKE) profiler-smoke

test: check

bench:
	dune exec bench/main.exe

# machine-readable results: every table also lands in BENCH_<fig>.json
bench-json:
	dune exec bench/main.exe -- --json-out $(BENCH_JSON_DIR)
	@ls $(BENCH_JSON_DIR)

# telemetry smoke: emit a Chrome trace from an instrumented run, then
# validate it (JSON parses, phase spans present)
trace-smoke:
	dune exec bin/wasprun.exe -- --example --trace-json $(TRACE) --metrics
	dune exec bin/wasprun.exe -- --check-trace $(TRACE)

# multi-core scheduler smoke: run the fig12 core-scaling sweep on 4
# simulated cores with telemetry, dump the Chrome trace, validate it
sched-smoke:
	dune exec bench/main.exe -- fig12 --cores 4 --telemetry --trace-json $(SCHED_TRACE) > /dev/null
	dune exec bin/wasprun.exe -- --check-trace $(SCHED_TRACE)

# profiler/replay smoke: profile one recursive-fib invocation while
# recording it, then replay the recording and require zero cycle
# divergence (the exit status of --replay enforces it)
profiler-smoke:
	dune exec bin/wasprun.exe -- --example --profile --profile-folded $(FOLDED) --record $(VXR)
	dune exec bin/wasprun.exe -- --replay $(VXR)

clean:
	dune clean
