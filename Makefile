# Convenience entry points; everything below is plain dune.

TRACE := /tmp/wasp-trace.json

.PHONY: all check test bench trace-smoke clean

all:
	dune build

# tier-1 gate: full build + every test suite
check:
	dune build
	dune runtest

test: check

bench:
	dune exec bench/main.exe

# telemetry smoke: emit a Chrome trace from an instrumented run, then
# validate it (JSON parses, phase spans present)
trace-smoke:
	dune exec bin/wasprun.exe -- --example --trace-json $(TRACE) --metrics
	dune exec bin/wasprun.exe -- --check-trace $(TRACE)

clean:
	dune clean
