(* Telemetry subsystem tests: span/cycle attribution invariants,
   histogram percentile math, exporter well-formedness, determinism.

   The load-bearing invariant is phase tiling: the virtual clock only
   advances on explicit charges, and every charge in Runtime.run happens
   lexically inside a phase span, so the depth-1 phase spans of an
   invocation sum exactly to its end-to-end cycle count. *)

let demo_src = "mov r0, 0\nmov r1, 7\nout 1, r0\nhlt"

let demo_image () = Wasp.Image.of_asm_string ~name:"telemetry-demo" demo_src

let instrumented_run ?(seed = 0xACE) () =
  let w = Wasp.Runtime.create ~seed () in
  let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
  Wasp.Runtime.set_telemetry w (Some hub);
  let r = Wasp.Runtime.run w (demo_image ()) ~policy:Wasp.Policy.allow_all () in
  (w, hub, r)

let exited r =
  match r.Wasp.Runtime.outcome with
  | Wasp.Runtime.Exited _ -> true
  | _ -> false

(* --- span attribution ------------------------------------------------- *)

let test_root_span_equals_cycles () =
  let _, hub, r = instrumented_run () in
  Alcotest.(check bool) "run exited" true (exited r);
  let root =
    List.find
      (fun (s : Telemetry.Span.span) -> s.name = "invocation" && s.depth = 0)
      (Telemetry.Span.spans (Telemetry.Hub.spans hub))
  in
  Alcotest.(check int64) "root span duration = invocation cycles" r.Wasp.Runtime.cycles
    root.Telemetry.Span.duration

let test_phase_spans_tile_invocation () =
  let _, hub, r = instrumented_run () in
  let spans = Telemetry.Span.spans (Telemetry.Hub.spans hub) in
  let phase_sum =
    List.fold_left
      (fun acc (s : Telemetry.Span.span) ->
        if s.depth = 1 then Int64.add acc s.duration else acc)
      0L spans
  in
  Alcotest.(check int64) "depth-1 phase spans sum to end-to-end cycles"
    r.Wasp.Runtime.cycles phase_sum;
  let names = List.map (fun (s : Telemetry.Span.span) -> s.name) spans in
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " span present") true (List.mem phase names))
    [ "invocation"; "provision"; "image_load"; "boot"; "marshal"; "execute"; "clean" ]

let test_snapshot_spans () =
  let w = Wasp.Runtime.create ~seed:0xACE () in
  let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
  Wasp.Runtime.set_telemetry w (Some hub);
  (* the guest must issue the snapshot hypercall for a capture to happen *)
  let img =
    Wasp.Image.of_asm_string ~name:"telemetry-snap"
      "mov r0, 6\nout 1, r0\nmov r1, 7\nmov r0, 0\nout 1, r0\nhlt"
  in
  let run () =
    Wasp.Runtime.run w img ~policy:Wasp.Policy.allow_all ~snapshot_key:"tele-snap" ()
  in
  let r1 = run () in
  let r2 = run () in
  Alcotest.(check bool) "first run not from snapshot" false r1.Wasp.Runtime.from_snapshot;
  Alcotest.(check bool) "second run from snapshot" true r2.Wasp.Runtime.from_snapshot;
  let names =
    List.map
      (fun (s : Telemetry.Span.span) -> s.name)
      (Telemetry.Span.spans (Telemetry.Hub.spans hub))
  in
  Alcotest.(check bool) "snapshot_capture span" true (List.mem "snapshot_capture" names);
  Alcotest.(check bool) "snapshot_restore span" true (List.mem "snapshot_restore" names);
  (* tiling holds per invocation even with snapshot phases in play *)
  let roots =
    List.filter
      (fun (s : Telemetry.Span.span) -> s.depth = 0 && s.name = "invocation")
      (Telemetry.Span.spans (Telemetry.Hub.spans hub))
  in
  Alcotest.(check int) "one root span per invocation" 2 (List.length roots)

let test_with_span_exception_safe () =
  let clk = Cycles.Clock.create () in
  let hub = Telemetry.Hub.create ~clock:clk () in
  (try
     Telemetry.Hub.with_span hub "boom" (fun () ->
         Cycles.Clock.advance clk 10L;
         failwith "inner")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 0
    (Telemetry.Span.depth (Telemetry.Hub.spans hub));
  match Telemetry.Span.spans (Telemetry.Hub.spans hub) with
  | [ s ] ->
      Alcotest.(check string) "name" "boom" s.Telemetry.Span.name;
      Alcotest.(check int64) "duration charged" 10L s.Telemetry.Span.duration
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_sink_capacity_drops () =
  let clk = Cycles.Clock.create () in
  let hub = Telemetry.Hub.create ~capacity:4 ~clock:clk () in
  for i = 1 to 10 do
    Telemetry.Hub.instant hub (Printf.sprintf "e%d" i)
  done;
  let sink = Telemetry.Hub.spans hub in
  Alcotest.(check int) "retained = capacity" 4 (Telemetry.Span.count sink);
  Alcotest.(check int) "dropped the rest" 6 (Telemetry.Span.dropped sink)

(* --- histogram math --------------------------------------------------- *)

let test_histogram_percentiles () =
  let reg = Telemetry.Metrics.create () in
  let h = Telemetry.Metrics.histogram reg "t" in
  List.iter (fun v -> Telemetry.Metrics.observe h v) [ 1L; 4L; 16L ];
  Alcotest.(check (float 1e-9)) "p0 clamps to min" 1.0 (Telemetry.Metrics.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p100 clamps to max" 16.0
    (Telemetry.Metrics.percentile h 100.0);
  (* p50 target is sample 1.5 of 3: halfway through the second sample's
     bucket [4,8) -> interpolated 6.0 *)
  Alcotest.(check (float 1e-9)) "p50 interpolates in crossing bucket" 6.0
    (Telemetry.Metrics.percentile h 50.0)

let test_histogram_constant_exact () =
  let reg = Telemetry.Metrics.create () in
  let h = Telemetry.Metrics.histogram reg "t" in
  for _ = 1 to 100 do
    Telemetry.Metrics.observe h 10L
  done;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%g of constant input" p)
        10.0
        (Telemetry.Metrics.percentile h p))
    [ 1.0; 50.0; 90.0; 99.0 ]

let test_bucket_index () =
  let idx = Telemetry.Metrics.bucket_index in
  Alcotest.(check int) "0 -> bucket 0" 0 (idx 0L);
  Alcotest.(check int) "1 -> bucket 1" 1 (idx 1L);
  Alcotest.(check int) "2 -> bucket 2" 2 (idx 2L);
  Alcotest.(check int) "3 -> bucket 2" 2 (idx 3L);
  Alcotest.(check int) "4 -> bucket 3" 3 (idx 4L);
  Alcotest.(check int) "1023 -> bucket 10" 10 (idx 1023L);
  Alcotest.(check int) "1024 -> bucket 11" 11 (idx 1024L);
  Alcotest.(check bool) "huge value stays in range" true (idx Int64.max_int < 63);
  (* bounds are consistent with the index *)
  List.iter
    (fun v ->
      let i = idx v in
      let lo, hi = Telemetry.Metrics.bucket_bounds i in
      Alcotest.(check bool)
        (Printf.sprintf "%Ld within its bucket bounds" v)
        true
        (lo <= v && v < hi))
    [ 0L; 1L; 2L; 7L; 8L; 1000L; 123456L ]

let test_registry_kind_mismatch () =
  let reg = Telemetry.Metrics.create () in
  ignore (Telemetry.Metrics.counter reg "m");
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument "Metrics.gauge: m is not a gauge") (fun () ->
      ignore (Telemetry.Metrics.gauge reg "m"))

let test_bad_samples_rejected () =
  let reg = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter reg "good_total" in
  Telemetry.Metrics.incr ~by:3 c;
  Telemetry.Metrics.incr ~by:(-5) c;
  Alcotest.(check int) "counter stays monotone" 3 c.Telemetry.Metrics.c_value;
  let g = Telemetry.Metrics.gauge reg "level" in
  Telemetry.Metrics.set g 2.5;
  Telemetry.Metrics.set g Float.nan;
  Alcotest.(check (float 1e-9)) "gauge keeps last good value" 2.5
    g.Telemetry.Metrics.g_value;
  let h = Telemetry.Metrics.histogram reg "lat" in
  Telemetry.Metrics.observe h (-7L);
  Alcotest.(check int) "negative observation still counted" 1
    h.Telemetry.Metrics.h_count;
  Alcotest.(check int64) "negative observation clamps to zero" 0L
    h.Telemetry.Metrics.h_sum;
  Alcotest.(check int) "every rejection tallied" 3
    (Telemetry.Metrics.bad_samples reg)

let test_bad_samples_counter_lazy () =
  let reg = Telemetry.Metrics.create () in
  let c = Telemetry.Metrics.counter reg "clean_total" in
  Telemetry.Metrics.incr c;
  Alcotest.(check bool) "no bad-sample series on a clean registry" true
    (Telemetry.Metrics.find reg "telemetry_bad_samples_total" = None);
  Telemetry.Metrics.incr ~by:(-1) c;
  (match Telemetry.Metrics.find reg "telemetry_bad_samples_total" with
  | Some (Telemetry.Metrics.Counter bad) ->
      Alcotest.(check int) "materializes after first rejection" 1
        bad.Telemetry.Metrics.c_value
  | _ -> Alcotest.fail "telemetry_bad_samples_total missing after rejection");
  let text = Telemetry.Prometheus.to_text reg in
  let contains sub =
    let n = String.length sub and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "exposition carries the tally" true
    (contains "telemetry_bad_samples_total 1")

(* --- exporters -------------------------------------------------------- *)

let test_chrome_json_parses () =
  let _, hub, _ = instrumented_run () in
  let json = Telemetry.Chrome.to_json hub in
  match Vjs.Json.parse json with
  | Vjs.Jsvalue.Obj tbl -> (
      match Hashtbl.find_opt tbl "traceEvents" with
      | Some (Vjs.Jsvalue.Arr v) ->
          let events = Vjs.Jsvalue.vec_to_list v in
          Alcotest.(check bool) "non-empty traceEvents" true (events <> []);
          let has_phase ph =
            List.exists
              (function
                | Vjs.Jsvalue.Obj o -> (
                    match Hashtbl.find_opt o "ph" with
                    | Some (Vjs.Jsvalue.Str s) -> s = ph
                    | _ -> false)
                | _ -> false)
              events
          in
          Alcotest.(check bool) "has complete events" true (has_phase "X");
          Alcotest.(check bool) "has metadata event" true (has_phase "M")
      | _ -> Alcotest.fail "no traceEvents array")
  | _ -> Alcotest.fail "chrome export is not a JSON object"

let test_chrome_json_deterministic () =
  let _, hub1, _ = instrumented_run ~seed:0xACE () in
  let _, hub2, _ = instrumented_run ~seed:0xACE () in
  Alcotest.(check string) "same seed => byte-identical trace JSON"
    (Telemetry.Chrome.to_json hub1) (Telemetry.Chrome.to_json hub2);
  let _, hub3, _ = instrumented_run ~seed:0xBEEF () in
  Alcotest.(check bool) "different seed => different trace" true
    (Telemetry.Chrome.to_json hub1 <> Telemetry.Chrome.to_json hub3)

let test_prometheus_text () =
  let _, hub, r = instrumented_run () in
  let text = Telemetry.Prometheus.to_text (Telemetry.Hub.metrics hub) in
  let contains sub =
    let n = String.length sub and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "invocations counter" true (contains "wasp_invocations_total 1");
  Alcotest.(check bool) "histogram count line" true (contains "wasp_invocation_cycles_count 1");
  Alcotest.(check bool) "histogram sum line" true
    (contains (Printf.sprintf "wasp_invocation_cycles_sum %Ld" r.Wasp.Runtime.cycles));
  Alcotest.(check bool) "+Inf bucket" true (contains {|_bucket{le="+Inf"} 1|})

let test_prometheus_label_escaping () =
  let reg = Telemetry.Metrics.create () in
  let c =
    Telemetry.Metrics.counter reg ~help:"tricky \\ values"
      ~labels:[ ("fn", "a\\b\"c\nd") ] "escape_test_total"
  in
  Telemetry.Metrics.incr c;
  let plain = Telemetry.Metrics.counter reg "escape_test_total" in
  Telemetry.Metrics.incr ~by:2 plain;
  let text = Telemetry.Prometheus.to_text reg in
  let contains sub =
    let n = String.length sub and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  (* label values escape backslash, double-quote and newline *)
  Alcotest.(check bool) "label value escaped" true
    (contains {|escape_test_total{fn="a\\b\"c\nd"} 1|});
  Alcotest.(check bool) "bare series coexists" true (contains "escape_test_total 2");
  (* HELP/TYPE emitted once per family even with two series *)
  let count sub =
    let n = String.length sub and m = String.length text in
    let rec go i acc =
      if i + n > m then acc
      else if String.sub text i n = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one HELP per family" 1 (count "# HELP escape_test_total");
  Alcotest.(check int) "one TYPE per family" 1 (count "# TYPE escape_test_total")

let test_chrome_per_core_tids () =
  let clock = Cycles.Clock.create () in
  let hub = Telemetry.Hub.create ~clock () in
  let charge n = Cycles.Clock.advance_int clock n in
  Telemetry.Hub.set_core hub 0;
  Telemetry.Hub.with_span hub "execute" (fun () -> charge 10);
  Telemetry.Hub.set_core hub 2;
  Telemetry.Hub.with_span hub "execute" (fun () -> charge 20);
  let json = Telemetry.Chrome.to_json hub in
  let contains sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  (* each core is its own thread track, named via thread_name metadata *)
  Alcotest.(check bool) "core 0 slice on tid 1" true (contains {|"tid":1|});
  Alcotest.(check bool) "core 2 slice on tid 3" true (contains {|"tid":3|});
  Alcotest.(check bool) "core 0 track named" true (contains {|"core 0"|});
  Alcotest.(check bool) "core 2 track named" true (contains {|"core 2"|});
  Alcotest.(check bool) "no track for unused core" false (contains {|"core 1"|})

let test_summary_renders () =
  let _, hub, _ = instrumented_run () in
  let s = Telemetry.Summary.render hub in
  List.iter
    (fun needle ->
      let n = String.length needle and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
      Alcotest.(check bool) ("summary mentions " ^ needle) true (go 0))
    [ "invocation"; "provision"; "boot"; "execute"; "clean"; "% wall" ]

let test_percentile_table_renders () =
  let out =
    Stats.Report.percentile_table ~unit_label:"us"
      [ ("arm", [| 1.0; 2.0; 3.0; 4.0 |]); ("empty", [||]) ]
  in
  let contains sub =
    let n = String.length sub and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "p50 header" true (contains "p50 (us)");
  Alcotest.(check bool) "empty row dashes" true (contains "-")

(* --- trace adapter (satellite 1) -------------------------------------- *)

let test_trace_stamps_and_mirror () =
  let w = Wasp.Runtime.create ~seed:0xACE () in
  let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
  Wasp.Runtime.set_telemetry w (Some hub);
  let tr = Wasp.Trace.create () in
  Wasp.Runtime.set_trace w (Some tr);
  ignore (Wasp.Runtime.run w (demo_image ()) ~policy:Wasp.Policy.allow_all ());
  let stamped = Wasp.Trace.stamped tr in
  Alcotest.(check bool) "trace recorded events" true (stamped <> []);
  let stamps = List.map fst stamped in
  Alcotest.(check bool) "all events cycle-stamped" true
    (List.for_all Option.is_some stamps);
  let rec monotone = function
    | Some a :: (Some b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "stamps are monotone" true (monotone stamps);
  (* .mli-compatible view still works *)
  Alcotest.(check int) "events = stamped length" (List.length stamped)
    (List.length (Wasp.Trace.events tr));
  (* mirrored instants land in the sink with trace.* names *)
  let instants =
    List.filter_map
      (function
        | Telemetry.Span.Instant { i_name; _ } -> Some i_name
        | Telemetry.Span.Complete _ -> None)
      (Telemetry.Span.items (Telemetry.Hub.spans hub))
  in
  Alcotest.(check bool) "trace.image_loaded mirrored" true
    (List.mem "trace.image_loaded" instants);
  Alcotest.(check bool) "trace.finished mirrored" true
    (List.mem "trace.finished" instants)

(* --- pool + kvm metrics ----------------------------------------------- *)

let test_pool_and_kvm_metrics () =
  let w = Wasp.Runtime.create ~seed:0xACE () in
  let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
  Wasp.Runtime.set_telemetry w (Some hub);
  let img = demo_image () in
  ignore (Wasp.Runtime.run w img ~policy:Wasp.Policy.allow_all ());
  ignore (Wasp.Runtime.run w img ~policy:Wasp.Policy.allow_all ());
  let reg = Telemetry.Hub.metrics hub in
  let counter_value name =
    match Telemetry.Metrics.find reg name with
    | Some (Telemetry.Metrics.Counter c) -> c.Telemetry.Metrics.c_value
    | _ -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check int) "one pool miss (cold)" 1 (counter_value "wasp_pool_misses_total");
  Alcotest.(check int) "one pool hit (warm)" 1 (counter_value "wasp_pool_hits_total");
  Alcotest.(check int) "one VM created" 1 (counter_value "kvm_vm_creations_total");
  Alcotest.(check int) "two invocations" 2 (counter_value "wasp_invocations_total");
  Alcotest.(check bool) "vcpu_run spans recorded" true
    (List.exists
       (fun (s : Telemetry.Span.span) -> s.name = "vcpu_run")
       (Telemetry.Span.spans (Telemetry.Hub.spans hub)))

(* --- paged-memory gauges ---------------------------------------------- *)

let test_memory_gauges () =
  let w = Wasp.Runtime.create ~seed:0xACE () in
  let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
  Wasp.Runtime.set_telemetry w (Some hub);
  ignore (Wasp.Runtime.run w (demo_image ()) ~policy:Wasp.Policy.allow_all ());
  let reg = Telemetry.Hub.metrics hub in
  let gauge name =
    match Telemetry.Metrics.find reg name with
    | Some (Telemetry.Metrics.Gauge g) -> g.Telemetry.Metrics.g_value
    | _ -> Alcotest.failf "missing gauge %s" name
  in
  (* a 64 KB guest that ran an image holds a handful of private pages —
     far fewer than the 16 a flat store would pin *)
  Alcotest.(check bool) "resident pages reported" true
    (gauge "wasp_mem_resident_pages" > 0. && gauge "wasp_mem_resident_pages" < 16.);
  Alcotest.(check bool) "resident bytes consistent" true
    (gauge "wasp_mem_resident_bytes"
    = gauge "wasp_mem_resident_pages" *. float_of_int Vm.Memory.page_size);
  ignore (gauge "wasp_mem_shared_pages");
  ignore (gauge "vm_page_cache_entries");
  ignore (gauge "vm_page_cache_bytes")

(* --- trace context (causal request tracing) --------------------------- *)

let contains hay sub =
  let n = String.length sub and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
  go 0

let traced_run ?(seed = 0xACE) () =
  let w = Wasp.Runtime.create ~seed () in
  let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
  Wasp.Runtime.set_telemetry w (Some hub);
  Telemetry.Hub.enable_tracing hub ~seed;
  let r = Wasp.Runtime.run w (demo_image ()) ~policy:Wasp.Policy.allow_all () in
  (w, hub, r)

let arg k (s : Telemetry.Span.span) = List.assoc_opt k s.Telemetry.Span.args

let test_trace_tree () =
  let _, hub, r = traced_run () in
  Alcotest.(check bool) "run exited" true (exited r);
  let spans = Telemetry.Span.spans (Telemetry.Hub.spans hub) in
  Alcotest.(check bool) "every span has trace+span ids" true
    (List.for_all (fun s -> arg "trace_id" s <> None && arg "span_id" s <> None) spans);
  let root =
    List.find (fun (s : Telemetry.Span.span) -> s.name = "invocation" && s.depth = 0) spans
  in
  Alcotest.(check bool) "root has no parent" true (arg "parent_id" root = None);
  let trace = Option.get (arg "trace_id" root) in
  Alcotest.(check bool) "one trace spans the whole invocation" true
    (List.for_all (fun s -> arg "trace_id" s = Some trace) spans);
  (* parent links resolve to a retained span of the same trace *)
  let sids = List.filter_map (arg "span_id") spans in
  Alcotest.(check bool) "span ids unique" true
    (List.length sids = List.length (List.sort_uniq compare sids));
  List.iter
    (fun s ->
      match arg "parent_id" s with
      | None -> ()
      | Some pid ->
          Alcotest.(check bool)
            (Printf.sprintf "parent of %s retained" s.Telemetry.Span.name)
            true (List.mem pid sids))
    spans;
  (* conservation via parent links: the root's direct children tile it *)
  let rid = Option.get (arg "span_id" root) in
  let child_sum =
    List.fold_left
      (fun acc s ->
        if arg "parent_id" s = Some rid then Int64.add acc s.Telemetry.Span.duration
        else acc)
      0L spans
  in
  Alcotest.(check int64) "children tile the root exactly" root.Telemetry.Span.duration
    child_sum

let test_trace_ids_deterministic () =
  let shape hub =
    List.map
      (fun (s : Telemetry.Span.span) ->
        (s.name, arg "trace_id" s, arg "span_id" s, arg "parent_id" s))
      (Telemetry.Span.spans (Telemetry.Hub.spans hub))
  in
  let _, h1, _ = traced_run ~seed:7 () in
  let _, h2, _ = traced_run ~seed:7 () in
  let _, h3, _ = traced_run ~seed:8 () in
  Alcotest.(check bool) "same seed, byte-identical ids" true (shape h1 = shape h2);
  Alcotest.(check bool) "different seed, different ids" true (shape h1 <> shape h3)

let test_instants_stamped () =
  let _, hub, _ = traced_run () in
  let instants =
    List.filter_map
      (function
        | Telemetry.Span.Instant { i_name; i_args; _ } -> Some (i_name, i_args)
        | Telemetry.Span.Complete _ -> None)
      (Telemetry.Span.items (Telemetry.Hub.spans hub))
  in
  match List.assoc_opt "pool_miss" instants with
  | None -> Alcotest.fail "expected a pool_miss instant"
  | Some args ->
      Alcotest.(check bool) "instant carries the active trace id" true
        (List.mem_assoc "trace_id" args)

let test_prometheus_exemplar () =
  let _, hub, r = traced_run () in
  let text = Telemetry.Prometheus.to_text (Telemetry.Hub.metrics hub) in
  Alcotest.(check bool) "an exemplar suffix is rendered" true
    (contains text " # {trace_id=\"");
  (* the invocation histogram's exemplar resolves to the run's trace *)
  let spans = Telemetry.Span.spans (Telemetry.Hub.spans hub) in
  let root =
    List.find (fun (s : Telemetry.Span.span) -> s.name = "invocation" && s.depth = 0) spans
  in
  let trace = Option.get (arg "trace_id" root) in
  (match Telemetry.Metrics.find (Telemetry.Hub.metrics hub) "wasp_invocation_cycles" with
  | Some (Telemetry.Metrics.Histogram h) -> (
      match Telemetry.Metrics.bucket_exemplars h with
      | [ (_, e) ] ->
          Alcotest.(check string) "exemplar trace = invocation trace" trace
            e.Telemetry.Metrics.e_trace;
          Alcotest.(check int64) "exemplar value = invocation cycles"
            r.Wasp.Runtime.cycles e.Telemetry.Metrics.e_value
      | l -> Alcotest.failf "expected 1 exemplar, got %d" (List.length l))
  | _ -> Alcotest.fail "missing wasp_invocation_cycles");
  (* +Inf stays exemplar-free, per OpenMetrics practice for the closing bucket *)
  Alcotest.(check bool) "+Inf bucket has no exemplar" false
    (contains text "le=\"+Inf\"} 1 #")

let test_labeled_histogram_export () =
  let reg = Telemetry.Metrics.create () in
  let ha = Telemetry.Metrics.histogram reg ~labels:[ ("fn", "alpha") ] "invoke_cycles" in
  let hb = Telemetry.Metrics.histogram reg ~labels:[ ("fn", "beta") ] "invoke_cycles" in
  Telemetry.Metrics.observe ha 3L;
  Telemetry.Metrics.observe ha 3L;
  Telemetry.Metrics.observe hb 100L;
  Alcotest.(check bool) "series are independent" true
    (ha.Telemetry.Metrics.h_count = 2 && hb.Telemetry.Metrics.h_count = 1);
  let text = Telemetry.Prometheus.to_text reg in
  Alcotest.(check bool) "family labels merged with le" true
    (contains text "invoke_cycles_bucket{fn=\"alpha\",le=\"4\"} 2");
  Alcotest.(check bool) "sum carries family labels" true
    (contains text "invoke_cycles_sum{fn=\"alpha\"} 6");
  Alcotest.(check bool) "count carries family labels" true
    (contains text "invoke_cycles_count{fn=\"beta\"} 1")

let test_registry_order_stable () =
  let reg = Telemetry.Metrics.create () in
  ignore (Telemetry.Metrics.counter reg "zeta");
  ignore (Telemetry.Metrics.histogram reg ~labels:[ ("fn", "a") ] "hist");
  ignore (Telemetry.Metrics.gauge reg "alpha");
  (* re-registration must not reorder *)
  ignore (Telemetry.Metrics.counter reg "zeta");
  ignore (Telemetry.Metrics.gauge reg "alpha");
  ignore (Telemetry.Metrics.histogram reg ~labels:[ ("fn", "a") ] "hist");
  let names =
    List.map
      (function
        | Telemetry.Metrics.Counter c -> c.Telemetry.Metrics.c_name
        | Telemetry.Metrics.Gauge g -> g.Telemetry.Metrics.g_name
        | Telemetry.Metrics.Histogram h -> h.Telemetry.Metrics.h_name)
      (Telemetry.Metrics.to_list reg)
  in
  Alcotest.(check (list string)) "stable first-registration order"
    [ "zeta"; "hist"; "alpha" ] names

let test_chrome_flow_events () =
  let clk = Cycles.Clock.create () in
  let hub = Telemetry.Hub.create ~clock:clk () in
  Telemetry.Hub.enable_tracing hub ~seed:42;
  (* parent on core 0, child on core 1: a cross-core causal edge *)
  Telemetry.Hub.enter hub "dispatch";
  Cycles.Clock.advance clk 10L;
  Telemetry.Hub.set_core hub 1;
  Telemetry.Hub.with_span hub "work" (fun () -> Cycles.Clock.advance clk 5L);
  Telemetry.Hub.set_core hub 0;
  Telemetry.Hub.leave hub ();
  let json = Telemetry.Chrome.to_json hub in
  Alcotest.(check bool) "flow start event" true (contains json "\"ph\":\"s\"");
  Alcotest.(check bool) "flow finish event" true (contains json "\"ph\":\"f\"");
  Alcotest.(check bool) "flow category" true (contains json "\"cat\":\"wasp.flow\"")

(* --- SLO burn-rate engine --------------------------------------------- *)

let test_slo_fire_and_clear () =
  let clk = Cycles.Clock.create () in
  let hub = Telemetry.Hub.create ~clock:clk () in
  let slo =
    Telemetry.Slo.create ~hub ~name:"t" ~target:0.9
      ~rules:
        [
          {
            Telemetry.Slo.rule_name = "only";
            long_window = 1_000L;
            short_window = 100L;
            burn_threshold = 2.0;
          };
        ]
      ~period:10_000L ()
  in
  (* all-good traffic: no alert *)
  for _ = 1 to 10 do
    Cycles.Clock.advance clk 10L;
    Telemetry.Slo.record slo ~good:true
  done;
  Alcotest.(check bool) "quiet under good traffic" false (Telemetry.Slo.alerting slo);
  (* a bad burst: burn = 1.0 / 0.1 = 10x in both windows *)
  for _ = 1 to 10 do
    Cycles.Clock.advance clk 10L;
    Telemetry.Slo.record slo ~good:false
  done;
  Alcotest.(check bool) "alert fires during the burst" true (Telemetry.Slo.alerting slo);
  Alcotest.(check int) "one firing transition" 1 (Telemetry.Slo.alerts_fired slo);
  Alcotest.(check bool) "peak burn recorded" true (Telemetry.Slo.peak_burn slo >= 2.0);
  (* clean traffic refills the short window; the alert clears *)
  for _ = 1 to 30 do
    Cycles.Clock.advance clk 10L;
    Telemetry.Slo.record slo ~good:true
  done;
  Alcotest.(check bool) "alert clears after recovery" false (Telemetry.Slo.alerting slo);
  Alcotest.(check int) "one cleared transition" 1 (Telemetry.Slo.alerts_cleared slo);
  (* transitions left instants in the span stream *)
  let states =
    List.filter_map
      (function
        | Telemetry.Span.Instant { i_name = "slo_alert"; i_args; _ } ->
            List.assoc_opt "state" i_args
        | _ -> None)
      (Telemetry.Span.items (Telemetry.Hub.spans hub))
  in
  Alcotest.(check (list string)) "firing then cleared" [ "firing"; "cleared" ] states;
  (* gauges exported under (slo, rule) labels *)
  let g =
    Telemetry.Metrics.gauge (Telemetry.Hub.metrics hub)
      ~labels:[ ("slo", "t"); ("rule", "only") ]
      "slo_alert_active"
  in
  Alcotest.(check (float 1e-9)) "alert gauge cleared" 0.0 g.Telemetry.Metrics.g_value

let test_slo_latency_objective () =
  let clk = Cycles.Clock.create () in
  let hub = Telemetry.Hub.create ~clock:clk () in
  let slo =
    Telemetry.Slo.create ~hub ~name:"lat" ~objective:(Telemetry.Slo.Latency_under 100L)
      ~target:0.99 ~period:1_000_000L ()
  in
  Cycles.Clock.advance clk 10L;
  Telemetry.Slo.record_latency slo 50L;
  Telemetry.Slo.record_latency slo 200L;
  Alcotest.(check int) "under threshold is good" 1 (Telemetry.Slo.good_count slo);
  Alcotest.(check int) "over threshold is bad" 1 (Telemetry.Slo.bad_count slo);
  Alcotest.(check bool) "availability objective rejects record_latency" true
    (match
       Telemetry.Slo.record_latency
         (Telemetry.Slo.create ~hub ~name:"avail" ~target:0.5 ~period:1_000L ())
         1L
     with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_percentile_table_slo_verdict () =
  let out =
    Stats.Report.percentile_table ~unit_label:"us"
      ~slo:[ ("fast", 10.0); ("slow", 2.0) ]
      [
        ("fast", Array.init 100 (fun i -> float_of_int (i + 1) /. 20.0));
        ("slow", Array.init 100 (fun i -> float_of_int (i + 1) /. 20.0));
        ("untargeted", [| 1.0 |]);
      ]
  in
  Alcotest.(check bool) "p99.9 column" true (contains out "p99.9");
  Alcotest.(check bool) "slo column" true (contains out "slo p99 (us)");
  Alcotest.(check bool) "met verdict" true (contains out "met");
  Alcotest.(check bool) "missed verdict" true (contains out "MISSED")

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "root span = invocation cycles" `Quick
            test_root_span_equals_cycles;
          Alcotest.test_case "phase spans tile the invocation" `Quick
            test_phase_spans_tile_invocation;
          Alcotest.test_case "snapshot capture/restore spans" `Quick test_snapshot_spans;
          Alcotest.test_case "with_span is exception-safe" `Quick
            test_with_span_exception_safe;
          Alcotest.test_case "sink capacity drops excess" `Quick test_sink_capacity_drops;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "percentile interpolation" `Quick test_histogram_percentiles;
          Alcotest.test_case "constant input is exact" `Quick test_histogram_constant_exact;
          Alcotest.test_case "log2 bucket index" `Quick test_bucket_index;
          Alcotest.test_case "kind mismatch rejected" `Quick test_registry_kind_mismatch;
          Alcotest.test_case "bad samples rejected" `Quick
            test_bad_samples_rejected;
          Alcotest.test_case "bad-sample counter is lazy" `Quick
            test_bad_samples_counter_lazy;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome JSON parses" `Quick test_chrome_json_parses;
          Alcotest.test_case "chrome JSON deterministic per seed" `Quick
            test_chrome_json_deterministic;
          Alcotest.test_case "prometheus text" `Quick test_prometheus_text;
          Alcotest.test_case "prometheus label escaping" `Quick
            test_prometheus_label_escaping;
          Alcotest.test_case "chrome per-core tids" `Quick test_chrome_per_core_tids;
          Alcotest.test_case "summary renders phases" `Quick test_summary_renders;
          Alcotest.test_case "percentile table renders" `Quick
            test_percentile_table_renders;
        ] );
      ( "integration",
        [
          Alcotest.test_case "trace stamps + telemetry mirror" `Quick
            test_trace_stamps_and_mirror;
          Alcotest.test_case "pool and kvm metrics" `Quick test_pool_and_kvm_metrics;
          Alcotest.test_case "paged-memory gauges" `Quick test_memory_gauges;
        ] );
      ( "tracectx",
        [
          Alcotest.test_case "one trace, parent links form a tree" `Quick test_trace_tree;
          Alcotest.test_case "same seed, byte-identical ids" `Quick
            test_trace_ids_deterministic;
          Alcotest.test_case "instants carry the trace id" `Quick test_instants_stamped;
          Alcotest.test_case "prometheus exemplar resolves" `Quick
            test_prometheus_exemplar;
          Alcotest.test_case "labeled histogram export" `Quick
            test_labeled_histogram_export;
          Alcotest.test_case "registry order stable" `Quick test_registry_order_stable;
          Alcotest.test_case "chrome cross-core flow events" `Quick
            test_chrome_flow_events;
        ] );
      ( "slo",
        [
          Alcotest.test_case "burn-rate alert fires and clears" `Quick
            test_slo_fire_and_clear;
          Alcotest.test_case "latency objective" `Quick test_slo_latency_objective;
          Alcotest.test_case "percentile table slo verdict" `Quick
            test_percentile_table_slo_verdict;
        ] );
    ]
