(* Fault-injection plans, the injection sites in the KVM model, and the
   virtine supervisor (retry / watchdog / quarantine) built on them. *)

module FP = Cycles.Fault_plan
module R = Wasp.Runtime
module S = Wasp.Supervisor

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)
(* ------------------------------------------------------------------ *)

let test_plan_round_trip () =
  let p =
    FP.create ~seed:0xBEEF
      [
        ("spurious_exit", FP.Prob 0.05);
        ("guest_hang", FP.Every { start = 50; interval = 100 });
      ]
  in
  let text = FP.to_string p in
  match FP.of_string text with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok q ->
      Alcotest.(check int) "seed survives" (FP.seed p) (FP.seed q);
      Alcotest.(check string) "textual form is a fixed point" text (FP.to_string q)

let test_plan_schedule () =
  let p = FP.create [ ("s", FP.Every { start = 2; interval = 3 }) ] in
  let fired = List.init 10 (fun _ -> FP.fires p ~site:"s") in
  Alcotest.(check (list bool))
    "fires at 2, 5, 8"
    [ false; false; true; false; false; true; false; false; true; false ]
    fired;
  Alcotest.(check int) "opportunities counted" 10 (FP.opportunities p ~site:"s");
  Alcotest.(check int) "injections counted" 3 (FP.injected p ~site:"s")

let test_plan_one_shot_schedule () =
  let p = FP.create [ ("s", FP.Every { start = 1; interval = 0 }) ] in
  let fired = List.init 6 (fun _ -> FP.fires p ~site:"s") in
  Alcotest.(check (list bool))
    "interval 0 fires exactly once"
    [ false; true; false; false; false; false ]
    fired

let test_plan_prob_deterministic () =
  let draws plan = List.init 300 (fun _ -> FP.fires plan ~site:"s") in
  let a = draws (FP.create ~seed:7 [ ("s", FP.Prob 0.3) ]) in
  let b = draws (FP.create ~seed:7 [ ("s", FP.Prob 0.3) ]) in
  Alcotest.(check (list bool)) "same seed, same stream" a b;
  let c = draws (FP.create ~seed:8 [ ("s", FP.Prob 0.3) ]) in
  Alcotest.(check bool) "different seed differs somewhere" true (a <> c);
  let hits = List.length (List.filter Fun.id a) in
  Alcotest.(check bool)
    (Printf.sprintf "rate plausible (%d/300 at p=0.3)" hits)
    true
    (hits > 40 && hits < 150)

let test_plan_site_streams_independent () =
  (* Adding a second site must not perturb the first site's stream. *)
  let alone = FP.create ~seed:42 [ ("a", FP.Prob 0.5) ] in
  let paired = FP.create ~seed:42 [ ("a", FP.Prob 0.5); ("b", FP.Prob 0.5) ] in
  let seq =
    List.init 100 (fun _ ->
        ignore (FP.fires paired ~site:"b");
        FP.fires paired ~site:"a")
  in
  let ref_seq = List.init 100 (fun _ -> FP.fires alone ~site:"a") in
  Alcotest.(check (list bool)) "site a unaffected by site b" ref_seq seq

let test_plan_reset_and_copy () =
  let p = FP.create ~seed:3 [ ("s", FP.Prob 0.4) ] in
  let first = List.init 50 (fun _ -> FP.fires p ~site:"s") in
  FP.reset p;
  let again = List.init 50 (fun _ -> FP.fires p ~site:"s") in
  Alcotest.(check (list bool)) "reset replays the stream" first again;
  let q = FP.copy p in
  let copied = List.init 50 (fun _ -> FP.fires q ~site:"s") in
  Alcotest.(check (list bool)) "copy is a fresh armed plan" first copied;
  Alcotest.(check int) "copy has its own counters" 50 (FP.opportunities q ~site:"s")

let test_plan_unknown_site_never_fires () =
  let p = FP.create [ ("s", FP.Prob 1.0) ] in
  Alcotest.(check bool) "unknown site" false (FP.fires p ~site:"ghost");
  Alcotest.(check int) "not counted" 0 (FP.opportunities p ~site:"ghost")

let test_plan_parse_errors () =
  let bad text =
    match FP.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
  in
  bad "s=p1.5";
  bad "s=pforty";
  bad "s=@-1+2";
  bad "s=wat";
  bad "seed=zz;s=p0.1";
  bad "s=p0.1;s=p0.2";
  (match FP.of_string "# just a comment\n\nseed=0x10;s=p0.25" with
  | Ok p ->
      Alcotest.(check int) "comments and blanks skipped" 0x10 (FP.seed p);
      Alcotest.(check int) "one site" 1 (List.length (FP.sites p))
  | Error e -> Alcotest.failf "comment form should parse: %s" e);
  match FP.create [ ("bad name", FP.Prob 0.1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "whitespace in a site name must be rejected"

(* ------------------------------------------------------------------ *)
(* Injection sites in the KVM model                                    *)
(* ------------------------------------------------------------------ *)

let fib_src =
  {|
start:
  mov r1, 10
  call fib
  mov r1, r0
  mov r0, 0
  out 1, r0
  hlt
fib:
  cmp r1, 2
  jlt fib_base
  push r1
  sub r1, 1
  call fib
  pop r1
  push r0
  sub r1, 2
  call fib
  pop r2
  add r0, r2
  ret
fib_base:
  mov r0, r1
  ret
|}

let fib_image () = Wasp.Image.of_asm_string ~name:"fib" fib_src

(* dies immediately: wild load far outside guest memory *)
let crash_image () =
  Wasp.Image.of_asm_string ~name:"crash" {|
start:
  mov r1, 0x7ffffff0
  ld64 r0, [r1]
  hlt
|}

let test_inject_provision_fail () =
  let w = R.create ~pool:false () in
  R.set_fault_plan w
    (Some
       (FP.create
          [ (Kvmsim.Kvm.site_provision_fail, FP.Every { start = 0; interval = 0 }) ]));
  (match R.run w (fib_image ()) () with
  | exception Kvmsim.Kvm.Injected_failure site ->
      Alcotest.(check string) "names the site" Kvmsim.Kvm.site_provision_fail site
  | _ -> Alcotest.fail "expected Injected_failure from VM creation");
  Alcotest.(check int) "stat counted"
    1
    (Kvmsim.Kvm.stats (R.kvm w)).Kvmsim.Kvm.injected_faults;
  (* the next creation is opportunity 1: no longer scheduled *)
  match R.run w (fib_image ()) () with
  | { R.outcome = R.Exited _; _ } -> ()
  | _ -> Alcotest.fail "second run should survive"

let test_inject_guest_hang () =
  let w = R.create () in
  R.set_fault_plan w
    (Some
       (FP.create [ (Kvmsim.Kvm.site_guest_hang, FP.Every { start = 0; interval = 0 }) ]));
  let r = R.run w (fib_image ()) ~fuel:10_000 () in
  (match r.R.outcome with
  | R.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "a hung guest must burn its fuel");
  Alcotest.(check bool) "stat counted" true
    ((Kvmsim.Kvm.stats (R.kvm w)).Kvmsim.Kvm.injected_faults >= 1)

let test_inject_spurious_exit_costs_cycles () =
  let baseline () =
    let w = R.create ~seed:0x51 () in
    (R.run w (fib_image ()) ()).R.cycles
  in
  let armed () =
    let w = R.create ~seed:0x51 () in
    R.set_fault_plan w
      (Some
         (FP.create
            [ (Kvmsim.Kvm.site_spurious_exit, FP.Every { start = 0; interval = 1 }) ]));
    (R.run w (fib_image ()) ()).R.cycles
  in
  let plain = baseline () and a = armed () and b = armed () in
  Alcotest.(check int64) "injection cost is deterministic" a b;
  Alcotest.(check bool)
    (Printf.sprintf "storm slower than clean run (%Ld vs %Ld)" a plain)
    true (a > plain)

(* snapshot image borrowed from test_wasp: init loop, snapshot, then use
   the argument *)
let snap_image =
  Wasp.Image.of_asm_string ~name:"snap"
    {|
  mov r10, 0
init:
  add r10, 1
  cmp r10, 5000
  jlt init
  mov r0, 6        ; snapshot hypercall
  out 1, r0
  mov r1, 0
  ld64 r1, [r1]
  add r1, r10
  mov r0, 0
  out 1, r0
|}

let snap_policy = Wasp.Policy.of_list [ Wasp.Hc.snapshot ]

let test_inject_snapshot_corrupt () =
  let w = R.create () in
  R.set_fault_plan w
    (Some
       (FP.create
          [ (Kvmsim.Kvm.site_snapshot_corrupt, FP.Every { start = 0; interval = 0 }) ]));
  (* first run captures the snapshot; restores are the opportunities *)
  let r1 = R.run w snap_image ~policy:snap_policy ~snapshot_key:"chaos" ~args:[ 1L ] () in
  Alcotest.(check int64) "capture run is clean" 5001L r1.R.return_value;
  let r2 = R.run w snap_image ~policy:snap_policy ~snapshot_key:"chaos" ~args:[ 2L ] () in
  (match r2.R.outcome with
  | R.Faulted _ -> ()
  | _ -> Alcotest.fail "restoring a corrupted snapshot must fault the guest");
  (* opportunity 1 is past the schedule: the store itself is intact *)
  let r3 = R.run w snap_image ~policy:snap_policy ~snapshot_key:"chaos" ~args:[ 3L ] () in
  Alcotest.(check int64) "later restores are clean" 5003L r3.R.return_value

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let test_supervisor_clean_success () =
  let w = R.create () in
  let sup = S.create w in
  let o = S.run sup (fib_image ()) () in
  (match o.S.result with
  | Ok r -> Alcotest.(check int64) "fib result" 55L r.R.return_value
  | Error (_, msg) -> Alcotest.failf "unexpected failure: %s" msg);
  Alcotest.(check int) "one attempt" 1 o.S.attempts;
  Alcotest.(check int) "no retries" 0 o.S.retries;
  Alcotest.(check int) "no backoff" 0 o.S.backoff_cycles;
  let st = S.stats sup in
  Alcotest.(check int) "stats supervised" 1 st.S.supervised;
  Alcotest.(check int) "stats succeeded" 1 st.S.succeeded

let test_supervisor_retries_transient_hang () =
  let w = R.create () in
  (* hang exactly the first KVM_RUN; the retry's runs are clean *)
  R.set_fault_plan w
    (Some
       (FP.create [ (Kvmsim.Kvm.site_guest_hang, FP.Every { start = 0; interval = 0 }) ]));
  let sup =
    S.create ~config:{ S.default_config with S.attempt_fuel = Some 10_000 } w
  in
  let o = S.run sup (fib_image ()) () in
  (match o.S.result with
  | Ok r -> Alcotest.(check int64) "recovered result" 55L r.R.return_value
  | Error (_, msg) -> Alcotest.failf "supervisor should have recovered: %s" msg);
  Alcotest.(check int) "two attempts" 2 o.S.attempts;
  Alcotest.(check int) "one retry" 1 o.S.retries;
  Alcotest.(check int) "backed off the base delay" S.default_config.S.backoff_base
    o.S.backoff_cycles

let test_supervisor_timeout_class_and_backoff () =
  let w = R.create () in
  R.set_fault_plan w
    (Some (FP.create [ (Kvmsim.Kvm.site_guest_hang, FP.Prob 1.0) ]));
  let config =
    {
      S.default_config with
      S.max_retries = 3;
      backoff_base = 100;
      backoff_factor = 2;
      attempt_fuel = Some 5_000;
      quarantine_threshold = 1000;
    }
  in
  let sup = S.create ~config w in
  let before = Cycles.Clock.now (R.clock w) in
  let o = S.run sup (fib_image ()) () in
  (match o.S.result with
  | Error (S.Timeout, _) -> ()
  | Error (c, m) -> Alcotest.failf "wrong class %s: %s" (S.error_class_to_string c) m
  | Ok _ -> Alcotest.fail "every attempt hangs; must fail");
  Alcotest.(check int) "all attempts spent" 4 o.S.attempts;
  Alcotest.(check int) "backoff 100+200+400" 700 o.S.backoff_cycles;
  Alcotest.(check bool) "clock charged at least the backoff" true
    (Cycles.Clock.elapsed_since (R.clock w) before >= 700L);
  let st = S.stats sup in
  Alcotest.(check int) "stats retries" 3 st.S.retries;
  Alcotest.(check int) "stats failed" 1 st.S.failed

let test_supervisor_fault_class () =
  let w = R.create () in
  let sup =
    S.create
      ~config:{ S.default_config with S.max_retries = 1; quarantine_threshold = 1000 }
      w
  in
  let o = S.run sup (crash_image ()) () in
  match o.S.result with
  | Error (S.Fault, _) -> Alcotest.(check int) "retried once" 2 o.S.attempts
  | Error (c, m) -> Alcotest.failf "wrong class %s: %s" (S.error_class_to_string c) m
  | Ok _ -> Alcotest.fail "wild load must fault"

let test_supervisor_policy_is_terminal () =
  (* clock hypercall under deny-all: completes, but with a denial *)
  let img =
    Wasp.Image.of_asm_string ~name:"denier"
      {|
start:
  mov r0, 12
  out 1, r0
  mov r0, 0
  out 1, r0
  hlt
|}
  in
  let w = R.create () in
  let sup = S.create ~config:{ S.default_config with S.fail_on_denied = true } w in
  let o = S.run sup img () in
  (match o.S.result with
  | Error (S.Policy, _) -> ()
  | Error (c, m) -> Alcotest.failf "wrong class %s: %s" (S.error_class_to_string c) m
  | Ok _ -> Alcotest.fail "denied hypercall must be a policy failure");
  Alcotest.(check int) "policy violations are not retried" 1 o.S.attempts;
  (* without fail_on_denied the same run is a success *)
  let lax = S.create w in
  match (S.run lax img ()).S.result with
  | Ok _ -> ()
  | Error (_, m) -> Alcotest.failf "lax supervisor should succeed: %s" m

let test_supervisor_quarantine_lifecycle () =
  let w = R.create () in
  let config =
    {
      S.default_config with
      S.max_retries = 0;
      quarantine_threshold = 2;
      quarantine_cooldown = 1_000L;
    }
  in
  let sup = S.create ~config w in
  let img = crash_image () in
  let fail_once () =
    match (S.run sup img ()).S.result with
    | Error (S.Fault, _) -> ()
    | _ -> Alcotest.fail "expected a fault"
  in
  fail_once ();
  Alcotest.(check bool) "one failure: not yet quarantined" false
    (S.quarantined sup ~key:"crash");
  fail_once ();
  Alcotest.(check bool) "streak hit threshold" true (S.quarantined sup ~key:"crash");
  let o = S.run sup img () in
  (match o.S.result with
  | Error (S.Overload, _) -> ()
  | _ -> Alcotest.fail "quarantined image must be rejected");
  Alcotest.(check int) "rejected without running" 0 o.S.attempts;
  Alcotest.(check int) "rejection counted" 1 (S.stats sup).S.quarantine_rejections;
  (* cooldown elapses on the virtual clock: one probe is admitted *)
  Cycles.Clock.advance_int (R.clock w) 2_000;
  Alcotest.(check bool) "cooldown lifts quarantine" false
    (S.quarantined sup ~key:"crash");
  let probe = S.run sup img () in
  Alcotest.(check int) "probe actually ran" 1 probe.S.attempts;
  Alcotest.(check bool) "failed probe re-quarantines" true
    (S.quarantined sup ~key:"crash");
  S.release_quarantine sup ~key:"crash";
  Alcotest.(check bool) "manual release" false (S.quarantined sup ~key:"crash");
  (* the streak was forgotten too: one failure doesn't re-quarantine *)
  fail_once ();
  Alcotest.(check bool) "streak reset by release" false (S.quarantined sup ~key:"crash")

let test_supervisor_success_resets_streak () =
  let w = R.create () in
  let config =
    { S.default_config with S.max_retries = 0; quarantine_threshold = 2 }
  in
  let sup = S.create ~config w in
  ignore (S.run sup (crash_image ()) ~key:"k" ());
  ignore (S.run sup (fib_image ()) ~key:"k" ());
  ignore (S.run sup (crash_image ()) ~key:"k" ());
  Alcotest.(check bool) "success in between resets the streak" false
    (S.quarantined sup ~key:"k")

let chaos_arm () =
  let w = R.create ~seed:0xD1CE () in
  R.set_fault_plan w
    (Some
       (FP.create ~seed:0xFA17
          [
            (Kvmsim.Kvm.site_guest_hang, FP.Prob 0.2);
            (Kvmsim.Kvm.site_spurious_exit, FP.Prob 0.3);
          ]));
  let sup =
    S.create
      ~config:
        { S.default_config with S.attempt_fuel = Some 20_000; quarantine_threshold = 50 }
      w
  in
  let img = fib_image () in
  for _ = 1 to 20 do
    ignore (S.run sup img ())
  done;
  ((S.stats sup).S.retries, Cycles.Clock.now (R.clock w))

let test_supervisor_retry_schedule_deterministic () =
  let retries_a, clock_a = chaos_arm () in
  let retries_b, clock_b = chaos_arm () in
  Alcotest.(check bool) "the plan actually bit" true (retries_a > 0);
  Alcotest.(check int) "same retry schedule" retries_a retries_b;
  Alcotest.(check int64) "same final cycle count" clock_a clock_b

(* ------------------------------------------------------------------ *)
(* Chaos recordings replay with zero divergence                        *)
(* ------------------------------------------------------------------ *)

let record_chaos plan =
  let seed = 0xACE in
  let img = fib_image () in
  let w = R.create ~seed () in
  R.set_fault_plan w (Some plan);
  let rc = Profiler.Replay.create () in
  Profiler.Replay.set_image rc ~name:img.Wasp.Image.name
    ~mode:(Vm.Modes.to_string img.Wasp.Image.mode) ~origin:img.Wasp.Image.origin
    ~entry:img.Wasp.Image.entry ~mem_size:img.Wasp.Image.mem_size
    ~code:(Bytes.to_string img.Wasp.Image.code);
  Profiler.Replay.set_env rc ~fault_plan:(FP.to_string plan) ~seed ~policy:"deny_all"
    ~fuel:1_000_000 ();
  R.set_recorder w (Some rc);
  let r = R.run w img ~fuel:1_000_000 () in
  Profiler.Replay.finish rc ~cycles:r.R.cycles
    ~outcome:
      (match r.R.outcome with
      | R.Exited _ -> "exited"
      | R.Faulted _ -> "faulted"
      | R.Fuel_exhausted -> "fuel")
    ~return_value:r.R.return_value;
  rc

(* ------------------------------------------------------------------ *)
(* Supervision in the trace: sibling attempts, SLO wiring              *)
(* ------------------------------------------------------------------ *)

let traced_supervisor ?(config = S.default_config) () =
  let w = R.create () in
  let hub = Telemetry.Hub.create ~clock:(R.clock w) () in
  R.set_telemetry w (Some hub);
  Telemetry.Hub.enable_tracing hub ~seed:0xACE;
  (S.create ~config w, hub)

let span_arg k (s : Telemetry.Span.span) = List.assoc_opt k s.Telemetry.Span.args

let test_supervisor_attempts_are_siblings () =
  let sup, hub =
    traced_supervisor
      ~config:
        {
          S.default_config with
          S.max_retries = 3;
          attempt_fuel = Some 5_000;
          quarantine_threshold = 1000;
        }
      ()
  in
  R.set_fault_plan (S.runtime sup)
    (Some (FP.create [ (Kvmsim.Kvm.site_guest_hang, FP.Prob 1.0) ]));
  let o = S.run sup (fib_image ()) () in
  Alcotest.(check int) "all attempts spent" 4 o.S.attempts;
  let spans = Telemetry.Span.spans (Telemetry.Hub.spans hub) in
  let supervised = List.find (fun (s : Telemetry.Span.span) -> s.name = "supervised") spans in
  let sid = Option.get (span_arg "span_id" supervised) in
  let attempts =
    List.filter (fun (s : Telemetry.Span.span) -> s.name = "attempt") spans
  in
  Alcotest.(check int) "one span per attempt" 4 (List.length attempts);
  (* every attempt is a *direct* child of the supervised span — a fan of
     siblings, not a recursion ladder *)
  List.iter
    (fun s ->
      Alcotest.(check (option string)) "attempt parent = supervised" (Some sid)
        (span_arg "parent_id" s))
    attempts;
  Alcotest.(check (list string)) "attempt numbers in order" [ "1"; "2"; "3"; "4" ]
    (List.filter_map (span_arg "attempt") attempts);
  (* backoff is charged inside its attempt, so attempts tile the parent *)
  let sum =
    List.fold_left (fun acc (s : Telemetry.Span.span) -> Int64.add acc s.duration)
      0L attempts
  in
  Alcotest.(check int64) "attempts tile the supervised span"
    supervised.Telemetry.Span.duration sum;
  (* the retry instants carry the trace id of the supervised invocation *)
  let trace = Option.get (span_arg "trace_id" supervised) in
  let retries =
    List.filter_map
      (function
        | Telemetry.Span.Instant { i_name = "supervisor_retry"; i_args; _ } ->
            List.assoc_opt "trace_id" i_args
        | _ -> None)
      (Telemetry.Span.items (Telemetry.Hub.spans hub))
  in
  Alcotest.(check (list string)) "retries stamped with the trace" [ trace; trace; trace ]
    retries

let test_supervisor_slo_wiring () =
  let sup, hub =
    traced_supervisor
      ~config:
        {
          S.default_config with
          S.max_retries = 0;
          attempt_fuel = Some 5_000;
          quarantine_threshold = 2;
        }
      ()
  in
  let slo =
    Telemetry.Slo.create ~hub ~name:"sup" ~target:0.9 ~period:100_000_000L ()
  in
  S.set_slo sup (Some slo);
  let img = fib_image () in
  let o = S.run sup img () in
  Alcotest.(check bool) "clean run succeeds" true (Result.is_ok o.S.result);
  Alcotest.(check int) "success recorded good" 1 (Telemetry.Slo.good_count slo);
  R.set_fault_plan (S.runtime sup)
    (Some (FP.create [ (Kvmsim.Kvm.site_guest_hang, FP.Prob 1.0) ]));
  ignore (S.run sup img ());
  ignore (S.run sup img ());
  Alcotest.(check int) "exhausted failures recorded bad" 2 (Telemetry.Slo.bad_count slo);
  (* image is quarantined now; the rejection is an SLO event too *)
  Alcotest.(check bool) "quarantined" true (S.quarantined sup ~key:"fib");
  ignore (S.run sup img ());
  Alcotest.(check int) "quarantine rejection recorded bad" 3
    (Telemetry.Slo.bad_count slo)

let test_chaos_vxr_zero_divergence () =
  let plan () =
    FP.create ~seed:0xC4A05
      [
        (Kvmsim.Kvm.site_spurious_exit, FP.Every { start = 0; interval = 2 });
        (Kvmsim.Kvm.site_ept_storm, FP.Every { start = 1; interval = 3 });
      ]
  in
  let p = plan () in
  let a = record_chaos p in
  Alcotest.(check bool) "faults were injected" true (FP.total_injected p > 0);
  (* re-arm from the recording's own textual plan, as --replay does *)
  let recorded =
    match Profiler.Replay.fault_plan a with
    | Some text -> text
    | None -> Alcotest.fail "recording lost its fault plan"
  in
  let q =
    match FP.of_string recorded with
    | Ok q -> q
    | Error e -> Alcotest.failf "recorded plan unparseable: %s" e
  in
  let b = record_chaos q in
  Alcotest.(check (list string)) "chaos replay is cycle-for-cycle" []
    (Profiler.Replay.diff a b)

let () =
  Alcotest.run "supervisor"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "round trip" `Quick test_plan_round_trip;
          Alcotest.test_case "schedule" `Quick test_plan_schedule;
          Alcotest.test_case "one-shot schedule" `Quick test_plan_one_shot_schedule;
          Alcotest.test_case "prob deterministic" `Quick test_plan_prob_deterministic;
          Alcotest.test_case "site independence" `Quick test_plan_site_streams_independent;
          Alcotest.test_case "reset and copy" `Quick test_plan_reset_and_copy;
          Alcotest.test_case "unknown site" `Quick test_plan_unknown_site_never_fires;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
        ] );
      ( "injection",
        [
          Alcotest.test_case "provision fail" `Quick test_inject_provision_fail;
          Alcotest.test_case "guest hang" `Quick test_inject_guest_hang;
          Alcotest.test_case "spurious exit cost" `Quick
            test_inject_spurious_exit_costs_cycles;
          Alcotest.test_case "snapshot corrupt" `Quick test_inject_snapshot_corrupt;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "clean success" `Quick test_supervisor_clean_success;
          Alcotest.test_case "retries transient hang" `Quick
            test_supervisor_retries_transient_hang;
          Alcotest.test_case "timeout class and backoff" `Quick
            test_supervisor_timeout_class_and_backoff;
          Alcotest.test_case "fault class" `Quick test_supervisor_fault_class;
          Alcotest.test_case "policy terminal" `Quick test_supervisor_policy_is_terminal;
          Alcotest.test_case "quarantine lifecycle" `Quick
            test_supervisor_quarantine_lifecycle;
          Alcotest.test_case "success resets streak" `Quick
            test_supervisor_success_resets_streak;
          Alcotest.test_case "retry determinism" `Quick
            test_supervisor_retry_schedule_deterministic;
          Alcotest.test_case "attempts are sibling spans" `Quick
            test_supervisor_attempts_are_siblings;
          Alcotest.test_case "slo wiring" `Quick test_supervisor_slo_wiring;
        ] );
      ( "chaos-replay",
        [
          Alcotest.test_case "vxr zero divergence" `Quick test_chaos_vxr_zero_divergence;
        ] );
    ]
