(* Tests for the HTTP substrate: wire parsing, the echo-server study, and
   the static-file server (virtine and native paths). *)

module H = Vhttp.Http

(* ------------------------------------------------------------------ *)
(* Wire format                                                          *)
(* ------------------------------------------------------------------ *)

let test_parse_request_basic () =
  let raw = "GET /index.html HTTP/1.0\r\nHost: localhost\r\nAccept: */*\r\n\r\n" in
  match H.parse_request raw with
  | Ok r ->
      Alcotest.(check string) "method" "GET" r.H.meth;
      Alcotest.(check string) "path" "/index.html" r.H.path;
      Alcotest.(check string) "version" "HTTP/1.0" r.H.version;
      Alcotest.(check int) "headers" 2 (List.length r.H.headers)
  | Error e -> Alcotest.fail e

let test_parse_request_with_body () =
  let raw = "POST /submit HTTP/1.0\r\nContent-Length: 5\r\n\r\nhelloEXTRA" in
  match H.parse_request raw with
  | Ok r -> Alcotest.(check string) "body clipped to content-length" "hello" r.H.body
  | Error e -> Alcotest.fail e

let test_parse_request_malformed () =
  List.iter
    (fun raw ->
      match H.parse_request raw with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %S" raw)
    [ ""; "GARBAGE\r\n\r\n"; "GET /x HTTP/1.0\r\nBadHeader\r\n\r\n"; " / HTTP/1.0\r\n\r\n" ]

let test_request_roundtrip () =
  let r = H.make_request ~headers:[ ("Host", "h") ] ~body:"xyz" "POST" "/p" in
  match H.parse_request (H.request_to_string r) with
  | Ok r' ->
      Alcotest.(check string) "path" r.H.path r'.H.path;
      Alcotest.(check string) "body" r.H.body r'.H.body
  | Error e -> Alcotest.fail e

let test_parse_response () =
  let raw = "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n" in
  match H.parse_response raw with
  | Ok r ->
      Alcotest.(check int) "status" 404 r.H.status;
      Alcotest.(check string) "reason" "Not Found" r.H.reason
  | Error e -> Alcotest.fail e

let test_response_roundtrip () =
  let r = H.make_response ~status:200 "payload" in
  match H.parse_response (H.response_to_string r) with
  | Ok r' ->
      Alcotest.(check int) "status" 200 r'.H.status;
      Alcotest.(check string) "body" "payload" r'.H.resp_body
  | Error e -> Alcotest.fail e

let test_reason_phrases () =
  Alcotest.(check string) "200" "OK" (H.reason_of_status 200);
  Alcotest.(check string) "404" "Not Found" (H.reason_of_status 404)

(* ------------------------------------------------------------------ *)
(* Echo server (Figure 4)                                               *)
(* ------------------------------------------------------------------ *)

let test_echo_round_trip () =
  let w = Wasp.Runtime.create () in
  let compiled = Vhttp.Echo.compile () in
  let payload = "GET / HTTP/1.0\r\n\r\n" in
  let ms, result = Vhttp.Echo.run_once w compiled ~payload in
  (match result.Wasp.Runtime.outcome with
  | Wasp.Runtime.Exited _ -> ()
  | _ -> Alcotest.fail "echo did not exit cleanly");
  Alcotest.(check int64) "echoed byte count" (Int64.of_int (String.length payload))
    result.Wasp.Runtime.return_value;
  (* milestone ordering: entry < recv < send *)
  Alcotest.(check bool) "entry before recv" true (ms.Vhttp.Echo.entry < ms.Vhttp.Echo.recv_done);
  Alcotest.(check bool) "recv before send" true
    (ms.Vhttp.Echo.recv_done < ms.Vhttp.Echo.send_done)

let test_echo_sub_millisecond () =
  (* §4.2: "we can achieve sub-millisecond HTTP response latencies
     (<300 us) without optimizations" *)
  let w = Wasp.Runtime.create () in
  let compiled = Vhttp.Echo.compile () in
  let ms, _ = Vhttp.Echo.run_once w compiled ~payload:"ping" in
  let clock = Wasp.Runtime.clock w in
  let us = Cycles.Clock.to_us clock ms.Vhttp.Echo.send_done in
  Alcotest.(check bool) (Printf.sprintf "response in %.0f us < 300" us) true (us < 300.0)

let test_echo_entry_cost_protected () =
  (* Figure 4's left point: ~10K cycles to reach C code. Warm the shell
     pool first so the measurement starts from a provisioned context,
     as the paper's KVM_RUN-relative milestones do. *)
  let w = Wasp.Runtime.create () in
  let compiled = Vhttp.Echo.compile () in
  ignore (Vhttp.Echo.run_once w compiled ~payload:"warmup");
  let ms, _ = Vhttp.Echo.run_once w compiled ~payload:"x" in
  Alcotest.(check bool)
    (Printf.sprintf "entry %Ld cycles in [5K, 60K]" ms.Vhttp.Echo.entry)
    true
    (ms.Vhttp.Echo.entry > 5_000L && ms.Vhttp.Echo.entry < 60_000L)

(* ------------------------------------------------------------------ *)
(* File server (Figure 13)                                              *)
(* ------------------------------------------------------------------ *)

let setup_virtine ~snapshot =
  let w = Wasp.Runtime.create () in
  let path = Vhttp.Fileserver.add_default_files (Wasp.Runtime.env w) in
  let compiled = Vhttp.Fileserver.compile ~snapshot in
  (w, compiled, path)

let test_fileserver_virtine_200 () =
  let w, compiled, path = setup_virtine ~snapshot:false in
  let served = Vhttp.Fileserver.serve_virtine w compiled ~path in
  Alcotest.(check int) "status" 200 served.Vhttp.Fileserver.status;
  Alcotest.(check int) "body bytes" 1024 (String.length served.Vhttp.Fileserver.body);
  (* the paper's seven interactions: read, stat, open, read, write,
     close, exit *)
  Alcotest.(check int) "seven hypercalls" 7 served.Vhttp.Fileserver.hypercalls

let test_fileserver_virtine_404 () =
  let w, compiled, _ = setup_virtine ~snapshot:false in
  let served = Vhttp.Fileserver.serve_virtine w compiled ~path:"/missing" in
  Alcotest.(check int) "status" 404 served.Vhttp.Fileserver.status

let test_fileserver_virtine_snapshot_still_correct () =
  let w, compiled, path = setup_virtine ~snapshot:true in
  let s1 = Vhttp.Fileserver.serve_virtine w compiled ~path in
  let s2 = Vhttp.Fileserver.serve_virtine w compiled ~path in
  Alcotest.(check int) "first 200" 200 s1.Vhttp.Fileserver.status;
  Alcotest.(check int) "second 200" 200 s2.Vhttp.Fileserver.status;
  Alcotest.(check string) "same body" s1.Vhttp.Fileserver.body s2.Vhttp.Fileserver.body;
  Alcotest.(check bool)
    (Printf.sprintf "snapshot run faster (%Ld < %Ld)" s2.Vhttp.Fileserver.cycles
       s1.Vhttp.Fileserver.cycles)
    true
    (s2.Vhttp.Fileserver.cycles < s1.Vhttp.Fileserver.cycles)

let test_fileserver_native_matches_virtine () =
  let w, compiled, path = setup_virtine ~snapshot:false in
  let virt = Vhttp.Fileserver.serve_virtine w compiled ~path in
  let env = Wasp.Runtime.env w in
  let clock = Cycles.Clock.create () in
  let rng = Cycles.Rng.create ~seed:5 in
  let nat = Vhttp.Fileserver.serve_native ~env ~clock ~rng ~path in
  Alcotest.(check int) "same status" virt.Vhttp.Fileserver.status nat.Vhttp.Fileserver.status;
  Alcotest.(check string) "same body" virt.Vhttp.Fileserver.body nat.Vhttp.Fileserver.body

let test_fileserver_native_faster () =
  let w, compiled, path = setup_virtine ~snapshot:false in
  let virt = Vhttp.Fileserver.serve_virtine w compiled ~path in
  let clock = Cycles.Clock.create () in
  let rng = Cycles.Rng.create ~seed:6 in
  let nat =
    Vhttp.Fileserver.serve_native ~env:(Wasp.Runtime.env w) ~clock ~rng ~path
  in
  Alcotest.(check bool)
    (Printf.sprintf "native %Ld < virtine %Ld" nat.Vhttp.Fileserver.cycles
       virt.Vhttp.Fileserver.cycles)
    true
    (nat.Vhttp.Fileserver.cycles < virt.Vhttp.Fileserver.cycles)

(* ------------------------------------------------------------------ *)
(* Ringed file server (batched hypercalls, two exits per request)       *)
(* ------------------------------------------------------------------ *)

let setup_ring ~snapshot =
  let w = Wasp.Runtime.create () in
  let path = Vhttp.Fileserver.add_default_files (Wasp.Runtime.env w) in
  let compiled = Vhttp.Fileserver.compile_ring ~snapshot in
  (w, compiled, path)

let test_fileserver_ring_200 () =
  let w, compiled, path = setup_ring ~snapshot:false in
  let served = Vhttp.Fileserver.serve_virtine w compiled ~path in
  Alcotest.(check int) "status" 200 served.Vhttp.Fileserver.status;
  Alcotest.(check int) "body bytes" 1024 (String.length served.Vhttp.Fileserver.body);
  Alcotest.(check bool)
    (Printf.sprintf "exits %d <= 2" served.Vhttp.Fileserver.exits)
    true
    (served.Vhttp.Fileserver.exits <= 2)

let test_fileserver_ring_matches_classic () =
  let w, compiled, path = setup_virtine ~snapshot:false in
  let classic = Vhttp.Fileserver.serve_virtine w compiled ~path in
  let w2, ringed_c, _ = setup_ring ~snapshot:false in
  let ringed = Vhttp.Fileserver.serve_virtine w2 ringed_c ~path in
  Alcotest.(check int) "same status" classic.Vhttp.Fileserver.status
    ringed.Vhttp.Fileserver.status;
  Alcotest.(check string) "same body" classic.Vhttp.Fileserver.body
    ringed.Vhttp.Fileserver.body;
  Alcotest.(check bool)
    (Printf.sprintf "ringed %d exits < classic %d" ringed.Vhttp.Fileserver.exits
       classic.Vhttp.Fileserver.exits)
    true
    (ringed.Vhttp.Fileserver.exits < classic.Vhttp.Fileserver.exits)

let test_fileserver_ring_404 () =
  let w, compiled, _ = setup_ring ~snapshot:false in
  let served = Vhttp.Fileserver.serve_virtine w compiled ~path:"/missing" in
  Alcotest.(check int) "status" 404 served.Vhttp.Fileserver.status

let test_fileserver_ring_faster () =
  let w, compiled, path = setup_virtine ~snapshot:false in
  ignore (Vhttp.Fileserver.serve_virtine w compiled ~path);
  let classic = Vhttp.Fileserver.serve_virtine w compiled ~path in
  let w2, ringed_c, _ = setup_ring ~snapshot:false in
  ignore (Vhttp.Fileserver.serve_virtine w2 ringed_c ~path);
  let ringed = Vhttp.Fileserver.serve_virtine w2 ringed_c ~path in
  Alcotest.(check bool)
    (Printf.sprintf "ringed %Ld < classic %Ld cycles" ringed.Vhttp.Fileserver.cycles
       classic.Vhttp.Fileserver.cycles)
    true
    (ringed.Vhttp.Fileserver.cycles < classic.Vhttp.Fileserver.cycles)

let test_fileserver_bad_request () =
  let w, compiled, _ = setup_virtine ~snapshot:false in
  let vi =
    match Vcc.Compile.find_virtine compiled "handle" with
    | Some vi -> vi
    | None -> Alcotest.fail "no handler"
  in
  let client_end, server_end = Wasp.Hostenv.socket_pair (Wasp.Runtime.env w) in
  ignore (Wasp.Hostenv.send client_end (Bytes.of_string "BOGUS REQUEST\r\n\r\n"));
  let result =
    Wasp.Runtime.run w vi.Vcc.Compile.image ~policy:vi.Vcc.Compile.policy
      ~conn:server_end ()
  in
  Alcotest.(check int64) "handler rejects" 400L result.Wasp.Runtime.return_value;
  let resp = Bytes.to_string (Wasp.Hostenv.recv client_end ~max:4096) in
  match H.parse_response resp with
  | Ok r -> Alcotest.(check int) "400 response" 400 r.H.status
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "vhttp"
    [
      ( "wire",
        [
          Alcotest.test_case "parse request" `Quick test_parse_request_basic;
          Alcotest.test_case "request body" `Quick test_parse_request_with_body;
          Alcotest.test_case "malformed requests" `Quick test_parse_request_malformed;
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "parse response" `Quick test_parse_response;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "reason phrases" `Quick test_reason_phrases;
        ] );
      ( "echo",
        [
          Alcotest.test_case "round trip + milestones" `Quick test_echo_round_trip;
          Alcotest.test_case "sub-millisecond" `Quick test_echo_sub_millisecond;
          Alcotest.test_case "entry cost" `Quick test_echo_entry_cost_protected;
        ] );
      ( "fileserver",
        [
          Alcotest.test_case "virtine 200" `Quick test_fileserver_virtine_200;
          Alcotest.test_case "virtine 404" `Quick test_fileserver_virtine_404;
          Alcotest.test_case "snapshot correct+faster" `Quick
            test_fileserver_virtine_snapshot_still_correct;
          Alcotest.test_case "native matches" `Quick test_fileserver_native_matches_virtine;
          Alcotest.test_case "native faster" `Quick test_fileserver_native_faster;
          Alcotest.test_case "bad request" `Quick test_fileserver_bad_request;
        ] );
      ( "fileserver-ring",
        [
          Alcotest.test_case "ring 200 + two exits" `Quick test_fileserver_ring_200;
          Alcotest.test_case "ring matches classic" `Quick
            test_fileserver_ring_matches_classic;
          Alcotest.test_case "ring 404 slow path" `Quick test_fileserver_ring_404;
          Alcotest.test_case "ring faster" `Quick test_fileserver_ring_faster;
        ] );
    ]
