(* The multi-core scheduler (Dessim.Cores), the Scheduled reclaim path
   through Wasp.Runtime/Wasp.Pool, and the closed-loop multi-core load
   generator. *)

module C = Dessim.Cores
module R = Wasp.Runtime

let mk_clocks n = Array.init n (fun _ -> Cycles.Clock.create ())

(* ------------------------------------------------------------------ *)
(* Scheduling core                                                      *)
(* ------------------------------------------------------------------ *)

(* A small closed-loop workload: every task burns a deterministic number
   of cycles and respawns itself a few times, exercising arrivals in the
   future, cross-core interleaving and submit-during-run. Returns the
   observable end state. *)
let run_workload ?(steal = true) n_cores =
  let clocks = mk_clocks n_cores in
  let sched = C.create ~steal clocks in
  let rec job gen ~core =
    Cycles.Clock.advance_int clocks.(core) (100 + (37 * gen));
    if gen < 4 then
      C.submit sched
        ~at:(Int64.add (Cycles.Clock.now clocks.(core)) 25L)
        (job (gen + 1))
  in
  for i = 0 to 19 do
    C.submit sched ~affinity:(i mod n_cores) ~at:(Int64.of_int (i * 10)) (job 0)
  done;
  C.run sched;
  let finals = Array.map Cycles.Clock.now clocks in
  let per_core = Array.map (fun s -> s.C.executed) (C.core_stats sched) in
  (finals, per_core, C.executed sched, C.steals sched)

let test_deterministic () =
  let a = run_workload 4 and b = run_workload 4 in
  Alcotest.(check (array int64)) "same final clocks" (let f, _, _, _ = a in f)
    (let f, _, _, _ = b in f);
  Alcotest.(check (array int)) "same per-core executed"
    (let _, p, _, _ = a in p)
    (let _, p, _, _ = b in p);
  Alcotest.(check int) "same steals" (let _, _, _, s = a in s)
    (let _, _, _, s = b in s)

let test_all_tasks_execute () =
  let _, per_core, executed, _ = run_workload 4 in
  (* 20 roots, each respawning 4 times *)
  Alcotest.(check int) "every task ran exactly once" 100 executed;
  Alcotest.(check int) "per-core counts sum to total" 100
    (Array.fold_left ( + ) 0 per_core)

let test_steal_conservation () =
  let clocks = mk_clocks 4 in
  let sched = C.create clocks in
  (* all work lands on core 0; idle cores must steal it, losing none *)
  for _ = 1 to 200 do
    C.submit sched ~affinity:0 (fun ~core -> Cycles.Clock.advance_int clocks.(core) 500)
  done;
  C.run sched;
  Alcotest.(check int) "submitted" 200 (C.submitted sched);
  Alcotest.(check int) "executed == submitted" 200 (C.executed sched);
  Alcotest.(check bool) "stealing happened" true (C.steals sched > 0);
  let per_core = C.core_stats sched in
  Array.iteri
    (fun i s ->
      Alcotest.(check bool) (Printf.sprintf "core %d did work" i) true (s.C.executed > 0))
    per_core

let test_no_steal_pins_tasks () =
  let clocks = mk_clocks 4 in
  let sched = C.create ~steal:false clocks in
  for _ = 1 to 50 do
    C.submit sched ~affinity:0 (fun ~core -> Cycles.Clock.advance_int clocks.(core) 500)
  done;
  C.run sched;
  let per_core = C.core_stats sched in
  Alcotest.(check int) "all on core 0" 50 per_core.(0).C.executed;
  Alcotest.(check int) "no steals" 0 (C.steals sched);
  for i = 1 to 3 do
    Alcotest.(check int) (Printf.sprintf "core %d idle" i) 0 per_core.(i).C.executed
  done

let test_idle_accounting () =
  let clocks = mk_clocks 1 in
  let budgets = ref [] in
  let sched =
    C.create
      ~idle:(fun ~core:_ ~budget ->
        budgets := budget :: !budgets;
        min budget 300)
      clocks
  in
  C.submit sched ~at:1000L (fun ~core -> Cycles.Clock.advance_int clocks.(core) 50);
  C.run sched;
  let s = (C.core_stats sched).(0) in
  Alcotest.(check int64) "idle window" 1000L s.C.idle_cycles;
  Alcotest.(check int64) "busy is the task's own charge" 50L s.C.busy_cycles;
  Alcotest.(check int64) "reclaim capped by hook's return" 300L s.C.reclaim_cycles;
  Alcotest.(check (list int)) "hook offered the whole window" [ 1000 ] !budgets;
  Alcotest.(check int64) "clock covers idle + busy" 1050L (Cycles.Clock.now clocks.(0))

let test_utilization_bounds () =
  let clocks = mk_clocks 2 in
  let sched = C.create clocks in
  C.submit sched ~affinity:0 ~at:100L (fun ~core ->
      Cycles.Clock.advance_int clocks.(core) 900);
  C.run sched;
  Alcotest.(check (float 1e-9)) "busy/(busy+idle)" 0.9 (C.utilization sched ~core:0);
  Alcotest.(check (float 1e-9)) "untouched core reports 0" 0.0
    (C.utilization sched ~core:1)

let test_submit_validation () =
  let sched = C.create (mk_clocks 2) in
  Alcotest.check_raises "negative release time"
    (Invalid_argument "Cores.submit: negative time") (fun () ->
      C.submit sched ~at:(-1L) (fun ~core:_ -> ()));
  Alcotest.check_raises "affinity out of range"
    (Invalid_argument "Cores.submit: no such core") (fun () ->
      C.submit sched ~affinity:2 (fun ~core:_ -> ()));
  Alcotest.check_raises "no clocks"
    (Invalid_argument "Cores.create: need at least one clock") (fun () ->
      ignore (C.create [||]))

(* ------------------------------------------------------------------ *)
(* Scheduled reclaim through the runtime                                *)
(* ------------------------------------------------------------------ *)

let hlt_image = Wasp.Image.of_asm_string ~name:"hlt" ~mode:Vm.Modes.Real "hlt"

let test_scheduled_stall_and_drain () =
  let w = R.create ~clean:`Async ~cores:1 () in
  R.set_reclaim_policy w Wasp.Pool.Scheduled;
  ignore (R.run w hlt_image ());
  Alcotest.(check int) "released shell queued, not cached" 1
    (R.reclaim_depth w ~core:0);
  let r2 = R.run w hlt_image () in
  let ps = R.pool_stats w in
  Alcotest.(check bool) "stalled acquire still a pool hit" true r2.R.from_pool;
  Alcotest.(check int) "one clean stall" 1 ps.Wasp.Pool.clean_stalls;
  Alcotest.(check bool) "stall cost charged" true (ps.Wasp.Pool.stall_cycles > 0L);
  (* the second run's release queued the shell again; idle cycles finish it *)
  Alcotest.(check int) "queued again" 1 (R.reclaim_depth w ~core:0);
  let spent = R.drain_reclaim w ~core:0 ~budget:max_int in
  Alcotest.(check bool) "drain did work" true (spent > 0);
  Alcotest.(check int) "queue empty" 0 (R.reclaim_depth w ~core:0);
  let r3 = R.run w hlt_image () in
  Alcotest.(check bool) "drained shell served from cache" true r3.R.from_pool;
  Alcotest.(check int) "no further stall" 1 (R.pool_stats w).Wasp.Pool.clean_stalls

let test_eager_async_never_stalls () =
  let w = R.create ~clean:`Async ~cores:1 () in
  ignore (R.run w hlt_image ());
  let r2 = R.run w hlt_image () in
  Alcotest.(check bool) "pool hit" true r2.R.from_pool;
  Alcotest.(check int) "eager policy keeps up" 0 (R.pool_stats w).Wasp.Pool.clean_stalls;
  Alcotest.(check int) "nothing queued" 0 (R.reclaim_depth w ~core:0)

let test_drain_partial_progress () =
  (* a tiny budget makes no full clean, but the spent cycles carry over *)
  let w = R.create ~clean:`Async ~cores:1 () in
  R.set_reclaim_policy w Wasp.Pool.Scheduled;
  ignore (R.run w hlt_image ());
  let spent1 = R.drain_reclaim w ~core:0 ~budget:10 in
  Alcotest.(check int) "spends the whole small budget" 10 spent1;
  Alcotest.(check int) "shell still queued" 1 (R.reclaim_depth w ~core:0);
  let spent2 = R.drain_reclaim w ~core:0 ~budget:max_int in
  Alcotest.(check bool) "remainder smaller than a full clean" true (spent2 > 0);
  Alcotest.(check int) "finished" 0 (R.reclaim_depth w ~core:0)

(* ------------------------------------------------------------------ *)
(* Sharded pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_lru_eviction () =
  let sys = Kvmsim.Kvm.open_dev ~seed:7 () in
  let pool = Wasp.Pool.create ~capacity:2 sys ~clean:Wasp.Pool.Sync in
  let acquire () = fst (Wasp.Pool.acquire pool ~mem_size:65536 ~mode:Vm.Modes.Real) in
  let s1 = acquire () and s2 = acquire () and s3 = acquire () in
  Wasp.Pool.release pool s1;
  Wasp.Pool.release pool s2;
  Wasp.Pool.release pool s3;
  Alcotest.(check int) "bounded by capacity" 2 (Wasp.Pool.size pool);
  Alcotest.(check int) "oldest evicted" 1 (Wasp.Pool.stats pool).Wasp.Pool.evicted

let test_pool_capacity_validated () =
  let sys = Kvmsim.Kvm.open_dev () in
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Pool.create: capacity must be >= 1") (fun () ->
      ignore (Wasp.Pool.create ~capacity:0 sys ~clean:Wasp.Pool.Sync))

let test_pool_shards_per_core () =
  let sys = Kvmsim.Kvm.open_dev ~cores:3 () in
  let pool = Wasp.Pool.create sys ~clean:Wasp.Pool.Sync in
  for core = 0 to 2 do
    Kvmsim.Kvm.set_core sys core;
    let s, _ = Wasp.Pool.acquire pool ~mem_size:65536 ~mode:Vm.Modes.Real in
    Alcotest.(check int) (Printf.sprintf "home is creating core %d" core) core
      s.Wasp.Pool.home;
    Wasp.Pool.release pool s
  done;
  Alcotest.(check (array int)) "one shell per shard" [| 1; 1; 1 |]
    (Wasp.Pool.shard_sizes pool)

(* ------------------------------------------------------------------ *)
(* Multi-core load generation                                           *)
(* ------------------------------------------------------------------ *)

let burst_profile n =
  [
    { Serverless.Loadgen.duration_s = 0.01; clients = 2 * n };
    { Serverless.Loadgen.duration_s = 0.03; clients = 3 * n };
    { Serverless.Loadgen.duration_s = 0.01; clients = 1 };
  ]

let tail_p99 buckets =
  List.fold_left
    (fun acc b ->
      match b.Serverless.Loadgen.p99_ms with
      | None -> acc
      | Some v -> ( match acc with None -> Some v | Some a -> Some (max a v)))
    None buckets

let run_arm ~cores ~clean =
  let w = R.create ~seed:0x5EDC ~clean ~cores () in
  let base = Wasp.Image.of_asm_string ~name:"hlt-mc" ~mode:Vm.Modes.Real "hlt" in
  let img = Wasp.Image.pad_to base (1024 * 1024) in
  let request () = ignore (R.run w img ()) in
  request ();
  let buckets, sched =
    Serverless.Loadgen.run_cores ~think_time_s:0.00075 ~runtime:w ~request
      ~profile:(burst_profile cores) ()
  in
  let completed =
    List.fold_left (fun a b -> a + b.Serverless.Loadgen.completed) 0 buckets
  in
  (completed, tail_p99 buckets, sched)

let test_run_cores_throughput_scales () =
  let c1, _, _ = run_arm ~cores:1 ~clean:`Sync in
  let c4, _, sched = run_arm ~cores:4 ~clean:`Sync in
  Alcotest.(check bool)
    (Printf.sprintf "4 cores (%d) beat 1 core (%d)" c4 c1)
    true
    (c4 > c1);
  Alcotest.(check int) "no submitted task lost" (C.submitted sched) (C.executed sched)

let test_run_cores_async_beats_sync_p99 () =
  let _, sync_p99, _ = run_arm ~cores:2 ~clean:`Sync in
  let _, async_p99, _ = run_arm ~cores:2 ~clean:`Async in
  match (sync_p99, async_p99) with
  | Some s, Some a ->
      Alcotest.(check bool)
        (Printf.sprintf "async p99 %.3f < sync p99 %.3f" a s)
        true (a < s)
  | _ -> Alcotest.fail "expected latency samples in both arms"

let test_run_cores_deterministic () =
  let go () =
    let c, p99, sched = run_arm ~cores:2 ~clean:`Async in
    (c, p99, C.steals sched)
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "same-seed runs agree" true (a = b)

let () =
  Alcotest.run "sched"
    [
      ( "cores",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "all tasks execute" `Quick test_all_tasks_execute;
          Alcotest.test_case "steal conservation" `Quick test_steal_conservation;
          Alcotest.test_case "no-steal pins" `Quick test_no_steal_pins_tasks;
          Alcotest.test_case "idle accounting" `Quick test_idle_accounting;
          Alcotest.test_case "utilization bounds" `Quick test_utilization_bounds;
          Alcotest.test_case "submit validation" `Quick test_submit_validation;
        ] );
      ( "reclaim",
        [
          Alcotest.test_case "scheduled stall and drain" `Quick
            test_scheduled_stall_and_drain;
          Alcotest.test_case "eager never stalls" `Quick test_eager_async_never_stalls;
          Alcotest.test_case "drain partial progress" `Quick test_drain_partial_progress;
        ] );
      ( "pool",
        [
          Alcotest.test_case "lru eviction" `Quick test_pool_lru_eviction;
          Alcotest.test_case "capacity validated" `Quick test_pool_capacity_validated;
          Alcotest.test_case "shards per core" `Quick test_pool_shards_per_core;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "throughput scales with cores" `Quick
            test_run_cores_throughput_scales;
          Alcotest.test_case "async beats sync p99" `Quick
            test_run_cores_async_beats_sync_p99;
          Alcotest.test_case "deterministic" `Quick test_run_cores_deterministic;
        ] );
    ]
