(* Tests for the Wasp runtime: images, policies, hypercall interposition,
   pooling, snapshotting, and the isolation objectives of §3. *)

module R = Wasp.Runtime

let hlt_image = Wasp.Image.of_asm_string ~name:"hlt" "hlt"

(* a virtine that reads its argument (at guest address 0), doubles it,
   and exits with the result via the exit hypercall *)
let double_image =
  Wasp.Image.of_asm_string ~name:"double"
    {|
  mov r1, 0
  ld64 r1, [r1]
  add r1, r1
  mov r0, 0      ; exit hypercall
  out 1, r0
  hlt
|}

(* echoes its input through get_data/return_data *)
let echo_data_image =
  Wasp.Image.of_asm_string ~name:"echo-data"
    {|
  mov r0, 7       ; get_data
  mov r1, 0x400   ; buffer
  mov r2, 64      ; max
  out 1, r0
  mov r2, r0      ; length
  mov r0, 8       ; return_data
  mov r1, 0x400
  out 1, r0
  mov r0, 0
  mov r1, 0
  out 1, r0
|}

let exited = function R.Exited _ -> true | R.Faulted _ | R.Fuel_exhausted -> false

(* ------------------------------------------------------------------ *)
(* Images                                                               *)
(* ------------------------------------------------------------------ *)

let test_image_defaults () =
  Alcotest.(check int) "origin 0x8000" 0x8000 hlt_image.origin;
  Alcotest.(check int) "default mem" Wasp.Layout.default_mem_size hlt_image.mem_size

let test_image_pad () =
  let img = Wasp.Image.pad_to hlt_image (1 lsl 20) in
  Alcotest.(check int) "padded size" (1 lsl 20) (Wasp.Image.size img);
  Alcotest.(check bool) "mem grows" true (img.mem_size >= (1 lsl 20) + 0x8000);
  Alcotest.check_raises "cannot shrink" (Invalid_argument "Image.pad_to: smaller than code")
    (fun () -> ignore (Wasp.Image.pad_to img 16))

let test_image_grows_mem_for_code () =
  let big = Asm.assemble [ Asm.Zero (256 * 1024); Asm.Insn Asm.SHlt ] in
  let img = Wasp.Image.of_program big in
  Alcotest.(check bool) "mem fits code" true (img.mem_size >= (256 * 1024) + 0x8000)

(* ------------------------------------------------------------------ *)
(* Basic invocation                                                     *)
(* ------------------------------------------------------------------ *)

let test_run_hlt () =
  let w = R.create () in
  let r = R.run w hlt_image () in
  Alcotest.(check bool) "exited" true (exited r.outcome);
  Alcotest.(check bool) "charged cycles" true (r.cycles > 0L)

let test_run_args_marshalling () =
  let w = R.create () in
  let r = R.run w double_image ~args:[ 21L ] () in
  Alcotest.(check int64) "2*21" 42L r.return_value

let test_run_input_bytes () =
  let w = R.create () in
  let r =
    R.run w echo_data_image
      ~policy:(Wasp.Policy.of_list [ Wasp.Hc.get_data; Wasp.Hc.return_data ])
      ~input:(Bytes.of_string "hello virtine") ()
  in
  Alcotest.(check bool) "exited" true (exited r.outcome);
  (match r.output with
  | Some b -> Alcotest.(check string) "echoed" "hello virtine" (Bytes.to_string b)
  | None -> Alcotest.fail "no output");
  Alcotest.(check int) "three hypercalls" 3 r.hypercalls

let test_run_rejects_input_and_args () =
  let w = R.create () in
  match R.run w hlt_image ~input:(Bytes.of_string "x") ~args:[ 1L ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_faulting_virtine_is_contained () =
  let img =
    Wasp.Image.of_asm_string ~name:"wild" "mov r1, 0x3000000\nld64 r0, [r1]\nhlt"
  in
  let w = R.create () in
  let r = R.run w img () in
  (match r.outcome with
  | R.Faulted _ -> ()
  | _ -> Alcotest.fail "expected fault");
  (* the runtime survives and can run other virtines *)
  let r2 = R.run w double_image ~args:[ 5L ] () in
  Alcotest.(check int64) "still works" 10L r2.return_value

let test_runaway_virtine_killed () =
  let img = Wasp.Image.of_asm_string ~name:"spin" "spin:\njmp spin" in
  let w = R.create () in
  let r = R.run w img ~fuel:10_000 () in
  Alcotest.(check bool) "fuel exhausted" true (r.outcome = R.Fuel_exhausted)

(* ------------------------------------------------------------------ *)
(* Policy enforcement (§3: default deny)                                *)
(* ------------------------------------------------------------------ *)

let open_file_image =
  (* tries to open "/etc/secret" and exits with the fd (or error) *)
  Wasp.Image.of_asm_string ~name:"open"
    {|
  mov r0, 3        ; open
  mov r1, path
  out 1, r0
  mov r1, r0
  mov r0, 0        ; exit(fd)
  out 1, r0
path:
  .string "/etc/secret"
|}

let test_default_deny () =
  let w = R.create () in
  Wasp.Hostenv.add_file (R.env w) ~path:"/etc/secret" "top secret";
  let r = R.run w open_file_image () in
  Alcotest.(check int64) "open denied" Wasp.Hc.err_denied r.return_value;
  Alcotest.(check int) "denial recorded" 1 r.denied

let test_exit_always_allowed () =
  let w = R.create () in
  let img =
    Wasp.Image.of_asm_string ~name:"exit"
      "mov r0, 0\nmov r1, 123\nout 1, r0\nhlt"
  in
  let r = R.run w img () in
  Alcotest.(check int64) "exit code" 123L r.return_value;
  Alcotest.(check int) "no denials" 0 r.denied

let test_allow_all_policy () =
  let w = R.create () in
  Wasp.Hostenv.add_file (R.env w) ~path:"/etc/secret" "top secret";
  let r = R.run w open_file_image ~policy:Wasp.Policy.allow_all () in
  Alcotest.(check bool) "open succeeded" true (r.return_value >= 3L)

let test_mask_policy () =
  let allows = Wasp.Policy.allows in
  let p = Wasp.Policy.of_list [ Wasp.Hc.read; Wasp.Hc.write ] in
  Alcotest.(check bool) "read allowed" true (allows p Wasp.Hc.read);
  Alcotest.(check bool) "write allowed" true (allows p Wasp.Hc.write);
  Alcotest.(check bool) "open denied" false (allows p Wasp.Hc.open_);
  Alcotest.(check bool) "exit always" true (allows p Wasp.Hc.exit_)

let test_custom_policy_predicate () =
  let p = Wasp.Policy.Custom (fun nr -> nr = Wasp.Hc.stat) in
  Alcotest.(check bool) "stat" true (Wasp.Policy.allows p Wasp.Hc.stat);
  Alcotest.(check bool) "read" false (Wasp.Policy.allows p Wasp.Hc.read)

let test_custom_handler_overrides () =
  let w = R.create () in
  let img =
    Wasp.Image.of_asm_string ~name:"custom"
      "mov r0, 5\nmov r1, 0\nout 1, r0\nmov r1, r0\nmov r0, 0\nout 1, r0"
  in
  let handlers nr =
    if nr = Wasp.Hc.stat then Some (fun _inv _args -> 7777L) else None
  in
  let r = R.run w img ~policy:(Wasp.Policy.of_list [ Wasp.Hc.stat ]) ~handlers () in
  Alcotest.(check int64) "custom handler result" 7777L r.return_value

let test_denied_hypercalls_counted_separately () =
  (* a virtine that tries open twice then exits 0 *)
  let img =
    Wasp.Image.of_asm_string ~name:"open2"
      {|
  mov r0, 3
  mov r1, p
  out 1, r0
  mov r0, 3
  mov r1, p
  out 1, r0
  mov r0, 0
  mov r1, 0
  out 1, r0
p:
  .string "f"
|}
  in
  let w = R.create () in
  let r = R.run w img () in
  Alcotest.(check int) "3 hypercalls" 3 r.hypercalls;
  Alcotest.(check int) "2 denied" 2 r.denied

(* ------------------------------------------------------------------ *)
(* Handler input validation (§3.2: hostile arguments)                   *)
(* ------------------------------------------------------------------ *)

let test_evil_pointer_rejected () =
  (* write(1, ptr=beyond guest memory, len) must return EFAULT, not read
     host memory *)
  let img =
    Wasp.Image.of_asm_string ~name:"evil"
      {|
  mov r0, 2          ; write
  mov r1, 1          ; fd 1
  mov r2, 0x3f00000  ; far outside guest RAM (but inside the 1GB map)
  mov r3, 16
  out 1, r0
  mov r1, r0
  mov r0, 0
  out 1, r0
|}
  in
  let w = R.create () in
  let r = R.run w img ~policy:Wasp.Policy.allow_all () in
  Alcotest.(check int64) "EFAULT" Wasp.Hc.err_fault r.return_value;
  Alcotest.(check int) "violation recorded" 1 r.pointer_violations

let test_evil_length_rejected () =
  let img =
    Wasp.Image.of_asm_string ~name:"evil-len"
      {|
  mov r0, 2
  mov r1, 1
  mov r2, 0x400
  mov r3, -1       ; negative length
  out 1, r0
  mov r1, r0
  mov r0, 0
  out 1, r0
|}
  in
  let w = R.create () in
  let r = R.run w img ~policy:Wasp.Policy.allow_all () in
  Alcotest.(check int64) "EFAULT" Wasp.Hc.err_fault r.return_value

let test_unterminated_path_rejected () =
  (* open() with a path pointer into a region with no NUL terminator *)
  let img =
    Wasp.Image.of_asm_string ~name:"evil-path"
      {|
  mov r4, 0x400
  mov r5, 0
fill:
  st8 [r4+0], 65
  add r4, 1
  add r5, 1
  cmp r5, 8192
  jlt fill
  mov r0, 3
  mov r1, 0x400
  out 1, r0
  mov r1, r0
  mov r0, 0
  out 1, r0
|}
  in
  let w = R.create () in
  let r = R.run w img ~policy:Wasp.Policy.allow_all () in
  Alcotest.(check int64) "EFAULT" Wasp.Hc.err_fault r.return_value

let test_get_data_once_only () =
  let img =
    Wasp.Image.of_asm_string ~name:"get2"
      {|
  mov r0, 7
  mov r1, 0x400
  mov r2, 32
  out 1, r0
  mov r0, 7
  mov r1, 0x400
  mov r2, 32
  out 1, r0
  mov r1, r0
  mov r0, 0
  out 1, r0
|}
  in
  let w = R.create () in
  let r =
    R.run w img ~policy:Wasp.Policy.allow_all ~input:(Bytes.of_string "data") ()
  in
  Alcotest.(check int64) "second get_data EINVAL" Wasp.Hc.err_inval r.return_value

(* ------------------------------------------------------------------ *)
(* Pooling (§5.2)                                                       *)
(* ------------------------------------------------------------------ *)

let test_pool_reuse () =
  let w = R.create () in
  let r1 = R.run w hlt_image () in
  let r2 = R.run w hlt_image () in
  Alcotest.(check bool) "first is cold" false r1.from_pool;
  Alcotest.(check bool) "second reuses" true r2.from_pool;
  let stats = R.pool_stats w in
  Alcotest.(check int) "one creation" 1 stats.created;
  Alcotest.(check int) "one reuse" 1 stats.reused

let test_pool_reuse_is_cheaper () =
  let w = R.create () in
  let r1 = R.run w hlt_image () in
  let r2 = R.run w hlt_image () in
  Alcotest.(check bool)
    (Printf.sprintf "cold %Ld > warm %Ld" r1.cycles r2.cycles)
    true (r1.cycles > r2.cycles)

let test_pool_disabled () =
  let w = R.create ~pool:false () in
  ignore (R.run w hlt_image ());
  let r2 = R.run w hlt_image () in
  Alcotest.(check bool) "never from pool" false r2.from_pool;
  Alcotest.(check int) "two creations" 2 (R.pool_stats w).created

let test_pool_clean_no_leak () =
  (* A virtine writes a secret into memory; the next virtine in the same
     shell must not be able to read it (§3.1 data secrecy). *)
  let writer =
    Wasp.Image.of_asm_string ~name:"writer" "mov r1, 0x500\nst64 [r1], 0x5ec3e7\nhlt"
  in
  let reader =
    Wasp.Image.of_asm_string ~name:"reader"
      "mov r1, 0x500\nld64 r2, [r1]\nmov r0, 0\nmov r1, r2\nout 1, r0"
  in
  let w = R.create () in
  ignore (R.run w writer ());
  let r = R.run w reader () in
  Alcotest.(check bool) "shell was reused" true r.from_pool;
  Alcotest.(check int64) "secret wiped" 0L r.return_value

let test_async_clean_charges_background () =
  let w = R.create ~clean:`Async () in
  ignore (R.run w hlt_image ());
  ignore (R.run w hlt_image ());
  let stats = R.pool_stats w in
  Alcotest.(check bool) "background work recorded" true (stats.background_cycles > 0L)

let test_async_clean_faster_invocations () =
  let run_mode clean =
    let w = R.create ~clean () in
    ignore (R.run w hlt_image ());
    let r = R.run w hlt_image () in
    r.cycles
  in
  let sync = run_mode `Sync and async = run_mode `Async in
  Alcotest.(check bool) (Printf.sprintf "async %Ld < sync %Ld" async sync) true (async < sync)

let test_release_clears_dirty_bitmap () =
  (* release zeroes the guest region, which itself touches every page;
     the bitmap must be reset afterwards or the next CoW restore sees the
     whole image as dirty *)
  let sys = Kvmsim.Kvm.open_dev ~seed:11 () in
  let pool = Wasp.Pool.create sys ~clean:Wasp.Pool.Sync in
  let s, _ = Wasp.Pool.acquire pool ~mem_size:65536 ~mode:Vm.Modes.Real in
  Vm.Memory.write_u64 s.Wasp.Pool.mem 0x2000 0xBEEFL;
  Alcotest.(check bool) "writes dirtied pages" true
    (Vm.Memory.dirty_count s.Wasp.Pool.mem > 0);
  Wasp.Pool.release pool s;
  Alcotest.(check int) "recycled shell starts clean" 0
    (Vm.Memory.dirty_count s.Wasp.Pool.mem)

let test_cow_restore_after_pool_reuse () =
  (* regression: fill_zero in release marked all 16 pages dirty; without
     clear_dirty a snapshot captured on the recycled shell made
     restore_cow copy the entire 64 KB image instead of the one page the
     run actually touched *)
  let sys = Kvmsim.Kvm.open_dev ~seed:12 () in
  let pool = Wasp.Pool.create sys ~clean:Wasp.Pool.Sync in
  let s1, _ = Wasp.Pool.acquire pool ~mem_size:65536 ~mode:Vm.Modes.Real in
  Vm.Memory.write_u64 s1.Wasp.Pool.mem 0x8000 0x5EC3E7L;
  Wasp.Pool.release pool s1;
  let s2, from_pool = Wasp.Pool.acquire pool ~mem_size:65536 ~mode:Vm.Modes.Real in
  Alcotest.(check bool) "shell recycled" true from_pool;
  (* one invocation initializes a single page, then snapshots *)
  Vm.Memory.write_u64 s2.Wasp.Pool.mem 0 0x42L;
  let cpu = Kvmsim.Kvm.vcpu_cpu s2.Wasp.Pool.vcpu in
  let store = Wasp.Snapshot_store.create () in
  ignore
    (Wasp.Snapshot_store.capture store ~key:"k" ~mem:s2.Wasp.Pool.mem ~cpu
       ~native_state:None);
  let entry = Option.get (Wasp.Snapshot_store.find store ~key:"k") in
  let pages, bytes =
    Wasp.Snapshot_store.restore_cow entry ~mem:s2.Wasp.Pool.mem ~cpu
  in
  Alcotest.(check int) "only the touched page is copied" 1 pages;
  Alcotest.(check int) "one page of bytes" Vm.Memory.page_size bytes

(* ------------------------------------------------------------------ *)
(* Snapshotting (§5.2, Figure 7)                                        *)
(* ------------------------------------------------------------------ *)

(* initializes r10 with an expensive loop, snapshots, then doubles the
   argument; post-snapshot runs skip the loop *)
let snap_image =
  Wasp.Image.of_asm_string ~name:"snap"
    {|
  mov r10, 0
init:
  add r10, 1
  cmp r10, 5000
  jlt init
  mov r0, 6        ; snapshot hypercall
  out 1, r0
  mov r1, 0
  ld64 r1, [r1]
  add r1, r10      ; argument + 5000 (r10 restored from snapshot)
  mov r0, 0
  out 1, r0
|}

let snap_policy = Wasp.Policy.of_list [ Wasp.Hc.snapshot ]

let test_snapshot_correctness () =
  let w = R.create () in
  let r1 = R.run w snap_image ~policy:snap_policy ~snapshot_key:"snap" ~args:[ 1L ] () in
  let r2 = R.run w snap_image ~policy:snap_policy ~snapshot_key:"snap" ~args:[ 2L ] () in
  Alcotest.(check int64) "first run" 5001L r1.return_value;
  Alcotest.(check int64) "second run (from snapshot)" 5002L r2.return_value;
  Alcotest.(check bool) "restored" true r2.from_snapshot;
  Alcotest.(check bool) "first was not" false r1.from_snapshot

let test_snapshot_skips_init () =
  let w = R.create () in
  let r1 = R.run w snap_image ~policy:snap_policy ~snapshot_key:"s2" ~args:[ 0L ] () in
  let r2 = R.run w snap_image ~policy:snap_policy ~snapshot_key:"s2" ~args:[ 0L ] () in
  Alcotest.(check bool)
    (Printf.sprintf "snapshot run %Ld much cheaper than first %Ld" r2.cycles r1.cycles)
    true
    (Int64.to_float r2.cycles < 0.5 *. Int64.to_float r1.cycles)

let test_snapshot_isolation_between_runs () =
  (* State mutated after the snapshot must not leak into the next run:
     both runs add exactly 5000. *)
  let w = R.create () in
  ignore (R.run w snap_image ~policy:snap_policy ~snapshot_key:"s3" ~args:[ 7L ] ());
  let r2 = R.run w snap_image ~policy:snap_policy ~snapshot_key:"s3" ~args:[ 7L ] () in
  let r3 = R.run w snap_image ~policy:snap_policy ~snapshot_key:"s3" ~args:[ 7L ] () in
  Alcotest.(check int64) "run 2" 5007L r2.return_value;
  Alcotest.(check int64) "run 3" 5007L r3.return_value

let test_snapshot_requires_policy () =
  let w = R.create () in
  let r = R.run w snap_image ~snapshot_key:"s4" ~args:[ 1L ] () in
  (* snapshot hypercall denied under deny-all: r0 = -1, execution continues *)
  Alcotest.(check int) "denied" 1 r.denied;
  Alcotest.(check bool) "no snapshot captured" true
    (Wasp.Snapshot_store.find (R.snapshots w) ~key:"s4" = None)

let test_drop_snapshot () =
  let w = R.create () in
  ignore (R.run w snap_image ~policy:snap_policy ~snapshot_key:"s5" ~args:[ 1L ] ());
  R.drop_snapshot w ~key:"s5";
  let r = R.run w snap_image ~policy:snap_policy ~snapshot_key:"s5" ~args:[ 1L ] () in
  Alcotest.(check bool) "boots again" false r.from_snapshot

let test_snapshot_without_key_is_einval () =
  let w = R.create () in
  let img =
    Wasp.Image.of_asm_string ~name:"snap-nokey"
      "mov r0, 6\nout 1, r0\nmov r1, r0\nmov r0, 0\nout 1, r0"
  in
  let r = R.run w img ~policy:snap_policy () in
  Alcotest.(check int64) "EINVAL" Wasp.Hc.err_inval r.return_value

let test_runtime_stats_aggregate () =
  let w = R.create () in
  ignore (R.run w double_image ~args:[ 1L ] ());
  ignore (R.run w double_image ~args:[ 2L ] ());
  ignore (R.run w (Wasp.Image.of_asm_string ~name:"wild" "mov r1, 0x3000000\nld64 r0, [r1]\nhlt") ());
  ignore (R.run w open_file_image ());
  let s = R.stats w in
  Alcotest.(check int) "invocations" 4 s.R.invocations;
  Alcotest.(check int) "exits" 3 s.R.exited;
  Alcotest.(check int) "faults" 1 s.R.faulted;
  Alcotest.(check bool) "hypercalls counted" true (s.R.hypercalls >= 4);
  Alcotest.(check int) "denied counted" 1 s.R.denied

(* ------------------------------------------------------------------ *)
(* Copy-on-write reset (§7.2 / SEUSS-style)                             *)
(* ------------------------------------------------------------------ *)

let test_cow_correctness () =
  (* results must be identical to memcpy-reset across many invocations *)
  let run_mode reset =
    let w = R.create ~reset () in
    List.map
      (fun arg ->
        (R.run w snap_image ~policy:snap_policy ~snapshot_key:"cow1" ~args:[ arg ] ())
          .R.return_value)
      [ 1L; 2L; 3L; 4L; 5L ]
  in
  Alcotest.(check (list int64)) "same results" (run_mode `Memcpy) (run_mode `Cow)

let test_cow_cheaper_than_memcpy_for_big_footprint () =
  (* a virtine with a large initialized footprint but small per-run dirty
     set: CoW restores only the dirty pages *)
  let big_image =
    Wasp.Image.of_asm_string ~name:"big"
      ({|
  mov r10, 0x9000
  mov r11, 0
fill:
  st64 [r10+0], 0x41
  add r10, 4096
  add r11, 1
  cmp r11, 100
  jlt fill
  mov r0, 6
  out 1, r0
  mov r1, 0
  ld64 r1, [r1]
  mov r0, 0
  out 1, r0
|})
      ~mem_size:(1024 * 1024)
  in
  let measure reset =
    let w = R.create ~reset ~clean:`Async () in
    ignore (R.run w big_image ~policy:snap_policy ~snapshot_key:"cowbig" ~args:[ 1L ] ());
    ignore (R.run w big_image ~policy:snap_policy ~snapshot_key:"cowbig" ~args:[ 1L ] ());
    (R.run w big_image ~policy:snap_policy ~snapshot_key:"cowbig" ~args:[ 1L ] ()).R.cycles
  in
  let memcpy = measure `Memcpy and cow = measure `Cow in
  Alcotest.(check bool)
    (Printf.sprintf "cow %Ld < memcpy %Ld" cow memcpy)
    true
    (Int64.to_float cow < 0.7 *. Int64.to_float memcpy)

let test_cow_no_leak_between_invocations () =
  (* state written after the snapshot must be reset by the CoW restore *)
  let w = R.create ~reset:`Cow () in
  let rs =
    List.map
      (fun arg ->
        (R.run w snap_image ~policy:snap_policy ~snapshot_key:"cow2" ~args:[ arg ] ())
          .R.return_value)
      [ 7L; 7L; 7L ]
  in
  Alcotest.(check (list int64)) "no accumulation" [ 5007L; 5007L; 5007L ] rs

let test_cow_via_compiler () =
  (* the full vcc path under both reset modes must agree *)
  let src = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }" in
  let run reset =
    let c = Vcc.Compile.compile src in
    let w = R.create ~reset () in
    List.map
      (fun n ->
        (Vcc.Compile.invoke w c "fib" [ Int64.of_int n ] ()).R.return_value)
      [ 8; 9; 10; 8 ]
  in
  Alcotest.(check (list int64)) "memcpy == cow" (run `Memcpy) (run `Cow)

let test_cow_native_payload () =
  (* CoW also applies to native payloads (the JS isolate path) *)
  let w = R.create ~reset:`Cow ~clean:`Async () in
  let isolate =
    Vjs.Isolate.create w ~key:"cowjs" ~source:"function f(d) { return d.length; }" ~entry:"f"
  in
  let results =
    List.map
      (fun s -> fst (Vjs.Isolate.invoke isolate ~input:(Bytes.of_string s)))
      [ "ab"; "abcd"; "x" ]
  in
  Alcotest.(check bool) "all correct" true
    (results = [ Ok "2"; Ok "4"; Ok "1" ]);
  Alcotest.(check int) "single shell" 1 (R.pool_stats w).Wasp.Pool.created

let test_cow_retains_shell () =
  let w = R.create ~reset:`Cow () in
  ignore (R.run w snap_image ~policy:snap_policy ~snapshot_key:"cow3" ~args:[ 1L ] ());
  ignore (R.run w snap_image ~policy:snap_policy ~snapshot_key:"cow3" ~args:[ 1L ] ());
  ignore (R.run w snap_image ~policy:snap_policy ~snapshot_key:"cow3" ~args:[ 1L ] ());
  let stats = R.pool_stats w in
  Alcotest.(check int) "one shell ever created" 1 stats.Wasp.Pool.created

(* ------------------------------------------------------------------ *)
(* Paged snapshots: footprints, store bounds, O(dirty) restores         *)
(* ------------------------------------------------------------------ *)

let mem_with_cpu ?(size = 64 * 1024) () =
  let mem = Vm.Memory.create ~size in
  let cpu = Vm.Cpu.create ~mem ~mode:Vm.Modes.Long ~clock:(Cycles.Clock.create ()) in
  (mem, cpu)

let test_footprint_all_zero () =
  let mem, cpu = mem_with_cpu () in
  let store = Wasp.Snapshot_store.create () in
  let fp = Wasp.Snapshot_store.capture store ~key:"z" ~mem ~cpu ~native_state:None in
  Alcotest.(check int) "all-zero image has footprint 0" 0 fp;
  let entry = Option.get (Wasp.Snapshot_store.find store ~key:"z") in
  Alcotest.(check int) "entry agrees" 0 entry.Wasp.Snapshot_store.footprint;
  (* restoring the empty image into a dirtied memory still zeroes it *)
  Vm.Memory.write_u64 mem 0x5000 0xFFL;
  ignore (Wasp.Snapshot_store.restore entry ~mem ~cpu);
  Alcotest.(check int64) "restored to zeros" 0L (Vm.Memory.read_u64 mem 0x5000)

let test_footprint_mid_page () =
  let mem, cpu = mem_with_cpu () in
  Vm.Memory.write_u8 mem 100 0xAA;
  let store = Wasp.Snapshot_store.create () in
  let fp = Wasp.Snapshot_store.capture store ~key:"m" ~mem ~cpu ~native_state:None in
  Alcotest.(check int) "footprint ends mid-page after last nonzero byte" 101 fp

let test_dirty_page_past_footprint_restores_to_zeros () =
  let mem, cpu = mem_with_cpu () in
  Vm.Memory.write_u64 mem 0 0x1234L;
  let store = Wasp.Snapshot_store.create () in
  ignore (Wasp.Snapshot_store.capture store ~key:"p" ~mem ~cpu ~native_state:None);
  let entry = Option.get (Wasp.Snapshot_store.find store ~key:"p") in
  Vm.Memory.clear_dirty mem;
  (* dirty a page entirely beyond the snapshot's footprint *)
  Vm.Memory.write_u64 mem 0x8000 0xBADL;
  let pages, _ = Wasp.Snapshot_store.restore_cow entry ~mem ~cpu in
  Alcotest.(check int) "the stray page is restored" 1 pages;
  Alcotest.(check int64) "beyond-footprint page back to zeros" 0L
    (Vm.Memory.read_u64 mem 0x8000);
  Alcotest.(check int64) "in-footprint data intact" 0x1234L (Vm.Memory.read_u64 mem 0)

let test_snapshot_store_lru_eviction () =
  let store = Wasp.Snapshot_store.create ~capacity:2 () in
  let hub = Telemetry.Hub.create ~clock:(Cycles.Clock.create ()) () in
  Wasp.Snapshot_store.set_telemetry store (Some hub);
  let capture key v =
    let mem, cpu = mem_with_cpu () in
    Vm.Memory.write_u64 mem 0 v;
    ignore (Wasp.Snapshot_store.capture store ~key ~mem ~cpu ~native_state:None)
  in
  capture "a" 1L;
  capture "b" 2L;
  (* touch "a" so "b" is the LRU victim when "c" arrives *)
  ignore (Wasp.Snapshot_store.find store ~key:"a");
  capture "c" 3L;
  Alcotest.(check int) "bounded at capacity" 2 (Wasp.Snapshot_store.count store);
  Alcotest.(check bool) "LRU key evicted" true
    (Wasp.Snapshot_store.find store ~key:"b" = None);
  Alcotest.(check bool) "recently used key kept" true
    (Wasp.Snapshot_store.find store ~key:"a" <> None);
  Alcotest.(check int) "eviction counted" 1 (Wasp.Snapshot_store.evictions store);
  let gauge name =
    match Telemetry.Metrics.find (Telemetry.Hub.metrics hub) name with
    | Some (Telemetry.Metrics.Gauge g) -> int_of_float g.Telemetry.Metrics.g_value
    | _ -> Alcotest.failf "gauge %s not exported" name
  in
  Alcotest.(check int) "entries gauge" 2 (gauge "wasp_snapshot_store_entries");
  Alcotest.(check bool) "bytes gauge tracks footprints" true
    (gauge "wasp_snapshot_store_bytes" > 0)

(* a guest that snapshots immediately, then dirties exactly [k] pages *)
let dirty_k_image ~k ~size =
  let src =
    Printf.sprintf
      {|
  mov r0, 6
  out 1, r0
  mov r1, %d
  mov r2, 0x20000
loop:
  st64 [r2+0], 0x77
  add r2, 4096
  sub r1, 1
  cmp r1, 0
  jgt loop
  mov r0, 0
  out 1, r0
|}
      k
  in
  let base =
    Wasp.Image.of_asm_string
      ~name:(Printf.sprintf "dirty%d-%d" k size)
      ~mem_size:(size + (256 * 1024))
      src
  in
  let code_len = Bytes.length base.Wasp.Image.code in
  let img = Wasp.Image.pad_to base size in
  (* nonzero filler: the whole image is footprint, so an O(footprint)
     restore would scale with [size] *)
  Bytes.fill img.Wasp.Image.code code_len (size - code_len) '\x21';
  img

let test_warm_restore_cost_flat_in_image_size () =
  (* the acceptance criterion of the paged store: with a fixed dirty set,
     warm CoW restore cost must not scale with the image *)
  let warm size =
    let w = R.create ~reset:`Cow ~clean:`Async () in
    let img = dirty_k_image ~k:4 ~size in
    let key = Printf.sprintf "flat-%d" size in
    ignore (R.run w img ~policy:snap_policy ~snapshot_key:key ());
    ignore (R.run w img ~policy:snap_policy ~snapshot_key:key ());
    Int64.to_float (R.run w img ~policy:snap_policy ~snapshot_key:key ()).R.cycles
  in
  let small = warm (256 * 1024) and large = warm (4 * 1024 * 1024) in
  Alcotest.(check bool)
    (Printf.sprintf "16x image, warm cost %.0f vs %.0f" small large)
    true
    (large < 1.5 *. small)

(* ------------------------------------------------------------------ *)
(* Native payloads                                                      *)
(* ------------------------------------------------------------------ *)

type Wasp.Univ.t += Test_state of int ref

let test_native_basic () =
  let w = R.create () in
  let r =
    R.run_native w ~name:"native" ~policy:Wasp.Policy.allow_all
      ~body:(fun ctx ~restored ->
        Alcotest.(check bool) "no snapshot yet" true (restored = None);
        R.Native_ctx.charge ctx 1000;
        let addr = R.Native_ctx.alloc ctx 64 in
        Vm.Memory.write_u64 (R.Native_ctx.mem ctx) addr 99L;
        Vm.Memory.read_u64 (R.Native_ctx.mem ctx) addr)
      ()
  in
  Alcotest.(check int64) "native result" 99L r.return_value;
  Alcotest.(check bool) "cycles include charge" true (r.cycles >= 1000L)

let test_native_hypercall_policy () =
  let w = R.create () in
  let r =
    R.run_native w ~name:"native-deny"
      ~body:(fun ctx ~restored:_ ->
        R.Native_ctx.hypercall ctx Wasp.Hc.open_ [| 0L |])
      ()
  in
  Alcotest.(check int64) "denied" Wasp.Hc.err_denied r.return_value;
  Alcotest.(check int) "counted" 1 r.denied

let test_native_snapshot_state () =
  let w = R.create () in
  let setup_runs = ref 0 in
  let invoke () =
    R.run_native w ~name:"native-snap" ~policy:(Wasp.Policy.of_list [ Wasp.Hc.snapshot ])
      ~snapshot_key:"njs"
      ~body:(fun ctx ~restored ->
        match restored with
        | Some (Test_state counter) -> Int64.of_int !counter
        | Some _ -> Alcotest.fail "wrong state"
        | None ->
            incr setup_runs;
            (* expensive init, then snapshot *)
            R.Native_ctx.charge ctx 100_000;
            let addr = R.Native_ctx.alloc ctx 4096 in
            Vm.Memory.write_u64 (R.Native_ctx.mem ctx) addr 1L;
            R.Native_ctx.offer_snapshot_state ctx (fun () -> Test_state (ref 42));
            ignore (R.Native_ctx.hypercall ctx Wasp.Hc.snapshot [||]);
            0L)
      ()
  in
  let r1 = invoke () in
  let r2 = invoke () in
  Alcotest.(check int) "setup ran once" 1 !setup_runs;
  Alcotest.(check int64) "restored state" 42L r2.return_value;
  Alcotest.(check bool) "snapshot cheaper" true (r2.cycles < r1.cycles);
  Alcotest.(check int64) "first ran setup" 0L r1.return_value

let test_native_get_return_data () =
  let w = R.create () in
  let r =
    R.run_native w ~name:"native-data"
      ~policy:(Wasp.Policy.of_list [ Wasp.Hc.get_data; Wasp.Hc.return_data ])
      ~input:(Bytes.of_string "abc")
      ~body:(fun ctx ~restored:_ ->
        let buf = R.Native_ctx.alloc ctx 64 in
        let n =
          R.Native_ctx.hypercall ctx Wasp.Hc.get_data [| Int64.of_int buf; 64L |]
        in
        (* uppercase in guest memory *)
        let mem = R.Native_ctx.mem ctx in
        for i = 0 to Int64.to_int n - 1 do
          Vm.Memory.write_u8 mem (buf + i) (Vm.Memory.read_u8 mem (buf + i) - 32)
        done;
        R.Native_ctx.hypercall ctx Wasp.Hc.return_data [| Int64.of_int buf; n |])
      ()
  in
  match r.output with
  | Some b -> Alcotest.(check string) "uppercased" "ABC" (Bytes.to_string b)
  | None -> Alcotest.fail "no output"

let () =
  Alcotest.run "wasp"
    [
      ( "image",
        [
          Alcotest.test_case "defaults" `Quick test_image_defaults;
          Alcotest.test_case "padding" `Quick test_image_pad;
          Alcotest.test_case "mem grows for code" `Quick test_image_grows_mem_for_code;
        ] );
      ( "invocation",
        [
          Alcotest.test_case "hlt" `Quick test_run_hlt;
          Alcotest.test_case "argument marshalling" `Quick test_run_args_marshalling;
          Alcotest.test_case "input bytes via get/return_data" `Quick test_run_input_bytes;
          Alcotest.test_case "input xor args" `Quick test_run_rejects_input_and_args;
          Alcotest.test_case "fault contained" `Quick test_faulting_virtine_is_contained;
          Alcotest.test_case "runaway killed" `Quick test_runaway_virtine_killed;
          Alcotest.test_case "aggregate stats" `Quick test_runtime_stats_aggregate;
        ] );
      ( "policy",
        [
          Alcotest.test_case "default deny" `Quick test_default_deny;
          Alcotest.test_case "exit always allowed" `Quick test_exit_always_allowed;
          Alcotest.test_case "allow all" `Quick test_allow_all_policy;
          Alcotest.test_case "mask" `Quick test_mask_policy;
          Alcotest.test_case "custom predicate" `Quick test_custom_policy_predicate;
          Alcotest.test_case "custom handler" `Quick test_custom_handler_overrides;
          Alcotest.test_case "denials counted" `Quick test_denied_hypercalls_counted_separately;
        ] );
      ( "validation",
        [
          Alcotest.test_case "evil pointer" `Quick test_evil_pointer_rejected;
          Alcotest.test_case "evil length" `Quick test_evil_length_rejected;
          Alcotest.test_case "unterminated path" `Quick test_unterminated_path_rejected;
          Alcotest.test_case "get_data once" `Quick test_get_data_once_only;
        ] );
      ( "pool",
        [
          Alcotest.test_case "reuse" `Quick test_pool_reuse;
          Alcotest.test_case "reuse cheaper" `Quick test_pool_reuse_is_cheaper;
          Alcotest.test_case "disabled" `Quick test_pool_disabled;
          Alcotest.test_case "no data leak across reuse" `Quick test_pool_clean_no_leak;
          Alcotest.test_case "async clean background" `Quick test_async_clean_charges_background;
          Alcotest.test_case "async faster" `Quick test_async_clean_faster_invocations;
          Alcotest.test_case "release clears dirty bitmap" `Quick
            test_release_clears_dirty_bitmap;
          Alcotest.test_case "cow restore after pool reuse" `Quick
            test_cow_restore_after_pool_reuse;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "correctness" `Quick test_snapshot_correctness;
          Alcotest.test_case "skips init" `Quick test_snapshot_skips_init;
          Alcotest.test_case "isolation between runs" `Quick test_snapshot_isolation_between_runs;
          Alcotest.test_case "requires policy" `Quick test_snapshot_requires_policy;
          Alcotest.test_case "drop snapshot" `Quick test_drop_snapshot;
          Alcotest.test_case "no key is EINVAL" `Quick test_snapshot_without_key_is_einval;
        ] );
      ( "cow-reset",
        [
          Alcotest.test_case "correctness" `Quick test_cow_correctness;
          Alcotest.test_case "cheaper for big footprints" `Quick
            test_cow_cheaper_than_memcpy_for_big_footprint;
          Alcotest.test_case "no leak between invocations" `Quick
            test_cow_no_leak_between_invocations;
          Alcotest.test_case "retains shell" `Quick test_cow_retains_shell;
          Alcotest.test_case "cow via compiler" `Quick test_cow_via_compiler;
          Alcotest.test_case "cow native payload" `Quick test_cow_native_payload;
        ] );
      ( "paged-snapshots",
        [
          Alcotest.test_case "all-zero footprint" `Quick test_footprint_all_zero;
          Alcotest.test_case "footprint ends mid-page" `Quick test_footprint_mid_page;
          Alcotest.test_case "dirty page past footprint" `Quick
            test_dirty_page_past_footprint_restores_to_zeros;
          Alcotest.test_case "store LRU eviction + gauges" `Quick
            test_snapshot_store_lru_eviction;
          Alcotest.test_case "warm restore flat in image size" `Quick
            test_warm_restore_cost_flat_in_image_size;
        ] );
      ( "native",
        [
          Alcotest.test_case "basic" `Quick test_native_basic;
          Alcotest.test_case "hypercall policy" `Quick test_native_hypercall_policy;
          Alcotest.test_case "snapshot state" `Quick test_native_snapshot_state;
          Alcotest.test_case "get/return data" `Quick test_native_get_return_data;
        ] );
    ]
