(* Guest profiler, flight recorder, and deterministic record/replay. *)

let fib_src =
  {|
start:
  mov r1, 10
  call fib
  mov r1, r0
  mov r0, 0
  out 1, r0
  hlt
fib:
  cmp r1, 2
  jlt fib_base
  push r1
  sub r1, 1
  call fib
  pop r1
  push r0
  sub r1, 2
  call fib
  pop r2
  add r0, r2
  ret
fib_base:
  mov r0, r1
  ret
|}

(* 40 hypercall exits, then a wild load faults the guest. *)
let fault_src =
  {|
start:
  mov r2, 40
hammer:
  mov r0, 12
  out 1, r0
  sub r2, 1
  cmp r2, 0
  jgt hammer
  mov r1, 0x7ffffff0
  ld64 r0, [r1]
  hlt
|}

let fib_image () = Wasp.Image.of_asm_string ~name:"fib" fib_src

let execute_cycles hub =
  List.fold_left
    (fun acc (s : Telemetry.Span.span) ->
      if s.Telemetry.Span.name = "execute" then Int64.add acc s.Telemetry.Span.duration
      else acc)
    0L
    (Telemetry.Span.spans (Telemetry.Hub.spans hub))

(* The acceptance property: with an exact profiler attached, the
   per-function cycle totals (guest functions + [vmm]) sum to the
   execute span's duration, to the cycle. *)
let test_conservation () =
  let w = Wasp.Runtime.create () in
  let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
  Wasp.Runtime.set_telemetry w (Some hub);
  let p = Profiler.Profile.create () in
  Wasp.Runtime.set_profiler w (Some p);
  let r = Wasp.Runtime.run w (fib_image ()) () in
  (match r.Wasp.Runtime.outcome with
  | Wasp.Runtime.Exited v -> Alcotest.(check int64) "fib(10)" 55L v
  | _ -> Alcotest.fail "expected clean exit");
  let exec = execute_cycles hub in
  Alcotest.(check bool) "execute span nonzero" true (Int64.compare exec 0L > 0);
  Alcotest.(check int64) "profiler total = execute span" exec
    (Profiler.Profile.total_cycles p);
  let row_sum =
    List.fold_left
      (fun acc (row : Profiler.Profile.fn_row) -> Int64.add acc row.Profiler.Profile.row_cycles)
      0L (Profiler.Profile.functions p)
  in
  Alcotest.(check int64) "fn rows sum to execute span" exec row_sum;
  Alcotest.(check bool) "guest cycles nonzero" true
    (Int64.compare (Profiler.Profile.guest_cycles p) 0L > 0);
  Alcotest.(check bool) "vmm residue nonzero" true
    (Int64.compare (Profiler.Profile.host_cycles p) 0L > 0)

(* The same conservation property on a vcc-compiled virtine: the
   profiler's symbols come from the compiler's emitted labels. *)
let test_conservation_vcc () =
  let src = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }" in
  let compiled = Vcc.Compile.compile ~snapshot:false ~name:"pfib" src in
  let w = Wasp.Runtime.create () in
  let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
  Wasp.Runtime.set_telemetry w (Some hub);
  let p = Profiler.Profile.create () in
  Wasp.Runtime.set_profiler w (Some p);
  let r = Vcc.Compile.invoke w compiled "fib" [ 9L ] () in
  Alcotest.(check int64) "fib(9)" 34L r.Wasp.Runtime.return_value;
  Alcotest.(check int64) "vcc profile conserves execute span" (execute_cycles hub)
    (Profiler.Profile.total_cycles p);
  let names =
    List.map (fun (row : Profiler.Profile.fn_row) -> row.Profiler.Profile.row_name)
      (Profiler.Profile.functions p)
  in
  Alcotest.(check bool) "fn_fib attributed" true (List.mem "fn_fib" names)

let test_symbolization_and_folded () =
  let w = Wasp.Runtime.create () in
  let p = Profiler.Profile.create () in
  Wasp.Runtime.set_profiler w (Some p);
  ignore (Wasp.Runtime.run w (fib_image ()) ());
  let rows = Profiler.Profile.functions p in
  let find name =
    List.find_opt (fun (r : Profiler.Profile.fn_row) -> r.Profiler.Profile.row_name = name) rows
  in
  (match find "fib" with
  | Some row ->
      Alcotest.(check bool) "fib has calls" true (row.Profiler.Profile.row_calls > 0);
      Alcotest.(check bool) "fib has instrs" true (row.Profiler.Profile.row_instrs > 0)
  | None -> Alcotest.fail "no 'fib' row");
  Alcotest.(check bool) "start attributed" true (find "start" <> None);
  Alcotest.(check bool) "[vmm] attributed" true (find Profiler.Profile.vmm_name <> None);
  let folded = Profiler.Profile.folded p in
  Alcotest.(check bool) "recursive stack present" true
    (List.exists (fun (stack, _) -> stack = "start;fib;fib") folded);
  let lines = Profiler.Profile.folded_lines p in
  Alcotest.(check bool) "folded_lines renders" true (String.length lines > 0)

let test_sampled_mode () =
  let w = Wasp.Runtime.create () in
  let p = Profiler.Profile.create ~mode:(Profiler.Profile.Sampled 100) () in
  Wasp.Runtime.set_profiler w (Some p);
  ignore (Wasp.Runtime.run w (fib_image ()) ());
  let samples =
    List.fold_left
      (fun acc (r : Profiler.Profile.fn_row) -> acc + r.Profiler.Profile.row_samples)
      0 (Profiler.Profile.functions p)
  in
  Alcotest.(check bool) "samples taken" true (samples > 0);
  (* fib(10) retires ~4-5K guest cycles; a 100-cycle budget fires a
     sample per crossed boundary, so expect a meaningful count *)
  Alcotest.(check bool) "sample count tracks cycle budget" true (samples > 10);
  (* sampled rows estimate cycles as samples * interval *)
  List.iter
    (fun (r : Profiler.Profile.fn_row) ->
      if r.Profiler.Profile.row_name <> Profiler.Profile.vmm_name then
        Alcotest.(check int64)
          ("estimate for " ^ r.Profiler.Profile.row_name)
          (Int64.of_int (r.Profiler.Profile.row_samples * 100))
          r.Profiler.Profile.row_cycles)
    (Profiler.Profile.functions p)

let test_profile_export () =
  let w = Wasp.Runtime.create () in
  let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
  Wasp.Runtime.set_telemetry w (Some hub);
  let p = Profiler.Profile.create () in
  Wasp.Runtime.set_profiler w (Some p);
  ignore (Wasp.Runtime.run w (fib_image ()) ());
  Profiler.Profile.export p hub;
  let text = Telemetry.Prometheus.to_text (Telemetry.Hub.metrics hub) in
  Alcotest.(check bool) "labeled fn series exported" true
    (let open String in
     length text > 0
     &&
     let re = {|wasp_profile_fn_cycles{fn="fib"}|} in
     let rec contains i =
       i + length re <= length text && (sub text i (length re) = re || contains (i + 1))
     in
     contains 0)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_flight_fault_dump () =
  let img = Wasp.Image.of_asm_string ~name:"faulty" fault_src in
  let w = Wasp.Runtime.create () in
  let r = Wasp.Runtime.run w img () in
  (match r.Wasp.Runtime.outcome with
  | Wasp.Runtime.Faulted _ -> ()
  | _ -> Alcotest.fail "expected a fault");
  match Wasp.Runtime.flight_dump w with
  | None -> Alcotest.fail "no flight dump after a guest fault"
  | Some dump ->
      Alcotest.(check bool) "dump names the fault" true
        (count_substring dump "guest fault" > 0);
      (* the faulting instruction's true PC (rewound on fault) *)
      Alcotest.(check bool) "dump holds the faulting pc" true
        (count_substring dump "0x8040" > 0);
      Alcotest.(check bool) "dump holds the fault entry" true
        (count_substring dump "page fault" > 0);
      Alcotest.(check bool) ">= 32 preceding exits retained" true
        (count_substring dump "io_out" >= 32);
      Alcotest.(check bool) "hypercall annotations attached" true
        (count_substring dump "clock(" >= 32)

let test_flight_policy_violation () =
  (* one denied hypercall (clock under deny_all), then exit cleanly *)
  let src = {|
start:
  mov r0, 12
  out 1, r0
  mov r1, 7
  mov r0, 0
  out 1, r0
  hlt
|} in
  let img = Wasp.Image.of_asm_string ~name:"denied" src in
  let w = Wasp.Runtime.create () in
  let r = Wasp.Runtime.run w img () in
  Alcotest.(check int) "hypercall denied" 1 r.Wasp.Runtime.denied;
  match Wasp.Runtime.flight_dump w with
  | None -> Alcotest.fail "no flight dump after a policy violation"
  | Some dump ->
      Alcotest.(check bool) "dump names the violation" true
        (count_substring dump "policy violation" > 0);
      Alcotest.(check bool) "dump names the denied hypercall" true
        (count_substring dump "clock" > 0)

let test_flight_ring_bounds () =
  let fr = Profiler.Flight.create ~capacity:4 () in
  for i = 0 to 9 do
    Profiler.Flight.record fr ~at:(Int64.of_int (100 * i)) ~core:0 ~pc:i
      Profiler.Flight.Halt
  done;
  Alcotest.(check int) "total counts all" 10 (Profiler.Flight.total fr);
  Alcotest.(check int) "ring retains capacity" 4 (Profiler.Flight.count fr);
  let entries = Profiler.Flight.entries fr in
  Alcotest.(check (list int)) "oldest-first, newest retained" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Profiler.Flight.entry) -> e.Profiler.Flight.pc) entries)

let test_flight_wraparound_keeps_stamps () =
  (* two cores stamp the same ring; after wraparound every survivor must
     keep its own trace id, hypercall annotation and appended vtrace
     note — the probe engine's stamp rides the same entry. *)
  let fr = Profiler.Flight.create ~capacity:8 () in
  for i = 0 to 11 do
    Profiler.Flight.record fr
      ~trace:(Int64.of_int (1000 + i))
      ~at:(Int64.of_int (10 * i))
      ~core:(i mod 2) ~pc:i
      (Profiler.Flight.Io_out { port = 1; value = Int64.of_int i });
    Profiler.Flight.annotate_last fr (Printf.sprintf "hc(%d)" i);
    Profiler.Flight.append_note fr "vtrace"
  done;
  Alcotest.(check int) "total counts every record" 12
    (Profiler.Flight.total fr);
  Alcotest.(check int) "ring holds capacity" 8 (Profiler.Flight.count fr);
  let entries = Profiler.Flight.entries fr in
  Alcotest.(check (list int)) "oldest survivor is seq 4" [ 4; 5; 6; 7; 8; 9; 10; 11 ]
    (List.map (fun (e : Profiler.Flight.entry) -> e.Profiler.Flight.seq) entries);
  List.iter
    (fun (e : Profiler.Flight.entry) ->
      Alcotest.(check int)
        "cores interleave across the wrap" (e.Profiler.Flight.seq mod 2)
        e.Profiler.Flight.core;
      Alcotest.(check (option int64))
        "trace id survives the wrap"
        (Some (Int64.of_int (1000 + e.Profiler.Flight.seq)))
        e.Profiler.Flight.trace;
      Alcotest.(check string) "annotation and vtrace stamp both survive"
        (Printf.sprintf "hc(%d); vtrace" e.Profiler.Flight.seq)
        e.Profiler.Flight.note)
    entries

(* ------------------------------------------------------------------ *)
(* Record / replay                                                     *)
(* ------------------------------------------------------------------ *)

let record_invocation ?(seed = 0xACE) () =
  let img = fib_image () in
  let w = Wasp.Runtime.create ~seed () in
  let rc = Profiler.Replay.create () in
  Profiler.Replay.set_image rc ~name:img.Wasp.Image.name
    ~mode:(Vm.Modes.to_string img.Wasp.Image.mode) ~origin:img.Wasp.Image.origin
    ~entry:img.Wasp.Image.entry ~mem_size:img.Wasp.Image.mem_size
    ~code:(Bytes.to_string img.Wasp.Image.code);
  Profiler.Replay.set_env rc ~seed ~policy:"deny_all" ~fuel:1_000_000 ();
  Wasp.Runtime.set_recorder w (Some rc);
  let r = Wasp.Runtime.run w img ~fuel:1_000_000 () in
  Profiler.Replay.finish rc ~cycles:r.Wasp.Runtime.cycles
    ~outcome:
      (match r.Wasp.Runtime.outcome with
      | Wasp.Runtime.Exited _ -> "exited"
      | Wasp.Runtime.Faulted _ -> "faulted"
      | Wasp.Runtime.Fuel_exhausted -> "fuel")
    ~return_value:r.Wasp.Runtime.return_value;
  rc

let test_replay_zero_divergence () =
  let a = record_invocation () in
  let b = record_invocation () in
  Alcotest.(check (list string)) "same seed replays cycle-for-cycle" []
    (Profiler.Replay.diff a b);
  Alcotest.(check bool) "transcript nonempty" true (Profiler.Replay.event_count a > 0)

let test_replay_divergence_detected () =
  let a = record_invocation ~seed:0xACE () in
  let b = record_invocation ~seed:0xBEEF () in
  let divs = Profiler.Replay.diff a b in
  Alcotest.(check bool) "different seed diverges" true (divs <> []);
  Alcotest.(check bool) "seed divergence reported" true
    (List.exists (fun d -> count_substring d "seed" > 0) divs)

let test_vxr_round_trip () =
  let rc = record_invocation () in
  let text = Profiler.Replay.to_string rc in
  match Profiler.Replay.of_string text with
  | Error m -> Alcotest.fail ("round trip failed: " ^ m)
  | Ok parsed ->
      Alcotest.(check string) "serialization is stable" text
        (Profiler.Replay.to_string parsed);
      Alcotest.(check (list string)) "parsed recording diffs clean" []
        (Profiler.Replay.diff rc parsed);
      Alcotest.(check string) "md5 preserved" (Profiler.Replay.image_md5 rc)
        (Profiler.Replay.image_md5 parsed)

let test_vxr_tamper_detected () =
  let rc = record_invocation () in
  let text = Profiler.Replay.to_string rc in
  (* flip one byte of the image hex payload *)
  let idx =
    let marker = "\ncode " in
    let rec find i =
      if String.sub text i (String.length marker) = marker then i + String.length marker
      else find (i + 1)
    in
    find 0
  in
  let tampered = Bytes.of_string text in
  Bytes.set tampered idx (if Bytes.get tampered idx = '0' then '1' else '0');
  (match Profiler.Replay.of_string (Bytes.to_string tampered) with
  | Error m ->
      Alcotest.(check bool) "md5 mismatch reported" true (count_substring m "md5" > 0)
  | Ok _ -> Alcotest.fail "tampered image accepted");
  match Profiler.Replay.of_string "not a recording" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

(* A .vxr recorded by wasprun BEFORE the paged-memory refactor, embedded
   verbatim. Replaying it with zero divergence (same per-event clocks,
   same 365944-cycle total) pins down that the paged store left the cold
   execution path cycle-identical: zero-fill faults charge nothing and
   the image md5 is computed over the same bytes. *)
let pre_refactor_vxr =
  "vxr1\n\
   image wasprun\n\
   mode long\n\
   origin 32768\n\
   entry 32768\n\
   mem_size 65536\n\
   seed 2766\n\
   policy mask:0\n\
   fuel 50000000\n\
   md5 b3a644c2024fc81d71b188f5ef521273\n\
   code \
   0201800c0000000000000022228000000201000200800000000000000000400100001d0180020000000000000021025f800000250111018001000000000000002222800000260125001101800200000000000000222280000026021000022402000124\n\
   hc 349918 0 0 144 89 0 0 0\n\
   total 365944\n\
   outcome exited\n\
   ret 144\n"

let test_replay_pre_refactor_fixture () =
  match Profiler.Replay.of_string pre_refactor_vxr with
  | Error m -> Alcotest.fail ("fixture failed to parse: " ^ m)
  | Ok recorded ->
      let image : Wasp.Image.t =
        {
          name = Profiler.Replay.image_name recorded;
          code = Bytes.of_string (Profiler.Replay.code recorded);
          origin = Profiler.Replay.origin recorded;
          entry = Profiler.Replay.entry recorded;
          mode = Vm.Modes.Long;
          mem_size = Profiler.Replay.mem_size recorded;
          symbols = [];
        }
      in
      let w = Wasp.Runtime.create ~seed:(Profiler.Replay.seed recorded) () in
      let fresh = Profiler.Replay.create () in
      Profiler.Replay.set_image fresh ~name:image.name
        ~mode:(Vm.Modes.to_string image.mode) ~origin:image.origin
        ~entry:image.entry ~mem_size:image.mem_size
        ~code:(Bytes.to_string image.code);
      Profiler.Replay.set_env fresh
        ~seed:(Profiler.Replay.seed recorded)
        ~policy:(Profiler.Replay.policy recorded)
        ~fuel:(Profiler.Replay.fuel recorded) ();
      Wasp.Runtime.set_recorder w (Some fresh);
      let r =
        Wasp.Runtime.run w image ~policy:(Wasp.Policy.Mask 0L)
          ~fuel:(Profiler.Replay.fuel recorded) ()
      in
      Profiler.Replay.finish fresh ~cycles:r.Wasp.Runtime.cycles
        ~outcome:
          (match r.Wasp.Runtime.outcome with
          | Wasp.Runtime.Exited _ -> "exited"
          | Wasp.Runtime.Faulted _ -> "faulted"
          | Wasp.Runtime.Fuel_exhausted -> "fuel")
        ~return_value:r.Wasp.Runtime.return_value;
      Alcotest.(check (list string)) "pre-refactor recording replays clean" []
        (Profiler.Replay.diff recorded fresh);
      Alcotest.(check int64) "cycle total preserved across the refactor" 365944L
        r.Wasp.Runtime.cycles

let test_image_matches () =
  let rc = record_invocation () in
  let code = Bytes.of_string (Profiler.Replay.code rc) in
  Alcotest.(check bool) "recorded bytes match" true
    (Profiler.Replay.image_matches rc code);
  (* the logical view is what the runtime reads back from the paged
     store; a fresh paged roundtrip must still match the recorded md5 *)
  let mem = Vm.Memory.create ~size:(Bytes.length code + 4096) in
  Vm.Memory.write_bytes mem ~off:0 code;
  let view = Vm.Memory.read_bytes mem ~off:0 ~len:(Bytes.length code) in
  Alcotest.(check bool) "paged view matches" true
    (Profiler.Replay.image_matches rc view);
  let tampered = Bytes.copy code in
  Bytes.set tampered 0 (Char.chr (Char.code (Bytes.get tampered 0) lxor 1));
  Alcotest.(check bool) "tampered view rejected" false
    (Profiler.Replay.image_matches rc tampered)

(* ------------------------------------------------------------------ *)
(* Symtab                                                              *)
(* ------------------------------------------------------------------ *)

let test_symtab_lookup () =
  let t =
    Profiler.Symtab.of_symbols
      [ ("start", 0x8000); (".L1", 0x8005); ("fib", 0x8010); ("g_x", 0x9000) ]
  in
  Alcotest.(check (option string)) "exact hit" (Some "start")
    (Profiler.Symtab.lookup t 0x8000);
  Alcotest.(check (option string)) "interior address" (Some "start")
    (Profiler.Symtab.lookup t 0x8008);
  Alcotest.(check (option string)) "next symbol" (Some "fib")
    (Profiler.Symtab.lookup t 0x8010);
  Alcotest.(check (option string)) "below first symbol" None
    (Profiler.Symtab.lookup t 0x7fff);
  Alcotest.(check string) "fallback renders address" "0x7fff"
    (Profiler.Symtab.name_at t 0x7fff);
  (* compiler-local labels are filtered by default *)
  Alcotest.(check (option string)) "locals filtered" (Some "start")
    (Profiler.Symtab.lookup t 0x8006)

let () =
  Alcotest.run "profiler"
    [
      ( "profile",
        [
          Alcotest.test_case "cycle conservation (asm)" `Quick test_conservation;
          Alcotest.test_case "cycle conservation (vcc)" `Quick test_conservation_vcc;
          Alcotest.test_case "symbolization + folded stacks" `Quick
            test_symbolization_and_folded;
          Alcotest.test_case "sampled mode" `Quick test_sampled_mode;
          Alcotest.test_case "metrics export" `Quick test_profile_export;
        ] );
      ( "flight",
        [
          Alcotest.test_case "fault dump" `Quick test_flight_fault_dump;
          Alcotest.test_case "policy violation dump" `Quick test_flight_policy_violation;
          Alcotest.test_case "ring bounds" `Quick test_flight_ring_bounds;
          Alcotest.test_case "wraparound keeps stamps" `Quick
            test_flight_wraparound_keeps_stamps;
        ] );
      ( "replay",
        [
          Alcotest.test_case "zero divergence" `Quick test_replay_zero_divergence;
          Alcotest.test_case "divergence detected" `Quick test_replay_divergence_detected;
          Alcotest.test_case "vxr round trip" `Quick test_vxr_round_trip;
          Alcotest.test_case "tamper detected" `Quick test_vxr_tamper_detected;
          Alcotest.test_case "pre-refactor fixture replays clean" `Quick
            test_replay_pre_refactor_fixture;
          Alcotest.test_case "image_matches over paged view" `Quick test_image_matches;
        ] );
      ("symtab", [ Alcotest.test_case "lookup" `Quick test_symtab_lookup ]);
    ]
