(* Tests for the tooling and API extensions: the disassembler, execution
   tracing, async virtine futures, and the Vespid HTTP gateway. *)

module R = Wasp.Runtime

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Disassembler                                                         *)
(* ------------------------------------------------------------------ *)

let test_disasm_roundtrip_text () =
  let src = "start:\n  mov r0, 20\n  call fn\n  hlt\nfn:\n  add r0, 1\n  ret" in
  let p = Asm.assemble_string src in
  let text = Disasm.of_program p in
  Alcotest.(check bool) "has start label" true (contains text "start:");
  Alcotest.(check bool) "has fn label" true (contains text "fn:");
  Alcotest.(check bool) "resolves call target" true (contains text "; -> fn");
  Alcotest.(check bool) "mnemonics present" true (contains text "mov r0, 20")

let test_disasm_instructions_roundtrip () =
  let instrs =
    [ Instr.Mov (0, Instr.Imm 42L); Instr.Bin (Instr.Add, 1, Instr.Reg 0); Instr.Hlt ]
  in
  let blob = Encoding.encode_program instrs in
  let lines = Disasm.disassemble ~origin:0 blob in
  let decoded = List.filter_map (fun l -> l.Disasm.instr) lines in
  Alcotest.(check int) "all decoded" 3 (List.length decoded);
  Alcotest.(check bool) "equal" true (List.for_all2 Instr.equal instrs decoded)

let test_disasm_handles_garbage () =
  let blob = Bytes.of_string "\xFF\xEE\x00" in
  let lines = Disasm.disassemble ~origin:0 blob in
  (* two data bytes + one hlt *)
  let data = List.filter (fun l -> l.Disasm.instr = None) lines in
  Alcotest.(check int) "two data bytes" 2 (List.length data);
  Alcotest.(check bool) "hlt recovered" true
    (List.exists (fun l -> l.Disasm.instr = Some Instr.Hlt) lines)

let test_disasm_addresses_consecutive () =
  let blob = Encoding.encode_program [ Instr.Nop; Instr.Mov (0, Instr.Imm 1L); Instr.Ret ] in
  let lines = Disasm.disassemble ~origin:0x8000 blob in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check int) "consecutive" (a.Disasm.addr + a.Disasm.size) b.Disasm.addr;
        check rest
    | _ -> ()
  in
  check lines

(* ------------------------------------------------------------------ *)
(* Tracing                                                              *)
(* ------------------------------------------------------------------ *)

let fib_image =
  Wasp.Image.of_asm_string ~name:"t-exit" "mov r0, 0\nmov r1, 7\nout 1, r0\nhlt"

let test_trace_records_lifecycle () =
  let w = R.create () in
  let tr = Wasp.Trace.create () in
  R.set_trace w (Some tr);
  ignore (R.run w fib_image ());
  let events = Wasp.Trace.events tr in
  let has p = List.exists p events in
  Alcotest.(check bool) "provisioned" true
    (has (function Wasp.Trace.Provisioned _ -> true | _ -> false));
  Alcotest.(check bool) "image loaded" true
    (has (function Wasp.Trace.Image_loaded _ -> true | _ -> false));
  Alcotest.(check bool) "booted" true
    (has (function Wasp.Trace.Booted _ -> true | _ -> false));
  Alcotest.(check bool) "exit hypercall" true
    (has (function Wasp.Trace.Hypercall { nr; allowed = true } -> nr = Wasp.Hc.exit_ | _ -> false));
  Alcotest.(check bool) "finished" true
    (has (function Wasp.Trace.Finished { exited = true; _ } -> true | _ -> false))

let test_trace_denied_hypercall_visible () =
  let w = R.create () in
  let tr = Wasp.Trace.create () in
  R.set_trace w (Some tr);
  let img =
    Wasp.Image.of_asm_string ~name:"t-open"
      "mov r0, 3\nmov r1, 0\nout 1, r0\nmov r0, 0\nmov r1, 0\nout 1, r0"
  in
  ignore (R.run w img ());
  let hcs = Wasp.Trace.hypercalls tr in
  Alcotest.(check bool) "open denied in trace" true
    (List.mem (Wasp.Hc.open_, false) hcs)

let test_trace_detach () =
  let w = R.create () in
  let tr = Wasp.Trace.create () in
  R.set_trace w (Some tr);
  ignore (R.run w fib_image ());
  let n = Wasp.Trace.count tr in
  R.set_trace w None;
  ignore (R.run w fib_image ());
  Alcotest.(check int) "no new events after detach" n (Wasp.Trace.count tr)

let test_trace_ring_capacity () =
  let tr = Wasp.Trace.create ~capacity:4 () in
  for i = 1 to 20 do
    Wasp.Trace.record tr (Wasp.Trace.Hypercall { nr = i; allowed = true })
  done;
  let events = Wasp.Trace.events tr in
  Alcotest.(check int) "capped" 4 (List.length events);
  (* newest retained *)
  Alcotest.(check bool) "newest kept" true
    (List.exists (function Wasp.Trace.Hypercall { nr = 20; _ } -> true | _ -> false) events)

let test_trace_pp () =
  let s =
    Format.asprintf "%a" Wasp.Trace.pp_event
      (Wasp.Trace.Hypercall { nr = Wasp.Hc.read; allowed = false })
  in
  Alcotest.(check bool) "names the hypercall" true (contains s "read");
  Alcotest.(check bool) "says denied" true (contains s "denied")

(* ------------------------------------------------------------------ *)
(* Futures (async virtines)                                             *)
(* ------------------------------------------------------------------ *)

let double_image =
  Wasp.Image.of_asm_string ~name:"double"
    "mov r1, 0\nld64 r1, [r1]\nadd r1, r1\nmov r0, 0\nout 1, r0\nhlt"

let test_future_deferred () =
  let w = R.create () in
  let before = Cycles.Clock.now (R.clock w) in
  let f = Wasp.Future.spawn w double_image ~args:[ 5L ] () in
  Alcotest.(check bool) "not run at spawn" true (Cycles.Clock.now (R.clock w) = before);
  Alcotest.(check bool) "pending" false (Wasp.Future.is_done f);
  Alcotest.(check bool) "poll empty" true (Wasp.Future.poll f = None);
  let r = Wasp.Future.join f in
  Alcotest.(check int64) "result" 10L r.R.return_value;
  Alcotest.(check bool) "done" true (Wasp.Future.is_done f)

let test_future_join_idempotent () =
  let w = R.create () in
  let f = Wasp.Future.spawn w double_image ~args:[ 3L ] () in
  let r1 = Wasp.Future.join f in
  let clock_after = Cycles.Clock.now (R.clock w) in
  let r2 = Wasp.Future.join f in
  Alcotest.(check int64) "same result" r1.R.return_value r2.R.return_value;
  Alcotest.(check bool) "no re-execution" true (Cycles.Clock.now (R.clock w) = clock_after);
  match Wasp.Future.poll f with
  | Some r -> Alcotest.(check int64) "poll sees it" 6L r.R.return_value
  | None -> Alcotest.fail "poll after join"

let test_future_join_all () =
  let w = R.create () in
  let fs =
    List.map (fun n -> Wasp.Future.spawn w double_image ~args:[ Int64.of_int n ] ()) [ 1; 2; 3; 4 ]
  in
  let rs = Wasp.Future.join_all fs in
  Alcotest.(check (list int64)) "all results" [ 2L; 4L; 6L; 8L ]
    (List.map (fun r -> r.R.return_value) rs)

(* ------------------------------------------------------------------ *)
(* Gateway                                                              *)
(* ------------------------------------------------------------------ *)

let gateway () =
  let w = R.create ~clean:`Async () in
  let platform = Serverless.Vespid.create w in
  Serverless.Gateway.create platform

let post path body =
  Vhttp.Http.request_to_string (Vhttp.Http.make_request ~body "POST" path)

let get path = Vhttp.Http.request_to_string (Vhttp.Http.make_request "GET" path)

let status_of raw =
  match Vhttp.Http.parse_response raw with
  | Ok r -> r.Vhttp.Http.status
  | Error e -> Alcotest.failf "bad response: %s" e

let body_of raw =
  match Vhttp.Http.parse_response raw with
  | Ok r -> r.Vhttp.Http.resp_body
  | Error e -> Alcotest.failf "bad response: %s" e

let shout_src = "function shout(d) { var s = \"\"; for (var i = 0; i < d.length; i++) { s += String.fromCharCode(d[i]); } return s.toUpperCase(); }"

let test_gateway_register_and_invoke () =
  let g = gateway () in
  let r = Serverless.Gateway.handle g (post "/register/shout?entry=shout" shout_src) in
  Alcotest.(check int) "registered" 201 (status_of r);
  let r = Serverless.Gateway.handle g (post "/invoke/shout" "hello gateway") in
  Alcotest.(check int) "invoked" 200 (status_of r);
  Alcotest.(check string) "result" "HELLO GATEWAY" (body_of r)

let test_gateway_unknown_function () =
  let g = gateway () in
  let r = Serverless.Gateway.handle g (post "/invoke/ghost" "x") in
  Alcotest.(check int) "404" 404 (status_of r)

let test_gateway_list_functions () =
  let g = gateway () in
  ignore (Serverless.Gateway.handle g (post "/register/a?entry=shout" shout_src));
  ignore (Serverless.Gateway.handle g (post "/register/b?entry=shout" shout_src));
  let r = Serverless.Gateway.handle g (get "/functions") in
  Alcotest.(check int) "200" 200 (status_of r);
  Alcotest.(check bool) "lists both" true
    (contains (body_of r) "a" && contains (body_of r) "b")

let test_gateway_js_error_is_500 () =
  let g = gateway () in
  ignore
    (Serverless.Gateway.handle g
       (post "/register/bad?entry=boom" "function boom(d) { return nothing_here(); }"));
  let r = Serverless.Gateway.handle g (post "/invoke/bad" "x") in
  Alcotest.(check int) "500" 500 (status_of r)

let test_gateway_register_target_parsing () =
  Alcotest.(check (pair string string))
    "entry given" ("f", "go")
    (Serverless.Gateway.parse_register_target "f?entry=go");
  Alcotest.(check (pair string string))
    "entry defaults" ("f", "main")
    (Serverless.Gateway.parse_register_target "f");
  (* regression: pairs split on the first '=' only, so a value may
     itself contain '=' *)
  Alcotest.(check (pair string string))
    "equals in value" ("f", "ns=main")
    (Serverless.Gateway.parse_register_target "f?entry=ns=main")

let test_gateway_bad_requests () =
  let g = gateway () in
  Alcotest.(check int) "malformed" 400
    (status_of (Serverless.Gateway.handle g "NOT HTTP AT ALL"));
  Alcotest.(check int) "no source" 400
    (status_of (Serverless.Gateway.handle g (post "/register/x" "")));
  Alcotest.(check int) "bad route" 404
    (status_of (Serverless.Gateway.handle g (get "/nope")));
  Alcotest.(check int) "bad method" 405
    (status_of
       (Serverless.Gateway.handle g
          (Vhttp.Http.request_to_string (Vhttp.Http.make_request "DELETE" "/functions"))))

let () =
  Alcotest.run "extensions"
    [
      ( "disasm",
        [
          Alcotest.test_case "roundtrip text" `Quick test_disasm_roundtrip_text;
          Alcotest.test_case "instruction roundtrip" `Quick test_disasm_instructions_roundtrip;
          Alcotest.test_case "garbage bytes" `Quick test_disasm_handles_garbage;
          Alcotest.test_case "consecutive addresses" `Quick test_disasm_addresses_consecutive;
        ] );
      ( "trace",
        [
          Alcotest.test_case "lifecycle events" `Quick test_trace_records_lifecycle;
          Alcotest.test_case "denied hypercalls" `Quick test_trace_denied_hypercall_visible;
          Alcotest.test_case "detach" `Quick test_trace_detach;
          Alcotest.test_case "ring capacity" `Quick test_trace_ring_capacity;
          Alcotest.test_case "pretty printing" `Quick test_trace_pp;
        ] );
      ( "future",
        [
          Alcotest.test_case "deferred" `Quick test_future_deferred;
          Alcotest.test_case "join idempotent" `Quick test_future_join_idempotent;
          Alcotest.test_case "join_all" `Quick test_future_join_all;
        ] );
      ( "gateway",
        [
          Alcotest.test_case "register + invoke" `Quick test_gateway_register_and_invoke;
          Alcotest.test_case "unknown function" `Quick test_gateway_unknown_function;
          Alcotest.test_case "list functions" `Quick test_gateway_list_functions;
          Alcotest.test_case "js error 500" `Quick test_gateway_js_error_is_500;
          Alcotest.test_case "register target parsing" `Quick
            test_gateway_register_target_parsing;
          Alcotest.test_case "bad requests" `Quick test_gateway_bad_requests;
        ] );
    ]
