(* Tests for guest memory, processor modes, paging/GDT construction, the
   boot sequencer, and CPU execution semantics. *)

let run_asm ?(mode = Vm.Modes.Long) ?(mem_size = 64 * 1024) ?(setup = fun _ -> ()) src =
  let p = Asm.assemble_string src in
  let mem = Vm.Memory.create ~size:mem_size in
  Vm.Memory.write_bytes mem ~off:p.origin p.code;
  let clock = Cycles.Clock.create () in
  let cpu = Vm.Cpu.create ~mem ~mode ~clock in
  Vm.Cpu.set_pc cpu p.entry;
  Vm.Cpu.set_sp cpu 0x8000;
  setup cpu;
  let exit = Vm.Cpu.run cpu in
  (exit, cpu, mem, clock)

let check_halt_r0 name expected (exit, cpu, _, _) =
  (match exit with
  | Vm.Cpu.Halt -> ()
  | other -> Alcotest.failf "%s: unexpected exit %s" name (Format.asprintf "%a" Vm.Cpu.pp_exit other));
  Alcotest.(check int64) name expected (Vm.Cpu.get_reg cpu 0)

(* ------------------------------------------------------------------ *)
(* Memory                                                               *)
(* ------------------------------------------------------------------ *)

let test_mem_rw_roundtrip () =
  let m = Vm.Memory.create ~size:64 in
  Vm.Memory.write_u8 m 0 0xAB;
  Vm.Memory.write_u16 m 2 0xBEEF;
  Vm.Memory.write_u32 m 4 0xDEADBEEF;
  Vm.Memory.write_u64 m 8 0x1122334455667788L;
  Alcotest.(check int) "u8" 0xAB (Vm.Memory.read_u8 m 0);
  Alcotest.(check int) "u16" 0xBEEF (Vm.Memory.read_u16 m 2);
  Alcotest.(check int) "u32" 0xDEADBEEF (Vm.Memory.read_u32 m 4);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Vm.Memory.read_u64 m 8)

let test_mem_little_endian () =
  let m = Vm.Memory.create ~size:16 in
  Vm.Memory.write_u32 m 0 0x04030201;
  Alcotest.(check int) "byte 0" 1 (Vm.Memory.read_u8 m 0);
  Alcotest.(check int) "byte 3" 4 (Vm.Memory.read_u8 m 3)

let test_mem_bounds () =
  let m = Vm.Memory.create ~size:16 in
  Alcotest.check_raises "oob read" (Vm.Memory.Fault { addr = 16; size = 1 }) (fun () ->
      ignore (Vm.Memory.read_u8 m 16));
  Alcotest.check_raises "straddling u64" (Vm.Memory.Fault { addr = 12; size = 8 })
    (fun () -> ignore (Vm.Memory.read_u64 m 12));
  Alcotest.check_raises "negative" (Vm.Memory.Fault { addr = -1; size = 1 }) (fun () ->
      ignore (Vm.Memory.read_u8 m (-1)))

let test_mem_bounds_overflow () =
  (* addr + size near max_int must fault, not wrap negative and pass the
     bounds check *)
  let m = Vm.Memory.create ~size:16 in
  Alcotest.check_raises "u64 read at max_int-4"
    (Vm.Memory.Fault { addr = max_int - 4; size = 8 })
    (fun () -> ignore (Vm.Memory.read_u64 m (max_int - 4)));
  Alcotest.check_raises "u8 read at max_int"
    (Vm.Memory.Fault { addr = max_int; size = 1 })
    (fun () -> ignore (Vm.Memory.read_u8 m max_int));
  Alcotest.check_raises "u64 write at max_int-4"
    (Vm.Memory.Fault { addr = max_int - 4; size = 8 })
    (fun () -> Vm.Memory.write_u64 m (max_int - 4) 1L);
  Alcotest.check_raises "bytes write at max_int-7"
    (Vm.Memory.Fault { addr = max_int - 7; size = 8 })
    (fun () -> Vm.Memory.write_bytes m ~off:(max_int - 7) (Bytes.make 8 'x'))

let test_mem_cstring () =
  let m = Vm.Memory.create ~size:32 in
  Vm.Memory.write_bytes m ~off:4 (Bytes.of_string "hello\000");
  Alcotest.(check string) "cstring" "hello" (Vm.Memory.read_cstring m ~off:4 ~max:16)

let test_mem_cstring_unterminated () =
  let m = Vm.Memory.create ~size:8 in
  Vm.Memory.write_bytes m ~off:0 (Bytes.of_string "xxxxxxxx");
  match Vm.Memory.read_cstring m ~off:0 ~max:8 with
  | exception Vm.Memory.Fault _ -> ()
  | s -> Alcotest.failf "expected fault, got %S" s

let test_mem_fill_zero () =
  let m = Vm.Memory.create ~size:64 in
  Vm.Memory.write_u64 m 8 0x1234L;
  Vm.Memory.fill_zero m;
  Alcotest.(check int64) "zeroed" 0L (Vm.Memory.read_u64 m 8)

let test_mem_snapshot_restore () =
  let m = Vm.Memory.create ~size:64 in
  Vm.Memory.write_u64 m 0 42L;
  let snap = Vm.Memory.snapshot m in
  Vm.Memory.write_u64 m 0 7L;
  Vm.Memory.restore m snap;
  Alcotest.(check int64) "restored" 42L (Vm.Memory.read_u64 m 0)

(* ------------------------------------------------------------------ *)
(* Paged store: residency, CoW, page cache                              *)
(* ------------------------------------------------------------------ *)

let test_mem_lazy_residency () =
  let m = Vm.Memory.create ~size:(64 * 1024) in
  (* reads never materialize: a fresh memory stays entirely zero pages *)
  Alcotest.(check int64) "reads zero" 0L (Vm.Memory.read_u64 m 0x8000);
  let s = Vm.Memory.page_stats m in
  Alcotest.(check int) "no resident pages after reads" 0 s.Vm.Memory.resident_pages;
  Alcotest.(check int) "16 pages total" 16 s.Vm.Memory.total_pages;
  (* one store materializes exactly one page, as a demand-zero fill *)
  Vm.Memory.write_u8 m 0x8000 1;
  let s = Vm.Memory.page_stats m in
  Alcotest.(check int) "one owned page" 1 s.Vm.Memory.resident_pages;
  Alcotest.(check int) "counted as zero fill" 1 s.Vm.Memory.zero_fills;
  Alcotest.(check int) "not a CoW fault" 0 s.Vm.Memory.cow_faults;
  Alcotest.(check int) "resident bytes = one page" Vm.Memory.page_size
    (Vm.Memory.resident_bytes m)

let test_mem_cow_fault_and_hook () =
  let m = Vm.Memory.create ~size:(64 * 1024) in
  Vm.Memory.write_u64 m 0 0xAAL;
  Vm.Memory.write_u64 m 8192 0xBBL;
  let img = Vm.Memory.capture m in
  (* capture published both pages: the live memory now shares them *)
  let s = Vm.Memory.page_stats m in
  Alcotest.(check int) "owned pages published" 0 s.Vm.Memory.resident_pages;
  Alcotest.(check int) "two shared pages" 2 s.Vm.Memory.shared_pages;
  Alcotest.(check int) "image holds both" 2 (Vm.Memory.image_resident_pages img);
  let faults = ref [] in
  Vm.Memory.set_fault_hook m
    (Some (fun ~shared ~page -> faults := (shared, page) :: !faults));
  (* writing a shared page breaks it private and fires the hook *)
  Vm.Memory.write_u8 m 8200 7;
  Alcotest.(check (list (pair bool int))) "CoW hook fired" [ (true, 2) ] !faults;
  let s = Vm.Memory.page_stats m in
  Alcotest.(check int) "one CoW fault" 1 s.Vm.Memory.cow_faults;
  (* the break copied the page: old content preserved, new byte landed *)
  Alcotest.(check int) "new byte landed" 7 (Vm.Memory.read_u8 m 8200);
  Alcotest.(check int64) "rest of page preserved" 0xBBL (Vm.Memory.read_u64 m 8192);
  let m2 = Vm.Memory.create ~size:(64 * 1024) in
  ignore (Vm.Memory.restore_image m2 img);
  Alcotest.(check int64) "image unaffected by the break" 0xBBL (Vm.Memory.read_u64 m2 8192)

let test_mem_straddling_write_dirties_both_pages () =
  let m = Vm.Memory.create ~size:(64 * 1024) in
  Vm.Memory.clear_dirty m;
  let addr = Vm.Memory.page_size - 4 in
  Vm.Memory.write_u64 m addr 0x1122334455667788L;
  Alcotest.(check int64) "straddling roundtrip" 0x1122334455667788L
    (Vm.Memory.read_u64 m addr);
  Alcotest.(check (list int)) "both pages dirty" [ 0; 1 ] (Vm.Memory.dirty_pages m)

let test_mem_page_cache_dedup () =
  Vm.Memory.Page_cache.reset ();
  let fill m = Vm.Memory.write_bytes m ~off:0 (Bytes.make 8192 '\x42') in
  let a = Vm.Memory.create ~size:(64 * 1024) in
  fill a;
  ignore (Vm.Memory.capture a);
  let entries_after_first = Vm.Memory.Page_cache.entries () in
  (* both 0x42 pages have identical content: one cache entry *)
  Alcotest.(check int) "identical pages intern once" 1 entries_after_first;
  let b = Vm.Memory.create ~size:(64 * 1024) in
  fill b;
  ignore (Vm.Memory.capture b);
  Alcotest.(check int) "second memory adds nothing" entries_after_first
    (Vm.Memory.Page_cache.entries ());
  Alcotest.(check bool) "dedup hits recorded" true (Vm.Memory.Page_cache.hits () > 0)

let test_mem_restore_cow_byte_identical () =
  (* satellite: the CoW restore path must reproduce the captured bytes
     exactly, without intermediate copies *)
  let m = Vm.Memory.create ~size:(64 * 1024) in
  for i = 0 to (16 * 1024) - 1 do
    Vm.Memory.write_u8 m i (i * 31 land 0xFF)
  done;
  let img = Vm.Memory.capture m in
  let golden = Vm.Memory.snapshot m in
  Vm.Memory.clear_dirty m;
  (* dirty a few pages, including one past the data *)
  Vm.Memory.write_u64 m 100 0xDEADL;
  Vm.Memory.write_u64 m 9000 0xBEEFL;
  Vm.Memory.write_u64 m 40000 0xCAFEL;
  let pages, bytes = Vm.Memory.restore_image_cow m img in
  Alcotest.(check int) "three pages restored" 3 pages;
  Alcotest.(check int) "logical bytes = pages * page_size"
    (3 * Vm.Memory.page_size) bytes;
  Alcotest.(check bool) "restored bytes identical" true
    (Bytes.equal golden (Vm.Memory.snapshot m))

let test_mem_eager_and_lazy_restore_identical () =
  let m = Vm.Memory.create ~size:(64 * 1024) in
  for i = 0 to 999 do
    Vm.Memory.write_u8 m (i * 17) ((i * 7) land 0xFF)
  done;
  let img = Vm.Memory.capture m in
  let golden = Vm.Memory.snapshot m in
  let lazy_m = Vm.Memory.create ~size:(64 * 1024) in
  let eager_m = Vm.Memory.create ~size:(64 * 1024) in
  let f1 = Vm.Memory.restore_image lazy_m img in
  let f2 = Vm.Memory.restore_image ~eager:true eager_m img in
  Alcotest.(check int) "same footprint" f1 f2;
  Alcotest.(check bool) "lazy restore byte-identical" true
    (Bytes.equal golden (Vm.Memory.snapshot lazy_m));
  Alcotest.(check bool) "eager restore byte-identical" true
    (Bytes.equal golden (Vm.Memory.snapshot eager_m));
  (* eager owns its pages; lazy still references shared ones *)
  Alcotest.(check int) "lazy holds no private pages" 0
    (Vm.Memory.page_stats lazy_m).Vm.Memory.resident_pages;
  Alcotest.(check bool) "eager materialized copies" true
    ((Vm.Memory.page_stats eager_m).Vm.Memory.resident_pages > 0)

let test_mem_reset_zero_drops_residency () =
  let m = Vm.Memory.create ~size:(64 * 1024) in
  Vm.Memory.write_u64 m 0 1L;
  Vm.Memory.write_u64 m 30000 2L;
  Vm.Memory.reset_zero m;
  Alcotest.(check int) "no resident pages" 0
    (Vm.Memory.page_stats m).Vm.Memory.resident_pages;
  Alcotest.(check int) "dirty set clear" 0 (Vm.Memory.dirty_count m);
  Alcotest.(check int64) "reads zero" 0L (Vm.Memory.read_u64 m 30000)

(* ------------------------------------------------------------------ *)
(* Modes                                                                *)
(* ------------------------------------------------------------------ *)

let test_mode_masks () =
  Alcotest.(check int64) "real" 0x1234L (Vm.Modes.mask Vm.Modes.Real 0xABCD1234L);
  Alcotest.(check int64) "protected" 0xABCD1234L
    (Vm.Modes.mask Vm.Modes.Protected 0x99ABCD1234L);
  Alcotest.(check int64) "long" Int64.min_int (Vm.Modes.mask Vm.Modes.Long Int64.min_int)

let test_mode_sext () =
  Alcotest.(check int64) "real negative" (-1L) (Vm.Modes.sext Vm.Modes.Real 0xFFFFL);
  Alcotest.(check int64) "protected negative" (-1L)
    (Vm.Modes.sext Vm.Modes.Protected 0xFFFFFFFFL);
  Alcotest.(check int64) "positive unchanged" 5L (Vm.Modes.sext Vm.Modes.Real 5L)

let test_mode_limits () =
  Alcotest.(check int) "real 1MB" (1 lsl 20) (Vm.Modes.address_limit Vm.Modes.Real);
  Alcotest.(check int) "long 1GB mapped" (1 lsl 30) (Vm.Modes.address_limit Vm.Modes.Long)

(* ------------------------------------------------------------------ *)
(* GDT + paging                                                         *)
(* ------------------------------------------------------------------ *)

let test_gdt_descriptor_roundtrip () =
  let d = Vm.Gdt.flat_code ~long:true in
  let d' = Vm.Gdt.decode_descriptor (Vm.Gdt.encode_descriptor d) in
  Alcotest.(check bool) "executable" d.executable d'.executable;
  Alcotest.(check bool) "long bit" d.long_mode d'.long_mode;
  Alcotest.(check int) "limit" d.limit d'.limit;
  Alcotest.(check int) "base" d.base d'.base

let test_gdt_known_encoding () =
  (* Flat 32-bit code segment is the classic 0x00CF9A000000FFFF. *)
  let q = Vm.Gdt.encode_descriptor (Vm.Gdt.flat_code ~long:false) in
  Alcotest.(check int64) "classic descriptor" 0x00CF9A000000FFFFL q

let test_gdt_write () =
  let m = Vm.Memory.create ~size:4096 in
  let n = Vm.Gdt.write m ~long:true in
  Alcotest.(check int) "24 bytes" 24 n;
  Alcotest.(check int64) "null descriptor" 0L (Vm.Memory.read_u64 m Vm.Gdt.base_addr)

let test_paging_identity () =
  let m = Vm.Memory.create ~size:(64 * 1024) in
  let stores = Vm.Paging.build_identity_map m in
  Alcotest.(check int) "514 stores (1 PML4 + 1 PDPT + 512 PD)" 514 stores;
  List.iter
    (fun addr ->
      match Vm.Paging.translate m addr with
      | Some phys -> Alcotest.(check int) (Printf.sprintf "identity at 0x%x" addr) addr phys
      | None -> Alcotest.failf "unmapped at 0x%x" addr)
    [ 0; 0x8000; 0x1F_FFFF; 0x20_0000; 0x3FFF_FFFF ]

let test_paging_unmapped_beyond_1gb () =
  let m = Vm.Memory.create ~size:(64 * 1024) in
  ignore (Vm.Paging.build_identity_map m);
  Alcotest.(check bool) "1GB unmapped" true (Vm.Paging.translate m (1 lsl 30) = None)

(* ------------------------------------------------------------------ *)
(* Boot                                                                 *)
(* ------------------------------------------------------------------ *)

let boot target =
  let mem = Vm.Memory.create ~size:(64 * 1024) in
  let clock = Cycles.Clock.create () in
  let rng = Cycles.Rng.create ~seed:1 in
  let comps = Vm.Boot.perform ~mem ~clock ~rng ~target in
  (comps, clock, mem)

let test_boot_real_minimal () =
  let comps, _, _ = boot Vm.Modes.Real in
  Alcotest.(check int) "only first instruction" 1 (List.length comps)

let test_boot_protected_components () =
  let comps, _, _ = boot Vm.Modes.Protected in
  let names = List.map (fun c -> c.Vm.Boot.name) comps in
  Alcotest.(check bool) "no paging" true (not (List.mem "paging ident. map" names));
  Alcotest.(check bool) "has gdt" true (List.mem "load 32-bit gdt" names)

let test_boot_long_components () =
  let comps, _, mem = boot Vm.Modes.Long in
  let names = List.map (fun c -> c.Vm.Boot.name) comps in
  List.iter
    (fun n -> Alcotest.(check bool) n true (List.mem n names))
    Vm.Boot.component_names;
  (* the page tables must really be there *)
  Alcotest.(check bool) "identity map built" true (Vm.Paging.translate mem 0x8000 = Some 0x8000)

let test_boot_cost_ordering () =
  let real, _, _ = boot Vm.Modes.Real in
  let prot, _, _ = boot Vm.Modes.Protected in
  let long, _, _ = boot Vm.Modes.Long in
  let t c = Vm.Boot.total_cost c in
  Alcotest.(check bool) "real < protected" true (t real < t prot);
  Alcotest.(check bool) "protected < long" true (t prot < t long)

let test_boot_long_total_near_paper () =
  (* Table 1 sums to ~36.5K cycles; allow jitter. *)
  let comps, clock, _ = boot Vm.Modes.Long in
  let total = Vm.Boot.total_cost comps in
  Alcotest.(check bool)
    (Printf.sprintf "long boot %d cycles in [30K, 45K]" total)
    true
    (total > 30_000 && total < 45_000);
  Alcotest.(check int64) "clock charged" (Int64.of_int total) (Cycles.Clock.now clock)

(* ------------------------------------------------------------------ *)
(* CPU semantics                                                        *)
(* ------------------------------------------------------------------ *)

let test_cpu_arith () =
  run_asm "mov r0, 7\nmov r1, 5\nadd r0, r1\nmul r0, 3\nsub r0, 1\nhlt"
  |> check_halt_r0 "(7+5)*3-1" 35L

let test_cpu_div_rem () =
  run_asm "mov r0, 17\ndiv r0, 5\nmov r1, 17\nrem r1, 5\nadd r0, r1\nhlt"
  |> check_halt_r0 "17/5 + 17%5" 5L

let test_cpu_div_by_zero_faults () =
  let exit, _, _, _ = run_asm "mov r0, 1\nmov r1, 0\ndiv r0, r1\nhlt" in
  match exit with
  | Vm.Cpu.Fault (Vm.Cpu.Division_by_zero _) -> ()
  | other -> Alcotest.failf "expected div fault, got %s" (Format.asprintf "%a" Vm.Cpu.pp_exit other)

let test_cpu_signed_division () =
  (* -7 / 2 = -3 in long mode (round toward zero) *)
  run_asm "mov r0, -7\ndiv r0, 2\nhlt" |> fun (exit, cpu, m, c) ->
  check_halt_r0 "-7/2" (-3L) (exit, cpu, m, c)

let test_cpu_logic_shifts () =
  run_asm "mov r0, 0xF0\nand r0, 0x3C\nor r0, 1\nxor r0, 0xFF\nshl r0, 4\nhlt"
  |> check_halt_r0 "logic" (Int64.of_int (((0xF0 land 0x3C lor 1) lxor 0xFF) lsl 4))

let test_cpu_sar_vs_shr () =
  let exit, cpu, _, _ = run_asm "mov r0, -16\nsar r0, 2\nmov r1, -16\nshr r1, 60\nhlt" in
  (match exit with Vm.Cpu.Halt -> () | _ -> Alcotest.fail "halt expected");
  Alcotest.(check int64) "sar" (-4L) (Vm.Cpu.get_reg cpu 0);
  Alcotest.(check int64) "shr logical" 15L (Vm.Cpu.get_reg cpu 1)

let test_cpu_real_mode_wraps_16bit () =
  let exit, cpu, _, _ =
    run_asm ~mode:Vm.Modes.Real "mov r0, 65535\nadd r0, 1\nhlt"
  in
  (match exit with Vm.Cpu.Halt -> () | _ -> Alcotest.fail "halt expected");
  Alcotest.(check int64) "wraps to 0" 0L (Vm.Cpu.get_reg cpu 0)

let test_cpu_protected_mode_wraps_32bit () =
  let exit, cpu, _, _ =
    run_asm ~mode:Vm.Modes.Protected "mov r0, 0xFFFFFFFF\nadd r0, 1\nhlt"
  in
  (match exit with Vm.Cpu.Halt -> () | _ -> Alcotest.fail "halt expected");
  Alcotest.(check int64) "wraps to 0" 0L (Vm.Cpu.get_reg cpu 0)

let test_cpu_signed_compare_16bit () =
  (* In real mode, 0x8000 is negative; signed jlt must fire. *)
  let src = "mov r0, 0x8000\ncmp r0, 0\njlt neg\nmov r0, 1\nhlt\nneg:\nmov r0, 2\nhlt" in
  let exit, cpu, _, _ = run_asm ~mode:Vm.Modes.Real src in
  (match exit with Vm.Cpu.Halt -> () | _ -> Alcotest.fail "halt expected");
  Alcotest.(check int64) "took negative branch" 2L (Vm.Cpu.get_reg cpu 0)

let test_cpu_unsigned_compare () =
  let src = "mov r0, -1\ncmp r0, 1\njugt big\nmov r0, 1\nhlt\nbig:\nmov r0, 2\nhlt" in
  run_asm src |> check_halt_r0 "unsigned -1 > 1" 2L

let test_cpu_loop () =
  (* sum 1..10 *)
  let src =
    {|
  mov r0, 0
  mov r1, 10
loop:
  add r0, r1
  sub r1, 1
  cmp r1, 0
  jgt loop
  hlt
|}
  in
  run_asm src |> check_halt_r0 "sum 1..10" 55L

let test_cpu_call_ret () =
  let src =
    {|
  mov r0, 5
  call double
  call double
  hlt
double:
  add r0, r0
  ret
|}
  in
  run_asm src |> check_halt_r0 "5*4 via calls" 20L

let test_cpu_recursive_fib () =
  (* fib(10) = 55 with a genuinely recursive implementation *)
  let src =
    {|
  mov r0, 10
  call fib
  hlt
fib:
  cmp r0, 2
  jlt base
  push r0
  sub r0, 1
  call fib
  pop r1
  push r0
  mov r0, r1
  sub r0, 2
  call fib
  pop r1
  add r0, r1
  ret
base:
  ret
|}
  in
  run_asm src |> check_halt_r0 "fib(10)" 55L

let test_cpu_memory_ops () =
  let src =
    {|
  mov r1, 0x100
  st64 [r1], 0x1122334455667788
  ld8 r0, [r1]
  ld16 r2, [r1]
  ld32 r3, [r1]
  hlt
|}
  in
  let exit, cpu, _, _ = run_asm src in
  (match exit with Vm.Cpu.Halt -> () | _ -> Alcotest.fail "halt");
  Alcotest.(check int64) "ld8 zero-extends" 0x88L (Vm.Cpu.get_reg cpu 0);
  Alcotest.(check int64) "ld16" 0x7788L (Vm.Cpu.get_reg cpu 2);
  Alcotest.(check int64) "ld32" 0x55667788L (Vm.Cpu.get_reg cpu 3)

let test_cpu_push_pop_lea () =
  let src = "lea r1, [r15-16]\npush 42\npop r0\nhlt" in
  let exit, cpu, _, _ = run_asm src in
  (match exit with Vm.Cpu.Halt -> () | _ -> Alcotest.fail "halt");
  Alcotest.(check int64) "pop" 42L (Vm.Cpu.get_reg cpu 0);
  Alcotest.(check int64) "lea" (Int64.of_int (0x8000 - 16)) (Vm.Cpu.get_reg cpu 1)

let test_cpu_oob_access_faults () =
  let exit, _, _, _ = run_asm ~mem_size:(64 * 1024) "mov r1, 0x20000\nld64 r0, [r1]\nhlt" in
  match exit with
  | Vm.Cpu.Fault (Vm.Cpu.Memory_oob _) -> ()
  | other -> Alcotest.failf "expected oob fault, got %s" (Format.asprintf "%a" Vm.Cpu.pp_exit other)

let test_cpu_mode_limit_faults_long () =
  (* address beyond the 1 GB identity map page-faults in long mode *)
  let exit, _, _, _ = run_asm "mov r1, 0x40000000\nld8 r0, [r1]\nhlt" in
  match exit with
  | Vm.Cpu.Fault (Vm.Cpu.Page_fault _) -> ()
  | other -> Alcotest.failf "expected page fault, got %s" (Format.asprintf "%a" Vm.Cpu.pp_exit other)

let test_cpu_real_mode_limit () =
  let exit, _, _, _ =
    run_asm ~mode:Vm.Modes.Real ~mem_size:(2 lsl 20) "mov r1, 0x0\nld8 r0, [r1]\nhlt"
  in
  (* address computations are masked to 16 bits, so large addresses cannot
     even be formed; the plain access must succeed *)
  match exit with Vm.Cpu.Halt -> () | _ -> Alcotest.fail "expected halt"

let test_cpu_invalid_opcode_faults () =
  let mem = Vm.Memory.create ~size:4096 in
  Vm.Memory.write_u8 mem 0 0xEE;
  let clock = Cycles.Clock.create () in
  let cpu = Vm.Cpu.create ~mem ~mode:Vm.Modes.Long ~clock in
  match Vm.Cpu.run cpu with
  | Vm.Cpu.Fault (Vm.Cpu.Invalid_opcode _) -> ()
  | other -> Alcotest.failf "expected invalid opcode, got %s" (Format.asprintf "%a" Vm.Cpu.pp_exit other)

let test_cpu_out_exit_resumable () =
  let p = Asm.assemble_string "mov r0, 9\nout 1, r0\nmov r1, r0\nhlt" in
  let mem = Vm.Memory.create ~size:(64 * 1024) in
  Vm.Memory.write_bytes mem ~off:p.origin p.code;
  let clock = Cycles.Clock.create () in
  let cpu = Vm.Cpu.create ~mem ~mode:Vm.Modes.Long ~clock in
  Vm.Cpu.set_pc cpu p.entry;
  Vm.Cpu.set_sp cpu 0x8000;
  (match Vm.Cpu.run cpu with
  | Vm.Cpu.Io_out { port = 1; value = 9L } -> ()
  | other -> Alcotest.failf "expected out exit, got %s" (Format.asprintf "%a" Vm.Cpu.pp_exit other));
  (* host writes a result and resumes *)
  Vm.Cpu.set_reg cpu 0 77L;
  (match Vm.Cpu.run cpu with
  | Vm.Cpu.Halt -> ()
  | _ -> Alcotest.fail "expected halt after resume");
  Alcotest.(check int64) "guest saw host value" 77L (Vm.Cpu.get_reg cpu 1)

let test_cpu_fuel () =
  (* an infinite loop must be stopped by the fuel bound *)
  let p = Asm.assemble_string "spin:\njmp spin" in
  let mem = Vm.Memory.create ~size:(64 * 1024) in
  Vm.Memory.write_bytes mem ~off:p.origin p.code;
  let cpu = Vm.Cpu.create ~mem ~mode:Vm.Modes.Long ~clock:(Cycles.Clock.create ()) in
  Vm.Cpu.set_pc cpu p.entry;
  match Vm.Cpu.run ~fuel:100 cpu with
  | Vm.Cpu.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected out of fuel"

let test_cpu_rdtsc_monotone () =
  let src = "rdtsc r1\nmov r2, 0\nadd r2, 1\nrdtsc r3\nhlt" in
  let exit, cpu, _, _ = run_asm src in
  (match exit with Vm.Cpu.Halt -> () | _ -> Alcotest.fail "halt");
  Alcotest.(check bool) "time advanced" true
    (Int64.compare (Vm.Cpu.get_reg cpu 3) (Vm.Cpu.get_reg cpu 1) > 0)

let test_cpu_charges_cycles () =
  let _, _, _, clock = run_asm "mov r0, 1\nadd r0, 2\nhlt" in
  Alcotest.(check bool) "cycles charged" true (Cycles.Clock.now clock > 0L)

(* spin guard: default fuel test also proves jmp-to-self does not hang
   because of the fuel bound; keep it fast by using explicit fuel above. *)

(* ------------------------------------------------------------------ *)
(* Interpreter-semantics regressions (ISSUE 7 satellites)               *)
(* ------------------------------------------------------------------ *)

let test_cpu_check_range_overflow () =
  (* a base register near max_int must fault at the mode limit, not wrap
     [addr + size] negative and slip past the check into a host error *)
  let exit, _, _, _ =
    run_asm
      ~setup:(fun cpu -> Vm.Cpu.set_reg cpu 1 (Int64.of_int max_int))
      "ld64 r0, [r1]\nhlt"
  in
  match exit with
  | Vm.Cpu.Fault (Vm.Cpu.Page_fault { addr }) ->
      Alcotest.(check int) "faulting address" max_int addr
  | other ->
      Alcotest.failf "expected page fault, got %s"
        (Format.asprintf "%a" Vm.Cpu.pp_exit other)

let test_cpu_shift_count_mode_mask () =
  (* hardware masks shift counts to the operand width: 31 outside long
     mode, 63 in it *)
  let exit, cpu, _, _ =
    run_asm ~mode:Vm.Modes.Protected
      "mov r0, 1\nshl r0, 33\nmov r1, 1\nshl r1, 32\nmov r2, 0x80000000\nsar r2, 63\nhlt"
  in
  (match exit with Vm.Cpu.Halt -> () | _ -> Alcotest.fail "halt");
  Alcotest.(check int64) "protected: count 33 acts as 1" 2L (Vm.Cpu.get_reg cpu 0);
  Alcotest.(check int64) "protected: count 32 acts as 0" 1L (Vm.Cpu.get_reg cpu 1);
  Alcotest.(check int64) "protected: sar 63 acts as 31" 0xFFFFFFFFL (Vm.Cpu.get_reg cpu 2);
  let exit, cpu, _, _ =
    run_asm ~mode:Vm.Modes.Real ~mem_size:(2 lsl 20) "mov r0, 1\nshl r0, 32\nhlt"
  in
  (match exit with Vm.Cpu.Halt -> () | _ -> Alcotest.fail "halt");
  Alcotest.(check int64) "real: count 32 acts as 0" 1L (Vm.Cpu.get_reg cpu 0);
  let exit, cpu, _, _ = run_asm "mov r0, 1\nshl r0, 66\nmov r1, 1\nshl r1, 32\nhlt" in
  (match exit with Vm.Cpu.Halt -> () | _ -> Alcotest.fail "halt");
  Alcotest.(check int64) "long: count 66 acts as 2" 4L (Vm.Cpu.get_reg cpu 0);
  Alcotest.(check int64) "long: count 32 shifts" 0x100000000L (Vm.Cpu.get_reg cpu 1)

let test_cpu_ret_masks_target_real () =
  (* memory can hold unmasked values: a 64-bit return address popped in
     real mode must be truncated to 16 bits (landing on zeroed memory =
     hlt), not jump to a truncated host-int address out of range *)
  let exit, _, _, _ =
    run_asm ~mode:Vm.Modes.Real
      ~setup:(fun cpu ->
        Vm.Cpu.set_sp cpu 0x7000;
        Vm.Memory.write_u64 (Vm.Cpu.mem cpu) 0x7000 0x12345L)
      "ret"
  in
  match exit with
  | Vm.Cpu.Halt -> ()
  | other ->
      Alcotest.failf "expected halt at masked target, got %s"
        (Format.asprintf "%a" Vm.Cpu.pp_exit other)

let test_cpu_ret_oob_faults_at_limit () =
  (* a long-mode return address beyond the host int range clamps to the
     architectural limit and faults there, like jmp out of range *)
  let exit, _, _, _ =
    run_asm
      ~setup:(fun cpu ->
        Vm.Cpu.set_sp cpu 0x7000;
        Vm.Memory.write_u64 (Vm.Cpu.mem cpu) 0x7000 Int64.min_int)
      "ret"
  in
  match exit with
  | Vm.Cpu.Fault (Vm.Cpu.Page_fault { addr }) ->
      Alcotest.(check int) "faults at the 1 GB limit" (1 lsl 30) addr
  | other ->
      Alcotest.failf "expected page fault, got %s"
        (Format.asprintf "%a" Vm.Cpu.pp_exit other)

let test_cpu_callr_oob_faults_at_limit () =
  let exit, _, _, _ =
    run_asm ~setup:(fun cpu -> Vm.Cpu.set_reg cpu 1 Int64.min_int) "callr r1\nhlt"
  in
  match exit with
  | Vm.Cpu.Fault (Vm.Cpu.Page_fault { addr }) ->
      Alcotest.(check int) "faults at the 1 GB limit" (1 lsl 30) addr
  | other ->
      Alcotest.failf "expected page fault, got %s"
        (Format.asprintf "%a" Vm.Cpu.pp_exit other)

(* ------------------------------------------------------------------ *)
(* Memory content versions (translation-cache invalidation feed)        *)
(* ------------------------------------------------------------------ *)

let test_mem_page_versions () =
  let m = Vm.Memory.create ~size:(4 * 4096) in
  let v0 = Vm.Memory.page_version m 0 in
  Vm.Memory.write_u8 m 0 1;
  Alcotest.(check bool) "write bumps the page version" true
    (Vm.Memory.page_version m 0 > v0);
  let v0 = Vm.Memory.page_version m 0 and v1 = Vm.Memory.page_version m 1 in
  Vm.Memory.clear_dirty m;
  Alcotest.(check int) "clear_dirty leaves versions alone" v0
    (Vm.Memory.page_version m 0);
  Vm.Memory.write_u16 m 4095 7;
  Alcotest.(check bool) "straddling write bumps both pages" true
    (Vm.Memory.page_version m 0 > v0 && Vm.Memory.page_version m 1 > v1);
  let e0 = Vm.Memory.epoch m in
  Vm.Memory.reset_zero m;
  Alcotest.(check bool) "reset_zero bumps the epoch" true (Vm.Memory.epoch m > e0)

let test_mem_restore_cow_bumps_versions () =
  let m = Vm.Memory.create ~size:(4 * 4096) in
  Vm.Memory.write_u8 m 0 0xAA;
  let img = Vm.Memory.capture m in
  Vm.Memory.clear_dirty m;
  Vm.Memory.write_u8 m 4096 1;
  let v0 = Vm.Memory.page_version m 0 and v1 = Vm.Memory.page_version m 1 in
  let pages, _ = Vm.Memory.restore_image_cow m img in
  Alcotest.(check int) "one dirty page restored" 1 pages;
  Alcotest.(check int) "clean page version unchanged" v0 (Vm.Memory.page_version m 0);
  Alcotest.(check bool) "restored page version bumped" true
    (Vm.Memory.page_version m 1 > v1)

let () =
  Alcotest.run "vm"
    [
      ( "memory",
        [
          Alcotest.test_case "rw roundtrip" `Quick test_mem_rw_roundtrip;
          Alcotest.test_case "little endian" `Quick test_mem_little_endian;
          Alcotest.test_case "bounds" `Quick test_mem_bounds;
          Alcotest.test_case "bounds overflow" `Quick test_mem_bounds_overflow;
          Alcotest.test_case "cstring" `Quick test_mem_cstring;
          Alcotest.test_case "cstring unterminated" `Quick test_mem_cstring_unterminated;
          Alcotest.test_case "fill zero" `Quick test_mem_fill_zero;
          Alcotest.test_case "snapshot/restore" `Quick test_mem_snapshot_restore;
        ] );
      ( "paged-store",
        [
          Alcotest.test_case "lazy residency" `Quick test_mem_lazy_residency;
          Alcotest.test_case "CoW fault + hook" `Quick test_mem_cow_fault_and_hook;
          Alcotest.test_case "straddling write dirties both pages" `Quick
            test_mem_straddling_write_dirties_both_pages;
          Alcotest.test_case "page cache dedup" `Quick test_mem_page_cache_dedup;
          Alcotest.test_case "restore_cow byte-identical" `Quick
            test_mem_restore_cow_byte_identical;
          Alcotest.test_case "eager vs lazy restore" `Quick
            test_mem_eager_and_lazy_restore_identical;
          Alcotest.test_case "reset_zero drops residency" `Quick
            test_mem_reset_zero_drops_residency;
        ] );
      ( "modes",
        [
          Alcotest.test_case "masks" `Quick test_mode_masks;
          Alcotest.test_case "sign extension" `Quick test_mode_sext;
          Alcotest.test_case "address limits" `Quick test_mode_limits;
        ] );
      ( "gdt-paging",
        [
          Alcotest.test_case "descriptor roundtrip" `Quick test_gdt_descriptor_roundtrip;
          Alcotest.test_case "known encoding" `Quick test_gdt_known_encoding;
          Alcotest.test_case "gdt write" `Quick test_gdt_write;
          Alcotest.test_case "identity map" `Quick test_paging_identity;
          Alcotest.test_case "unmapped beyond 1GB" `Quick test_paging_unmapped_beyond_1gb;
        ] );
      ( "boot",
        [
          Alcotest.test_case "real minimal" `Quick test_boot_real_minimal;
          Alcotest.test_case "protected components" `Quick test_boot_protected_components;
          Alcotest.test_case "long components" `Quick test_boot_long_components;
          Alcotest.test_case "cost ordering" `Quick test_boot_cost_ordering;
          Alcotest.test_case "long total near paper" `Quick test_boot_long_total_near_paper;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "arithmetic" `Quick test_cpu_arith;
          Alcotest.test_case "div/rem" `Quick test_cpu_div_rem;
          Alcotest.test_case "div by zero" `Quick test_cpu_div_by_zero_faults;
          Alcotest.test_case "signed division" `Quick test_cpu_signed_division;
          Alcotest.test_case "logic and shifts" `Quick test_cpu_logic_shifts;
          Alcotest.test_case "sar vs shr" `Quick test_cpu_sar_vs_shr;
          Alcotest.test_case "real mode wraps" `Quick test_cpu_real_mode_wraps_16bit;
          Alcotest.test_case "protected mode wraps" `Quick test_cpu_protected_mode_wraps_32bit;
          Alcotest.test_case "signed compare 16-bit" `Quick test_cpu_signed_compare_16bit;
          Alcotest.test_case "unsigned compare" `Quick test_cpu_unsigned_compare;
          Alcotest.test_case "loop" `Quick test_cpu_loop;
          Alcotest.test_case "call/ret" `Quick test_cpu_call_ret;
          Alcotest.test_case "recursive fib" `Quick test_cpu_recursive_fib;
          Alcotest.test_case "memory ops" `Quick test_cpu_memory_ops;
          Alcotest.test_case "push/pop/lea" `Quick test_cpu_push_pop_lea;
          Alcotest.test_case "oob faults" `Quick test_cpu_oob_access_faults;
          Alcotest.test_case "long mode page fault" `Quick test_cpu_mode_limit_faults_long;
          Alcotest.test_case "real mode ok" `Quick test_cpu_real_mode_limit;
          Alcotest.test_case "invalid opcode" `Quick test_cpu_invalid_opcode_faults;
          Alcotest.test_case "out exit resumable" `Quick test_cpu_out_exit_resumable;
          Alcotest.test_case "fuel bound" `Quick test_cpu_fuel;
          Alcotest.test_case "rdtsc monotone" `Quick test_cpu_rdtsc_monotone;
          Alcotest.test_case "cycles charged" `Quick test_cpu_charges_cycles;
          Alcotest.test_case "range check overflow" `Quick test_cpu_check_range_overflow;
          Alcotest.test_case "shift count mode mask" `Quick
            test_cpu_shift_count_mode_mask;
          Alcotest.test_case "ret masks target (real)" `Quick
            test_cpu_ret_masks_target_real;
          Alcotest.test_case "ret faults at limit" `Quick test_cpu_ret_oob_faults_at_limit;
          Alcotest.test_case "callr faults at limit" `Quick
            test_cpu_callr_oob_faults_at_limit;
        ] );
      ( "content-versions",
        [
          Alcotest.test_case "page versions" `Quick test_mem_page_versions;
          Alcotest.test_case "restore_cow bumps versions" `Quick
            test_mem_restore_cow_bumps_versions;
        ] );
    ]
