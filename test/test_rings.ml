(* Tests for the batched hypercall ring: the ABI guard rails (out-of-range
   numbers), adversarial ring states (wild buffer descriptors, racing
   cursors, vec/link misuse), partial drains under fuel pressure, CoW
   interaction, and the ring_corrupt chaos site. See docs/hypercalls.md. *)

module R = Wasp.Runtime

let exited = function R.Exited _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Out-of-range hypercall numbers (regression: used to fall through)    *)
(* ------------------------------------------------------------------ *)

(* issue hypercall 99, then exit with its result *)
let out_of_range_image nr =
  Wasp.Image.of_asm_string ~name:"hc-oob"
    (Printf.sprintf {|
  mov r0, %d
  out 1, r0
  mov r1, r0
  mov r0, 0
  out 1, r0
  hlt
|} nr)

let test_out_of_range_einval () =
  List.iter
    (fun nr ->
      let w = R.create () in
      let r = R.run w (out_of_range_image nr) ~policy:Wasp.Policy.allow_all () in
      Alcotest.(check int64)
        (Printf.sprintf "hc %d rejected with EINVAL" nr)
        Wasp.Hc.err_inval r.R.return_value)
    [ Wasp.Hc.count; 99 ]

(* ------------------------------------------------------------------ *)
(* Basic ring batch via hand-built SQEs                                 *)
(* ------------------------------------------------------------------ *)

(* SQE 0: clock(); SQE 1: exit(7); tail = 2; doorbell. Guest memory
   starts zeroed, so untouched SQE fields (flags, links) are 0. *)
let ring_basic_image =
  Wasp.Image.of_asm_string ~name:"ring-basic"
    {|
  mov r1, 0x4840   ; SQE 0
  mov r0, 12       ; clock
  st64 [r1], r0
  mov r1, 0x4880   ; SQE 1
  mov r0, 0        ; exit
  st64 [r1], r0
  mov r0, 7
  st64 [r1+16], r0 ; exit code
  mov r1, 0x4808   ; sq_tail
  mov r0, 2
  st64 [r1], r0
  mov r0, 14       ; ring_enter doorbell
  out 1, r0
  hlt
|}

let clock_policy = Wasp.Policy.of_list [ Wasp.Hc.clock ]

let test_ring_basic_batch () =
  let w = R.create () in
  let seen = ref None in
  let r =
    R.run w ring_basic_image ~policy:clock_policy
      ~inspect:(fun mem _cpu ->
        seen := Some (Wasp.Ring.cqe_result mem ~index:0L, Wasp.Ring.sq_head mem))
      ()
  in
  Alcotest.(check int64) "exit code from ring op" 7L r.R.return_value;
  Alcotest.(check bool) "exited" true (exited r.R.outcome);
  (* doorbell + clock + exit *)
  Alcotest.(check int) "three hypercalls" 3 r.R.hypercalls;
  match !seen with
  | None -> Alcotest.fail "inspect did not run"
  | Some (clock_res, head) ->
      Alcotest.(check bool) "clock CQE has a timestamp" true (clock_res >= 0L);
      Alcotest.(check int64) "sq_head consumed both ops" 2L head

(* ------------------------------------------------------------------ *)
(* Adversarial descriptors: each bad op fails alone, the batch goes on  *)
(* ------------------------------------------------------------------ *)

(* SQE 0: vectored write whose iov table lives far outside guest memory;
   SQE 1: FLAG_VEC on stat (only write/send may be vectored);
   SQE 2: FLAG_LINK with link word 0 (delta 0: self-link, invalid);
   SQE 3: exit(9) — still completes. *)
let ring_adversarial_image =
  Wasp.Image.of_asm_string ~name:"ring-bad-descriptors"
    {|
  mov r1, 0x4840
  mov r0, 2          ; write
  st64 [r1], r0
  mov r0, 4          ; FLAG_VEC
  st64 [r1+8], r0
  mov r0, 1
  st64 [r1+16], r0   ; fd
  mov r0, 0x700000
  st64 [r1+24], r0   ; iov table: out of bounds
  mov r0, 1
  st64 [r1+32], r0   ; iov_cnt
  mov r1, 0x4880
  mov r0, 5          ; stat
  st64 [r1], r0
  mov r0, 4          ; FLAG_VEC on stat: invalid
  st64 [r1+8], r0
  mov r1, 0x48c0
  mov r0, 12         ; clock
  st64 [r1], r0
  mov r0, 2          ; FLAG_LINK, link word 0 -> delta 0 -> invalid
  st64 [r1+8], r0
  mov r1, 0x4900
  mov r0, 0          ; exit
  st64 [r1], r0
  mov r0, 9
  st64 [r1+16], r0
  mov r1, 0x4808
  mov r0, 4          ; tail = 4
  st64 [r1], r0
  mov r0, 14
  out 1, r0
  hlt
|}

let test_ring_adversarial_descriptors () =
  let w = R.create () in
  let policy =
    Wasp.Policy.of_list [ Wasp.Hc.write; Wasp.Hc.stat; Wasp.Hc.clock ]
  in
  let cqes = ref [||] in
  let r =
    R.run w ring_adversarial_image ~policy
      ~inspect:(fun mem _cpu ->
        cqes :=
          Array.init 4 (fun i ->
              Wasp.Ring.cqe_result mem ~index:(Int64.of_int i)))
      ()
  in
  Alcotest.(check int64) "batch still reaches exit(9)" 9L r.R.return_value;
  match !cqes with
  | [| c0; c1; c2; _ |] ->
      Alcotest.(check int64) "wild iov table -> EFAULT on its op" Wasp.Hc.err_fault c0;
      Alcotest.(check int64) "vec on stat -> EINVAL" Wasp.Hc.err_inval c1;
      Alcotest.(check int64) "self-link -> EINVAL" Wasp.Hc.err_inval c2
  | _ -> Alcotest.fail "inspect did not capture CQEs"

(* ------------------------------------------------------------------ *)
(* Racing cursors: tail past head, tail behind head                     *)
(* ------------------------------------------------------------------ *)

let racing_tail_image tail_expr =
  Wasp.Image.of_asm_string ~name:"ring-racing-tail"
    (Printf.sprintf {|
%s
  mov r1, 0x4808
  st64 [r1], r0
  mov r0, 14
  out 1, r0
  hlt
|} tail_expr)

let check_ring_fault image =
  let w = R.create () in
  let r = R.run w image ~policy:clock_policy () in
  (match r.R.outcome with
  | R.Faulted (Vm.Cpu.Memory_oob { addr; _ }) ->
      Alcotest.(check int) "fault reported at the ring" Wasp.Layout.ring_base addr
  | _ -> Alcotest.fail "corrupt ring header must fault the virtine");
  Alcotest.(check bool) "black-box dump produced" true (R.flight_dump w <> None)

let test_ring_tail_past_head () =
  (* 40 pending > ring_entries: the producer raced past the ring *)
  check_ring_fault (racing_tail_image "  mov r0, 40")

let test_ring_tail_behind_head () =
  (* tail = -1 < head: negative pending *)
  check_ring_fault (racing_tail_image "  mov r0, 0\n  sub r0, 1")

(* ------------------------------------------------------------------ *)
(* Fuel exhaustion mid-drain: partial completion, deterministically     *)
(* ------------------------------------------------------------------ *)

(* fill all 32 slots with clock ops, ring the doorbell, halt; with
   enough fuel r0 = 32 completed ops *)
let ring_full_image =
  Wasp.Image.of_asm_string ~name:"ring-full"
    {|
start:
  mov r2, 0
  mov r1, 0x4840
fill:
  mov r0, 12
  st64 [r1], r0
  add r1, 64
  add r2, 1
  cmp r2, 32
  jlt fill
  mov r1, 0x4808
  mov r0, 32
  st64 [r1], r0
  mov r0, 14
  out 1, r0
  hlt
|}

let run_full ~fuel =
  let w = R.create () in
  let head = ref 0L in
  let r =
    R.run w ring_full_image ~policy:clock_policy ~fuel
      ~inspect:(fun mem _cpu -> head := Wasp.Ring.sq_head mem)
      ()
  in
  (r, !head)

let test_ring_full_drain () =
  let r, head = run_full ~fuel:50_000_000 in
  Alcotest.(check int64) "all 32 ops completed" 32L r.R.return_value;
  Alcotest.(check int64) "cursor at tail" 32L head

let partial_fuel = 398

let test_ring_fuel_partial_deterministic () =
  let r1, head1 = run_full ~fuel:partial_fuel in
  let r2, head2 = run_full ~fuel:partial_fuel in
  (* the drain stopped mid-batch with its completions persisted *)
  Alcotest.(check bool)
    (Printf.sprintf "partial completion (%Ld of 32)" r1.R.return_value)
    true
    (r1.R.return_value > 0L && r1.R.return_value < 32L);
  Alcotest.(check int64) "sq_head persisted at the cut" r1.R.return_value head1;
  (* byte-identical across runs at the same seed *)
  Alcotest.(check int64) "same completion count" r1.R.return_value r2.R.return_value;
  Alcotest.(check int64) "same cursor" head1 head2;
  Alcotest.(check int64) "same cycles" r1.R.cycles r2.R.cycles

(* ------------------------------------------------------------------ *)
(* Ring straddling a CoW page                                           *)
(* ------------------------------------------------------------------ *)

(* The ring deliberately straddles the 0x5000 page boundary (SQEs below,
   CQEs above). Under `Cow reset every invocation re-dirties both pages;
   the restore must scrub them or stale CQEs would leak between
   requests. *)
let test_ring_cow_straddle () =
  let w = R.create ~reset:`Cow () in
  let path = Vhttp.Fileserver.add_default_files (R.env w) in
  let compiled = Vhttp.Fileserver.compile_ring ~snapshot:true in
  let s1 = Vhttp.Fileserver.serve_virtine w compiled ~path in
  let s2 = Vhttp.Fileserver.serve_virtine w compiled ~path in
  let s3 = Vhttp.Fileserver.serve_virtine w compiled ~path in
  Alcotest.(check int) "first 200" 200 s1.Vhttp.Fileserver.status;
  Alcotest.(check int) "second 200 (CoW restore)" 200 s2.Vhttp.Fileserver.status;
  Alcotest.(check int) "third 200" 200 s3.Vhttp.Fileserver.status;
  Alcotest.(check string) "same body" s1.Vhttp.Fileserver.body s2.Vhttp.Fileserver.body;
  Alcotest.(check string) "same body again" s2.Vhttp.Fileserver.body
    s3.Vhttp.Fileserver.body

(* ------------------------------------------------------------------ *)
(* Chaos: the ring_corrupt injection site                               *)
(* ------------------------------------------------------------------ *)

let test_ring_corrupt_injected () =
  let w = R.create () in
  let plan =
    Cycles.Fault_plan.create
      [ (Kvmsim.Kvm.site_ring_corrupt, Cycles.Fault_plan.Every { start = 0; interval = 0 }) ]
  in
  R.set_fault_plan w (Some plan);
  (* first doorbell: injected corruption -> contained fault *)
  let r1 = R.run w ring_basic_image ~policy:clock_policy () in
  (match r1.R.outcome with
  | R.Faulted _ -> ()
  | _ -> Alcotest.fail "injected ring corruption must fault");
  Alcotest.(check int) "injected once" 1 (Cycles.Fault_plan.total_injected plan);
  (* second doorbell: the one-shot schedule is spent -> clean run *)
  let r2 = R.run w ring_basic_image ~policy:clock_policy () in
  Alcotest.(check int64) "retry succeeds" 7L r2.R.return_value

let test_ring_corrupt_supervised_availability () =
  let invocations = 100 in
  let w = R.create ~seed:0xC0AB () in
  let plan =
    Cycles.Fault_plan.create ~seed:0x51AB
      [ (Kvmsim.Kvm.site_ring_corrupt, Cycles.Fault_plan.Prob 0.25) ]
  in
  R.set_fault_plan w (Some plan);
  let sup =
    Wasp.Supervisor.create
      ~config:
        { Wasp.Supervisor.default_config with Wasp.Supervisor.quarantine_threshold = 10 }
      w
  in
  let ok = ref 0 in
  for _ = 1 to invocations do
    let o = Wasp.Supervisor.run sup ring_basic_image ~policy:clock_policy () in
    match o.Wasp.Supervisor.result with Ok _ -> incr ok | Error _ -> ()
  done;
  let avail = float_of_int !ok /. float_of_int invocations in
  Alcotest.(check bool)
    (Printf.sprintf "supervised availability %.2f >= 0.99" avail)
    true (avail >= 0.99);
  Alcotest.(check bool) "faults were actually injected" true
    (Cycles.Fault_plan.total_injected plan > 0);
  Alcotest.(check bool) "retries happened" true
    ((Wasp.Supervisor.stats sup).Wasp.Supervisor.retries > 0)

let () =
  Alcotest.run "rings"
    [
      ( "abi",
        [
          Alcotest.test_case "out-of-range hc -> EINVAL" `Quick test_out_of_range_einval;
          Alcotest.test_case "basic batch" `Quick test_ring_basic_batch;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "bad descriptors fail alone" `Quick
            test_ring_adversarial_descriptors;
          Alcotest.test_case "tail past head" `Quick test_ring_tail_past_head;
          Alcotest.test_case "tail behind head" `Quick test_ring_tail_behind_head;
        ] );
      ( "fuel",
        [
          Alcotest.test_case "full drain" `Quick test_ring_full_drain;
          Alcotest.test_case "partial drain deterministic" `Quick
            test_ring_fuel_partial_deterministic;
        ] );
      ( "cow",
        [ Alcotest.test_case "ring straddles CoW page" `Quick test_ring_cow_straddle ] );
      ( "chaos",
        [
          Alcotest.test_case "ring_corrupt injection" `Quick test_ring_corrupt_injected;
          Alcotest.test_case "supervised availability" `Quick
            test_ring_corrupt_supervised_availability;
        ] );
    ]
