(* Differential tests for the superblock translation cache: the
   translator must be observationally identical to the interpreter —
   same final registers and memory, same retired count, same exit
   reason, and bit-for-bit identical simulated cycles — across random
   programs, self-modifying code, and CoW-restored invocations. *)

let origin = 0x8000

(* ------------------------------------------------------------------ *)
(* Differential harness                                                 *)
(* ------------------------------------------------------------------ *)

type outcome = {
  exit : string;
  regs : int64 array;
  mem : bytes;
  retired : int64;
  cycles : int64;
}

let exit_str (e : Vm.Cpu.exit_reason) = Format.asprintf "%a" Vm.Cpu.pp_exit e

(* Run [code] to completion under one engine, resuming deterministically
   through a bounded number of I/O exits ([in] deposits a constant). *)
let exec engine ~mode ~mem_size code =
  let mem = Vm.Memory.create ~size:mem_size in
  Vm.Memory.write_bytes mem ~off:origin code;
  let clock = Cycles.Clock.create () in
  let cpu = Vm.Cpu.create ~mem ~mode ~clock in
  Vm.Cpu.set_pc cpu origin;
  Vm.Cpu.set_sp cpu 0x8000;
  let step =
    match engine with
    | `Interp -> fun fuel -> Vm.Cpu.run ~fuel cpu
    | `Translate ->
        let tr = Vm.Translate.create cpu in
        fun fuel -> Vm.Translate.run ~fuel tr
  in
  let fuel = 50_000 in
  let rec go budget =
    let left = fuel - Int64.to_int (Vm.Cpu.instructions_retired cpu) in
    if left <= 0 then Vm.Cpu.Out_of_fuel
    else
      match step left with
      | Vm.Cpu.Io_out _ when budget > 0 -> go (budget - 1)
      | Vm.Cpu.Io_in { reg; _ } when budget > 0 ->
          Vm.Cpu.set_reg cpu reg 0x5A5AL;
          go (budget - 1)
      | e -> e
  in
  let e = go 32 in
  {
    exit = exit_str e;
    regs = Array.init Instr.num_regs (Vm.Cpu.get_reg cpu);
    mem = Vm.Memory.snapshot mem;
    retired = Vm.Cpu.instructions_retired cpu;
    cycles = Cycles.Clock.now clock;
  }

let same a b =
  a.exit = b.exit && a.retired = b.retired && a.cycles = b.cycles && a.regs = b.regs
  && Bytes.equal a.mem b.mem

let check_same name a b =
  Alcotest.(check string) (name ^ ": exit") a.exit b.exit;
  Alcotest.(check int64) (name ^ ": retired") a.retired b.retired;
  Alcotest.(check int64) (name ^ ": cycles") a.cycles b.cycles;
  Array.iteri
    (fun i v -> Alcotest.(check int64) (Printf.sprintf "%s: r%d" name i) v b.regs.(i))
    a.regs;
  Alcotest.(check bool) (name ^ ": memory") true (Bytes.equal a.mem b.mem)

let both ?(mode = Vm.Modes.Long) ?(mem_size = 64 * 1024) name code =
  let i = exec `Interp ~mode ~mem_size code in
  let t = exec `Translate ~mode ~mem_size code in
  check_same name i t;
  (i, t)

(* ------------------------------------------------------------------ *)
(* Random-program fuzz (generators mirror test_isa's)                   *)
(* ------------------------------------------------------------------ *)

let gen_reg = QCheck.Gen.int_range 0 (Instr.num_regs - 1)

let gen_operand =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> Instr.Reg r) gen_reg;
        map (fun i -> Instr.Imm i) (map Int64.of_int int);
      ])

let gen_binop =
  QCheck.Gen.oneofl [ Instr.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Sar ]

let gen_cond = QCheck.Gen.oneofl [ Instr.Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge ]
let gen_width = QCheck.Gen.oneofl [ Instr.W8; W16; W32; W64 ]
let gen_addr = QCheck.Gen.int_range 0 0xFFFFFF
let gen_disp = QCheck.Gen.int_range (-4096) 4096
let gen_port = QCheck.Gen.int_range 0 255

let gen_instr : Instr.t QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        return Instr.Hlt;
        return Instr.Nop;
        return Instr.Ret;
        map2 (fun r o -> Instr.Mov (r, o)) gen_reg gen_operand;
        map3 (fun op r o -> Instr.Bin (op, r, o)) gen_binop gen_reg gen_operand;
        map (fun r -> Instr.Neg r) gen_reg;
        map (fun r -> Instr.Not r) gen_reg;
        map2 (fun r o -> Instr.Cmp (r, o)) gen_reg gen_operand;
        map (fun a -> Instr.Jmp a) gen_addr;
        map2 (fun c a -> Instr.Jcc (c, a)) gen_cond gen_addr;
        map (fun a -> Instr.Call a) gen_addr;
        map (fun r -> Instr.Callr r) gen_reg;
        map (fun o -> Instr.Push o) gen_operand;
        map (fun r -> Instr.Pop r) gen_reg;
        (let* w = gen_width and* rd = gen_reg and* rb = gen_reg and* d = gen_disp in
         return (Instr.Load (w, rd, rb, d)));
        (let* w = gen_width and* rb = gen_reg and* d = gen_disp and* o = gen_operand in
         return (Instr.Store (w, rb, d, o)));
        map3 (fun rd rb d -> Instr.Lea (rd, rb, d)) gen_reg gen_reg gen_disp;
        map2 (fun p o -> Instr.Out (p, o)) gen_port gen_operand;
        map2 (fun r p -> Instr.In (r, p)) gen_reg gen_port;
        map (fun r -> Instr.Rdtsc r) gen_reg;
      ])

let gen_mode = QCheck.Gen.oneofl [ Vm.Modes.Real; Vm.Modes.Protected; Vm.Modes.Long ]

let print_program (mode, instrs) =
  Printf.sprintf "%s: %s" (Vm.Modes.to_string mode)
    (String.concat "; " (List.map Instr.to_string instrs))

let prop_differential =
  QCheck.Test.make ~name:"random programs agree across engines" ~count:400
    (QCheck.make ~print:print_program
       QCheck.Gen.(pair gen_mode (list_size (int_range 1 60) gen_instr)))
    (fun (mode, instrs) ->
      let code = Encoding.encode_program instrs in
      let mem_size = 64 * 1024 in
      same (exec `Interp ~mode ~mem_size code) (exec `Translate ~mode ~mem_size code))

(* ------------------------------------------------------------------ *)
(* Directed: self-modifying code                                        *)
(* ------------------------------------------------------------------ *)

let layout instrs =
  (* pc of each instruction when the program is loaded at [origin] *)
  let _, pcs =
    List.fold_left
      (fun (pc, acc) i -> (pc + Encoding.encoded_size i, pc :: acc))
      (origin, []) instrs
  in
  List.rev pcs

let test_smc_same_block () =
  (* the store overwrites the first byte of a later instruction in the
     *same* superblock with 0x00 (hlt); both engines must halt before
     the overwritten mov executes *)
  let open Instr in
  (* program shape: [mov r1, victim][st8 [r1], 0][mov r0, 1][hlt] *)
  let shape victim =
    [ Mov (1, Imm (Int64.of_int victim)); Store (W8, 1, 0, Imm 0L); Mov (0, Imm 1L); Hlt ]
  in
  (* the victim pc depends on the mov's encoded size, which depends on
     the victim value; one fixpoint round converges (sizes stabilize) *)
  let victim = List.nth (layout (shape 0)) 2 in
  let prog = shape victim in
  assert (List.nth (layout prog) 2 = victim);
  let i, _ = both "smc same block" (Encoding.encode_program prog) in
  Alcotest.(check string) "halts" "halt" i.exit;
  Alcotest.(check int64) "overwritten mov never executed" 0L i.regs.(0)

let test_smc_cross_block () =
  (* pass 1 translates the victim block; pass 2 patches its first
     instruction from another block. The stale superblock must be
     invalidated on re-entry. *)
  let open Instr in
  let build victim patch =
    [
      Cmp (2, Imm 1L);
      Jcc (Eq, patch);
      Mov (2, Imm 1L);
      Jmp victim;
      (* patch: *)
      Mov (1, Imm (Int64.of_int victim));
      Store (W8, 1, 0, Imm 0L);
      Jmp victim;
      (* victim: *)
      Mov (0, Imm 7L);
      Jmp origin;
    ]
  in
  (* iterate the layout to a fixpoint: label addresses feed immediate
     sizes feed label addresses *)
  let rec fix victim patch n =
    let pcs = layout (build victim patch) in
    let victim' = List.nth pcs 7 and patch' = List.nth pcs 4 in
    if (victim', patch') = (victim, patch) || n = 0 then build victim' patch'
    else fix victim' patch' (n - 1)
  in
  let prog = fix 0 0 8 in
  let i, t = both "smc cross block" (Encoding.encode_program prog) in
  Alcotest.(check string) "halts" "halt" i.exit;
  Alcotest.(check int64) "pass-1 victim ran" 7L i.regs.(0);
  ignore t

(* ------------------------------------------------------------------ *)
(* Directed: engine mechanics                                           *)
(* ------------------------------------------------------------------ *)

let make_cpu code =
  let mem = Vm.Memory.create ~size:(64 * 1024) in
  Vm.Memory.write_bytes mem ~off:origin code;
  let cpu = Vm.Cpu.create ~mem ~mode:Vm.Modes.Long ~clock:(Cycles.Clock.create ()) in
  Vm.Cpu.set_pc cpu origin;
  Vm.Cpu.set_sp cpu 0x8000;
  (cpu, mem)

let test_hook_falls_back_to_interpreter () =
  let open Instr in
  let code = Encoding.encode_program [ Mov (0, Imm 1L); Nop; Nop; Hlt ] in
  let cpu, _ = make_cpu code in
  let tr = Vm.Translate.create cpu in
  let hook_calls = ref 0 in
  Vm.Cpu.set_step_hook cpu (fun ~pc:_ ~instr:_ ~cost:_ -> incr hook_calls);
  (match Vm.Translate.run tr with
  | Vm.Cpu.Halt -> ()
  | other -> Alcotest.failf "expected halt, got %s" (exit_str other));
  Alcotest.(check int) "hook fired once per retired instruction" 4 !hook_calls;
  Alcotest.(check int64) "retired" 4L (Vm.Cpu.instructions_retired cpu);
  Alcotest.(check int) "counted as fallback" 1 (Vm.Translate.stats tr).hook_fallbacks;
  Alcotest.(check int) "nothing translated" 0 (Vm.Translate.stats tr).blocks_translated

let test_block_reuse_and_invalidation () =
  let open Instr in
  let code = Encoding.encode_program [ Mov (0, Imm 1L); Hlt ] in
  let cpu, mem = make_cpu code in
  let tr = Vm.Translate.create cpu in
  let run () =
    Vm.Cpu.set_pc cpu origin;
    match Vm.Translate.run tr with
    | Vm.Cpu.Halt -> ()
    | other -> Alcotest.failf "expected halt, got %s" (exit_str other)
  in
  run ();
  let s = Vm.Translate.stats tr in
  let after_first = s.blocks_translated in
  Alcotest.(check bool) "translated something" true (after_first > 0);
  run ();
  Alcotest.(check int) "second run reuses the cached block" after_first
    s.blocks_translated;
  (* rewriting a code byte (same value, new version) must invalidate *)
  Vm.Memory.write_u8 mem origin (Vm.Memory.read_u8 mem origin);
  run ();
  Alcotest.(check bool) "write to code page forces retranslation" true
    (s.blocks_translated > after_first);
  Alcotest.(check bool) "invalidation counted" true (s.invalidations > 0);
  (* pool-style reset: epoch bump flushes everything *)
  let snap = Vm.Memory.read_bytes mem ~off:origin ~len:(Bytes.length code) in
  let before_reset = s.blocks_translated in
  Vm.Memory.reset_zero mem;
  Vm.Memory.write_bytes mem ~off:origin snap;
  run ();
  Alcotest.(check bool) "epoch bump forces retranslation" true
    (s.blocks_translated > before_reset)

let test_out_resumable_across_engines () =
  let open Instr in
  let prog = [ Mov (0, Imm 9L); Out (1, Reg 0); Mov (1, Reg 0); Hlt ] in
  let code = Encoding.encode_program prog in
  let drive run cpu =
    (match run () with
    | Vm.Cpu.Io_out { port = 1; value = 9L } -> ()
    | other -> Alcotest.failf "expected out exit, got %s" (exit_str other));
    Vm.Cpu.set_reg cpu 0 77L;
    (match run () with
    | Vm.Cpu.Halt -> ()
    | other -> Alcotest.failf "expected halt, got %s" (exit_str other));
    (Vm.Cpu.get_reg cpu 1, Vm.Cpu.instructions_retired cpu, Cycles.Clock.now (Vm.Cpu.clock cpu))
  in
  let cpu_i, _ = make_cpu code in
  let ri = drive (fun () -> Vm.Cpu.run cpu_i) cpu_i in
  let cpu_t, _ = make_cpu code in
  let tr = Vm.Translate.create cpu_t in
  let rt = drive (fun () -> Vm.Translate.run tr) cpu_t in
  Alcotest.(check (triple int64 int64 int64)) "resume agrees" ri rt

let test_fuel_exhaustion_matches () =
  let open Instr in
  (* tight infinite loop: both engines must stop at the same retired
     count, cycles and pc *)
  let code = Encoding.encode_program [ Jmp origin ] in
  let cpu_i, _ = make_cpu code in
  let ei = Vm.Cpu.run ~fuel:1000 cpu_i in
  let cpu_t, _ = make_cpu code in
  let tr = Vm.Translate.create cpu_t in
  let et = Vm.Translate.run ~fuel:1000 tr in
  Alcotest.(check string) "exit" (exit_str ei) (exit_str et);
  Alcotest.(check int64) "retired" (Vm.Cpu.instructions_retired cpu_i)
    (Vm.Cpu.instructions_retired cpu_t);
  Alcotest.(check int64) "cycles"
    (Cycles.Clock.now (Vm.Cpu.clock cpu_i))
    (Cycles.Clock.now (Vm.Cpu.clock cpu_t));
  Alcotest.(check int) "pc" (Vm.Cpu.pc cpu_i) (Vm.Cpu.pc cpu_t)

(* ------------------------------------------------------------------ *)
(* Runtime level: CoW restore between invocations                       *)
(* ------------------------------------------------------------------ *)

(* mirrors test_wasp's snapshot image: init loop, snapshot hypercall,
   then argument-dependent work *)
let snap_image =
  Wasp.Image.of_asm_string ~name:"snap-translate"
    {|
  mov r10, 0
init:
  add r10, 1
  cmp r10, 5000
  jlt init
  mov r0, 6        ; snapshot hypercall
  out 1, r0
  mov r1, 0
  ld64 r1, [r1]
  add r1, r10
  mov r0, 0
  out 1, r0
|}

let snap_policy = Wasp.Policy.of_list [ Wasp.Hc.snapshot ]

let test_cow_restore_differential () =
  (* `Cow reset rewrites dirtied pages between invocations while the
     shell's translation cache persists: results and cycle counts must
     match the interpreter exactly across all three invocations *)
  let runs translate =
    let w = Wasp.Runtime.create ~reset:`Cow ~translate () in
    List.map
      (fun arg ->
        let r =
          Wasp.Runtime.run w snap_image ~policy:snap_policy ~snapshot_key:"cowtr"
            ~args:[ arg ] ()
        in
        (r.Wasp.Runtime.return_value, r.Wasp.Runtime.cycles, r.Wasp.Runtime.from_snapshot))
      [ 1L; 2L; 3L ]
  in
  let translated = runs true and interpreted = runs false in
  List.iteri
    (fun i ((rv_t, cyc_t, snap_t), (rv_i, cyc_i, snap_i)) ->
      Alcotest.(check int64) (Printf.sprintf "run %d return value" i) rv_i rv_t;
      Alcotest.(check int64) (Printf.sprintf "run %d cycles" i) cyc_i cyc_t;
      Alcotest.(check bool) (Printf.sprintf "run %d from_snapshot" i) snap_i snap_t)
    (List.combine translated interpreted);
  (* sanity: the workload actually exercised the snapshot path *)
  match translated with
  | [ (rv1, _, s1); (rv2, _, s2); _ ] ->
      Alcotest.(check int64) "first run computed" 5001L rv1;
      Alcotest.(check int64) "second run restored" 5002L rv2;
      Alcotest.(check bool) "snapshot flags" true ((not s1) && s2)
  | _ -> assert false

let () =
  Alcotest.run "translate"
    [
      ( "differential",
        QCheck_alcotest.to_alcotest prop_differential
        :: [
             Alcotest.test_case "smc same block" `Quick test_smc_same_block;
             Alcotest.test_case "smc cross block" `Quick test_smc_cross_block;
             Alcotest.test_case "out resumable" `Quick test_out_resumable_across_engines;
             Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion_matches;
           ] );
      ( "engine",
        [
          Alcotest.test_case "hook falls back" `Quick test_hook_falls_back_to_interpreter;
          Alcotest.test_case "reuse + invalidation" `Quick
            test_block_reuse_and_invalidation;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "cow restore differential" `Quick
            test_cow_restore_differential;
        ] );
    ]
