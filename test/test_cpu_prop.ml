(* Property-based differential testing of the CPU: single instructions
   executed on the vx CPU must agree with a reference model of the
   architecture (mode-width truncation, sign semantics, flag behaviour). *)

let gen_mode = QCheck.Gen.oneofl [ Vm.Modes.Real; Vm.Modes.Protected; Vm.Modes.Long ]

let gen_value = QCheck.Gen.(map Int64.of_int int)

let gen_binop =
  QCheck.Gen.oneofl [ Instr.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Sar ]

let print_case (mode, op, a, b) =
  Printf.sprintf "%s: r0=%Ld %s r1=%Ld" (Vm.Modes.to_string mode)
    a
    (match (op : Instr.binop) with
    | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
    | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Shr -> ">>" | Sar -> ">>a")
    b

let arb_case =
  QCheck.make ~print:print_case
    QCheck.Gen.(
      let* mode = gen_mode in
      let* op = gen_binop in
      let* a = gen_value in
      let* b = gen_value in
      return (mode, op, a, b))

(* hardware masks shift counts to the operand width: 31 outside long mode *)
let shift_mask = function
  | Vm.Modes.Real | Vm.Modes.Protected -> 31L
  | Vm.Modes.Long -> 63L

(* the reference: mode-masked storage, sign-extended signed operations *)
let reference mode (op : Instr.binop) a b : int64 option =
  let open Int64 in
  let m v = Vm.Modes.mask mode v in
  let s v = Vm.Modes.sext mode (m v) in
  let a' = m a and b' = m b in
  let result =
    match op with
    | Add -> Some (add a' b')
    | Sub -> Some (sub a' b')
    | Mul -> Some (mul a' b')
    | Div -> if s b = 0L then None else Some (div (s a) (s b))
    | Rem -> if s b = 0L then None else Some (rem (s a) (s b))
    | And -> Some (logand a' b')
    | Or -> Some (logor a' b')
    | Xor -> Some (logxor a' b')
    | Shl -> Some (shift_left a' (to_int (logand b' (shift_mask mode))))
    | Shr -> Some (shift_right_logical a' (to_int (logand b' (shift_mask mode))))
    | Sar -> Some (shift_right (s a) (to_int (logand b' (shift_mask mode))))
  in
  Option.map m result

let execute mode op a b =
  let mem = Vm.Memory.create ~size:4096 in
  let prog =
    Encoding.encode_program [ Instr.Bin (op, 0, Instr.Reg 1); Instr.Hlt ]
  in
  Vm.Memory.write_bytes mem ~off:0 prog;
  let cpu = Vm.Cpu.create ~mem ~mode ~clock:(Cycles.Clock.create ()) in
  Vm.Cpu.set_reg cpu 0 a;
  Vm.Cpu.set_reg cpu 1 b;
  match Vm.Cpu.run cpu with
  | Vm.Cpu.Halt -> Some (Vm.Cpu.get_reg cpu 0)
  | Vm.Cpu.Fault (Vm.Cpu.Division_by_zero _) -> None
  | other -> failwith (Format.asprintf "unexpected exit %a" Vm.Cpu.pp_exit other)

let prop_binop_matches_reference =
  QCheck.Test.make ~name:"binary ops match the reference model" ~count:3000 arb_case
    (fun (mode, op, a, b) -> execute mode op a b = reference mode op a b)

let prop_storage_always_masked =
  QCheck.Test.make ~name:"register storage is always mode-masked" ~count:1000 arb_case
    (fun (mode, op, a, b) ->
      match execute mode op a b with
      | Some v -> v = Vm.Modes.mask mode v
      | None -> true)

(* comparisons: flags then a conditional jump, vs the reference *)
let gen_cond = QCheck.Gen.oneofl [ Instr.Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge ]

let reference_cond mode (c : Instr.cond) a b =
  let m v = Vm.Modes.mask mode v in
  let s v = Vm.Modes.sext mode (m v) in
  let signed = Int64.compare (s a) (s b) in
  let unsigned = Int64.unsigned_compare (m a) (m b) in
  match c with
  | Eq -> signed = 0
  | Ne -> signed <> 0
  | Lt -> signed < 0
  | Le -> signed <= 0
  | Gt -> signed > 0
  | Ge -> signed >= 0
  | Ult -> unsigned < 0
  | Ule -> unsigned <= 0
  | Ugt -> unsigned > 0
  | Uge -> unsigned >= 0

let prop_conditions_match_reference =
  QCheck.Test.make ~name:"conditional branches match the reference model" ~count:3000
    (QCheck.make
       QCheck.Gen.(
         let* mode = gen_mode in
         let* c = gen_cond in
         let* a = gen_value in
         let* b = gen_value in
         return (mode, c, a, b)))
    (fun (mode, c, a, b) ->
      let mem = Vm.Memory.create ~size:4096 in
      (* cmp r0, r1; jcc taken; mov r2, 0; hlt; taken: mov r2, 1; hlt *)
      let items =
        [
          Asm.Insn (Asm.SCmp (0, Asm.OReg 1));
          Asm.Insn (Asm.SJcc (c, Asm.Lbl "taken"));
          Asm.Insn (Asm.SMov (2, Asm.OImm 0L));
          Asm.Insn Asm.SHlt;
          Asm.Label "taken";
          Asm.Insn (Asm.SMov (2, Asm.OImm 1L));
          Asm.Insn Asm.SHlt;
        ]
      in
      let p = Asm.assemble ~origin:0 items in
      Vm.Memory.write_bytes mem ~off:0 p.Asm.code;
      let cpu = Vm.Cpu.create ~mem ~mode ~clock:(Cycles.Clock.create ()) in
      Vm.Cpu.set_reg cpu 0 a;
      Vm.Cpu.set_reg cpu 1 b;
      match Vm.Cpu.run cpu with
      | Vm.Cpu.Halt ->
          let taken = Vm.Cpu.get_reg cpu 2 = 1L in
          taken = reference_cond mode c a b
      | _ -> false)

(* loads/stores: store then load roundtrips through memory with the
   right width truncation *)
let prop_store_load_roundtrip =
  QCheck.Test.make ~name:"store/load roundtrips with width truncation" ~count:2000
    (QCheck.make
       QCheck.Gen.(
         let* w = oneofl [ Instr.W8; W16; W32; W64 ] in
         let* v = gen_value in
         return (w, v)))
    (fun (w, v) ->
      let mem = Vm.Memory.create ~size:4096 in
      let prog =
        Encoding.encode_program
          [
            Instr.Store (w, 1, 0, Instr.Reg 0);
            Instr.Load (w, 2, 1, 0);
            Instr.Hlt;
          ]
      in
      Vm.Memory.write_bytes mem ~off:0 prog;
      let cpu = Vm.Cpu.create ~mem ~mode:Vm.Modes.Long ~clock:(Cycles.Clock.create ()) in
      Vm.Cpu.set_reg cpu 0 v;
      Vm.Cpu.set_reg cpu 1 256L;
      match Vm.Cpu.run cpu with
      | Vm.Cpu.Halt ->
          let expected =
            match w with
            | Instr.W8 -> Int64.logand v 0xFFL
            | Instr.W16 -> Int64.logand v 0xFFFFL
            | Instr.W32 -> Int64.logand v 0xFFFFFFFFL
            | Instr.W64 -> v
          in
          Vm.Cpu.get_reg cpu 2 = expected
      | _ -> false)

(* random instruction streams never escape guest memory or crash the
   host: every exit is a defined exit reason *)
let prop_random_streams_contained =
  QCheck.Test.make ~name:"random byte streams are contained" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 1 256))
    (fun blob ->
      let mem = Vm.Memory.create ~size:(64 * 1024) in
      Vm.Memory.write_bytes mem ~off:0x100 (Bytes.of_string blob);
      let cpu = Vm.Cpu.create ~mem ~mode:Vm.Modes.Long ~clock:(Cycles.Clock.create ()) in
      Vm.Cpu.set_pc cpu 0x100;
      Vm.Cpu.set_sp cpu 0x8000;
      match Vm.Cpu.run ~fuel:10_000 cpu with
      | Vm.Cpu.Halt | Vm.Cpu.Io_out _ | Vm.Cpu.Io_in _ | Vm.Cpu.Fault _ | Vm.Cpu.Out_of_fuel
        ->
          true)

let () =
  Alcotest.run "cpu-properties"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_binop_matches_reference;
            prop_storage_always_masked;
            prop_conditions_match_reference;
            prop_store_load_roundtrip;
            prop_random_streams_contained;
          ] );
    ]
