(* vtrace: the probe language (parse/print round trips), the bounded
   keyed aggregations, the engine (budgets, key caps, rendering), every
   probe site in the stack actually firing, and the determinism
   contract: attaching probes changes no guest-visible result on either
   execution engine. *)

module L = Vtrace.Lang
module A = Vtrace.Agg
module E = Vtrace.Engine
module Ctx = Vtrace.Ctx
module R = Wasp.Runtime

let parse_ok s =
  match L.parse s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let engine_ok ?budget ?key_capacity s =
  match E.of_string ?budget ?key_capacity s with
  | Ok e -> e
  | Error e -> Alcotest.failf "engine %S failed: %s" s e

let contains_sub text sub =
  let n = String.length sub and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Language: round trips and rejections                                 *)
(* ------------------------------------------------------------------ *)

let round_trip_specs =
  [
    "exit { count() }";
    "exit { count() by (reason) }";
    "exit:reason == \"hypercall\" && cycles > 5000 { hist(cycles) by (fn, nr) }";
    "hypercall:nr != 0 { sum(cycles) by (fn) }";
    "sched:core >= 1 || cycles < 100 { avg(cycles) by (core) }";
    "instr { p(99.9, cycles) by (reason) }";
    "pool_acquire:!(reason == \"hit\") { count() by (reason) }";
    "block:pc >= 0x8000 { count() }; exit { max(cycles) }";
    "sup_attempt { min(nr) by (fn, reason) }";
    "idle:(cycles > 10 || nr == 0) && core < 4 { p(50, cycles) }";
  ]

let test_parse_round_trip () =
  List.iter
    (fun s ->
      let spec = parse_ok s in
      let printed = L.to_string spec in
      let spec2 = parse_ok printed in
      Alcotest.(check bool)
        (Printf.sprintf "reparse(%S) = parse: %s" s printed)
        true (spec = spec2);
      (* canonical form is a fixed point *)
      Alcotest.(check string) "printer is stable" printed (L.to_string spec2))
    round_trip_specs

let test_parse_aliases_canonicalize () =
  let spec = parse_ok "hypercall:hc_nr == 3 { count() by (trace) }" in
  match spec with
  | [ { L.pred = L.Cmp (L.Field f, L.Eq, _); action; _ } ] ->
      Alcotest.(check string) "hc_nr -> nr" "nr" f;
      Alcotest.(check (list string)) "trace -> trace_id" [ "trace_id" ] action.L.by
  | _ -> Alcotest.fail "unexpected AST shape"

let test_parse_rejections () =
  let bad =
    [
      ("nosuchsite { count() }", "unknown site");
      ("exit { count(cycles) }", "count takes an operand");
      ("exit { sum() }", "sum needs an operand");
      ("exit { sum(reason) }", "sum over a string field");
      ("exit:reason < \"x\" { count() }", "ordered compare on string field");
      ("exit { frob(cycles) }", "unknown aggregation");
      ("exit { count() by (nosuchfield) }", "unknown by field");
      ("exit { p(cycles) }", "p without quantile");
      ("exit { p(101, cycles) }", "quantile out of range");
      ("exit count() }", "missing brace");
      ("", "empty spec");
      ("exit { count() } garbage", "trailing tokens");
    ]
  in
  List.iter
    (fun (s, why) ->
      match L.parse s with
      | Ok _ -> Alcotest.failf "%S should fail (%s)" s why
      | Error _ -> ())
    bad

let test_parse_errors_carry_position () =
  match L.parse "exit { count() by (bogus) }" with
  | Ok _ -> Alcotest.fail "should fail"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions offset: %s" msg)
        true
        (String.length msg > 0
        && (String.sub msg 0 9 = "at offset" || String.length msg > 5))

(* ------------------------------------------------------------------ *)
(* Aggregation math                                                     *)
(* ------------------------------------------------------------------ *)

let feed agg vals =
  let a = A.create agg in
  List.iter (fun v -> ignore (A.observe a ~key:[ "k" ] v)) vals;
  match A.cells a with
  | [ (_, cell) ] -> A.value a cell
  | cs -> Alcotest.failf "expected one cell, got %d" (List.length cs)

let test_agg_basics () =
  let vals = [ 3L; 1L; 4L; 1L; 5L; 9L; 2L; 6L ] in
  Alcotest.(check (float 1e-9)) "count" 8.0 (feed L.Count vals);
  Alcotest.(check (float 1e-9)) "sum" 31.0 (feed L.Sum vals);
  Alcotest.(check (float 1e-9)) "min" 1.0 (feed L.Min vals);
  Alcotest.(check (float 1e-9)) "max" 9.0 (feed L.Max vals);
  Alcotest.(check (float 1e-9)) "avg" (31.0 /. 8.0) (feed L.Avg vals);
  Alcotest.(check (float 1e-9)) "hist reports n" 8.0 (feed L.Hist vals)

let test_agg_quantiles_match_stats () =
  let vals = [ 3L; 1L; 4L; 1L; 5L; 9L; 2L; 6L; 5L; 3L; 5L ] in
  let arr = Array.of_list (List.map Int64.to_float vals) in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%g matches Stats.Descriptive" q)
        (Stats.Descriptive.percentile arr q)
        (feed (L.Quantile q) vals))
    [ 50.0; 90.0; 99.0; 99.9 ]

let test_agg_key_capacity () =
  let a = A.create ~key_capacity:2 L.Count in
  Alcotest.(check bool) "first key" true (A.observe a ~key:[ "a" ] 1L);
  Alcotest.(check bool) "second key" true (A.observe a ~key:[ "b" ] 1L);
  Alcotest.(check bool) "third key dropped" false (A.observe a ~key:[ "c" ] 1L);
  Alcotest.(check bool) "existing key still lands" true (A.observe a ~key:[ "a" ] 1L);
  Alcotest.(check int) "one drop" 1 (A.key_drops a);
  Alcotest.(check int) "two cells" 2 (List.length (A.cells a))

let test_agg_insertion_order () =
  let a = A.create L.Sum in
  List.iter
    (fun k -> ignore (A.observe a ~key:[ k ] 1L))
    [ "z"; "a"; "m"; "a"; "z" ];
  Alcotest.(check (list (list string)))
    "cells in first-insertion order"
    [ [ "z" ]; [ "a" ]; [ "m" ] ]
    (List.map fst (A.cells a))

(* ------------------------------------------------------------------ *)
(* Engine: firing, budget, rendering                                    *)
(* ------------------------------------------------------------------ *)

let test_engine_budget_drops () =
  let e = engine_ok ~budget:3 "exit { count() by (reason) }" in
  for _ = 1 to 10 do
    ignore (E.fire e (Ctx.make ~reason:"hlt" "exit"))
  done;
  Alcotest.(check int) "three firings" 3 (E.fires e);
  Alcotest.(check int) "seven budget drops" 7 (E.drops e);
  Alcotest.(check (list (pair (list string) (float 1e-9))))
    "aggregate stops at the budget"
    [ ([ "hlt" ], 3.0) ]
    (E.values e ~probe:0)

let test_engine_key_capacity_drops () =
  let e = engine_ok ~key_capacity:2 "exit { count() by (nr) }" in
  for i = 1 to 5 do
    ignore (E.fire e (Ctx.make ~nr:(Int64.of_int i) "exit"))
  done;
  Alcotest.(check int) "two keys fired" 2 (E.fires e);
  Alcotest.(check int) "three key drops" 3 (E.drops e)

let test_engine_predicate_and_fn_substitution () =
  let e = engine_ok "exit:fn == \"fib\" { count() }" in
  E.set_fn e "fib";
  ignore (E.fire e (Ctx.make "exit"));
  E.set_fn e "other";
  ignore (E.fire e (Ctx.make "exit"));
  (* an explicit fn in the context wins over the engine's current fn *)
  ignore (E.fire e (Ctx.make ~fn:"fib" "exit"));
  Alcotest.(check int) "two matched" 2 (E.fires e)

let test_engine_wants () =
  let e = engine_ok "block { count() }; exit { count() }" in
  Alcotest.(check bool) "wants block" true (E.wants e "block");
  Alcotest.(check bool) "wants exit" true (E.wants e "exit");
  Alcotest.(check bool) "does not want instr" false (E.wants e "instr")

let test_engine_render_and_folded () =
  let e = engine_ok "exit { count() by (reason) }" in
  ignore (E.fire e (Ctx.make ~reason:"hlt" "exit"));
  ignore (E.fire e (Ctx.make ~reason:"hypercall" "exit"));
  ignore (E.fire e (Ctx.make ~reason:"hypercall" "exit"));
  let r = E.render e in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "render contains %S" needle)
        true (contains_sub r needle))
    [ "vtrace probe 0"; "hlt"; "hypercall"; "fires=3" ];
  let f = E.folded e in
  Alcotest.(check bool)
    "folded has exit;hypercall 2" true
    (contains_sub f "exit;hypercall 2")

let test_engine_export_metrics () =
  let e = engine_ok ~budget:1 "exit { count() by (reason) }" in
  ignore (E.fire e (Ctx.make ~reason:"hlt" "exit"));
  ignore (E.fire e (Ctx.make ~reason:"hlt" "exit"));
  let m = Telemetry.Metrics.create () in
  E.export e m;
  (match Telemetry.Metrics.find m "vtrace_exit_count{probe=0,reason=hlt}" with
  | Some (Telemetry.Metrics.Gauge g) ->
      Alcotest.(check (float 1e-9)) "gauge carries the aggregate" 1.0
        g.Telemetry.Metrics.g_value
  | _ -> Alcotest.fail "exported gauge missing");
  match Telemetry.Metrics.find m "vtrace_drops_total{kind=budget}" with
  | Some (Telemetry.Metrics.Counter c) ->
      Alcotest.(check int) "drop counter" 1 c.Telemetry.Metrics.c_value
  | _ -> Alcotest.fail "drop counter missing"

(* ------------------------------------------------------------------ *)
(* Sites: every probe point in the stack fires                          *)
(* ------------------------------------------------------------------ *)

let fib_image =
  Wasp.Image.of_asm_string ~name:"fib"
    {|
start:
  mov r1, 10
  call fib
  mov r1, r0
  mov r0, 0
  out 1, r0
  hlt
fib:
  cmp r1, 2
  jlt base
  push r1
  sub r1, 1
  call fib
  pop r1
  push r0
  sub r1, 2
  call fib
  pop r2
  add r0, r2
  ret
base:
  mov r0, r1
  ret
|}

let crash_image =
  Wasp.Image.of_asm_string ~name:"crash"
    {|
start:
  mov r1, 0x7ffffff0
  ld64 r0, [r1]
  hlt
|}

let values e ~probe = E.values e ~probe

let total e ~probe =
  List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (values e ~probe)

let test_sites_exit_hypercall_block () =
  let e =
    engine_ok
      "exit { count() by (reason) }; hypercall { count() by (reason) }; \
       hypercall_ret { count() by (reason) }; block { count() }"
  in
  let w = R.create ~seed:7 () in
  R.set_probes w (Some e);
  let r = R.run w fib_image () in
  Alcotest.(check int64) "guest unchanged" 55L r.R.return_value;
  (* the exit hypercall takes one "hypercall" VM exit *)
  Alcotest.(check (list (pair (list string) (float 1e-9))))
    "exit reasons" [ ([ "hypercall" ], 1.0) ] (values e ~probe:0);
  Alcotest.(check (list (pair (list string) (float 1e-9))))
    "hypercall enter" [ ([ "exit" ], 1.0) ] (values e ~probe:1);
  Alcotest.(check (list (pair (list string) (float 1e-9))))
    "hypercall return" [ ([ "exit" ], 1.0) ] (values e ~probe:2);
  Alcotest.(check bool)
    "superblock entries observed without interpretation" true
    (total e ~probe:3 > 10.0)

let test_site_instr () =
  let e = engine_ok "instr { sum(cycles) by (reason) }" in
  let w = R.create ~seed:7 () in
  R.set_probes w (Some e);
  let r = R.run w fib_image () in
  Alcotest.(check int64) "guest unchanged" 55L r.R.return_value;
  let per_op = values e ~probe:0 in
  Alcotest.(check bool) "several opcodes attributed" true (List.length per_op > 3);
  Alcotest.(check bool) "cycles attributed" true (total e ~probe:0 > 100.0)

let snap_policy = Wasp.Policy.of_list [ Wasp.Hc.snapshot ]

let snap_image =
  Wasp.Image.of_asm_string ~name:"snap"
    {|
  mov r10, 0
init:
  add r10, 1
  cmp r10, 1000
  jlt init
  mov r0, 6
  out 1, r0
  mov r1, 0
  ld64 r1, [r1]
  add r1, r10
  mov r0, 0
  out 1, r0
|}

let test_site_ept () =
  let e = engine_ok "ept { count() by (reason) }" in
  let w = R.create ~seed:7 ~reset:`Cow () in
  R.set_probes w (Some e);
  let r1 = R.run w snap_image ~policy:snap_policy ~snapshot_key:"s" ~args:[ 1L ] () in
  let r2 = R.run w snap_image ~policy:snap_policy ~snapshot_key:"s" ~args:[ 2L ] () in
  Alcotest.(check int64) "first run" 1001L r1.R.return_value;
  Alcotest.(check int64) "restored run" 1002L r2.R.return_value;
  let ept = (Kvmsim.Kvm.stats (R.kvm w)).Kvmsim.Kvm.ept_violations in
  Alcotest.(check bool) "cow breaks happened" true (ept > 0);
  Alcotest.(check (float 1e-9))
    "every cow break fired the probe" (float_of_int ept)
    (total e ~probe:0);
  Alcotest.(check (list (list string)))
    "reason is cow_break" [ [ "cow_break" ] ]
    (List.map fst (values e ~probe:0))

let test_site_inject () =
  let e = engine_ok "inject { count() by (reason) }" in
  let plan =
    match Cycles.Fault_plan.of_string "seed=0xC4405;spurious_exit=@0+2" with
    | Ok p -> p
    | Error m -> Alcotest.failf "plan: %s" m
  in
  let w = R.create ~seed:7 () in
  R.set_probes w (Some e);
  R.set_fault_plan w (Some plan);
  ignore (R.run w fib_image ());
  let injected = Cycles.Fault_plan.total_injected plan in
  Alcotest.(check bool) "plan fired" true (injected > 0);
  Alcotest.(check (float 1e-9))
    "every injection fired the probe" (float_of_int injected)
    (total e ~probe:0)

let test_sites_pool () =
  let e =
    engine_ok
      "pool_acquire { count() by (reason) }; pool_release { count() by \
       (reason) }; pool_evict { count() by (reason) }"
  in
  let sys = Kvmsim.Kvm.open_dev () in
  let pool = Wasp.Pool.create ~capacity:1 sys ~clean:Wasp.Pool.Sync in
  Wasp.Pool.set_probes pool (Some e);
  let s1, hit1 = Wasp.Pool.acquire pool ~mem_size:0x10000 ~mode:Vm.Modes.Long in
  let s2, hit2 = Wasp.Pool.acquire pool ~mem_size:0x20000 ~mode:Vm.Modes.Long in
  Alcotest.(check bool) "both cold" false (hit1 || hit2);
  Wasp.Pool.release pool s1;
  Wasp.Pool.release pool s2;  (* shard over capacity: evicts the LRU *)
  let s3, hit3 = Wasp.Pool.acquire pool ~mem_size:0x20000 ~mode:Vm.Modes.Long in
  Alcotest.(check bool) "pool hit" true hit3;
  Wasp.Pool.release pool s3;
  Alcotest.(check (list (pair (list string) (float 1e-9))))
    "acquire reasons"
    [ ([ "miss" ], 2.0); ([ "hit" ], 1.0) ]
    (values e ~probe:0);
  Alcotest.(check (list (pair (list string) (float 1e-9))))
    "release reasons" [ ([ "sync" ], 3.0) ] (values e ~probe:1);
  Alcotest.(check (list (pair (list string) (float 1e-9))))
    "evictions" [ ([ "lru" ], 1.0) ] (values e ~probe:2)

let test_sites_supervisor () =
  let e =
    engine_ok
      "sup_attempt { count() by (fn, reason) }; sup_backoff { count() }; \
       sup_quarantine { count() by (reason) }"
  in
  let w = R.create ~seed:7 () in
  R.set_probes w (Some e);
  let config =
    {
      Wasp.Supervisor.default_config with
      Wasp.Supervisor.max_retries = 2;
      quarantine_threshold = 1;
    }
  in
  let s = Wasp.Supervisor.create ~config w in
  (match (Wasp.Supervisor.run s crash_image ()).Wasp.Supervisor.result with
  | Ok _ -> Alcotest.fail "crash image should fail"
  | Error _ -> ());
  (* quarantined now: the next run is rejected without an attempt *)
  (match (Wasp.Supervisor.run s crash_image ()).Wasp.Supervisor.result with
  | Ok _ -> Alcotest.fail "should be quarantined"
  | Error _ -> ());
  Alcotest.(check (list (pair (list string) (float 1e-9))))
    "three attempts, all faults"
    [ ([ "crash"; "fault" ], 3.0) ]
    (values e ~probe:0);
  Alcotest.(check (float 1e-9)) "two backoffs" 2.0 (total e ~probe:1);
  Alcotest.(check (list (pair (list string) (float 1e-9))))
    "quarantine enter then reject"
    [ ([ "enter" ], 1.0); ([ "reject" ], 1.0) ]
    (values e ~probe:2)

let test_site_gateway () =
  let e = engine_ok "gateway { count() by (fn, reason) }" in
  let w = R.create ~clean:`Async () in
  R.set_probes w (Some e);
  let platform = Serverless.Vespid.create w in
  let g = Serverless.Gateway.create platform in
  let post path body =
    Vhttp.Http.request_to_string (Vhttp.Http.make_request ~body "POST" path)
  in
  let shout =
    "function shout(d) { var s = \"\"; for (var i = 0; i < d.length; i++) { s \
     += String.fromCharCode(d[i]); } return s.toUpperCase(); }"
  in
  ignore (Serverless.Gateway.handle g (post "/register/ok?entry=shout" shout));
  ignore (Serverless.Gateway.handle g (post "/invoke/ok" "hi"));
  ignore (Serverless.Gateway.handle g (post "/invoke/ghost" "x"));
  Alcotest.(check (list (pair (list string) (float 1e-9))))
    "gateway decisions"
    [ ([ "ok"; "ok" ], 1.0); ([ "ghost"; "not_found" ], 1.0) ]
    (values e ~probe:0)

let test_sites_scheduler () =
  let e =
    engine_ok
      "sched { count() by (reason) }; steal { count() }; idle { sum(cycles) }"
  in
  let clocks = Array.init 2 (fun _ -> Cycles.Clock.create ()) in
  let sched = Dessim.Cores.create clocks in
  Dessim.Cores.set_probes sched (Some e);
  (* all work lands on core 0 at release 0: once core 0's clock runs
     ahead, core 1 steals alternate tasks.  A single far-future task
     then forces an accounted idle window. *)
  for _ = 0 to 9 do
    Dessim.Cores.submit sched ~affinity:0 (fun ~core ->
        Cycles.Clock.advance_int clocks.(core) 100)
  done;
  Dessim.Cores.submit sched ~affinity:0 ~at:10_000L (fun ~core ->
      Cycles.Clock.advance_int clocks.(core) 100);
  Dessim.Cores.run sched;
  Alcotest.(check (float 1e-9))
    "every task observed" 11.0 (total e ~probe:0);
  Alcotest.(check bool)
    "local and stolen both seen" true
    (List.length (values e ~probe:0) = 2);
  Alcotest.(check (float 1e-9))
    "steal count matches scheduler stats"
    (float_of_int (Dessim.Cores.steals sched))
    (total e ~probe:1);
  Alcotest.(check bool) "steals happened" true (Dessim.Cores.steals sched > 0);
  Alcotest.(check bool) "idle cycles observed" true (total e ~probe:2 > 0.0)

(* ------------------------------------------------------------------ *)
(* Determinism: attach vs detach, both engines                          *)
(* ------------------------------------------------------------------ *)

let run_fingerprint ~translate ~probes () =
  let w = R.create ~seed:42 ~translate () in
  (match probes with
  | Some spec -> R.set_probes w (Some (engine_ok spec))
  | None -> ());
  List.map
    (fun _ ->
      let r = R.run w fib_image () in
      (r.R.return_value, r.R.cycles, r.R.hypercalls, r.R.from_pool))
    [ 1; 2; 3 ]

let heavy_spec =
  "exit { count() by (reason) }; hypercall { hist(cycles) by (fn, nr) }; \
   hypercall_ret { p(99, cycles) by (fn) }; block { count() }; pool_acquire \
   { count() by (reason) }; pool_release { count() by (reason) }"

let test_attach_detach_parity_translated () =
  Alcotest.(check (list (pair int64 (pair int64 (pair int bool)))))
    "identical results and cycles"
    (List.map (fun (a, b, c, d) -> (a, (b, (c, d))))
       (run_fingerprint ~translate:true ~probes:None ()))
    (List.map (fun (a, b, c, d) -> (a, (b, (c, d))))
       (run_fingerprint ~translate:true ~probes:(Some heavy_spec) ()))

let test_attach_detach_parity_interpreter () =
  Alcotest.(check (list (pair int64 (pair int64 (pair int bool)))))
    "identical results and cycles"
    (List.map (fun (a, b, c, d) -> (a, (b, (c, d))))
       (run_fingerprint ~translate:false ~probes:None ()))
    (List.map (fun (a, b, c, d) -> (a, (b, (c, d))))
       (run_fingerprint ~translate:false ~probes:(Some heavy_spec) ()))

let test_instr_probe_parity () =
  (* instruction probes opt into interpretation — still cycle-identical *)
  Alcotest.(check (list (pair int64 (pair int64 (pair int bool)))))
    "stepping changes nothing observable"
    (List.map (fun (a, b, c, d) -> (a, (b, (c, d))))
       (run_fingerprint ~translate:true ~probes:None ()))
    (List.map (fun (a, b, c, d) -> (a, (b, (c, d))))
       (run_fingerprint ~translate:true
          ~probes:(Some "instr { sum(cycles) by (reason) }") ()))

let test_same_spec_same_tables () =
  let tables probes =
    let w = R.create ~seed:42 () in
    let e = engine_ok probes in
    R.set_probes w (Some e);
    ignore (R.run w fib_image ());
    ignore (R.run w fib_image ());
    E.render e
  in
  Alcotest.(check string)
    "byte-identical aggregate tables at a fixed seed"
    (tables heavy_spec) (tables heavy_spec)

let test_exit_probe_stamps_flight_ring () =
  let e = engine_ok "exit { count() }" in
  let w = R.create ~seed:7 () in
  R.set_probes w (Some e);
  ignore (R.run w fib_image ());
  match R.flight w with
  | None -> Alcotest.fail "flight recorder always attached"
  | Some fr ->
      let stamped =
        List.filter
          (fun en -> contains_sub en.Profiler.Flight.note "vtrace")
          (Profiler.Flight.entries fr)
      in
      Alcotest.(check bool) "matched exits annotated" true (stamped <> [])

let () =
  Alcotest.run "vtrace"
    [
      ( "lang",
        [
          Alcotest.test_case "round trips" `Quick test_parse_round_trip;
          Alcotest.test_case "aliases canonicalize" `Quick
            test_parse_aliases_canonicalize;
          Alcotest.test_case "rejections" `Quick test_parse_rejections;
          Alcotest.test_case "errors carry position" `Quick
            test_parse_errors_carry_position;
        ] );
      ( "agg",
        [
          Alcotest.test_case "basics" `Quick test_agg_basics;
          Alcotest.test_case "quantiles match Stats" `Quick
            test_agg_quantiles_match_stats;
          Alcotest.test_case "key capacity" `Quick test_agg_key_capacity;
          Alcotest.test_case "insertion order" `Quick test_agg_insertion_order;
        ] );
      ( "engine",
        [
          Alcotest.test_case "budget drops" `Quick test_engine_budget_drops;
          Alcotest.test_case "key-capacity drops" `Quick
            test_engine_key_capacity_drops;
          Alcotest.test_case "fn substitution" `Quick
            test_engine_predicate_and_fn_substitution;
          Alcotest.test_case "wants" `Quick test_engine_wants;
          Alcotest.test_case "render and folded" `Quick
            test_engine_render_and_folded;
          Alcotest.test_case "export to metrics" `Quick
            test_engine_export_metrics;
        ] );
      ( "sites",
        [
          Alcotest.test_case "exit/hypercall/block" `Quick
            test_sites_exit_hypercall_block;
          Alcotest.test_case "instr" `Quick test_site_instr;
          Alcotest.test_case "ept" `Quick test_site_ept;
          Alcotest.test_case "inject" `Quick test_site_inject;
          Alcotest.test_case "pool" `Quick test_sites_pool;
          Alcotest.test_case "supervisor" `Quick test_sites_supervisor;
          Alcotest.test_case "gateway" `Quick test_site_gateway;
          Alcotest.test_case "scheduler" `Quick test_sites_scheduler;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "attach/detach parity (translated)" `Quick
            test_attach_detach_parity_translated;
          Alcotest.test_case "attach/detach parity (interpreter)" `Quick
            test_attach_detach_parity_interpreter;
          Alcotest.test_case "instr probe parity" `Quick test_instr_probe_parity;
          Alcotest.test_case "same spec, same tables" `Quick
            test_same_spec_same_tables;
          Alcotest.test_case "exit probes stamp the flight ring" `Quick
            test_exit_probe_stamps_flight_ring;
        ] );
    ]
