(* Tests for the vx ISA: encoding roundtrips, the assembler, and the
   textual parser. *)

let instr = Alcotest.testable Instr.pp Instr.equal

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                    *)
(* ------------------------------------------------------------------ *)

let gen_reg = QCheck.Gen.int_range 0 (Instr.num_regs - 1)

let gen_operand =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> Instr.Reg r) gen_reg;
        map (fun i -> Instr.Imm i) (map Int64.of_int int);
      ])

let gen_binop =
  QCheck.Gen.oneofl
    [ Instr.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Sar ]

let gen_cond =
  QCheck.Gen.oneofl [ Instr.Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge ]

let gen_width = QCheck.Gen.oneofl [ Instr.W8; W16; W32; W64 ]

let gen_addr = QCheck.Gen.int_range 0 0xFFFFFF

let gen_disp = QCheck.Gen.int_range (-4096) 4096

let gen_port = QCheck.Gen.int_range 0 255

let gen_instr : Instr.t QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        return Instr.Hlt;
        return Instr.Nop;
        return Instr.Ret;
        map2 (fun r o -> Instr.Mov (r, o)) gen_reg gen_operand;
        map3 (fun op r o -> Instr.Bin (op, r, o)) gen_binop gen_reg gen_operand;
        map (fun r -> Instr.Neg r) gen_reg;
        map (fun r -> Instr.Not r) gen_reg;
        map2 (fun r o -> Instr.Cmp (r, o)) gen_reg gen_operand;
        map (fun a -> Instr.Jmp a) gen_addr;
        map2 (fun c a -> Instr.Jcc (c, a)) gen_cond gen_addr;
        map (fun a -> Instr.Call a) gen_addr;
        map (fun r -> Instr.Callr r) gen_reg;
        map (fun o -> Instr.Push o) gen_operand;
        map (fun r -> Instr.Pop r) gen_reg;
        (let* w = gen_width and* rd = gen_reg and* rb = gen_reg and* d = gen_disp in
         return (Instr.Load (w, rd, rb, d)));
        (let* w = gen_width and* rb = gen_reg and* d = gen_disp and* o = gen_operand in
         return (Instr.Store (w, rb, d, o)));
        map3 (fun rd rb d -> Instr.Lea (rd, rb, d)) gen_reg gen_reg gen_disp;
        map2 (fun p o -> Instr.Out (p, o)) gen_port gen_operand;
        map2 (fun r p -> Instr.In (r, p)) gen_reg gen_port;
        map (fun r -> Instr.Rdtsc r) gen_reg;
      ])

let arb_instr = QCheck.make ~print:Instr.to_string gen_instr

(* ------------------------------------------------------------------ *)
(* Encoding properties                                                  *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:2000 arb_instr (fun i ->
      let b = Encoding.encode_program [ i ] in
      match Encoding.decode_program b with [ j ] -> Instr.equal i j | _ -> false)

let prop_size_matches =
  QCheck.Test.make ~name:"encoded_size agrees with encoder" ~count:2000 arb_instr (fun i ->
      Bytes.length (Encoding.encode_program [ i ]) = Encoding.encoded_size i)

let prop_program_roundtrip =
  QCheck.Test.make ~name:"program roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) gen_instr))
    (fun is ->
      let b = Encoding.encode_program is in
      List.length (Encoding.decode_program b) = List.length is
      && List.for_all2 Instr.equal is (Encoding.decode_program b))

let prop_cost_positive =
  QCheck.Test.make ~name:"every instruction has positive cost" ~count:500 arb_instr
    (fun i -> Instr.cost i > 0)

let test_decode_illegal_opcode () =
  let blob = Bytes.of_string "\xFF" in
  Alcotest.check_raises "illegal opcode"
    (Encoding.Decode_error { addr = 0; msg = "illegal opcode 0xff" })
    (fun () -> ignore (Encoding.decode_program blob))

let test_decode_bad_register () =
  (* MOV with register operand 0x20 (not a register, high bit clear) *)
  let blob = Bytes.of_string "\x02\x00\x20" in
  match Encoding.decode_program blob with
  | exception Encoding.Decode_error _ -> ()
  | _ -> Alcotest.fail "expected decode error"

(* ------------------------------------------------------------------ *)
(* Disassembler                                                         *)
(* ------------------------------------------------------------------ *)

(* One instance of every opcode in the table: every constructor, every
   binop, every condition, every width, and both operand shapes where an
   operand is accepted. *)
let full_opcode_table =
  let open Instr in
  [
    Hlt;
    Nop;
    Ret;
    Mov (1, Reg 2);
    Mov (3, Imm (-42L));
    Neg 4;
    Not 5;
    Cmp (6, Reg 7);
    Cmp (6, Imm 1234L);
    Jmp 0x8010;
    Call 0x8020;
    Callr 8;
    Push (Reg 9);
    Push (Imm 7L);
    Pop 10;
    Lea (11, 12, 256);
    Out (1, Reg 0);
    Out (2, Imm 99L);
    In (13, 3);
    Rdtsc 14;
  ]
  @ List.concat_map
      (fun op -> [ Bin (op, 1, Reg 2); Bin (op, 3, Imm 5L) ])
      [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Sar ]
  @ List.map (fun c -> Jcc (c, 0x8030)) [ Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge ]
  @ List.concat_map
      (fun w -> [ Load (w, 1, 2, 8); Store (w, 3, -8, Reg 4); Store (w, 5, 16, Imm 255L) ])
      [ W8; W16; W32; W64 ]

(* Every opcode in the table survives encode -> linear-sweep disassemble:
   same instruction, contiguous addresses, sizes matching the encoder. *)
let test_disasm_full_table () =
  let blob = Encoding.encode_program full_opcode_table in
  let lines = Disasm.disassemble ~origin:0x8000 blob in
  Alcotest.(check int) "one line per instruction" (List.length full_opcode_table)
    (List.length lines);
  let addr = ref 0x8000 in
  List.iter2
    (fun i (l : Disasm.line) ->
      Alcotest.check (Alcotest.option instr) ("decodes " ^ Instr.to_string i) (Some i)
        l.Disasm.instr;
      Alcotest.(check int) "contiguous" !addr l.Disasm.addr;
      Alcotest.(check int) "size matches encoder" (Encoding.encoded_size i) l.Disasm.size;
      addr := !addr + l.Disasm.size)
    full_opcode_table lines;
  Alcotest.(check int) "sweep covers the blob" (0x8000 + Bytes.length blob) !addr

let prop_disasm_roundtrip =
  QCheck.Test.make ~name:"disassemble roundtrips random programs" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) gen_instr))
    (fun is ->
      let blob = Encoding.encode_program is in
      let lines = Disasm.disassemble ~origin:0x8000 blob in
      List.length lines = List.length is
      && List.for_all2
           (fun i (l : Disasm.line) ->
             match l.Disasm.instr with Some j -> Instr.equal i j | None -> false)
           is lines)

(* Truncating any multi-byte encoding by its final byte must not decode:
   decode_program raises, and the disassembler's linear sweep marks the
   opcode byte as data instead of inventing an instruction. *)
let test_truncated_instructions () =
  List.iter
    (fun i ->
      let full = Encoding.encode_program [ i ] in
      let n = Bytes.length full in
      if n > 1 then begin
        let cut = Bytes.sub full 0 (n - 1) in
        (match Encoding.decode_program cut with
        | exception Encoding.Decode_error _ -> ()
        | _ -> Alcotest.fail ("truncated " ^ Instr.to_string i ^ " decoded"));
        match Disasm.disassemble ~origin:0x8000 cut with
        | [] -> Alcotest.fail "no lines for truncated blob"
        | first :: _ ->
            Alcotest.check (Alcotest.option instr)
              ("truncated " ^ Instr.to_string i ^ " resyncs as data")
              None first.Disasm.instr
      end)
    full_opcode_table

let test_disasm_render () =
  let p = Asm.assemble_string "start:\n  mov r1, 10\n  call fn\n  hlt\nfn:\n  ret\n" in
  let text = Disasm.of_program p in
  List.iter
    (fun needle ->
      let nh = String.length text and nn = String.length needle in
      let rec contains i =
        i + nn <= nh && (String.sub text i nn = needle || contains (i + 1))
      in
      Alcotest.(check bool) ("render mentions " ^ needle) true (contains 0))
    [ "start:"; "fn:"; "mov r1, 10"; "; -> fn"; "008000" ]

(* ------------------------------------------------------------------ *)
(* Assembler                                                            *)
(* ------------------------------------------------------------------ *)

let test_assemble_label_resolution () =
  let p =
    Asm.assemble
      [
        Asm.Label "start";
        Asm.Insn (Asm.SJmp (Asm.Lbl "end"));
        Asm.Label "end";
        Asm.Insn Asm.SHlt;
      ]
  in
  Alcotest.(check int) "start at origin" 0x8000 (Asm.lookup p "start");
  (* SJmp encodes to 5 bytes *)
  Alcotest.(check int) "end after jmp" 0x8005 (Asm.lookup p "end");
  match Encoding.decode_program p.code with
  | [ Instr.Jmp a; Instr.Hlt ] -> Alcotest.(check int) "jump target" 0x8005 a
  | _ -> Alcotest.fail "unexpected decode"

let test_assemble_duplicate_label () =
  Alcotest.check_raises "duplicate" (Asm.Asm_error "duplicate label x") (fun () ->
      ignore (Asm.assemble [ Asm.Label "x"; Asm.Label "x" ]))

let test_assemble_undefined_label () =
  Alcotest.check_raises "undefined" (Asm.Asm_error "undefined label nowhere") (fun () ->
      ignore (Asm.assemble [ Asm.Insn (Asm.SJmp (Asm.Lbl "nowhere")) ]))

let test_assemble_data_directives () =
  let p =
    Asm.assemble ~origin:0
      [ Asm.Byte [ 1; 2; 3 ]; Asm.Quad [ 0x1122334455667788L ]; Asm.Zero 4; Asm.Str "hi" ]
  in
  Alcotest.(check int) "total size" (3 + 8 + 4 + 3) (Bytes.length p.code);
  Alcotest.(check char) "first byte" '\001' (Bytes.get p.code 0);
  Alcotest.(check char) "quad LSB" '\x88' (Bytes.get p.code 3);
  Alcotest.(check char) "string" 'h' (Bytes.get p.code 15);
  Alcotest.(check char) "NUL terminator" '\000' (Bytes.get p.code 17)

let test_assemble_label_as_immediate () =
  let p =
    Asm.assemble
      [ Asm.Insn (Asm.SMov (0, Asm.OLbl "data")); Asm.Insn Asm.SHlt; Asm.Label "data" ]
  in
  match Encoding.decode_program p.code with
  | [ Instr.Mov (0, Instr.Imm a); Instr.Hlt ] ->
      Alcotest.(check int) "address immediate" (Asm.lookup p "data") (Int64.to_int a)
  | _ -> Alcotest.fail "unexpected decode"

let test_assemble_entry () =
  let p =
    Asm.assemble ~entry:"main"
      [ Asm.Insn Asm.SNop; Asm.Label "main"; Asm.Insn Asm.SHlt ]
  in
  Alcotest.(check int) "entry" 0x8001 p.entry

(* ------------------------------------------------------------------ *)
(* Textual parser                                                       *)
(* ------------------------------------------------------------------ *)

let test_parse_basic_program () =
  let src = {|
; compute 2 + 3
start:
  mov r0, 2
  add r0, 3
  hlt
|} in
  let p = Asm.assemble_string src in
  match Encoding.decode_program p.code with
  | [ Instr.Mov (0, Instr.Imm 2L); Instr.Bin (Instr.Add, 0, Instr.Imm 3L); Instr.Hlt ] -> ()
  | is ->
      Alcotest.failf "unexpected program: %s"
        (String.concat "; " (List.map Instr.to_string is))

let test_parse_memory_operands () =
  let p = Asm.assemble_string "ld64 r1, [r2+8]\nst32 [r3-4], r1\nld8 r0, [r15]" in
  match Encoding.decode_program p.code with
  | [
   Instr.Load (Instr.W64, 1, 2, 8);
   Instr.Store (Instr.W32, 3, -4, Instr.Reg 1);
   Instr.Load (Instr.W8, 0, 15, 0);
  ] ->
      ()
  | is ->
      Alcotest.failf "unexpected program: %s"
        (String.concat "; " (List.map Instr.to_string is))

let test_parse_branches () =
  let src = {|
loop:
  sub r0, 1
  cmp r0, 0
  jgt loop
  hlt
|} in
  let p = Asm.assemble_string src in
  match Encoding.decode_program p.code with
  | [ Instr.Bin (Instr.Sub, 0, _); Instr.Cmp (0, _); Instr.Jcc (Instr.Gt, tgt); Instr.Hlt ]
    ->
      Alcotest.(check int) "loop target" 0x8000 tgt
  | _ -> Alcotest.fail "unexpected decode"

let test_parse_io_and_misc () =
  let p = Asm.assemble_string "out 1, r0\nin r2, 3\nrdtsc r4\npush 99\npop r5" in
  match Encoding.decode_program p.code with
  | [
   Instr.Out (1, Instr.Reg 0);
   Instr.In (2, 3);
   Instr.Rdtsc 4;
   Instr.Push (Instr.Imm 99L);
   Instr.Pop 5;
  ] ->
      ()
  | _ -> Alcotest.fail "unexpected decode"

let test_parse_string_escapes () =
  let p = Asm.assemble_string ~origin:0 {|.string "a\nb\0c"|} in
  Alcotest.(check string) "escapes" "a\nb\000c\000" (Bytes.to_string p.code)

let test_parse_comments_and_blank_lines () =
  let p = Asm.assemble_string "\n; only a comment\n   \nhlt ; trailing\n" in
  Alcotest.(check int) "one instruction" 1 (Bytes.length p.code)

let test_parse_error_reports_line () =
  match Asm.parse "nop\nbogus r0\n" with
  | exception Asm.Asm_error msg ->
      Alcotest.(check bool) "mentions line 2" true
        (String.length msg >= 6 && String.sub msg 0 6 = "line 2")
  | _ -> Alcotest.fail "expected parse error"

let test_parse_hex_immediates () =
  let p = Asm.assemble_string "mov r0, 0xff" in
  match Encoding.decode_program p.code with
  | [ Instr.Mov (0, Instr.Imm 255L) ] -> ()
  | _ -> Alcotest.fail "hex immediate"

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "isa"
    [
      qsuite "encoding-properties"
        [ prop_roundtrip; prop_size_matches; prop_program_roundtrip; prop_cost_positive ];
      ( "decoding",
        [
          Alcotest.test_case "illegal opcode" `Quick test_decode_illegal_opcode;
          Alcotest.test_case "bad register" `Quick test_decode_bad_register;
        ] );
      qsuite "disasm-properties" [ prop_disasm_roundtrip ];
      ( "disasm",
        [
          Alcotest.test_case "full opcode table roundtrip" `Quick test_disasm_full_table;
          Alcotest.test_case "truncated instructions" `Quick test_truncated_instructions;
          Alcotest.test_case "render" `Quick test_disasm_render;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "label resolution" `Quick test_assemble_label_resolution;
          Alcotest.test_case "duplicate label" `Quick test_assemble_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_assemble_undefined_label;
          Alcotest.test_case "data directives" `Quick test_assemble_data_directives;
          Alcotest.test_case "label as immediate" `Quick test_assemble_label_as_immediate;
          Alcotest.test_case "entry symbol" `Quick test_assemble_entry;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic program" `Quick test_parse_basic_program;
          Alcotest.test_case "memory operands" `Quick test_parse_memory_operands;
          Alcotest.test_case "branches" `Quick test_parse_branches;
          Alcotest.test_case "io and misc" `Quick test_parse_io_and_misc;
          Alcotest.test_case "string escapes" `Quick test_parse_string_escapes;
          Alcotest.test_case "comments" `Quick test_parse_comments_and_blank_lines;
          Alcotest.test_case "error line numbers" `Quick test_parse_error_reports_line;
          Alcotest.test_case "hex immediates" `Quick test_parse_hex_immediates;
        ] );
    ]
