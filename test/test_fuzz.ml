(* Tests for the fuzzing substrate: fault-plan textual round-trips,
   corpus .vxr round-trips, .vxr parse robustness (typed errors, never
   exceptions), shrink contract properties (class preservation,
   monotone size, bounded oracle calls), coverage bitmap semantics, and
   end-to-end determinism of the oracle and a small campaign. *)

let fclass = Alcotest.testable (Fmt.of_to_string Fuzz.Oracle.fclass_name) ( = )

(* ------------------------------------------------------------------ *)
(* Fault-plan textual round trip                                        *)
(* ------------------------------------------------------------------ *)

let gen_trigger =
  QCheck.Gen.(
    let* p = int_range 1 99 in
    let* start = int_range 0 10 in
    let* interval = int_range 0 5 in
    oneofl
      [
        Cycles.Fault_plan.Prob (float_of_int p /. 100.);
        Cycles.Fault_plan.Every { start; interval };
      ])

let plan_sites =
  [ "spurious_exit"; "ept_storm"; "guest_hang"; "provision_fail"; "snapshot_corrupt"; "ring_corrupt" ]

let gen_plan =
  QCheck.Gen.(
    let* seed = int_range 0 0xFFFFF in
    (* of_string rejects site-less plans, so always name at least one *)
    let* n = int_range 1 (List.length plan_sites) in
    let sites = List.filteri (fun i _ -> i < n) plan_sites in
    let* triggers = flatten_l (List.map (fun _ -> gen_trigger) sites) in
    return (Cycles.Fault_plan.create ~seed (List.combine sites triggers)))

let prop_plan_roundtrip =
  QCheck.Test.make ~name:"fault-plan text round-trips" ~count:300
    (QCheck.make gen_plan ~print:Cycles.Fault_plan.to_string)
    (fun plan ->
      let text = Cycles.Fault_plan.to_string plan in
      match Cycles.Fault_plan.of_string text with
      | Error e -> QCheck.Test.fail_reportf "did not reparse: %s (%s)" text e
      | Ok plan' ->
          Cycles.Fault_plan.to_string plan' = text
          && Cycles.Fault_plan.seed plan' = Cycles.Fault_plan.seed plan)

let prop_plan_replay_identical =
  QCheck.Test.make ~name:"reparsed plan fires identically" ~count:100
    (QCheck.make QCheck.Gen.(pair gen_plan (int_range 1 200)))
    (fun (plan, n) ->
      let text = Cycles.Fault_plan.to_string plan in
      match Cycles.Fault_plan.of_string text with
      | Error _ -> false
      | Ok plan' ->
          let fire p site = List.init n (fun _ -> Cycles.Fault_plan.fires p ~site) in
          List.for_all
            (fun (site, _) -> fire plan site = fire plan' site)
            (Cycles.Fault_plan.sites plan))

(* ------------------------------------------------------------------ *)
(* Corpus .vxr round trip                                               *)
(* ------------------------------------------------------------------ *)

let gen_policy =
  QCheck.Gen.oneofl
    [
      Wasp.Policy.deny_all;
      Wasp.Policy.allow_all;
      Wasp.Policy.Mask (Wasp.Policy.mask_of_list [ Wasp.Hc.write; Wasp.Hc.read ]);
      Wasp.Policy.Mask 0x1234L;
    ]

let gen_case =
  QCheck.Gen.(
    let* plane = oneofl [ Fuzz.Corpus.Image_bytes; Fuzz.Corpus.Plan ] in
    let* code = string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 1 64) in
    let* seed = int_range 0 0xFFFF in
    let* policy = gen_policy in
    let* fuel = int_range 1 100_000 in
    let* plan =
      oneofl [ None; Some "seed=0x7;spurious_exit=@0+2"; Some "seed=0x9;ept_storm=p0.25" ]
    in
    return { Fuzz.Corpus.plane; mode = Vm.Modes.Long; code; seed; policy; fuel; plan })

let print_case c = Fuzz.Corpus.to_vxr_string c

let prop_case_roundtrip =
  QCheck.Test.make ~name:"case survives .vxr round trip" ~count:200
    (QCheck.make gen_case ~print:print_case)
    (fun c ->
      match Fuzz.Corpus.of_vxr_string (Fuzz.Corpus.to_vxr_string c) with
      | Error e -> QCheck.Test.fail_reportf "round trip failed: %s" e
      | Ok c' -> c' = c)

(* Truncating a valid recording anywhere must yield a typed error or a
   valid parse — never an exception (the corpus is full of killed
   writes). *)
let prop_truncation_never_raises =
  QCheck.Test.make ~name:".vxr truncation never raises" ~count:300
    (QCheck.make
       QCheck.Gen.(pair gen_case (int_range 0 1000))
       ~print:(fun (c, n) -> Printf.sprintf "cut=%d of %s" n (print_case c)))
    (fun (c, cut) ->
      let text = Fuzz.Corpus.to_vxr_string c in
      let cut = min cut (String.length text) in
      match Profiler.Replay.of_string (String.sub text 0 cut) with
      | Ok _ | Error _ -> true)

let garbage_rejected () =
  let cases =
    [
      "";
      "vxr1";
      "not a recording at all";
      "vxr1\nimage x\nmode long\nmem_size -5\n";
      "vxr1\nimage x\nmode long\norigin 32768\nentry 0\nmem_size 16\nseed 1\npolicy deny_all\nfuel 9\nmd5 0\ncode 00\n";
    ]
  in
  List.iter
    (fun s ->
      match Profiler.Replay.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "garbage accepted: %S" s)
    cases

let load_dir_tolerates_junk () =
  let dir = Filename.temp_file "fuzz_corpus" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "good.vxr" (Fuzz.Corpus.to_vxr_string (List.hd (Fuzz.Corpus.seeds ())));
  write "junk.vxr" "vxr1\ntrailing garbage";
  write "empty.vxr" "";
  write "ignored.txt" "not a corpus file";
  let ok, bad = Fuzz.Corpus.load_dir dir in
  Alcotest.(check int) "one valid case" 1 (List.length ok);
  Alcotest.(check int) "two rejects" 2 (List.length bad)

(* ------------------------------------------------------------------ *)
(* Shrink contract                                                      *)
(* ------------------------------------------------------------------ *)

(* Synthetic checks keep the property fast while exercising the real
   search: "reproduces" = code retains a marker byte / enough length /
   the plan names a site. *)
let gen_marker_input =
  QCheck.Gen.(
    let* c = gen_case in
    let* marker = map Char.chr (int_range 0 255) in
    let* at = int_range 0 (String.length c.Fuzz.Corpus.code - 1) in
    let b = Bytes.of_string c.Fuzz.Corpus.code in
    Bytes.set b at marker;
    return ({ c with Fuzz.Corpus.code = Bytes.to_string b }, marker))

let prop_shrink_preserves_check =
  QCheck.Test.make ~name:"shrink preserves the failure class" ~count:100
    (QCheck.make gen_marker_input ~print:(fun (c, m) ->
         Printf.sprintf "marker=%C %s" m (print_case c)))
    (fun (c, marker) ->
      let check c = String.contains c.Fuzz.Corpus.code marker in
      QCheck.assume (check c);
      check (Fuzz.Shrink.shrink ~check c))

let prop_shrink_monotone =
  QCheck.Test.make ~name:"shrink never grows the case" ~count:100
    (QCheck.make gen_marker_input ~print:(fun (c, m) ->
         Printf.sprintf "marker=%C %s" m (print_case c)))
    (fun (c, marker) ->
      let check c = String.contains c.Fuzz.Corpus.code marker in
      QCheck.assume (check c);
      Fuzz.Shrink.size (Fuzz.Shrink.shrink ~check c) <= Fuzz.Shrink.size c)

let prop_shrink_bounded_calls =
  QCheck.Test.make ~name:"shrink respects the call budget" ~count:50
    (QCheck.make gen_case ~print:print_case)
    (fun c ->
      let calls = ref 0 in
      let check c' =
        incr calls;
        String.length c'.Fuzz.Corpus.code >= 1
      in
      let budget = 40 in
      ignore (Fuzz.Shrink.shrink ~check ~budget c);
      !calls <= budget)

(* ------------------------------------------------------------------ *)
(* Coverage bitmap                                                      *)
(* ------------------------------------------------------------------ *)

let gen_features =
  QCheck.Gen.(list_size (int_range 0 40) (string_size ~gen:printable (int_range 1 20)))

let prop_coverage_idempotent =
  QCheck.Test.make ~name:"re-observing features yields nothing new" ~count:200
    (QCheck.make gen_features)
    (fun fs ->
      let t = Fuzz.Coverage.create () in
      let first = Fuzz.Coverage.observe t fs in
      let again = Fuzz.Coverage.observe t fs in
      first <= List.length fs && again = 0)

let prop_coverage_buckets_monotone =
  QCheck.Test.make ~name:"log2 buckets are monotone" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 0 1_000_000) (int_range 0 1_000_000)))
    (fun (a, b) ->
      let low = min a b and high = max a b in
      Fuzz.Coverage.log2_bucket low <= Fuzz.Coverage.log2_bucket high)

(* ------------------------------------------------------------------ *)
(* Oracle and campaign determinism                                      *)
(* ------------------------------------------------------------------ *)

let oracle_deterministic () =
  let case = List.hd (Fuzz.Corpus.seeds ()) in
  let v1 = Fuzz.Oracle.classify case in
  let v2 = Fuzz.Oracle.classify case in
  Alcotest.(check (list string)) "features" v1.Fuzz.Oracle.features v2.Fuzz.Oracle.features;
  Alcotest.(check (option (pair fclass string)))
    "finding" v1.Fuzz.Oracle.finding v2.Fuzz.Oracle.finding

let seeds_are_clean () =
  List.iter
    (fun case ->
      match (Fuzz.Oracle.classify case).Fuzz.Oracle.finding with
      | None -> ()
      | Some (cls, detail) ->
          Alcotest.failf "seed %s: unexpected %s: %s" (Fuzz.Corpus.name case)
            (Fuzz.Oracle.fclass_name cls) detail)
    (Fuzz.Corpus.seeds ())

let campaign_deterministic () =
  let run () =
    let s =
      Fuzz.Driver.run { Fuzz.Driver.default_config with seed = 0xBEE; iters = Some 15 }
    in
    ( s.Fuzz.Driver.iterations,
      s.Fuzz.Driver.corpus_size,
      s.Fuzz.Driver.coverage_bits,
      List.map
        (fun f -> (f.Fuzz.Driver.f_class, Fuzz.Corpus.digest f.Fuzz.Driver.f_shrunk))
        s.Fuzz.Driver.findings )
  in
  let a = run () and b = run () in
  if a <> b then Alcotest.fail "same seed produced different campaigns"

let canaries_detected () =
  (* the planted harness bugs must surface from the seed corpus alone *)
  List.iter
    (fun canary ->
      let found =
        List.exists
          (fun case ->
            match (Fuzz.Oracle.classify ~canary case).Fuzz.Oracle.finding with
            | Some (Fuzz.Oracle.Canary_divergence, _) -> true
            | _ -> false)
          (Fuzz.Corpus.seeds ())
      in
      if not found then
        Alcotest.failf "canary %s not detected on the seed corpus"
          (Fuzz.Oracle.canary_name canary))
    [ Fuzz.Oracle.Shift_mask; Fuzz.Oracle.Cycle_skew ]

let mutation_deterministic () =
  let seed_case = List.hd (Fuzz.Corpus.seeds ()) in
  let mutants rng_seed =
    let rng = Cycles.Rng.create ~seed:rng_seed in
    List.init 20 (fun _ -> Fuzz.Corpus.digest (Fuzz.Mutate.mutate ~rng seed_case))
  in
  Alcotest.(check (list string)) "same stream" (mutants 5) (mutants 5)

let ring_mutants_keep_trampoline () =
  let blob = Fuzz.Corpus.seed_ring_blob () in
  let case =
    Fuzz.Corpus.ring_case ~blob ~seed:1 ~policy:Wasp.Policy.allow_all
      ~fuel:Fuzz.Corpus.default_fuel ~plan:None
  in
  let off = Lazy.force Fuzz.Corpus.ring_data_offset in
  let rng = Cycles.Rng.create ~seed:9 in
  let prefix s = String.sub s 0 off in
  for _ = 1 to 50 do
    let m = Fuzz.Mutate.mutate ~rng case in
    if m.Fuzz.Corpus.plane = Fuzz.Corpus.Ring_batch && String.length m.Fuzz.Corpus.code >= off
    then
      Alcotest.(check string)
        "trampoline prefix intact" (prefix case.Fuzz.Corpus.code)
        (prefix m.Fuzz.Corpus.code)
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "fault-plan",
        List.map QCheck_alcotest.to_alcotest
          [ prop_plan_roundtrip; prop_plan_replay_identical ] );
      ( "corpus",
        List.map QCheck_alcotest.to_alcotest
          [ prop_case_roundtrip; prop_truncation_never_raises ]
        @ [
            Alcotest.test_case "garbage rejected with typed errors" `Quick garbage_rejected;
            Alcotest.test_case "load_dir tolerates junk" `Quick load_dir_tolerates_junk;
          ] );
      ( "shrink",
        List.map QCheck_alcotest.to_alcotest
          [ prop_shrink_preserves_check; prop_shrink_monotone; prop_shrink_bounded_calls ]
      );
      ( "coverage",
        List.map QCheck_alcotest.to_alcotest
          [ prop_coverage_idempotent; prop_coverage_buckets_monotone ] );
      ( "determinism",
        [
          Alcotest.test_case "oracle verdict is reproducible" `Quick oracle_deterministic;
          Alcotest.test_case "seed corpus is finding-free" `Quick seeds_are_clean;
          Alcotest.test_case "campaign is a function of its seed" `Quick
            campaign_deterministic;
          Alcotest.test_case "mutation stream is seeded" `Quick mutation_deterministic;
          Alcotest.test_case "ring mutants keep the trampoline" `Quick
            ring_mutants_keep_trampoline;
        ] );
      ( "canary",
        [ Alcotest.test_case "planted bugs are detected" `Quick canaries_detected ] );
    ]
