(* Tests for the Vespid serverless platform, the container baseline, and
   the load generator. *)

let js_b64 = Vjs.Workload.base64_js_source

let test_vespid_invoke_correct () =
  let w = Wasp.Runtime.create () in
  let v = Serverless.Vespid.create w in
  Serverless.Vespid.register v ~name:"b64" ~source:js_b64 ~entry:"encode";
  let input = Vjs.Workload.make_input ~size:120 in
  match Serverless.Vespid.invoke v ~name:"b64" ~input with
  | Ok out ->
      Alcotest.(check string) "matches reference" (Vjs.Workload.reference_encode input) out
  | Error e -> Alcotest.fail e

let test_vespid_unknown_function () =
  let w = Wasp.Runtime.create () in
  let v = Serverless.Vespid.create w in
  match Serverless.Vespid.invoke v ~name:"nope" ~input:Bytes.empty with
  | exception Serverless.Vespid.Unknown_function "nope" -> ()
  | _ -> Alcotest.fail "expected Unknown_function"

let test_vespid_warm_faster_than_cold () =
  let w = Wasp.Runtime.create ~clean:`Async () in
  let v = Serverless.Vespid.create w in
  Serverless.Vespid.register v ~name:"b64" ~source:js_b64 ~entry:"encode";
  let input = Vjs.Workload.make_input ~size:120 in
  let _, cold = Serverless.Vespid.invoke_timed v ~name:"b64" ~input in
  let _, warm = Serverless.Vespid.invoke_timed v ~name:"b64" ~input in
  Alcotest.(check bool) (Printf.sprintf "warm %Ld < cold %Ld" warm cold) true (warm < cold)

let test_vespid_isolates_functions () =
  (* one function's JS error must not affect another's invocation *)
  let w = Wasp.Runtime.create () in
  let v = Serverless.Vespid.create w in
  Serverless.Vespid.register v ~name:"bad" ~source:"function boom(d) { return nonexistent(); }"
    ~entry:"boom";
  Serverless.Vespid.register v ~name:"b64" ~source:js_b64 ~entry:"encode";
  (match Serverless.Vespid.invoke v ~name:"bad" ~input:Bytes.empty with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected JS error");
  let input = Vjs.Workload.make_input ~size:33 in
  match Serverless.Vespid.invoke v ~name:"b64" ~input with
  | Ok out -> Alcotest.(check string) "healthy" (Vjs.Workload.reference_encode input) out
  | Error e -> Alcotest.fail e

let test_vespid_registered () =
  let w = Wasp.Runtime.create () in
  let v = Serverless.Vespid.create w in
  Serverless.Vespid.register v ~name:"a" ~source:js_b64 ~entry:"encode";
  Serverless.Vespid.register v ~name:"b" ~source:js_b64 ~entry:"encode";
  Alcotest.(check (list string)) "registered" [ "a"; "b" ] (Serverless.Vespid.registered v)

(* ------------------------------------------------------------------ *)
(* Container baseline                                                   *)
(* ------------------------------------------------------------------ *)

let ow () =
  let clock = Cycles.Clock.create () in
  let t = Serverless.Openwhisk.create ~clock () in
  Serverless.Openwhisk.register t ~name:"b64" ~source:js_b64 ~entry:"encode";
  (t, clock)

let test_openwhisk_correct () =
  let t, _ = ow () in
  let input = Vjs.Workload.make_input ~size:90 in
  match Serverless.Openwhisk.invoke t ~now:0L ~name:"b64" ~input with
  | Ok out, _ ->
      Alcotest.(check string) "matches reference" (Vjs.Workload.reference_encode input) out
  | Error e, _ -> Alcotest.fail e

let test_openwhisk_cold_then_warm () =
  let t, clock = ow () in
  let input = Vjs.Workload.make_input ~size:90 in
  let _, cold = Serverless.Openwhisk.invoke t ~now:0L ~name:"b64" ~input in
  (* the container is busy until the first request completes *)
  let _, warm = Serverless.Openwhisk.invoke t ~now:(Int64.add cold 1000L) ~name:"b64" ~input in
  Alcotest.(check int) "one cold start" 1 (Serverless.Openwhisk.cold_starts t);
  Alcotest.(check int) "one warm hit" 1 (Serverless.Openwhisk.warm_hits t);
  let ms = Cycles.Clock.to_ms clock in
  Alcotest.(check bool)
    (Printf.sprintf "cold %.0fms >> warm %.1fms" (ms cold) (ms warm))
    true
    (Int64.to_float cold > 10.0 *. Int64.to_float warm);
  (* cold start is hundreds of milliseconds *)
  Alcotest.(check bool) "cold > 300ms" true (ms cold > 300.0)

let test_openwhisk_keepalive_expiry () =
  let t, _ = ow () in
  let input = Vjs.Workload.make_input ~size:10 in
  let _, first = Serverless.Openwhisk.invoke t ~now:0L ~name:"b64" ~input in
  (* past the keep-alive window: container reaped, cold again *)
  let long_after = Int64.add first (Int64.add Serverless.Openwhisk.keepalive_cycles 10_000_000L) in
  ignore (Serverless.Openwhisk.invoke t ~now:long_after ~name:"b64" ~input);
  Alcotest.(check int) "two cold starts" 2 (Serverless.Openwhisk.cold_starts t)

(* ------------------------------------------------------------------ *)
(* Load generator                                                       *)
(* ------------------------------------------------------------------ *)

let test_loadgen_buckets_cover_profile () =
  let buckets =
    Serverless.Loadgen.run
      ~service:(fun ~now:_ -> 2_690_000L (* 1 ms *))
      ~profile:[ { Serverless.Loadgen.duration_s = 2.0; clients = 2 } ]
      ()
  in
  Alcotest.(check bool) "at least 2 buckets" true (List.length buckets >= 2);
  let total = List.fold_left (fun a b -> a + b.Serverless.Loadgen.completed) 0 buckets in
  Alcotest.(check bool) (Printf.sprintf "completed %d > 0" total) true (total > 0)

let test_loadgen_more_clients_more_throughput () =
  let run clients =
    let buckets =
      Serverless.Loadgen.run
        ~service:(fun ~now:_ -> 2_690_000L)
        ~profile:[ { Serverless.Loadgen.duration_s = 3.0; clients } ]
        ()
    in
    List.fold_left (fun a b -> a + b.Serverless.Loadgen.completed) 0 buckets
  in
  let low = run 1 and high = run 8 in
  Alcotest.(check bool) (Printf.sprintf "%d < %d" low high) true (low < high)

let test_loadgen_slow_service_increases_latency () =
  let mean_latency service_cycles =
    let buckets =
      Serverless.Loadgen.run
        ~service:(fun ~now:_ -> service_cycles)
        ~profile:[ { Serverless.Loadgen.duration_s = 3.0; clients = 4 } ]
        ()
    in
    let vals = List.filter_map (fun b -> b.Serverless.Loadgen.mean_ms) buckets in
    Stats.Descriptive.mean (Array.of_list vals)
  in
  let fast = mean_latency 2_690_000L and slow = mean_latency 26_900_000L in
  Alcotest.(check bool) (Printf.sprintf "%.2fms < %.2fms" fast slow) true (fast < slow)

let test_loadgen_idle_bucket_has_no_latency () =
  (* a 1.5 s service means nothing completes inside the first one-second
     bucket; it must report [None], not a bogus latency from an empty
     sample set *)
  let buckets =
    Serverless.Loadgen.run
      ~service:(fun ~now:_ -> 4_035_000_000L)
      ~profile:[ { Serverless.Loadgen.duration_s = 2.0; clients = 2 } ]
      ()
  in
  (match buckets with
  | first :: _ ->
      Alcotest.(check int) "first bucket idle" 0 first.Serverless.Loadgen.completed;
      Alcotest.(check bool) "no mean" true (first.Serverless.Loadgen.mean_ms = None);
      Alcotest.(check bool) "no p99" true (first.Serverless.Loadgen.p99_ms = None)
  | [] -> Alcotest.fail "no buckets");
  Alcotest.(check bool) "later buckets do measure latency" true
    (List.exists (fun b -> b.Serverless.Loadgen.mean_ms <> None) buckets)

let test_bursty_profile_shape () =
  let p = Serverless.Loadgen.bursty_profile in
  Alcotest.(check int) "five phases" 5 (List.length p);
  let clients = List.map (fun ph -> ph.Serverless.Loadgen.clients) p in
  (match clients with
  | [ a; b; c; d; e ] ->
      Alcotest.(check bool) "two bursts" true (b > a && b > c && d > c && d > e)
  | _ -> Alcotest.fail "unexpected profile")

(* ------------------------------------------------------------------ *)
(* Gateway hardening: circuit breaker and load shedding                *)
(* ------------------------------------------------------------------ *)

let post path body =
  Vhttp.Http.request_to_string (Vhttp.Http.make_request ~body "POST" path)

let status_of raw =
  match Vhttp.Http.parse_response raw with
  | Ok r -> r.Vhttp.Http.status
  | Error e -> Alcotest.failf "bad response: %s" e

let shout_src =
  "function shout(d) { var s = \"\"; for (var i = 0; i < d.length; i++) { s += \
   String.fromCharCode(d[i]); } return s.toUpperCase(); }"

let boom_src = "function boom(d) { return nothing_here(); }"

let hardened_gateway ?shed () =
  let w = Wasp.Runtime.create ~clean:`Async () in
  let platform = Serverless.Vespid.create w in
  let breaker =
    { Serverless.Gateway.failure_threshold = 2; cooldown = 1_000L }
  in
  (w, Serverless.Gateway.create ~breaker ?shed platform)

let check_state msg expected g name =
  let to_s = function
    | Serverless.Gateway.Closed -> "closed"
    | Serverless.Gateway.Open -> "open"
    | Serverless.Gateway.Half_open -> "half-open"
  in
  Alcotest.(check string) msg (to_s expected)
    (to_s (Serverless.Gateway.breaker_state g ~name))

let test_breaker_opens_after_threshold () =
  let w, g = hardened_gateway () in
  ignore (Serverless.Gateway.handle g (post "/register/bad?entry=boom" boom_src));
  ignore (Serverless.Gateway.handle g (post "/register/ok?entry=shout" shout_src));
  check_state "fresh function is closed" Serverless.Gateway.Closed g "bad";
  Alcotest.(check int) "first failure" 500
    (status_of (Serverless.Gateway.handle g (post "/invoke/bad" "x")));
  check_state "one failure: still closed" Serverless.Gateway.Closed g "bad";
  Alcotest.(check int) "second failure" 500
    (status_of (Serverless.Gateway.handle g (post "/invoke/bad" "x")));
  check_state "threshold reached: open" Serverless.Gateway.Open g "bad";
  Alcotest.(check int) "open breaker refuses" 503
    (status_of (Serverless.Gateway.handle g (post "/invoke/bad" "x")));
  Alcotest.(check int) "rejection counted" 1 (Serverless.Gateway.breaker_rejections g);
  (* breakers are per function: the healthy one is unaffected *)
  check_state "other function closed" Serverless.Gateway.Closed g "ok";
  Alcotest.(check int) "other function serves" 200
    (status_of (Serverless.Gateway.handle g (post "/invoke/ok" "hi")));
  ignore w

let test_breaker_half_open_probe () =
  let w, g = hardened_gateway () in
  ignore (Serverless.Gateway.handle g (post "/register/bad?entry=boom" boom_src));
  ignore (Serverless.Gateway.handle g (post "/invoke/bad" "x"));
  ignore (Serverless.Gateway.handle g (post "/invoke/bad" "x"));
  check_state "open" Serverless.Gateway.Open g "bad";
  (* cooldown elapses on the virtual clock *)
  Cycles.Clock.advance_int (Wasp.Runtime.clock w) 2_000;
  check_state "cooldown elapsed: half-open" Serverless.Gateway.Half_open g "bad";
  (* the admitted probe fails: straight back to open, cooldown restarts *)
  Alcotest.(check int) "probe admitted and fails" 500
    (status_of (Serverless.Gateway.handle g (post "/invoke/bad" "x")));
  check_state "failed probe re-opens" Serverless.Gateway.Open g "bad";
  Alcotest.(check int) "refusing again" 503
    (status_of (Serverless.Gateway.handle g (post "/invoke/bad" "x")))

let test_breaker_closes_on_successful_probe () =
  let w, g = hardened_gateway () in
  (* fails on long payloads, succeeds on short ones *)
  let flaky_src =
    "function flaky(d) { if (d.length > 2) { return nothing_here(); } return \"ok\"; }"
  in
  ignore (Serverless.Gateway.handle g (post "/register/fn?entry=flaky" flaky_src));
  ignore (Serverless.Gateway.handle g (post "/invoke/fn" "looong"));
  ignore (Serverless.Gateway.handle g (post "/invoke/fn" "looong"));
  check_state "open" Serverless.Gateway.Open g "fn";
  Cycles.Clock.advance_int (Wasp.Runtime.clock w) 2_000;
  Alcotest.(check int) "successful probe" 200
    (status_of (Serverless.Gateway.handle g (post "/invoke/fn" "y")));
  check_state "success closes the breaker" Serverless.Gateway.Closed g "fn";
  Alcotest.(check int) "requests flow again" 200
    (status_of (Serverless.Gateway.handle g (post "/invoke/fn" "z")))

let test_shed_accounting () =
  let shed = { Serverless.Gateway.burst = 3; refill_per_s = 2.0 } in
  let w, g = hardened_gateway ~shed () in
  ignore (Serverless.Gateway.handle g (post "/register/ok?entry=shout" shout_src));
  for i = 1 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "burst request %d admitted" i)
      200
      (status_of (Serverless.Gateway.handle g (post "/invoke/ok" "hi")))
  done;
  Alcotest.(check int) "bucket empty: shed" 429
    (status_of (Serverless.Gateway.handle g (post "/invoke/ok" "hi")));
  Alcotest.(check int) "still empty: shed" 429
    (status_of (Serverless.Gateway.handle g (post "/invoke/ok" "hi")));
  Alcotest.(check int) "both sheds counted" 2 (Serverless.Gateway.shed_count g);
  (* ~1.1 virtual seconds at 2 tokens/s refills the bucket *)
  Cycles.Clock.advance_int (Wasp.Runtime.clock w) 3_000_000_000;
  Alcotest.(check int) "refilled: admitted again" 200
    (status_of (Serverless.Gateway.handle g (post "/invoke/ok" "hi")));
  Alcotest.(check int) "no further sheds" 2 (Serverless.Gateway.shed_count g)

let test_shed_off_by_default () =
  let _, g = hardened_gateway () in
  ignore (Serverless.Gateway.handle g (post "/register/ok?entry=shout" shout_src));
  for _ = 1 to 10 do
    Alcotest.(check int) "never shed" 200
      (status_of (Serverless.Gateway.handle g (post "/invoke/ok" "hi")))
  done;
  Alcotest.(check int) "no sheds counted" 0 (Serverless.Gateway.shed_count g)

(* ------------------------------------------------------------------ *)
(* Gateway tracing and SLOs                                            *)
(* ------------------------------------------------------------------ *)

let traced_gateway ?(seed = 0xACE) ?shed () =
  let w = Wasp.Runtime.create ~seed ~clean:`Async () in
  let hub = Telemetry.Hub.create ~clock:(Wasp.Runtime.clock w) () in
  Wasp.Runtime.set_telemetry w (Some hub);
  Telemetry.Hub.enable_tracing hub ~seed;
  let g = Serverless.Gateway.create ?shed (Serverless.Vespid.create w) in
  (w, hub, g)

let span_arg k (s : Telemetry.Span.span) = List.assoc_opt k s.Telemetry.Span.args

let test_gateway_trace_rooted_at_route () =
  let _, hub, g = traced_gateway () in
  ignore (Serverless.Gateway.handle g (post "/register/ok?entry=shout" shout_src));
  Telemetry.Hub.clear_spans hub;
  Alcotest.(check int) "invoke ok" 200
    (status_of (Serverless.Gateway.handle g (post "/invoke/ok" "hi")));
  let spans = Telemetry.Span.spans (Telemetry.Hub.spans hub) in
  let roots =
    List.filter (fun (s : Telemetry.Span.span) -> span_arg "parent_id" s = None) spans
  in
  (match roots with
  | [ r ] -> Alcotest.(check string) "root is the route span" "route" r.Telemetry.Span.name
  | l -> Alcotest.failf "expected exactly one root span, got %d" (List.length l));
  let root = List.hd roots in
  let trace = Option.get (span_arg "trace_id" root) in
  Alcotest.(check bool) "gateway, vespid and runtime share the trace" true
    (List.for_all (fun s -> span_arg "trace_id" s = Some trace) spans);
  (* the whole causal chain is retained: route -> invoke -> invocation
     -> provision -> pool_acquire, linked by parent ids *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span in trace") true
        (List.exists (fun (s : Telemetry.Span.span) -> s.Telemetry.Span.name = name) spans))
    [ "route"; "invoke"; "invocation"; "provision"; "pool_acquire" ]

let test_gateway_trace_ids_deterministic () =
  let run () =
    let _, hub, g = traced_gateway ~seed:11 () in
    ignore (Serverless.Gateway.handle g (post "/register/ok?entry=shout" shout_src));
    ignore (Serverless.Gateway.handle g (post "/invoke/ok" "hi"));
    List.map
      (fun (s : Telemetry.Span.span) ->
        (s.name, span_arg "trace_id" s, span_arg "span_id" s, span_arg "parent_id" s))
      (Telemetry.Span.spans (Telemetry.Hub.spans hub))
  in
  Alcotest.(check bool) "same seed, byte-identical gateway traces" true (run () = run ())

let test_gateway_slo_recording () =
  let _, hub, g =
    traced_gateway ~shed:{ Serverless.Gateway.burst = 4; refill_per_s = 0.0001 } ()
  in
  ignore hub;
  Serverless.Gateway.enable_slos g ();
  let avail = Option.get (Serverless.Gateway.availability_slo g) in
  let lat = Option.get (Serverless.Gateway.latency_slo g) in
  ignore (Serverless.Gateway.handle g (post "/register/ok?entry=shout" shout_src));
  ignore (Serverless.Gateway.handle g (post "/register/bad?entry=boom" boom_src));
  (* 404 is the caller's mistake: no SLO event at all *)
  ignore (Serverless.Gateway.handle g (post "/invoke/nope" "x"));
  Alcotest.(check int) "404 not counted" 0
    (Telemetry.Slo.good_count avail + Telemetry.Slo.bad_count avail);
  (* success: good availability + a latency sample *)
  ignore (Serverless.Gateway.handle g (post "/invoke/ok" "hi"));
  Alcotest.(check int) "success is good" 1 (Telemetry.Slo.good_count avail);
  Alcotest.(check int) "success has a latency event" 1
    (Telemetry.Slo.good_count lat + Telemetry.Slo.bad_count lat);
  (* failure: bad availability, no latency sample *)
  ignore (Serverless.Gateway.handle g (post "/invoke/bad" "x"));
  Alcotest.(check int) "500 is bad" 1 (Telemetry.Slo.bad_count avail);
  Alcotest.(check int) "no latency for failures" 1
    (Telemetry.Slo.good_count lat + Telemetry.Slo.bad_count lat);
  (* exhaust the token bucket (the 404 probe burned a token too):
     sheds are bad availability *)
  ignore (Serverless.Gateway.handle g (post "/invoke/ok" "hi"));
  Alcotest.(check int) "shed" 429
    (status_of (Serverless.Gateway.handle g (post "/invoke/ok" "hi")));
  Alcotest.(check int) "shed is bad" 2 (Telemetry.Slo.bad_count avail);
  Alcotest.(check bool) "compliance reflects the mix" true
    (Telemetry.Slo.compliance avail < 1.0)

let test_gateway_slo_requires_hub () =
  let w = Wasp.Runtime.create ~clean:`Async () in
  let g = Serverless.Gateway.create (Serverless.Vespid.create w) in
  Alcotest.(check bool) "enable_slos without a hub rejected" true
    (match Serverless.Gateway.enable_slos g () with
    | () -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "serverless"
    [
      ( "vespid",
        [
          Alcotest.test_case "invoke correct" `Quick test_vespid_invoke_correct;
          Alcotest.test_case "unknown function" `Quick test_vespid_unknown_function;
          Alcotest.test_case "warm faster" `Quick test_vespid_warm_faster_than_cold;
          Alcotest.test_case "isolates functions" `Quick test_vespid_isolates_functions;
          Alcotest.test_case "registered list" `Quick test_vespid_registered;
        ] );
      ( "openwhisk",
        [
          Alcotest.test_case "correct" `Quick test_openwhisk_correct;
          Alcotest.test_case "cold then warm" `Quick test_openwhisk_cold_then_warm;
          Alcotest.test_case "keepalive expiry" `Quick test_openwhisk_keepalive_expiry;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "buckets cover profile" `Quick test_loadgen_buckets_cover_profile;
          Alcotest.test_case "clients scale throughput" `Quick
            test_loadgen_more_clients_more_throughput;
          Alcotest.test_case "slow service slower" `Quick
            test_loadgen_slow_service_increases_latency;
          Alcotest.test_case "idle bucket has no latency" `Quick
            test_loadgen_idle_bucket_has_no_latency;
          Alcotest.test_case "bursty profile shape" `Quick test_bursty_profile_shape;
        ] );
      ( "gateway",
        [
          Alcotest.test_case "breaker opens after threshold" `Quick
            test_breaker_opens_after_threshold;
          Alcotest.test_case "half-open probe" `Quick test_breaker_half_open_probe;
          Alcotest.test_case "successful probe closes" `Quick
            test_breaker_closes_on_successful_probe;
          Alcotest.test_case "shed accounting" `Quick test_shed_accounting;
          Alcotest.test_case "shed off by default" `Quick test_shed_off_by_default;
        ] );
      ( "tracing-slo",
        [
          Alcotest.test_case "trace rooted at route span" `Quick
            test_gateway_trace_rooted_at_route;
          Alcotest.test_case "trace ids deterministic" `Quick
            test_gateway_trace_ids_deterministic;
          Alcotest.test_case "slo recording" `Quick test_gateway_slo_recording;
          Alcotest.test_case "slo requires hub" `Quick test_gateway_slo_requires_hub;
        ] );
    ]
