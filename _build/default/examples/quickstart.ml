(* Quickstart: the paper's Figure 9 example.

   Annotate a C function with [virtine]; every call then runs in its own
   isolated micro-VM, with arguments marshalled in and the result
   marshalled out. Run with:

     dune exec examples/quickstart.exe
*)

let source =
  {|
// the paper's Figure 9, verbatim
virtine int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
|}

let () =
  print_endline "== virtines quickstart ==";
  print_endline "compiling with the virtine C extensions...";
  let compiled = Vcc.Compile.compile ~name:"quickstart" source in
  let vi =
    match Vcc.Compile.find_virtine compiled "fib" with
    | Some vi -> vi
    | None -> failwith "fib was not annotated?"
  in
  Printf.printf "  image: %d bytes of code, %d KB guest region, %s mode\n"
    (Wasp.Image.size vi.Vcc.Compile.image)
    (vi.Vcc.Compile.image.Wasp.Image.mem_size / 1024)
    (Vm.Modes.to_string vi.Vcc.Compile.image.Wasp.Image.mode);
  (* an embeddable Wasp runtime: this is all a virtine client needs *)
  let w = Wasp.Runtime.create () in
  print_endline "invoking fib in isolated virtines:";
  List.iter
    (fun n ->
      let r = Vcc.Compile.invoke w compiled "fib" [ Int64.of_int n ] () in
      Printf.printf "  fib(%2d) = %-8Ld  [%6.1f us%s%s]\n" n r.Wasp.Runtime.return_value
        (Cycles.Clock.to_us (Wasp.Runtime.clock w) r.Wasp.Runtime.cycles)
        (if r.Wasp.Runtime.from_snapshot then ", snapshot" else ", cold boot")
        (if r.Wasp.Runtime.from_pool then ", pooled shell" else ""))
    [ 10; 15; 20; 10; 15; 20 ];
  let stats = Wasp.Runtime.pool_stats w in
  Printf.printf "shells created: %d, reused: %d (the pool at work)\n"
    stats.Wasp.Pool.created stats.Wasp.Pool.reused;
  (* isolation in action: the same runtime survives a wild virtine *)
  print_endline "\na misbehaving virtine cannot hurt the host:";
  let bad = Vcc.Compile.compile ~name:"bad" "virtine int wild() { int *p = (int*) 900000000; return *p; }" in
  let r = Vcc.Compile.invoke w bad "wild" [] () in
  (match r.Wasp.Runtime.outcome with
  | Wasp.Runtime.Faulted f ->
      Printf.printf "  virtine faulted in isolation: %s\n"
        (Format.asprintf "%a" Vm.Cpu.pp_exit (Vm.Cpu.Fault f))
  | _ -> print_endline "  unexpected: no fault?");
  let r = Vcc.Compile.invoke w compiled "fib" [ 12L ] () in
  Printf.printf "  and the runtime still works: fib(12) = %Ld\n" r.Wasp.Runtime.return_value
