(* Untrusted user-defined functions (the §6.5 / §7.1 scenario): JavaScript
   from users runs inside virtines where the only capabilities are
   get_data / return_data / snapshot -- a hostile UDF can at worst
   terminate its own virtine.

     dune exec examples/js_udf.exe
*)

let () =
  print_endline "== untrusted JavaScript UDFs in virtines (Vespid) ==";
  let w = Wasp.Runtime.create ~clean:`Async () in
  let platform = Serverless.Vespid.create w in
  (* a well-behaved UDF *)
  Serverless.Vespid.register platform ~name:"b64" ~source:Vjs.Workload.base64_js_source
    ~entry:"encode";
  (* a UDF that shouts *)
  Serverless.Vespid.register platform ~name:"shout"
    ~source:
      {|function shout(data) {
          var s = "";
          for (var i = 0; i < data.length; i++) { s += String.fromCharCode(data[i]); }
          return s.toUpperCase() + "!";
        }|}
    ~entry:"shout";
  (* a hostile UDF: infinite loop -- the engine's step budget kills it *)
  Serverless.Vespid.register platform ~name:"spin"
    ~source:"function spin(data) { while (true) { } }" ~entry:"spin";
  (* a buggy UDF *)
  Serverless.Vespid.register platform ~name:"buggy"
    ~source:"function buggy(data) { return data.no_such_method(); }" ~entry:"buggy";
  let clock = Wasp.Runtime.clock w in
  let invoke name input =
    let result, cycles =
      Serverless.Vespid.invoke_timed platform ~name ~input:(Bytes.of_string input)
    in
    match result with
    | Ok out -> Printf.printf "  %-6s -> %S  [%.0f us]\n" name out (Cycles.Clock.to_us clock cycles)
    | Error e -> Printf.printf "  %-6s -> error: %s (virtine terminated, host unharmed)\n" name e
  in
  print_endline "registered functions:";
  List.iter (Printf.printf "  - %s\n") (Serverless.Vespid.registered platform);
  print_endline "\nfirst invocations (cold: boot + engine init + snapshot):";
  invoke "b64" "hello virtines";
  invoke "shout" "isolation";
  print_endline "\nwarm invocations (snapshot restore, no engine setup):";
  invoke "b64" "hello again";
  invoke "shout" "fast now";
  print_endline "\nhostile / buggy code is contained:";
  invoke "spin" "x";
  invoke "buggy" "x";
  print_endline "\nand the platform keeps serving:";
  invoke "b64" "still alive"
