(* The Section 6.3 static-file server: the connection handler is a
   virtine-annotated C function making exactly seven host interactions
   per request, each one policy-checked.

     dune exec examples/http_server.exe
*)

let () =
  print_endline "== static-file HTTP server with virtine-isolated request handling ==";
  let w = Wasp.Runtime.create ~clean:`Async () in
  let path = Vhttp.Fileserver.add_default_files (Wasp.Runtime.env w) in
  let compiled = Vhttp.Fileserver.compile ~snapshot:true in
  let clock = Wasp.Runtime.clock w in
  print_endline "handler policy: read, write, open, close, stat -- nothing else";
  (* serve several requests, including a miss and a hostile one *)
  List.iter
    (fun p ->
      let served = Vhttp.Fileserver.serve_virtine w compiled ~path:p in
      Printf.printf "\nGET %-12s -> %d (%d body bytes, %d hypercalls, %.0f us%s)\n" p
        served.Vhttp.Fileserver.status
        (String.length served.Vhttp.Fileserver.body)
        served.Vhttp.Fileserver.hypercalls
        (Cycles.Clock.to_us clock served.Vhttp.Fileserver.cycles)
        (if served.Vhttp.Fileserver.hypercalls = 7 then ", the paper's 7 interactions" else ""))
    [ path; "/small.txt"; "/no-such-file" ];
  (* compare with the native handler *)
  let native_clock = Cycles.Clock.create () in
  let rng = Cycles.Rng.create ~seed:1 in
  let nat =
    Vhttp.Fileserver.serve_native ~env:(Wasp.Runtime.env w) ~clock:native_clock ~rng ~path
  in
  let virt = Vhttp.Fileserver.serve_virtine w compiled ~path in
  Printf.printf "\nhandler cost: native %.1f us vs virtine %.1f us\n"
    (Cycles.Clock.to_us native_clock nat.Vhttp.Fileserver.cycles)
    (Cycles.Clock.to_us clock virt.Vhttp.Fileserver.cycles);
  Printf.printf "identical bodies: %b\n"
    (nat.Vhttp.Fileserver.body = virt.Vhttp.Fileserver.body);
  print_endline "(end-to-end, the network path dominates: Figure 13 shows ~12% throughput cost)"
