(* The Section 4.2 echo-server study: a protected-mode virtine handles an
   HTTP request per invocation, with recv/send as its only capabilities.

     dune exec examples/echo_server.exe
*)

let () =
  print_endline "== echo server in a protected-mode virtine ==";
  let w = Wasp.Runtime.create ~clean:`Async () in
  let compiled = Vhttp.Echo.compile () in
  print_endline "handler (virtine C, compiled for 32-bit protected mode):";
  print_endline "  policy: recv + send only -- everything else is denied";
  (* warm up, then serve a few requests and show the milestones *)
  ignore (Vhttp.Echo.run_once w compiled ~payload:"warmup");
  let clock = Wasp.Runtime.clock w in
  List.iter
    (fun payload ->
      let ms, result = Vhttp.Echo.run_once w compiled ~payload in
      Printf.printf "\nrequest %S\n" payload;
      Printf.printf "  reached C code after %6.1f us\n" (Cycles.Clock.to_us clock ms.Vhttp.Echo.entry);
      Printf.printf "  recv() returned     %6.1f us\n"
        (Cycles.Clock.to_us clock ms.Vhttp.Echo.recv_done);
      Printf.printf "  send() completed    %6.1f us\n"
        (Cycles.Clock.to_us clock ms.Vhttp.Echo.send_done);
      Printf.printf "  echoed %Ld bytes, %d hypercalls\n" result.Wasp.Runtime.return_value
        result.Wasp.Runtime.hypercalls)
    [ "GET / HTTP/1.0\r\n\r\n"; "GET /index.html HTTP/1.0\r\nHost: tinker\r\n\r\n" ];
  print_endline "\n(sub-millisecond HTTP responses from a fresh VM per request, as in the paper)"
