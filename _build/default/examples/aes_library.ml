(* The §6.4 library-integration scenario: OpenSSL-style AES-128-CBC whose
   block cipher runs in virtine context. The library seam is one line --
   choose the backend -- exactly as the paper's one-keyword change.

     dune exec examples/aes_library.exe
*)

let to_hex b =
  String.concat ""
    (List.init (min 24 (Bytes.length b)) (fun i ->
         Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let () =
  print_endline "== AES-128-CBC with the block cipher in virtine context ==";
  let key = "0123456789abcdef" in
  let iv = Bytes.make 16 '\007' in
  let secret = Bytes.of_string "credit card 4111-1111-1111-1111, cvv 123" in
  let native = Vcrypto.Evp.create Vcrypto.Evp.Native ~key in
  let w = Wasp.Runtime.create ~clean:`Async () in
  let virtine = Vcrypto.Evp.create (Vcrypto.Evp.Virtine w) ~key in
  let c_native = Vcrypto.Evp.encrypt native ~iv secret in
  let c_virtine = Vcrypto.Evp.encrypt virtine ~iv secret in
  Printf.printf "native  ciphertext: %s...\n" (to_hex c_native);
  Printf.printf "virtine ciphertext: %s...\n" (to_hex c_virtine);
  Printf.printf "identical: %b (the isolation is invisible to callers)\n\n"
    (c_native = c_virtine);
  (* decrypt to prove it round-trips *)
  let ks = Vcrypto.Aes.expand_key key in
  (match Vcrypto.Aes.pkcs7_unpad (Vcrypto.Aes.decrypt_cbc ks ~iv c_virtine) with
  | Some plain -> Printf.printf "decrypts to: %S\n\n" (Bytes.to_string plain)
  | None -> print_endline "bad padding?");
  (* the cost of the seam, openssl-speed style *)
  print_endline "overhead per encryption call (the paper's speed benchmark):";
  let clock = Wasp.Runtime.clock w in
  List.iter
    (fun size ->
      let data = Bytes.create size in
      let t0 = Cycles.Clock.now clock in
      ignore (Vcrypto.Evp.encrypt virtine ~iv data);
      let cycles = Cycles.Clock.elapsed_since clock t0 in
      Printf.printf "  %6d B chunk: %7.1f us in virtine context\n" size
        (Cycles.Clock.to_us clock cycles))
    [ 64; 1024; 16384 ];
  print_endline "(per-call cost is dominated by the snapshot copy -- it is memory bound)"
