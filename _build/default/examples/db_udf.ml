(* §7.1's database UDF scenario: user-defined functions isolated in
   virtines, "allowing functions in unsafe languages to be safely used
   for UDFs" and isolating UDFs from one another.

     dune exec examples/db_udf.exe
*)

module T = Vdb.Table

let () =
  print_endline "== virtine-isolated database UDFs ==";
  let w = Wasp.Runtime.create ~clean:`Async () in
  let udfs = Vdb.Udf.create w in
  let t = T.create ~name:"orders" [ ("id", T.Tint); ("item", T.Ttext); ("total", T.Tint) ] in
  T.insert_all t
    [
      [ T.Int 1L; T.Text "keyboard"; T.Int 45L ];
      [ T.Int 2L; T.Text "monitor"; T.Int 310L ];
      [ T.Int 3L; T.Text "cable"; T.Int 9L ];
      [ T.Int 4L; T.Text "workstation"; T.Int 2200L ];
      [ T.Int 5L; T.Text "mouse"; T.Int 25L ];
    ];
  Printf.printf "table %s: %d rows\n\n" (T.name t) (T.length t);

  (* a JavaScript UDF from an untrusted tenant *)
  Vdb.Udf.register_js udfs ~name:"big_orders"
    ~source:"function pred(row) { return row.total >= 100; }" ~entry:"pred";
  Vdb.Udf.register_js udfs ~name:"describe"
    ~source:
      {|function fmt(row) { return row.item + " ($" + row.total + ")"; }|}
    ~entry:"fmt";
  print_endline "JS UDF query: big_orders |> describe (one virtine per query):";
  (match Vdb.Query.select udfs t ~where_:"big_orders" ~project:"describe" () with
  | Ok rows ->
      List.iter
        (fun row -> Printf.printf "  %s\n" (Format.asprintf "%a" T.pp_value (List.hd row)))
        rows
  | Error e -> Printf.printf "  error: %s\n" e);

  (* the same query with per-row isolation: every evaluation in its own
     virtine, so UDFs cannot even see each other's effects *)
  print_endline "\nsame query, per-row isolation (a fresh virtine per evaluation):";
  (match
     Vdb.Query.select udfs t ~where_:"big_orders" ~project:"describe"
       ~isolation:Vdb.Query.Per_row ()
   with
  | Ok rows -> Printf.printf "  %d rows (identical results, stronger isolation)\n" (List.length rows)
  | Error e -> Printf.printf "  error: %s\n" e);

  (* a C UDF: unsafe language, safely contained *)
  print_endline "\na C UDF over the integer columns:";
  Vdb.Udf.register_c udfs ~name:"cheap"
    ~source:"virtine int pred(int id, int total) { return total < 50; }" ~fn:"pred";
  (match Vdb.Query.select_c udfs t ~where_:"cheap" () with
  | Ok rows ->
      List.iter
        (fun row ->
          match row with
          | [ _; T.Text item; T.Int total ] -> Printf.printf "  %s ($%Ld)\n" item total
          | _ -> ())
        rows
  | Error e -> Printf.printf "  error: %s\n" e);

  (* hostile tenants cannot take the engine down *)
  print_endline "\na hostile UDF (infinite loop) is contained:";
  Vdb.Udf.register_js udfs ~name:"dos" ~source:"function pred(row) { while (true) { } }"
    ~entry:"pred";
  (match Vdb.Query.select udfs t ~where_:"dos" () with
  | Error e -> Printf.printf "  query failed safely: %s\n" e
  | Ok _ -> print_endline "  unexpected success");
  match Vdb.Query.select udfs t ~where_:"big_orders" () with
  | Ok rows -> Printf.printf "  and the engine still serves: %d rows\n" (List.length rows)
  | Error e -> Printf.printf "  error: %s\n" e
