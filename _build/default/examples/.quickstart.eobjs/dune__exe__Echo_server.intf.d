examples/echo_server.mli:
