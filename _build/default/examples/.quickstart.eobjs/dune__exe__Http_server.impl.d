examples/http_server.ml: Cycles List Printf String Vhttp Wasp
