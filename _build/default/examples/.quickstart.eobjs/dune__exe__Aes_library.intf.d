examples/aes_library.mli:
