examples/db_udf.ml: Format List Printf Vdb Wasp
