examples/aes_library.ml: Bytes Char Cycles List Printf String Vcrypto Wasp
