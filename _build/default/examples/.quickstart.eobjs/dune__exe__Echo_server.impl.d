examples/echo_server.ml: Cycles List Printf Vhttp Wasp
