examples/db_udf.mli:
