examples/quickstart.ml: Cycles Format Int64 List Printf Vcc Vm Wasp
