examples/quickstart.mli:
