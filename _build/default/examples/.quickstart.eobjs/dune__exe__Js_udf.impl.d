examples/js_udf.ml: Bytes Cycles List Printf Serverless Vjs Wasp
