examples/js_udf.mli:
