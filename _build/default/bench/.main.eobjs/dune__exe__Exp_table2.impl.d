bench/exp_table2.ml: Bench_util List Printf Stats Vm Wasp
