bench/exp_fig8.ml: Baselines Bench_util Kvmsim List Printf Stats Vm Wasp
