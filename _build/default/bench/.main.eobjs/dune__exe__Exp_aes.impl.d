bench/exp_aes.ml: Bench_util Bytes Char Cycles List Printf Stats Vcrypto Wasp
