bench/main.ml: Array Bechamel_suite Exp_ablations Exp_aes Exp_fig11 Exp_fig12 Exp_fig13 Exp_fig14 Exp_fig15 Exp_fig2 Exp_fig3 Exp_fig4 Exp_fig8 Exp_table1 Exp_table2 Exp_udf List Printf Sys
