bench/exp_fig3.ml: Bench_util List Printf Stats Vcc Vm Wasp
