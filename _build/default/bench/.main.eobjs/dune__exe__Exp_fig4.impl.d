bench/exp_fig4.ml: Array Bench_util Int64 List Printf Stats Vhttp Wasp
