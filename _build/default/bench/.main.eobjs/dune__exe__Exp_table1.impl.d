bench/exp_table1.ml: Array Bench_util Cycles Hashtbl List Option Printf Stats Vm
