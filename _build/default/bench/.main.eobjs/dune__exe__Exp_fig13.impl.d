bench/exp_fig13.ml: Array Bench_util Cycles Int64 List Printf Serverless Stats Vhttp Wasp
