bench/exp_fig14.ml: Bench_util Cycles List Printf Stats Vjs Wasp
