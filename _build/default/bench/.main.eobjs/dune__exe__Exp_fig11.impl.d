bench/exp_fig11.ml: Bench_util Cycles Int64 List Printf Stats Vcc Wasp
