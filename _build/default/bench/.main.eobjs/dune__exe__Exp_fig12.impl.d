bench/exp_fig12.ml: Bench_util List Printf Stats Vm Wasp
