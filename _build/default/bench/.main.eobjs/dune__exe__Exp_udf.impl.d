bench/exp_udf.ml: Bench_util Cycles Float Hashtbl Int64 List Printf Stats Vdb Vjs Wasp
