bench/bechamel_suite.ml: Analyze Baselines Bechamel Benchmark Bytes Cycles Hashtbl Instance Kvmsim List Measure Printf Staged Stats Test Time Toolkit Vcc Vcrypto Vhttp Vjs Vm Wasp
