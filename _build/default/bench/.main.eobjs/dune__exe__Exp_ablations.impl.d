bench/exp_ablations.ml: Bench_util Bytes List Printf Stats String Vm Wasp
