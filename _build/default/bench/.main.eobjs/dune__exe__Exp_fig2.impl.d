bench/exp_fig2.ml: Baselines Bench_util Kvmsim List Printf Stats
