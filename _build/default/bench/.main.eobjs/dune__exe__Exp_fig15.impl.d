bench/exp_fig15.ml: Array Bench_util Cycles Int64 List Printf Serverless Stats Vjs Wasp
