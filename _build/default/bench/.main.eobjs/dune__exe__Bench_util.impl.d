bench/bench_util.ml: Array Int64 Printf Stats
