bench/main.mli:
