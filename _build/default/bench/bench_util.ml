(* Shared helpers for the experiment harness. *)

let freq_ghz = 2.69

let us_of_cycles c = Int64.to_float c /. freq_ghz /. 1e3
let ms_of_cycles c = us_of_cycles c /. 1e3

let trials n f = Array.init n (fun _ -> Int64.to_float (f ()))

let summarize ?(tukey = true) xs = Stats.Descriptive.summarize ~tukey xs

let fmt_cycles c = Printf.sprintf "%.0f" c
let fmt_us_of_c c = Printf.sprintf "%.2f" (c /. freq_ghz /. 1e3)

let print_blank () = print_newline ()

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

let header name paper_ref =
  print_string (Stats.Report.section name);
  Printf.printf "(reproduces %s)\n\n%!" paper_ref
