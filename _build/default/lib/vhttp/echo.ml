(* recv = bit 10, send = bit 9 *)
let policy_mask = Wasp.Policy.mask_of_list [ Wasp.Hc.recv; Wasp.Hc.send ]

let source =
  Printf.sprintf
    {|
virtine_config(%Ld) int handle() {
  int t0 = rdtsc();
  char buf[1024];
  int n = recv(0, buf, 1024);
  int t1 = rdtsc();
  send(0, buf, n);
  int t2 = rdtsc();
  int *m = (int*) 256;
  m[0] = t0;
  m[1] = t1;
  m[2] = t2;
  return n;
}
|}
    policy_mask

let compile () =
  Vcc.Compile.compile ~name:"echo" ~mode:Vm.Modes.Protected ~snapshot:false source

type milestones = { entry : int64; recv_done : int64; send_done : int64 }

(* Protected-mode rdtsc values are truncated to 32 bits; reconstruct the
   delta from invocation start modulo 2^32 (each segment is far below
   4G cycles). *)
let delta32 ~start ~stamp =
  let mask = 0xFFFFFFFFL in
  Int64.logand (Int64.sub (Int64.logand stamp mask) (Int64.logand start mask)) mask

let run_once w compiled ~payload =
  let vi =
    match Vcc.Compile.find_virtine compiled "handle" with
    | Some vi -> vi
    | None -> failwith "echo: no virtine handler"
  in
  let client_end, server_end = Wasp.Hostenv.socket_pair (Wasp.Runtime.env w) in
  ignore (Wasp.Hostenv.send client_end (Bytes.of_string payload));
  let start = Cycles.Clock.now (Wasp.Runtime.clock w) in
  let stamps = ref (0L, 0L, 0L) in
  let inspect mem _cpu =
    stamps :=
      (Vm.Memory.read_u64 mem 256, Vm.Memory.read_u64 mem 264, Vm.Memory.read_u64 mem 272)
  in
  let result =
    Wasp.Runtime.run w vi.Vcc.Compile.image ~policy:vi.Vcc.Compile.policy
      ~conn:server_end ~inspect ()
  in
  let echoed = Wasp.Hostenv.recv client_end ~max:(String.length payload) in
  if Bytes.to_string echoed <> payload then failwith "echo mismatch";
  let t0, t1, t2 = !stamps in
  ( {
      entry = delta32 ~start ~stamp:t0;
      recv_done = delta32 ~start ~stamp:t1;
      send_done = delta32 ~start ~stamp:t2;
    },
    result )
