(** Minimal HTTP/1.0 wire format: enough to drive the echo server
    (Figure 4) and the static-file server (Figure 13). *)

type request = {
  meth : string;
  path : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val parse_request : string -> (request, string) result
(** Parse a full request (request line, headers, optional body per
    Content-Length). Rejects malformed request lines and headers. *)

val request_to_string : request -> string

val make_request : ?headers:(string * string) list -> ?body:string -> string -> string -> request
(** [make_request meth path]. A Content-Length header is added when a
    body is present. *)

val parse_response : string -> (response, string) result

val response_to_string : response -> string

val make_response : ?headers:(string * string) list -> status:int -> string -> response
(** Reason phrase derived from the status code; Content-Length added. *)

val reason_of_status : int -> string
